GO ?= go

.PHONY: all build fmt-check vet test race bench bench-compare sched-gate check fuzz-smoke cover-gate alloc-gate trace-smoke

all: check build

build:
	$(GO) build ./...

## fmt-check fails if any file needs gofmt.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench runs the root benchmark suite and writes BENCH_PR10.json — the
## machine-readable ns/op table (via cmd/benchjson). Since PR 5 the suite
## covers the simulation substrate (BenchmarkTableChurn,
## BenchmarkRuleMatch, BenchmarkSimScheduler); PR 7 adds
## BenchmarkDetectorObserve; PR 8 adds BenchmarkShardedSim1k — the
## sharded fleet engine driving a 1125-switch fat-tree at 1 and 8 shards
## against the legacy per-closure serial engine on the same workload;
## PR 9 adds BenchmarkIngestPcap — the full capture-ingestion pipeline
## (pcap decode, flow extraction, universe mapping) on a ~10k-packet
## in-memory capture; PR 10 adds BenchmarkServiceSessions (flowrecond
## sessions/sec at 1/64/1k concurrent vs the naive one-goroutine-per-
## session baseline) and BenchmarkServiceProbeThroughput (probes/sec +
## model-store hit rate). The service benchmarks live in
## internal/service rather than the root suite so the root bench
## binary's import graph — and with it the code layout its
## micro-benchmarks are sensitive to — stays fixed across PRs; the two
## packages' outputs merge into one json. Each benchmark runs -count 3
## and benchjson keeps the fastest run per name, which is what makes
## the bench-compare gate usable on shared/noisy hosts.
bench:
	$(GO) test -run xxx -bench . -benchtime 500ms -count 3 . ./internal/service/ > bench.out
	@cat bench.out
	$(GO) run ./cmd/benchjson < bench.out > BENCH_PR10.json
	@rm -f bench.out
	@echo "wrote BENCH_PR10.json"

## bench-compare diffs the committed benchmark history: it fails when any
## benchmark present in both BENCH_PR9.json and BENCH_PR10.json regressed
## by more than 15% ns/op, so the perf gate covers the substrate
## benchmarks as well as the Markov kernels. CI runs this as the perf
## gate.
bench-compare:
	$(GO) run ./cmd/benchjson -compare BENCH_PR9.json BENCH_PR10.json -max-regress 15

## sched-gate holds the serial event loop to its contract across
## refactors: neither the defender wiring (PR 7), the fleet sharding
## (PR 8), the ingestion layer (PR 9), nor the service layer (PR 10,
## which schedules above netsim, not inside it) may tax the scheduler.
## BenchmarkSimScheduler (recorded same-host in BENCH_PR5.json before
## those changes and BENCH_PR10.json after) may regress at most 2%.
sched-gate:
	$(GO) run ./cmd/benchjson -compare BENCH_PR5.json BENCH_PR10.json -bench SimScheduler -max-regress 2

## alloc-gate runs the allocation assertions without the race detector
## (race instrumentation allocates, so `make race` skips them): the
## netsim scheduler must schedule/dispatch with zero allocations in
## steady state, Table.Lookup's hit path must stay within one, the
## disabled telemetry instruments (nil span recorder / event log) must
## cost zero allocations at every emit site, and the streaming detector
## must observe with zero allocations per event — enabled and disabled.
## PR 8 extends the netsim set with the fleet drain: a cross-shard
## window cycle recycles its event records from the per-shard pools.
## PR 10 adds the flowrecond scheduler: the steady-state enqueue/take
## path (per-target group queues + the ready ring) must not allocate
## once warm.
alloc-gate:
	$(GO) test -run 'ZeroAlloc|SteadyStateAllocs|PoolRecycles' ./internal/netsim/ ./internal/flowtable/ ./internal/telemetry/ ./internal/detect/ ./internal/service/

## trace-smoke proves the span-export pipeline end to end on the golden
## fixture: export trial 0's causal span forest as Chrome trace_event
## JSON via cmd/inspect, then structurally validate the result (the same
## check ui.perfetto.dev's importer applies on load).
trace-smoke:
	$(GO) run ./cmd/inspect -perfetto trace-smoke.json -trial 0 internal/experiment/testdata/golden_small.jsonl
	$(GO) run ./cmd/inspect -validate-perfetto trace-smoke.json
	@rm -f trace-smoke.json

## fuzz-smoke runs each fuzz target for 10 s — long enough to shake out
## parser panics on truncated/oversized frames, indexed-vs-linear matcher
## disagreements, and pcap/frame decoder crashes on hostile captures,
## short enough for CI. The openflow seed corpora live in
## internal/openflow/testdata/fuzz/; the ingest targets seed themselves
## (FuzzParsePacket checks the fast frame parser against a slow
## per-byte reference decoder, FuzzReadPcap sanity-bounds whole files).
fuzz-smoke:
	$(GO) test ./internal/openflow/ -run '^$$' -fuzz FuzzReadMessage -fuzztime 10s
	$(GO) test ./internal/openflow/ -run '^$$' -fuzz FuzzParsePacket -fuzztime 10s
	$(GO) test ./internal/rules/ -run '^$$' -fuzz FuzzMatchInDifferential -fuzztime 10s
	$(GO) test ./internal/ingest/ -run '^$$' -fuzz FuzzParsePacket -fuzztime 10s
	$(GO) test ./internal/ingest/ -run '^$$' -fuzz FuzzReadPcap -fuzztime 10s

## cover-gate enforces statement-coverage floors on the packages whose
## failure modes are wire-facing: the OpenFlow codec, the fault-injection
## layer, and the capture-ingestion pipeline must each stay at or above
## 70%.
cover-gate:
	@for pkg in internal/openflow internal/faults internal/ingest; do \
		pct="$$($(GO) test -cover ./$$pkg/ | awk '{for (i=1;i<=NF;i++) if ($$i ~ /^[0-9.]+%$$/) {sub(/%/,"",$$i); print $$i}}')"; \
		if [ -z "$$pct" ]; then echo "cover-gate: no coverage figure for $$pkg"; exit 1; fi; \
		ok="$$(echo "$$pct 70" | awk '{print ($$1 >= $$2) ? 1 : 0}')"; \
		if [ "$$ok" != 1 ]; then echo "cover-gate: $$pkg coverage $$pct% < 70%"; exit 1; fi; \
		echo "cover-gate: $$pkg $$pct% >= 70%"; \
	done

## check is the pre-merge gate: formatting, vet, the full test suite
## under the race detector, the allocation gate (which race builds must
## skip), the trace-export smoke, and the scheduler-overhead gate on the
## committed benchmark history.
check: fmt-check vet race alloc-gate trace-smoke sched-gate
