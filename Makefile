GO ?= go

.PHONY: all build fmt-check vet test race bench bench-compare check fuzz-smoke cover-gate

all: check build

build:
	$(GO) build ./...

## fmt-check fails if any file needs gofmt.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench runs the root benchmark suite and writes BENCH_PR3.json — the
## machine-readable ns/op table (via cmd/benchjson), including the cold vs
## memoized compact-model build and the serial vs parallel trial loop.
bench:
	$(GO) test -run xxx -bench . -benchtime 200ms . > bench.out
	@cat bench.out
	$(GO) run ./cmd/benchjson < bench.out > BENCH_PR3.json
	@rm -f bench.out
	@echo "wrote BENCH_PR3.json"

## bench-compare diffs the committed benchmark history: it fails when any
## benchmark present in both BENCH_PR2.json and BENCH_PR3.json regressed
## by more than 15% ns/op. CI runs this as the perf gate.
bench-compare:
	$(GO) run ./cmd/benchjson -compare BENCH_PR2.json BENCH_PR3.json -max-regress 15

## fuzz-smoke runs each openflow codec fuzz target for 10 s — long enough
## to shake out parser panics on truncated/oversized frames, short enough
## for CI. The seed corpora live in internal/openflow/testdata/fuzz/.
fuzz-smoke:
	$(GO) test ./internal/openflow/ -run '^$$' -fuzz FuzzReadMessage -fuzztime 10s
	$(GO) test ./internal/openflow/ -run '^$$' -fuzz FuzzParsePacket -fuzztime 10s

## cover-gate enforces statement-coverage floors on the packages whose
## failure modes are wire-facing: the OpenFlow codec and the
## fault-injection layer must each stay at or above 70%.
cover-gate:
	@for pkg in internal/openflow internal/faults; do \
		pct="$$($(GO) test -cover ./$$pkg/ | awk '{for (i=1;i<=NF;i++) if ($$i ~ /^[0-9.]+%$$/) {sub(/%/,"",$$i); print $$i}}')"; \
		if [ -z "$$pct" ]; then echo "cover-gate: no coverage figure for $$pkg"; exit 1; fi; \
		ok="$$(echo "$$pct 70" | awk '{print ($$1 >= $$2) ? 1 : 0}')"; \
		if [ "$$ok" != 1 ]; then echo "cover-gate: $$pkg coverage $$pct% < 70%"; exit 1; fi; \
		echo "cover-gate: $$pkg $$pct% >= 70%"; \
	done

## check is the pre-merge gate: formatting, vet, and the full test suite
## under the race detector.
check: fmt-check vet race
