GO ?= go

.PHONY: all build fmt-check vet test race bench check

all: check build

build:
	$(GO) build ./...

## fmt-check fails if any file needs gofmt.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 200ms .

## check is the pre-merge gate: formatting, vet, and the full test suite
## under the race detector.
check: fmt-check vet race
