GO ?= go

.PHONY: all build fmt-check vet test race bench check

all: check build

build:
	$(GO) build ./...

## fmt-check fails if any file needs gofmt.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench runs the root benchmark suite and writes BENCH_PR2.json — the
## machine-readable ns/op table (via cmd/benchjson), including the
## instrumented vs nil-recorder trial loop comparison.
bench:
	$(GO) test -run xxx -bench . -benchtime 200ms . > bench.out
	@cat bench.out
	$(GO) run ./cmd/benchjson < bench.out > BENCH_PR2.json
	@rm -f bench.out
	@echo "wrote BENCH_PR2.json"

## check is the pre-merge gate: formatting, vet, and the full test suite
## under the race detector.
check: fmt-check vet race
