GO ?= go

.PHONY: all build fmt-check vet test race bench bench-compare check

all: check build

build:
	$(GO) build ./...

## fmt-check fails if any file needs gofmt.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench runs the root benchmark suite and writes BENCH_PR3.json — the
## machine-readable ns/op table (via cmd/benchjson), including the cold vs
## memoized compact-model build and the serial vs parallel trial loop.
bench:
	$(GO) test -run xxx -bench . -benchtime 200ms . > bench.out
	@cat bench.out
	$(GO) run ./cmd/benchjson < bench.out > BENCH_PR3.json
	@rm -f bench.out
	@echo "wrote BENCH_PR3.json"

## bench-compare diffs the committed benchmark history: it fails when any
## benchmark present in both BENCH_PR2.json and BENCH_PR3.json regressed
## by more than 15% ns/op. CI runs this as the perf gate.
bench-compare:
	$(GO) run ./cmd/benchjson -compare BENCH_PR2.json BENCH_PR3.json -max-regress 15

## check is the pre-merge gate: formatting, vet, and the full test suite
## under the race detector.
check: fmt-check vet race
