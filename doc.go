// Package flowrecon is a from-scratch Go reproduction of "Flow
// Reconnaissance via Timing Attacks on SDN Switches" (Liu, Reiter, Sekar;
// ICDCS 2017).
//
// A reactive SDN switch forwards packets with no matching rule to its
// controller; the resulting delay is a timing side channel that reveals
// whether a rule — and hence a recent flow — is cached. This repository
// implements the paper's contribution (Markov models of the switch rule
// cache and information-gain probe selection) together with every
// substrate its evaluation needs: an OpenFlow-1.0-subset protocol stack,
// a reactive controller, a flow-table switch, a virtual-time network
// simulator, Poisson workload generation, and the full experiment harness
// reproducing each figure and table.
//
// Start with DESIGN.md for the system inventory, EXPERIMENTS.md for the
// paper-vs-measured results, and examples/quickstart for the API.
package flowrecon
