package main

import (
	"os"
	"path/filepath"
	"testing"

	"flowrecon/internal/experiment"
	"flowrecon/internal/trialrec"
)

func TestRunSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end CLI run")
	}
	if err := run([]string{"-small", "-seed", "3", "-trials", "20", "-details"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestRunRecordComposesWithTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end CLI run")
	}
	dir := t.TempDir()
	recPath := filepath.Join(dir, "run.jsonl")
	telPath := filepath.Join(dir, "tel.json")

	// Both sinks on the same path is rejected before any work happens.
	if err := run([]string{"-small", "-record", recPath, "-telemetry-out", recPath}); err == nil {
		t.Fatal("same path for -record and -telemetry-out accepted")
	}

	if err := run([]string{"-small", "-seed", "3", "-trials", "12", "-probes", "2",
		"-record", recPath, "-telemetry-out", telPath}); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(telPath); err != nil || fi.Size() == 0 {
		t.Fatalf("telemetry sink not flushed: %v", err)
	}
	rec, err := trialrec.ReadFile(recPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Trials) != 12 || len(rec.Header.Attackers) != 4 {
		t.Fatalf("recording shape: %d trials, %d attackers", len(rec.Trials), len(rec.Header.Attackers))
	}
	// The recording is self-describing: replaying its spec reproduces it.
	fresh, _, err := experiment.Replay(rec)
	if err != nil {
		t.Fatal(err)
	}
	if divs := trialrec.Diff(rec, fresh); len(divs) != 0 {
		t.Fatalf("CLI recording does not replay: first divergence %s", divs[0])
	}
}

func TestRunWorkloadAndTraceFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end CLI run")
	}
	// -trace and -workload are mutually exclusive.
	if err := run([]string{"-small", "-trace", "x.pcap", "-workload", "pareto"}); err == nil {
		t.Fatal("-trace with -workload accepted")
	}
	if err := run([]string{"-small", "-seed", "3", "-trials", "15", "-workload", "pareto", "-alpha", "1.3"}); err != nil {
		t.Fatal(err)
	}

	// Replaying the golden capture produces a recording that replays
	// byte-for-byte: the spec carries the capture's SHA-256 pin.
	recPath := filepath.Join(t.TempDir(), "run.jsonl")
	golden := filepath.Join("..", "..", "internal", "ingest", "testdata", "golden.pcap")
	if err := run([]string{"-small", "-seed", "3", "-trials", "15",
		"-trace", golden, "-record", recPath}); err != nil {
		t.Fatal(err)
	}
	rec, err := trialrec.ReadFile(recPath)
	if err != nil {
		t.Fatal(err)
	}
	fresh, _, err := experiment.Replay(rec)
	if err != nil {
		t.Fatal(err)
	}
	if divs := trialrec.Diff(rec, fresh); len(divs) != 0 {
		t.Fatalf("trace-replay recording does not replay: first divergence %s", divs[0])
	}
}

func TestRunMultiProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end CLI run")
	}
	if err := run([]string{"-small", "-seed", "3", "-trials", "10", "-probes", "2", "-sweep"}); err != nil {
		t.Fatal(err)
	}
}
