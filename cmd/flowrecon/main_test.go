package main

import "testing"

func TestRunSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end CLI run")
	}
	if err := run([]string{"-small", "-seed", "3", "-trials", "20", "-details"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestRunMultiProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end CLI run")
	}
	if err := run([]string{"-small", "-seed", "3", "-trials", "10", "-probes", "2", "-sweep"}); err != nil {
		t.Fatal(err)
	}
}
