// Command flowrecon runs one end-to-end flow-reconnaissance attack on a
// randomly generated network configuration: it fits the compact Markov
// model, selects the optimal probe(s), runs repeated trials against
// simulated Poisson traffic, and reports each attacker's accuracy.
//
// Usage:
//
//	flowrecon -seed 7 -trials 200 -probes 2
//	flowrecon -seed 7 -trials 200 -record run.jsonl -telemetry-out tel.json
//	flowrecon -seed 7 -workload pareto -alpha 1.3
//	flowrecon -seed 7 -trace capture.pcap -record run.jsonl
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"flowrecon/internal/core"
	"flowrecon/internal/detect"
	"flowrecon/internal/experiment"
	"flowrecon/internal/faults"
	"flowrecon/internal/stats"
	"flowrecon/internal/telemetry"
	"flowrecon/internal/trialrec"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("flowrecon", flag.ContinueOnError)
	var (
		seed    = fs.Int64("seed", 1, "random seed for the network configuration")
		trials  = fs.Int("trials", 100, "attack trials")
		probes  = fs.Int("probes", 1, "number of probe flows the model attacker sends")
		small   = fs.Bool("small", false, "use the scaled-down 8-flow configuration")
		details = fs.Bool("details", false, "print the rule set and per-flow probe evaluations")
		sweep   = fs.Bool("sweep", false, "also sweep the attack window and report gain vs T")
		telOut  = fs.String("telemetry-out", "", "write final + per-trial telemetry snapshots as JSON to this file")
		telAddr = fs.String("telemetry-addr", "", "serve the live ops surface (/metrics, /debug/live, /healthz) on this address while the run executes")
		evOut   = fs.String("events-out", "", "stream wide events (probe decisions, verdicts, faults) as JSONL to this file")
		recOut  = fs.String("record", "", "write the deterministic trial recording (JSONL) to this file; replay with cmd/inspect -replay")
		par     = fs.Int("parallelism", 1, "trial-runner worker goroutines; results and recordings are identical at every level")
		detectF = fs.Bool("detect", false, "run the defender's streaming detector inside every trial (verdicts → wide events; merged state at /debug/detect and printed at exit)")

		profDir      = fs.String("profile-dir", "", "capture periodic pprof CPU/heap snapshots into this directory")
		profInterval = fs.Duration("profile-interval", 0, "profile snapshot period (default 30s when -profile-dir is set)")
		profKeep     = fs.Int("profile-keep", 4, "newest profile snapshots retained per kind")

		traceF    = fs.String("trace", "", "replay traffic from this capture (pcap) or flow log (csv/jsonl); rates are fitted from the file and the recording pins it by SHA-256")
		workloadF = fs.String("workload", "", "synthetic traffic shape: poisson (default), periodic, bursty, pareto, lognormal, diurnal, flash")
		alphaF    = fs.Float64("alpha", 0, "Pareto tail index for -workload pareto (default 1.5)")
		sigmaF    = fs.Float64("sigma", 0, "log-normal shape for -workload lognormal (default 1.5)")

		faultSeed   = fs.Int64("fault-seed", 0, "seed for injected probe faults (chaos runs)")
		faultLoss   = fs.Float64("fault-loss", 0, "probability each probe is lost (no observation)")
		faultJitter = fs.Float64("fault-jitter", 0, "mean added probe delay, ms (exponential)")

		fleetF   = fs.Bool("fleet", false, "run the attack on a simulated datacenter fleet (multi-switch remote-edge inference) instead of the single-table model")
		switches = fs.Int("switches", 20, "fleet fabric size floor (generated topologies round up)")
		shards   = fs.Int("shards", 1, "fleet simulation shards; results are byte-identical at every count")
		topo     = fs.String("topo", "fattree", "fleet topology: backbone, fattree, or leafspine")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *fleetF {
		return runFleet(fleetArgs{
			switches: *switches, shards: *shards, topo: *topo,
			trials: *trials, seed: *seed, recOut: *recOut, detect: *detectF,
			faultSeed: *faultSeed, faultLoss: *faultLoss, faultJitter: *faultJitter,
			telOut: *telOut,
		})
	}
	if *recOut != "" && *recOut == *telOut {
		return fmt.Errorf("flowrecon: -record and -telemetry-out must name different files (both got %q)", *recOut)
	}

	params := experiment.DefaultParams()
	if *small {
		params.NumFlows, params.NumRules, params.MaskBits, params.CacheSize = 8, 6, 3, 3
		params.WindowSeconds = 5
	}
	// Derive both role seeds from the root seed so a recording header
	// pins everything needed to replay the run bit-for-bit.
	rootRNG := stats.NewRNG(*seed)
	spec := experiment.RecordingSpec{
		Params:      params,
		ConfigSeed:  rootRNG.Int63(),
		TrialSeed:   rootRNG.Int63(),
		Trials:      *trials,
		Probes:      *probes,
		Measurement: experiment.DefaultMeasurement(),
	}
	traceSpec, err := experiment.TraceSpecForCLI(*traceF, *workloadF, *alphaF, *sigmaF)
	if err != nil {
		return err
	}
	spec.Trace = traceSpec
	source, err := traceSpec.Source()
	if err != nil {
		return err
	}
	switch {
	case *traceF != "":
		fmt.Printf("traffic: windowed replay of %s (sha256 %s…, rates fitted from the capture)\n", *traceF, traceSpec.SHA256[:12])
	case *workloadF != "":
		fmt.Printf("traffic: %s workload at the configured mean rates\n", *workloadF)
	}
	if *faultLoss > 0 || *faultJitter > 0 {
		spec.Faults = &faults.Profile{Seed: *faultSeed, LossProb: *faultLoss, JitterMeanMs: *faultJitter}
		if err := spec.Faults.Validate(); err != nil {
			return err
		}
		fmt.Printf("fault injection armed: %+v\n", *spec.Faults)
	}
	// The ops surface comes up BEFORE the model build so /readyz reports
	// 503 through the expensive fitting phase and the build's own
	// counters (evolve steps, cache misses) land in the registry.
	var reg *telemetry.Registry
	if *telOut != "" || *telAddr != "" || *evOut != "" {
		reg = telemetry.NewRegistry(8192)
		// Route the model layer's build/evolve/cache instruments into the
		// same snapshot as the experiment metrics.
		core.SetTelemetry(reg)
	}
	var events *telemetry.EventLog
	if *evOut != "" || *telAddr != "" {
		events = reg.EnableEvents(0)
		if *evOut != "" {
			ef, err := os.Create(*evOut)
			if err != nil {
				return err
			}
			defer ef.Close()
			events.SetSink(ef)
		}
	}
	// The merged session detector is built after the network config exists
	// (its baseline is trained on benign traffic for that config); the mux
	// closure dereferences it per request, so mounting early is safe.
	var detAgg *detect.Detector
	if *telAddr != "" {
		reg.SetReady(false)
		mux := telemetry.NewMux(reg)
		if *detectF {
			mux.HandleFunc("/debug/detect", func(w http.ResponseWriter, r *http.Request) {
				detAgg.ServeHTTP(w, r)
			})
		}
		srv, err := telemetry.ServeHandler(*telAddr, mux)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("live ops surface on http://%s (watch with: flowtop -addr %s)\n", srv.Addr(), srv.Addr())
	}
	if *profDir != "" {
		iv := *profInterval
		if iv <= 0 {
			iv = 30 * time.Second
		}
		ring, err := telemetry.StartProfileRing(*profDir, iv, *profKeep, iv/4)
		if err != nil {
			return err
		}
		defer ring.Stop()
		fmt.Printf("profile ring armed: %s every %s (keep %d)\n", *profDir, iv, *profKeep)
	}

	fmt.Printf("sampling a network configuration (|Rules|=%d, n=%d, %d flows, Δ=%.3fs, T=%d steps)…\n",
		params.NumRules, params.CacheSize, params.NumFlows, params.Delta, params.Steps())
	nc, err := spec.BuildConfig()
	if err != nil {
		return err
	}

	fmt.Printf("\ntarget flow f̂ = %d  (λ=%.3f/s, P(absent in window)=%.3f, covered by %d rules)\n",
		nc.Target, nc.Rates[nc.Target], nc.PAbsent(), nc.NumCoveringTarget)
	if *details {
		fmt.Println("\npolicy:")
		for _, r := range nc.Rules.Rules() {
			fmt.Printf("  %-40s λΣ=%.3f\n", r.String(), sumRates(nc, r.ID))
		}
		fmt.Println("\nper-flow probe evaluation:")
		for _, f := range nc.Selector.AllFlows() {
			e := nc.Selector.Evaluate(f)
			marker := " "
			if f == nc.Target {
				marker = "T"
			}
			fmt.Printf("  %s flow %2d: gain=%.4f bits  P(hit)=%.3f  P(X̂=1|hit)=%.3f  P(X̂=0|miss)=%.3f\n",
				marker, f, e.Gain, e.PHit, e.PostPresentGivenHit, e.PostAbsentGivenMiss)
		}
	}
	fmt.Printf("\noptimal probe: flow %d (gain %.4f bits; target-probe gain %.4f)\n",
		nc.Optimal.Flow, nc.Optimal.Gain, nc.TargetEval.Gain)
	if nc.OptimalDiffersFromTarget() {
		fmt.Println("→ the model chose a probe other than the target (the Figure 2c effect)")
	}
	if !nc.DetectorViable() {
		fmt.Println("→ warning: this configuration is not a viable detector (§VI-B filter)")
	}

	attackers, err := experiment.StandardAttackers(nc, *probes)
	if err != nil {
		return err
	}
	var detCfg *detect.Config
	if *detectF {
		// Train the benign baseline on fresh Poisson windows for this
		// exact configuration, then run one detector replica per
		// (trial, attacker) and merge them into the session view.
		base, err := experiment.TrainDetectBaseline(nc, 40, stats.NewRNG(rootRNG.Int63()), experiment.PoissonSource)
		if err != nil {
			return err
		}
		cfg := experiment.DetectConfigFor(nc, base)
		detCfg = &cfg
		detAgg = detect.New(cfg)
		if reg != nil {
			detAgg.SetTelemetry(reg)
		}
		fmt.Printf("\ndefender armed: streaming detector on every trial (baseline: 40 benign windows)\n")
	}
	fmt.Printf("\nrunning %d trials…\n", *trials)
	reg.SetReady(true) // model fitted; the run is now in its steady phase
	var rec *trialrec.Recorder
	if *recOut != "" {
		specJSON, err := json.Marshal(spec)
		if err != nil {
			return err
		}
		names := make([]string, len(attackers))
		for i, a := range attackers {
			names[i] = a.Name()
		}
		rec, err = trialrec.Create(*recOut, trialrec.Header{
			Spec:      specJSON,
			Seed:      spec.TrialSeed,
			Trials:    *trials,
			Attackers: names,
		})
		if err != nil {
			return err
		}
	}
	opts := experiment.TrialOptions{Registry: reg, PerTrial: *telOut != "", Recorder: rec, Events: events, Parallelism: *par, Source: source}
	if detCfg != nil {
		opts.Detect = detCfg
		opts.DetectAggregate = detAgg
	}
	if spec.Faults != nil {
		opts.Faults = *spec.Faults
	}
	results, records, err := experiment.RunTrialsOpts(
		nc, attackers, *trials, spec.Measurement, stats.NewRNG(spec.TrialSeed), opts)
	if err != nil {
		rec.Close()
		return err
	}
	fmt.Printf("\n%-16s %9s %6s %6s %6s %6s\n", "attacker", "accuracy", "TP", "TN", "FP", "FN")
	for _, r := range results {
		fmt.Printf("%-16s %8.1f%% %6d %6d %6d %6d\n", r.Name, 100*r.Accuracy(), r.TruePos, r.TrueNeg, r.FalsePos, r.FalseNeg)
	}
	if detAgg != nil {
		snap := detAgg.Snap(5)
		fmt.Printf("\ndetector (merged over %d trials × %d attackers): %d sources tracked, %d flagged\n",
			*trials, len(attackers), snap.SourcesTracked, snap.Flagged)
		for _, s := range snap.Top {
			if s.Flagged {
				fmt.Printf("  flagged source %2d: reason=%s score=%.2f obs=%d\n", s.Source, s.Reason, s.Score, s.Observations)
			}
		}
	}

	// Both sinks flush before run returns: the recording on Close, the
	// telemetry snapshot in writeTelemetry.
	if rec.Enabled() {
		trialsWritten := rec.Trials()
		if err := rec.Close(); err != nil {
			return err
		}
		fmt.Printf("\nrecording written to %s (%d trials; verify with: inspect -replay %s)\n", *recOut, trialsWritten, *recOut)
	}
	if *telOut != "" {
		if err := writeTelemetry(*telOut, reg, records); err != nil {
			return err
		}
		fmt.Printf("\ntelemetry written to %s (%d per-trial records)\n", *telOut, len(records))
	}
	if events != nil {
		if err := events.SinkErr(); err != nil {
			return fmt.Errorf("flowrecon: event sink: %w", err)
		}
		if *evOut != "" {
			fmt.Printf("wide events streamed to %s (%d retained, %d beyond ring)\n", *evOut, events.Len(), events.Dropped())
		}
	}

	if *sweep {
		fmt.Println("\ngain vs attack window (how far back can the channel see?):")
		windows := []int{1, 2, 5, 10, 20, 40}
		full := nc.Params.Steps()
		windows = append(windows, full/4, full)
		points, err := core.GainVsWindow(nc.Core, nc.Target, windows, nc.Params.USum)
		if err != nil {
			return err
		}
		for _, p := range points {
			fmt.Printf("  T=%4d steps (%5.2fs): best probe %2d gain=%.4f bits  P(absent)=%.3f\n",
				p.Steps, float64(p.Steps)*nc.Params.Delta, p.Best.Flow, p.Best.Gain, p.PAbsent)
		}
	}
	return nil
}

// fleetArgs carries the -fleet mode's flag values.
type fleetArgs struct {
	switches, shards int
	topo             string
	trials           int
	seed             int64
	recOut           string
	detect           bool
	faultSeed        int64
	faultLoss        float64
	faultJitter      float64
	telOut           string
}

// runFleet runs the multi-switch fleet scenario: the same timing channel,
// but the probed rule state lives on edge switches the attacker never
// talks to directly (EXPERIMENTS.md §16).
func runFleet(a fleetArgs) error {
	o := experiment.DefaultFleetOptions()
	o.Topo, o.Switches, o.Shards = a.topo, a.switches, a.shards
	o.Trials, o.Seed = a.trials, a.seed
	if a.faultLoss > 0 || a.faultJitter > 0 {
		o.Faults = faults.Profile{Seed: a.faultSeed, LossProb: a.faultLoss, JitterMeanMs: a.faultJitter}
		if err := o.Faults.Validate(); err != nil {
			return err
		}
		fmt.Printf("fault injection armed: %+v\n", o.Faults)
	}
	if a.detect {
		cfg := detect.DefaultConfig()
		o.Detect = &cfg
	}
	if a.telOut != "" {
		o.Registry = telemetry.NewRegistry(8192)
	}
	if a.recOut != "" {
		rec, err := trialrec.Create(a.recOut, trialrec.Header{
			Seed:      o.Seed,
			Trials:    o.Trials,
			Attackers: []string{experiment.FleetAttackerName},
		})
		if err != nil {
			return err
		}
		o.Recorder = rec
		defer rec.Close()
	}
	fmt.Printf("running %d fleet trials (%s, ≥%d switches, %d shards)…\n\n", o.Trials, o.Topo, o.Switches, o.Shards)
	out, err := experiment.RunFleetTrials(o)
	if err != nil {
		return err
	}
	if err := experiment.WriteFleet(os.Stdout, out); err != nil {
		return err
	}
	if o.Recorder.Enabled() {
		trialsWritten := o.Recorder.Trials()
		if err := o.Recorder.Close(); err != nil {
			return err
		}
		fmt.Printf("\nrecording written to %s (%d trials)\n", a.recOut, trialsWritten)
	}
	if a.telOut != "" {
		if err := writeTelemetry(a.telOut, o.Registry, nil); err != nil {
			return err
		}
		fmt.Printf("\ntelemetry written to %s\n", a.telOut)
	}
	return nil
}

// writeTelemetry dumps the final registry snapshot alongside the per-trial
// records as one indented JSON document.
func writeTelemetry(path string, reg *telemetry.Registry, records []experiment.TrialRecord) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Final  telemetry.Snapshot       `json:"final"`
		Trials []experiment.TrialRecord `json:"trials,omitempty"`
	}{Final: reg.Snapshot(), Trials: records})
}

func sumRates(nc *experiment.NetworkConfig, ruleID int) float64 {
	var s float64
	for _, f := range nc.Rules.Rule(ruleID).Cover.IDs() {
		s += nc.Rates[f]
	}
	return s
}
