// Command benchjson converts `go test -bench` text output (read from
// stdin) into a machine-readable JSON document on stdout. The Makefile's
// bench target pipes the suite through it to produce BENCH_PR3.json, so
// benchmark history (notably the instrumented vs nil-recorder trial loop)
// can be diffed across PRs.
//
// With -compare it instead diffs two such documents:
//
//	benchjson -compare BENCH_PR2.json BENCH_PR3.json -max-regress 15
//
// printing per-benchmark ns/op deltas and exiting non-zero when any
// benchmark present in both files regressed by more than -max-regress
// percent — the CI guard against accidental slowdowns.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark path without the "Benchmark" prefix or the
	// trailing -GOMAXPROCS suffix (e.g. "TrialLoopRecording/off").
	Name string `json:"name"`
	// Iters is the b.N the reported means were measured over.
	Iters int64 `json:"iters"`
	// Metrics maps unit → value: ns/op, B/op, allocs/op, plus any custom
	// b.ReportMetric units (gain-bits, states, …).
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the emitted document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	fs := flag.NewFlagSet("benchjson", flag.ExitOnError)
	compare := fs.Bool("compare", false, "compare two benchmark JSON files (old new) instead of parsing stdin")
	maxRegress := fs.Float64("max-regress", 15, "with -compare: fail when any shared benchmark's ns/op regressed by more than this percentage")
	benchFilter := fs.String("bench", "", "with -compare: restrict the comparison to the exact benchmark of this name (sans Benchmark prefix); fails if it is missing from either file")
	// Accept flags before and after the positional file arguments
	// (benchjson -compare old.json new.json -max-regress 15): the stdlib
	// parser stops at the first non-flag, so feed it back the remainder.
	var files []string
	rest := os.Args[1:]
	for {
		_ = fs.Parse(rest)
		if fs.NArg() == 0 {
			break
		}
		files = append(files, fs.Arg(0))
		rest = fs.Args()[1:]
	}

	if *compare {
		if len(files) != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two files: old.json new.json")
			os.Exit(2)
		}
		ok, err := runCompare(os.Stdout, files[0], files[1], *maxRegress, *benchFilter)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		if !ok {
			os.Exit(1)
		}
		return
	}

	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// loadReport reads one benchjson document.
func loadReport(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rep Report
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// runCompare prints the ns/op delta table for benchmarks present in both
// reports and reports whether every shared benchmark stayed within
// maxRegress percent of the old time. Benchmarks that exist on only one
// side are listed but never fail the comparison (suites grow across
// PRs).
func runCompare(w io.Writer, oldPath, newPath string, maxRegress float64, benchFilter string) (bool, error) {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		return false, err
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return false, err
	}
	oldNs := map[string]float64{}
	for _, b := range oldRep.Benchmarks {
		if v, ok := b.Metrics["ns/op"]; ok {
			oldNs[b.Name] = v
		}
	}
	ok := true
	var shared, added []string
	newNs := map[string]float64{}
	for _, b := range newRep.Benchmarks {
		v, has := b.Metrics["ns/op"]
		if !has {
			continue
		}
		newNs[b.Name] = v
		if _, both := oldNs[b.Name]; both {
			shared = append(shared, b.Name)
		} else {
			added = append(added, b.Name)
		}
	}
	if benchFilter != "" {
		// Targeted gate mode: exactly one benchmark, and it must exist in
		// both files — a missing benchmark silently passing would defeat
		// the gate.
		var kept []string
		for _, name := range shared {
			if name == benchFilter {
				kept = append(kept, name)
			}
		}
		if len(kept) == 0 {
			return false, fmt.Errorf("-bench %s: benchmark not present in both %s and %s", benchFilter, oldPath, newPath)
		}
		shared, added, oldRep.Benchmarks = kept, nil, nil
	}
	sort.Strings(shared)
	sort.Strings(added)

	fmt.Fprintf(w, "%-40s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, name := range shared {
		o, n := oldNs[name], newNs[name]
		delta := 100 * (n - o) / o
		mark := ""
		if delta > maxRegress {
			mark = "  REGRESSION"
			ok = false
		}
		fmt.Fprintf(w, "%-40s %14.0f %14.0f %+8.1f%%%s\n", name, o, n, delta, mark)
	}
	for _, name := range added {
		fmt.Fprintf(w, "%-40s %14s %14.0f %9s\n", name, "—", newNs[name], "new")
	}
	for _, b := range oldRep.Benchmarks {
		if _, still := newNs[b.Name]; !still {
			fmt.Fprintf(w, "%-40s %14.0f %14s %9s\n", b.Name, oldNs[b.Name], "—", "removed")
		}
	}
	if !ok {
		fmt.Fprintf(w, "\nFAIL: at least one benchmark regressed by more than %.1f%%\n", maxRegress)
	} else {
		fmt.Fprintf(w, "\nOK: no shared benchmark regressed by more than %.1f%%\n", maxRegress)
	}
	return ok, nil
}

// add inserts one parsed result, merging repeated runs of the same
// benchmark (`go test -count N` emits one line per run) by keeping the
// fastest one. The minimum ns/op sample is the least
// scheduler/thermal-perturbed estimate of the code's true cost, so
// recording the min across runs is what keeps the -compare regression
// gate stable on noisy shared hosts. Runs without an ns/op metric keep
// their first occurrence.
func (r *Report) add(b Benchmark) {
	for i := range r.Benchmarks {
		if r.Benchmarks[i].Name != b.Name {
			continue
		}
		oldNs, oldOK := r.Benchmarks[i].Metrics["ns/op"]
		newNs, newOK := b.Metrics["ns/op"]
		if newOK && (!oldOK || newNs < oldNs) {
			r.Benchmarks[i] = b
		}
		return
	}
	r.Benchmarks = append(r.Benchmarks, b)
}

// parse scans benchmark output: "goos:"/"goarch:"/"pkg:" headers and
// "Benchmark<Name>-P  N  v1 u1  v2 u2 …" result lines; everything else
// (PASS, ok, metric noise) is ignored.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseResult(line)
			if ok {
				rep.add(b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines on stdin")
	}
	return rep, nil
}

func parseResult(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	name := strings.TrimPrefix(f[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	b := Benchmark{Name: name, Iters: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[f[i+1]] = v
	}
	return b, true
}
