// Command benchjson converts `go test -bench` text output (read from
// stdin) into a machine-readable JSON document on stdout. The Makefile's
// bench target pipes the suite through it to produce BENCH_PR2.json, so
// benchmark history (notably the instrumented vs nil-recorder trial loop)
// can be diffed across PRs.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark path without the "Benchmark" prefix or the
	// trailing -GOMAXPROCS suffix (e.g. "TrialLoopRecording/off").
	Name string `json:"name"`
	// Iters is the b.N the reported means were measured over.
	Iters int64 `json:"iters"`
	// Metrics maps unit → value: ns/op, B/op, allocs/op, plus any custom
	// b.ReportMetric units (gain-bits, states, …).
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the emitted document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse scans benchmark output: "goos:"/"goarch:"/"pkg:" headers and
// "Benchmark<Name>-P  N  v1 u1  v2 u2 …" result lines; everything else
// (PASS, ok, metric noise) is ignored.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseResult(line)
			if ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines on stdin")
	}
	return rep, nil
}

func parseResult(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	name := strings.TrimPrefix(f[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	b := Benchmark{Name: name, Iters: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[f[i+1]] = v
	}
	return b, true
}
