package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: flowrecon
cpu: some cpu
BenchmarkStateCount-8         	 5000000	       231.4 ns/op	         1.284e+21 states
BenchmarkTrialLoopRecording/off-8    	     358	   3351216 ns/op	  501690 B/op	    5346 allocs/op
BenchmarkTrialLoopRecording/record-8 	     301	   3904102 ns/op	  812345 B/op	    9123 allocs/op
PASS
ok  	flowrecon	12.3s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "flowrecon" {
		t.Fatalf("header: %+v", rep)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("benchmarks = %d", len(rep.Benchmarks))
	}
	sc := rep.Benchmarks[0]
	if sc.Name != "StateCount" || sc.Iters != 5000000 {
		t.Fatalf("first: %+v", sc)
	}
	if sc.Metrics["ns/op"] != 231.4 || sc.Metrics["states"] != 1.284e+21 {
		t.Fatalf("metrics: %+v", sc.Metrics)
	}
	off := rep.Benchmarks[1]
	if off.Name != "TrialLoopRecording/off" {
		t.Fatalf("sub-benchmark name: %q", off.Name)
	}
	if off.Metrics["allocs/op"] != 5346 {
		t.Fatalf("allocs: %+v", off.Metrics)
	}
	rec := rep.Benchmarks[2]
	if rec.Metrics["ns/op"] <= off.Metrics["ns/op"] {
		t.Fatalf("sample sanity: %v vs %v", rec.Metrics["ns/op"], off.Metrics["ns/op"])
	}
}

// TestParseMergesRepeatedRuns covers `go test -count N` output: repeated
// result lines for one benchmark must collapse to a single entry holding
// the fastest run's metrics (min ns/op is the least-perturbed sample).
func TestParseMergesRepeatedRuns(t *testing.T) {
	const repeated = `goos: linux
BenchmarkA-8 	 100	 300.0 ns/op	 48 B/op	 2 allocs/op
BenchmarkA-8 	 120	 250.0 ns/op	 40 B/op	 1 allocs/op
BenchmarkA-8 	 110	 275.0 ns/op	 44 B/op	 2 allocs/op
BenchmarkB-8 	 10	 900.0 ns/op
`
	rep, err := parse(strings.NewReader(repeated))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("benchmarks = %d, want 2 (runs merged)", len(rep.Benchmarks))
	}
	a := rep.Benchmarks[0]
	if a.Name != "A" || a.Metrics["ns/op"] != 250.0 {
		t.Fatalf("merged A = %+v, want the fastest run (250 ns/op)", a)
	}
	if a.Metrics["allocs/op"] != 1 || a.Iters != 120 {
		t.Fatalf("merged A must carry the whole fastest run, got %+v", a)
	}
	if rep.Benchmarks[1].Name != "B" {
		t.Fatalf("second entry = %+v", rep.Benchmarks[1])
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok x 1s\n")); err == nil {
		t.Fatal("no benchmarks accepted")
	}
}

func TestParseResultMalformed(t *testing.T) {
	for _, line := range []string{
		"BenchmarkX-8",
		"BenchmarkX-8 abc 1 ns/op",
		"BenchmarkX-8 100 xyz ns/op",
		"BenchmarkX-8 100 5 ns/op trailing",
	} {
		if _, ok := parseResult(line); ok {
			t.Fatalf("malformed line parsed: %q", line)
		}
	}
}

func TestRunCompare(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := dir + "/" + name
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	oldPath := write("old.json", `{"benchmarks":[
		{"name":"A","iters":1,"metrics":{"ns/op":1000}},
		{"name":"B","iters":1,"metrics":{"ns/op":2000}},
		{"name":"Gone","iters":1,"metrics":{"ns/op":5}}]}`)
	newPath := write("new.json", `{"benchmarks":[
		{"name":"A","iters":1,"metrics":{"ns/op":1100}},
		{"name":"B","iters":1,"metrics":{"ns/op":500}},
		{"name":"New","iters":1,"metrics":{"ns/op":7}}]}`)

	var buf strings.Builder
	ok, err := runCompare(&buf, oldPath, newPath, 15, "")
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("10%% regression must pass a 15%% gate:\n%s", buf.String())
	}
	out := buf.String()
	for _, want := range []string{"A", "B", "New", "Gone", "new", "removed", "OK:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("compare output missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	ok, err = runCompare(&buf, oldPath, newPath, 5, "")
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("10%% regression must fail a 5%% gate:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "REGRESSION") {
		t.Fatalf("regression not flagged:\n%s", buf.String())
	}
}

// TestRunCompareBenchFilter covers the targeted gate mode: -bench pins
// one benchmark at its own regression budget and errors (rather than
// passing vacuously) when the benchmark is absent.
func TestRunCompareBenchFilter(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := dir + "/" + name
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	oldPath := write("old.json", `{"benchmarks":[
		{"name":"SimScheduler","iters":1,"metrics":{"ns/op":100}},
		{"name":"Other","iters":1,"metrics":{"ns/op":100}}]}`)
	newPath := write("new.json", `{"benchmarks":[
		{"name":"SimScheduler","iters":1,"metrics":{"ns/op":101}},
		{"name":"Other","iters":1,"metrics":{"ns/op":900}}]}`)

	var buf strings.Builder
	// 1% on the filtered benchmark passes a 2% gate even though Other
	// regressed 9x — the filter scopes the verdict.
	ok, err := runCompare(&buf, oldPath, newPath, 2, "SimScheduler")
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("1%% regression must pass a 2%% targeted gate:\n%s", buf.String())
	}
	if strings.Contains(buf.String(), "Other") {
		t.Fatalf("filtered output must not mention other benchmarks:\n%s", buf.String())
	}

	buf.Reset()
	if ok, err := runCompare(&buf, oldPath, newPath, 0.5, "SimScheduler"); err != nil || ok {
		t.Fatalf("1%% regression must fail a 0.5%% targeted gate (ok=%v err=%v)", ok, err)
	}

	if _, err := runCompare(io.Discard, oldPath, newPath, 2, "Missing"); err == nil {
		t.Fatal("absent benchmark must error, not pass vacuously")
	}
}

func TestRunCompareBadFile(t *testing.T) {
	if _, err := runCompare(io.Discard, "does-not-exist.json", "also-missing.json", 15, ""); err == nil {
		t.Fatal("missing file must error")
	}
}
