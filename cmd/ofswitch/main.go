// Command ofswitch runs the user-space OpenFlow switch over real TCP
// against cmd/ofcontroller, then demonstrates the timing side channel by
// injecting probe packets and printing the observed delays.
//
// Usage:
//
//	ofswitch -controller 127.0.0.1:6633 -seed 1 -probes 10
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"flowrecon/internal/flows"
	"flowrecon/internal/openflow"
	"flowrecon/internal/rules"
	"flowrecon/internal/stats"
	"flowrecon/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ofswitch", flag.ContinueOnError)
	var (
		controller = fs.String("controller", "127.0.0.1:6633", "controller TCP address")
		seed       = fs.Int64("seed", 1, "seed for the generated policy (must match the controller)")
		step       = fs.Float64("step", 0.1, "model step Δ in seconds (scales rule timeouts)")
		capacity   = fs.Int("capacity", 9, "flow table capacity (6 + 3 reserved, §VI-A)")
		probes     = fs.Int("probes", 10, "probe packets to inject")
		gap        = fs.Duration("gap", 200*time.Millisecond, "delay between probes")
		telAddr    = fs.String("telemetry-addr", "", "serve /metrics, /debug/trace and pprof on this address (e.g. 127.0.0.1:9090)")
		hold       = fs.Duration("hold", 0, "keep running (and serving telemetry) this long after the last probe")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var reg *telemetry.Registry
	if *telAddr != "" {
		reg = telemetry.NewRegistry(4096)
		srv, err := telemetry.Serve(*telAddr, reg)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("telemetry on http://%s/metrics (trace: /debug/trace, pprof: /debug/pprof/)\n", srv.Addr())
	}
	universe := flows.ClientServerUniverse(flows.MakeIPv4(10, 0, 1, 0), 16)
	policy, err := rules.Generate(rules.DefaultGenerateConfig(*step), stats.NewRNG(*seed))
	if err != nil {
		return err
	}
	sw, err := openflow.NewSwitch(1, policy, universe, *capacity, *step)
	if err != nil {
		return err
	}
	if reg != nil {
		sw.SetTelemetry(reg)
	}
	if err := sw.Connect(*controller); err != nil {
		return err
	}
	defer sw.Close()
	fmt.Printf("switch connected to %s; injecting %d probes\n", *controller, *probes)

	covered := policy.CoveredFlows()
	var tuple flows.FiveTuple
	for f := 0; f < universe.Size(); f++ {
		if covered.Contains(flows.ID(f)) {
			tuple = universe.Tuple(flows.ID(f))
			break
		}
	}
	for i := 0; i < *probes; i++ {
		res, err := sw.Inject(tuple)
		if err != nil {
			return err
		}
		verdict := "MISS (rule installed via controller)"
		if res.Hit {
			verdict = "HIT  (rule already cached)"
		}
		fmt.Printf("probe %2d: %-38s delay=%v\n", i+1, verdict, res.Delay)
		time.Sleep(*gap)
	}
	fmt.Printf("cached rules at exit: %v\n", sw.CachedRules())
	if *hold > 0 {
		fmt.Printf("holding for %v (telemetry stays live)\n", *hold)
		time.Sleep(*hold)
	}
	return nil
}
