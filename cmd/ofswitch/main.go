// Command ofswitch runs the user-space OpenFlow switch over real TCP
// against cmd/ofcontroller, then demonstrates the timing side channel by
// injecting probe packets and printing the observed delays.
//
// Usage:
//
//	ofswitch -controller 127.0.0.1:6633 -seed 1 -probes 10
//
// Chaos knobs (all seeded, reproducible): inject faults on the switch's
// side of the control channel and arm self-healing so a flaky channel
// degrades the attack instead of wedging it:
//
//	ofswitch -fault-seed 7 -fault-loss 0.02 -fault-jitter 0.5 \
//	         -reconnect-retries 10 -probe-timeout 50ms -probe-retries 3
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"sync/atomic"
	"time"

	"flowrecon/internal/faults"
	"flowrecon/internal/flows"
	"flowrecon/internal/openflow"
	"flowrecon/internal/rules"
	"flowrecon/internal/stats"
	"flowrecon/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ofswitch", flag.ContinueOnError)
	var (
		controller = fs.String("controller", "127.0.0.1:6633", "controller TCP address")
		seed       = fs.Int64("seed", 1, "seed for the generated policy (must match the controller)")
		step       = fs.Float64("step", 0.1, "model step Δ in seconds (scales rule timeouts)")
		capacity   = fs.Int("capacity", 9, "flow table capacity (6 + 3 reserved, §VI-A)")
		probes     = fs.Int("probes", 10, "probe packets to inject")
		gap        = fs.Duration("gap", 200*time.Millisecond, "delay between probes")
		telAddr    = fs.String("telemetry-addr", "", "serve /metrics, /debug/spans, /debug/live and pprof on this address (e.g. 127.0.0.1:9090)")
		spansOut   = fs.String("spans-out", "", "write recorded causal spans as JSONL to this file at exit (join with the controller's via inspect -perfetto)")
		hold       = fs.Duration("hold", 0, "keep running (and serving telemetry) this long after the last probe")

		faultSeed    = fs.Int64("fault-seed", 0, "seed for injected faults on this side of the channel")
		faultLoss    = fs.Float64("fault-loss", 0, "probability of dropping each sent control message")
		faultJitter  = fs.Float64("fault-jitter", 0, "mean added delay per sent message, ms (exponential)")
		faultReset   = fs.Float64("fault-reset", 0, "probability of resetting the connection per write")
		reconnects   = fs.Int("reconnect-retries", 0, "redial attempts after a lost connection (0 = die on disconnect)")
		probeTimeout = fs.Duration("probe-timeout", 0, "per-probe reply timeout (0 = wait forever)")
		probeRetries = fs.Int("probe-retries", 0, "PACKET_IN retransmits before declaring a probe lost")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	prof := faults.Profile{
		Seed: *faultSeed, LossProb: *faultLoss,
		JitterMeanMs: *faultJitter, ResetProb: *faultReset,
	}
	if err := prof.Validate(); err != nil {
		return err
	}
	var reg *telemetry.Registry
	if *telAddr != "" || *spansOut != "" {
		reg = telemetry.NewRegistry(4096)
		// Namespace 1 = switch: keeps this process's span IDs disjoint
		// from the controller's (namespace 2) so the two daemons' JSONL
		// streams concatenate into one joined forest per probe.
		reg.EnableSpans(0).SetNamespace(openflow.SpanNamespaceSwitch)
		reg.EnableEvents(0)
	}
	if *telAddr != "" {
		srv, err := telemetry.Serve(*telAddr, reg)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("telemetry on http://%s/metrics (spans: /debug/spans, live: /debug/live, pprof: /debug/pprof/)\n", srv.Addr())
	}
	if *spansOut != "" {
		path := *spansOut
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			if err := reg.Spans().WriteJSONL(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}
	universe := flows.ClientServerUniverse(flows.MakeIPv4(10, 0, 1, 0), 16)
	policy, err := rules.Generate(rules.DefaultGenerateConfig(*step), stats.NewRNG(*seed))
	if err != nil {
		return err
	}
	sw, err := openflow.NewSwitch(1, policy, universe, *capacity, *step)
	if err != nil {
		return err
	}
	if reg != nil {
		sw.SetTelemetry(reg)
	}
	// The dialer wraps each redialed transport with its own derived fault
	// stream (sub = connection ordinal); with no fault knobs set WrapConn
	// is a passthrough.
	var ordinal atomic.Int64
	dialer := func() (*openflow.Conn, error) {
		raw, err := net.DialTimeout("tcp", *controller, openflow.DefaultDialTimeout)
		if err != nil {
			return nil, err
		}
		return openflow.NewConn(faults.WrapConn(raw, prof.Stream(ordinal.Add(1)))), nil
	}
	if *reconnects > 0 {
		sw.SetReconnect(openflow.ReconnectPolicy{
			MaxRetries: *reconnects,
			Seed:       *faultSeed,
		}, dialer)
	}
	conn, err := dialer()
	if err != nil {
		return err
	}
	if err := sw.Start(conn); err != nil {
		return err
	}
	defer sw.Close()
	fmt.Printf("switch connected to %s; injecting %d probes\n", *controller, *probes)
	if prof.Enabled() || *reconnects > 0 {
		fmt.Printf("chaos armed: faults=%+v reconnects=%d probe-timeout=%v retries=%d\n",
			prof, *reconnects, *probeTimeout, *probeRetries)
	}

	covered := policy.CoveredFlows()
	var tuple flows.FiveTuple
	for f := 0; f < universe.Size(); f++ {
		if covered.Contains(flows.ID(f)) {
			tuple = universe.Tuple(flows.ID(f))
			break
		}
	}
	for i := 0; i < *probes; i++ {
		res, err := sw.InjectTimeout(tuple, *probeTimeout, *probeRetries)
		switch {
		case err == nil:
			verdict := "MISS (rule installed via controller)"
			if res.Hit {
				verdict = "HIT  (rule already cached)"
			}
			fmt.Printf("probe %2d: %-38s delay=%v\n", i+1, verdict, res.Delay)
		case errors.Is(err, openflow.ErrProbeTimeout) || errors.Is(err, openflow.ErrDisconnected):
			// Explicit loss: no observation, keep probing (the attacker's
			// no-observation case).
			fmt.Printf("probe %2d: LOST (%v)\n", i+1, err)
		default:
			return err
		}
		time.Sleep(*gap)
	}
	fmt.Printf("cached rules at exit: %v\n", sw.CachedRules())
	if *hold > 0 {
		fmt.Printf("holding for %v (telemetry stays live)\n", *hold)
		time.Sleep(*hold)
	}
	return nil
}
