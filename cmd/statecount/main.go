// Command statecount evaluates the model state-space sizes of §IV: the
// basic model's closed form (§IV-A2) and the compact model's subset count
// (§IV-B), for given rule counts, timeouts, and cache capacity.
//
// Usage:
//
//	statecount -rules 10 -timeout 100 -cache 8
package main

import (
	"flag"
	"fmt"
	"os"

	"flowrecon/internal/core"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("statecount", flag.ContinueOnError)
	numRules := fs.Int("rules", 10, "number of rules |Rules|")
	timeout := fs.Int("timeout", 100, "per-rule timeout t_j in steps")
	cache := fs.Int("cache", 8, "switch cache capacity n")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *numRules < 1 || *timeout < 1 || *cache < 1 {
		return fmt.Errorf("all parameters must be ≥ 1")
	}
	touts := make([]int, *numRules)
	for i := range touts {
		touts[i] = *timeout
	}
	basic := core.BasicStateCount(touts, *cache)
	compact := core.CompactStateCount(*numRules, *cache)
	fmt.Printf("|Rules| = %d, t_j = %d steps, n = %d\n", *numRules, *timeout, *cache)
	fmt.Printf("basic model states (closed form, §IV-A2): %.4g\n", basic)
	fmt.Printf("compact model states (§IV-B):             %d\n", compact)
	fmt.Printf("reduction factor:                          %.4g×\n", basic/float64(compact))
	return nil
}
