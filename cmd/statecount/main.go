// Command statecount evaluates the model state-space sizes of §IV: the
// basic model's closed form (§IV-A2) and the compact model's subset count
// (§IV-B), for given rule counts, timeouts, and cache capacity.
//
// Usage:
//
//	statecount -rules 10 -timeout 100 -cache 8
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"flowrecon/internal/core"
	"flowrecon/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("statecount", flag.ContinueOnError)
	numRules := fs.Int("rules", 10, "number of rules |Rules|")
	timeout := fs.Int("timeout", 100, "per-rule timeout t_j in steps")
	cache := fs.Int("cache", 8, "switch cache capacity n")
	telAddr := fs.String("telemetry-addr", "", "serve /metrics and pprof on this address after computing (blocks)")
	telOut := fs.String("telemetry-out", "", "write the telemetry snapshot (state-count gauges) as JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *numRules < 1 || *timeout < 1 || *cache < 1 {
		return fmt.Errorf("all parameters must be ≥ 1")
	}
	touts := make([]int, *numRules)
	for i := range touts {
		touts[i] = *timeout
	}
	basic := core.BasicStateCount(touts, *cache)
	compact := core.CompactStateCount(*numRules, *cache)
	fmt.Printf("|Rules| = %d, t_j = %d steps, n = %d\n", *numRules, *timeout, *cache)
	fmt.Printf("basic model states (closed form, §IV-A2): %.4g\n", basic)
	fmt.Printf("compact model states (§IV-B):             %d\n", compact)
	fmt.Printf("reduction factor:                          %.4g×\n", basic/float64(compact))

	if *telAddr != "" || *telOut != "" {
		reg := telemetry.NewRegistry(64)
		reg.Gauge("statecount_rules").Set(int64(*numRules))
		reg.Gauge("statecount_cache").Set(int64(*cache))
		reg.Gauge("statecount_states", "model", "compact").Set(int64(compact))
		if basic < float64(1<<62) {
			// The basic count explodes combinatorially; only a gauge-sized
			// value is exported (the printed %.4g is always exact enough).
			reg.Gauge("statecount_states", "model", "basic").Set(int64(basic))
		}
		if *telOut != "" {
			f, err := os.Create(*telOut)
			if err != nil {
				return err
			}
			defer f.Close()
			enc := json.NewEncoder(f)
			enc.SetIndent("", "  ")
			if err := enc.Encode(reg.Snapshot()); err != nil {
				return err
			}
			fmt.Printf("telemetry snapshot written to %s\n", *telOut)
		}
		if *telAddr != "" {
			srv, err := telemetry.Serve(*telAddr, reg)
			if err != nil {
				return err
			}
			defer srv.Close()
			fmt.Printf("telemetry on http://%s/metrics — ctrl-C to exit\n", srv.Addr())
			select {}
		}
	}
	return nil
}
