package main

import "testing"

func TestRun(t *testing.T) {
	if err := run([]string{"-rules", "4", "-timeout", "5", "-cache", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	if err := run([]string{"-rules", "0"}); err == nil {
		t.Fatal("zero rules accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
