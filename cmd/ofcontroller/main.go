// Command ofcontroller runs the reactive OpenFlow controller over real
// TCP: the Ryu-equivalent of the paper's testbed. Switches (cmd/ofswitch)
// connect to it; on every PACKET_IN it installs the highest-priority rule
// covering the reported flow.
//
// Usage:
//
//	ofcontroller -listen 127.0.0.1:6633 -seed 1 -processing 3.9ms
//	ofcontroller -detect -telemetry-addr 127.0.0.1:9091   # anomaly verdicts at /debug/detect
//
// Fault injection (chaos testing the control channel, all seeded and
// reproducible):
//
//	ofcontroller -fault-seed 7 -fault-loss 0.02 -fault-jitter 0.5 \
//	             -fault-stall-prob 0.01 -fault-stall 50
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"flowrecon/internal/detect"
	"flowrecon/internal/faults"
	"flowrecon/internal/flows"
	"flowrecon/internal/openflow"
	"flowrecon/internal/rules"
	"flowrecon/internal/stats"
	"flowrecon/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ofcontroller", flag.ContinueOnError)
	var (
		listen     = fs.String("listen", "127.0.0.1:6633", "TCP listen address")
		seed       = fs.Int64("seed", 1, "seed for the generated policy (must match the switch)")
		processing = fs.Duration("processing", 3900*time.Microsecond, "simulated controller compute time per PACKET_IN")
		step       = fs.Float64("step", 0.1, "model step Δ in seconds (scales rule timeouts)")
		telAddr    = fs.String("telemetry-addr", "", "serve /metrics, /debug/spans, /debug/live and pprof on this address (e.g. 127.0.0.1:9091)")
		spansOut   = fs.String("spans-out", "", "write recorded causal spans as JSONL to this file at exit (join with the switch's via inspect -perfetto)")
		detectF    = fs.Bool("detect", false, "run the streaming timing-anomaly detector on the PACKET_IN path (verdicts → wide events; state at /debug/detect)")

		faultSeed      = fs.Int64("fault-seed", 0, "seed for injected faults (derives every fault stream)")
		faultLoss      = fs.Float64("fault-loss", 0, "probability of dropping each sent control message")
		faultJitter    = fs.Float64("fault-jitter", 0, "mean added delay per sent message, ms (exponential)")
		faultReset     = fs.Float64("fault-reset", 0, "probability of resetting a connection per write")
		faultStallProb = fs.Float64("fault-stall-prob", 0, "probability of stalling a PACKET_IN decision")
		faultStall     = fs.Float64("fault-stall", 0, "stall duration when one fires, ms")
		faultSlow      = fs.Float64("fault-slow", 0, "processing-delay multiplier (>1 slows the controller)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	prof := faults.Profile{
		Seed: *faultSeed, LossProb: *faultLoss, JitterMeanMs: *faultJitter,
		ResetProb: *faultReset, StallProb: *faultStallProb, StallMs: *faultStall,
		SlowFactor: *faultSlow,
	}
	if err := prof.Validate(); err != nil {
		return err
	}
	universe := flows.ClientServerUniverse(flows.MakeIPv4(10, 0, 1, 0), 16)
	policy, err := rules.Generate(rules.DefaultGenerateConfig(*step), stats.NewRNG(*seed))
	if err != nil {
		return err
	}
	ctl := openflow.NewController(policy, universe, openflow.ControllerOptions{
		ProcessingDelay: *processing,
		StepSeconds:     *step,
		Faults:          prof,
	})
	if prof.Enabled() {
		fmt.Printf("fault injection armed: %+v\n", prof)
	}
	var det *detect.Detector
	if *detectF {
		det = detect.New(detect.DefaultConfig())
		ctl.SetDetector(det)
	}
	if *telAddr != "" || *spansOut != "" {
		reg := telemetry.NewRegistry(4096)
		// Namespace 2 = controller; see the matching ofswitch comment.
		reg.EnableSpans(0).SetNamespace(openflow.SpanNamespaceController)
		events := reg.EnableEvents(0)
		ctl.SetTelemetry(reg)
		if det != nil {
			det.SetTelemetry(reg)
			// Every threshold crossing becomes one wide event in the same
			// log as the controller's decision stream.
			det.OnFlag(func(v detect.Verdict) {
				ev := telemetry.NewWideEvent("detect.flag")
				ev.Node = "detect"
				ev.T = v.T
				ev.Flow = v.Source
				ev.Outcome = v.Reason
				ev.Detail = fmt.Sprintf("score=%.2f obs=%d", v.Score, v.Obs)
				events.Emit(ev)
			})
		}
		if *telAddr != "" {
			mux := telemetry.NewMux(reg)
			if det != nil {
				mux.Handle("/debug/detect", det)
			}
			srv, err := telemetry.ServeHandler(*telAddr, mux)
			if err != nil {
				return err
			}
			defer srv.Close()
			fmt.Printf("telemetry on http://%s/metrics (spans: /debug/spans, live: /debug/live, pprof: /debug/pprof/)\n", srv.Addr())
			if det != nil {
				fmt.Printf("detector armed: verdicts at http://%s/debug/detect\n", srv.Addr())
			}
		}
		if *spansOut != "" {
			path := *spansOut
			defer func() {
				f, err := os.Create(path)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					return
				}
				defer f.Close()
				if err := reg.Spans().WriteJSONL(f); err != nil {
					fmt.Fprintln(os.Stderr, err)
				}
			}()
		}
	}
	addr, err := ctl.Listen(*listen)
	if err != nil {
		return err
	}
	fmt.Printf("controller listening on %s (%d rules, Δ=%.3fs, processing %v)\n",
		addr, policy.Len(), *step, *processing)
	for _, r := range policy.Rules() {
		fmt.Printf("  %s\n", r)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Printf("shutting down after %d packet-ins\n", ctl.PacketIns())
	if det != nil {
		snap := det.Snap(0)
		fmt.Printf("detector: %d sources tracked, %d flagged\n", snap.SourcesTracked, snap.Flagged)
	}
	return ctl.Close()
}
