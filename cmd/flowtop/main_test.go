package main

import (
	"strings"
	"testing"

	"flowrecon/internal/telemetry"
)

func TestRenderDetectRow(t *testing.T) {
	u := telemetry.LiveUpdate{
		Seq:                3,
		ElapsedSec:         1,
		Trials:             40,
		DetectSources:      7,
		DetectFlagged:      2,
		DetectFlaggedDelta: 1,
	}
	var sb strings.Builder
	render(&sb, "127.0.0.1:9090", u)
	got := sb.String()
	if !strings.Contains(got, "detect          7 sources   flagged 2 (+1)") {
		t.Fatalf("detect row missing or malformed:\n%s", got)
	}

	// Without detector activity the row disappears — the panel stays
	// compact for attack-only runs.
	sb.Reset()
	u.DetectSources, u.DetectFlagged, u.DetectFlaggedDelta = 0, 0, 0
	render(&sb, "127.0.0.1:9090", u)
	if strings.Contains(sb.String(), "detect ") {
		t.Fatalf("detect row rendered with no detector running:\n%s", sb.String())
	}
}

func TestRenderSessionsRow(t *testing.T) {
	u := telemetry.LiveUpdate{
		Seq:              2,
		ElapsedSec:       1,
		Sessions:         64,
		SessionsDelta:    8,
		SessionsActive:   5,
		SessionsQueued:   2,
		ModelStoreModels: 1,
		ModelStoreBytes:  4 << 20,
		ModelStoreHitPct: 98,
	}
	var sb strings.Builder
	render(&sb, "127.0.0.1:8070", u)
	got := sb.String()
	if !strings.Contains(got, "sessions       64   (+8)   active 5   queued 2   store 1 models 4.0 MiB (98% hit)") {
		t.Fatalf("sessions row missing or malformed:\n%s", got)
	}

	sb.Reset()
	render(&sb, "127.0.0.1:8070", telemetry.LiveUpdate{Seq: 1, ElapsedSec: 1})
	if strings.Contains(sb.String(), "sessions ") {
		t.Fatalf("sessions row rendered outside the daemon:\n%s", sb.String())
	}
}
