package main

import (
	"strings"
	"testing"

	"flowrecon/internal/telemetry"
)

func TestRenderDetectRow(t *testing.T) {
	u := telemetry.LiveUpdate{
		Seq:                3,
		ElapsedSec:         1,
		Trials:             40,
		DetectSources:      7,
		DetectFlagged:      2,
		DetectFlaggedDelta: 1,
	}
	var sb strings.Builder
	render(&sb, "127.0.0.1:9090", u)
	got := sb.String()
	if !strings.Contains(got, "detect          7 sources   flagged 2 (+1)") {
		t.Fatalf("detect row missing or malformed:\n%s", got)
	}

	// Without detector activity the row disappears — the panel stays
	// compact for attack-only runs.
	sb.Reset()
	u.DetectSources, u.DetectFlagged, u.DetectFlaggedDelta = 0, 0, 0
	render(&sb, "127.0.0.1:9090", u)
	if strings.Contains(sb.String(), "detect ") {
		t.Fatalf("detect row rendered with no detector running:\n%s", sb.String())
	}
}
