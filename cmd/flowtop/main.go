// Command flowtop is the terminal companion of the /debug/live ops
// surface: it subscribes to a running flowrecon / ofswitch /
// ofcontroller process's SSE stream and renders a continuously updating
// dashboard of the attack — trial throughput, running accuracy per
// strategy, fault pressure, and whichever raw counters moved in the
// window.
//
// Usage:
//
//	flowtop -addr 127.0.0.1:9090
//	flowtop -addr 127.0.0.1:9090 -interval 250ms   # faster refresh
//	flowtop -addr 127.0.0.1:9090 -once             # one frame, no redraw
//	flowtop -addr 127.0.0.1:9090 -raw              # raw JSON frames
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"flowrecon/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("flowtop", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:9090", "telemetry address of the target process (host:port)")
		interval = fs.Duration("interval", time.Second, "server-side frame interval")
		once     = fs.Bool("once", false, "print a single frame and exit")
		raw      = fs.Bool("raw", false, "print the raw JSON frames instead of the dashboard")
		frames   = fs.Int("frames", 0, "exit after this many frames (0 = run until the stream closes)")
		plain    = fs.Bool("plain", false, "append frames instead of redrawing in place (for logs/pipes)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	url := fmt.Sprintf("http://%s/debug/live?interval=%s", *addr, interval.String())
	resp, err := http.Get(url)
	if err != nil {
		return fmt.Errorf("flowtop: connect %s: %w (is the process running with -telemetry-addr?)", *addr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("flowtop: %s returned %s", url, resp.Status)
	}

	seen := 0
	redraw := !*once && !*raw && !*plain
	err = readSSE(resp.Body, func(data string) error {
		seen++
		if *raw {
			fmt.Fprintln(out, data)
		} else {
			u, err := telemetry.DecodeLiveUpdate([]byte(data))
			if err != nil {
				return err
			}
			if redraw {
				// ANSI: home + clear to end of screen, so the dashboard
				// repaints in place like top(1).
				fmt.Fprint(out, "\x1b[H\x1b[2J")
			}
			render(out, *addr, u)
		}
		if *once || (*frames > 0 && seen >= *frames) {
			return errDone
		}
		return nil
	})
	if err == errDone {
		return nil
	}
	if err != nil {
		return err
	}
	if seen == 0 {
		return fmt.Errorf("flowtop: stream from %s closed before the first frame", *addr)
	}
	fmt.Fprintf(out, "stream closed after %d frames\n", seen)
	return nil
}

var errDone = fmt.Errorf("done")

// readSSE scans an SSE body and invokes fn with each frame's data
// payload. Only "event: live" frames (and bare data frames) are
// surfaced; comments and other event types are skipped.
func readSSE(r io.Reader, fn func(data string) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	event, data := "", ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if data != "" && (event == "" || event == "live") {
				if err := fn(data); err != nil {
					return err
				}
			}
			event, data = "", ""
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		}
	}
	return sc.Err()
}

// render paints one dashboard frame.
func render(out io.Writer, addr string, u telemetry.LiveUpdate) {
	fmt.Fprintf(out, "flowtop — %s   frame %d   window %.2fs\n", addr, u.Seq, u.ElapsedSec)
	fmt.Fprintf(out, "%s\n", strings.Repeat("─", 64))
	fmt.Fprintf(out, "trials   %8d   (+%d, %.1f/s)\n", u.Trials, u.TrialsDelta, u.TrialsPerSec)
	fmt.Fprintf(out, "probes   %8d   (+%d, %.1f/s)\n", u.Probes, u.ProbesDelta, u.ProbesPerSec)
	fmt.Fprintf(out, "faults   %8d   (+%d)    reconnects %d    lost %d\n",
		u.Faults, u.FaultsDelta, u.Reconnects, u.Lost)
	if u.DetectSources > 0 || u.DetectFlagged > 0 {
		fmt.Fprintf(out, "detect   %8d sources   flagged %d (+%d)\n",
			u.DetectSources, u.DetectFlagged, u.DetectFlaggedDelta)
	}
	if u.Sessions > 0 || u.SessionsActive > 0 || u.SessionsQueued > 0 {
		fmt.Fprintf(out, "sessions %8d   (+%d)   active %d   queued %d   store %d models %.1f MiB (%.0f%% hit)\n",
			u.Sessions, u.SessionsDelta, u.SessionsActive, u.SessionsQueued,
			u.ModelStoreModels, float64(u.ModelStoreBytes)/(1<<20), u.ModelStoreHitPct)
	}
	if u.FleetShards > 0 {
		fmt.Fprintf(out, "fleet    %8d shards   %d events (%.0f/s)   %d windows   %d crossings   occ %d\n",
			u.FleetShards, u.FleetEvents, u.FleetEventsPerSec, u.FleetWindows, u.FleetCrossings, u.FleetOccupancy)
	}

	if u.Accuracy > 0 || len(u.AccuracyByAttacker) > 0 {
		fmt.Fprintf(out, "accuracy %7.1f%%  %s\n", 100*u.Accuracy, accuracyBar(u.Accuracy, 24))
		names := make([]string, 0, len(u.AccuracyByAttacker))
		for n := range u.AccuracyByAttacker {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			a := u.AccuracyByAttacker[n]
			fmt.Fprintf(out, "  %-18s %6.1f%%  %s\n", n, 100*a, accuracyBar(a, 24))
		}
	}
	if len(u.Counters) > 0 {
		fmt.Fprintf(out, "moved this window:\n")
		keys := make([]string, 0, len(u.Counters))
		for k := range u.Counters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(out, "  %-52s %+d\n", k, u.Counters[k])
		}
	}
}

// accuracyBar renders v∈[0,1] as a fixed-width meter.
func accuracyBar(v float64, width int) string {
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	n := int(v*float64(width) + 0.5)
	return "[" + strings.Repeat("█", n) + strings.Repeat("·", width-n) + "]"
}
