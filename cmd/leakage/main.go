// Command leakage runs the §VII-B3 defense analysis: it measures how much
// a rule structure leaks about each flow (using the attacker's own Markov
// model as the meter) and optionally coarsens the structure by merging
// rules until the worst-case leakage falls below a target.
//
// Usage:
//
//	leakage -seed 3 -window 10
//	leakage -seed 3 -coarsen -target-bits 0.05
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"flowrecon/internal/core"
	"flowrecon/internal/defense"
	"flowrecon/internal/rules"
	"flowrecon/internal/stats"
	"flowrecon/internal/telemetry"
	"flowrecon/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("leakage", flag.ContinueOnError)
	var (
		seed       = fs.Int64("seed", 1, "random seed for the policy and rates")
		numFlows   = fs.Int("flows", 8, "flow universe size")
		numRules   = fs.Int("rules", 6, "policy size")
		maskBits   = fs.Int("maskbits", 3, "wildcard width")
		cache      = fs.Int("cache", 3, "switch table capacity")
		delta      = fs.Float64("delta", 0.1, "model step Δ in seconds")
		window     = fs.Float64("window", 5, "attack window in seconds")
		coarsen    = fs.Bool("coarsen", false, "greedily merge rules to reduce leakage")
		targetBits = fs.Float64("target-bits", 0.02, "coarsening target for worst-case leakage")
		maxMerges  = fs.Int("max-merges", 3, "coarsening budget")
		par        = fs.Int("parallelism", 1, "per-target profiling worker goroutines; the profile is identical at every level")
		telAddr    = fs.String("telemetry-addr", "", "serve /metrics, /debug/live and pprof on this address while the analysis runs")
		telOut     = fs.String("telemetry-out", "", "write the final telemetry snapshot (model build/evolve/cache counters) as JSON to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *telAddr != "" || *telOut != "" {
		reg := telemetry.NewRegistry(1024)
		// The leakage meter is the attacker's own Markov model, so the
		// model layer's counters are the interesting ones here.
		core.SetTelemetry(reg)
		if *telAddr != "" {
			srv, err := telemetry.Serve(*telAddr, reg)
			if err != nil {
				return err
			}
			defer srv.Close()
			fmt.Printf("telemetry on http://%s/metrics (live: /debug/live, pprof: /debug/pprof/)\n", srv.Addr())
		}
		if *telOut != "" {
			path := *telOut
			defer func() {
				if err := writeSnapshot(path, reg); err != nil {
					fmt.Fprintln(os.Stderr, err)
				}
			}()
		}
	}

	rng := stats.NewRNG(*seed)
	gc := rules.GenerateConfig{
		NumFlows: *numFlows,
		NumRules: *numRules,
		MaskBits: *maskBits,
		Timeouts: rules.DefaultGenerateConfig(*delta).Timeouts,
	}
	policy, err := rules.Generate(gc, rng)
	if err != nil {
		return err
	}
	cfg := core.Config{
		Rules:     policy,
		Rates:     workload.UniformRates(*numFlows, rng),
		Delta:     *delta,
		CacheSize: *cache,
	}
	steps := int(*window / *delta)

	fmt.Printf("policy (%d rules over %d flows, cache %d):\n", policy.Len(), *numFlows, *cache)
	for _, r := range policy.Rules() {
		fmt.Printf("  %s\n", r)
	}

	prof, err := defense.MeasureLeakageWorkers(cfg, steps, core.DefaultUSumParams(), *par)
	if err != nil {
		return err
	}
	fmt.Printf("\nleakage profile (window %.1fs): max %.4f bits, mean %.4f bits\n", *window, prof.MaxGain, prof.MeanGain)
	fmt.Println("flows an attacker learns most about:")
	for i, fl := range prof.RankTargets() {
		if i >= 5 {
			break
		}
		fmt.Printf("  target flow %2d: best probe %2d leaks %.4f of %.4f bits\n",
			fl.Target, fl.BestProbe, fl.Gain, fl.PriorEntropy)
	}

	if !*coarsen {
		return nil
	}
	fmt.Printf("\ncoarsening toward ≤ %.3f bits (≤ %d merges)…\n", *targetBits, *maxMerges)
	steps2, err := defense.Coarsen(cfg, steps, core.DefaultUSumParams(), *targetBits, *maxMerges)
	if err != nil {
		return err
	}
	if len(steps2) == 0 {
		fmt.Println("no merge reduces the worst-case leakage")
		return nil
	}
	for i, st := range steps2 {
		fmt.Printf("merge %d: rules %d+%d → max leakage %.4f bits (%d rules left)\n",
			i+1, st.MergedA, st.MergedB, st.Profile.MaxGain, st.Rules.Len())
	}
	final := steps2[len(steps2)-1]
	fmt.Println("\nfinal policy:")
	for _, r := range final.Rules.Rules() {
		fmt.Printf("  %s\n", r)
	}
	return nil
}

// writeSnapshot dumps the registry's final snapshot as indented JSON.
func writeSnapshot(path string, reg *telemetry.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(reg.Snapshot())
}
