package main

import "testing"

func TestRunProfile(t *testing.T) {
	if err := run([]string{"-seed", "2", "-window", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCoarsen(t *testing.T) {
	if testing.Short() {
		t.Skip("coarsening sweep")
	}
	if err := run([]string{"-seed", "2", "-window", "3", "-coarsen", "-max-merges", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
