package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"flowrecon/internal/experiment"
	"flowrecon/internal/trialrec"
)

// recordFixture writes a small deterministic recording to dir and returns
// its path.
func recordFixture(t *testing.T, dir string) string {
	t.Helper()
	p := experiment.DefaultParams()
	p.NumFlows, p.NumRules, p.MaskBits, p.CacheSize = 8, 6, 3, 3
	p.WindowSeconds = 5
	spec := experiment.RecordingSpec{
		Params:      p,
		ConfigSeed:  11,
		TrialSeed:   13,
		Trials:      6,
		Probes:      2,
		Measurement: experiment.DefaultMeasurement(),
	}
	path := filepath.Join(dir, "run.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, _, err := experiment.RecordTo(f, spec, nil); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestInspectSummaryGainsSpans(t *testing.T) {
	dir := t.TempDir()
	path := recordFixture(t, dir)

	var out bytes.Buffer
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"recording:", "naive", "model(m=2)", experiment.RestrictedAttackerName, "accuracy"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary lacks %q:\n%s", want, s)
		}
	}

	out.Reset()
	if err := run([]string{"-trial", "0", "-gains", path}, &out); err != nil {
		t.Fatal(err)
	}
	s = out.String()
	if !strings.Contains(s, "posterior") || !strings.Contains(s, "gain(b)") {
		t.Fatalf("gain table missing columns:\n%s", s)
	}
	if !strings.Contains(s, "model(m=2)") {
		t.Fatalf("gain table lacks the model attacker:\n%s", s)
	}

	out.Reset()
	if err := run([]string{"-trial", "0", "-spans", path}, &out); err != nil {
		t.Fatal(err)
	}
	s = out.String()
	if !strings.Contains(s, "trial [") || !strings.Contains(s, "attacker [") {
		t.Fatalf("span tree lacks trial/attacker spans:\n%s", s)
	}
	if !strings.Contains(s, "probe [") || !strings.Contains(s, "decision [") {
		t.Fatalf("span tree lacks probe/decision spans:\n%s", s)
	}

	// Unknown trial and unknown attacker are errors.
	if err := run([]string{"-trial", "99", "-gains", path}, &out); err == nil {
		t.Fatal("trial 99 accepted")
	}
	if err := run([]string{"-gains", "-attacker", "nope", path}, &out); err == nil {
		t.Fatal("unknown attacker accepted")
	}
}

func TestInspectEntropySVG(t *testing.T) {
	dir := t.TempDir()
	path := recordFixture(t, dir)
	svg := filepath.Join(dir, "conv.svg")
	var out bytes.Buffer
	if err := run([]string{"-entropy", svg, path}, &out); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(svg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "<svg") || !strings.Contains(string(b), "model(m=2)") {
		t.Fatalf("svg malformed (%d bytes)", len(b))
	}
}

func TestInspectDiffAndReplay(t *testing.T) {
	dir := t.TempDir()
	path := recordFixture(t, dir)

	// Identical file diffs clean.
	var out bytes.Buffer
	if err := run([]string{"-diff", path, path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "identical") {
		t.Fatalf("self-diff not clean:\n%s", out.String())
	}

	// Replay reproduces the recording bit-for-bit.
	out.Reset()
	if err := run([]string{"-replay", path}, &out); err != nil {
		t.Fatalf("replay diverged: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "identical") {
		t.Fatalf("replay not clean:\n%s", out.String())
	}

	// A flipped verdict is caught and located.
	rec, err := trialrec.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rec.Trials[2].Attackers[1].Verdict = !rec.Trials[2].Attackers[1].Verdict
	mutated := filepath.Join(dir, "mutated.jsonl")
	writeRecording(t, mutated, rec)
	out.Reset()
	err = run([]string{"-diff", mutated, path}, &out)
	if err == nil {
		t.Fatalf("mutated diff passed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "trial 2") || !strings.Contains(out.String(), "verdict") {
		t.Fatalf("divergence not located:\n%s", out.String())
	}
}

func writeRecording(t *testing.T, path string, rec *trialrec.Recording) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	if err := enc.Encode(rec.Header); err != nil {
		t.Fatal(err)
	}
	for _, tr := range rec.Trials {
		if err := enc.Encode(tr); err != nil {
			t.Fatal(err)
		}
	}
}

func TestInspectArgErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Fatal("no args accepted")
	}
	if err := run([]string{"/nonexistent/recording.jsonl"}, &out); err == nil {
		t.Fatal("missing file accepted")
	}
}
