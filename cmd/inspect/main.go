// Command inspect is the forensics viewer for trial recordings
// (internal/trialrec): it summarises a recorded run, renders per-probe
// information-gain tables and causal span trees for individual trials,
// plots entropy-convergence curves, and verifies determinism by diffing
// two recordings (-diff) or re-executing the recording's own spec
// (-replay) and pinpointing the first diverging probe.
//
// Usage:
//
//	inspect run.jsonl                        # summary
//	inspect -trial 3 -gains run.jsonl        # belief trajectory of trial 3
//	inspect -trial 3 -spans run.jsonl        # causal span trees of trial 3
//	inspect -entropy conv.svg run.jsonl      # entropy-convergence curves
//	inspect -diff other.jsonl run.jsonl      # first divergence between two runs
//	inspect -replay run.jsonl                # re-execute the spec and compare
//	inspect -perfetto t.json run.jsonl       # export -trial spans as a Chrome trace
//	inspect -perfetto t.json sw.jsonl ctl.jsonl  # join two daemons' span streams
//	inspect -validate-perfetto t.json        # check a trace loads (used by CI)
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"flowrecon/internal/experiment"
	"flowrecon/internal/plot"
	"flowrecon/internal/telemetry"
	"flowrecon/internal/trialrec"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("inspect", flag.ContinueOnError)
	var (
		trial    = fs.Int("trial", 0, "trial index for -gains / -spans")
		attacker = fs.String("attacker", "", "restrict -gains / -entropy to one attacker name")
		gains    = fs.Bool("gains", false, "print the per-probe gain table for -trial")
		spans    = fs.Bool("spans", false, "render the causal span trees for -trial")
		entropy  = fs.String("entropy", "", "write entropy-convergence curves as SVG to this file")
		diffPath = fs.String("diff", "", "diff against this second recording")
		replay   = fs.Bool("replay", false, "re-execute the recording's spec and diff the result")
		maxDiv   = fs.Int("max-div", 10, "maximum divergences to print")
		perfetto = fs.String("perfetto", "", "export causal spans as Chrome trace_event JSON (loadable at ui.perfetto.dev) to this file")
		validPF  = fs.Bool("validate-perfetto", false, "validate that the given file is a well-formed trace_event JSON and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *validPF {
		if fs.NArg() != 1 {
			return fmt.Errorf("inspect: -validate-perfetto expects exactly one trace file (got %d)", fs.NArg())
		}
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		n, err := telemetry.ValidatePerfetto(f)
		if err != nil {
			return fmt.Errorf("inspect: %s: %w", fs.Arg(0), err)
		}
		fmt.Fprintf(out, "perfetto trace %s: OK (%d span events)\n", fs.Arg(0), n)
		return nil
	}
	if *perfetto != "" {
		if fs.NArg() < 1 {
			return fmt.Errorf("inspect: -perfetto expects one or more input paths (recordings or span JSONL streams)")
		}
		all, err := loadSpans(fs.Args(), *trial)
		if err != nil {
			return err
		}
		f, err := os.Create(*perfetto)
		if err != nil {
			return err
		}
		if err := telemetry.WritePerfetto(all, f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "perfetto trace written to %s (%d spans; open at https://ui.perfetto.dev)\n", *perfetto, len(all))
		return nil
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("inspect: exactly one recording path expected (got %d)", fs.NArg())
	}
	rec, err := trialrec.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}

	printSummary(out, rec)

	if *gains {
		if err := printGains(out, rec, *trial, *attacker); err != nil {
			return err
		}
	}
	if *spans {
		if err := printSpans(out, rec, *trial); err != nil {
			return err
		}
	}
	if *entropy != "" {
		if err := writeEntropySVG(*entropy, rec, *attacker); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nentropy-convergence curves written to %s\n", *entropy)
	}
	if *diffPath != "" {
		other, err := trialrec.ReadFile(*diffPath)
		if err != nil {
			return err
		}
		return reportDiff(out, fmt.Sprintf("vs %s", *diffPath), rec, other, *maxDiv)
	}
	if *replay {
		fmt.Fprintf(out, "\nreplaying the recording's spec…\n")
		fresh, results, err := experiment.Replay(rec)
		if err != nil {
			return err
		}
		printResults(out, results)
		return reportDiff(out, "replay", rec, fresh, *maxDiv)
	}
	return nil
}

// printSummary reports the header plus per-attacker confusion matrices
// recomputed from the recorded verdicts.
func printSummary(out io.Writer, rec *trialrec.Recording) {
	h := rec.Header
	hash := h.ConfigHash
	if len(hash) > 12 {
		hash = hash[:12]
	}
	fmt.Fprintf(out, "recording: format=%d seed=%d trials=%d config=%s\n",
		h.Format, h.Seed, len(rec.Trials), hash)
	present := 0
	for _, t := range rec.Trials {
		if t.Truth {
			present++
		}
	}
	fmt.Fprintf(out, "ground truth: target present in %d/%d windows\n\n", present, len(rec.Trials))

	fmt.Fprintf(out, "%-16s %9s %6s %6s %6s %6s %8s %10s\n",
		"attacker", "accuracy", "TP", "TN", "FP", "FN", "probes", "posterior")
	for _, name := range h.Attackers {
		var tp, tn, fp, fn, probeSum, beliefN int
		var postSum float64
		for _, t := range rec.Trials {
			at, ok := t.FindAttacker(name)
			if !ok {
				continue
			}
			switch {
			case at.Verdict && t.Truth:
				tp++
			case !at.Verdict && !t.Truth:
				tn++
			case at.Verdict && !t.Truth:
				fp++
			default:
				fn++
			}
			probeSum += len(at.Probes)
			if n := len(at.Belief); n > 0 {
				postSum += at.Belief[n-1].Posterior
				beliefN++
			}
		}
		total := tp + tn + fp + fn
		acc := 0.0
		if total > 0 {
			acc = float64(tp+tn) / float64(total)
		}
		post := "—"
		if beliefN > 0 {
			post = fmt.Sprintf("%.3f", postSum/float64(beliefN))
		}
		avgProbes := 0.0
		if total > 0 {
			avgProbes = float64(probeSum) / float64(total)
		}
		fmt.Fprintf(out, "%-16s %8.1f%% %6d %6d %6d %6d %8.1f %10s\n",
			name, 100*acc, tp, tn, fp, fn, avgProbes, post)
	}
}

// printGains renders the belief trajectory of one trial as a table: one
// row per probe with prior → posterior, realized gain, and remaining
// entropy.
func printGains(out io.Writer, rec *trialrec.Recording, trial int, attacker string) error {
	t, err := pickTrial(rec, trial)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\ntrial %d: truth=%s, %d arrivals\n", t.Trial, presentStr(t.Truth), len(t.Arrivals))
	shown := 0
	for _, at := range t.Attackers {
		if attacker != "" && at.Name != attacker {
			continue
		}
		shown++
		fmt.Fprintf(out, "\n  %s → verdict %s\n", at.Name, presentStr(at.Verdict))
		if len(at.Belief) == 0 {
			fmt.Fprintf(out, "    (no belief trajectory: %d probes, outcomes %v)\n", len(at.Probes), at.Outcomes)
			continue
		}
		fmt.Fprintf(out, "    %3s %6s %4s %8s %10s %9s %9s %9s\n",
			"#", "probe", "hit", "prior", "posterior", "gain(b)", "H left", "P(path)")
		for _, s := range at.Belief {
			fmt.Fprintf(out, "    %3d %6d %4s %8.4f %10.4f %+9.4f %9.4f %9.2e\n",
				s.Index, s.Probe, hitMark(s.Hit), s.Prior, s.Posterior, s.GainBits, s.EntropyBits, s.PathProb)
		}
		if n := len(at.Belief); n > 0 {
			last := at.Belief[n-1]
			if len(last.TopStates) > 0 {
				fmt.Fprintf(out, "    final state belief:")
				for _, sp := range last.TopStates {
					fmt.Fprintf(out, " s%d=%.3f", sp.State, sp.P)
				}
				fmt.Fprintln(out)
			}
		}
	}
	if shown == 0 {
		return fmt.Errorf("inspect: no attacker %q in trial %d", attacker, t.Trial)
	}
	return nil
}

// printSpans renders the causal span forest of one trial as an indented
// tree with virtual-time intervals.
func printSpans(out io.Writer, rec *trialrec.Recording, trial int) error {
	t, err := pickTrial(rec, trial)
	if err != nil {
		return err
	}
	if len(t.Spans) == 0 {
		fmt.Fprintf(out, "\ntrial %d recorded no spans (recording made without span capture)\n", t.Trial)
		return nil
	}
	fmt.Fprintf(out, "\ntrial %d spans (%d):\n", t.Trial, len(t.Spans))
	forest := telemetry.BuildSpanForest(t.Spans)
	for _, root := range forest {
		renderSpan(out, root, 1)
	}
	return nil
}

func renderSpan(out io.Writer, n *telemetry.SpanNode, depth int) {
	s := n.Span
	for i := 0; i < depth; i++ {
		fmt.Fprint(out, "  ")
	}
	fmt.Fprintf(out, "%s [%.4fs → %.4fs, %.3fms]", s.Name, s.Start, s.End, 1e3*s.Duration())
	if s.Node != "" {
		fmt.Fprintf(out, " node=%s", s.Node)
	}
	if s.Flow >= 0 {
		fmt.Fprintf(out, " flow=%d", s.Flow)
	}
	if s.Rule >= 0 {
		fmt.Fprintf(out, " rule=%d", s.Rule)
	}
	if s.Detail != "" {
		fmt.Fprintf(out, " %s", s.Detail)
	}
	fmt.Fprintln(out)
	for _, c := range n.Children {
		renderSpan(out, c, depth+1)
	}
}

// writeEntropySVG plots, per attacker with a belief trajectory, the mean
// remaining entropy H(posterior) after probe k, averaged over all trials
// — the convergence picture of §V's greedy information gathering. Probe 0
// is the prior entropy before any observation.
func writeEntropySVG(path string, rec *trialrec.Recording, attacker string) error {
	var series []plot.Series
	for _, name := range rec.Header.Attackers {
		if attacker != "" && name != attacker {
			continue
		}
		sum := map[int]float64{}
		cnt := map[int]int{}
		for _, t := range rec.Trials {
			at, ok := t.FindAttacker(name)
			if !ok || len(at.Belief) == 0 {
				continue
			}
			// Index 0 on the x axis is the prior entropy.
			sum[0] += entropyBits(at.Belief[0].Prior)
			cnt[0]++
			for _, s := range at.Belief {
				sum[s.Index+1] += s.EntropyBits
				cnt[s.Index+1]++
			}
		}
		if len(cnt) == 0 {
			continue
		}
		xs := make([]int, 0, len(cnt))
		for k := range cnt {
			xs = append(xs, k)
		}
		sort.Ints(xs)
		s := plot.Series{Name: name}
		for _, k := range xs {
			s.X = append(s.X, float64(k))
			s.Y = append(s.Y, sum[k]/float64(cnt[k]))
		}
		series = append(series, s)
	}
	if len(series) == 0 {
		return fmt.Errorf("inspect: no belief trajectories to plot (recording has no model attackers?)")
	}
	c := plot.Chart{
		Title:  "Entropy convergence: mean H(X̂ | outcomes) after k probes",
		XLabel: "probes observed",
		YLabel: "remaining entropy (bits)",
		Series: series,
		YMin:   plot.Float(0),
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return c.RenderSVG(f)
}

// reportDiff prints the divergence report between two recordings and
// returns an error when they differ, so scripts can gate on the exit
// code.
func reportDiff(out io.Writer, label string, a, b *trialrec.Recording, maxDiv int) error {
	divs := trialrec.Diff(a, b)
	if len(divs) == 0 {
		fmt.Fprintf(out, "\n%s: recordings are identical (%d trials compared)\n", label, len(a.Trials))
		return nil
	}
	fmt.Fprintf(out, "\n%s: %d divergences; first at trial %d", label, len(divs), divs[0].Trial)
	if divs[0].Attacker != "" {
		fmt.Fprintf(out, ", attacker %s", divs[0].Attacker)
	}
	if divs[0].Probe >= 0 {
		fmt.Fprintf(out, ", probe %d", divs[0].Probe)
	}
	fmt.Fprintln(out)
	for i, d := range divs {
		if i >= maxDiv {
			fmt.Fprintf(out, "  … %d more\n", len(divs)-maxDiv)
			break
		}
		fmt.Fprintf(out, "  %s\n", d.String())
	}
	return fmt.Errorf("inspect: recordings diverge (%d differences)", len(divs))
}

func printResults(out io.Writer, results []experiment.AttackerResult) {
	fmt.Fprintf(out, "\n%-16s %9s %6s %6s %6s %6s\n", "attacker", "accuracy", "TP", "TN", "FP", "FN")
	for _, r := range results {
		fmt.Fprintf(out, "%-16s %8.1f%% %6d %6d %6d %6d\n",
			r.Name, 100*r.Accuracy(), r.TruePos, r.TrueNeg, r.FalsePos, r.FalseNeg)
	}
}

// loadSpans reads causal spans from each path. A trial recording
// contributes the spans of the -trial trial; a raw span JSONL stream (the
// ofswitch/ofcontroller -spans-out format) contributes everything it
// holds. Several paths concatenate — that is how the two TCP daemons'
// namespaced streams join into one forest.
func loadSpans(paths []string, trial int) ([]telemetry.Span, error) {
	var all []telemetry.Span
	for _, path := range paths {
		rec, recErr := trialrec.ReadFile(path)
		if recErr == nil {
			t, err := pickTrial(rec, trial)
			if err != nil {
				return nil, err
			}
			if len(t.Spans) == 0 {
				return nil, fmt.Errorf("inspect: %s trial %d has no spans (recording made without span capture)", path, trial)
			}
			all = append(all, t.Spans...)
			continue
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		spans, err := telemetry.ReadSpansJSONL(f)
		f.Close()
		if err != nil || len(spans) == 0 {
			return nil, fmt.Errorf("inspect: %s is neither a trial recording (%v) nor a span JSONL stream", path, recErr)
		}
		all = append(all, spans...)
	}
	return all, nil
}

func pickTrial(rec *trialrec.Recording, idx int) (trialrec.Trial, error) {
	for _, t := range rec.Trials {
		if t.Trial == idx {
			return t, nil
		}
	}
	return trialrec.Trial{}, fmt.Errorf("inspect: recording has no trial %d (0…%d)", idx, len(rec.Trials)-1)
}

func presentStr(v bool) string {
	if v {
		return "present"
	}
	return "absent"
}

func hitMark(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

// entropyBits is the binary entropy of p in bits.
func entropyBits(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}
