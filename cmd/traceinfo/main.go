// Command traceinfo inspects a packet capture or flow log through the
// same ingestion pipeline the experiments replay: parse → flow
// extraction (active/idle timeouts) → per-source flow classes → rates.
// It prints the summary a spec author needs — class count, span,
// per-class rates, the SHA-256 pin — and can write the extracted trace
// as canonical JSONL.
//
// Usage:
//
//	traceinfo capture.pcap
//	traceinfo -idle 15 -active 60 -classes 16 flows.csv
//	traceinfo -o trace.jsonl -json capture.pcap
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"flowrecon/internal/experiment"
	"flowrecon/internal/flows"
	"flowrecon/internal/ingest"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// summary is the -json output document.
type summary struct {
	Path     string    `json:"path"`
	SHA256   string    `json:"sha256"`
	Sources  int       `json:"sources"`
	Classes  int       `json:"classes"`
	Flows    int       `json:"flows"`
	Dropped  int       `json:"dropped,omitempty"`
	Arrivals int       `json:"arrivals"`
	Duration float64   `json:"duration"`
	Rates    []float64 `json:"rates"`
	Names    []string  `json:"names"`
}

func run(args []string, w *os.File) error {
	fs := flag.NewFlagSet("traceinfo", flag.ContinueOnError)
	var (
		active   = fs.Float64("active", 0, "active timeout in seconds: cut flows longer than this (0 = ingest default)")
		idle     = fs.Float64("idle", 0, "idle timeout in seconds: close flows after this much silence (0 = ingest default)")
		classes  = fs.Int("classes", 0, "keep only the N busiest sources as flow classes (0 = all)")
		out      = fs.String("o", "", "write the extracted trace as canonical JSONL to this file")
		jsonOut  = fs.Bool("json", false, "print the summary as JSON instead of text")
		maxShown = fs.Int("top", 16, "per-class rows shown in the text summary")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("traceinfo: exactly one capture or flow-log file required")
	}
	path := fs.Arg(0)

	res, err := ingest.IngestFile(path, ingest.IngestOptions{
		ActiveTimeout: *active,
		IdleTimeout:   *idle,
		Trace:         ingest.TraceOptions{MaxClasses: *classes},
	})
	if err != nil {
		return err
	}
	sum, err := experiment.HashFile(path)
	if err != nil {
		return err
	}

	s := summary{
		Path:     path,
		SHA256:   sum,
		Sources:  res.Sources,
		Classes:  res.Universe.Size(),
		Flows:    res.Flows,
		Dropped:  res.Dropped,
		Arrivals: len(res.Trace.Arrivals()),
		Duration: res.Duration,
		Rates:    res.Rates,
	}
	for i := 0; i < res.Universe.Size(); i++ {
		s.Names = append(s.Names, res.Universe.Name(flows.ID(i)))
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		if err := ingest.WriteTraceJSONL(f, res); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s); err != nil {
			return err
		}
	} else {
		fmt.Fprintf(w, "%s\n", path)
		fmt.Fprintf(w, "  sha256   %s\n", sum)
		fmt.Fprintf(w, "  span     %.3f s\n", s.Duration)
		fmt.Fprintf(w, "  flows    %d extracted from %d sources", s.Flows, s.Sources)
		if s.Dropped > 0 {
			fmt.Fprintf(w, " (%d arrivals dropped by the class cap)", s.Dropped)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "  classes  %d (per-source, rate-ranked)\n", s.Classes)
		shown := s.Classes
		if *maxShown > 0 && shown > *maxShown {
			shown = *maxShown
		}
		for i := 0; i < shown; i++ {
			fmt.Fprintf(w, "    class %2d  %-24s λ=%.4f/s\n", i, s.Names[i], s.Rates[i])
		}
		if shown < s.Classes {
			fmt.Fprintf(w, "    … %d more classes (raise -top to show)\n", s.Classes-shown)
		}
	}
	if *out != "" {
		fmt.Fprintf(w, "trace written to %s (%d arrivals)\n", *out, s.Arrivals)
	}
	return nil
}
