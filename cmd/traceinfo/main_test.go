package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"flowrecon/internal/ingest"
)

const goldenPcap = "../../internal/ingest/testdata/golden.pcap"

// capture runs traceinfo's run() with stdout redirected to a temp file
// and returns what it printed.
func capture(t *testing.T, args []string) string {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := run(args, f); err != nil {
		t.Fatal(err)
	}
	out, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

func TestRunTextSummary(t *testing.T) {
	out := capture(t, []string{goldenPcap})
	for _, want := range []string{"sha256", "classes  8", "class  0", "λ="} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestRunWritesTrace(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.jsonl")
	out := capture(t, []string{"-o", tracePath, "-json", goldenPcap})
	if !strings.Contains(out, `"classes": 8`) {
		t.Fatalf("json summary missing class count:\n%s", out)
	}
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, rates, err := ingest.ReadTraceJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(rates) != 8 || len(tr.Arrivals()) == 0 {
		t.Fatalf("written trace does not round-trip: %d classes, %d arrivals", len(rates), len(tr.Arrivals()))
	}
}

func TestRunClassCap(t *testing.T) {
	out := capture(t, []string{"-classes", "3", goldenPcap})
	if !strings.Contains(out, "classes  3") || !strings.Contains(out, "dropped by the class cap") {
		t.Fatalf("class cap not reflected:\n%s", out)
	}
}

func TestRunRejectsBadInvocation(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	if err := run(nil, devnull); err == nil {
		t.Fatal("no-file invocation accepted")
	}
	if err := run([]string{"does-not-exist.pcap"}, devnull); err == nil {
		t.Fatal("missing file accepted")
	}
}
