// Command flowrecond is the multi-tenant attack daemon: it accepts
// attack-session requests over HTTP (a JSON spec naming the target
// configuration, workload and budget), runs them concurrently against
// simulated targets on a shared batched scheduler, and streams each
// session's per-probe results back as JSONL. Sessions attacking the same
// configuration share one §IV-B model build through the model store.
//
// Usage:
//
//	flowrecond -addr 127.0.0.1:8070
//	flowrecond -addr 127.0.0.1:8070 -max-active 32 -workers 4 -model-budget-mb 256
//	flowrecond -addr 127.0.0.1:8070 -detect -fault-seed 9 -fault-loss 0.02
//
// Open a session with curl (see README for a full spec):
//
//	curl -sN -X POST http://127.0.0.1:8070/v1/sessions -d @session.json
//
// The ops surface rides on the same address: /metrics, /debug/live,
// /healthz, /readyz (503 while draining), /debug/detect with -detect.
// SIGTERM drains gracefully: new sessions are refused while open ones
// finish, bounded by -drain-timeout.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"flowrecon/internal/core"
	"flowrecon/internal/detect"
	"flowrecon/internal/faults"
	"flowrecon/internal/service"
	"flowrecon/internal/telemetry"
)

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	if err := runDaemon(cfg, sig, func(addr string) {
		fmt.Printf("flowrecond listening on http://%s (POST /v1/sessions; watch with: flowtop -addr %s)\n", addr, addr)
	}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// daemonConfig carries the parsed flag values.
type daemonConfig struct {
	addr         string
	maxActive    int
	maxQueue     int
	workers      int
	batch        int
	storeSize    int
	storeBudget  int64
	drainTimeout time.Duration
	detect       bool
	faults       faults.Profile
}

func parseFlags(args []string) (daemonConfig, error) {
	fs := flag.NewFlagSet("flowrecond", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "127.0.0.1:8070", "listen address for the session API and ops surface")
		maxActive   = fs.Int("max-active", 64, "concurrently running sessions")
		maxQueue    = fs.Int("max-queue", 128, "sessions waiting for a slot before 429s (-1 disables queueing)")
		workers     = fs.Int("workers", 0, "scheduler worker pool size (≤0 → 1)")
		batch       = fs.Int("batch", service.DefaultBatch, "trials a worker takes per target round")
		storeSize   = fs.Int("model-store", service.DefaultStoreSize, "model-store entry cap (LRU beyond it)")
		budgetMB    = fs.Int("model-budget-mb", 0, "model-store byte budget in MiB (0 = entry cap only)")
		drainT      = fs.Duration("drain-timeout", 30*time.Second, "graceful-drain bound on SIGTERM")
		detectF     = fs.Bool("detect", false, "aggregate every detecting session's defender view at /debug/detect")
		faultSeed   = fs.Int64("fault-seed", 0, "seed for default injected probe faults (chaos runs)")
		faultLoss   = fs.Float64("fault-loss", 0, "default probability each probe is lost (sessions may override)")
		faultJitter = fs.Float64("fault-jitter", 0, "default mean added probe delay, ms (exponential)")
	)
	if err := fs.Parse(args); err != nil {
		return daemonConfig{}, err
	}
	cfg := daemonConfig{
		addr:         *addr,
		maxActive:    *maxActive,
		maxQueue:     *maxQueue,
		workers:      *workers,
		batch:        *batch,
		storeSize:    *storeSize,
		storeBudget:  int64(*budgetMB) << 20,
		drainTimeout: *drainT,
		detect:       *detectF,
	}
	if *faultLoss > 0 || *faultJitter > 0 {
		cfg.faults = faults.Profile{Seed: *faultSeed, LossProb: *faultLoss, JitterMeanMs: *faultJitter}
		if err := cfg.faults.Validate(); err != nil {
			return daemonConfig{}, err
		}
	}
	return cfg, nil
}

// runDaemon brings the service up, reports its bound address through
// started, and blocks until a signal arrives, then drains and exits.
// Factored from main so tests can drive the full lifecycle.
func runDaemon(cfg daemonConfig, sig <-chan os.Signal, started func(addr string)) error {
	reg := telemetry.NewRegistry(8192)
	core.SetTelemetry(reg)
	reg.SetReady(false)

	var detAgg *detect.Detector
	if cfg.detect {
		detAgg = detect.New(detect.DefaultConfig())
		detAgg.SetTelemetry(reg)
	}
	m := service.NewManager(service.Config{
		MaxActive:       cfg.maxActive,
		MaxQueue:        cfg.maxQueue,
		Workers:         cfg.workers,
		Batch:           cfg.batch,
		StoreSize:       cfg.storeSize,
		StoreBytes:      cfg.storeBudget,
		Registry:        reg,
		Faults:          cfg.faults,
		DetectAggregate: detAgg,
	})
	mux := telemetry.NewMux(reg)
	service.Routes(mux, m)
	if detAgg != nil {
		mux.HandleFunc("/debug/detect", detAgg.ServeHTTP)
	}
	srv, err := telemetry.ServeHandler(cfg.addr, mux)
	if err != nil {
		return err
	}
	defer srv.Close()
	if cfg.faults.Enabled() {
		fmt.Printf("default fault profile armed: %+v (sessions may override)\n", cfg.faults)
	}
	reg.SetReady(true)
	if started != nil {
		started(srv.Addr())
	}

	s := <-sig
	fmt.Printf("%s: draining (bound %s)…\n", s, cfg.drainTimeout)
	// Readiness drops first so load balancers stop routing new sessions,
	// then the drain refuses stragglers while open sessions finish.
	reg.SetReady(false)
	ctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	drainErr := m.Drain(ctx)
	m.Shutdown()
	if drainErr != nil {
		return drainErr
	}
	fmt.Println("drained cleanly")
	if detAgg != nil {
		snap := detAgg.Snap(0)
		fmt.Printf("defender view: %d sources tracked, %d flagged\n", snap.SourcesTracked, snap.Flagged)
	}
	return nil
}
