package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"syscall"
	"testing"
	"time"

	"flowrecon/internal/experiment"
	"flowrecon/internal/service"
)

func testSpec(trials, probes int) service.SessionSpec {
	p := experiment.DefaultParams()
	p.NumFlows, p.NumRules, p.MaskBits, p.CacheSize = 8, 6, 3, 3
	p.Delta, p.WindowSeconds = 0.05, 5
	p.USum.MCSamples = 600
	return service.SessionSpec{
		Name: "e2e",
		Target: experiment.RecordingSpec{
			Params:      p,
			ConfigSeed:  11,
			TrialSeed:   7,
			Trials:      trials,
			Probes:      probes,
			Measurement: experiment.DefaultMeasurement(),
		},
	}
}

// startDaemon runs the full daemon lifecycle in the background and
// returns its bound address plus a shutdown func that delivers SIGTERM
// and waits for the clean-drain exit.
func startDaemon(t *testing.T, args ...string) (string, func() error) {
	t.Helper()
	cfg, err := parseFlags(append([]string{"-addr", "127.0.0.1:0"}, args...))
	if err != nil {
		t.Fatal(err)
	}
	sig := make(chan os.Signal, 1)
	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- runDaemon(cfg, sig, func(a string) { addrCh <- a }) }()
	var addr string
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("daemon exited before start: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never started")
	}
	return addr, func() error {
		sig <- syscall.SIGTERM
		select {
		case err := <-done:
			return err
		case <-time.After(30 * time.Second):
			t.Fatal("daemon never exited after SIGTERM")
			return nil
		}
	}
}

// TestDaemonEndToEnd boots flowrecond, checks the ops surface, runs one
// session over HTTP, and shuts down with a graceful SIGTERM drain.
func TestDaemonEndToEnd(t *testing.T) {
	addr, shutdown := startDaemon(t, "-max-active", "4", "-workers", "2")

	get := func(path string) (int, []byte) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz = %d", code)
	}
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz = %d before drain", code)
	}

	body, err := json.Marshal(testSpec(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+addr+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	stream, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("session POST = %d: %s", resp.StatusCode, stream)
	}
	if !bytes.Contains(stream, []byte(`"type":"result"`)) {
		t.Fatalf("stream missing result line:\n%s", stream)
	}

	// The session surfaces on the list endpoint and in /metrics.
	if _, b := get("/v1/sessions"); !bytes.Contains(b, []byte(`"e2e"`)) {
		t.Fatalf("session missing from list: %s", b)
	}
	if _, b := get("/metrics"); !bytes.Contains(b, []byte("service_sessions_total")) {
		t.Fatalf("service counters missing from /metrics")
	}

	if err := shutdown(); err != nil {
		t.Fatalf("graceful drain failed: %v", err)
	}
}

// TestDaemonChaosFlags boots the daemon with -fault-* flags (the chaos
// configuration) and verifies a session completes with probes actually
// lost to the default profile.
func TestDaemonChaosFlags(t *testing.T) {
	addr, shutdown := startDaemon(t, "-fault-seed", "3", "-fault-loss", "0.3", "-fault-jitter", "1")
	body, err := json.Marshal(testSpec(6, 4))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+addr+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	stream, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("session POST = %d", resp.StatusCode)
	}
	if !bytes.Contains(stream, []byte(`"lost":true`)) {
		t.Fatalf("chaos run dropped no probes:\n%s", stream)
	}
	if !bytes.Contains(stream, []byte(`"type":"result"`)) {
		t.Fatal("chaos session did not complete")
	}
	if err := shutdown(); err != nil {
		t.Fatal(err)
	}
}

// TestParseFlags covers flag validation.
func TestParseFlags(t *testing.T) {
	if _, err := parseFlags([]string{"-fault-loss", "1.5"}); err == nil {
		t.Fatal("invalid fault profile accepted")
	}
	cfg, err := parseFlags([]string{"-model-budget-mb", "2"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.storeBudget != 2<<20 {
		t.Fatalf("storeBudget = %d", cfg.storeBudget)
	}
}
