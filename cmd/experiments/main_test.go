package main

import (
	"os"
	"path/filepath"
	"testing"

	"flowrecon/internal/experiment"
)

func TestRunRequiresSelection(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no-experiment invocation accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestRunLatencyOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the latency experiment")
	}
	if err := run([]string{"-latency", "-seed", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig6SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a small figure-6 sweep")
	}
	dir := t.TempDir()
	if err := run([]string{"-fig6", "-scale", "small", "-configs", "2", "-trials", "20", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig6.csv")); err != nil {
		t.Fatalf("csv not written: %v", err)
	}
}

func TestRunWorkloadAndTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the workload comparison")
	}
	if err := run([]string{"-workload", "pareto", "-alpha", "1.3", "-scale", "small", "-trials", "30", "-seed", "5"}); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("..", "..", "internal", "ingest", "testdata", "golden.pcap")
	if err := run([]string{"-trace", golden, "-scale", "small", "-trials", "30", "-seed", "5"}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteCSVNoDir(t *testing.T) {
	if err := writeCSV("", "x.csv", []experiment.ConfigOutcome{}); err != nil {
		t.Fatal(err)
	}
}
