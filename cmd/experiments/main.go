// Command experiments regenerates every table and figure of the paper's
// evaluation (§VI): the latency characterization, Figure 6a/6b and Figure
// 7a/7b. Results print as text tables; per-configuration CSVs can be
// written for plotting.
//
// Usage:
//
//	experiments -all
//	experiments -fig6 -configs 100 -trials 100
//	experiments -latency
//	experiments -detect
//	experiments -fig7 -csv out/
//	experiments -fleet -topo fattree -switches 1000 -shards 8
//	experiments -workloads
//	experiments -workload pareto -alpha 1.3
//	experiments -trace capture.pcap
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"flowrecon/internal/core"
	"flowrecon/internal/experiment"
	"flowrecon/internal/plot"
	"flowrecon/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		all      = fs.Bool("all", false, "run every experiment")
		fig6     = fs.Bool("fig6", false, "reproduce Figure 6a/6b")
		fig7     = fs.Bool("fig7", false, "reproduce Figure 7a/7b")
		latency  = fs.Bool("latency", false, "reproduce the §VI-A latency table")
		detectF  = fs.Bool("detect", false, "run the defender evaluation (detection latency, FPR, stealth tradeoff)")
		configs  = fs.Int("configs", 40, "qualifying network configurations per figure (paper: 100)")
		trials   = fs.Int("trials", 100, "trials per configuration (paper: 100)")
		seed     = fs.Int64("seed", 1, "root random seed")
		csvDir   = fs.String("csv", "", "directory for per-configuration CSV output")
		attempts = fs.Int("attempts", 0, "configuration sampling budget (0 = auto: ≥1000, 100×configs)")
		svgDir   = fs.String("svg", "", "directory for SVG renderings of the figures")
		scale    = fs.String("scale", "paper", "parameter scale: paper (16 flows/12 rules) or small (8 flows/6 rules)")
		telOut   = fs.String("telemetry-out", "", "write the final telemetry snapshot (probe histograms, counters) as JSON to this file")
		par      = fs.Int("parallelism", 1, "trial-runner worker goroutines per configuration; results are identical at every level")

		fleet    = fs.Bool("fleet", false, "run the fleet-scale multi-switch reconnaissance experiment (EXPERIMENTS.md §16)")
		switches = fs.Int("switches", 20, "fleet fabric size floor (generated topologies round up)")
		shards   = fs.Int("shards", 1, "fleet simulation shards; results are byte-identical at every count")
		topo     = fs.String("topo", "fattree", "fleet topology: backbone, fattree, or leafspine")

		workloads = fs.Bool("workloads", false, "run the workload-robustness experiment (EXPERIMENTS.md §17): the full attack + detector FPR on every non-Poisson traffic shape")
		workloadF = fs.String("workload", "", "run §17 with just this shape vs the Poisson reference: bursty, pareto, lognormal, diurnal, flash")
		traceF    = fs.String("trace", "", "run the attack on traffic replayed from this capture (pcap) or flow log (csv/jsonl), rates fitted from the file")
		alphaF    = fs.Float64("alpha", 0, "Pareto tail index for -workload pareto (default 1.5)")
		sigmaF    = fs.Float64("sigma", 0, "log-normal shape for -workload lognormal (default 1.5)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !*all && !*fig6 && !*fig7 && !*latency && !*detectF && !*fleet && !*workloads && *workloadF == "" && *traceF == "" {
		fs.Usage()
		return fmt.Errorf("select an experiment (-all, -fig6, -fig7, -latency, -detect, -fleet, -workloads, -workload, -trace)")
	}
	var reg *telemetry.Registry
	if *telOut != "" {
		reg = telemetry.NewRegistry(8192)
		// Route the model layer's build/evolve/cache instruments into the
		// same snapshot as the experiment metrics.
		core.SetTelemetry(reg)
	}

	params := experiment.DefaultParams()
	if *scale == "small" {
		params.NumFlows, params.NumRules, params.MaskBits, params.CacheSize = 8, 6, 3, 3
		params.WindowSeconds = 5
	}

	if *all || *latency {
		start := time.Now()
		report, err := experiment.MeasureLatency(400, 120, *seed, 3900*time.Microsecond)
		if err != nil {
			return fmt.Errorf("latency: %w", err)
		}
		if err := experiment.WriteLatency(os.Stdout, report); err != nil {
			return err
		}
		fmt.Printf("(latency experiment took %v)\n\n", time.Since(start).Round(time.Millisecond))
	}

	if *all || *detectF {
		start := time.Now()
		rep, err := experiment.RunDetectionEval(experiment.DetectionEvalOptions{
			Params:    params,
			Seed:      *seed,
			Telemetry: reg,
		})
		if err != nil {
			return fmt.Errorf("detect: %w", err)
		}
		if err := experiment.WriteDetection(os.Stdout, rep); err != nil {
			return err
		}
		fmt.Printf("(detection experiment took %v)\n\n", time.Since(start).Round(time.Millisecond))
	}

	if *all || *fleet {
		start := time.Now()
		fo := experiment.DefaultFleetOptions()
		fo.Topo, fo.Switches, fo.Shards = *topo, *switches, *shards
		fo.Trials, fo.Seed, fo.Registry = *trials, *seed, reg
		out, err := experiment.RunFleetTrials(fo)
		if err != nil {
			return fmt.Errorf("fleet: %w", err)
		}
		if err := experiment.WriteFleet(os.Stdout, out); err != nil {
			return err
		}
		fmt.Printf("(fleet experiment took %v)\n\n", time.Since(start).Round(time.Millisecond))
	}

	if *all || *workloads || *workloadF != "" {
		start := time.Now()
		rows := experiment.StandardWorkloads()
		if *workloadF != "" {
			spec, err := experiment.TraceSpecForCLI("", *workloadF, *alphaF, *sigmaF)
			if err != nil {
				return err
			}
			rows = []experiment.WorkloadRow{
				{Name: "poisson", Spec: experiment.TraceSourceSpec{Kind: "poisson"}},
				{Name: *workloadF, Spec: *spec},
			}
		}
		cmp, err := experiment.RunWorkloadComparisonRows(params, *seed, *trials, 2, 200, rows)
		if err != nil {
			return fmt.Errorf("workloads: %w", err)
		}
		if err := experiment.WriteWorkloads(os.Stdout, cmp); err != nil {
			return err
		}
		fmt.Printf("(workload experiment took %v)\n\n", time.Since(start).Round(time.Millisecond))
	}

	if *traceF != "" {
		start := time.Now()
		spec, err := experiment.TraceSpecForCLI(*traceF, "", 0, 0)
		if err != nil {
			return err
		}
		results, nc, err := experiment.RunWorkloadsOnTrace(params, spec, *seed, *trials, 2)
		if err != nil {
			return fmt.Errorf("trace replay: %w", err)
		}
		fmt.Printf("Ingested-capture attack (%s, sha256 %s…)\n", *traceF, spec.SHA256[:12])
		fmt.Printf("  target flow %d (fitted λ=%.3f/s), %d trials\n", nc.Target, nc.Rates[nc.Target], *trials)
		for _, r := range results {
			fmt.Printf("  %-16s accuracy %5.1f%%  (TP %d TN %d FP %d FN %d)\n",
				r.Name, 100*r.Accuracy(), r.TruePos, r.TrueNeg, r.FalsePos, r.FalseNeg)
		}
		fmt.Printf("(trace replay took %v)\n\n", time.Since(start).Round(time.Millisecond))
	}

	if *all || *fig6 {
		start := time.Now()
		opts := experiment.Fig6Options{
			Params:          params,
			Configs:         *configs,
			TrialsPerConfig: *trials,
			MaxAttempts:     samplingBudget(*attempts, *configs),
			Seed:            *seed,
			Telemetry:       reg,
			Parallelism:     *par,
		}
		res, err := experiment.RunFig6(opts)
		if err != nil {
			return fmt.Errorf("fig6: %w", err)
		}
		if err := experiment.WriteFig6(os.Stdout, res); err != nil {
			return err
		}
		if err := writeCSV(*csvDir, "fig6.csv", res.Outcomes); err != nil {
			return err
		}
		if err := writeSVGs(*svgDir, map[string]*plot.Chart{
			"fig6a": experiment.Fig6aChart(res),
			"fig6b": experiment.Fig6bChart(res),
		}); err != nil {
			return err
		}
		fmt.Printf("(figure 6 took %v)\n\n", time.Since(start).Round(time.Second))
	}

	if *all || *fig7 {
		start := time.Now()
		opts := experiment.Fig7Options{
			Params:          params,
			Configs:         *configs,
			TrialsPerConfig: *trials,
			MaxAttempts:     samplingBudget(*attempts, *configs),
			Seed:            *seed + 1,
			Telemetry:       reg,
			Parallelism:     *par,
		}
		res, err := experiment.RunFig7(opts)
		if err != nil {
			return fmt.Errorf("fig7: %w", err)
		}
		if err := experiment.WriteFig7(os.Stdout, res); err != nil {
			return err
		}
		if err := writeCSV(*csvDir, "fig7.csv", res.Outcomes); err != nil {
			return err
		}
		if err := writeSVGs(*svgDir, map[string]*plot.Chart{
			"fig7a": experiment.Fig7aChart(res),
			"fig7b": experiment.Fig7bChart(res),
		}); err != nil {
			return err
		}
		fmt.Printf("(figure 7 took %v)\n\n", time.Since(start).Round(time.Second))
	}
	if reg != nil {
		if err := writeSnapshot(*telOut, reg); err != nil {
			return err
		}
		fmt.Printf("telemetry snapshot written to %s\n", *telOut)
	}
	return nil
}

// writeSnapshot dumps the registry's final state as indented JSON.
func writeSnapshot(path string, reg *telemetry.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(reg.Snapshot())
}

// samplingBudget derives the configuration-sampling budget: explicit when
// given, otherwise generous — the §VI-B qualifying filters accept only a
// small fraction of random configurations (see DESIGN.md §3).
func samplingBudget(explicit, configs int) int {
	if explicit > 0 {
		return explicit
	}
	budget := 100 * configs
	if budget < 1000 {
		budget = 1000
	}
	return budget
}

// writeSVGs renders charts into dir as <name>.svg; no-op when dir is empty.
func writeSVGs(dir string, charts map[string]*plot.Chart) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return experiment.WriteSVGs(charts, func(name string) (io.WriteCloser, error) {
		return os.Create(filepath.Join(dir, name+".svg"))
	})
}

func writeCSV(dir, name string, outcomes []experiment.ConfigOutcome) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return experiment.WriteCSV(f, outcomes)
}
