module flowrecon

go 1.22
