// Webvisit reproduces the paper's Figure 1 / §III-A example end to end on
// the simulated network: the attacker wants to know whether host A
// recently visited server B. It sends two probes — one with its own
// source address (guaranteed miss, calibrating t_fetch + t_setup) and one
// forged with A's address — and compares the response times.
//
//	go run ./examples/webvisit
package main

import (
	"fmt"
	"log"

	"flowrecon/internal/controller"
	"flowrecon/internal/flows"
	"flowrecon/internal/netsim"
	"flowrecon/internal/rules"
	"flowrecon/internal/stats"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const nhosts = 16
	base := flows.MakeIPv4(10, 0, 1, 0)
	universe := flows.ClientServerUniverse(base, nhosts)

	// Microflow policy: one rule per source host (the simple case of
	// §III-B1, where a hit identifies the flow exactly). 10-step idle
	// timeout at Δ=0.1 s → rules live 1 s without traffic.
	var rs []rules.Rule
	for i := 0; i < nhosts; i++ {
		rs = append(rs, rules.Rule{
			Name:     fmt.Sprintf("host%d", i),
			Cover:    flows.SetOf(flows.ID(i)),
			Priority: i + 1,
			Timeout:  10,
		})
	}
	policy, err := rules.NewSet(rs)
	if err != nil {
		return err
	}

	sim := netsim.NewSim()
	net := netsim.NewNetwork(sim, universe, netsim.NewControllerModel(policy, controller.Options{}),
		netsim.DefaultLatencyModel(), stats.NewRNG(42))
	if err := netsim.StanfordBackbone().Build(net, 9, 0.1); err != nil {
		return err
	}
	setup, err := netsim.AttachEvaluationHosts(net, base, nhosts, "yoza_rtr", "boza_rtr")
	if err != nil {
		return err
	}
	hostA := setup.SourceHosts[3] // "host A"
	server := setup.Destination   // "server B"

	for _, scenario := range []struct {
		name    string
		aVisits bool
	}{
		{"host A visited server B 0.4s ago", true},
		{"host A has not talked to server B", false},
	} {
		start := sim.Now()
		if scenario.aVisits {
			if _, err := net.SendEcho(hostA, server, start); err != nil {
				return err
			}
		}
		// The attacker probes 0.4 s later: first its own flow f1
		// (calibration: always a miss), then the forged flow f2 with
		// A's source address.
		probeAt := start + 0.4
		calib, err := net.SendEcho(setup.SourceHosts[9], server, probeAt)
		if err != nil {
			return err
		}
		forged, err := net.SendEcho(hostA, server, probeAt+0.01)
		if err != nil {
			return err
		}
		sim.RunUntil(probeAt + 3) // run past the 1 s idle timeouts

		fmt.Printf("%s:\n", scenario.name)
		fmt.Printf("  f1 (own address):     %.3f ms   → t_fetch + t_setup baseline\n", calib.RTT*1e3)
		fmt.Printf("  f2 (forged as A):     %.3f ms\n", forged.RTT*1e3)
		verdict := forged.RTT*1e3 < 1.0 // the paper's 1 ms threshold
		fmt.Printf("  inference: host A %s server B recently (threshold 1 ms)\n\n",
			map[bool]string{true: "VISITED", false: "did not visit"}[verdict])
		if verdict != scenario.aVisits {
			return fmt.Errorf("misclassified scenario %q", scenario.name)
		}
	}
	fmt.Println("both scenarios classified correctly via the timing side channel")
	return nil
}
