// Idslogging reproduces the paper's IDS-reconnaissance motivation (§I,
// §III-A): an attacker who just attempted an intrusion wants to know
// whether the IDS logged a record to the logging database — i.e. whether
// the IDS→logDB flow occurred recently. The logging flow shares wildcard
// rules with other datacenter traffic, so the naive probe is ambiguous;
// the model finds a better one.
//
//	go run ./examples/idslogging
package main

import (
	"fmt"
	"log"

	"flowrecon/internal/core"
	"flowrecon/internal/experiment"
	"flowrecon/internal/flows"
	"flowrecon/internal/rules"
	"flowrecon/internal/stats"
	"flowrecon/internal/workload"
)

// Flow classes in the monitoring subnet.
const (
	flowIDSLog  = flows.ID(0) // IDS → logging DB: the target
	flowBackup  = flows.ID(1) // backup agent → logging DB (same /30 as IDS)
	flowMetrics = flows.ID(2) // metrics collector → logging DB
	flowWebLog  = flows.ID(3) // web frontend → logging DB
	numFlows    = 4
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The operator's policy: one wildcard rule for the security /30 (IDS
	// and the backup agent), one for the chatty application loggers, and
	// a narrower metrics rule shadowed by it.
	policy, err := rules.NewSet([]rules.Rule{
		{Name: "secnet→logdb", Cover: flows.SetOf(flowIDSLog, flowBackup), Priority: 3, Timeout: 80},
		{Name: "apps→logdb", Cover: flows.SetOf(flowMetrics, flowWebLog), Priority: 2, Timeout: 120},
		{Name: "metrics→logdb", Cover: flows.SetOf(flowMetrics), Priority: 1, Timeout: 40},
	})
	if err != nil {
		return err
	}
	rates := []float64{
		0.08, // IDS logs are event-driven and rare — exactly what we probe for
		0.02, // backups are infrequent
		1.5,  // metrics flow constantly
		0.6,  // web logs are common
	}
	cfg := core.Config{Rules: policy, Rates: rates, Delta: 0.1, CacheSize: 2}

	const windowSeconds = 10.0
	steps := int(windowSeconds / cfg.Delta)
	sel, err := core.NewCompactSelector(cfg, flowIDSLog, steps, core.DefaultUSumParams())
	if err != nil {
		return err
	}

	fmt.Printf("did the IDS log a record in the last %.0fs?  prior P(no) = %.3f\n\n", windowSeconds, sel.PAbsent())
	fmt.Println("candidate probes:")
	names := []string{"IDS→logDB (the target)", "backup→logDB", "metrics→logDB", "weblog→logDB"}
	for _, f := range sel.AllFlows() {
		e := sel.Evaluate(f)
		fmt.Printf("  %-24s gain=%.4f bits  P(hit)=%.3f\n", names[f], e.Gain, e.PHit)
	}
	best, _ := sel.Best(sel.AllFlows())
	fmt.Printf("\nmodel-selected probe: %s\n\n", names[best.Flow])

	// Measure both strategies against ground truth over simulated
	// traffic, reusing the experiment trial machinery.
	nc := &experiment.NetworkConfig{
		Params: experiment.Params{
			NumFlows: numFlows, NumRules: policy.Len(), CacheSize: cfg.CacheSize,
			Delta: cfg.Delta, WindowSeconds: windowSeconds,
			AbsenceLo: 0, AbsenceHi: 1,
		},
		Rules: policy, Rates: rates, Target: flowIDSLog, Core: cfg, Selector: sel,
	}
	model, err := core.NewModelAttacker(sel, sel.AllFlows(), 1, core.DecideByPosterior)
	if err != nil {
		return err
	}
	pair, err := core.NewModelAttacker(sel, sel.AllFlows(), 2, core.DecideByPosterior)
	if err != nil {
		return err
	}
	attackers := []core.Attacker{
		&core.NaiveAttacker{TargetFlow: flowIDSLog},
		model,
		pair,
	}
	results, err := experiment.RunTrials(nc, attackers, 400, experiment.DefaultMeasurement(), stats.NewRNG(7))
	if err != nil {
		return err
	}
	fmt.Println("accuracy over 400 trials of simulated datacenter traffic:")
	for _, r := range results {
		fmt.Printf("  %-12s %5.1f%%  (TP=%d TN=%d FP=%d FN=%d)\n",
			r.Name, 100*r.Accuracy(), r.TruePos, r.TrueNeg, r.FalsePos, r.FalseNeg)
	}

	// Show a single concrete inference, tied back to raw traffic.
	trace, err := workload.GeneratePoisson(workload.PoissonConfig{Rates: rates, Duration: windowSeconds}, stats.NewRNG(99))
	if err != nil {
		return err
	}
	truth := trace.OccurredWithin(flowIDSLog, windowSeconds, windowSeconds)
	fmt.Printf("\nexample window: %d arrivals; IDS actually logged: %v\n", trace.Len(), truth)
	return nil
}
