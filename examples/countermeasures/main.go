// Countermeasures evaluates the §VII-B defenses on the simulated network:
//
//  1. adding delays to every flow's first packets (hides the timing gap),
//  2. proactive rule installation (no misses to observe), and
//  3. the undefended baseline.
//
// For each, the attacker replays the §III-A probe and we measure how well
// its 1 ms threshold distinguishes "target flow occurred" from "did not".
//
//	go run ./examples/countermeasures
package main

import (
	"fmt"
	"log"

	"flowrecon/internal/controller"
	"flowrecon/internal/flows"
	"flowrecon/internal/netsim"
	"flowrecon/internal/rules"
	"flowrecon/internal/stats"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const nhosts = 8
	base := flows.MakeIPv4(10, 0, 1, 0)

	defenses := []struct {
		name          string
		extraHitDelay float64
		opts          controller.Options
		note          string
	}{
		{"no defense", 0, controller.Options{}, "side channel wide open"},
		{"adding delays (2 ms)", 2e-3, controller.Options{}, "per-packet latency cost on every flow"},
		{"proactive rules", 0, controller.Options{Proactive: true}, "needs table capacity for the full policy"},
	}

	fmt.Println("§VII-B countermeasures against the flow-reconnaissance probe")
	fmt.Printf("%-22s %14s %14s %10s\n", "defense", "P(detect|occur)", "P(FP|absent)", "accuracy")

	for _, d := range defenses {
		universe := flows.ClientServerUniverse(base, nhosts)
		var rl []rules.Rule
		for i := 0; i < nhosts; i++ {
			rl = append(rl, rules.Rule{
				Name: fmt.Sprintf("h%d", i), Cover: flows.SetOf(flows.ID(i)),
				Priority: i + 1, Timeout: 10,
			})
		}
		policy, err := rules.NewSet(rl)
		if err != nil {
			return err
		}
		ctrl := netsim.NewControllerModel(policy, d.opts)
		ctrl.ExtraHitDelay = d.extraHitDelay

		sim := netsim.NewSim()
		net := netsim.NewNetwork(sim, universe, ctrl, netsim.DefaultLatencyModel(), stats.NewRNG(5))
		if err := netsim.StanfordBackbone().Build(net, 9, 0.1); err != nil {
			return err
		}
		setup, err := netsim.AttachEvaluationHosts(net, base, nhosts, "yoza_rtr", "boza_rtr")
		if err != nil {
			return err
		}

		const trials = 200
		tp, fp, occ := 0, 0, 0
		at := 0.0
		rng := stats.NewRNG(11)
		for i := 0; i < trials; i++ {
			occurred := rng.Bernoulli(0.5)
			if occurred {
				occ++
				if _, err := net.SendEcho(setup.SourceHosts[2], setup.Destination, at); err != nil {
					return err
				}
			}
			probe, err := net.SendEcho(setup.SourceHosts[2], setup.Destination, at+0.4)
			if err != nil {
				return err
			}
			at += 5 // let rules expire between trials
			sim.RunUntil(at)
			detected := probe.RTT < 1e-3 // hit ⇒ the victim's rule was cached
			if occurred && detected {
				tp++
			}
			if !occurred && detected {
				fp++
			}
		}
		det := float64(tp) / float64(occ)
		fpr := float64(fp) / float64(trials-occ)
		acc := (float64(tp) + float64(trials-occ-fp)) / float64(trials)
		fmt.Printf("%-22s %14.2f %14.2f %9.1f%%   %s\n", d.name, det, fpr, 100*acc, d.note)
	}
	fmt.Println("\nan effective defense drives accuracy toward 50% (guessing)")
	return nil
}
