// Quickstart: build the paper's Figure 2c scenario, fit the compact
// Markov model, and let it pick the optimal probe flow.
//
//	go run ./examples/quickstart
//
// The punchline reproduces §III-B: the best probe for target flow f1 is
// NOT f1 itself but f2, because a hit on f2 certifies the high-priority
// rule that only f1 or f2 can install — and f2 is rare.
package main

import (
	"fmt"
	"log"

	"flowrecon/internal/core"
	"flowrecon/internal/flows"
	"flowrecon/internal/rules"
)

func main() {
	// Figure 2c: rule1 covers {f1, f2} at high priority; rule2 covers
	// {f1, f3} at low priority. Flows are indexed f1=0, f2=1, f3=2.
	policy, err := rules.NewSet([]rules.Rule{
		{Name: "rule1", Cover: flows.SetOf(0, 1), Priority: 2, Timeout: 6},
		{Name: "rule2", Cover: flows.SetOf(0, 2), Priority: 1, Timeout: 6},
	})
	if err != nil {
		log.Fatal(err)
	}

	cfg := core.Config{
		Rules:     policy,
		Rates:     []float64{0.07, 0.02, 1.2}, // f1 occasional, f2 rare, f3 chatty
		Delta:     0.25,                       // seconds per model step
		CacheSize: 2,
	}

	// The attacker wants to know: did f1 occur within the last 10 s?
	const target = flows.ID(0)
	steps := 40 // 10 s / Δ
	sel, err := core.NewCompactSelector(cfg, target, steps, core.DefaultUSumParams())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("prior: P(f1 absent) = %.3f, H(X̂) = %.3f bits\n\n", sel.PAbsent(), sel.PriorEntropy())
	fmt.Println("flow   gain(bits)  P(hit)  P(present|hit)  P(absent|miss)")
	for _, f := range sel.AllFlows() {
		e := sel.Evaluate(f)
		mark := "  "
		if f == target {
			mark = "f̂ "
		}
		fmt.Printf("%s f%d   %.4f      %.3f   %.3f           %.3f\n",
			mark, f+1, e.Gain, e.PHit, e.PostPresentGivenHit, e.PostAbsentGivenMiss)
	}

	best, _ := sel.Best(sel.AllFlows())
	fmt.Printf("\noptimal probe: f%d", best.Flow+1)
	if best.Flow != target {
		fmt.Print("  ← not the target flow (the Figure 2c effect)")
	}
	fmt.Println()

	// Two probes beat one: the non-adaptive pair with the highest joint
	// information gain (§V-B).
	pair, _ := sel.BestSequence(sel.AllFlows(), 2)
	fmt.Printf("best probe pair: f%d then f%d (gain %.4f vs %.4f bits single)\n",
		pair.Flows[0]+1, pair.Flows[1]+1, pair.Gain, best.Gain)
	for _, outcome := range []string{"00", "01", "10", "11"} {
		fmt.Printf("  outcomes %s → P(f1 occurred) = %.3f\n", outcome, pair.PosteriorPresent[outcome])
	}
}
