// Recon demonstrates how an attacker acquires the knowledge the paper's
// threat model assumes (§III-C) using nothing but the timing channel
// itself: the switch's flow-table capacity (via Leng et al.'s overflow
// inference, the paper's ref [14]) and rule idle-timeout durations (by
// spacing probe pairs). Both run against the simulated network.
//
//	go run ./examples/recon
package main

import (
	"fmt"
	"log"

	"flowrecon/internal/controller"
	"flowrecon/internal/flows"
	"flowrecon/internal/netsim"
	"flowrecon/internal/recon"
	"flowrecon/internal/rules"
	"flowrecon/internal/stats"
)

// netProber adapts the simulator's prober to the recon interface.
type netProber struct {
	p *netsim.Prober
}

func (np netProber) Probe(f flows.ID, now float64) (bool, error) {
	res, err := np.p.Probe(f, now)
	if err != nil {
		return false, err
	}
	return res.Hit, nil
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		nhosts   = 60
		capacity = 6 // what the attacker wants to discover
		ttlSteps = 10
		stepSec  = 0.1 // → true idle TTL = 1.0 s
	)
	base := flows.MakeIPv4(10, 0, 1, 0)
	universe := flows.ClientServerUniverse(base, nhosts)
	rl := make([]rules.Rule, nhosts)
	for i := range rl {
		rl[i] = rules.Rule{
			Name:     fmt.Sprintf("h%d", i),
			Cover:    flows.SetOf(flows.ID(i)),
			Priority: i + 1,
			Timeout:  ttlSteps,
		}
	}
	policy, err := rules.NewSet(rl)
	if err != nil {
		return err
	}

	sim := netsim.NewSim()
	net := netsim.NewNetwork(sim, universe, netsim.NewControllerModel(policy, controller.Options{}),
		netsim.DefaultLatencyModel(), stats.NewRNG(7))
	if err := netsim.StanfordBackbone().Build(net, capacity, stepSec); err != nil {
		return err
	}
	setup, err := netsim.AttachEvaluationHosts(net, base, nhosts, "yoza_rtr", "boza_rtr")
	if err != nil {
		return err
	}
	prober := netProber{p: netsim.NewProber(net, setup)}

	fmt.Println("step 1: infer the flow-table capacity (ref [14] of the paper)")
	candidates := make([]flows.ID, nhosts)
	for i := range candidates {
		candidates[i] = flows.ID(i)
	}
	inferredCap, err := recon.InferCapacity(prober, candidates, 9, sim.Now(), 0.02)
	if err != nil {
		return err
	}
	fmt.Printf("  inferred capacity: %d (true: %d)\n\n", inferredCap, capacity)

	fmt.Println("step 2: bracket a rule's idle timeout by spacing probe pairs")
	grid := []float64{0.2, 0.5, 0.8, 0.9, 1.1, 1.5, 2.0}
	lo, hi, err := recon.InferIdleTimeout(prober, 0, grid, sim.Now()+5)
	if err != nil {
		return err
	}
	fmt.Printf("  TTL ∈ (%.1f s, %.1f s]  (true: %.1f s)\n\n", lo, hi, float64(ttlSteps)*stepSec)

	fmt.Println("with capacity and TTLs recovered, the attacker can parameterize")
	fmt.Println("the Markov model of the switch (§IV) and run the flow-reconnaissance")
	fmt.Println("attack — see examples/quickstart and cmd/flowrecon.")
	return nil
}
