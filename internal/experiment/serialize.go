package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"flowrecon/internal/core"
	"flowrecon/internal/flows"
	"flowrecon/internal/rules"
)

// Serialization of network configurations: the CSV outputs carry only
// per-config summaries, so interesting configurations (a huge improvement,
// a model failure) can be saved exactly and re-run later. The JSON schema
// is a stable contract (every field tagged).

// serializedRule is a rule in portable form.
type serializedRule struct {
	Name     string `json:"name"`
	Flows    []int  `json:"flows"`
	Priority int    `json:"priority"`
	Timeout  int    `json:"timeoutSteps"`
	Kind     string `json:"timeoutKind"`
}

// serializedParams mirrors Params with explicit tags.
type serializedParams struct {
	NumFlows      int     `json:"numFlows"`
	NumRules      int     `json:"numRules"`
	MaskBits      int     `json:"maskBits"`
	CacheSize     int     `json:"cacheSize"`
	DeltaSeconds  float64 `json:"deltaSeconds"`
	WindowSeconds float64 `json:"windowSeconds"`
	AbsenceLo     float64 `json:"absenceLo"`
	AbsenceHi     float64 `json:"absenceHi"`
	USumExact     int     `json:"usumExactLimit"`
	USumSamples   int     `json:"usumMcSamples"`
	USumSeed      int64   `json:"usumSeed"`
}

// SerializedConfig is the portable form of a NetworkConfig.
type SerializedConfig struct {
	Params serializedParams `json:"params"`
	Rules  []serializedRule `json:"rules"`
	Rates  []float64        `json:"ratesPerSecond"`
	Target int              `json:"targetFlow"`
}

// SaveConfig writes nc as indented JSON.
func SaveConfig(w io.Writer, nc *NetworkConfig) error {
	sc := SerializedConfig{
		Params: serializedParams{
			NumFlows:      nc.Params.NumFlows,
			NumRules:      nc.Params.NumRules,
			MaskBits:      nc.Params.MaskBits,
			CacheSize:     nc.Params.CacheSize,
			DeltaSeconds:  nc.Params.Delta,
			WindowSeconds: nc.Params.WindowSeconds,
			AbsenceLo:     nc.Params.AbsenceLo,
			AbsenceHi:     nc.Params.AbsenceHi,
			USumExact:     nc.Params.USum.ExactLimit,
			USumSamples:   nc.Params.USum.MCSamples,
			USumSeed:      nc.Params.USum.Seed,
		},
		Rates:  nc.Rates,
		Target: int(nc.Target),
	}
	for _, r := range nc.Rules.Rules() {
		sr := serializedRule{
			Name:     r.Name,
			Priority: r.Priority,
			Timeout:  r.Timeout,
			Kind:     r.Kind.String(),
		}
		for _, f := range r.Cover.IDs() {
			sr.Flows = append(sr.Flows, int(f))
		}
		sc.Rules = append(sc.Rules, sr)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sc)
}

// LoadConfig parses a saved configuration and refits the attacker's model,
// reproducing the original NetworkConfig exactly (the u-sum sampler seed
// is part of the format).
func LoadConfig(r io.Reader) (*NetworkConfig, error) {
	var sc SerializedConfig
	if err := json.NewDecoder(r).Decode(&sc); err != nil {
		return nil, fmt.Errorf("experiment: decode config: %w", err)
	}
	rl := make([]rules.Rule, len(sc.Rules))
	for i, sr := range sc.Rules {
		cover := flows.NewSet(sc.Params.NumFlows)
		for _, f := range sr.Flows {
			cover.Add(flows.ID(f))
		}
		kind := rules.IdleTimeout
		if sr.Kind == rules.HardTimeout.String() {
			kind = rules.HardTimeout
		}
		rl[i] = rules.Rule{
			Name:     sr.Name,
			Cover:    cover,
			Priority: sr.Priority,
			Timeout:  sr.Timeout,
			Kind:     kind,
		}
	}
	rs, err := rules.NewSet(rl)
	if err != nil {
		return nil, fmt.Errorf("experiment: rebuild rules: %w", err)
	}
	p := Params{
		NumFlows:      sc.Params.NumFlows,
		NumRules:      sc.Params.NumRules,
		MaskBits:      sc.Params.MaskBits,
		CacheSize:     sc.Params.CacheSize,
		Delta:         sc.Params.DeltaSeconds,
		WindowSeconds: sc.Params.WindowSeconds,
		AbsenceLo:     sc.Params.AbsenceLo,
		AbsenceHi:     sc.Params.AbsenceHi,
		USum: core.USumParams{
			ExactLimit: sc.Params.USumExact,
			MCSamples:  sc.Params.USumSamples,
			Seed:       sc.Params.USumSeed,
		},
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cfg := core.Config{Rules: rs, Rates: sc.Rates, Delta: p.Delta, CacheSize: p.CacheSize}
	target := flows.ID(sc.Target)
	sel, err := core.NewCompactSelector(cfg, target, p.Steps(), p.USum)
	if err != nil {
		return nil, err
	}
	nc := &NetworkConfig{
		Params:            p,
		Rules:             rs,
		Rates:             sc.Rates,
		Target:            target,
		Core:              cfg,
		Selector:          sel,
		NumCoveringTarget: rules.NumCovering(rs, target),
		TargetEval:        sel.Evaluate(target),
	}
	var ok bool
	nc.Optimal, ok = sel.Best(sel.AllFlows())
	if !ok {
		return nil, fmt.Errorf("experiment: loaded config has no probes")
	}
	nc.Restricted, _ = sel.Best(sel.FlowsExcept(target))
	return nc, nil
}

// saveAccepted writes one accepted configuration to
// dir/<prefix>-config-<n>.json; a no-op when dir is empty.
func saveAccepted(dir, prefix string, n int, nc *NetworkConfig) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, fmt.Sprintf("%s-config-%03d.json", prefix, n)))
	if err != nil {
		return err
	}
	defer f.Close()
	return SaveConfig(f, nc)
}
