// Package experiment reproduces the paper's evaluation (§VI): network
// configuration generation, the attack trial runner, and the series
// builders for Figures 6a, 6b, 7a and 7b plus the latency measurements of
// §VI-A. See DESIGN.md for the experiment ↔ module index.
package experiment

import (
	"fmt"

	"flowrecon/internal/core"
	"flowrecon/internal/flows"
	"flowrecon/internal/rules"
	"flowrecon/internal/stats"
	"flowrecon/internal/workload"
)

// Params are the evaluation parameters of §VI-A.
type Params struct {
	// NumFlows is the flow-class universe size (16).
	NumFlows int
	// NumRules is |Rules| (12), drawn from the 3^MaskBits candidates.
	NumRules int
	// MaskBits is the wildcarded address width (4 → 81 candidate rules).
	MaskBits int
	// CacheSize is the switch table capacity n (6).
	CacheSize int
	// Delta is the model step Δ in seconds. The paper leaves Δ implicit;
	// it must keep multiple arrivals per step rare (§IV-A).
	Delta float64
	// WindowSeconds is the traffic window before the probe (15 s).
	WindowSeconds float64
	// USum tunes the compact model's §IV-B estimator.
	USum core.USumParams
	// AbsenceLo/AbsenceHi restrict the target flow: its probability of
	// absence e^{-λ·T·Δ} must fall in [AbsenceLo, AbsenceHi] ("the
	// target flow was chosen uniformly from all flows for which the
	// probability of absence is within a specific range", §VI-A).
	AbsenceLo, AbsenceHi float64
}

// DefaultParams returns the paper's §VI-A parameters (with Δ chosen to
// keep per-step multi-arrivals rare).
func DefaultParams() Params {
	return Params{
		NumFlows:  16,
		NumRules:  12,
		MaskBits:  4,
		CacheSize: 6,
		// With 16 flows at λ ~ U[0,1], ΣλΔ must stay well below 1 for
		// the chain's one-event-per-step assumption (§IV-A) to hold;
		// Δ = 25 ms gives ΣλΔ ≈ 0.2.
		Delta:         0.025,
		WindowSeconds: 15,
		USum:          core.USumParams{ExactLimit: 20000, MCSamples: 1200, Seed: 1},
		AbsenceLo:     0.02,
		AbsenceHi:     0.98,
	}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.NumFlows < 2 || p.NumRules < 1 || p.CacheSize < 1 {
		return fmt.Errorf("experiment: degenerate sizes %+v", p)
	}
	if p.Delta <= 0 || p.WindowSeconds <= 0 {
		return fmt.Errorf("experiment: bad timing %+v", p)
	}
	if p.AbsenceLo < 0 || p.AbsenceHi > 1 || p.AbsenceLo >= p.AbsenceHi {
		return fmt.Errorf("experiment: bad absence range [%v,%v]", p.AbsenceLo, p.AbsenceHi)
	}
	return nil
}

// Steps returns the probe window T in model steps (⌈window/Δ⌉).
func (p Params) Steps() int {
	t := int(p.WindowSeconds / p.Delta)
	if float64(t)*p.Delta < p.WindowSeconds {
		t++
	}
	return t
}

// NetworkConfig is one sampled "network configuration" in the paper's
// sense: Poisson parameters, flow-rule relation, and target flow —
// together with the attacker's fitted model.
type NetworkConfig struct {
	// Params echoes the generation parameters.
	Params Params
	// Rules is the sampled policy.
	Rules *rules.Set
	// Rates are the sampled λ_f (per second).
	Rates []float64
	// Target is the target flow f̂.
	Target flows.ID
	// Core is the model configuration handed to the attacker.
	Core core.Config
	// Selector holds the evolved model chains for probe selection.
	Selector *core.ProbeSelector
	// Optimal is the best probe over all flows.
	Optimal core.ProbeEval
	// Restricted is the best probe over flows ≠ target (§VI-B Figure 7).
	Restricted core.ProbeEval
	// TargetEval is the evaluation of probing the target itself (what
	// the naive attacker implicitly relies on).
	TargetEval core.ProbeEval
	// NumCoveringTarget is |{rules covering f̂}| — Figure 7a's x-axis.
	NumCoveringTarget int
}

// PAbsent returns the target's prior probability of absence.
func (nc *NetworkConfig) PAbsent() float64 { return nc.Selector.PAbsent() }

// OptimalDiffersFromTarget reports whether the model-optimal probe is a
// different flow than the target — the Figure 6 population filter.
func (nc *NetworkConfig) OptimalDiffersFromTarget() bool {
	return nc.Optimal.Flow != nc.Target
}

// DetectorViable reports the §VI-B usability filter evaluated on the
// optimal probe.
func (nc *NetworkConfig) DetectorViable() bool { return nc.Optimal.DetectorViable() }

// GenerateConfig samples one network configuration: a random rule set, a
// random rate vector, and a target flow with absence probability in the
// configured range, then fits the attacker's compact model. It returns an
// error if no flow qualifies as a target (callers resample).
func GenerateConfig(p Params, rng *stats.RNG) (*NetworkConfig, error) {
	return GenerateConfigWithRates(p, nil, rng)
}

// minFittedRate floors empirical rates so a class that happened to be
// silent in the fitted capture still has a live Poisson model.
const minFittedRate = 1e-4

// GenerateConfigWithRates is GenerateConfig with the rate vector fitted
// from data instead of sampled: flow f takes fitted[f] for f <
// len(fitted), and flows beyond the fitted classes take the smallest
// fitted rate. The rule set, target choice and model fit still come from
// rng with the exact draw sequence of GenerateConfig — nil fitted IS
// GenerateConfig.
func GenerateConfigWithRates(p Params, fitted []float64, rng *stats.RNG) (*NetworkConfig, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	gc := rules.GenerateConfig{
		NumFlows: p.NumFlows,
		NumRules: p.NumRules,
		MaskBits: p.MaskBits,
		Timeouts: timeoutChoices(p.Delta),
	}
	rs, err := rules.Generate(gc, rng)
	if err != nil {
		return nil, err
	}
	rates := workload.UniformRates(p.NumFlows, rng)
	if len(fitted) > 0 {
		floor := fitted[0]
		for _, r := range fitted {
			if r < floor {
				floor = r
			}
		}
		if floor < minFittedRate {
			floor = minFittedRate
		}
		for f := range rates {
			if f < len(fitted) && fitted[f] > minFittedRate {
				rates[f] = fitted[f]
			} else {
				rates[f] = floor
			}
		}
	}
	cfg := core.Config{Rules: rs, Rates: rates, Delta: p.Delta, CacheSize: p.CacheSize}

	target, ok := pickTarget(p, rs, rates, rng)
	if !ok {
		return nil, fmt.Errorf("experiment: no covered flow with absence in [%v,%v]", p.AbsenceLo, p.AbsenceHi)
	}

	usum := p.USum
	usum.Seed = rng.Int63() // independent estimator stream per config
	sel, err := core.NewCompactSelector(cfg, target, p.Steps(), usum)
	if err != nil {
		return nil, err
	}
	p.USum = usum // retain the seed actually used, for exact re-runs
	nc := &NetworkConfig{
		Params:            p,
		Rules:             rs,
		Rates:             rates,
		Target:            target,
		Core:              cfg,
		Selector:          sel,
		NumCoveringTarget: rules.NumCovering(rs, target),
		TargetEval:        sel.Evaluate(target),
	}
	var found bool
	nc.Optimal, found = sel.Best(sel.AllFlows())
	if !found {
		return nil, fmt.Errorf("experiment: no probe candidates")
	}
	nc.Restricted, found = sel.Best(sel.FlowsExcept(target))
	if !found {
		return nil, fmt.Errorf("experiment: no restricted probe candidates")
	}
	return nc, nil
}

// AbsenceStrata are the target-absence ranges the figure runners cycle
// through. The paper chooses each configuration's target "uniformly from
// all flows for which the probability of absence is within a specific
// range (defined by the experiment parameters)" (§VI-A); with λ ~ U[0,1]
// and a 15 s window, unstratified sampling would concentrate every target
// near absence ≈ 0, leaving the Figure 6a/7b x-axes empty.
var AbsenceStrata = [][2]float64{
	{0.02, 0.20}, {0.20, 0.40}, {0.40, 0.60}, {0.60, 0.80}, {0.80, 0.98},
}

// WithStratum returns a copy of p restricted to the i-th absence stratum
// (wrapping around).
func (p Params) WithStratum(i int) Params {
	s := AbsenceStrata[i%len(AbsenceStrata)]
	p.AbsenceLo, p.AbsenceHi = s[0], s[1]
	return p
}

// timeoutChoices returns the paper's TTL menu {⌈k/(10Δ)⌉ : k = 1..10}.
func timeoutChoices(delta float64) []int {
	return rules.DefaultGenerateConfig(delta).Timeouts
}

// pickTarget chooses the target uniformly among covered flows whose
// absence probability lies in the configured range.
func pickTarget(p Params, rs *rules.Set, rates []float64, rng *stats.RNG) (flows.ID, bool) {
	covered := rs.CoveredFlows()
	horizon := float64(p.Steps()) * p.Delta
	var eligible []flows.ID
	for f := 0; f < len(rates); f++ {
		if !covered.Contains(flows.ID(f)) {
			continue
		}
		absent := absenceProb(rates[f], horizon)
		if absent >= p.AbsenceLo && absent <= p.AbsenceHi {
			eligible = append(eligible, flows.ID(f))
		}
	}
	if len(eligible) == 0 {
		return 0, false
	}
	return eligible[rng.Intn(len(eligible))], true
}

func absenceProb(rate, horizon float64) float64 {
	return expNeg(rate * horizon)
}
