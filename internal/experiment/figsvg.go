package experiment

import (
	"fmt"
	"io"
	"sort"

	"flowrecon/internal/plot"
)

// Chart builders: render the reproduced figures as SVG via internal/plot.

// Fig6aChart plots average accuracy vs target-absence probability for each
// attacker (Figure 6a).
func Fig6aChart(r *Fig6Result) *plot.Chart {
	return absenceChart("Figure 6a — accuracy vs P(target absent)", r.Buckets, r.Outcomes)
}

// Fig6bChart plots the improvement CDF (Figure 6b).
func Fig6bChart(r *Fig6Result) *plot.Chart {
	s := plot.Series{Name: "model − naive", Step: true}
	for _, pt := range r.ImprovementCDF {
		s.X = append(s.X, pt.X)
		s.Y = append(s.Y, pt.P)
	}
	return &plot.Chart{
		Title:  "Figure 6b — CDF of additive improvement over naive",
		XLabel: "improvement in average accuracy",
		YLabel: "fraction of configurations",
		YMin:   plot.Float(0),
		YMax:   plot.Float(1),
		Series: []plot.Series{s},
	}
}

// Fig7aChart plots accuracy vs the number of rules covering the target
// (Figure 7a).
func Fig7aChart(r *Fig7Result) *plot.Chart {
	chart := &plot.Chart{
		Title:  "Figure 7a — accuracy vs #rules covering target",
		XLabel: "rules covering the target flow",
		YLabel: "average accuracy",
		YMin:   plot.Float(0),
		YMax:   plot.Float(1),
	}
	for _, name := range sortedAttackerNames(r.Outcomes) {
		s := plot.Series{Name: name}
		for _, b := range r.ByCover {
			if b.Configs == 0 {
				continue
			}
			s.X = append(s.X, float64(b.NumCovering))
			s.Y = append(s.Y, b.Accuracy[name])
		}
		chart.Series = append(chart.Series, s)
	}
	return chart
}

// Fig7bChart plots accuracy vs absence probability (Figure 7b).
func Fig7bChart(r *Fig7Result) *plot.Chart {
	return absenceChart("Figure 7b — accuracy vs P(target absent)", r.ByAbsence, r.Outcomes)
}

func absenceChart(title string, buckets []AbsenceBucket, outcomes []ConfigOutcome) *plot.Chart {
	chart := &plot.Chart{
		Title:  title,
		XLabel: "probability of absence of target flow",
		YLabel: "average accuracy",
		YMin:   plot.Float(0),
		YMax:   plot.Float(1),
	}
	for _, name := range sortedAttackerNames(outcomes) {
		s := plot.Series{Name: name}
		for _, b := range buckets {
			if b.Configs == 0 {
				continue
			}
			s.X = append(s.X, (b.Lo+b.Hi)/2)
			s.Y = append(s.Y, b.Accuracy[name])
		}
		chart.Series = append(chart.Series, s)
	}
	return chart
}

// WriteSVGs renders a set of named charts through save (typically writing
// <name>.svg files); it is factored this way for testability.
func WriteSVGs(charts map[string]*plot.Chart, save func(name string) (io.WriteCloser, error)) error {
	names := make([]string, 0, len(charts))
	for name := range charts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		w, err := save(name)
		if err != nil {
			return err
		}
		if err := charts[name].RenderSVG(w); err != nil {
			w.Close()
			return fmt.Errorf("render %s: %w", name, err)
		}
		if err := w.Close(); err != nil {
			return err
		}
	}
	return nil
}
