package experiment

import (
	"fmt"
	"io"

	"flowrecon/internal/stats"
)

// The workload-robustness experiment (EXPERIMENTS.md §17): the attacker
// fits a Poisson model (§IV-A1), so every departure from Poisson —
// heavy-tailed interarrivals, diurnal swings, flash crowds, real
// captures — is model misspecification. This runner plays the identical
// attack (same configuration, same trial seeds, same probe draws)
// against each traffic source at the same long-run mean rate, so the
// accuracy column isolates exactly the independence assumption.

// WorkloadRow is one traffic source's outcome.
type WorkloadRow struct {
	// Name labels the workload; Spec is the TraceSourceSpec that
	// reproduces it.
	Name string
	Spec TraceSourceSpec
	// Results are the per-attacker outcomes on this workload.
	Results []AttackerResult
	// FPR is the defender's benign false-positive measurement on the same
	// workload, with the baseline trained on Poisson traffic.
	FPR FPRResult
}

// ModelAccuracy returns the model attacker's accuracy (the roster's
// second entry).
func (r WorkloadRow) ModelAccuracy() float64 {
	if len(r.Results) < 2 {
		return 0
	}
	return r.Results[1].Accuracy()
}

// WorkloadComparison is the full §17 result set.
type WorkloadComparison struct {
	Rows    []WorkloadRow
	Trials  int
	Probes  int
	Seed    int64
	FPRRuns int
}

// StandardWorkloads returns the §17 roster: the paper's Poisson model,
// then five independence-breaking sources at the same mean rate.
func StandardWorkloads() []WorkloadRow {
	return []WorkloadRow{
		{Name: "poisson", Spec: TraceSourceSpec{Kind: "poisson"}},
		{Name: "bursty(4x,2s/6s)", Spec: TraceSourceSpec{Kind: "bursty"}},
		{Name: "pareto(α=1.5)", Spec: TraceSourceSpec{Kind: "pareto", Alpha: 1.5}},
		{Name: "lognormal(σ=1.5)", Spec: TraceSourceSpec{Kind: "lognormal", Sigma: 1.5}},
		{Name: "diurnal(amp 0.6)", Spec: TraceSourceSpec{Kind: "diurnal", DiurnalAmp: 0.6}},
		{Name: "flash-crowd(8x)", Spec: TraceSourceSpec{Kind: "flash", FlashFactor: 8}},
	}
}

// RunWorkloadComparison runs the identical attack against every
// workload. Each row re-seeds the trial loop with the same seed, so the
// rows differ only in the traffic the windows contain; the per-row FPR
// reuses a Poisson-trained detector baseline, matching how a deployed
// defender would actually be provisioned.
func RunWorkloadComparison(p Params, seed int64, trials, probes, fprTrials int) (*WorkloadComparison, error) {
	return RunWorkloadComparisonRows(p, seed, trials, probes, fprTrials, StandardWorkloads())
}

// RunWorkloadComparisonRows is RunWorkloadComparison over an explicit
// row set (the -workload CLI flag compares Poisson against one chosen
// shape instead of the whole roster).
func RunWorkloadComparisonRows(p Params, seed int64, trials, probes, fprTrials int, rows []WorkloadRow) (*WorkloadComparison, error) {
	rng := stats.NewRNG(seed)
	var nc *NetworkConfig
	var err error
	for attempt := 0; attempt < maxConfigAttempts; attempt++ {
		nc, err = GenerateConfig(p, rng)
		if err == nil {
			break
		}
	}
	if err != nil {
		return nil, fmt.Errorf("workload comparison config: %w", err)
	}
	baseline, err := TrainDetectBaseline(nc, 40, rng.Fork(), nil)
	if err != nil {
		return nil, err
	}
	dcfg := DetectConfigFor(nc, baseline)

	cmp := &WorkloadComparison{Rows: rows, Trials: trials, Probes: probes, Seed: seed, FPRRuns: fprTrials}
	for i := range cmp.Rows {
		row := &cmp.Rows[i]
		source, err := row.Spec.Source()
		if err != nil {
			return nil, err
		}
		attackers, err := StandardAttackers(nc, probes)
		if err != nil {
			return nil, err
		}
		row.Results, _, err = RunTrialsOpts(nc, attackers, trials, DefaultMeasurement(), stats.NewRNG(seed+1), TrialOptions{Source: source})
		if err != nil {
			return nil, fmt.Errorf("workload %s: %w", row.Name, err)
		}
		if fprTrials > 0 {
			row.FPR, err = BenignFPR(nc, dcfg, fprTrials, stats.NewRNG(seed+2), source)
			if err != nil {
				return nil, fmt.Errorf("workload %s fpr: %w", row.Name, err)
			}
		}
	}
	return cmp, nil
}

// ParetoTailSweep reruns the model attacker over a deepening Pareto tail
// (α falling toward 1) on one fixed configuration — the §17 degradation
// envelope. Returned accuracies are index-aligned with alphas.
func ParetoTailSweep(p Params, seed int64, trials, probes int, alphas []float64) ([]float64, error) {
	rng := stats.NewRNG(seed)
	var nc *NetworkConfig
	var err error
	for attempt := 0; attempt < maxConfigAttempts; attempt++ {
		nc, err = GenerateConfig(p, rng)
		if err == nil {
			break
		}
	}
	if err != nil {
		return nil, fmt.Errorf("tail sweep config: %w", err)
	}
	acc := make([]float64, len(alphas))
	for i, alpha := range alphas {
		attackers, err := StandardAttackers(nc, probes)
		if err != nil {
			return nil, err
		}
		res, _, err := RunTrialsOpts(nc, attackers, trials, DefaultMeasurement(), stats.NewRNG(seed+1), TrialOptions{Source: ParetoSource(alpha)})
		if err != nil {
			return nil, err
		}
		acc[i] = res[1].Accuracy()
	}
	return acc, nil
}

// RunWorkloadsOnTrace runs the attack roster on an ingested capture
// (windowed replay, rates fitted from the capture) — the real-traffic
// row of §17. It returns the per-attacker results and the configuration
// actually used.
func RunWorkloadsOnTrace(p Params, spec *TraceSourceSpec, seed int64, trials, probes int) ([]AttackerResult, *NetworkConfig, error) {
	rspec := RecordingSpec{
		Params: p, ConfigSeed: seed, TrialSeed: seed + 1,
		Trials: trials, Probes: probes,
		Measurement: DefaultMeasurement(),
		Trace:       spec,
	}
	nc, err := rspec.BuildConfig()
	if err != nil {
		return nil, nil, err
	}
	source, err := spec.Source()
	if err != nil {
		return nil, nil, err
	}
	attackers, err := StandardAttackers(nc, probes)
	if err != nil {
		return nil, nil, err
	}
	results, _, err := RunTrialsOpts(nc, attackers, trials, DefaultMeasurement(), stats.NewRNG(rspec.TrialSeed), TrialOptions{Source: source})
	if err != nil {
		return nil, nil, err
	}
	return results, nc, nil
}

// WriteWorkloads renders the comparison as a text table.
func WriteWorkloads(w io.Writer, cmp *WorkloadComparison) error {
	if _, err := fmt.Fprintf(w, "Workload robustness (%d trials, %d probes, seed %d)\n", cmp.Trials, cmp.Probes, cmp.Seed); err != nil {
		return err
	}
	fmt.Fprintf(w, "  %-20s", "workload")
	if len(cmp.Rows) > 0 {
		for _, r := range cmp.Rows[0].Results {
			fmt.Fprintf(w, "  %-16s", r.Name)
		}
	}
	fmt.Fprintf(w, "  %s\n", "benign FPR")
	for _, row := range cmp.Rows {
		fmt.Fprintf(w, "  %-20s", row.Name)
		for _, r := range row.Results {
			fmt.Fprintf(w, "  %-16.3f", r.Accuracy())
		}
		if _, err := fmt.Fprintf(w, "  %d/%d (%.2f%%)\n", row.FPR.Flagged, row.FPR.Sources, 100*row.FPR.Rate()); err != nil {
			return err
		}
	}
	return nil
}
