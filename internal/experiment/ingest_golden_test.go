package experiment

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"flowrecon/internal/trialrec"
)

// goldenPcap is the committed capture fixture the ingestion goldens pin;
// the experiment-side golden replays trials on the trace extracted from
// it, with the capture pinned by SHA-256 inside the recording spec.
const goldenPcap = "../ingest/testdata/golden.pcap"

// pcapSpec is smallSpec replaying the golden capture with rates fitted
// from it (the full ingested pipeline: parse → extract → collapse →
// fit → windowed replay).
func pcapSpec(t *testing.T) RecordingSpec {
	t.Helper()
	spec := smallSpec()
	spec.Trace = &TraceSourceSpec{Kind: "pcap", Path: goldenPcap, FitRates: true}
	if err := spec.Trace.Pin(); err != nil {
		t.Fatalf("pin golden capture: %v", err)
	}
	return spec
}

// TestGoldenIngestRecording: the ingested-traffic golden fixture. The
// recording embeds the capture's SHA-256, so this pins the pcap parser,
// the flow extractor, the universe mapping, the rate fitting AND the
// trial loop in one byte comparison.
func TestGoldenIngestRecording(t *testing.T) {
	checkGolden(t, "golden_ingest.jsonl", pcapSpec(t))
}

// TestGoldenParetoRecording: the heavy-tailed golden fixture — same
// scenario on Pareto-renewal traffic with tail index 1.5. Pins the
// heavy-tailed generators' draw order.
func TestGoldenParetoRecording(t *testing.T) {
	spec := smallSpec()
	spec.Trace = &TraceSourceSpec{Kind: "pareto", Alpha: 1.5}
	checkGolden(t, "golden_pareto.jsonl", spec)
}

// TestIngestRecordingParallelismInvariant: recording the ingested-trace
// spec at parallelism 1, 4 and 8 must produce byte-identical output and
// a Diff-clean replay. This is the acceptance bar for trace replay: the
// per-trial windowing draw comes from the trial's own forked stream, so
// worker scheduling cannot leak into the recording.
func TestIngestRecordingParallelismInvariant(t *testing.T) {
	spec := pcapSpec(t)
	var serial bytes.Buffer
	if _, _, err := RecordToParallel(&serial, spec, nil, 1); err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{4, 8} {
		var buf bytes.Buffer
		if _, _, err := RecordToParallel(&buf, spec, nil, par); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(serial.Bytes(), buf.Bytes()) {
			t.Fatalf("recording at parallelism %d differs from serial (%d vs %d bytes)", par, buf.Len(), serial.Len())
		}
	}
	rec, err := trialrec.Read(bytes.NewReader(serial.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	replayed, _, err := Replay(rec)
	if err != nil {
		t.Fatal(err)
	}
	if divs := trialrec.Diff(rec, replayed); len(divs) != 0 {
		t.Fatalf("replay of ingested-trace recording diverged in %d places: %s", len(divs), divs[0])
	}

	// The committed golden must match what this test just produced — the
	// parallel invariance and the byte pin are claims about the same run.
	want, err := os.ReadFile(filepath.Join("testdata", "golden_ingest.jsonl"))
	if err == nil && !bytes.Equal(want, serial.Bytes()) {
		t.Fatal("parallel-invariance run differs from the committed golden_ingest.jsonl")
	}
}
