package experiment

import (
	"bytes"
	"encoding/json"
	"testing"

	"flowrecon/internal/core"
	"flowrecon/internal/detect"
	"flowrecon/internal/faults"
	"flowrecon/internal/stats"
	"flowrecon/internal/telemetry"
	"flowrecon/internal/workload"
)

// detectRun executes one trial run with detection and the wide-event log
// attached (deterministic clock) and returns the JSONL event stream plus
// the aggregate detector's snapshot JSON.
func detectRun(t *testing.T, spec RecordingSpec, cfg detect.Config, parallelism int) ([]byte, []byte) {
	t.Helper()
	nc, err := spec.BuildConfig()
	if err != nil {
		t.Fatal(err)
	}
	attackers, err := StandardAttackers(nc, spec.Probes)
	if err != nil {
		t.Fatal(err)
	}
	events := telemetry.NewEventLog(0)
	events.SetClock(nil)
	agg := detect.New(cfg)
	opts := TrialOptions{Events: events, Parallelism: parallelism, Detect: &cfg, DetectAggregate: agg}
	if spec.Faults != nil {
		opts.Faults = *spec.Faults
	}
	if _, _, err := RunTrialsOpts(nc, attackers, spec.Trials, spec.Measurement,
		stats.NewRNG(spec.TrialSeed), opts); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := events.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := json.Marshal(agg.Snap(64))
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), snap
}

// sensitiveDetect is a hair-trigger configuration that guarantees flag
// verdicts inside short test runs (so the determinism checks exercise
// non-empty detect.flag streams).
func sensitiveDetect() detect.Config {
	cfg := detect.DefaultConfig()
	cfg.WindowSec = 5
	cfg.Baseline.DefaultRate = 0.05
	cfg.RateZ = 2
	cfg.MinObs = 3
	cfg.MinGaps = 4
	return cfg
}

// TestDetectEventsByteIdenticalAcrossParallelism is the tentpole's
// determinism guarantee: verdict streams (detect.flag wide events
// interleaved with probes and trial verdicts) are byte-identical at
// every trial parallelism, riding the same completion-frontier assembly
// as the rest of the event stream.
func TestDetectEventsByteIdenticalAcrossParallelism(t *testing.T) {
	spec := RecordingSpec{
		Params:      tinyParams(),
		ConfigSeed:  11,
		TrialSeed:   13,
		Trials:      16,
		Probes:      2,
		Measurement: DefaultMeasurement(),
	}
	serial, serialSnap := detectRun(t, spec, sensitiveDetect(), 1)
	if !bytes.Contains(serial, []byte(`"detect.flag"`)) {
		t.Fatal("no detect.flag events in the serial stream; determinism test proves nothing")
	}
	for _, workers := range []int{4, 8} {
		par, parSnap := detectRun(t, spec, sensitiveDetect(), workers)
		if !bytes.Equal(serial, par) {
			t.Fatalf("parallelism %d: detect event streams diverge\n%s", workers, firstDiffLines(serial, par))
		}
		if !bytes.Equal(serialSnap, parSnap) {
			t.Fatalf("parallelism %d: aggregate detector snapshots diverge\nserial:   %s\nparallel: %s", workers, serialSnap, parSnap)
		}
	}
}

// TestDetectEventsByteIdenticalUnderFaults repeats the identity check
// with probe faults armed, so lost probes (invisible to the defender)
// interleave with detector observations.
func TestDetectEventsByteIdenticalUnderFaults(t *testing.T) {
	spec := RecordingSpec{
		Params:      tinyParams(),
		ConfigSeed:  7,
		TrialSeed:   23,
		Trials:      12,
		Probes:      2,
		Measurement: DefaultMeasurement(),
		Faults:      &faults.Profile{Seed: 5, LossProb: 0.2, JitterMeanMs: 0.3},
	}
	serial, serialSnap := detectRun(t, spec, sensitiveDetect(), 1)
	par, parSnap := detectRun(t, spec, sensitiveDetect(), 4)
	if !bytes.Equal(serial, par) {
		t.Fatalf("fault detect streams diverge\n%s", firstDiffLines(serial, par))
	}
	if !bytes.Equal(serialSnap, parSnap) {
		t.Fatalf("aggregate detector snapshots diverge under faults")
	}
	if !bytes.Contains(serial, []byte(`"fault.drop"`)) {
		t.Fatal("fault profile injected no fault.drop events; test proves nothing")
	}
}

// TestTrainDetectBaseline checks the trained baseline provisions for
// benign peaks: each flow's rate is at least its generating mean (peak ≥
// mean) but bounded (a Poisson peak over tens of windows stays within a
// small multiple of the mean), and the miss fraction is strictly inside
// (0, 1).
func TestTrainDetectBaseline(t *testing.T) {
	nc, err := RecordingSpec{Params: tinyParams(), ConfigSeed: 3, Trials: 1, Probes: 1, Measurement: DefaultMeasurement()}.BuildConfig()
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainDetectBaseline(nc, 60, stats.NewRNG(9), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Rates) != nc.Params.NumFlows {
		t.Fatalf("baseline has %d rates, want %d", len(b.Rates), nc.Params.NumFlows)
	}
	horizon := float64(nc.Params.Steps()) * nc.Params.Delta
	for f, r := range b.Rates {
		mean := nc.Rates[f]
		if mean*horizon < 2 {
			continue // too few arrivals per window for a stable peak
		}
		if r < mean {
			t.Fatalf("flow %d peak-provisioned rate %.3f below the generating mean %.3f", f, r, mean)
		}
		if r > mean*6+3/horizon {
			t.Fatalf("flow %d peak-provisioned rate %.3f implausibly above the generating mean %.3f", f, r, mean)
		}
	}
	if b.MissFrac <= 0 || b.MissFrac >= 1 {
		t.Fatalf("benign miss fraction %.3f outside (0,1)", b.MissFrac)
	}
}

// TestBenignFPRGate is the satellite acceptance gate: with a trained
// baseline and default thresholds, the benign false-positive rate must
// stay within an explicit per-workload budget — 1% on the Poisson and
// bursty workloads the baseline provisioning anticipates, 2% on the
// independence-breaking ones (heavy-tailed renewals, a flash crowd, a
// diurnal swing) it never saw during training. Measured rates on all
// five are currently 0%; the budgets leave room only for sampling
// noise, so a regression that makes benign heavy-tailed traffic look
// like probing shows up here.
func TestBenignFPRGate(t *testing.T) {
	nc, err := RecordingSpec{Params: tinyParams(), ConfigSeed: 3, Trials: 1, Probes: 1, Measurement: DefaultMeasurement()}.BuildConfig()
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := TrainDetectBaseline(nc, 40, stats.NewRNG(17), nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DetectConfigFor(nc, baseline)
	horizon := float64(nc.Params.Steps()) * nc.Params.Delta
	for _, tc := range []struct {
		name   string
		source TraceSource
		budget float64
	}{
		{"poisson", PoissonSource, 0.01},
		{"bursty", BurstySource(4, 2, 6), 0.01},
		{"pareto", ParetoSource(1.5), 0.02},
		{"lognormal", LogNormalSource(1.5), 0.02},
		{"flash-crowd", ModulatedSource(workload.RateProfile{FlashAt: horizon / 3, FlashDur: horizon / 3, FlashFactor: 8}), 0.02},
		{"diurnal", ModulatedSource(workload.RateProfile{DiurnalPeriod: horizon, DiurnalAmp: 0.6}), 0.02},
	} {
		res, err := BenignFPR(nc, cfg, 150, stats.NewRNG(29), tc.source)
		if err != nil {
			t.Fatal(err)
		}
		if res.Sources == 0 {
			t.Fatalf("%s: benign runs tracked no sources", tc.name)
		}
		if rate := res.Rate(); rate > tc.budget {
			t.Fatalf("%s: benign FPR %.2f%% (%d/%d sources) exceeds the %.0f%% budget",
				tc.name, 100*rate, res.Flagged, res.Sources, 100*tc.budget)
		}
	}
}

// TestDetectionLatencyWithinBudget is the other acceptance gate: the
// default eviction-probing session must be flagged within 200 probes on
// the abstract substrate, and a deep-stealth pace must buy the attacker
// strictly more unflagged probes.
func TestDetectionLatencyWithinBudget(t *testing.T) {
	nc, err := RecordingSpec{Params: tinyParams(), ConfigSeed: 3, Trials: 1, Probes: 1, Measurement: DefaultMeasurement()}.BuildConfig()
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := TrainDetectBaseline(nc, 40, stats.NewRNG(17), nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DetectConfigFor(nc, baseline)
	meas := DefaultMeasurement()

	def, err := MeasureDetectionLatency(nc, cfg, meas, stats.NewRNG(41), core.Pacing{}, 200, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !def.Flagged {
		t.Fatalf("default eviction probing not flagged within 200 probes: %+v", def)
	}
	if def.Probes > 200 {
		t.Fatalf("detection latency %d probes exceeds the 200-probe budget", def.Probes)
	}
	if def.Reason == "" || def.Score < 1 {
		t.Fatalf("flagged session carries no verdict detail: %+v", def)
	}

	stealth, err := MeasureDetectionLatency(nc, cfg, meas, stats.NewRNG(41),
		core.Pacing{IntervalSec: 60, JitterFrac: 3}, 3*def.Probes, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stealth.Flagged && stealth.Probes <= def.Probes {
		t.Fatalf("deep stealth pacing flagged in %d probes, no later than the default %d", stealth.Probes, def.Probes)
	}
}

// TestStealthPacingDecaysObservations checks the attacker's side of the
// tradeoff: stretching a multi-probe schedule over minutes lands the
// later probes on a decayed table. The paced attacker must observe
// strictly fewer ground-truth hits (its later probes fire after the
// window's installs expired), its probes must actually land at the paced
// times, and its residual accuracy must not beat the unpaced run.
// (Whether accuracy drops outright depends on how much the decision
// leans on the later probes — config seed 9 plans a 4-probe sequence.)
func TestStealthPacingDecaysObservations(t *testing.T) {
	nc, err := RecordingSpec{Params: tinyParams(), ConfigSeed: 9, Trials: 1, Probes: 1, Measurement: DefaultMeasurement()}.BuildConfig()
	if err != nil {
		t.Fatal(err)
	}
	run := func(pace core.Pacing) (hits int, lastT, acc float64) {
		model, err := core.NewModelAttacker(nc.Selector, nc.Selector.AllFlows(), 4, core.DecideByPosterior)
		if err != nil {
			t.Fatal(err)
		}
		if len(model.Probes()) < 2 {
			t.Fatalf("config plans only %d probes; pacing test needs a real sequence", len(model.Probes()))
		}
		model.SetPacing(pace)
		if got := model.ProbePacing(); got != pace {
			t.Fatalf("ProbePacing = %+v, want %+v", got, pace)
		}
		events := telemetry.NewEventLog(0)
		events.SetClock(nil)
		results, _, err := RunTrialsOpts(nc, []core.Attacker{model}, 200, DefaultMeasurement(),
			stats.NewRNG(71), TrialOptions{Events: events})
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range events.Events() {
			if e.Kind != "probe" {
				continue
			}
			if e.Truth == "hit" {
				hits++
			}
			if e.T > lastT {
				lastT = e.T
			}
		}
		return hits, lastT, results[0].Accuracy()
	}
	baseHits, baseLast, baseAcc := run(core.Pacing{})
	pacedHits, pacedLast, pacedAcc := run(core.Pacing{IntervalSec: 120, JitterFrac: 1})
	if pacedHits >= baseHits {
		t.Fatalf("paced probes observed %d hits, want fewer than the unpaced %d (table decay)", pacedHits, baseHits)
	}
	if pacedLast < baseLast+3*120 {
		t.Fatalf("paced probes end at t=%.0fs; schedule not stretched (unpaced ends %.0fs)", pacedLast, baseLast)
	}
	if pacedAcc > baseAcc {
		t.Fatalf("paced accuracy %.3f beats unpaced %.3f; pacing should never add information", pacedAcc, baseAcc)
	}
}

// TestPacingOffIsByteCompatible pins the no-regression contract: an
// attacker with zero pacing consumes exactly the RNG draws it always
// did, so results with the pacing code in place are identical to the
// pre-pacing trial loop (which the golden recordings also enforce).
func TestPacingOffIsByteCompatible(t *testing.T) {
	nc, err := RecordingSpec{Params: tinyParams(), ConfigSeed: 3, Trials: 1, Probes: 1, Measurement: DefaultMeasurement()}.BuildConfig()
	if err != nil {
		t.Fatal(err)
	}
	attackers, err := StandardAttackers(nc, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, err := RunTrials(nc, attackers, 60, DefaultMeasurement(), stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTrials(nc, attackers, 60, DefaultMeasurement(), stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("attacker %s results not reproducible: %+v vs %+v", a[i].Name, a[i], b[i])
		}
	}
}

// TestWriteDetection exercises the report writer end to end on a small
// synthetic report.
func TestWriteDetection(t *testing.T) {
	rep := &DetectionReport{
		Baseline:        detect.Baseline{DefaultRate: 0.4, MissFrac: 0.3},
		ModelLatency:    DetectionOutcome{Flagged: true, Probes: 17, Seconds: 12, Reason: detect.ReasonRate, Score: 1.4},
		SimLatency:      DetectionOutcome{Flagged: true, Probes: 25, Seconds: 30, Reason: detect.ReasonRegularity, Score: 1.1},
		FPRPoisson:      FPRResult{Trials: 10, Sources: 80, Flagged: 0},
		FPRBursty:       FPRResult{Trials: 10, Sources: 80, Flagged: 1},
		Stealth:         []StealthRow{{Label: "default", Accuracy: 0.9, Session: DetectionOutcome{Flagged: true, Probes: 17}}},
		MaxProbes:       200,
		BaselineWindows: 40,
	}
	var buf bytes.Buffer
	if err := WriteDetection(&buf, rep); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"detection latency", "flagged after 17 probes", "1.25%", "stealth"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("report missing %q:\n%s", want, buf.String())
		}
	}
}

// TestMatchedBaselineTamesParetoFPR pins the heavy-tail-aware training
// mode: the re-measured Pareto(α=1.5) FPR under a baseline trained on
// Pareto interarrivals themselves must hold the 2% budget and never
// exceed the mismatched (Poisson-trained) rate. The paper-scale effect —
// the mismatched row flagging ~4% of benign sources — only appears at
// full horizon/rates and is recorded in results_detect.txt; this gate
// keeps the matched mode itself regression-free.
func TestMatchedBaselineTamesParetoFPR(t *testing.T) {
	nc, err := RecordingSpec{Params: tinyParams(), ConfigSeed: 3, Trials: 1, Probes: 1, Measurement: DefaultMeasurement()}.BuildConfig()
	if err != nil {
		t.Fatal(err)
	}
	poisson, err := TrainDetectBaseline(nc, 40, stats.NewRNG(17), nil)
	if err != nil {
		t.Fatal(err)
	}
	matched, err := TrainDetectBaseline(nc, 40, stats.NewRNG(17), ParetoSource(1.5))
	if err != nil {
		t.Fatal(err)
	}
	mismatchedFPR, err := BenignFPR(nc, DetectConfigFor(nc, poisson), 150, stats.NewRNG(29), ParetoSource(1.5))
	if err != nil {
		t.Fatal(err)
	}
	matchedFPR, err := BenignFPR(nc, DetectConfigFor(nc, matched), 150, stats.NewRNG(29), ParetoSource(1.5))
	if err != nil {
		t.Fatal(err)
	}
	if matchedFPR.Sources == 0 {
		t.Fatal("matched-baseline runs tracked no sources")
	}
	if matchedFPR.Flagged > mismatchedFPR.Flagged {
		t.Fatalf("matched baseline flags more benign sources (%d) than the mismatched one (%d)", matchedFPR.Flagged, mismatchedFPR.Flagged)
	}
	if rate := matchedFPR.Rate(); rate > 0.02 {
		t.Fatalf("matched-baseline Pareto FPR %.2f%% exceeds the 2%% budget", 100*rate)
	}
}
