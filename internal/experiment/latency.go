package experiment

import (
	"fmt"
	"time"

	"flowrecon/internal/controller"
	"flowrecon/internal/flows"
	"flowrecon/internal/netsim"
	"flowrecon/internal/openflow"
	"flowrecon/internal/rules"
	"flowrecon/internal/stats"
)

// LatencyReport reproduces the §VI-A latency characterization: the
// hit/miss RTT distributions an attacker observes and how cleanly the
// 1 ms threshold separates them. Two measurements are taken: the
// virtual-time network simulator (the Mininet substitute) and a real
// TCP loopback round trip through the OpenFlow substrate.
type LatencyReport struct {
	// SimHitMs/SimMissMs summarize echo RTTs (milliseconds) through the
	// simulated Stanford-like fabric.
	SimHitMs, SimMissMs stats.Summary
	// ThresholdMs is the classification threshold (1 ms, §VI-A).
	ThresholdMs float64
	// SimMisclassified is the fraction of probes the threshold would
	// misclassify.
	SimMisclassified float64
	// OFHitMs/OFMissMs summarize real-TCP OpenFlow injections.
	OFHitMs, OFMissMs stats.Summary
	// OFMisclassified is the threshold error rate over the TCP run.
	OFMisclassified float64
}

// MeasureSimLatency measures echo RTTs through the simulated fabric:
// each round sends one cold (miss) probe and one warm (hit) probe, with
// rules allowed to expire between rounds.
func MeasureSimLatency(samples int, seed int64) (*LatencyReport, error) {
	universe := flows.ClientServerUniverse(flows.MakeIPv4(10, 0, 1, 0), 16)
	rs, err := rules.Generate(rules.DefaultGenerateConfig(0.1), stats.NewRNG(seed))
	if err != nil {
		return nil, err
	}
	sim := netsim.NewSim()
	ctrl := netsim.NewControllerModel(rs, controller.Options{})
	n := netsim.NewNetwork(sim, universe, ctrl, netsim.DefaultLatencyModel(), stats.NewRNG(seed+1))
	if err := netsim.StanfordBackbone().Build(n, 9, 0.1); err != nil {
		return nil, err
	}
	setup, err := netsim.AttachEvaluationHosts(n, flows.MakeIPv4(10, 0, 1, 0), 16, "yoza_rtr", "boza_rtr")
	if err != nil {
		return nil, err
	}
	// Use a flow every rule set covers reactively; fall back across
	// hosts until one is covered.
	covered := rs.CoveredFlows()
	hostIdx := 0
	for ; hostIdx < 16; hostIdx++ {
		if covered.Contains(flows.ID(hostIdx)) {
			break
		}
	}
	if hostIdx == 16 {
		return nil, fmt.Errorf("experiment: policy covers no evaluation flow")
	}
	src := setup.SourceHosts[hostIdx]

	report := &LatencyReport{ThresholdMs: 1.0}
	var hits, misses []float64
	at := 0.0
	for i := 0; i < samples; i++ {
		miss, err := n.SendEcho(src, setup.Destination, at)
		if err != nil {
			return nil, err
		}
		hit, err := n.SendEcho(src, setup.Destination, at+0.05)
		if err != nil {
			return nil, err
		}
		at += 5 // beyond the maximum idle timeout (1 s): rules expire
		sim.RunUntil(at)
		if miss.Delivered && miss.Missed {
			misses = append(misses, miss.RTT*1e3)
		}
		if hit.Delivered && !hit.Missed {
			hits = append(hits, hit.RTT*1e3)
		}
	}
	report.SimHitMs = stats.Summarize(hits)
	report.SimMissMs = stats.Summarize(misses)
	report.SimMisclassified = misclassified(hits, misses, report.ThresholdMs)
	return report, nil
}

// MeasureOpenFlowLatency measures Inject delays through the real-TCP
// OpenFlow switch/controller pair on loopback, with the controller's
// processing delay emulating the paper's Ryu compute time.
func MeasureOpenFlowLatency(samples int, seed int64, processing time.Duration) (stats.Summary, stats.Summary, float64, error) {
	universe := flows.ClientServerUniverse(flows.MakeIPv4(10, 0, 1, 0), 16)
	rs, err := rules.Generate(rules.DefaultGenerateConfig(0.1), stats.NewRNG(seed))
	if err != nil {
		return stats.Summary{}, stats.Summary{}, 0, err
	}
	ctl := openflow.NewController(rs, universe, openflow.ControllerOptions{
		ProcessingDelay: processing,
		StepSeconds:     0.1,
	})
	addr, err := ctl.Listen("127.0.0.1:0")
	if err != nil {
		return stats.Summary{}, stats.Summary{}, 0, err
	}
	defer ctl.Close()
	sw, err := openflow.NewSwitch(1, rs, universe, 9, 0.1)
	if err != nil {
		return stats.Summary{}, stats.Summary{}, 0, err
	}
	if err := sw.Connect(addr); err != nil {
		return stats.Summary{}, stats.Summary{}, 0, err
	}
	defer sw.Close()

	covered := rs.CoveredFlows()
	var tuple flows.FiveTuple
	found := false
	for f := 0; f < 16; f++ {
		if covered.Contains(flows.ID(f)) {
			tuple = universe.Tuple(flows.ID(f))
			found = true
			break
		}
	}
	if !found {
		return stats.Summary{}, stats.Summary{}, 0, fmt.Errorf("experiment: policy covers no evaluation flow")
	}

	var hits, misses []float64
	for i := 0; i < samples; i++ {
		res, err := sw.Inject(tuple)
		if err != nil {
			return stats.Summary{}, stats.Summary{}, 0, err
		}
		ms := float64(res.Delay) / float64(time.Millisecond)
		if res.Hit {
			hits = append(hits, ms)
		} else {
			misses = append(misses, ms)
		}
		if res.Hit && res.RuleID >= 0 {
			// Expire the rule so the next injection misses again:
			// alternate hit/miss samples. Idle timeouts here are ≥ 100ms;
			// waiting is too slow, so delete via the table directly.
			sw.ExpireAll()
		}
	}
	return stats.Summarize(hits), stats.Summarize(misses), misclassified(hits, misses, 1.0), nil
}

// MeasureLatency combines both substrates into one report.
func MeasureLatency(simSamples, ofSamples int, seed int64, processing time.Duration) (*LatencyReport, error) {
	report, err := MeasureSimLatency(simSamples, seed)
	if err != nil {
		return nil, err
	}
	hit, miss, bad, err := MeasureOpenFlowLatency(ofSamples, seed, processing)
	if err != nil {
		return nil, err
	}
	report.OFHitMs, report.OFMissMs, report.OFMisclassified = hit, miss, bad
	return report, nil
}

// misclassified returns the fraction of observations a threshold
// classifier gets wrong (hits at or above, misses below).
func misclassified(hitsMs, missesMs []float64, thresholdMs float64) float64 {
	total := len(hitsMs) + len(missesMs)
	if total == 0 {
		return 0
	}
	bad := 0
	for _, v := range hitsMs {
		if v >= thresholdMs {
			bad++
		}
	}
	for _, v := range missesMs {
		if v < thresholdMs {
			bad++
		}
	}
	return float64(bad) / float64(total)
}
