package experiment

import (
	"flowrecon/internal/core"
	"flowrecon/internal/stats"
	"flowrecon/internal/telemetry"
)

// TrialRecord is one per-trial telemetry sample: the cumulative registry
// snapshot taken at the end of the trial, Prometheus-scrape style, plus
// the trial's ground truth. Successive records can be differenced to
// recover per-trial deltas.
type TrialRecord struct {
	Trial     int                `json:"trial"`
	Truth     bool               `json:"truth"`
	Telemetry telemetry.Snapshot `json:"telemetry"`
}

// trialMetrics are the experiment layer's instruments, resolved once per
// run. The zero value (nil registry) disables everything.
type trialMetrics struct {
	trials     *telemetry.Counter
	probeHits  *telemetry.Counter
	probeMiss  *telemetry.Counter
	probeLost  *telemetry.Counter
	hitMs      *telemetry.Histogram
	missMs     *telemetry.Histogram
	truthTrue  *telemetry.Counter
	truthFalse *telemetry.Counter
	tracer     *telemetry.Tracer
}

// newTrialMetrics resolves the experiment instruments from reg (nil-safe).
func newTrialMetrics(reg *telemetry.Registry) trialMetrics {
	return trialMetrics{
		trials:     reg.Counter("experiment_trials_total"),
		probeHits:  reg.Counter("experiment_probes_total", "result", "hit"),
		probeMiss:  reg.Counter("experiment_probes_total", "result", "miss"),
		probeLost:  reg.Counter("experiment_probes_total", "result", "lost"),
		hitMs:      reg.Histogram("experiment_probe_delay_ms", telemetry.MillisecondBuckets(), "result", "hit"),
		missMs:     reg.Histogram("experiment_probe_delay_ms", telemetry.MillisecondBuckets(), "result", "miss"),
		truthTrue:  reg.Counter("experiment_truth_total", "present", "true"),
		truthFalse: reg.Counter("experiment_truth_total", "present", "false"),
		tracer:     reg.Tracer(),
	}
}

// verdictCounters resolves the per-attacker outcome counters (labelled by
// attacker name and confusion-matrix cell).
func verdictCounters(reg *telemetry.Registry, name string) [4]*telemetry.Counter {
	return [4]*telemetry.Counter{
		reg.Counter("experiment_verdicts_total", "attacker", name, "outcome", "true_pos"),
		reg.Counter("experiment_verdicts_total", "attacker", name, "outcome", "true_neg"),
		reg.Counter("experiment_verdicts_total", "attacker", name, "outcome", "false_pos"),
		reg.Counter("experiment_verdicts_total", "attacker", name, "outcome", "false_neg"),
	}
}

// countVerdict increments the confusion-matrix counter for one verdict.
func countVerdict(vc [4]*telemetry.Counter, verdict, truth bool) {
	switch {
	case verdict && truth:
		vc[0].Inc()
	case !verdict && !truth:
		vc[1].Inc()
	case verdict && !truth:
		vc[2].Inc()
	default:
		vc[3].Inc()
	}
}

// observeProbe records one probe's ground truth and drawn delay.
func (tm *trialMetrics) observeProbe(hit bool, ms float64) {
	if tm == nil {
		return
	}
	if hit {
		tm.probeHits.Inc()
		tm.hitMs.Observe(ms)
	} else {
		tm.probeMiss.Inc()
		tm.missMs.Observe(ms)
	}
}

// observeProbeLost counts a probe that never produced an observation.
func (tm *trialMetrics) observeProbeLost() {
	if tm == nil {
		return
	}
	tm.probeLost.Inc()
}

// RunTrialsInstrumented is the fully-observable trial loop behind
// RunTrials: each trial generates one traffic window from source, replays
// it through a continuous-time switch table, lets every attacker probe its
// own replica, and scores the verdicts. When reg is non-nil the run feeds
// the experiment instruments (trial counter, probe hit/miss counters and
// millisecond delay histograms, per-attacker confusion-matrix counters)
// and the trial tables' flowtable metrics; when perTrial is also set, a
// cumulative registry snapshot is recorded after every trial and returned
// as []TrialRecord. It is RunTrialsOpts without recording or spans.
func RunTrialsInstrumented(nc *NetworkConfig, attackers []core.Attacker, trials int, meas Measurement, rng *stats.RNG, source TraceSource, reg *telemetry.Registry, perTrial bool) ([]AttackerResult, []TrialRecord, error) {
	return RunTrialsOpts(nc, attackers, trials, meas, rng, TrialOptions{
		Source: source, Registry: reg, PerTrial: perTrial,
	})
}
