package experiment

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"flowrecon/internal/core"
	"flowrecon/internal/faults"
	"flowrecon/internal/stats"
	"flowrecon/internal/telemetry"
	"flowrecon/internal/trialrec"
)

// RestrictedAttackerName is the reported name of the §VI-B attacker that
// may not probe the target flow itself.
const RestrictedAttackerName = "model(f≠target)"

// RecordingSpec pins everything needed to regenerate a recorded run
// bit-for-bit: the generation parameters, the two root seeds, and the
// attack shape. It travels in the recording header (as trialrec's opaque
// spec blob), so a recording is self-describing — Replay needs nothing
// but the file.
type RecordingSpec struct {
	// Params are the configuration-generation parameters.
	Params Params `json:"params"`
	// ConfigSeed seeds the network-configuration sampler.
	ConfigSeed int64 `json:"configSeed"`
	// TrialSeed seeds the trial loop (traffic, probes, random verdicts).
	TrialSeed int64 `json:"trialSeed"`
	// Trials is the number of attack trials.
	Trials int `json:"trials"`
	// Probes is the model attacker's sequence length m.
	Probes int `json:"probes"`
	// Measurement is the timing classifier.
	Measurement Measurement `json:"measurement"`
	// Faults, when non-nil, is the fault-injection profile of the run
	// (probe loss and delay jitter; see TrialOptions.Faults). It is part
	// of the spec — and therefore the config hash — so a chaos run
	// replays with its faults, fault for fault. Nil (omitted from the
	// JSON) keeps fault-free specs, hashes and recordings byte-identical
	// to recordings made before fault injection existed.
	Faults *faults.Profile `json:"faults,omitempty"`
	// Trace, when non-nil, names the traffic source: a heavy-tailed or
	// modulated generator, or an ingested capture pinned by SHA-256. It
	// follows the Faults convention — nil is omitted from the JSON, so
	// Poisson specs, hashes and recordings stay byte-identical to those
	// made before trace sources existed.
	Trace *TraceSourceSpec `json:"traceSource,omitempty"`
}

// Validate checks the spec.
func (s RecordingSpec) Validate() error {
	if err := s.Params.Validate(); err != nil {
		return err
	}
	if s.Trials < 1 || s.Probes < 1 {
		return fmt.Errorf("experiment: recording needs ≥ 1 trial and ≥ 1 probe (got %d, %d)", s.Trials, s.Probes)
	}
	if s.Faults != nil {
		if err := s.Faults.Validate(); err != nil {
			return err
		}
	}
	if err := s.Trace.Validate(); err != nil {
		return err
	}
	return nil
}

// maxConfigAttempts bounds the deterministic resampling loop in
// BuildConfig (GenerateConfig fails when no flow qualifies as a target).
const maxConfigAttempts = 64

// BuildConfig regenerates the network configuration from the spec. The
// sampler draws from a single stream seeded with ConfigSeed and resamples
// on target-selection failure, so the (attempt count, configuration) pair
// is a pure function of the spec.
func (s RecordingSpec) BuildConfig() (*NetworkConfig, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	// A rate-fitting trace source replaces the sampled uniform rates with
	// the capture's empirical per-class rates; the file is pinned by
	// SHA-256, so the configuration stays a pure function of the spec.
	var fitted []float64
	if s.Trace != nil && s.Trace.FitRates {
		res, err := s.Trace.Load()
		if err != nil {
			return nil, err
		}
		fitted = res.Rates
	}
	rng := stats.NewRNG(s.ConfigSeed)
	var lastErr error
	for attempt := 0; attempt < maxConfigAttempts; attempt++ {
		nc, err := GenerateConfigWithRates(s.Params, fitted, rng)
		if err == nil {
			return nc, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("experiment: no viable configuration after %d attempts: %w", maxConfigAttempts, lastErr)
}

// StandardAttackers builds the canonical roster the CLI and the figures
// evaluate: the naive target-prober, the model attacker with m probes,
// the restricted model attacker (probes ≠ target, §VI-B), and the
// probeless random guesser. Names are distinct so recordings index
// cleanly by attacker.
func StandardAttackers(nc *NetworkConfig, probes int) ([]core.Attacker, error) {
	model, err := core.NewModelAttacker(nc.Selector, nc.Selector.AllFlows(), probes, core.DecideByPosterior)
	if err != nil {
		return nil, err
	}
	restricted, err := core.NewModelAttacker(nc.Selector, nc.Selector.FlowsExcept(nc.Target), 1, core.DecideByPosterior)
	if err != nil {
		return nil, err
	}
	return []core.Attacker{
		&core.NaiveAttacker{TargetFlow: nc.Target},
		model,
		restricted.Rename(RestrictedAttackerName),
		&core.RandomAttacker{PPresent: 1 - nc.PAbsent()},
	}, nil
}

// RecordTo executes the spec and streams the recording to w (which is
// not closed). reg optionally receives the run's telemetry. It returns
// the per-attacker results alongside the regenerated configuration.
func RecordTo(w io.Writer, spec RecordingSpec, reg *telemetry.Registry) ([]AttackerResult, *NetworkConfig, error) {
	return RecordToParallel(w, spec, reg, 1)
}

// RecordToParallel is RecordTo on a worker pool. Recordings are assembled
// in strict trial order whatever the parallelism, so the output bytes are
// identical at every level — which the golden tests pin.
func RecordToParallel(w io.Writer, spec RecordingSpec, reg *telemetry.Registry, parallelism int) ([]AttackerResult, *NetworkConfig, error) {
	nc, err := spec.BuildConfig()
	if err != nil {
		return nil, nil, err
	}
	source, err := spec.Trace.Source()
	if err != nil {
		return nil, nil, err
	}
	attackers, err := StandardAttackers(nc, spec.Probes)
	if err != nil {
		return nil, nil, err
	}
	names := make([]string, len(attackers))
	for i, a := range attackers {
		names[i] = a.Name()
	}
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return nil, nil, err
	}
	rec, err := trialrec.NewRecorder(struct{ io.Writer }{w}, trialrec.Header{
		Spec:      specJSON,
		Seed:      spec.TrialSeed,
		Trials:    spec.Trials,
		Attackers: names,
	})
	if err != nil {
		return nil, nil, err
	}
	opts := TrialOptions{
		Source:      source,
		Registry:    reg,
		Recorder:    rec,
		Parallelism: parallelism,
	}
	if spec.Faults != nil {
		opts.Faults = *spec.Faults
	}
	results, _, err := RunTrialsOpts(nc, attackers, spec.Trials, spec.Measurement, stats.NewRNG(spec.TrialSeed), opts)
	if err != nil {
		rec.Close()
		return nil, nil, err
	}
	if err := rec.Close(); err != nil {
		return nil, nil, err
	}
	return results, nc, nil
}

// SpecFromRecording extracts the RecordingSpec a recording was produced
// from.
func SpecFromRecording(rec *trialrec.Recording) (RecordingSpec, error) {
	var spec RecordingSpec
	if len(rec.Header.Spec) == 0 {
		return spec, fmt.Errorf("experiment: recording carries no spec; cannot replay")
	}
	if err := json.Unmarshal(rec.Header.Spec, &spec); err != nil {
		return spec, fmt.Errorf("experiment: bad spec: %w", err)
	}
	return spec, nil
}

// Replay re-executes a recording's spec from its seeds and returns the
// freshly generated recording plus the per-attacker results. Because
// every random draw flows through the seeded streams, the replay matches
// the original probe for probe; trialrec.Diff(original, replayed)
// returning no divergences is the determinism check.
func Replay(rec *trialrec.Recording) (*trialrec.Recording, []AttackerResult, error) {
	spec, err := SpecFromRecording(rec)
	if err != nil {
		return nil, nil, err
	}
	var buf bytes.Buffer
	results, _, err := RecordTo(&buf, spec, nil)
	if err != nil {
		return nil, nil, err
	}
	fresh, err := trialrec.Read(&buf)
	if err != nil {
		return nil, nil, err
	}
	return fresh, results, nil
}
