package experiment

import (
	"fmt"
	"sort"

	"flowrecon/internal/core"
	"flowrecon/internal/stats"
	"flowrecon/internal/telemetry"
)

// Fig6Options scales the Figure 6 reproduction. The paper used 100
// network configurations × 100 trials; smaller values keep bench runs
// tractable while preserving the comparison's shape.
type Fig6Options struct {
	Params          Params
	Configs         int // qualifying configurations to collect
	TrialsPerConfig int
	MaxAttempts     int // sampling budget before giving up
	Seed            int64
	// SaveDir, when non-empty, receives one JSON file per accepted
	// configuration (see SaveConfig) for exact re-runs.
	SaveDir string
	// Telemetry, when non-nil, receives the run's experiment metrics
	// (trial counters, probe hit/miss delay histograms, per-attacker
	// confusion-matrix counters) cumulatively across all configurations.
	Telemetry *telemetry.Registry
	// Parallelism is the per-configuration trial-runner worker count
	// (see TrialOptions.Parallelism). Results are identical at every
	// level.
	Parallelism int
}

// DefaultFig6Options returns a laptop-scale version of the paper's run.
func DefaultFig6Options() Fig6Options {
	return Fig6Options{
		Params:          DefaultParams(),
		Configs:         100,
		TrialsPerConfig: 100,
		MaxAttempts:     2000,
		Seed:            1,
	}
}

// AbsenceBucket is one x-axis bin of Figure 6a/7b: target-flow absence
// probability in [Lo, Hi).
type AbsenceBucket struct {
	Lo, Hi float64
	// Accuracy[name] is the mean accuracy of that attacker over the
	// configurations in this bucket.
	Accuracy map[string]float64
	Configs  int
}

// ConfigOutcome records one configuration's attacker accuracies.
type ConfigOutcome struct {
	PAbsent           float64
	NumCoveringTarget int
	OptimalFlow       int
	TargetFlow        int
	Accuracy          map[string]float64
}

// Fig6Result reproduces both panels of Figure 6.
type Fig6Result struct {
	// Buckets is Figure 6a: accuracy vs probability of absence, for the
	// model and naive attackers.
	Buckets []AbsenceBucket
	// ImprovementCDF is Figure 6b: the empirical CDF of the per-config
	// additive improvement (model − naive accuracy).
	ImprovementCDF []stats.CDFPoint
	// Outcomes are the per-configuration raw numbers.
	Outcomes []ConfigOutcome
	// Attempted counts configurations sampled to find the qualifying set.
	Attempted int
	// MeanModel/MeanNaive are population means (the paper's "~2% on
	// average" comparison).
	MeanModel, MeanNaive float64
}

// RunFig6 reproduces Figure 6: over configurations where the
// model-calculated optimal probe differs from the target flow (and the
// optimal probe is a viable detector, §VI-B), compare the model attacker
// (probe = optimal flow, verdict = query result) with the naive attacker
// (probe = target flow).
func RunFig6(opts Fig6Options) (*Fig6Result, error) {
	rng := stats.NewRNG(opts.Seed)
	meas := DefaultMeasurement()
	res := &Fig6Result{}
	var improvements []float64

	for res.Attempted = 0; res.Attempted < opts.MaxAttempts && len(res.Outcomes) < opts.Configs; res.Attempted++ {
		// Cycle the target-absence strata so the x-axis of Figure 6a is
		// populated end to end (see AbsenceStrata).
		nc, err := GenerateConfig(opts.Params.WithStratum(res.Attempted), rng.Fork())
		if err != nil {
			continue // unlucky sample (e.g. no eligible target)
		}
		if !nc.OptimalDiffersFromTarget() || !nc.DetectorViable() {
			continue
		}
		model, err := core.NewModelAttacker(nc.Selector, nc.Selector.AllFlows(), 1, core.DecideByQuery)
		if err != nil {
			return nil, err
		}
		attackers := []core.Attacker{
			&core.NaiveAttacker{TargetFlow: nc.Target},
			model,
		}
		results, _, err := RunTrialsOpts(nc, attackers, opts.TrialsPerConfig, meas, rng.Fork(), TrialOptions{
			Registry: opts.Telemetry, Parallelism: opts.Parallelism,
		})
		if err != nil {
			return nil, err
		}
		out := ConfigOutcome{
			PAbsent:           nc.PAbsent(),
			NumCoveringTarget: nc.NumCoveringTarget,
			OptimalFlow:       int(nc.Optimal.Flow),
			TargetFlow:        int(nc.Target),
			Accuracy:          map[string]float64{},
		}
		for _, r := range results {
			out.Accuracy[r.Name] = r.Accuracy()
		}
		if err := saveAccepted(opts.SaveDir, "fig6", len(res.Outcomes), nc); err != nil {
			return nil, err
		}
		res.Outcomes = append(res.Outcomes, out)
		improvements = append(improvements, out.Accuracy[model.Name()]-out.Accuracy["naive"])
	}
	if len(res.Outcomes) == 0 {
		return nil, fmt.Errorf("experiment: no qualifying configurations in %d attempts", res.Attempted)
	}
	res.Buckets = bucketByAbsence(res.Outcomes, 5)
	res.ImprovementCDF = stats.EmpiricalCDF(improvements)
	res.MeanModel, res.MeanNaive = populationMeans(res.Outcomes)
	return res, nil
}

// bucketByAbsence bins outcomes into nbins equal-width absence buckets.
func bucketByAbsence(outcomes []ConfigOutcome, nbins int) []AbsenceBucket {
	buckets := make([]AbsenceBucket, nbins)
	counts := make([]map[string]int, nbins)
	for i := range buckets {
		buckets[i] = AbsenceBucket{
			Lo:       float64(i) / float64(nbins),
			Hi:       float64(i+1) / float64(nbins),
			Accuracy: map[string]float64{},
		}
		counts[i] = map[string]int{}
	}
	for _, o := range outcomes {
		i := int(o.PAbsent * float64(nbins))
		if i >= nbins {
			i = nbins - 1
		}
		buckets[i].Configs++
		for name, acc := range o.Accuracy {
			buckets[i].Accuracy[name] += acc
			counts[i][name]++
		}
	}
	for i := range buckets {
		for name, n := range counts[i] {
			if n > 0 {
				buckets[i].Accuracy[name] /= float64(n)
			}
		}
	}
	return buckets
}

// populationMeans returns the mean model and naive accuracies over all
// outcomes. The "model" attacker is whichever non-naive, non-random name
// appears.
func populationMeans(outcomes []ConfigOutcome) (model, naive float64) {
	n := 0
	for _, o := range outcomes {
		naive += o.Accuracy["naive"]
		for name, acc := range o.Accuracy {
			if name != "naive" && name != "random" {
				model += acc
			}
		}
		n++
	}
	if n > 0 {
		model /= float64(n)
		naive /= float64(n)
	}
	return model, naive
}

// ImprovementQuantiles summarizes Figure 6b the way the paper quotes it:
// the fraction of configurations whose improvement is at least each
// threshold.
func (r *Fig6Result) ImprovementQuantiles(thresholds []float64) map[float64]float64 {
	out := make(map[float64]float64, len(thresholds))
	if len(r.Outcomes) == 0 {
		return out
	}
	for _, th := range thresholds {
		n := 0
		for _, o := range r.Outcomes {
			imp := -o.Accuracy["naive"]
			for name, acc := range o.Accuracy {
				if name != "naive" && name != "random" {
					imp += acc
				}
			}
			if imp >= th {
				n++
			}
		}
		out[th] = float64(n) / float64(len(r.Outcomes))
	}
	return out
}

// sortedAttackerNames lists the attacker names appearing in outcomes.
func sortedAttackerNames(outcomes []ConfigOutcome) []string {
	seen := map[string]bool{}
	for _, o := range outcomes {
		for name := range o.Accuracy {
			seen[name] = true
		}
	}
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
