package experiment

import (
	"fmt"
	"math"

	"flowrecon/internal/core"
	"flowrecon/internal/detect"
	"flowrecon/internal/faults"
	"flowrecon/internal/flows"
	"flowrecon/internal/flowtable"
	"flowrecon/internal/stats"
	"flowrecon/internal/telemetry"
	"flowrecon/internal/workload"
)

func expNeg(x float64) float64 { return math.Exp(-x) }

// Measurement models the attacker's timing classifier: a probe's observed
// delay is drawn from the hit or miss distribution and thresholded
// (§VI-A: hit ≈ N(0.087, 0.021) ms, miss ≈ N(4.070, 1.806) ms with a
// 1 ms threshold). The floor keeps the miss distribution physically
// non-negative-latency shaped.
type Measurement struct {
	HitMeanMs, HitStdMs   float64
	MissMeanMs, MissStdMs float64
	MissFloorMs           float64
	ThresholdMs           float64
}

// DefaultMeasurement returns the paper-calibrated classifier.
func DefaultMeasurement() Measurement {
	return Measurement{
		HitMeanMs: 0.087, HitStdMs: 0.021,
		MissMeanMs: 4.070, MissStdMs: 1.806,
		MissFloorMs: 1.9, ThresholdMs: 1.0,
	}
}

// Classify simulates one timing observation of a probe with ground-truth
// outcome hit and returns the attacker's classification.
func (m Measurement) Classify(hit bool, rng *stats.RNG) bool {
	verdict, _ := m.ClassifyMs(hit, rng)
	return verdict
}

// ClassifyMs is Classify exposing the drawn observation (milliseconds) —
// the quantity the telemetry probe-delay histograms record.
func (m Measurement) ClassifyMs(hit bool, rng *stats.RNG) (bool, float64) {
	var ms float64
	if hit {
		ms = rng.Normal(m.HitMeanMs, m.HitStdMs)
		if ms < 0 {
			ms = 0
		}
	} else {
		ms = rng.Normal(m.MissMeanMs, m.MissStdMs)
		if ms < m.MissFloorMs {
			ms = m.MissFloorMs
		}
	}
	return ms < m.ThresholdMs, ms
}

// AttackerResult aggregates one attacker's trial outcomes.
type AttackerResult struct {
	Name     string
	Trials   int
	Correct  int
	TruePos  int
	TrueNeg  int
	FalsePos int
	FalseNeg int
}

// Accuracy returns the paper's metric: (TP + TN) / trials.
func (r AttackerResult) Accuracy() float64 {
	if r.Trials == 0 {
		return 0
	}
	return float64(r.Correct) / float64(r.Trials)
}

// TraceSource generates one traffic window. The default is the paper's
// Poisson traffic; alternative sources (bursty, periodic) measure how the
// attack degrades when the attacker's Poisson model is misspecified.
type TraceSource func(rates []float64, duration float64, rng *stats.RNG) (*workload.Trace, error)

// PoissonSource is the paper's traffic model (§IV-A1).
func PoissonSource(rates []float64, duration float64, rng *stats.RNG) (*workload.Trace, error) {
	return workload.GeneratePoisson(workload.PoissonConfig{Rates: rates, Duration: duration}, rng)
}

// BurstySource returns an ON/OFF Markov-modulated source with the given
// shape (see workload.BurstConfig); the long-run rates match the model's.
func BurstySource(burstFactor, meanOn, meanOff float64) TraceSource {
	return func(rates []float64, duration float64, rng *stats.RNG) (*workload.Trace, error) {
		return workload.GenerateBursty(workload.BurstConfig{
			Rates: rates, Duration: duration,
			BurstFactor: burstFactor, MeanOn: meanOn, MeanOff: meanOff,
		}, rng)
	}
}

// PeriodicSource returns deterministic fixed-interval traffic.
func PeriodicSource(rates []float64, duration float64, rng *stats.RNG) (*workload.Trace, error) {
	return workload.GeneratePeriodic(workload.PoissonConfig{Rates: rates, Duration: duration}, rng)
}

// RunTrials executes the attack trials times on fresh random Poisson
// traffic: each trial generates one window, replays it through a
// continuous-time switch table, lets every attacker probe the resulting
// table state (each against its own replica, since probes perturb the
// cache), and scores the verdicts against the trace's ground truth.
func RunTrials(nc *NetworkConfig, attackers []core.Attacker, trials int, meas Measurement, rng *stats.RNG) ([]AttackerResult, error) {
	return RunTrialsWithSource(nc, attackers, trials, meas, rng, PoissonSource)
}

// RunTrialsWithSource is RunTrials with a custom traffic source.
func RunTrialsWithSource(nc *NetworkConfig, attackers []core.Attacker, trials int, meas Measurement, rng *stats.RNG, source TraceSource) ([]AttackerResult, error) {
	results, _, err := RunTrialsInstrumented(nc, attackers, trials, meas, rng, source, nil, false)
	return results, err
}

// SequentialAttacker is an attacker that chooses each probe after seeing
// the previous outcomes (the adaptive extension in core).
type SequentialAttacker interface {
	core.Attacker
	// NextProbe returns the next probe given outcomes so far; false ends
	// the probing phase.
	NextProbe(outcomes []bool) (flows.ID, bool)
}

// probeObserver captures per-probe forensics for one attacker within one
// trial: the probes actually sent (needed for sequential attackers, whose
// plan only materializes as outcomes arrive), the belief trajectory when
// the attacker exposes a fitted model, one causal span per probe (hung
// under the attacker span via the ctx carrier — the same SpanContext the
// TCP path marshals onto the wire), and one wide event per probe
// decision when the trial loop collects events. A nil observer disables
// everything at the cost of one pointer check, so the un-instrumented
// trial loop stays allocation-free.
type probeObserver struct {
	tracker *core.BeliefTracker
	spans   *telemetry.SpanRecorder
	ctx     telemetry.SpanContext
	trial   int
	name    string // attacker name, for wide events
	events  *[]telemetry.WideEvent
	probes  []flows.ID
	belief  []core.BeliefStep
}

// observe records one probe: ground truth hit, the classified outcome the
// attacker saw, and the drawn delay in milliseconds.
func (o *probeObserver) observe(f flows.ID, hit, classified bool, ms, at float64) {
	if o == nil {
		return
	}
	o.probes = append(o.probes, f)
	id, _ := o.spans.StartCtx(o.ctx, "probe", "experiment", at)
	o.spans.Annotate(id, int(f), -1, probeDetail(hit, classified, ms))
	o.spans.End(id, at+ms/1e3)
	if o.events != nil {
		ev := telemetry.NewWideEvent("probe")
		ev.Node = "experiment"
		ev.T = at
		ev.Trial = o.trial
		ev.Attacker = o.name
		ev.Flow = int(f)
		ev.Trace = o.ctx.Trace
		ev.Truth = hitStr(hit)
		ev.Outcome = hitStr(classified)
		ev.DelayMs = ms
		*o.events = append(*o.events, ev)
	}
	if o.tracker != nil {
		o.belief = append(o.belief, o.tracker.Observe(f, classified))
	}
}

// observeLost records a probe that produced no observation: the span is
// annotated as lost, a fault wide event is emitted, and the belief
// tracker (if any) folds in an explicit no-observation step.
func (o *probeObserver) observeLost(f flows.ID, at float64) {
	if o == nil {
		return
	}
	o.probes = append(o.probes, f)
	id, _ := o.spans.StartCtx(o.ctx, "probe", "experiment", at)
	o.spans.Annotate(id, int(f), -1, "lost")
	o.spans.End(id, at)
	if o.events != nil {
		ev := telemetry.NewWideEvent("fault.drop")
		ev.Node = "experiment"
		ev.T = at
		ev.Trial = o.trial
		ev.Attacker = o.name
		ev.Flow = int(f)
		ev.Trace = o.ctx.Trace
		ev.Outcome = "lost"
		*o.events = append(*o.events, ev)
	}
	if o.tracker != nil {
		o.belief = append(o.belief, o.tracker.ObserveLost(f))
	}
}

func probeDetail(hit, classified bool, ms float64) string {
	return fmt.Sprintf("truth=%s classified=%s delay=%.3fms", hitStr(hit), hitStr(classified), ms)
}

func hitStr(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

// probeSequential drives a sequential attacker against the table. A lost
// probe is presented to the attacker as a miss (sequential planning has
// no "no observation" branch) but still flagged in the lost mask. With
// pacing, consecutive probes advance the attack clock just as the
// planned-sequence path does.
func probeSequential(nc *NetworkConfig, tbl *flowtable.Table, a SequentialAttacker, at float64, meas Measurement, rng *stats.RNG, flt *faults.Stream, tm *trialMetrics, obs *probeObserver, det *detect.Detector, pace core.Pacing) (outcomes, lost []bool) {
	t := at
	for {
		f, ok := a.NextProbe(outcomes)
		if !ok {
			return outcomes, lost
		}
		if len(outcomes) > 0 {
			t += paceGap(pace, rng)
		}
		step, stepLost := probeTable(nc, tbl, []flows.ID{f}, t, meas, rng, flt, tm, obs, det, core.Pacing{})
		outcomes = append(outcomes, step[0])
		if stepLost != nil { // non-nil exactly when faults are enabled
			lost = append(lost, stepLost[0])
		}
	}
}

// replayTrace builds the switch table state after the traffic window. A
// non-nil registry attaches the table's flowtable instruments under the
// "trial" node label so replay installs/evictions are observable. A
// non-nil detector observes every replay lookup — the benign background
// the anomaly baselines are scored against.
func replayTrace(nc *NetworkConfig, trace *workload.Trace, reg *telemetry.Registry, det *detect.Detector) (*flowtable.Table, error) {
	tbl, err := flowtable.New(nc.Rules, nc.Params.CacheSize, nc.Params.Delta)
	if err != nil {
		return nil, fmt.Errorf("trial table: %w", err)
	}
	if reg != nil {
		tbl.SetTelemetry(reg, "trial")
	}
	for _, a := range trace.Arrivals() {
		_, hit := tbl.Lookup(a.Flow, a.Time)
		det.Observe(int(a.Flow), a.Time, math.NaN(), hit)
		if !hit {
			if j, covered := nc.Rules.HighestCovering(a.Flow); covered {
				tbl.Install(j, a.Time)
			}
		}
	}
	return tbl, nil
}

// paceGap draws one inter-probe gap from the stealth schedule. The draw
// happens only for enabled pacing, so unpaced attackers consume exactly
// the RNG sequence they always did (recordings stay byte-identical).
func paceGap(pace core.Pacing, rng *stats.RNG) float64 {
	if !pace.Enabled() {
		return 0
	}
	gap := pace.IntervalSec
	if pace.JitterFrac > 0 {
		gap += rng.Float64() * pace.JitterFrac * pace.IntervalSec
	}
	return gap
}

// probeTable sends the attacker's probes at the attack time, mutating the
// table exactly as real probes would (a miss installs the covering rule; a
// hit refreshes it), and classifies each observation through the timing
// channel. The drawn delay of every probe feeds the experiment histograms
// via tm (nil-safe instruments).
//
// With a fault stream attached, each probe may be lost before reaching
// the table (no lookup, no install, no classifier draw — outcomes[i]
// reads miss and lost[i] is set) and delivered probes suffer jitter on
// the observed delay, which can push a hit past the classifier
// threshold. lost is non-nil exactly when flt is non-nil, so fault-free
// runs consume identical RNG draws and serialize identically.
//
// A non-nil detector observes every delivered probe's lookup and drawn
// delay (a lost probe never reached the fabric and is invisible to the
// defender). With stealth pacing enabled, probe i fires at the attack
// time plus i accumulated pace gaps instead of back-to-back at a single
// instant; the pacing jitter draws come from the trial RNG but only for
// paced attackers, so every existing schedule is byte-unchanged.
func probeTable(nc *NetworkConfig, tbl *flowtable.Table, probes []flows.ID, at float64, meas Measurement, rng *stats.RNG, flt *faults.Stream, tm *trialMetrics, obs *probeObserver, det *detect.Detector, pace core.Pacing) (outcomes, lost []bool) {
	outcomes = make([]bool, len(probes))
	if flt != nil {
		lost = make([]bool, len(probes))
	}
	t := at
	for i, f := range probes {
		if i > 0 {
			t += paceGap(pace, rng)
		}
		if flt != nil && flt.Drop() {
			lost[i] = true
			tm.observeProbeLost()
			obs.observeLost(f, t)
			continue
		}
		_, hit := tbl.Lookup(f, t)
		if !hit {
			if j, covered := nc.Rules.HighestCovering(f); covered {
				tbl.Install(j, t)
			}
		}
		verdict, ms := meas.ClassifyMs(hit, rng)
		if flt != nil {
			if j := flt.JitterMs(); j > 0 {
				ms += j
				verdict = ms < meas.ThresholdMs
			}
		}
		det.Observe(int(f), t, ms, hit)
		tm.observeProbe(hit, ms)
		obs.observe(f, hit, verdict, ms, t)
		outcomes[i] = verdict
	}
	return outcomes, lost
}

func score(r *AttackerResult, verdict, truth bool) {
	r.Trials++
	switch {
	case verdict && truth:
		r.Correct++
		r.TruePos++
	case !verdict && !truth:
		r.Correct++
		r.TrueNeg++
	case verdict && !truth:
		r.FalsePos++
	default:
		r.FalseNeg++
	}
}
