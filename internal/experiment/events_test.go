package experiment

import (
	"bytes"
	"fmt"
	"testing"

	"flowrecon/internal/faults"
	"flowrecon/internal/stats"
	"flowrecon/internal/telemetry"
)

// eventRun executes one trial run with the wide-event log attached
// (deterministic clock) and returns its JSONL serialization.
func eventRun(t *testing.T, spec RecordingSpec, parallelism int) []byte {
	t.Helper()
	nc, err := spec.BuildConfig()
	if err != nil {
		t.Fatal(err)
	}
	attackers, err := StandardAttackers(nc, spec.Probes)
	if err != nil {
		t.Fatal(err)
	}
	events := telemetry.NewEventLog(0)
	events.SetClock(nil)
	opts := TrialOptions{Events: events, Parallelism: parallelism}
	if spec.Faults != nil {
		opts.Faults = *spec.Faults
	}
	if _, _, err := RunTrialsOpts(nc, attackers, spec.Trials, spec.Measurement,
		stats.NewRNG(spec.TrialSeed), opts); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := events.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestEventLogByteIdenticalAcrossParallelism is the wide-event analogue
// of the recording determinism guarantee: with wall stamping off, the
// event stream (probe decisions, fault drops, trial verdicts) must be
// byte-for-byte identical no matter how many workers ran the trials.
func TestEventLogByteIdenticalAcrossParallelism(t *testing.T) {
	spec := RecordingSpec{
		Params:      tinyParams(),
		ConfigSeed:  11,
		TrialSeed:   13,
		Trials:      18,
		Probes:      2,
		Measurement: DefaultMeasurement(),
	}
	serial := eventRun(t, spec, 1)
	if len(serial) == 0 {
		t.Fatal("serial run emitted no events")
	}
	for _, workers := range []int{2, 5} {
		par := eventRun(t, spec, workers)
		if !bytes.Equal(serial, par) {
			t.Fatalf("parallelism %d: event streams diverge\n%s", workers, firstDiffLines(serial, par))
		}
	}
}

// TestEventLogByteIdenticalUnderFaults repeats the identity check with
// probe faults armed, so fault.drop events interleave with probes.
func TestEventLogByteIdenticalUnderFaults(t *testing.T) {
	spec := RecordingSpec{
		Params:      tinyParams(),
		ConfigSeed:  7,
		TrialSeed:   23,
		Trials:      14,
		Probes:      2,
		Measurement: DefaultMeasurement(),
		Faults:      &faults.Profile{Seed: 5, LossProb: 0.2, JitterMeanMs: 0.3},
	}
	serial := eventRun(t, spec, 1)
	par := eventRun(t, spec, 4)
	if !bytes.Equal(serial, par) {
		t.Fatalf("fault event streams diverge\n%s", firstDiffLines(serial, par))
	}
	if !bytes.Contains(serial, []byte(`"fault.drop"`)) {
		t.Fatal("fault profile injected no fault.drop events; test proves nothing")
	}
}

// TestEventStreamContent spot-checks the wide events one serial run
// emits: per-probe decisions with trace + truth + classification, and
// one verdict per attacker per trial.
func TestEventStreamContent(t *testing.T) {
	spec := RecordingSpec{
		Params:      tinyParams(),
		ConfigSeed:  11,
		TrialSeed:   13,
		Trials:      4,
		Probes:      1,
		Measurement: DefaultMeasurement(),
	}
	nc, err := spec.BuildConfig()
	if err != nil {
		t.Fatal(err)
	}
	attackers, err := StandardAttackers(nc, spec.Probes)
	if err != nil {
		t.Fatal(err)
	}
	events := telemetry.NewEventLog(0)
	events.SetClock(nil)
	if _, _, err := RunTrialsOpts(nc, attackers, spec.Trials, spec.Measurement,
		stats.NewRNG(spec.TrialSeed), TrialOptions{Events: events, Parallelism: 1}); err != nil {
		t.Fatal(err)
	}

	verdictsPerTrial := map[int]int{}
	for _, e := range events.Events() {
		switch e.Kind {
		case "probe":
			if e.Attacker == "" || e.Trial < 0 || e.Flow < 0 {
				t.Fatalf("underspecified probe event: %+v", e)
			}
			if e.Truth != "hit" && e.Truth != "miss" {
				t.Fatalf("probe truth %q: %+v", e.Truth, e)
			}
			if e.Outcome != "hit" && e.Outcome != "miss" {
				t.Fatalf("probe outcome %q: %+v", e.Outcome, e)
			}
		case "trial.verdict":
			verdictsPerTrial[e.Trial]++
			if e.Verdict == "" || e.Truth == "" || (e.Outcome != "correct" && e.Outcome != "wrong") {
				t.Fatalf("underspecified verdict event: %+v", e)
			}
		}
	}
	for trial := 0; trial < spec.Trials; trial++ {
		if verdictsPerTrial[trial] != len(attackers) {
			t.Fatalf("trial %d has %d verdict events, want %d",
				trial, verdictsPerTrial[trial], len(attackers))
		}
	}
}

// firstDiffLines renders the first diverging line pair of two JSONL
// buffers, keeping failure output readable.
func firstDiffLines(a, b []byte) string {
	al := bytes.Split(a, []byte("\n"))
	bl := bytes.Split(b, []byte("\n"))
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(al[i], bl[i]) {
			return fmt.Sprintf("line %d:\n  serial:   %s\n  parallel: %s", i, al[i], bl[i])
		}
	}
	return fmt.Sprintf("streams differ in length: %d vs %d lines", len(al), len(bl))
}
