package experiment

import (
	"bytes"
	"testing"

	"flowrecon/internal/detect"
	"flowrecon/internal/faults"
	"flowrecon/internal/trialrec"
)

func fleetTestOptions() FleetOptions {
	o := DefaultFleetOptions()
	o.Trials = 10
	o.Horizon = 2.0
	o.Seed = 42
	return o
}

// runFleetRecorded runs the scenario and returns the recording bytes and
// the outcome.
func runFleetRecorded(t *testing.T, o FleetOptions) ([]byte, FleetOutcome) {
	t.Helper()
	var buf bytes.Buffer
	rec, err := trialrec.NewRecorder(&buf, trialrec.Header{
		Seed: o.Seed, Trials: o.Trials, Attackers: []string{FleetAttackerName},
	})
	if err != nil {
		t.Fatal(err)
	}
	o.Recorder = rec
	out, err := RunFleetTrials(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), out
}

// TestFleetShardDeterminism is the PR's acceptance check at the
// experiment layer: with faults enabled, recordings at 1, 2, and 8
// shards are byte-identical and trialrec.Diff-clean.
func TestFleetShardDeterminism(t *testing.T) {
	base := fleetTestOptions()
	base.Faults = faults.Profile{
		Seed: 99, LossProb: 0.05, JitterMeanMs: 0.3,
		StallProb: 0.05, StallMs: 1.5, SlowFactor: 1.3,
	}
	base.Detect = &detect.Config{}
	*base.Detect = detect.DefaultConfig()

	type run struct {
		shards, workers int
	}
	var ref []byte
	var refOut FleetOutcome
	for i, r := range []run{{1, 1}, {2, 2}, {8, 4}} {
		o := base
		o.Shards, o.Workers = r.shards, r.workers
		got, out := runFleetRecorded(t, o)
		if i == 0 {
			ref, refOut = got, out
			continue
		}
		if !bytes.Equal(got, ref) {
			t.Fatalf("recording at %d shards differs from serial run (%d vs %d bytes)",
				r.shards, len(got), len(ref))
		}
		ra, err := trialrec.Read(bytes.NewReader(ref))
		if err != nil {
			t.Fatal(err)
		}
		rb, err := trialrec.Read(bytes.NewReader(got))
		if err != nil {
			t.Fatal(err)
		}
		if divs := trialrec.Diff(ra, rb); len(divs) != 0 {
			t.Fatalf("trialrec.Diff at %d shards: %v", r.shards, divs)
		}
		// Shards/Lookahead legitimately differ; the attack results and
		// the defender's flags must not.
		if out.Result != refOut.Result || out.Flagged != refOut.Flagged {
			t.Fatalf("outcome at %d shards %+v != serial %+v", r.shards, out, refOut)
		}
	}
	if refOut.Result.Trials != base.Trials {
		t.Fatalf("scored %d trials, want %d", refOut.Result.Trials, base.Trials)
	}
}

// TestFleetAttackAccuracy checks the remote-edge inference actually
// works: without faults the timing channel should recover the target
// flow's presence on far edges well above chance.
func TestFleetAttackAccuracy(t *testing.T) {
	o := fleetTestOptions()
	o.Trials = 30
	_, out := runFleetRecorded(t, o)
	r := out.Result
	if r.Trials != o.Trials {
		t.Fatalf("trials = %d, want %d", r.Trials, o.Trials)
	}
	if r.TruePos == 0 || r.TrueNeg == 0 {
		t.Fatalf("degenerate truth split: %+v (tune Rate/Horizon)", r)
	}
	if acc := r.Accuracy(); acc < 0.85 {
		t.Fatalf("fleet attack accuracy %.2f below 0.85: %+v", acc, r)
	}
	if out.Switches < 20 {
		t.Fatalf("fleet has %d switches, want ≥20", out.Switches)
	}
}

// TestFleetDetectorObserves confirms the per-shard controller-path
// detector sees the probe activity (the defender's view of the fleet
// attack) identically at different shard counts.
func TestFleetDetectorObserves(t *testing.T) {
	o := fleetTestOptions()
	o.Trials = 6
	cfg := detect.DefaultConfig()
	// The scenario sends few probes per trial; drop the floor so the
	// regularity test can engage at all.
	cfg.MinObs = 4
	cfg.MinGaps = 2
	o.Detect = &cfg
	_, serial := runFleetRecorded(t, o)
	o.Shards, o.Workers = 4, 2
	_, sharded := runFleetRecorded(t, o)
	if serial.Flagged != sharded.Flagged {
		t.Fatalf("detector flags diverge: serial=%d sharded=%d", serial.Flagged, sharded.Flagged)
	}
}

func TestBuildFleetTopology(t *testing.T) {
	for _, tc := range []struct {
		kind     string
		switches int
		min      int
	}{
		{"backbone", 0, 16},
		{"fattree", 1000, 1000},
		{"leafspine", 30, 30},
	} {
		topo, err := BuildFleetTopology(tc.kind, tc.switches)
		if err != nil {
			t.Fatalf("%s: %v", tc.kind, err)
		}
		if len(topo.Switches) < tc.min {
			t.Fatalf("%s: %d switches, want ≥%d", tc.kind, len(topo.Switches), tc.min)
		}
	}
	if _, err := BuildFleetTopology("torus", 10); err == nil {
		t.Fatal("unknown topology accepted")
	}
	if _, err := RunFleetTrials(FleetOptions{}); err == nil {
		t.Fatal("zero options accepted")
	}
	o := DefaultFleetOptions()
	o.Topo = "backbone"
	if _, err := RunFleetTrials(o); err == nil {
		t.Fatal("backbone (no edge tier) accepted by the fleet scenario")
	}
}
