package experiment

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"flowrecon/internal/ingest"
	"flowrecon/internal/stats"
	"flowrecon/internal/workload"
)

// TraceSourceSpec names a traffic source declaratively, so it can travel
// inside a RecordingSpec: a recorded run on heavy-tailed or ingested
// traffic replays byte-for-byte from the spec alone. Generator kinds are
// pure functions of (rates, duration, seed); file kinds pin the capture
// by SHA-256 so a replay detects a swapped file instead of silently
// diverging.
//
// Kinds and their parameters:
//
//	poisson              — the paper's §IV-A1 model (the default)
//	bursty               — ON/OFF Markov modulation (BurstFactor, MeanOn, MeanOff)
//	periodic             — deterministic fixed-interval arrivals
//	pareto               — Pareto-renewal interarrivals (Alpha)
//	lognormal            — log-normal-renewal interarrivals (Sigma)
//	diurnal              — inhomogeneous Poisson, sinusoidal profile
//	                       (DiurnalPeriod, DiurnalAmp)
//	flash                — inhomogeneous Poisson, flash-crowd spike
//	                       (FlashAt, FlashDur, FlashFactor); composes with
//	                       the diurnal fields when both are set
//	pcap, flowlog        — windowed replay of an ingested capture (Path,
//	                       SHA256, ActiveTimeout, IdleTimeout, FitRates)
type TraceSourceSpec struct {
	// Kind selects the source; "" means poisson.
	Kind string `json:"kind"`

	// Bursty parameters (zero values take BurstySource's 4/2/6 shape).
	BurstFactor float64 `json:"burstFactor,omitempty"`
	MeanOn      float64 `json:"meanOn,omitempty"`
	MeanOff     float64 `json:"meanOff,omitempty"`

	// Alpha is the Pareto tail index (default 1.5).
	Alpha float64 `json:"alpha,omitempty"`
	// Sigma is the log-normal shape (default 1.5).
	Sigma float64 `json:"sigma,omitempty"`

	// Diurnal/flash profile (see workload.RateProfile). DiurnalPeriod
	// defaults to the trial window; FlashAt/FlashDur default to a spike
	// over the middle third of the window with factor 8.
	DiurnalPeriod float64 `json:"diurnalPeriod,omitempty"`
	DiurnalAmp    float64 `json:"diurnalAmp,omitempty"`
	FlashAt       float64 `json:"flashAt,omitempty"`
	FlashDur      float64 `json:"flashDur,omitempty"`
	FlashFactor   float64 `json:"flashFactor,omitempty"`

	// Path is the capture or flow-log file for the pcap/flowlog kinds.
	Path string `json:"path,omitempty"`
	// SHA256, when set, pins the file content; Load refuses a mismatch.
	// Pin fills it from the file.
	SHA256 string `json:"sha256,omitempty"`
	// ActiveTimeout/IdleTimeout are the flow-extraction cuts in seconds
	// (ingest defaults when zero).
	ActiveTimeout float64 `json:"activeTimeout,omitempty"`
	IdleTimeout   float64 `json:"idleTimeout,omitempty"`
	// FitRates makes BuildConfig use the ingested per-class empirical
	// rates (instead of sampled uniform rates) for the first
	// min(classes, NumFlows) flows.
	FitRates bool `json:"fitRates,omitempty"`
}

// TraceSpecForCLI builds the spec the -trace/-workload command-line
// flags describe: a capture path (replayed with rates fitted from it and
// pinned by SHA-256) or a named synthetic workload. Exactly one of the
// two may be set; neither means the Poisson default (nil spec).
func TraceSpecForCLI(tracePath, workloadKind string, alpha, sigma float64) (*TraceSourceSpec, error) {
	if tracePath != "" && workloadKind != "" {
		return nil, fmt.Errorf("experiment: -trace and -workload are mutually exclusive")
	}
	if tracePath != "" {
		kind := "flowlog"
		switch ext := strings.ToLower(filepath.Ext(tracePath)); ext {
		case ".pcap", ".cap":
			kind = "pcap"
		}
		s := &TraceSourceSpec{Kind: kind, Path: tracePath, FitRates: true}
		if err := s.Pin(); err != nil {
			return nil, err
		}
		return s, nil
	}
	if workloadKind == "" {
		return nil, nil
	}
	s := &TraceSourceSpec{Kind: workloadKind, Alpha: alpha, Sigma: sigma}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// IsFile reports whether the spec replays an ingested file.
func (s *TraceSourceSpec) IsFile() bool {
	return s != nil && (s.Kind == "pcap" || s.Kind == "flowlog")
}

// Validate checks the spec.
func (s *TraceSourceSpec) Validate() error {
	if s == nil {
		return nil
	}
	switch s.Kind {
	case "", "poisson", "periodic", "bursty":
	case "pareto":
		if s.Alpha != 0 && s.Alpha <= 1 {
			return fmt.Errorf("experiment: pareto source alpha %v ≤ 1 has no mean", s.Alpha)
		}
	case "lognormal":
		if s.Sigma < 0 {
			return fmt.Errorf("experiment: lognormal source sigma %v < 0", s.Sigma)
		}
	case "diurnal", "flash":
		if s.DiurnalAmp < 0 || s.DiurnalAmp > 1 {
			return fmt.Errorf("experiment: diurnal amplitude %v outside [0,1]", s.DiurnalAmp)
		}
	case "pcap", "flowlog":
		if s.Path == "" {
			return fmt.Errorf("experiment: %s source needs a path", s.Kind)
		}
		if s.FitRates && s.SHA256 == "" {
			return fmt.Errorf("experiment: fitRates needs the file pinned (sha256)")
		}
	default:
		return fmt.Errorf("experiment: unknown trace source kind %q", s.Kind)
	}
	return nil
}

// profile assembles the workload.RateProfile for the modulated kinds,
// applying the window-relative defaults.
func (s *TraceSourceSpec) profile(duration float64) workload.RateProfile {
	p := workload.RateProfile{
		DiurnalPeriod: s.DiurnalPeriod,
		DiurnalAmp:    s.DiurnalAmp,
		FlashAt:       s.FlashAt,
		FlashDur:      s.FlashDur,
		FlashFactor:   s.FlashFactor,
	}
	if s.Kind == "diurnal" && p.DiurnalAmp == 0 {
		p.DiurnalAmp = 0.6
	}
	if p.DiurnalAmp > 0 && p.DiurnalPeriod == 0 {
		p.DiurnalPeriod = duration
	}
	if s.Kind == "flash" && p.FlashDur == 0 {
		p.FlashAt, p.FlashDur = duration/3, duration/3
	}
	if p.FlashDur > 0 && p.FlashFactor == 0 {
		p.FlashFactor = 8
	}
	return p
}

// Source resolves the spec to a runnable TraceSource. File kinds load and
// ingest the capture here, once, and every trial replays a window of it.
func (s *TraceSourceSpec) Source() (TraceSource, error) {
	if s == nil {
		return PoissonSource, nil
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	switch s.Kind {
	case "", "poisson":
		return PoissonSource, nil
	case "periodic":
		return PeriodicSource, nil
	case "bursty":
		bf, on, off := s.BurstFactor, s.MeanOn, s.MeanOff
		if bf == 0 {
			bf, on, off = 4, 2, 6
		}
		return BurstySource(bf, on, off), nil
	case "pareto":
		alpha := s.Alpha
		if alpha == 0 {
			alpha = 1.5
		}
		return ParetoSource(alpha), nil
	case "lognormal":
		sigma := s.Sigma
		if sigma == 0 {
			sigma = 1.5
		}
		return LogNormalSource(sigma), nil
	case "diurnal", "flash":
		spec := *s
		return func(rates []float64, duration float64, rng *stats.RNG) (*workload.Trace, error) {
			return workload.GenerateModulated(
				workload.PoissonConfig{Rates: rates, Duration: duration},
				spec.profile(duration), rng)
		}, nil
	case "pcap", "flowlog":
		res, err := s.Load()
		if err != nil {
			return nil, err
		}
		return ReplaySource(res.Trace, res.Duration), nil
	}
	return nil, fmt.Errorf("experiment: unknown trace source kind %q", s.Kind)
}

// Load ingests the spec's file, verifying the SHA-256 pin when present.
func (s *TraceSourceSpec) Load() (*ingest.Result, error) {
	if !s.IsFile() {
		return nil, fmt.Errorf("experiment: %q is not a file source", s.Kind)
	}
	if s.SHA256 != "" {
		sum, err := HashFile(s.Path)
		if err != nil {
			return nil, err
		}
		if sum != s.SHA256 {
			return nil, fmt.Errorf("experiment: %s content hash %s does not match pinned %s", s.Path, sum, s.SHA256)
		}
	}
	return ingest.IngestFile(s.Path, ingest.IngestOptions{
		ActiveTimeout: s.ActiveTimeout,
		IdleTimeout:   s.IdleTimeout,
	})
}

// Pin fills SHA256 from the file's current content.
func (s *TraceSourceSpec) Pin() error {
	sum, err := HashFile(s.Path)
	if err != nil {
		return err
	}
	s.SHA256 = sum
	return nil
}

// HashFile returns the lowercase hex SHA-256 of the file at path.
func HashFile(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", fmt.Errorf("experiment: %w", err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", fmt.Errorf("experiment: hash %s: %w", path, err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// ParetoSource returns a heavy-tailed renewal source with tail index
// alpha, mean-rate-matched to the configured λ vector.
func ParetoSource(alpha float64) TraceSource {
	return func(rates []float64, duration float64, rng *stats.RNG) (*workload.Trace, error) {
		return workload.GeneratePareto(workload.ParetoConfig{Rates: rates, Duration: duration, Alpha: alpha}, rng)
	}
}

// LogNormalSource returns a log-normal renewal source with shape sigma,
// mean-rate-matched to the configured λ vector.
func LogNormalSource(sigma float64) TraceSource {
	return func(rates []float64, duration float64, rng *stats.RNG) (*workload.Trace, error) {
		return workload.GenerateLogNormal(workload.LogNormalConfig{Rates: rates, Duration: duration, Sigma: sigma}, rng)
	}
}

// ModulatedSource returns an inhomogeneous-Poisson source with the given
// deterministic rate profile.
func ModulatedSource(profile workload.RateProfile) TraceSource {
	return func(rates []float64, duration float64, rng *stats.RNG) (*workload.Trace, error) {
		return workload.GenerateModulated(workload.PoissonConfig{Rates: rates, Duration: duration}, profile, rng)
	}
}

// ReplaySource replays an ingested trace: each trial takes a window of
// the requested duration at an rng-chosen offset inside the trace's span
// (the whole trace, offset 0, when the span is shorter), time-shifted to
// start at 0. Arrivals of classes beyond the configuration's flow
// universe are dropped — the ingested universe can be wider than the
// experiment's. The windowing draw comes from the trial RNG, so replayed
// runs are as deterministic as generated ones.
func ReplaySource(tr *workload.Trace, span float64) TraceSource {
	arrivals := tr.Arrivals()
	return func(rates []float64, duration float64, rng *stats.RNG) (*workload.Trace, error) {
		offset := 0.0
		if span > duration {
			offset = rng.Float64() * (span - duration)
		}
		var out []workload.Arrival
		for _, a := range arrivals {
			if a.Time < offset || a.Time >= offset+duration {
				continue
			}
			if int(a.Flow) >= len(rates) {
				continue
			}
			out = append(out, workload.Arrival{Time: a.Time - offset, Flow: a.Flow})
		}
		return workload.NewTrace(out), nil
	}
}
