package experiment

import (
	"flowrecon/internal/core"
	"flowrecon/internal/detect"
	"flowrecon/internal/faults"
	"flowrecon/internal/stats"
	"flowrecon/internal/telemetry"
	"flowrecon/internal/trialrec"
)

// TrialRunner is the single-trial execution engine behind RunTrialsOpts,
// exported for callers that own their own scheduling — the flowrecond
// batched probe scheduler interleaves trials from many sessions on one
// worker pool, so it cannot hand whole runs to RunTrialsOpts. A runner
// is immutable after construction and safe for concurrent Run calls:
// every trial draws all of its randomness from the seed it is given, so
// a (runner, trial, seed) triple produces the same result on any
// goroutine in any order.
//
// Runs execute in the forensics-light "probing" mode: per-attacker probe
// flows, classified outcomes, loss masks and verdicts are collected
// (what a session streams back to its client) without the span-tree or
// belief-tracking cost of a full recording.
type TrialRunner struct {
	env *trialEnv
}

// RunnerOptions configures a TrialRunner. The zero value matches
// RunTrials: Poisson traffic, no telemetry, no faults, no detection.
type RunnerOptions struct {
	// Source generates each trial's traffic window (PoissonSource when
	// nil).
	Source TraceSource
	// Registry receives trial/probe counters; nil disables them.
	Registry *telemetry.Registry
	// Faults injects probe-level loss and jitter (see TrialOptions.Faults
	// for the determinism contract).
	Faults faults.Profile
	// Detect attaches a fresh streaming detector per (trial, attacker)
	// replica. Nil disables detection.
	Detect *detect.Config
	// KeepDetectors, with Detect set, retains each trial's merged
	// detectors in the TrialResult so the caller can fold them into an
	// aggregate defender view.
	KeepDetectors bool
}

// TrialResult is one trial's structured outcome.
type TrialResult struct {
	Trial int
	// Truth is whether the target flow actually occurred in the window.
	Truth bool
	// Attackers holds each attacker's probes, outcomes, loss mask and
	// verdict, index-aligned with the roster given to NewTrialRunner.
	Attackers []trialrec.AttackerTrial
	// Detectors are the per-attacker detector replicas (KeepDetectors
	// only), in roster order.
	Detectors []*detect.Detector
}

// NewTrialRunner builds a reusable trial executor for one configuration
// and attacker roster. The roster is shared across every Run call
// (attackers are stateless across trials), so build it once per model.
func NewTrialRunner(nc *NetworkConfig, attackers []core.Attacker, meas Measurement, opts RunnerOptions) *TrialRunner {
	source := opts.Source
	if source == nil {
		source = PoissonSource
	}
	env := &trialEnv{
		nc:        nc,
		attackers: attackers,
		names:     make([]string, len(attackers)),
		meas:      meas,
		source:    source,
		reg:       opts.Registry,
		tm:        newTrialMetrics(opts.Registry),
		faults:    opts.Faults,
		horizon:   float64(nc.Params.Steps()) * nc.Params.Delta,
		probing:   true,
		detect:    opts.Detect,
		detAgg:    opts.Detect != nil && opts.KeepDetectors,
	}
	for i, a := range attackers {
		env.names[i] = a.Name()
	}
	return &TrialRunner{env: env}
}

// Names returns the roster's attacker names in order.
func (r *TrialRunner) Names() []string { return r.env.names }

// Horizon returns the trial window length in seconds.
func (r *TrialRunner) Horizon() float64 { return r.env.horizon }

// Run executes one trial from its seed. Safe to call concurrently.
func (r *TrialRunner) Run(trial int, seed int64) (TrialResult, error) {
	out := r.env.runTrial(trial, stats.NewRNG(seed))
	if out.err != nil {
		return TrialResult{}, out.err
	}
	return TrialResult{
		Trial:     trial,
		Truth:     out.truth,
		Attackers: out.atts,
		Detectors: out.dets,
	}, nil
}

// TrialSeeds derives the per-trial seed vector RunTrialsOpts' parallel
// path would use for a run rooted at seed: trial t always runs on the
// t-th draw, whatever order trials execute in.
func TrialSeeds(seed int64, trials int) []int64 {
	rng := stats.NewRNG(seed)
	seeds := make([]int64, trials)
	for t := range seeds {
		seeds[t] = rng.Int63()
	}
	return seeds
}
