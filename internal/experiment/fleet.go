package experiment

// Fleet-scale reconnaissance scenario (EXPERIMENTS.md §16): the paper's
// single-switch timing attack lifted onto a generated datacenter fabric.
// The attacker sits behind one edge switch, yet infers the rule state of
// REMOTE edge switches it never talks to directly, because the reactive
// controller is shared: a probe to a remote host crosses both the
// attacker's edge and the victim's edge, and only rules missing at the
// remote edge cost a controller round trip.
//
// The construction mirrors §IV-B's covering-rule trick, split across
// switches. The policy carries two rules over four flows:
//
//	r_tgt  (high priority):  {f_target, f_probeB, f_probeD}
//	r_warm (low priority):   {f_warm,   f_probeB, f_probeD}
//
// The attacker first sends f_warm (a flow between two of its own local
// hosts), which caches r_warm at its home edge. From then on, a probe
// flow hits at the home edge unconditionally — so its RTT measures the
// REMOTE edge alone: if the target flow ran recently, the remote edge
// holds r_tgt (which covers the probe) and the probe hits end to end
// (≈0.2 ms across the fabric); otherwise the remote lookup misses and
// pays the controller setup (≈4 ms). The 1 ms threshold separates the
// two exactly as in the single-switch attack. As in the paper, a probe
// miss installs the covering rule remotely (pollution), which is why
// each trial rebuilds the fleet.
//
// Every trial derives its traffic, fleet, and fault seeds from
// (Seed, trial) alone, so a run is a pure function of its options — in
// particular, recordings are byte-identical at every shard and worker
// count, which is what the shard-determinism tests pin.

import (
	"fmt"
	"io"
	"math"

	"flowrecon/internal/controller"
	"flowrecon/internal/detect"
	"flowrecon/internal/faults"
	"flowrecon/internal/flows"
	"flowrecon/internal/netsim"
	"flowrecon/internal/rules"
	"flowrecon/internal/stats"
	"flowrecon/internal/telemetry"
	"flowrecon/internal/trialrec"
	"flowrecon/internal/workload"
)

// FleetAttackerName identifies the scenario's attacker in recordings.
const FleetAttackerName = "fleet-remote-timing"

// FleetOptions configures the fleet scenario. The zero value is not
// runnable; use DefaultFleetOptions as the base.
type FleetOptions struct {
	// Topo selects the fabric: "fattree", "leafspine", or "backbone"
	// (the 16-switch paper topology; too small for the remote-edge
	// scenario, accepted by BuildFleetTopology for the CLIs).
	Topo string
	// Switches is the fleet-size floor for generated fabrics; the
	// generator rounds up to the nearest valid shape.
	Switches int
	// Shards is the number of simulation shards (≤ 1 = serial run).
	// Results are byte-identical at every value.
	Shards int
	// Workers caps the drain goroutines (0 = GOMAXPROCS, clamped to
	// Shards).
	Workers int
	// Trials is the number of independent trials.
	Trials int
	// Seed is the root seed; every per-trial stream derives from it.
	Seed int64
	// Horizon is the background-traffic window per trial (seconds).
	Horizon float64
	// Rate is the target flow's Poisson rate (arrivals/second).
	Rate float64
	// Capacity is the per-switch flow-table capacity.
	Capacity int
	// StepSec is the table timestep; rule idle timeout is
	// TimeoutSteps·StepSec.
	StepSec float64
	// TimeoutSteps is the covering rules' idle timeout in steps.
	TimeoutSteps int
	// Faults, when enabled, injects per-packet loss/jitter/stall faults
	// into the fabric. Per-trial substreams derive from Faults.Seed and
	// the trial index, never from the shard layout.
	Faults faults.Profile
	// Detect attaches a fresh streaming detector to every trial's
	// controller path; flags accumulate into FleetOutcome.Flagged.
	Detect *detect.Config
	// Registry receives the netsim fleet instruments; nil disables them.
	Registry *telemetry.Registry
	// Recorder streams the forensic recording (trialrec JSONL). Nil
	// disables recording.
	Recorder *trialrec.Recorder
}

// DefaultFleetOptions returns a runnable small-fleet configuration: a
// k=4 fat-tree, paper-calibrated table parameters (0.5 s idle timeout),
// and a target flow whose duty cycle keeps truth near 50/50.
func DefaultFleetOptions() FleetOptions {
	return FleetOptions{
		Topo:         "fattree",
		Switches:     20,
		Shards:       1,
		Trials:       20,
		Seed:         1,
		Horizon:      4.0,
		Rate:         1.5,
		Capacity:     8,
		StepSec:      0.1,
		TimeoutSteps: 5,
	}
}

// FleetOutcome aggregates a fleet run.
type FleetOutcome struct {
	Result    AttackerResult
	Switches  int
	Shards    int
	Lookahead float64
	// Flagged counts detector verdicts across all trials (0 without
	// Detect).
	Flagged int
}

// WriteFleet prints a fleet run summary in the style of the other
// experiment reports.
func WriteFleet(w io.Writer, out FleetOutcome) error {
	r := out.Result
	look := fmt.Sprintf("%.0f µs", out.Lookahead*1e6)
	if math.IsInf(out.Lookahead, 1) {
		look = "∞ (single shard)"
	}
	if _, err := fmt.Fprintf(w, "fleet-scale reconnaissance (%d switches, %d shards, lookahead %s)\n",
		out.Switches, out.Shards, look); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-20s %9s %6s %6s %6s %6s\n", "attacker", "accuracy", "TP", "TN", "FP", "FN"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-20s %8.1f%% %6d %6d %6d %6d\n",
		r.Name, 100*r.Accuracy(), r.TruePos, r.TrueNeg, r.FalsePos, r.FalseNeg); err != nil {
		return err
	}
	if out.Flagged > 0 {
		if _, err := fmt.Fprintf(w, "defender flagged the probe stream %d time(s)\n", out.Flagged); err != nil {
			return err
		}
	}
	return nil
}

// BuildFleetTopology resolves a CLI topology selection. kind "backbone"
// ignores switches; the generated fabrics round the request up to the
// nearest valid shape.
func BuildFleetTopology(kind string, switches int) (netsim.Topology, error) {
	switch kind {
	case "", "backbone":
		return netsim.StanfordBackbone(), nil
	case "fattree":
		if switches < 1 {
			switches = 20
		}
		return netsim.FatTree(netsim.FatTreeArity(switches))
	case "leafspine":
		if switches < 3 {
			switches = 3
		}
		// Classic 2:1 leaf:spine split, at least one of each.
		leaves := (2*switches + 2) / 3
		spines := switches - leaves
		if spines < 1 {
			spines = 1
			leaves = switches - 1
		}
		return netsim.LeafSpine(leaves, spines)
	default:
		return netsim.Topology{}, fmt.Errorf("experiment: unknown topology %q (want backbone, fattree, or leafspine)", kind)
	}
}

// fleetLayout is the per-run static wiring: the topology, the flow
// universe, the policy, and the chosen host placements. It is a pure
// function of FleetOptions, shared by every trial.
type fleetLayout struct {
	topo                       netsim.Topology
	policy                     *rules.Set
	univ                       *flows.Universe
	homeEdge, remoteB, remoteD string
}

const (
	fleetFlowTarget = flows.ID(0)
	fleetFlowWarm   = flows.ID(1)
	fleetFlowProbeB = flows.ID(2)
	fleetFlowProbeD = flows.ID(3)
)

func newFleetLayout(o FleetOptions) (*fleetLayout, error) {
	topo, err := BuildFleetTopology(o.Topo, o.Switches)
	if err != nil {
		return nil, err
	}
	if len(topo.Edges) < 3 {
		return nil, fmt.Errorf("experiment: fleet scenario needs ≥3 edge switches (topology %q has %d); use fattree or leafspine", o.Topo, len(topo.Edges))
	}
	l := &fleetLayout{topo: topo}
	// Attacker home on the first edge; victims as far apart as the
	// fabric allows (cross-pod on a fat-tree).
	l.homeEdge = topo.Edges[0]
	l.remoteB = topo.Edges[len(topo.Edges)/2]
	l.remoteD = topo.Edges[len(topo.Edges)-1]

	base := flows.MakeIPv4(10, 8, 0, 0)
	l.univ = flows.NewUniverse()
	// IDs are assignment order — keep in sync with the fleetFlow consts.
	l.univ.Add("f_target", flows.FiveTuple{Src: base + 2, Dst: base + 4, Proto: flows.ProtoICMP})
	l.univ.Add("f_warm", flows.FiveTuple{Src: base + 0, Dst: base + 1, Proto: flows.ProtoICMP})
	l.univ.Add("f_probeB", flows.FiveTuple{Src: base + 0, Dst: base + 2, Proto: flows.ProtoICMP})
	l.univ.Add("f_probeD", flows.FiveTuple{Src: base + 0, Dst: base + 4, Proto: flows.ProtoICMP})

	l.policy, err = rules.NewSet([]rules.Rule{
		{Name: "r_tgt", Cover: flows.SetOf(fleetFlowTarget, fleetFlowProbeB, fleetFlowProbeD), Priority: 2, Timeout: o.TimeoutSteps},
		{Name: "r_warm", Cover: flows.SetOf(fleetFlowWarm, fleetFlowProbeB, fleetFlowProbeD), Priority: 1, Timeout: o.TimeoutSteps},
	})
	if err != nil {
		return nil, err
	}
	return l, nil
}

// build instantiates a fresh fleet for one trial (tables start empty;
// probe pollution does not leak across trials).
func (l *fleetLayout) build(o FleetOptions, fleetSeed int64, prof faults.Profile, det *detect.Detector) (*netsim.Fleet, error) {
	f, err := netsim.NewFleet(netsim.FleetConfig{
		Topo:     l.topo,
		Capacity: o.Capacity,
		StepSec:  o.StepSec,
		Ctrl:     netsim.NewControllerModel(l.policy, controller.Options{}),
		Universe: l.univ,
		Shards:   o.Shards,
		Workers:  o.Workers,
		Seed:     fleetSeed,
		Faults:   prof,
		Detector: det,
		Registry: o.Registry,
	})
	if err != nil {
		return nil, err
	}
	base := flows.MakeIPv4(10, 8, 0, 0)
	for _, h := range []struct {
		name string
		ip   flows.IPv4
		sw   string
	}{
		{"attacker", base + 0, l.homeEdge},
		{"warmpeer", base + 1, l.homeEdge},
		{"victimB", base + 2, l.remoteB},
		{"victimD", base + 4, l.remoteD},
	} {
		if err := f.AddHost(h.name, h.ip, h.sw); err != nil {
			return nil, err
		}
	}
	for _, e := range []string{l.homeEdge, l.remoteB, l.remoteD} {
		if err := f.SetReactive(e); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// RunFleetTrials executes the multi-switch reconnaissance experiment.
// Trial t's background traffic, fleet RNG, and fault substreams all
// derive from (opts.Seed, t), so the outcome — and the recording, when
// one is attached — is a pure function of opts, independent of Shards
// and Workers.
func RunFleetTrials(opts FleetOptions) (FleetOutcome, error) {
	var out FleetOutcome
	if opts.Trials < 1 {
		return out, fmt.Errorf("experiment: fleet run needs ≥1 trial")
	}
	layout, err := newFleetLayout(opts)
	if err != nil {
		return out, err
	}
	out.Switches = len(layout.topo.Switches)
	out.Result.Name = FleetAttackerName
	idle := float64(opts.TimeoutSteps) * opts.StepSec
	faulty := opts.Faults.Enabled()

	for trial := 0; trial < opts.Trials; trial++ {
		traceSeed := stats.Mix64(opts.Seed, int64(2*trial))
		fleetSeed := stats.Mix64(opts.Seed, int64(2*trial+1))
		prof := opts.Faults
		if faulty {
			prof.Seed = opts.Faults.SubSeed(int64(trial))
		}
		var det *detect.Detector
		if opts.Detect != nil {
			det = detect.New(*opts.Detect)
		}
		trace, err := workload.GeneratePoisson(workload.PoissonConfig{
			Rates: []float64{opts.Rate}, Duration: opts.Horizon,
		}, stats.NewRNG(traceSeed))
		if err != nil {
			return out, err
		}
		fleet, err := layout.build(opts, fleetSeed, prof, det)
		if err != nil {
			return out, err
		}
		out.Shards = fleet.Shards()
		out.Lookahead = fleet.Lookahead()
		for _, a := range trace.Arrivals() {
			if _, err := fleet.SendEcho("victimB", "victimD", a.Time); err != nil {
				fleet.Close()
				return out, err
			}
		}
		// Warm r_warm at the home edge so probe RTTs measure the remote
		// edge alone, then probe both victim edges back to back.
		warmAt := opts.Horizon + 0.002
		if _, err := fleet.SendEcho("attacker", "warmpeer", warmAt); err != nil {
			fleet.Close()
			return out, err
		}
		pr := netsim.NewFleetProber(fleet)
		probeAt := warmAt + 0.005
		resB, err := pr.Probe("attacker", "victimB", probeAt)
		if err != nil {
			fleet.Close()
			return out, err
		}
		resD, err := pr.Probe("attacker", "victimD", fleet.Now()+0.001)
		if err != nil {
			fleet.Close()
			return out, err
		}
		fleet.Close()

		// A lost probe reads as a miss (the attacker saw no fast reply).
		hitB := resB.Hit && !resB.Lost
		hitD := resD.Hit && !resD.Lost
		verdict := hitB && hitD
		truth := trace.OccurredWithin(fleetFlowTarget, probeAt, idle)
		score(&out.Result, verdict, truth)
		if det != nil {
			out.Flagged += len(det.Verdicts())
		}
		if opts.Recorder.Enabled() {
			att := trialrec.AttackerTrial{
				Name:     FleetAttackerName,
				Probes:   []flows.ID{fleetFlowProbeB, fleetFlowProbeD},
				Outcomes: []bool{hitB, hitD},
				Verdict:  verdict,
			}
			if faulty {
				att.Lost = []bool{resB.Lost, resD.Lost}
			}
			opts.Recorder.BeginTrial(trial, truth, trace.Arrivals())
			opts.Recorder.Attacker(att)
			if err := opts.Recorder.EndTrial(); err != nil {
				return out, err
			}
		}
	}
	return out, nil
}
