package experiment

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"flowrecon/internal/stats"
)

// WriteFig6 renders the Figure 6 reproduction as text tables.
func WriteFig6(w io.Writer, r *Fig6Result) error {
	names := sortedAttackerNames(r.Outcomes)
	fmt.Fprintf(w, "Figure 6a — average accuracy vs probability of absence of target flow\n")
	fmt.Fprintf(w, "(configs where optimal probe ≠ target; %d configs from %d sampled)\n", len(r.Outcomes), r.Attempted)
	fmt.Fprintf(w, "%-14s %8s", "absence", "configs")
	for _, n := range names {
		fmt.Fprintf(w, " %12s", n)
	}
	fmt.Fprintln(w)
	for _, b := range r.Buckets {
		if b.Configs == 0 {
			continue
		}
		fmt.Fprintf(w, "[%.1f, %.1f)    %8d", b.Lo, b.Hi, b.Configs)
		for _, n := range names {
			fmt.Fprintf(w, " %12.3f", b.Accuracy[n])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "population means: model=%.3f naive=%.3f (Δ=%+.3f)\n\n", r.MeanModel, r.MeanNaive, r.MeanModel-r.MeanNaive)

	fmt.Fprintf(w, "Figure 6b — CDF of additive improvement over naive attacker\n")
	quantiles := r.ImprovementQuantiles([]float64{0.05, 0.10, 0.15, 0.25, 0.35})
	ths := make([]float64, 0, len(quantiles))
	for th := range quantiles {
		ths = append(ths, th)
	}
	sort.Float64s(ths)
	for _, th := range ths {
		fmt.Fprintf(w, "  improvement ≥ %4.2f : %5.1f%% of configurations\n", th, 100*quantiles[th])
	}
	fmt.Fprintf(w, "  CDF points: %d\n\n", len(r.ImprovementCDF))
	return nil
}

// WriteFig7 renders the Figure 7 reproduction as text tables.
func WriteFig7(w io.Writer, r *Fig7Result) error {
	names := sortedAttackerNames(r.Outcomes)
	fmt.Fprintf(w, "Figure 7a — average accuracy vs number of rules covering target flow\n")
	fmt.Fprintf(w, "(model attacker restricted to probes ≠ target; %d configs from %d sampled)\n", len(r.Outcomes), r.Attempted)
	fmt.Fprintf(w, "%-10s %8s", "#covering", "configs")
	for _, n := range names {
		fmt.Fprintf(w, " %12s", n)
	}
	fmt.Fprintln(w)
	for _, b := range r.ByCover {
		fmt.Fprintf(w, "%-10d %8d", b.NumCovering, b.Configs)
		for _, n := range names {
			fmt.Fprintf(w, " %12.3f", b.Accuracy[n])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "Figure 7b — average accuracy vs probability of absence of target flow\n")
	fmt.Fprintf(w, "%-14s %8s", "absence", "configs")
	for _, n := range names {
		fmt.Fprintf(w, " %12s", n)
	}
	fmt.Fprintln(w)
	for _, b := range r.ByAbsence {
		if b.Configs == 0 {
			continue
		}
		fmt.Fprintf(w, "[%.1f, %.1f)    %8d", b.Lo, b.Hi, b.Configs)
		for _, n := range names {
			fmt.Fprintf(w, " %12.3f", b.Accuracy[n])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
	return nil
}

// WriteLatency renders the §VI-A latency table.
func WriteLatency(w io.Writer, r *LatencyReport) error {
	fmt.Fprintf(w, "Latency characterization (§VI-A; paper: hit 0.087±0.021 ms, miss 4.070±1.806 ms)\n")
	fmt.Fprintf(w, "%-28s %10s %10s %9s %9s %9s %8s\n", "measurement", "mean(ms)", "std(ms)", "p50(ms)", "p95(ms)", "p99(ms)", "n")
	row := func(name string, s stats.Summary) {
		fmt.Fprintf(w, "%-28s %10.4f %10.4f %9.4f %9.4f %9.4f %8d\n", name, s.Mean, s.Stddev, s.P50, s.P95, s.P99, s.N)
	}
	row("netsim hit RTT", r.SimHitMs)
	row("netsim miss RTT", r.SimMissMs)
	if r.OFHitMs.N > 0 || r.OFMissMs.N > 0 {
		row("openflow/TCP hit delay", r.OFHitMs)
		row("openflow/TCP miss delay", r.OFMissMs)
	}
	fmt.Fprintf(w, "threshold %.1f ms: sim misclassification %.2f%%, openflow %.2f%%\n\n",
		r.ThresholdMs, 100*r.SimMisclassified, 100*r.OFMisclassified)
	return nil
}

// WriteCSV renders per-configuration outcomes as CSV for plotting.
func WriteCSV(w io.Writer, outcomes []ConfigOutcome) error {
	names := sortedAttackerNames(outcomes)
	cols := append([]string{"p_absent", "num_covering", "target", "optimal"}, names...)
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for _, o := range outcomes {
		row := []string{
			fmt.Sprintf("%.6f", o.PAbsent),
			fmt.Sprintf("%d", o.NumCoveringTarget),
			fmt.Sprintf("%d", o.TargetFlow),
			fmt.Sprintf("%d", o.OptimalFlow),
		}
		for _, n := range names {
			row = append(row, fmt.Sprintf("%.4f", o.Accuracy[n]))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}
