package experiment

import (
	"fmt"

	"flowrecon/internal/core"
	"flowrecon/internal/stats"
	"flowrecon/internal/telemetry"
)

// Fig7Options scales the Figure 7 reproduction.
type Fig7Options struct {
	Params          Params
	Configs         int
	TrialsPerConfig int
	MaxAttempts     int
	Seed            int64
	// SaveDir, when non-empty, receives one JSON file per accepted
	// configuration (see SaveConfig) for exact re-runs.
	SaveDir string
	// Telemetry, when non-nil, receives the run's experiment metrics
	// cumulatively across all configurations (see Fig6Options.Telemetry).
	Telemetry *telemetry.Registry
	// Parallelism is the per-configuration trial-runner worker count
	// (see TrialOptions.Parallelism). Results are identical at every
	// level.
	Parallelism int
}

// DefaultFig7Options returns a laptop-scale version of the paper's run.
func DefaultFig7Options() Fig7Options {
	return Fig7Options{
		Params:          DefaultParams(),
		Configs:         100,
		TrialsPerConfig: 100,
		MaxAttempts:     2000,
		Seed:            2,
	}
}

// CoverBucket is one x-axis bin of Figure 7a: the number of rules
// covering the target flow.
type CoverBucket struct {
	NumCovering int
	Accuracy    map[string]float64
	Configs     int
}

// Fig7Result reproduces both panels of Figure 7: the restricted model
// attacker (barred from probing the target even when it is optimal)
// against the naive and random attackers.
type Fig7Result struct {
	// ByCover is Figure 7a.
	ByCover []CoverBucket
	// ByAbsence is Figure 7b.
	ByAbsence []AbsenceBucket
	// Outcomes are per-configuration accuracies.
	Outcomes  []ConfigOutcome
	Attempted int
}

// RunFig7 reproduces Figure 7. Configurations are filtered only by the
// detector-viability of the optimal probe (the restriction of §VI-B); the
// model attacker must probe the best flow other than the target.
func RunFig7(opts Fig7Options) (*Fig7Result, error) {
	rng := stats.NewRNG(opts.Seed)
	meas := DefaultMeasurement()
	res := &Fig7Result{}

	for res.Attempted = 0; res.Attempted < opts.MaxAttempts && len(res.Outcomes) < opts.Configs; res.Attempted++ {
		// Cycle the target-absence strata (see AbsenceStrata).
		nc, err := GenerateConfig(opts.Params.WithStratum(res.Attempted), rng.Fork())
		if err != nil {
			continue
		}
		if !nc.DetectorViable() {
			continue
		}
		restricted, err := core.NewModelAttacker(nc.Selector, nc.Selector.FlowsExcept(nc.Target), 1, core.DecideByPosterior)
		if err != nil {
			return nil, err
		}
		attackers := []core.Attacker{
			&core.NaiveAttacker{TargetFlow: nc.Target},
			restricted,
			&core.RandomAttacker{PPresent: 1 - nc.PAbsent()},
		}
		results, _, err := RunTrialsOpts(nc, attackers, opts.TrialsPerConfig, meas, rng.Fork(), TrialOptions{
			Registry: opts.Telemetry, Parallelism: opts.Parallelism,
		})
		if err != nil {
			return nil, err
		}
		out := ConfigOutcome{
			PAbsent:           nc.PAbsent(),
			NumCoveringTarget: nc.NumCoveringTarget,
			OptimalFlow:       int(nc.Optimal.Flow),
			TargetFlow:        int(nc.Target),
			Accuracy:          map[string]float64{},
		}
		for _, r := range results {
			out.Accuracy[r.Name] = r.Accuracy()
		}
		if err := saveAccepted(opts.SaveDir, "fig7", len(res.Outcomes), nc); err != nil {
			return nil, err
		}
		res.Outcomes = append(res.Outcomes, out)
	}
	if len(res.Outcomes) == 0 {
		return nil, fmt.Errorf("experiment: no qualifying configurations in %d attempts", res.Attempted)
	}
	res.ByCover = bucketByCover(res.Outcomes)
	res.ByAbsence = bucketByAbsence(res.Outcomes, 5)
	return res, nil
}

func bucketByCover(outcomes []ConfigOutcome) []CoverBucket {
	maxCover := 0
	for _, o := range outcomes {
		if o.NumCoveringTarget > maxCover {
			maxCover = o.NumCoveringTarget
		}
	}
	buckets := make([]CoverBucket, maxCover+1)
	counts := make([]map[string]int, maxCover+1)
	for i := range buckets {
		buckets[i] = CoverBucket{NumCovering: i, Accuracy: map[string]float64{}}
		counts[i] = map[string]int{}
	}
	for _, o := range outcomes {
		b := &buckets[o.NumCoveringTarget]
		b.Configs++
		for name, acc := range o.Accuracy {
			b.Accuracy[name] += acc
			counts[o.NumCoveringTarget][name]++
		}
	}
	var out []CoverBucket
	for i := range buckets {
		for name, n := range counts[i] {
			if n > 0 {
				buckets[i].Accuracy[name] /= float64(n)
			}
		}
		if buckets[i].Configs > 0 {
			out = append(out, buckets[i])
		}
	}
	return out
}
