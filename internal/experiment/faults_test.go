package experiment

import (
	"bytes"
	"encoding/json"
	"io"
	"testing"

	"flowrecon/internal/faults"
	"flowrecon/internal/stats"
	"flowrecon/internal/telemetry"
	"flowrecon/internal/trialrec"
)

// chaosSpec is smallSpec with a lossy, jittery channel: every probe has
// a 25% chance of vanishing and delivered probes see ~1ms of added
// delay jitter. Loss is set high so a handful of trials is all but
// guaranteed to exercise the lost-probe paths.
func chaosSpec() RecordingSpec {
	spec := smallSpec()
	spec.Faults = &faults.Profile{Seed: 42, LossProb: 0.25, JitterMeanMs: 1}
	return spec
}

// recordWith is RecordTo with explicit TrialOptions, for tests that need
// to vary the options against an identical header.
func recordWith(t *testing.T, w io.Writer, spec RecordingSpec, opts TrialOptions) []AttackerResult {
	t.Helper()
	nc, err := spec.BuildConfig()
	if err != nil {
		t.Fatal(err)
	}
	attackers, err := StandardAttackers(nc, spec.Probes)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(attackers))
	for i, a := range attackers {
		names[i] = a.Name()
	}
	specJSON, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := trialrec.NewRecorder(struct{ io.Writer }{w}, trialrec.Header{
		Spec: specJSON, Seed: spec.TrialSeed, Trials: spec.Trials, Attackers: names,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts.Recorder = rec
	results, _, err := RunTrialsOpts(nc, attackers, spec.Trials, spec.Measurement, stats.NewRNG(spec.TrialSeed), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	return results
}

// TestFaultsDisabledIsByteIdentical: a fault profile with a seed but no
// active knob must leave the run untouched — byte-for-byte the same
// recording as no profile at all. This is the guarantee that keeps
// pre-fault recordings replayable: disabled means free, not "free-ish".
func TestFaultsDisabledIsByteIdentical(t *testing.T) {
	spec := smallSpec()
	var clean, disabled bytes.Buffer
	recordWith(t, &clean, spec, TrialOptions{})
	recordWith(t, &disabled, spec, TrialOptions{Faults: faults.Profile{Seed: 99}})
	if !bytes.Equal(clean.Bytes(), disabled.Bytes()) {
		t.Fatal("zero-knob fault profile perturbed the recording bytes")
	}
}

// TestChaosRecordingDeterminism: the chaos acceptance check — a lossy,
// jittery run completes every trial, records visibly lost probes, and is
// byte-reproducible: recording it twice gives identical bytes, and
// Replay from the file alone diverges nowhere.
func TestChaosRecordingDeterminism(t *testing.T) {
	spec := chaosSpec()
	var a, b bytes.Buffer
	resA, _, err := RecordTo(&a, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RecordTo(&b, spec, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("chaos run is not byte-reproducible from its seeds")
	}

	recA, err := trialrec.Read(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recA.Trials) != spec.Trials {
		t.Fatalf("chaos run completed %d/%d trials", len(recA.Trials), spec.Trials)
	}

	// The loss must be visible: Lost masks in the recording, and for the
	// model attacker a Lost belief step that leaves the posterior where
	// it was.
	lostProbes := 0
	for _, tr := range recA.Trials {
		for _, at := range tr.Attackers {
			for p, l := range at.Lost {
				if !l {
					continue
				}
				lostProbes++
				if len(at.Belief) > p {
					step := at.Belief[p]
					if !step.Lost {
						t.Fatalf("trial %d %s probe %d lost but belief step not marked: %+v", tr.Trial, at.Name, p, step)
					}
					if step.Prior != step.Posterior {
						t.Fatalf("lost probe moved the posterior: %+v", step)
					}
				}
			}
		}
	}
	if lostProbes == 0 {
		t.Fatal("25% loss produced no lost probes — injection not reaching the trial loop")
	}

	// Replay from the recording alone: the spec carries the fault
	// profile, so the chaos reproduces fault for fault.
	fresh, resR, err := Replay(recA)
	if err != nil {
		t.Fatal(err)
	}
	if ds := trialrec.Diff(recA, fresh); len(ds) != 0 {
		t.Fatalf("chaos replay diverged: %v", ds[0])
	}
	for i := range resA {
		if resA[i] != resR[i] {
			t.Fatalf("chaos replay confusion matrix differs: %+v vs %+v", resA[i], resR[i])
		}
	}
}

// TestChaosParallelMatchesSerial: fault streams derive from the trial
// index, not the execution schedule, so a parallel chaos run scores
// identically to the serial one.
func TestChaosParallelMatchesSerial(t *testing.T) {
	spec := chaosSpec()
	run := func(parallelism int) []AttackerResult {
		nc, err := spec.BuildConfig()
		if err != nil {
			t.Fatal(err)
		}
		attackers, err := StandardAttackers(nc, spec.Probes)
		if err != nil {
			t.Fatal(err)
		}
		res, _, err := RunTrialsOpts(nc, attackers, spec.Trials, spec.Measurement, stats.NewRNG(spec.TrialSeed), TrialOptions{
			Faults:      *spec.Faults,
			Parallelism: parallelism,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial, par := run(1), run(4)
	for i := range serial {
		if serial[i] != par[i] {
			t.Fatalf("parallel chaos diverged from serial: %+v vs %+v", serial[i], par[i])
		}
	}
}

// TestChaosTelemetry: a chaos run surfaces its faults in the registry —
// lost probes in the experiment series and injections in the faults
// series.
func TestChaosTelemetry(t *testing.T) {
	spec := chaosSpec()
	reg := telemetry.NewRegistry(0)
	var buf bytes.Buffer
	if _, _, err := RecordTo(&buf, spec, reg); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Counters[`experiment_probes_total{result="lost"}`] == 0 {
		t.Fatal("no lost probes in experiment telemetry")
	}
	if snap.Counters[`faults_loss_total{layer="experiment"}`] == 0 {
		t.Fatal("no loss recorded in faults telemetry")
	}
}

// TestChaosSpecRoundTrip: the fault profile travels in the recording
// header and comes back out of SpecFromRecording intact.
func TestChaosSpecRoundTrip(t *testing.T) {
	spec := chaosSpec()
	var buf bytes.Buffer
	if _, _, err := RecordTo(&buf, spec, nil); err != nil {
		t.Fatal(err)
	}
	rec, err := trialrec.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := SpecFromRecording(rec)
	if err != nil {
		t.Fatal(err)
	}
	if got.Faults == nil || *got.Faults != *spec.Faults {
		t.Fatalf("fault profile did not round-trip: %+v", got.Faults)
	}
}
