package experiment

import (
	"fmt"
	"sync"
	"sync/atomic"

	"flowrecon/internal/core"
	"flowrecon/internal/detect"
	"flowrecon/internal/faults"
	"flowrecon/internal/stats"
	"flowrecon/internal/telemetry"
	"flowrecon/internal/trialrec"
	"flowrecon/internal/workload"
)

// TrialOptions configures the fully-observable trial loop. The zero value
// reproduces RunTrials exactly: Poisson traffic, no telemetry, no
// recording, no spans, serial execution.
type TrialOptions struct {
	// Source generates each trial's traffic window (PoissonSource when
	// nil).
	Source TraceSource
	// Registry receives the experiment metrics; nil disables them.
	Registry *telemetry.Registry
	// PerTrial, with a Registry, returns a cumulative registry snapshot
	// per trial. Snapshots are order-sensitive, so PerTrial forces serial
	// execution regardless of Parallelism.
	PerTrial bool
	// Recorder streams the forensic trial recording (traffic window,
	// per-attacker probes/outcomes/verdicts/belief steps, spans). Nil
	// disables recording at zero per-probe cost.
	Recorder *trialrec.Recorder
	// Spans collects the causal span tree of each trial. When nil and a
	// Recorder is set, an internal deterministic recorder is used so
	// recordings always carry spans and stay byte-reproducible. When both
	// are set, spans are drained into the recording each trial rather
	// than accumulating here.
	Spans *telemetry.SpanRecorder
	// Faults injects probe-level faults into the trial loop: each probe
	// is independently lost with probability LossProb (it never reaches
	// the table — no install side effect, no observation) and a delivered
	// probe's observed delay is inflated by exponential jitter with mean
	// JitterMeanMs (which can push a hit past the classifier threshold).
	// Transport-level knobs (resets, stalls, slowdown) have no meaning at
	// this abstraction and are ignored. All fault randomness comes from
	// streams derived from Faults.Seed and the trial index — never from
	// the trial RNG — so the zero profile leaves every draw, verdict and
	// recording byte-identical to a fault-free run, and a faulty run is
	// reproducible from (TrialSeed, Faults) alone at any parallelism.
	Faults faults.Profile
	// Events receives one wide event per probe decision, per trial
	// verdict, and per injected probe fault. Workers buffer their trial's
	// events locally and the collector appends them in trial order, so
	// (with the log's wall clock disabled) the event stream is
	// byte-identical at every parallelism level. Nil disables events at
	// zero per-probe cost.
	Events *telemetry.EventLog
	// Detect attaches a fresh streaming anomaly detector to the
	// controller path of every (trial, attacker) table replica: it
	// observes each replay lookup (the benign background) and each
	// delivered probe, and its flag verdicts become "detect.flag" wide
	// events buffered with the trial's other events — so verdict streams
	// ride the same in-order assembly and stay byte-identical at every
	// parallelism level. Nil disables detection entirely.
	Detect *detect.Config
	// DetectAggregate, with Detect set, receives every trial detector
	// merged in strict (trial, attacker) order during assembly — the
	// defender's whole-run view served at /debug/detect. Nil skips the
	// merge (and the per-trial detector retention it requires).
	DetectAggregate *detect.Detector
	// Parallelism is the number of worker goroutines running trials
	// concurrently; values ≤ 1 run serially. Every trial draws all of its
	// randomness (traffic, probe noise, random verdicts) from a per-trial
	// RNG forked from the root rng in trial order, and results and
	// recordings are assembled in trial order, so every parallelism level
	// produces identical AttackerResults and byte-identical recordings.
	Parallelism int
}

// trialEnv is the per-run invariant state shared by every trial.
type trialEnv struct {
	nc        *NetworkConfig
	attackers []core.Attacker
	names     []string
	meas      Measurement
	source    TraceSource
	reg       *telemetry.Registry
	tm        trialMetrics
	faults    faults.Profile
	horizon   float64
	observing bool // collect spans (and belief/probe forensics)
	recording bool // also keep arrivals + attacker trials for the recorder
	probing   bool // keep per-attacker probes/outcomes without span/belief cost
	eventing  bool // buffer wide events per trial for in-order assembly
	noWall    bool // zero wall-clock in trial spans (deterministic output)
	detect    *detect.Config
	detAgg    bool // retain per-trial detectors for the aggregate merge
}

// trialOut is everything one trial produces, in a form that can be
// assembled into results/recordings strictly in trial order regardless of
// completion order.
type trialOut struct {
	truth    bool
	verdicts []bool
	arrivals []workload.Arrival       // recording only
	atts     []trialrec.AttackerTrial // recording only
	spans    []telemetry.Span         // observing only; IDs/traces local to the trial
	events   []telemetry.WideEvent    // eventing only; appended in trial order
	dets     []*detect.Detector       // detAgg only; merged in trial order
	err      error
}

// runTrial executes one complete trial: generate the traffic window,
// replay it per attacker, probe, and decide. Every random draw — the
// traffic window, probe classification noise, random verdicts — comes
// from rng (the trial's own stream), and fault draws come from a stream
// derived from (Faults.Seed, trial index) alone, so trials are
// independent, safe to run concurrently, and identical at every
// parallelism level.
func (env *trialEnv) runTrial(trial int, rng *stats.RNG) trialOut {
	var out trialOut
	flt := env.faults.Stream(int64(trial))
	flt.SetTelemetry(env.reg, "experiment")
	trace, err := env.source(env.nc.Rates, env.horizon, rng)
	if err != nil {
		out.err = err
		return out
	}
	out.truth = trace.OccurredWithin(env.nc.Target, env.horizon, env.horizon)
	if out.truth {
		env.tm.truthTrue.Inc()
	} else {
		env.tm.truthFalse.Inc()
	}

	var spans *telemetry.SpanRecorder
	var traceID int64
	var trialSpan telemetry.SpanID
	if env.observing {
		spans = telemetry.NewSpanRecorder(0)
		if env.noWall {
			spans.SetWallClock(nil)
		}
		traceID = spans.NewTrace()
		trialSpan = spans.Start(traceID, 0, "trial", "experiment", 0)
		if out.truth {
			spans.Annotate(trialSpan, int(env.nc.Target), -1, "truth=present")
		} else {
			spans.Annotate(trialSpan, int(env.nc.Target), -1, "truth=absent")
		}
	}
	if env.recording {
		out.arrivals = trace.Arrivals()
		out.atts = make([]trialrec.AttackerTrial, 0, len(env.attackers))
	}

	out.verdicts = make([]bool, len(env.attackers))
	if env.detAgg {
		out.dets = make([]*detect.Detector, 0, len(env.attackers))
	}
	for i, a := range env.attackers {
		var obs *probeObserver
		var attSpan telemetry.SpanID
		var attCtx telemetry.SpanContext
		if env.observing {
			attSpan, attCtx = spans.StartCtx(spans.Context(traceID, trialSpan), "attacker", env.names[i], 0)
		}
		var det *detect.Detector
		if env.detect != nil {
			det = detect.New(*env.detect)
			if env.eventing {
				name := env.names[i]
				det.OnFlag(func(v detect.Verdict) {
					ev := telemetry.NewWideEvent("detect.flag")
					ev.Node = "detect"
					ev.T = v.T
					ev.Trial = trial
					ev.Attacker = name
					ev.Flow = v.Source
					ev.Outcome = v.Reason
					ev.Detail = fmt.Sprintf("score=%.2f obs=%d", v.Score, v.Obs)
					out.events = append(out.events, ev)
				})
			}
		}
		var pace core.Pacing
		if p, ok := a.(core.Paced); ok {
			pace = p.ProbePacing()
		}
		if env.observing || env.eventing || env.probing {
			obs = &probeObserver{spans: spans, ctx: attCtx, trial: trial, name: env.names[i]}
			if env.eventing {
				obs.events = &out.events
			}
			if env.observing {
				if bp, ok := a.(core.BeliefProvider); ok {
					obs.tracker = bp.Selector().NewBeliefTracker()
				}
			}
		}
		replaySpan := spans.Start(traceID, attSpan, "replay", "experiment", 0)
		tbl, err := replayTrace(env.nc, trace, env.reg, det)
		spans.End(replaySpan, env.horizon)
		if err != nil {
			out.err = err
			return out
		}
		var outcomes, lost []bool
		if seq, ok := a.(SequentialAttacker); ok {
			outcomes, lost = probeSequential(env.nc, tbl, seq, env.horizon, env.meas, rng, flt, &env.tm, obs, det, pace)
		} else {
			outcomes, lost = probeTable(env.nc, tbl, a.Probes(), env.horizon, env.meas, rng, flt, &env.tm, obs, det, pace)
		}
		var verdict bool
		if lt, ok := a.(core.LossTolerant); ok && anyLost(lost) {
			verdict = lt.DecideWithLoss(outcomes, lost, rng)
		} else {
			// Lost probes fall back to their miss classification for
			// attackers that cannot represent "no observation".
			verdict = a.Decide(outcomes, rng)
		}
		out.verdicts[i] = verdict
		if env.detAgg {
			out.dets = append(out.dets, det)
		}
		if env.eventing {
			ev := telemetry.NewWideEvent("trial.verdict")
			ev.Node = "experiment"
			ev.T = env.horizon
			ev.Trial = trial
			ev.Attacker = env.names[i]
			ev.Trace = traceID
			ev.Verdict = presenceStr(verdict)
			ev.Truth = presenceStr(out.truth)
			if verdict == out.truth {
				ev.Outcome = "correct"
			} else {
				ev.Outcome = "wrong"
			}
			out.events = append(out.events, ev)
		}
		if env.observing {
			decSpan := spans.Start(traceID, attSpan, "decision", env.names[i], env.horizon)
			spans.Annotate(decSpan, -1, -1, decisionDetail(verdict, out.truth))
			spans.End(decSpan, env.horizon)
			spans.End(attSpan, env.horizon)
			if env.recording {
				out.atts = append(out.atts, trialrec.AttackerTrial{
					Name:     env.names[i],
					Probes:   obs.probes,
					Outcomes: outcomes,
					Lost:     lost,
					Verdict:  verdict,
					Belief:   obs.belief,
				})
			}
		} else if env.probing {
			// The forensics-light path keeps probe/outcome streams (what a
			// service session streams to its client) without span trees or
			// belief tracking.
			out.atts = append(out.atts, trialrec.AttackerTrial{
				Name:     env.names[i],
				Probes:   obs.probes,
				Outcomes: outcomes,
				Lost:     lost,
				Verdict:  verdict,
			})
		}
	}
	env.tm.trials.Inc()
	if env.observing {
		spans.End(trialSpan, env.horizon)
		out.spans = spans.Drain()
	}
	return out
}

// RunTrialsOpts is the trial loop with every observability layer
// optional: telemetry instruments, per-trial snapshots, causal spans, the
// deterministic trial recording, and a parallel scheduler. The probing
// and scoring sequence — and therefore every RNG draw — is identical
// across all option combinations: trial t always runs on the t-th fork of
// rng, whether trials execute serially or on a worker pool, and whether
// or not observers are attached. That is what makes recordings
// replayable and parallel runs byte-identical to serial ones.
func RunTrialsOpts(nc *NetworkConfig, attackers []core.Attacker, trials int, meas Measurement, rng *stats.RNG, opts TrialOptions) ([]AttackerResult, []TrialRecord, error) {
	source := opts.Source
	if source == nil {
		source = PoissonSource
	}
	reg := opts.Registry
	rec := opts.Recorder
	spansOut := opts.Spans
	if spansOut == nil && rec.Enabled() {
		spansOut = telemetry.NewSpanRecorder(0)
		spansOut.SetWallClock(nil) // recordings must be pure functions of the seeds
	}

	env := &trialEnv{
		nc:        nc,
		attackers: attackers,
		names:     make([]string, len(attackers)),
		meas:      meas,
		source:    source,
		reg:       reg,
		tm:        newTrialMetrics(reg),
		faults:    opts.Faults,
		horizon:   float64(nc.Params.Steps()) * nc.Params.Delta,
		observing: rec.Enabled() || spansOut != nil,
		recording: rec.Enabled(),
		eventing:  opts.Events != nil,
		noWall:    opts.Spans == nil,
		detect:    opts.Detect,
		detAgg:    opts.Detect != nil && opts.DetectAggregate != nil,
	}
	verdicts := make([][4]*telemetry.Counter, len(attackers))
	results := make([]AttackerResult, len(attackers))
	for i, a := range attackers {
		env.names[i] = a.Name()
		results[i].Name = a.Name()
		verdicts[i] = verdictCounters(reg, a.Name())
	}

	// count feeds the confusion-matrix counters the moment a trial
	// finishes. The counters are atomic and commutative, so workers may
	// call this out of trial order — it is what keeps the /debug/live
	// accuracy view current during a parallel run instead of jumping
	// from zero to final at the end.
	count := func(out trialOut) {
		if out.err != nil {
			return
		}
		for i := range attackers {
			countVerdict(verdicts[i], out.verdicts[i], out.truth)
		}
	}

	// assemble folds trial t's output into the aggregate results and the
	// recording. It must be called in trial order.
	assemble := func(t int, out trialOut) error {
		if out.err != nil {
			return out.err
		}
		for i := range attackers {
			score(&results[i], out.verdicts[i], out.truth)
		}
		// In-order batch append keeps the event stream byte-identical at
		// every parallelism level (safe on a nil log).
		opts.Events.Append(out.events)
		// The aggregate defender view folds in strict (trial, attacker)
		// order so the merged state is a pure function of the seeds.
		for _, d := range out.dets {
			opts.DetectAggregate.Merge(d)
		}
		if env.observing {
			spansOut.Import(out.spans)
			if rec.Enabled() {
				rec.BeginTrial(t, out.truth, out.arrivals)
				for _, at := range out.atts {
					rec.Attacker(at)
				}
				rec.Spans(spansOut.Drain())
				if err := rec.EndTrial(); err != nil {
					return err
				}
			}
		}
		return nil
	}

	workers := opts.Parallelism
	if workers > trials {
		workers = trials
	}
	if opts.PerTrial && reg != nil {
		workers = 1 // cumulative snapshots are order-sensitive
	}
	if workers <= 1 {
		var records []TrialRecord
		for t := 0; t < trials; t++ {
			out := env.runTrial(t, rng.Fork())
			count(out)
			if err := assemble(t, out); err != nil {
				return nil, nil, err
			}
			if opts.PerTrial && reg != nil {
				records = append(records, TrialRecord{Trial: t, Truth: out.truth, Telemetry: reg.Snapshot()})
			}
		}
		return results, records, nil
	}

	// Parallel path: derive the per-trial seeds up front with exactly the
	// draw sequence the serial loop's rng.Fork() calls would consume, fan
	// the trials over the pool, then assemble in trial order.
	seeds := make([]int64, trials)
	for t := range seeds {
		seeds[t] = rng.Int63()
	}
	outs := make([]trialOut, trials)
	busy := reg.Gauge("experiment_trial_workers_busy")
	reg.Gauge("experiment_trial_workers").Set(int64(workers))

	// Assembly streams behind the workers instead of waiting for the
	// whole run: a frontier walks forward over the completed-trial mask,
	// folding each trial in exact trial order the moment it and all its
	// predecessors are done. The event log and recording therefore fill
	// DURING a parallel run (what /debug/events and -events-out observe)
	// while staying byte-identical to the serial stream, and each
	// assembled trial's buffers are released instead of held to the end.
	var (
		asmMu    sync.Mutex
		done     = make([]bool, trials)
		frontier int
		asmErr   error
	)
	markDone := func(t int) {
		asmMu.Lock()
		defer asmMu.Unlock()
		done[t] = true
		for frontier < trials && done[frontier] {
			if asmErr == nil {
				asmErr = assemble(frontier, outs[frontier])
			}
			outs[frontier] = trialOut{}
			frontier++
		}
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				t := int(next.Add(1)) - 1
				if t >= trials {
					return
				}
				busy.Add(1)
				outs[t] = env.runTrial(t, stats.NewRNG(seeds[t]))
				count(outs[t])
				busy.Add(-1)
				markDone(t)
			}
		}()
	}
	wg.Wait()
	if asmErr != nil {
		return nil, nil, asmErr
	}
	return results, nil, nil
}

// anyLost reports whether the loss mask marks any probe lost (nil — the
// fault-free case — never does).
func anyLost(lost []bool) bool {
	for _, l := range lost {
		if l {
			return true
		}
	}
	return false
}

func decisionDetail(verdict, truth bool) string {
	v := presenceStr(verdict)
	if verdict == truth {
		return "verdict=" + v + " correct"
	}
	return "verdict=" + v + " wrong"
}

func presenceStr(present bool) string {
	if present {
		return "present"
	}
	return "absent"
}
