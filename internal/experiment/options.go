package experiment

import (
	"flowrecon/internal/core"
	"flowrecon/internal/stats"
	"flowrecon/internal/telemetry"
	"flowrecon/internal/trialrec"
)

// TrialOptions configures the fully-observable trial loop. The zero value
// reproduces RunTrials exactly: Poisson traffic, no telemetry, no
// recording, no spans.
type TrialOptions struct {
	// Source generates each trial's traffic window (PoissonSource when
	// nil).
	Source TraceSource
	// Registry receives the experiment metrics; nil disables them.
	Registry *telemetry.Registry
	// PerTrial, with a Registry, returns a cumulative registry snapshot
	// per trial.
	PerTrial bool
	// Recorder streams the forensic trial recording (traffic window,
	// per-attacker probes/outcomes/verdicts/belief steps, spans). Nil
	// disables recording at zero per-probe cost.
	Recorder *trialrec.Recorder
	// Spans collects the causal span tree of each trial. When nil and a
	// Recorder is set, an internal recorder is used so recordings always
	// carry spans. When both are set, spans are drained into the
	// recording each trial rather than accumulating here.
	Spans *telemetry.SpanRecorder
}

// RunTrialsOpts is the trial loop with every observability layer
// optional: telemetry instruments, per-trial snapshots, causal spans, and
// the deterministic trial recording. The probing and scoring sequence —
// and therefore every RNG draw — is identical across all option
// combinations, which is what makes recordings replayable: re-running
// the same seeds with or without observers yields the same outcomes.
func RunTrialsOpts(nc *NetworkConfig, attackers []core.Attacker, trials int, meas Measurement, rng *stats.RNG, opts TrialOptions) ([]AttackerResult, []TrialRecord, error) {
	source := opts.Source
	if source == nil {
		source = PoissonSource
	}
	reg := opts.Registry
	rec := opts.Recorder
	spans := opts.Spans
	if spans == nil && rec.Enabled() {
		spans = telemetry.NewSpanRecorder(0)
	}
	observing := rec.Enabled() || spans != nil

	tm := newTrialMetrics(reg)
	verdicts := make([][4]*telemetry.Counter, len(attackers))
	results := make([]AttackerResult, len(attackers))
	for i, a := range attackers {
		results[i].Name = a.Name()
		verdicts[i] = verdictCounters(reg, a.Name())
	}
	var records []TrialRecord
	horizon := float64(nc.Params.Steps()) * nc.Params.Delta
	for t := 0; t < trials; t++ {
		trace, err := source(nc.Rates, horizon, rng.Fork())
		if err != nil {
			return nil, nil, err
		}
		truth := trace.OccurredWithin(nc.Target, horizon, horizon)
		if truth {
			tm.truthTrue.Inc()
		} else {
			tm.truthFalse.Inc()
		}
		var traceID int64
		var trialSpan telemetry.SpanID
		if observing {
			traceID = spans.NewTrace()
			trialSpan = spans.Start(traceID, 0, "trial", "experiment", 0)
			if truth {
				spans.Annotate(trialSpan, int(nc.Target), -1, "truth=present")
			} else {
				spans.Annotate(trialSpan, int(nc.Target), -1, "truth=absent")
			}
			if rec.Enabled() {
				rec.BeginTrial(t, truth, trace.Arrivals())
			}
		}
		for i, a := range attackers {
			var obs *probeObserver
			var attSpan telemetry.SpanID
			if observing {
				attSpan = spans.Start(traceID, trialSpan, "attacker", results[i].Name, 0)
				obs = &probeObserver{spans: spans, trace: traceID, parent: attSpan}
				if bp, ok := a.(core.BeliefProvider); ok {
					obs.tracker = bp.Selector().NewBeliefTracker()
				}
			}
			replaySpan := spans.Start(traceID, attSpan, "replay", "experiment", 0)
			tbl, err := replayTrace(nc, trace, reg)
			spans.End(replaySpan, horizon)
			if err != nil {
				return nil, nil, err
			}
			var outcomes []bool
			if seq, ok := a.(SequentialAttacker); ok {
				outcomes = probeSequential(nc, tbl, seq, horizon, meas, rng, &tm, obs)
			} else {
				outcomes = probeTable(nc, tbl, a.Probes(), horizon, meas, rng, &tm, obs)
			}
			verdict := a.Decide(outcomes, rng)
			score(&results[i], verdict, truth)
			countVerdict(verdicts[i], verdict, truth)
			if observing {
				decSpan := spans.Start(traceID, attSpan, "decision", results[i].Name, horizon)
				spans.Annotate(decSpan, -1, -1, decisionDetail(verdict, truth))
				spans.End(decSpan, horizon)
				spans.End(attSpan, horizon)
				if rec.Enabled() {
					rec.Attacker(trialrec.AttackerTrial{
						Name:     results[i].Name,
						Probes:   obs.probes,
						Outcomes: outcomes,
						Verdict:  verdict,
						Belief:   obs.belief,
					})
				}
			}
		}
		tm.trials.Inc()
		if observing {
			spans.End(trialSpan, horizon)
			if rec.Enabled() {
				rec.Spans(spans.Drain())
				if err := rec.EndTrial(); err != nil {
					return nil, nil, err
				}
			}
		}
		if opts.PerTrial && reg != nil {
			records = append(records, TrialRecord{Trial: t, Truth: truth, Telemetry: reg.Snapshot()})
		}
	}
	return results, records, nil
}

func decisionDetail(verdict, truth bool) string {
	v := "absent"
	if verdict {
		v = "present"
	}
	if verdict == truth {
		return "verdict=" + v + " correct"
	}
	return "verdict=" + v + " wrong"
}
