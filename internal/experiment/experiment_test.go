package experiment

import (
	"bytes"
	"io"
	"math"
	"testing"
	"time"

	"flowrecon/internal/core"
	"flowrecon/internal/plot"
	"flowrecon/internal/stats"
	"flowrecon/internal/workload"
)

// tinyParams returns a scaled-down §VI-A configuration that keeps the
// test suite fast: 8 flows, 6 of 27 candidate rules, cache 3.
func tinyParams() Params {
	return Params{
		NumFlows:      8,
		NumRules:      6,
		MaskBits:      3,
		CacheSize:     3,
		Delta:         0.1,
		WindowSeconds: 5,
		USum:          core.USumParams{ExactLimit: 20000, MCSamples: 400, Seed: 1},
		AbsenceLo:     0.02,
		AbsenceHi:     0.98,
	}
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultParams()
	bad.Delta = 0
	if bad.Validate() == nil {
		t.Fatal("zero delta accepted")
	}
	bad = DefaultParams()
	bad.AbsenceLo = 0.9
	bad.AbsenceHi = 0.1
	if bad.Validate() == nil {
		t.Fatal("inverted absence range accepted")
	}
	bad = DefaultParams()
	bad.NumFlows = 0
	if bad.Validate() == nil {
		t.Fatal("zero flows accepted")
	}
}

func TestParamsSteps(t *testing.T) {
	p := DefaultParams() // 15 s / 0.025 s
	if p.Steps() != 600 {
		t.Fatalf("steps = %d", p.Steps())
	}
	p.Delta = 0.4
	p.WindowSeconds = 1
	if p.Steps() != 3 { // ⌈1/0.4⌉
		t.Fatalf("steps = %d", p.Steps())
	}
}

func TestGenerateConfig(t *testing.T) {
	p := tinyParams()
	nc, err := GenerateConfig(p, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	if nc.Rules.Len() != p.NumRules || len(nc.Rates) != p.NumFlows {
		t.Fatalf("sizes wrong: %d rules, %d rates", nc.Rules.Len(), len(nc.Rates))
	}
	if nc.PAbsent() < p.AbsenceLo || nc.PAbsent() > p.AbsenceHi {
		t.Fatalf("target absence %v outside [%v,%v]", nc.PAbsent(), p.AbsenceLo, p.AbsenceHi)
	}
	if nc.NumCoveringTarget < 1 {
		t.Fatal("target flow not covered by any rule")
	}
	if nc.Optimal.Gain < nc.TargetEval.Gain-1e-9 {
		t.Fatal("optimal probe has less gain than probing the target")
	}
	if nc.Optimal.Gain < nc.Restricted.Gain-1e-9 {
		t.Fatal("optimal probe has less gain than the restricted probe")
	}
	if nc.Restricted.Flow == nc.Target {
		t.Fatal("restricted probe is the target")
	}
}

func TestGenerateConfigDeterministic(t *testing.T) {
	p := tinyParams()
	a, err := GenerateConfig(p, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateConfig(p, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Target != b.Target || a.Optimal.Flow != b.Optimal.Flow {
		t.Fatal("same seed produced different configs")
	}
	if math.Abs(a.Optimal.Gain-b.Optimal.Gain) > 1e-12 {
		t.Fatal("same seed produced different gains")
	}
}

func TestMeasurementClassify(t *testing.T) {
	m := DefaultMeasurement()
	rng := stats.NewRNG(9)
	const n = 5000
	wrong := 0
	for i := 0; i < n; i++ {
		if !m.Classify(true, rng) {
			wrong++
		}
		if m.Classify(false, rng) {
			wrong++
		}
	}
	if frac := float64(wrong) / (2 * n); frac > 0.01 {
		t.Fatalf("threshold misclassifies %.2f%% of observations", 100*frac)
	}
}

func TestRunTrialsAccounting(t *testing.T) {
	p := tinyParams()
	nc, err := GenerateConfig(p, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	naive := &core.NaiveAttacker{TargetFlow: nc.Target}
	rnd := &core.RandomAttacker{PPresent: 1 - nc.PAbsent()}
	results, err := RunTrials(nc, []core.Attacker{naive, rnd}, 60, DefaultMeasurement(), stats.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Trials != 60 {
			t.Fatalf("%s: trials = %d", r.Name, r.Trials)
		}
		if r.TruePos+r.TrueNeg != r.Correct {
			t.Fatalf("%s: correct accounting broken: %+v", r.Name, r)
		}
		if r.Correct+r.FalsePos+r.FalseNeg != r.Trials {
			t.Fatalf("%s: totals broken: %+v", r.Name, r)
		}
		if acc := r.Accuracy(); acc < 0 || acc > 1 {
			t.Fatalf("%s: accuracy = %v", r.Name, acc)
		}
	}
	if (AttackerResult{}).Accuracy() != 0 {
		t.Fatal("zero-trial accuracy should be 0")
	}
}

// TestNaiveAttackerBeatsCoinFlipOnViableConfig is the end-to-end sanity
// check of the whole pipeline: on a configuration whose optimal probe is a
// viable detector, probing must beat guessing.
func TestNaiveAttackerBeatsCoinFlipOnViableConfig(t *testing.T) {
	p := tinyParams()
	rng := stats.NewRNG(21)
	var nc *NetworkConfig
	for i := 0; i < 200; i++ {
		cand, err := GenerateConfig(p, rng.Fork())
		if err != nil {
			continue
		}
		// Require a prior near 0.5 (guessing is genuinely hard) and a
		// probe with real information gain: the paper's viability filter
		// alone admits detectors that are only infinitesimally better
		// than guessing.
		if cand.DetectorViable() && cand.PAbsent() > 0.3 && cand.PAbsent() < 0.7 && cand.Optimal.Gain > 0.15 {
			nc = cand
			break
		}
	}
	if nc == nil {
		t.Skip("no viable configuration found in budget")
	}
	model, err := core.NewModelAttacker(nc.Selector, nc.Selector.AllFlows(), 1, core.DecideByQuery)
	if err != nil {
		t.Fatal(err)
	}
	attackers := []core.Attacker{
		&core.NaiveAttacker{TargetFlow: nc.Target},
		model,
		&core.RandomAttacker{PPresent: 1 - nc.PAbsent()},
	}
	results, err := RunTrials(nc, attackers, 300, DefaultMeasurement(), stats.NewRNG(31))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AttackerResult{}
	for _, r := range results {
		byName[r.Name] = r
	}
	if modelAcc := byName[model.Name()].Accuracy(); modelAcc < 0.55 {
		t.Errorf("model accuracy %.3f barely beats guessing", modelAcc)
	}
	if byName[model.Name()].Accuracy() < byName["random"].Accuracy()-0.05 {
		t.Errorf("model (%.3f) lost to random (%.3f)",
			byName[model.Name()].Accuracy(), byName["random"].Accuracy())
	}
}

func TestRunFig6Small(t *testing.T) {
	opts := Fig6Options{
		Params:          tinyParams(),
		Configs:         3,
		TrialsPerConfig: 40,
		MaxAttempts:     400,
		Seed:            3,
	}
	res, err := RunFig6(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) == 0 {
		t.Fatal("no outcomes")
	}
	for _, o := range res.Outcomes {
		if o.OptimalFlow == o.TargetFlow {
			t.Fatal("fig6 population filter violated")
		}
		for name, acc := range o.Accuracy {
			if acc < 0 || acc > 1 {
				t.Fatalf("%s accuracy %v", name, acc)
			}
		}
	}
	total := 0
	for _, b := range res.Buckets {
		total += b.Configs
	}
	if total != len(res.Outcomes) {
		t.Fatalf("bucketed %d of %d outcomes", total, len(res.Outcomes))
	}
	if len(res.ImprovementCDF) == 0 {
		t.Fatal("empty improvement CDF")
	}
	var buf bytes.Buffer
	if err := WriteFig6(&buf, res); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty fig6 report")
	}
	var csv bytes.Buffer
	if err := WriteCSV(&csv, res.Outcomes); err != nil {
		t.Fatal(err)
	}
	if csv.Len() == 0 {
		t.Fatal("empty CSV")
	}
}

func TestRunFig7Small(t *testing.T) {
	opts := Fig7Options{
		Params:          tinyParams(),
		Configs:         3,
		TrialsPerConfig: 40,
		MaxAttempts:     400,
		Seed:            4,
	}
	res, err := RunFig7(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) == 0 {
		t.Fatal("no outcomes")
	}
	if len(res.ByCover) == 0 || len(res.ByAbsence) == 0 {
		t.Fatal("missing buckets")
	}
	names := sortedAttackerNames(res.Outcomes)
	if len(names) != 3 {
		t.Fatalf("attackers = %v", names)
	}
	var buf bytes.Buffer
	if err := WriteFig7(&buf, res); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty fig7 report")
	}
}

func TestMeasureLatency(t *testing.T) {
	report, err := MeasureLatency(150, 40, 5, 3*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if report.SimHitMs.N == 0 || report.SimMissMs.N == 0 {
		t.Fatal("no simulated samples")
	}
	if math.Abs(report.SimHitMs.Mean-0.087) > 0.06 {
		t.Errorf("sim hit mean = %.4f ms", report.SimHitMs.Mean)
	}
	if math.Abs(report.SimMissMs.Mean-4.07) > 0.8 {
		t.Errorf("sim miss mean = %.3f ms", report.SimMissMs.Mean)
	}
	if report.SimMisclassified > 0.02 {
		t.Errorf("sim misclassification %.2f%%", 100*report.SimMisclassified)
	}
	// Real-TCP OpenFlow: miss delays must exceed the controller's
	// processing time; hit delays must be far below it.
	if report.OFMissMs.N == 0 || report.OFHitMs.N == 0 {
		t.Fatal("no openflow samples")
	}
	if report.OFMissMs.Mean < 3 {
		t.Errorf("openflow miss mean = %.3f ms, below processing delay", report.OFMissMs.Mean)
	}
	if report.OFHitMs.Mean > 1 {
		t.Errorf("openflow hit mean = %.3f ms", report.OFHitMs.Mean)
	}
	if report.OFMisclassified > 0.05 {
		t.Errorf("openflow misclassification %.2f%%", 100*report.OFMisclassified)
	}
	var buf bytes.Buffer
	if err := WriteLatency(&buf, report); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty latency report")
	}
}

func TestBucketByAbsenceEdges(t *testing.T) {
	outcomes := []ConfigOutcome{
		{PAbsent: 0.0, Accuracy: map[string]float64{"naive": 1}},
		{PAbsent: 0.999, Accuracy: map[string]float64{"naive": 0}},
		{PAbsent: 1.0, Accuracy: map[string]float64{"naive": 0.5}},
	}
	buckets := bucketByAbsence(outcomes, 5)
	if buckets[0].Configs != 1 {
		t.Fatalf("first bucket = %+v", buckets[0])
	}
	if buckets[4].Configs != 2 {
		t.Fatalf("last bucket = %+v (1.0 must clamp in)", buckets[4])
	}
	if buckets[4].Accuracy["naive"] != 0.25 {
		t.Fatalf("last bucket mean = %v", buckets[4].Accuracy["naive"])
	}
}

func TestImprovementQuantiles(t *testing.T) {
	r := &Fig6Result{Outcomes: []ConfigOutcome{
		{Accuracy: map[string]float64{"naive": 0.5, "model(m=1)": 0.7}},
		{Accuracy: map[string]float64{"naive": 0.6, "model(m=1)": 0.6}},
	}}
	q := r.ImprovementQuantiles([]float64{0.0, 0.1, 0.3})
	if q[0.0] != 1 || q[0.1] != 0.5 || q[0.3] != 0 {
		t.Fatalf("quantiles = %v", q)
	}
}

// TestModelJointMatchesEmpirical validates the attacker's fitted model
// end-to-end: the compact-model joint distribution P(X̂, Q_f) for the
// optimal probe must match the empirical joint measured over thousands of
// independent traffic traces.
func TestModelJointMatchesEmpirical(t *testing.T) {
	p := tinyParams()
	p.Delta = 0.05 // halve the step so ΣλΔ ≈ 0.2: the chain's regime
	nc, err := GenerateConfig(p, stats.NewRNG(21))
	if err != nil {
		t.Fatal(err)
	}
	horizon := float64(nc.Params.Steps()) * nc.Params.Delta
	var cnt [2][2]float64
	g := stats.NewRNG(31)
	const trials = 3000
	for trial := 0; trial < trials; trial++ {
		trace, err := workload.GeneratePoisson(workload.PoissonConfig{Rates: nc.Rates, Duration: horizon}, g.Fork())
		if err != nil {
			t.Fatal(err)
		}
		tbl, err := replayTrace(nc, trace, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		x, q := 0, 0
		if trace.OccurredWithin(nc.Target, horizon, horizon) {
			x = 1
		}
		if _, hit := tbl.Lookup(nc.Optimal.Flow, horizon); hit {
			q = 1
		}
		cnt[x][q]++
	}
	// The compact model is intentionally approximate: its memoryless
	// timeout/eviction estimates leave a residual bias of a few percent
	// that does not vanish as Δ → 0 (the §IV-B approximation the paper
	// acknowledges). The tolerance reflects that.
	for x := 0; x < 2; x++ {
		for q := 0; q < 2; q++ {
			emp := cnt[x][q] / trials
			mod := nc.Optimal.Joint[x][q]
			if d := emp - mod; d > 0.08 || d < -0.08 {
				t.Errorf("joint[%d][%d]: empirical %.3f vs model %.3f", x, q, emp, mod)
			}
		}
	}
}

func TestRunTrialsWithAlternativeSources(t *testing.T) {
	p := tinyParams()
	nc, err := GenerateConfig(p, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	naive := &core.NaiveAttacker{TargetFlow: nc.Target}
	bf, on, off := workload.DefaultBurstShape()
	for name, src := range map[string]TraceSource{
		"bursty":   BurstySource(bf, on, off),
		"periodic": PeriodicSource,
	} {
		results, err := RunTrialsWithSource(nc, []core.Attacker{naive}, 50, DefaultMeasurement(), stats.NewRNG(9), src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if results[0].Trials != 50 {
			t.Fatalf("%s: trials = %d", name, results[0].Trials)
		}
		if acc := results[0].Accuracy(); acc < 0 || acc > 1 {
			t.Fatalf("%s: accuracy = %v", name, acc)
		}
	}
}

func TestAdaptiveAttackerInTrials(t *testing.T) {
	p := tinyParams()
	nc, err := GenerateConfig(p, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := core.NewAdaptiveAttacker(nc.Selector, nc.Selector.AllFlows(), 2)
	if err != nil {
		t.Fatal(err)
	}
	results, err := RunTrials(nc, []core.Attacker{adaptive}, 60, DefaultMeasurement(), stats.NewRNG(13))
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Trials != 60 {
		t.Fatalf("trials = %d", results[0].Trials)
	}
	if acc := results[0].Accuracy(); acc < 0 || acc > 1 {
		t.Fatalf("accuracy = %v", acc)
	}
}

func TestReportWriters(t *testing.T) {
	outcomes := []ConfigOutcome{
		{PAbsent: 0.3, NumCoveringTarget: 2, TargetFlow: 1, OptimalFlow: 4,
			Accuracy: map[string]float64{"naive": 0.6, "model(m=1)": 0.7, "random": 0.5}},
		{PAbsent: 0.8, NumCoveringTarget: 1, TargetFlow: 2, OptimalFlow: 2,
			Accuracy: map[string]float64{"naive": 0.8, "model(m=1)": 0.85, "random": 0.55}},
	}
	f6 := &Fig6Result{
		Outcomes:       outcomes,
		Buckets:        bucketByAbsence(outcomes, 5),
		ImprovementCDF: stats.EmpiricalCDF([]float64{0.1, 0.05}),
		MeanModel:      0.775,
		MeanNaive:      0.7,
	}
	var buf bytes.Buffer
	if err := WriteFig6(&buf, f6); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 6a", "Figure 6b", "naive", "model(m=1)", "population means"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("fig6 report missing %q", want)
		}
	}

	f7 := &Fig7Result{
		Outcomes:  outcomes,
		ByCover:   bucketByCover(outcomes),
		ByAbsence: bucketByAbsence(outcomes, 5),
	}
	buf.Reset()
	if err := WriteFig7(&buf, f7); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 7a", "Figure 7b", "random"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("fig7 report missing %q", want)
		}
	}

	buf.Reset()
	if err := WriteCSV(&buf, outcomes); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if !bytes.HasPrefix(lines[0], []byte("p_absent,num_covering,target,optimal")) {
		t.Fatalf("csv header = %s", lines[0])
	}

	rep := &LatencyReport{ThresholdMs: 1}
	rep.SimHitMs = stats.Summarize([]float64{0.1})
	rep.SimMissMs = stats.Summarize([]float64{4})
	buf.Reset()
	if err := WriteLatency(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("netsim hit RTT")) {
		t.Fatal("latency report missing rows")
	}
}

func TestBucketByCoverSkipsEmpty(t *testing.T) {
	outcomes := []ConfigOutcome{
		{NumCoveringTarget: 3, Accuracy: map[string]float64{"naive": 1}},
	}
	buckets := bucketByCover(outcomes)
	if len(buckets) != 1 || buckets[0].NumCovering != 3 {
		t.Fatalf("buckets = %+v", buckets)
	}
}

func TestPopulationMeans(t *testing.T) {
	outcomes := []ConfigOutcome{
		{Accuracy: map[string]float64{"naive": 0.5, "model(m=1)": 0.7}},
		{Accuracy: map[string]float64{"naive": 0.7, "model(m=1)": 0.9}},
	}
	model, naive := populationMeans(outcomes)
	if math.Abs(model-0.8) > 1e-12 || math.Abs(naive-0.6) > 1e-12 {
		t.Fatalf("means = %v %v", model, naive)
	}
}

func TestWithStratum(t *testing.T) {
	p := DefaultParams()
	for i := 0; i < 2*len(AbsenceStrata); i++ {
		s := p.WithStratum(i)
		if s.AbsenceLo >= s.AbsenceHi {
			t.Fatalf("stratum %d inverted", i)
		}
		if s.AbsenceLo != AbsenceStrata[i%len(AbsenceStrata)][0] {
			t.Fatalf("stratum %d lo = %v", i, s.AbsenceLo)
		}
	}
}

func TestSaveLoadConfigRoundTrip(t *testing.T) {
	p := tinyParams()
	orig, err := GenerateConfig(p, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveConfig(&buf, orig); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadConfig(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Target != orig.Target {
		t.Fatalf("target %d vs %d", loaded.Target, orig.Target)
	}
	if loaded.Optimal.Flow != orig.Optimal.Flow {
		t.Fatalf("optimal %d vs %d", loaded.Optimal.Flow, orig.Optimal.Flow)
	}
	if math.Abs(loaded.Optimal.Gain-orig.Optimal.Gain) > 1e-12 {
		t.Fatalf("gain %v vs %v (u-sum seed must be preserved)", loaded.Optimal.Gain, orig.Optimal.Gain)
	}
	if loaded.NumCoveringTarget != orig.NumCoveringTarget {
		t.Fatal("covering count differs")
	}
	for i := 0; i < orig.Rules.Len(); i++ {
		a, b := orig.Rules.Rule(i), loaded.Rules.Rule(i)
		if a.Name != b.Name || a.Priority != b.Priority || a.Timeout != b.Timeout || !a.Cover.Equal(b.Cover) {
			t.Fatalf("rule %d differs: %s vs %s", i, a, b)
		}
	}
}

func TestLoadConfigRejectsGarbage(t *testing.T) {
	if _, err := LoadConfig(bytes.NewBufferString("{")); err == nil {
		t.Fatal("truncated JSON accepted")
	}
	if _, err := LoadConfig(bytes.NewBufferString(`{"params":{}}`)); err == nil {
		t.Fatal("empty params accepted")
	}
}

func TestFigureCharts(t *testing.T) {
	outcomes := []ConfigOutcome{
		{PAbsent: 0.3, NumCoveringTarget: 2,
			Accuracy: map[string]float64{"naive": 0.6, "model(m=1)": 0.7, "random": 0.5}},
		{PAbsent: 0.8, NumCoveringTarget: 1,
			Accuracy: map[string]float64{"naive": 0.8, "model(m=1)": 0.85, "random": 0.55}},
	}
	f6 := &Fig6Result{
		Outcomes:       outcomes,
		Buckets:        bucketByAbsence(outcomes, 5),
		ImprovementCDF: stats.EmpiricalCDF([]float64{0.05, 0.1}),
	}
	f7 := &Fig7Result{
		Outcomes:  outcomes,
		ByCover:   bucketByCover(outcomes),
		ByAbsence: bucketByAbsence(outcomes, 5),
	}
	charts := map[string]*plot.Chart{
		"fig6a": Fig6aChart(f6),
		"fig6b": Fig6bChart(f6),
		"fig7a": Fig7aChart(f7),
		"fig7b": Fig7bChart(f7),
	}
	rendered := map[string]*bytes.Buffer{}
	err := WriteSVGs(charts, func(name string) (io.WriteCloser, error) {
		buf := &bytes.Buffer{}
		rendered[name] = buf
		return nopCloser{buf}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for name, buf := range rendered {
		if !bytes.Contains(buf.Bytes(), []byte("<svg")) {
			t.Errorf("%s: not an SVG", name)
		}
	}
	if len(rendered) != 4 {
		t.Fatalf("rendered %d charts", len(rendered))
	}
}

type nopCloser struct{ io.Writer }

func (nopCloser) Close() error { return nil }
