package experiment

import (
	"bytes"
	"reflect"
	"testing"

	"flowrecon/internal/stats"
	"flowrecon/internal/telemetry"
	"flowrecon/internal/trialrec"
)

// recordRun executes one recorded trial run at the given parallelism and
// returns the raw recording bytes plus the aggregate results.
func recordRun(t *testing.T, spec RecordingSpec, parallelism int) ([]byte, []AttackerResult) {
	t.Helper()
	nc, err := spec.BuildConfig()
	if err != nil {
		t.Fatal(err)
	}
	attackers, err := StandardAttackers(nc, spec.Probes)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(attackers))
	for i, a := range attackers {
		names[i] = a.Name()
	}
	var buf bytes.Buffer
	rec, err := trialrec.NewRecorder(&buf, trialrec.Header{
		Seed: spec.TrialSeed, Trials: spec.Trials, Attackers: names,
	})
	if err != nil {
		t.Fatal(err)
	}
	results, _, err := RunTrialsOpts(nc, attackers, spec.Trials, spec.Measurement,
		stats.NewRNG(spec.TrialSeed), TrialOptions{Recorder: rec, Parallelism: parallelism})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), results
}

// TestParallelTrialsByteIdentical is the tentpole determinism guarantee:
// fanning trials over a worker pool must produce the byte-for-byte same
// trial recording (arrivals, probes, outcomes, belief steps, spans) and
// identical aggregate results as a serial run — recordings stay
// replayable no matter how the run was scheduled.
func TestParallelTrialsByteIdentical(t *testing.T) {
	spec := RecordingSpec{
		Params:      tinyParams(),
		ConfigSeed:  11,
		TrialSeed:   13,
		Trials:      24,
		Probes:      2,
		Measurement: DefaultMeasurement(),
	}
	serialBytes, serialResults := recordRun(t, spec, 1)
	for _, workers := range []int{2, 4, 7} {
		parBytes, parResults := recordRun(t, spec, workers)
		if !reflect.DeepEqual(serialResults, parResults) {
			t.Fatalf("parallelism %d: results diverge:\n serial   %+v\n parallel %+v", workers, serialResults, parResults)
		}
		if !bytes.Equal(serialBytes, parBytes) {
			a, err := trialrec.Read(bytes.NewReader(serialBytes))
			if err != nil {
				t.Fatal(err)
			}
			b, err := trialrec.Read(bytes.NewReader(parBytes))
			if err != nil {
				t.Fatal(err)
			}
			ds := trialrec.Diff(a, b)
			if len(ds) > 0 {
				t.Fatalf("parallelism %d: recording diverges, first divergence: %s", workers, ds[0])
			}
			t.Fatalf("parallelism %d: recordings differ at the byte level (outcomes agree — span or encoding nondeterminism)", workers)
		}
	}
}

// TestParallelTrialsDiffClean runs the semantic comparison: the parallel
// recording must parse and show zero trialrec divergences against serial.
func TestParallelTrialsDiffClean(t *testing.T) {
	spec := RecordingSpec{
		Params:      tinyParams(),
		ConfigSeed:  5,
		TrialSeed:   17,
		Trials:      12,
		Probes:      1,
		Measurement: DefaultMeasurement(),
	}
	serialBytes, _ := recordRun(t, spec, 1)
	parBytes, _ := recordRun(t, spec, 3)
	a, err := trialrec.Read(bytes.NewReader(serialBytes))
	if err != nil {
		t.Fatal(err)
	}
	b, err := trialrec.Read(bytes.NewReader(parBytes))
	if err != nil {
		t.Fatal(err)
	}
	if ds := trialrec.Diff(a, b); len(ds) > 0 {
		t.Fatalf("parallel vs serial diverges: %s (+%d more)", ds[0], len(ds)-1)
	}
	if len(a.Trials) != spec.Trials {
		t.Fatalf("recorded %d trials, want %d", len(a.Trials), spec.Trials)
	}
}

// TestParallelTrialsResultsOnly checks the unobserved fast path (no
// recorder, no spans): results must match serial exactly, and the
// workers-busy gauge must return to zero.
func TestParallelTrialsResultsOnly(t *testing.T) {
	spec := RecordingSpec{
		Params:      tinyParams(),
		ConfigSeed:  11,
		TrialSeed:   13,
		Trials:      20,
		Probes:      2,
		Measurement: DefaultMeasurement(),
	}
	nc, err := spec.BuildConfig()
	if err != nil {
		t.Fatal(err)
	}
	attackers, err := StandardAttackers(nc, spec.Probes)
	if err != nil {
		t.Fatal(err)
	}
	serial, _, err := RunTrialsOpts(nc, attackers, spec.Trials, spec.Measurement,
		stats.NewRNG(spec.TrialSeed), TrialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry(1024)
	par, _, err := RunTrialsOpts(nc, attackers, spec.Trials, spec.Measurement,
		stats.NewRNG(spec.TrialSeed), TrialOptions{Registry: reg, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("results diverge:\n serial   %+v\n parallel %+v", serial, par)
	}
	if v := reg.Gauge("experiment_trial_workers_busy").Value(); v != 0 {
		t.Fatalf("workers-busy gauge stuck at %d", v)
	}
	if v := reg.Gauge("experiment_trial_workers").Value(); v != 4 {
		t.Fatalf("workers gauge = %d, want 4", v)
	}
}

// TestPerTrialForcesSerial: cumulative per-trial snapshots are
// order-sensitive, so PerTrial must run serially (and still return one
// record per trial) regardless of the requested parallelism.
func TestPerTrialForcesSerial(t *testing.T) {
	spec := RecordingSpec{
		Params:      tinyParams(),
		ConfigSeed:  11,
		TrialSeed:   13,
		Trials:      6,
		Probes:      1,
		Measurement: DefaultMeasurement(),
	}
	nc, err := spec.BuildConfig()
	if err != nil {
		t.Fatal(err)
	}
	attackers, err := StandardAttackers(nc, spec.Probes)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry(1024)
	_, records, err := RunTrialsOpts(nc, attackers, spec.Trials, spec.Measurement,
		stats.NewRNG(spec.TrialSeed), TrialOptions{Registry: reg, PerTrial: true, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != spec.Trials {
		t.Fatalf("got %d per-trial records, want %d", len(records), spec.Trials)
	}
	for i, r := range records {
		if r.Trial != i {
			t.Fatalf("record %d has trial index %d", i, r.Trial)
		}
	}
}
