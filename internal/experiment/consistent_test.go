package experiment

import (
	"math"
	"testing"

	"flowrecon/internal/controller"
	"flowrecon/internal/core"
	"flowrecon/internal/flows"
	"flowrecon/internal/flowtable"
	"flowrecon/internal/rules"
	"flowrecon/internal/stats"
	"flowrecon/internal/workload"
)

// TestConsistentRemovalBreaksTheModel demonstrates the §VII-A2 limitation
// the paper states for its own model: under collective (consistent) rule
// deployment — removing a rule also removes overlapping lower-priority
// rules — the switch no longer behaves like the modeled chain, and the
// model's hit-probability predictions degrade. The setup makes the effect
// stark: a short-TTL high-priority rule repeatedly drags down a long-TTL
// low-priority rule it overlaps.
func TestConsistentRemovalBreaksTheModel(t *testing.T) {
	rs, err := rules.NewSet([]rules.Rule{
		{Name: "hi-short", Cover: flows.SetOf(0, 1), Priority: 2, Timeout: 3},
		{Name: "lo-long", Cover: flows.SetOf(1, 2), Priority: 1, Timeout: 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{
		Rules:     rs,
		Rates:     []float64{0.9, 0.4, 0.8},
		Delta:     0.1,
		CacheSize: 2,
	}
	const (
		steps   = 80
		trials  = 1500
		probeF  = flows.ID(2) // hit ⇔ lo-long cached
		horizon = float64(steps) * 0.1
	)
	model, err := core.NewCompactModel(cfg, core.DefaultUSumParams())
	if err != nil {
		t.Fatal(err)
	}
	predicted := model.HitProbability(model.Evolve(model.InitialDist(), steps), probeF)

	app := controller.New(rs, controller.Options{ConsistentRemoval: true})
	measure := func(consistent bool) float64 {
		rng := stats.NewRNG(17)
		hits := 0
		for trial := 0; trial < trials; trial++ {
			trace, err := workload.GeneratePoisson(workload.PoissonConfig{Rates: cfg.Rates, Duration: horizon}, rng.Fork())
			if err != nil {
				t.Fatal(err)
			}
			tbl, err := flowtable.New(rs, cfg.CacheSize, cfg.Delta)
			if err != nil {
				t.Fatal(err)
			}
			var dragged []int
			if consistent {
				tbl.OnRemove = func(ruleID int, reason flowtable.EvictionReason, _ float64) {
					dragged = append(dragged, app.DependentRemovals(ruleID)...)
				}
			}
			for _, a := range trace.Arrivals() {
				if _, hit := tbl.Lookup(a.Flow, a.Time); !hit {
					if j, covered := rs.HighestCovering(a.Flow); covered {
						tbl.Install(j, a.Time)
					}
				}
				// Apply dependent removals outside the table's internal
				// iteration.
				for len(dragged) > 0 {
					id := dragged[0]
					dragged = dragged[1:]
					tbl.Remove(id, a.Time)
				}
			}
			if _, hit := tbl.Lookup(probeF, horizon); hit {
				hits++
			}
		}
		return float64(hits) / trials
	}

	standard := measure(false)
	consistent := measure(true)

	if consistent >= standard-0.05 {
		t.Fatalf("consistent removal did not depress hit rate: %.3f vs %.3f", consistent, standard)
	}
	errStandard := math.Abs(standard - predicted)
	errConsistent := math.Abs(consistent - predicted)
	if errConsistent <= errStandard {
		t.Fatalf("model error should grow under consistent removal: |%.3f-%.3f|=%.3f vs |%.3f-%.3f|=%.3f",
			standard, predicted, errStandard, consistent, predicted, errConsistent)
	}
	t.Logf("model=%.3f standard=%.3f consistent=%.3f (the §VII-A2 limitation, quantified)",
		predicted, standard, consistent)
}
