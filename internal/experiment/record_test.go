package experiment

import (
	"bytes"
	"testing"

	"flowrecon/internal/core"
	"flowrecon/internal/stats"
	"flowrecon/internal/telemetry"
	"flowrecon/internal/trialrec"
)

func smallSpec() RecordingSpec {
	p := DefaultParams()
	p.NumFlows, p.NumRules, p.MaskBits, p.CacheSize = 8, 6, 3, 3
	p.WindowSeconds = 5
	return RecordingSpec{
		Params:      p,
		ConfigSeed:  11,
		TrialSeed:   13,
		Trials:      6,
		Probes:      2,
		Measurement: DefaultMeasurement(),
	}
}

func TestRecordReplayDeterminism(t *testing.T) {
	spec := smallSpec()
	var a, b bytes.Buffer
	resA, _, err := RecordTo(&a, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	resB, _, err := RecordTo(&b, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Same spec → byte-identical results and divergence-free recordings.
	for i := range resA {
		if resA[i] != resB[i] {
			t.Fatalf("results differ: %+v vs %+v", resA[i], resB[i])
		}
	}
	recA, err := trialrec.Read(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	recB, err := trialrec.Read(bytes.NewReader(b.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if ds := trialrec.Diff(recA, recB); len(ds) != 0 {
		t.Fatalf("re-recording diverged: %v", ds[0])
	}

	// Replay from the recording alone reproduces it probe for probe.
	fresh, resR, err := Replay(recA)
	if err != nil {
		t.Fatal(err)
	}
	if ds := trialrec.Diff(recA, fresh); len(ds) != 0 {
		t.Fatalf("replay diverged: %v", ds[0])
	}
	for i := range resA {
		if resA[i] != resR[i] {
			t.Fatalf("replay confusion matrix differs: %+v vs %+v", resA[i], resR[i])
		}
	}
}

func TestRecordingContents(t *testing.T) {
	spec := smallSpec()
	var buf bytes.Buffer
	results, nc, err := RecordTo(&buf, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := trialrec.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Trials) != spec.Trials {
		t.Fatalf("recorded %d trials, want %d", len(rec.Trials), spec.Trials)
	}
	if len(rec.Header.Attackers) != 4 || rec.Header.Attackers[2] != RestrictedAttackerName {
		t.Fatalf("attacker roster = %v", rec.Header.Attackers)
	}
	if got, err := SpecFromRecording(rec); err != nil || got != spec {
		t.Fatalf("spec round trip: %+v, %v", got, err)
	}
	for _, tr := range rec.Trials {
		if len(tr.Attackers) != 4 {
			t.Fatalf("trial %d has %d attacker records", tr.Trial, len(tr.Attackers))
		}
		if len(tr.Spans) == 0 {
			t.Fatalf("trial %d carries no spans", tr.Trial)
		}
		// The trial span tree has one root; probes hang beneath attackers.
		forest := telemetry.BuildSpanForest(tr.Spans)
		if len(forest) != 1 || forest[0].Span.Name != "trial" {
			t.Fatalf("trial %d span forest malformed: %d roots", tr.Trial, len(forest))
		}
		model, ok := tr.FindAttacker("model(m=2)")
		if !ok {
			t.Fatalf("trial %d lacks the model attacker", tr.Trial)
		}
		if len(model.Probes) != len(model.Outcomes) || len(model.Probes) == 0 {
			t.Fatalf("trial %d model probes/outcomes mismatched: %v %v", tr.Trial, model.Probes, model.Outcomes)
		}
		// Model attackers carry a belief step per probe; its Hit field is
		// the recorded outcome.
		if len(model.Belief) != len(model.Probes) {
			t.Fatalf("trial %d belief steps %d for %d probes", tr.Trial, len(model.Belief), len(model.Probes))
		}
		for i, step := range model.Belief {
			if step.Probe != model.Probes[i] || step.Hit != model.Outcomes[i] {
				t.Fatalf("trial %d belief step %d inconsistent: %+v", tr.Trial, i, step)
			}
			if step.Posterior < 0 || step.Posterior > 1 {
				t.Fatalf("posterior out of range: %v", step.Posterior)
			}
		}
		// The naive attacker has no model, hence no belief trajectory.
		naive, ok := tr.FindAttacker("naive")
		if !ok || len(naive.Belief) != 0 {
			t.Fatalf("trial %d naive record: %+v", tr.Trial, naive)
		}
		if len(naive.Probes) != 1 || naive.Probes[0] != nc.Target {
			t.Fatalf("naive probes = %v, want target %d", naive.Probes, nc.Target)
		}
	}
	// Results align with the header roster.
	for i, r := range results {
		if r.Name != rec.Header.Attackers[i] {
			t.Fatalf("result %d name %q, header %q", i, r.Name, rec.Header.Attackers[i])
		}
		if r.Trials != spec.Trials {
			t.Fatalf("%s scored %d trials", r.Name, r.Trials)
		}
	}
}

// TestRecorderDoesNotPerturbOutcomes: the same seeds with and without a
// recorder produce identical confusion matrices — the observers draw
// nothing from the RNG streams.
func TestRecorderDoesNotPerturbOutcomes(t *testing.T) {
	spec := smallSpec()
	nc, err := spec.BuildConfig()
	if err != nil {
		t.Fatal(err)
	}
	mk := func() []core.Attacker {
		as, err := StandardAttackers(nc, spec.Probes)
		if err != nil {
			t.Fatal(err)
		}
		return as
	}
	plain, _, err := RunTrialsOpts(nc, mk(), spec.Trials, spec.Measurement, stats.NewRNG(spec.TrialSeed), TrialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	recorded, _, err := RecordTo(&buf, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if plain[i] != recorded[i] {
			t.Fatalf("recording perturbed outcomes: %+v vs %+v", plain[i], recorded[i])
		}
	}
}

func TestRecordingSpecValidate(t *testing.T) {
	spec := smallSpec()
	spec.Trials = 0
	if err := spec.Validate(); err == nil {
		t.Fatal("zero trials should fail validation")
	}
	spec = smallSpec()
	spec.Probes = 0
	if err := spec.Validate(); err == nil {
		t.Fatal("zero probes should fail validation")
	}
	spec = smallSpec()
	spec.Params.Delta = -1
	if _, err := spec.BuildConfig(); err == nil {
		t.Fatal("bad params should fail BuildConfig")
	}
}

func TestReplayRejectsSpeclessRecording(t *testing.T) {
	rec := &trialrec.Recording{}
	if _, _, err := Replay(rec); err == nil {
		t.Fatal("recording without a spec should not replay")
	}
}
