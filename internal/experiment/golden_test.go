package experiment

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"flowrecon/internal/faults"
	"flowrecon/internal/trialrec"
)

// The golden recordings pin cross-PR determinism: the committed JSONL
// fixtures were produced by RecordTo at a known commit, and every later
// revision must regenerate them byte for byte from the spec embedded in
// their headers. A diff here means the seeded random draw order, the
// trial semantics, or the serialization changed — any of which silently
// invalidates previously recorded experiments. If the change is
// intentional, regenerate with:
//
//	UPDATE_GOLDEN=1 go test ./internal/experiment/ -run TestGolden
//
// and say so in the commit message.
func goldenPath(name string) string {
	return filepath.Join("testdata", name)
}

func checkGolden(t *testing.T, name string, spec RecordingSpec) {
	t.Helper()
	path := goldenPath(name)
	var fresh bytes.Buffer
	if _, _, err := RecordTo(&fresh, spec, nil); err != nil {
		t.Fatal(err)
	}
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, fresh.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d bytes)", path, fresh.Len())
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden fixture missing (run with UPDATE_GOLDEN=1 to create): %v", err)
	}

	// 1. Byte-level pin: the current code regenerates the fixture exactly.
	if !bytes.Equal(fresh.Bytes(), want) {
		t.Errorf("recording bytes diverged from %s (%d vs %d bytes); "+
			"if intentional, regenerate with UPDATE_GOLDEN=1 and document why", path, fresh.Len(), len(want))
	}

	// 2. Semantic pin: Replay from the fixture's own embedded spec, then
	// Diff — zero divergences, probe for probe.
	rec, err := trialrec.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	replayed, results, err := Replay(rec)
	if err != nil {
		t.Fatal(err)
	}
	if divs := trialrec.Diff(rec, replayed); len(divs) != 0 {
		for i, d := range divs {
			if i == 10 {
				t.Errorf("... and %d more", len(divs)-10)
				break
			}
			t.Errorf("divergence: %s", d)
		}
		t.Fatalf("replay diverged from golden recording %s in %d places", path, len(divs))
	}
	if len(results) == 0 {
		t.Fatal("replay returned no attacker results")
	}
	for _, r := range results {
		if r.Trials != spec.Trials {
			t.Fatalf("attacker %s replayed %d trials, want %d", r.Name, r.Trials, spec.Trials)
		}
	}
}

// TestGoldenRecording: the fault-free golden fixture.
func TestGoldenRecording(t *testing.T) {
	checkGolden(t, "golden_small.jsonl", smallSpec())
}

// TestGoldenChaosRecording: the chaos golden fixture — same scenario with
// 2% probe loss and 1 ms mean jitter injected from its own seeded stream.
// This pins not just the trial semantics but the fault draw order: a
// refactor that changes when the loss coin is flipped shows up here even
// if every fault-free path is untouched.
func TestGoldenChaosRecording(t *testing.T) {
	spec := smallSpec()
	spec.Faults = &faults.Profile{Seed: 42, LossProb: 0.02, JitterMeanMs: 1}
	checkGolden(t, "golden_chaos.jsonl", spec)
}
