package experiment

import (
	"fmt"
	"io"
	"math"
	"time"

	"flowrecon/internal/controller"
	"flowrecon/internal/core"
	"flowrecon/internal/detect"
	"flowrecon/internal/flows"
	"flowrecon/internal/flowtable"
	"flowrecon/internal/netsim"
	"flowrecon/internal/rules"
	"flowrecon/internal/stats"
	"flowrecon/internal/telemetry"
	"flowrecon/internal/workload"
)

// This file is the attacker-vs-defender evaluation: the detection side
// of the §VI experiments. The attack harness measures how accurately an
// attacker reads flow presence off the timing channel; the functions
// here measure what that costs the attacker once the controller path is
// watched — how many probes until the defender flags the probing
// source, how often benign traffic trips the same thresholds, and how
// much accuracy a stealth-paced attacker retains.

// TrainDetectBaseline replays benign traffic windows through fresh
// tables and measures what the controller path actually sees per flow —
// the observation rate and miss fraction the anomaly scorers need as
// their benign reference.
//
// The per-flow rate is provisioned for the observed benign PEAK window,
// not the mean: a mean-rate baseline cannot hold a 1% false-positive
// rate under bursty traffic, because an ON burst genuinely produces
// many-sigma-versus-mean window counts. Training on the highest benign
// window makes the rate scorer burst-proof at the cost of rate
// sensitivity — on bursty deployments the regularity scorer carries
// detection. The result is a pure function of (nc, windows, rng draws,
// source).
func TrainDetectBaseline(nc *NetworkConfig, windows int, rng *stats.RNG, source TraceSource) (detect.Baseline, error) {
	if windows < 1 {
		return detect.Baseline{}, fmt.Errorf("experiment: baseline needs ≥ 1 window, got %d", windows)
	}
	if source == nil {
		source = PoissonSource
	}
	horizon := float64(nc.Params.Steps()) * nc.Params.Delta
	counts := make([]float64, nc.Params.NumFlows)
	misses := make([]float64, nc.Params.NumFlows)
	peaks := make([]float64, nc.Params.NumFlows)
	window := make([]float64, nc.Params.NumFlows)
	for w := 0; w < windows; w++ {
		trace, err := source(nc.Rates, horizon, rng.Fork())
		if err != nil {
			return detect.Baseline{}, err
		}
		tbl, err := flowtable.New(nc.Rules, nc.Params.CacheSize, nc.Params.Delta)
		if err != nil {
			return detect.Baseline{}, err
		}
		for f := range window {
			window[f] = 0
		}
		for _, a := range trace.Arrivals() {
			_, hit := tbl.Lookup(a.Flow, a.Time)
			counts[a.Flow]++
			window[a.Flow]++
			if !hit {
				misses[a.Flow]++
				if j, covered := nc.Rules.HighestCovering(a.Flow); covered {
					tbl.Install(j, a.Time)
				}
			}
		}
		for f, c := range window {
			if c > peaks[f] {
				peaks[f] = c
			}
		}
	}
	b := detect.Baseline{
		Rates:     make([]float64, nc.Params.NumFlows),
		MissFracs: make([]float64, nc.Params.NumFlows),
	}
	var totalObs, totalMiss, rateSum float64
	for f := range counts {
		b.Rates[f] = peaks[f] / horizon
		rateSum += b.Rates[f]
		if counts[f] > 0 {
			b.MissFracs[f] = misses[f] / counts[f]
		} else {
			b.MissFracs[f] = 1 // an unseen flow's first packets all miss
		}
		totalObs += counts[f]
		totalMiss += misses[f]
	}
	b.DefaultRate = rateSum / float64(len(counts))
	if totalObs > 0 {
		b.MissFrac = totalMiss / totalObs
	} else {
		b.MissFrac = 1
	}
	return b, nil
}

// DetectConfigFor wraps a trained baseline in the default detector
// thresholds, with the sliding window matched to the experiment's
// traffic window.
func DetectConfigFor(nc *NetworkConfig, b detect.Baseline) detect.Config {
	cfg := detect.DefaultConfig()
	cfg.WindowSec = nc.Params.WindowSeconds
	cfg.Baseline = b
	return cfg
}

// FPRResult is the benign false-positive measurement: of all the
// sources benign-only trials exposed to the detector, how many were
// flagged.
type FPRResult struct {
	Trials  int
	Sources int
	Flagged int
}

// Rate returns flagged/sources (0 when nothing was tracked).
func (r FPRResult) Rate() float64 {
	if r.Sources == 0 {
		return 0
	}
	return float64(r.Flagged) / float64(r.Sources)
}

// BenignFPR replays benign-only windows — no attacker — each against a
// fresh detector, and counts how many of the tracked sources the
// detector wrongly flagged.
func BenignFPR(nc *NetworkConfig, cfg detect.Config, trials int, rng *stats.RNG, source TraceSource) (FPRResult, error) {
	if source == nil {
		source = PoissonSource
	}
	horizon := float64(nc.Params.Steps()) * nc.Params.Delta
	var res FPRResult
	for t := 0; t < trials; t++ {
		trace, err := source(nc.Rates, horizon, rng.Fork())
		if err != nil {
			return res, err
		}
		det := detect.New(cfg)
		if _, err := replayTrace(nc, trace, nil, det); err != nil {
			return res, err
		}
		res.Trials++
		res.Sources += det.Sources()
		res.Flagged += len(det.Verdicts())
	}
	return res, nil
}

// DetectionOutcome is one probing session as the defender saw it.
type DetectionOutcome struct {
	// Flagged reports whether the detector caught the probing source
	// within the probe budget.
	Flagged bool
	// Probes is the number of probes the attacker had sent when the flag
	// fired (the detection latency), or the full budget when it never did.
	Probes int
	// Seconds is the attack clock at the end of the session.
	Seconds float64
	// Reason and Score echo the detector's verdict when flagged.
	Reason string
	Score  float64
}

// DefaultProbeInterval is the §III eviction-probing cadence: probes
// must race the rule idle timeouts to keep measuring table state, which
// puts them at sub-second spacing — the pathological regularity the
// detector keys on.
const DefaultProbeInterval = 0.4

// MeasureDetectionLatency runs the §VI probing session against a
// watched controller path: continuous benign traffic with an
// eviction-probing attacker on top, probing the best probe flow on the
// pace schedule (default: DefaultProbeInterval; a stealth pace
// stretches and jitters that schedule). It returns how many probes the
// attacker got away with before the detector flagged the probing
// source.
func MeasureDetectionLatency(nc *NetworkConfig, cfg detect.Config, meas Measurement, rng *stats.RNG, pace core.Pacing, maxProbes int, source TraceSource) (DetectionOutcome, error) {
	if maxProbes < 1 {
		return DetectionOutcome{}, fmt.Errorf("experiment: maxProbes %d < 1", maxProbes)
	}
	if source == nil {
		source = PoissonSource
	}
	horizon := float64(nc.Params.Steps()) * nc.Params.Delta
	if !pace.Enabled() {
		pace = core.Pacing{IntervalSec: DefaultProbeInterval}
	}
	det := detect.New(cfg)
	tbl, err := flowtable.New(nc.Rules, nc.Params.CacheSize, nc.Params.Delta)
	if err != nil {
		return DetectionOutcome{}, err
	}
	probeFlow := nc.Optimal.Flow
	probes := 0
	var out DetectionOutcome

	fire := func(at float64) {
		_, hit := tbl.Lookup(probeFlow, at)
		if !hit {
			if j, covered := nc.Rules.HighestCovering(probeFlow); covered {
				tbl.Install(j, at)
			}
		}
		_, ms := meas.ClassifyMs(hit, rng)
		det.Observe(int(probeFlow), at, ms, hit)
		probes++
		out.Seconds = at
	}
	flagged := func() bool {
		v, ok := det.IsFlagged(int(probeFlow))
		if ok {
			out.Flagged, out.Reason, out.Score = true, v.Reason, v.Score
		}
		return ok
	}

	// The attack starts after one full benign window (the defender's
	// scorers need the benign background they were trained on).
	nextProbe := horizon
	for w := 0; probes < maxProbes && !out.Flagged; w++ {
		off := float64(w) * horizon
		trace, err := source(nc.Rates, horizon, rng.Fork())
		if err != nil {
			return out, err
		}
		for _, a := range trace.Arrivals() {
			at := off + a.Time
			for nextProbe <= at && probes < maxProbes && !out.Flagged {
				fire(nextProbe)
				nextProbe += paceGap(pace, rng)
				flagged()
			}
			_, hit := tbl.Lookup(a.Flow, at)
			det.Observe(int(a.Flow), at, math.NaN(), hit)
			if !hit {
				if j, covered := nc.Rules.HighestCovering(a.Flow); covered {
					tbl.Install(j, at)
				}
			}
		}
		for nextProbe <= off+horizon && probes < maxProbes && !out.Flagged {
			fire(nextProbe)
			nextProbe += paceGap(pace, rng)
			flagged()
		}
		flagged() // a benign arrival of the probed flow can tip the score
	}
	out.Probes = probes
	return out, nil
}

// StealthRow is one point on the stealth-vs-exposure tradeoff: the
// attacker's residual accuracy with the paced schedule and what the
// defender saw of the probing session.
type StealthRow struct {
	Label    string
	Pace     core.Pacing
	Accuracy float64
	Session  DetectionOutcome
}

// StealthTradeoff sweeps stealth pacings over the same configuration:
// for each pacing it measures the multi-probe model attacker's residual
// accuracy (paced probes land later, against a further-decayed table)
// and the session detection latency at that pace. The zero pacing is
// the paper's default attacker.
func StealthTradeoff(nc *NetworkConfig, cfg detect.Config, meas Measurement, trials, attackProbes, maxProbes int, seed int64, pacings []core.Pacing) ([]StealthRow, error) {
	rows := make([]StealthRow, 0, len(pacings))
	for _, pace := range pacings {
		model, err := core.NewModelAttacker(nc.Selector, nc.Selector.AllFlows(), attackProbes, core.DecideByPosterior)
		if err != nil {
			return nil, err
		}
		model.SetPacing(pace)
		results, _, err := RunTrialsOpts(nc, []core.Attacker{model}, trials, meas, stats.NewRNG(seed), TrialOptions{Detect: &cfg})
		if err != nil {
			return nil, err
		}
		session, err := MeasureDetectionLatency(nc, cfg, meas, stats.NewRNG(seed+1), pace, maxProbes, nil)
		if err != nil {
			return nil, err
		}
		label := "default"
		if pace.Enabled() {
			label = fmt.Sprintf("pace=%.1fs jitter=%.0f%%", pace.IntervalSec, pace.JitterFrac*100)
		}
		rows = append(rows, StealthRow{Label: label, Pace: pace, Accuracy: results[0].Accuracy(), Session: session})
	}
	return rows, nil
}

// MeasureSimDetection is the virtual-time-substrate detection
// measurement: a detector on the simulated fabric's controller path,
// benign Poisson background over the Stanford-like topology, and an
// eviction prober pacing probes of one covered flow. It returns the
// probes-until-flagged latency through real (simulated) switch, link and
// controller delays rather than the abstract table model.
func MeasureSimDetection(seed int64, intervalSec float64, maxProbes int) (DetectionOutcome, error) {
	const (
		numFlows   = 16
		benignRate = 0.4
		warmup     = 20.0
	)
	universe := flows.ClientServerUniverse(flows.MakeIPv4(10, 0, 1, 0), numFlows)
	rs, err := rules.Generate(rules.DefaultGenerateConfig(0.1), stats.NewRNG(seed))
	if err != nil {
		return DetectionOutcome{}, err
	}
	sim := netsim.NewSim()
	n := netsim.NewNetwork(sim, universe, netsim.NewControllerModel(rs, controller.Options{ProcessingDelay: time.Millisecond}), netsim.DefaultLatencyModel(), stats.NewRNG(seed+1))
	if err := netsim.StanfordBackbone().Build(n, 9, 0.1); err != nil {
		return DetectionOutcome{}, err
	}
	setup, err := netsim.AttachEvaluationHosts(n, flows.MakeIPv4(10, 0, 1, 0), numFlows, "yoza_rtr", "boza_rtr")
	if err != nil {
		return DetectionOutcome{}, err
	}
	covered := rs.CoveredFlows()
	probeFlow := flows.ID(0)
	found := false
	for f := 0; f < numFlows; f++ {
		if covered.Contains(flows.ID(f)) {
			probeFlow, found = flows.ID(f), true
			break
		}
	}
	if !found {
		return DetectionOutcome{}, fmt.Errorf("experiment: policy covers no evaluation flow")
	}

	rates := make([]float64, numFlows)
	for i := range rates {
		rates[i] = benignRate
	}
	cfg := detect.DefaultConfig()
	cfg.Baseline.Rates = rates
	cfg.Baseline.DefaultRate = benignRate
	det := detect.New(cfg)
	n.SetDetector(det)

	duration := warmup + float64(maxProbes)*intervalSec + 5
	trace, err := workload.GeneratePoisson(workload.PoissonConfig{Rates: rates, Duration: duration}, stats.NewRNG(seed+2))
	if err != nil {
		return DetectionOutcome{}, err
	}
	if err := netsim.ReplayTrace(n, setup, trace, 0); err != nil {
		return DetectionOutcome{}, err
	}
	sim.RunUntil(warmup)

	prober := netsim.NewProber(n, setup)
	var out DetectionOutcome
	at := warmup
	for p := 0; p < maxProbes; p++ {
		if _, err := prober.Probe(probeFlow, at); err != nil {
			return out, err
		}
		out.Probes++
		out.Seconds = at
		at += intervalSec
		if v, ok := det.IsFlagged(int(probeFlow)); ok {
			out.Flagged, out.Reason, out.Score = true, v.Reason, v.Score
			break
		}
	}
	return out, nil
}

// DetectionReport is everything the -detect experiment measures.
type DetectionReport struct {
	Baseline     detect.Baseline
	ModelLatency DetectionOutcome // abstract table substrate, default cadence
	SimLatency   DetectionOutcome // virtual-time network substrate
	FPRPoisson   FPRResult
	FPRBursty    FPRResult
	FPRPareto    FPRResult // heavy-tailed renewal (α=1.5)
	FPRLogNormal FPRResult // log-normal renewal (σ=1.5)
	FPRFlash     FPRResult // flash-crowd spike (8× over the middle third)
	// BaselineMatched is the heavy-tail-aware baseline: the same
	// peak-provisioning trainer, but run on the deployment workload's own
	// interarrival law instead of Poisson, so the peak budget reflects the
	// bursts benign traffic actually produces. FPRParetoMatched re-measures
	// the Pareto row against it (ROADMAP item 5 sub-item: the mismatched
	// row flags ~4% of benign sources at paper scale).
	BaselineMatched  detect.Baseline
	FPRParetoMatched FPRResult
	Stealth          []StealthRow
	MaxProbes        int
	BaselineWindows  int
}

// DetectionEvalOptions parameterizes RunDetectionEval.
type DetectionEvalOptions struct {
	Params          Params
	Seed            int64
	BaselineWindows int // benign windows used to train the baseline (default 40)
	FPRTrials       int // benign-only trials per workload for the FPR (default 200)
	MaxProbes       int // probe budget per session (default 200, the acceptance bound)
	StealthTrials   int // trials per stealth pacing (default 200)
	AttackProbes    int // probes per trial for the stealth attacker (default 4)
	Telemetry       *telemetry.Registry
}

func (o *DetectionEvalOptions) fill() {
	if o.BaselineWindows == 0 {
		o.BaselineWindows = 40
	}
	if o.FPRTrials == 0 {
		o.FPRTrials = 200
	}
	if o.MaxProbes == 0 {
		o.MaxProbes = 200
	}
	if o.StealthTrials == 0 {
		o.StealthTrials = 200
	}
	if o.AttackProbes == 0 {
		o.AttackProbes = 4
	}
}

// RunDetectionEval runs the full defender evaluation: train a baseline
// on benign traffic, measure detection latency on both substrates,
// measure the benign false-positive rate under Poisson and bursty
// workloads, and sweep the stealth-pacing tradeoff.
func RunDetectionEval(opts DetectionEvalOptions) (*DetectionReport, error) {
	opts.fill()
	rng := stats.NewRNG(opts.Seed)
	var nc *NetworkConfig
	var err error
	for attempt := 0; attempt < maxConfigAttempts; attempt++ {
		nc, err = GenerateConfig(opts.Params, rng)
		if err == nil {
			break
		}
	}
	if err != nil {
		return nil, fmt.Errorf("detect eval config: %w", err)
	}

	rep := &DetectionReport{MaxProbes: opts.MaxProbes, BaselineWindows: opts.BaselineWindows}
	rep.Baseline, err = TrainDetectBaseline(nc, opts.BaselineWindows, rng.Fork(), nil)
	if err != nil {
		return nil, err
	}
	cfg := DetectConfigFor(nc, rep.Baseline)
	meas := DefaultMeasurement()

	rep.ModelLatency, err = MeasureDetectionLatency(nc, cfg, meas, rng.Fork(), core.Pacing{}, opts.MaxProbes, nil)
	if err != nil {
		return nil, err
	}
	rep.SimLatency, err = MeasureSimDetection(opts.Seed+100, 0.4, opts.MaxProbes)
	if err != nil {
		return nil, err
	}
	rep.FPRPoisson, err = BenignFPR(nc, cfg, opts.FPRTrials, rng.Fork(), PoissonSource)
	if err != nil {
		return nil, err
	}
	rep.FPRBursty, err = BenignFPR(nc, cfg, opts.FPRTrials, rng.Fork(), BurstySource(4, 2, 6))
	if err != nil {
		return nil, err
	}
	// The break-the-independence-assumption workloads: the baseline was
	// trained on Poisson traffic, so these rows measure how much the
	// defender's false-positive budget erodes when reality is heavy-tailed
	// or spiky — the deployment-honesty number.
	rep.FPRPareto, err = BenignFPR(nc, cfg, opts.FPRTrials, rng.Fork(), ParetoSource(1.5))
	if err != nil {
		return nil, err
	}
	rep.FPRLogNormal, err = BenignFPR(nc, cfg, opts.FPRTrials, rng.Fork(), LogNormalSource(1.5))
	if err != nil {
		return nil, err
	}
	horizon := float64(nc.Params.Steps()) * nc.Params.Delta
	rep.FPRFlash, err = BenignFPR(nc, cfg, opts.FPRTrials, rng.Fork(),
		ModulatedSource(workload.RateProfile{FlashAt: horizon / 3, FlashDur: horizon / 3, FlashFactor: 8}))
	if err != nil {
		return nil, err
	}
	// The heavy-tail-aware re-run: train the peak budget on Pareto
	// interarrivals themselves and measure the same row again. (These
	// forks come after every mismatched row so the numbers above stay
	// byte-stable against prior releases.)
	rep.BaselineMatched, err = TrainDetectBaseline(nc, opts.BaselineWindows, rng.Fork(), ParetoSource(1.5))
	if err != nil {
		return nil, err
	}
	rep.FPRParetoMatched, err = BenignFPR(nc, DetectConfigFor(nc, rep.BaselineMatched), opts.FPRTrials, rng.Fork(), ParetoSource(1.5))
	if err != nil {
		return nil, err
	}
	// Uniform jitter is weaker stealth than it looks: gap = I·(1+U[0,J])
	// has CV = J/(√12·(1+J/2)), which crosses the 0.3 regularity
	// threshold only near J ≈ 3. The sweep therefore pairs slowing (rate
	// evasion) with deep jitter (regularity evasion).
	rep.Stealth, err = StealthTradeoff(nc, cfg, meas, opts.StealthTrials, opts.AttackProbes, opts.MaxProbes, opts.Seed+200, []core.Pacing{
		{},
		{IntervalSec: 5, JitterFrac: 1.0},
		{IntervalSec: 30, JitterFrac: 1.0},
		{IntervalSec: 60, JitterFrac: 3.0},
	})
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// WriteDetection renders the detection report as a text table.
func WriteDetection(w io.Writer, rep *DetectionReport) error {
	p := func(format string, args ...any) (err error) {
		_, err = fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("Detection evaluation (defender's observatory)\n"); err != nil {
		return err
	}
	p("  baseline: %d benign windows, default rate %.3f/s, miss frac %.3f\n",
		rep.BaselineWindows, rep.Baseline.DefaultRate, rep.Baseline.MissFrac)
	p("  detection latency (budget %d probes):\n", rep.MaxProbes)
	p("    model substrate:  %s\n", outcomeString(rep.ModelLatency))
	p("    netsim substrate: %s\n", outcomeString(rep.SimLatency))
	p("  benign false-positive rate:\n")
	p("    poisson: %d/%d sources (%.2f%%) over %d trials\n",
		rep.FPRPoisson.Flagged, rep.FPRPoisson.Sources, 100*rep.FPRPoisson.Rate(), rep.FPRPoisson.Trials)
	p("    bursty:  %d/%d sources (%.2f%%) over %d trials\n",
		rep.FPRBursty.Flagged, rep.FPRBursty.Sources, 100*rep.FPRBursty.Rate(), rep.FPRBursty.Trials)
	p("    pareto(α=1.5):    %d/%d sources (%.2f%%) over %d trials\n",
		rep.FPRPareto.Flagged, rep.FPRPareto.Sources, 100*rep.FPRPareto.Rate(), rep.FPRPareto.Trials)
	if rep.FPRParetoMatched.Trials > 0 {
		p("    pareto, matched baseline (trained on pareto interarrivals): %d/%d sources (%.2f%%) over %d trials\n",
			rep.FPRParetoMatched.Flagged, rep.FPRParetoMatched.Sources, 100*rep.FPRParetoMatched.Rate(), rep.FPRParetoMatched.Trials)
	}
	p("    lognormal(σ=1.5): %d/%d sources (%.2f%%) over %d trials\n",
		rep.FPRLogNormal.Flagged, rep.FPRLogNormal.Sources, 100*rep.FPRLogNormal.Rate(), rep.FPRLogNormal.Trials)
	p("    flash-crowd(8×):  %d/%d sources (%.2f%%) over %d trials\n",
		rep.FPRFlash.Flagged, rep.FPRFlash.Sources, 100*rep.FPRFlash.Rate(), rep.FPRFlash.Trials)
	p("  stealth pacing tradeoff (attacker accuracy vs exposure):\n")
	for _, row := range rep.Stealth {
		if err := p("    %-24s accuracy %.3f  %s\n", row.Label, row.Accuracy, outcomeString(row.Session)); err != nil {
			return err
		}
	}
	return nil
}

func outcomeString(o DetectionOutcome) string {
	if o.Flagged {
		return fmt.Sprintf("flagged after %d probes (%.0fs, %s, score %.2f)", o.Probes, o.Seconds, o.Reason, o.Score)
	}
	return fmt.Sprintf("not flagged within %d probes (%.0fs)", o.Probes, o.Seconds)
}
