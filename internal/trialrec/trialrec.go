// Package trialrec defines the deterministic trial-recording format: a
// JSONL stream whose first line is a Header (format version, config hash,
// the generating spec, RNG seed) and whose remaining lines are one Trial
// each — the traffic window, every attacker's probes, classified outcomes,
// verdict and belief trajectory, plus any causal spans captured during the
// trial. Because every random draw in the simulator flows through seeded
// stats.RNG streams, re-running the spec reproduces the recording
// bit-for-bit; Diff pinpoints the first divergence when it does not.
//
// Import direction: experiment imports trialrec (never the reverse), so
// the spec travels as raw JSON and is interpreted by the layer that owns
// it.
package trialrec

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"flowrecon/internal/core"
	"flowrecon/internal/flows"
	"flowrecon/internal/telemetry"
	"flowrecon/internal/workload"
)

// FormatVersion identifies the recording schema. Readers reject newer
// versions rather than misinterpret them.
const FormatVersion = 1

// Header is the first JSONL line of a recording.
type Header struct {
	// Format is the schema version (FormatVersion at write time).
	Format int `json:"format"`
	// ConfigHash is the SHA-256 of Spec — a cheap identity check before a
	// full diff.
	ConfigHash string `json:"configHash"`
	// Spec is the generating specification (the experiment layer's
	// RecordingSpec), opaque at this layer.
	Spec json.RawMessage `json:"spec,omitempty"`
	// Seed is the root RNG seed of the run.
	Seed int64 `json:"seed"`
	// Trials is the number of trial lines that follow.
	Trials int `json:"trials"`
	// Attackers names the strategies in per-trial order.
	Attackers []string `json:"attackers"`
}

// AttackerTrial is one attacker's activity within one trial.
type AttackerTrial struct {
	// Name is the attacker's reported name.
	Name string `json:"name"`
	// Probes are the flows probed, in send order (resolved after the fact
	// for sequential attackers).
	Probes []flows.ID `json:"probes"`
	// Outcomes are the classified timing observations, Outcomes[i] for
	// Probes[i].
	Outcomes []bool `json:"outcomes"`
	// Lost marks probes that produced no observation (dropped by an
	// injected fault); Outcomes[i] is meaningless where Lost[i] is true.
	// Nil — and absent from the JSON — on fault-free runs, keeping those
	// recordings byte-identical to pre-fault versions.
	Lost []bool `json:"lost,omitempty"`
	// Verdict is the attacker's decision: true = "target occurred".
	Verdict bool `json:"verdict"`
	// Belief is the per-probe posterior trajectory (empty for attackers
	// without a fitted model).
	Belief []core.BeliefStep `json:"belief,omitempty"`
}

// Trial is one JSONL line after the header.
type Trial struct {
	// Trial is the 0-based trial index.
	Trial int `json:"trial"`
	// Truth is the ground truth X̂ of this window.
	Truth bool `json:"truth"`
	// Arrivals is the generated traffic window.
	Arrivals []workload.Arrival `json:"arrivals,omitempty"`
	// Attackers holds each strategy's probes/outcomes/verdict, in the
	// header's attacker order.
	Attackers []AttackerTrial `json:"attackers"`
	// Spans are the causal spans captured during the trial (replay,
	// probes, decisions), already ended.
	Spans []telemetry.Span `json:"spans,omitempty"`
}

// HashSpec returns the hex SHA-256 of a spec blob ("" for empty).
func HashSpec(spec []byte) string {
	if len(spec) == 0 {
		return ""
	}
	sum := sha256.Sum256(spec)
	return hex.EncodeToString(sum[:])
}

// Recorder streams a recording to a writer, one JSONL line per trial. All
// methods are safe on a nil *Recorder, so the trial loop can thread one
// pointer unconditionally and pay nothing when recording is off.
type Recorder struct {
	w      *bufio.Writer
	closer io.Closer
	cur    *Trial
	trials int
	err    error
}

// NewRecorder writes the header (stamped with FormatVersion and the spec
// hash) and returns a recorder for the trial lines. If w is also an
// io.Closer, Close closes it.
func NewRecorder(w io.Writer, h Header) (*Recorder, error) {
	h.Format = FormatVersion
	h.ConfigHash = HashSpec(h.Spec)
	r := &Recorder{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		r.closer = c
	}
	if err := r.writeLine(h); err != nil {
		return nil, err
	}
	return r, nil
}

// Create opens path for writing and returns a recorder over it.
func Create(path string, h Header) (*Recorder, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("trialrec: %w", err)
	}
	r, err := NewRecorder(f, h)
	if err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

func (r *Recorder) writeLine(v any) error {
	if r.err != nil {
		return r.err
	}
	b, err := json.Marshal(v)
	if err == nil {
		_, err = r.w.Write(append(b, '\n'))
	}
	if err != nil {
		r.err = fmt.Errorf("trialrec: %w", err)
	}
	return r.err
}

// Enabled reports whether the recorder captures anything (false for nil).
func (r *Recorder) Enabled() bool { return r != nil }

// BeginTrial opens a trial record. Arrivals are copied.
func (r *Recorder) BeginTrial(trial int, truth bool, arrivals []workload.Arrival) {
	if r == nil {
		return
	}
	r.cur = &Trial{
		Trial:    trial,
		Truth:    truth,
		Arrivals: append([]workload.Arrival(nil), arrivals...),
	}
}

// Attacker appends one attacker's activity to the open trial.
func (r *Recorder) Attacker(at AttackerTrial) {
	if r == nil || r.cur == nil {
		return
	}
	r.cur.Attackers = append(r.cur.Attackers, at)
}

// Spans attaches causal spans to the open trial.
func (r *Recorder) Spans(spans []telemetry.Span) {
	if r == nil || r.cur == nil || len(spans) == 0 {
		return
	}
	r.cur.Spans = append(r.cur.Spans, spans...)
}

// EndTrial writes the open trial line.
func (r *Recorder) EndTrial() error {
	if r == nil || r.cur == nil {
		return nil
	}
	t := r.cur
	r.cur = nil
	r.trials++
	return r.writeLine(t)
}

// Close flushes the stream (and closes the underlying file if the
// recorder owns one). Safe on nil.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	if r.w != nil {
		if err := r.w.Flush(); err != nil && r.err == nil {
			r.err = fmt.Errorf("trialrec: %w", err)
		}
	}
	if r.closer != nil {
		if err := r.closer.Close(); err != nil && r.err == nil {
			r.err = fmt.Errorf("trialrec: %w", err)
		}
		r.closer = nil
	}
	return r.err
}

// Trials returns the number of trial lines written so far (0 for nil).
func (r *Recorder) Trials() int {
	if r == nil {
		return 0
	}
	return r.trials
}

// Recording is a fully-parsed recording.
type Recording struct {
	Header Header
	Trials []Trial
}

// Read parses a JSONL recording stream.
func Read(rd io.Reader) (*Recording, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<26) // span-heavy trials can be long lines
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("trialrec: %w", err)
		}
		return nil, fmt.Errorf("trialrec: empty recording")
	}
	var rec Recording
	if err := json.Unmarshal(sc.Bytes(), &rec.Header); err != nil {
		return nil, fmt.Errorf("trialrec: header: %w", err)
	}
	if rec.Header.Format < 1 || rec.Header.Format > FormatVersion {
		return nil, fmt.Errorf("trialrec: unsupported format %d (reader supports ≤ %d)", rec.Header.Format, FormatVersion)
	}
	for line := 2; sc.Scan(); line++ {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var t Trial
		if err := json.Unmarshal(sc.Bytes(), &t); err != nil {
			return nil, fmt.Errorf("trialrec: line %d: %w", line, err)
		}
		rec.Trials = append(rec.Trials, t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trialrec: %w", err)
	}
	return &rec, nil
}

// ReadFile parses the recording at path.
func ReadFile(path string) (*Recording, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trialrec: %w", err)
	}
	defer f.Close()
	return Read(f)
}

// Trace reconstitutes trial t's traffic window for replay.
func (t Trial) Trace() *workload.Trace { return workload.NewTrace(t.Arrivals) }

// FindAttacker returns the named attacker's record within the trial.
func (t Trial) FindAttacker(name string) (AttackerTrial, bool) {
	for _, at := range t.Attackers {
		if at.Name == name {
			return at, true
		}
	}
	return AttackerTrial{}, false
}
