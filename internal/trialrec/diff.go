package trialrec

import (
	"fmt"
	"math"

	"flowrecon/internal/workload"
)

// Divergence locates one difference between two recordings. Trial and
// Probe are -1 when the divergence is not at that granularity (e.g. a
// header mismatch).
type Divergence struct {
	// Trial is the 0-based trial index, or -1 for header-level.
	Trial int `json:"trial"`
	// Attacker names the strategy, "" for trial-level differences.
	Attacker string `json:"attacker,omitempty"`
	// Probe is the 0-based probe index, or -1 when not probe-level.
	Probe int `json:"probe"`
	// Field names what differed (e.g. "outcome", "verdict", "truth").
	Field string `json:"field"`
	// A and B render the two values.
	A string `json:"a"`
	B string `json:"b"`
}

// String formats the divergence for terminal output.
func (d Divergence) String() string {
	loc := "header"
	if d.Trial >= 0 {
		loc = fmt.Sprintf("trial %d", d.Trial)
		if d.Attacker != "" {
			loc += " " + d.Attacker
		}
		if d.Probe >= 0 {
			loc += fmt.Sprintf(" probe %d", d.Probe)
		}
	}
	return fmt.Sprintf("%s: %s %s ≠ %s", loc, d.Field, d.A, d.B)
}

// Diff compares two recordings and returns every divergence, in
// encounter order: header first, then trial by trial, attacker by
// attacker, probe by probe — so the first element is the earliest point
// the runs separated. Spans and belief snapshots are excluded (they
// carry wall-clock annotations); outcome-bearing fields — truth,
// arrivals, probes, outcomes, verdicts, posteriors — are all compared.
// An empty result means the recordings describe identical runs.
func Diff(a, b *Recording) []Divergence {
	var ds []Divergence
	add := func(trial int, attacker string, probe int, field, av, bv string) {
		ds = append(ds, Divergence{Trial: trial, Attacker: attacker, Probe: probe, Field: field, A: av, B: bv})
	}

	if a.Header.ConfigHash != b.Header.ConfigHash {
		add(-1, "", -1, "configHash", a.Header.ConfigHash, b.Header.ConfigHash)
	}
	if a.Header.Seed != b.Header.Seed {
		add(-1, "", -1, "seed", fmt.Sprint(a.Header.Seed), fmt.Sprint(b.Header.Seed))
	}
	if len(a.Trials) != len(b.Trials) {
		add(-1, "", -1, "trials", fmt.Sprint(len(a.Trials)), fmt.Sprint(len(b.Trials)))
	}

	n := min(len(a.Trials), len(b.Trials))
	for i := 0; i < n; i++ {
		ta, tb := a.Trials[i], b.Trials[i]
		if ta.Truth != tb.Truth {
			add(i, "", -1, "truth", fmt.Sprint(ta.Truth), fmt.Sprint(tb.Truth))
		}
		if !sameArrivals(ta.Arrivals, tb.Arrivals) {
			add(i, "", -1, "arrivals", fmt.Sprintf("%d arrivals", len(ta.Arrivals)), fmt.Sprintf("%d arrivals", len(tb.Arrivals)))
		}
		m := min(len(ta.Attackers), len(tb.Attackers))
		if len(ta.Attackers) != len(tb.Attackers) {
			add(i, "", -1, "attackers", fmt.Sprint(len(ta.Attackers)), fmt.Sprint(len(tb.Attackers)))
		}
		for j := 0; j < m; j++ {
			diffAttacker(i, ta.Attackers[j], tb.Attackers[j], add)
		}
	}
	return ds
}

func diffAttacker(trial int, a, b AttackerTrial, add func(int, string, int, string, string, string)) {
	name := a.Name
	if a.Name != b.Name {
		add(trial, name, -1, "name", a.Name, b.Name)
		return // nothing below is comparable across different strategies
	}
	np := min(len(a.Probes), len(b.Probes))
	if len(a.Probes) != len(b.Probes) {
		add(trial, name, -1, "probes", fmt.Sprint(len(a.Probes)), fmt.Sprint(len(b.Probes)))
	}
	for p := 0; p < np; p++ {
		if a.Probes[p] != b.Probes[p] {
			add(trial, name, p, "probe flow", fmt.Sprint(a.Probes[p]), fmt.Sprint(b.Probes[p]))
		}
		if la, lb := lostAt(a.Lost, p), lostAt(b.Lost, p); la != lb {
			add(trial, name, p, "lost", fmt.Sprint(la), fmt.Sprint(lb))
		}
		if p < len(a.Outcomes) && p < len(b.Outcomes) && a.Outcomes[p] != b.Outcomes[p] {
			if !lostAt(a.Lost, p) || !lostAt(b.Lost, p) {
				add(trial, name, p, "outcome", outcomeStr(a.Outcomes[p]), outcomeStr(b.Outcomes[p]))
			}
		}
		if p < len(a.Belief) && p < len(b.Belief) {
			if pa, pb := a.Belief[p].Posterior, b.Belief[p].Posterior; math.Abs(pa-pb) > 1e-12 {
				add(trial, name, p, "posterior", fmt.Sprintf("%.9f", pa), fmt.Sprintf("%.9f", pb))
			}
		}
	}
	if a.Verdict != b.Verdict {
		add(trial, name, -1, "verdict", fmt.Sprint(a.Verdict), fmt.Sprint(b.Verdict))
	}
}

// lostAt reports whether probe p was lost; indexes past the mask (or a
// nil mask, the fault-free case) read as delivered.
func lostAt(lost []bool, p int) bool {
	return p < len(lost) && lost[p]
}

func sameArrivals(a, b []workload.Arrival) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func outcomeStr(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
