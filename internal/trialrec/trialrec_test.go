package trialrec

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"flowrecon/internal/core"
	"flowrecon/internal/flows"
	"flowrecon/internal/telemetry"
	"flowrecon/internal/workload"
)

func sampleRecording(t *testing.T, seed int64, flipOutcome bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	rec, err := NewRecorder(&buf, Header{
		Spec:      json.RawMessage(`{"trials":2}`),
		Seed:      seed,
		Trials:    2,
		Attackers: []string{"naive", "model(m=1)"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 2; trial++ {
		rec.BeginTrial(trial, trial == 0, []workload.Arrival{{Time: 0.5, Flow: 1}, {Time: 1.25, Flow: 0}})
		rec.Attacker(AttackerTrial{Name: "naive", Probes: []flows.ID{0}, Outcomes: []bool{true}, Verdict: true})
		out := trial == 0
		if flipOutcome && trial == 1 {
			out = !out
		}
		rec.Attacker(AttackerTrial{
			Name: "model(m=1)", Probes: []flows.ID{1}, Outcomes: []bool{out}, Verdict: out,
			Belief: []core.BeliefStep{{Index: 0, Probe: 1, Hit: out, Prior: 0.5, Posterior: 0.9}},
		})
		rec.Spans([]telemetry.Span{{Trace: 1, ID: 1, Name: "trial", Start: 0, End: 15}})
		if err := rec.EndTrial(); err != nil {
			t.Fatal(err)
		}
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	raw := sampleRecording(t, 7, false)
	if lines := bytes.Count(raw, []byte{'\n'}); lines != 3 {
		t.Fatalf("want 3 JSONL lines (header + 2 trials), got %d", lines)
	}
	rec, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Header.Format != FormatVersion || rec.Header.Seed != 7 {
		t.Fatalf("header = %+v", rec.Header)
	}
	if rec.Header.ConfigHash != HashSpec([]byte(`{"trials":2}`)) {
		t.Fatalf("config hash %q", rec.Header.ConfigHash)
	}
	if len(rec.Trials) != 2 {
		t.Fatalf("trials = %d", len(rec.Trials))
	}
	tr := rec.Trials[0]
	if !tr.Truth || len(tr.Arrivals) != 2 || len(tr.Attackers) != 2 || len(tr.Spans) != 1 {
		t.Fatalf("trial 0 = %+v", tr)
	}
	if at, ok := tr.FindAttacker("model(m=1)"); !ok || len(at.Belief) != 1 || at.Belief[0].Posterior != 0.9 {
		t.Fatalf("model attacker record wrong: %+v", at)
	}
	if _, ok := tr.FindAttacker("ghost"); ok {
		t.Fatal("found nonexistent attacker")
	}
	// Trace round-trips the arrivals in time order.
	trace := tr.Trace()
	if trace.Len() != 2 || !trace.OccurredWithin(1, 15, 15) {
		t.Fatalf("trace reconstruction wrong: %d arrivals", trace.Len())
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	r.BeginTrial(0, true, nil)
	r.Attacker(AttackerTrial{Name: "x"})
	r.Spans([]telemetry.Span{{ID: 1}})
	if err := r.EndTrial(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if r.Trials() != 0 {
		t.Fatal("nil recorder counted trials")
	}
}

func TestReadRejectsBadInput(t *testing.T) {
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Fatal("empty recording should error")
	}
	if _, err := Read(strings.NewReader("not json\n")); err == nil {
		t.Fatal("malformed header should error")
	}
	future := `{"format":99,"trials":0}` + "\n"
	if _, err := Read(strings.NewReader(future)); err == nil {
		t.Fatal("future format should be rejected")
	}
	bad := `{"format":1,"trials":1}` + "\n" + `{"trial":` + "\n"
	if _, err := Read(strings.NewReader(bad)); err == nil {
		t.Fatal("malformed trial line should error")
	}
}

func TestDiffIdentical(t *testing.T) {
	a, err := Read(bytes.NewReader(sampleRecording(t, 7, false)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Read(bytes.NewReader(sampleRecording(t, 7, false)))
	if err != nil {
		t.Fatal(err)
	}
	if ds := Diff(a, b); len(ds) != 0 {
		t.Fatalf("identical recordings diverge: %v", ds)
	}
}

func TestDiffPinpointsFirstDivergingProbe(t *testing.T) {
	a, err := Read(bytes.NewReader(sampleRecording(t, 7, false)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Read(bytes.NewReader(sampleRecording(t, 7, true)))
	if err != nil {
		t.Fatal(err)
	}
	ds := Diff(a, b)
	if len(ds) == 0 {
		t.Fatal("diff missed the flipped outcome")
	}
	first := ds[0]
	if first.Trial != 1 || first.Attacker != "model(m=1)" || first.Probe != 0 || first.Field != "outcome" {
		t.Fatalf("first divergence = %+v", first)
	}
	if s := first.String(); !strings.Contains(s, "trial 1") || !strings.Contains(s, "probe 0") {
		t.Fatalf("divergence rendering: %q", s)
	}
}

func TestDiffHeaderLevel(t *testing.T) {
	a, _ := Read(bytes.NewReader(sampleRecording(t, 7, false)))
	b, _ := Read(bytes.NewReader(sampleRecording(t, 8, false)))
	ds := Diff(a, b)
	if len(ds) == 0 || ds[0].Trial != -1 || ds[0].Field != "seed" {
		t.Fatalf("seed divergence not flagged first: %v", ds)
	}
	if s := ds[0].String(); !strings.Contains(s, "header") {
		t.Fatalf("header divergence rendering: %q", s)
	}
}

func TestHashSpec(t *testing.T) {
	if HashSpec(nil) != "" {
		t.Fatal("empty spec should hash to empty string")
	}
	if HashSpec([]byte("a")) == HashSpec([]byte("b")) {
		t.Fatal("hash collision on trivial inputs")
	}
	if len(HashSpec([]byte("a"))) != 64 {
		t.Fatal("expected hex sha256")
	}
}
