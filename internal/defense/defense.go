// Package defense implements the paper's third countermeasure (§VII-B3):
// using the attacker's own Markov model as a tool to measure how much a
// rule structure leaks about each flow, and transforming the structure
// (merging rules into coarser wildcards) to reduce that leakage while
// preserving forwarding behaviour at the granularity the operator accepts.
package defense

import (
	"fmt"
	"sort"
	"sync"

	"flowrecon/internal/core"
	"flowrecon/internal/flows"
	"flowrecon/internal/rules"
)

// FlowLeakage is the leakage measurement for one potential target flow:
// the information (in bits) the best single probe reveals about whether
// that flow occurred within the window.
type FlowLeakage struct {
	Target       flows.ID
	BestProbe    flows.ID
	Gain         float64
	PriorEntropy float64
}

// Profile is the leakage profile of a rule structure.
type Profile struct {
	PerFlow []FlowLeakage
	// MaxGain is the worst-case leakage over target flows.
	MaxGain float64
	// MeanGain averages over target flows.
	MeanGain float64
}

// MeasureLeakage evaluates, for every covered flow as a hypothetical
// target, the information gain of the attacker's optimal probe — the
// quantity a defender wants small everywhere. steps is the attack window
// T in model steps.
func MeasureLeakage(cfg core.Config, steps int, params core.USumParams) (*Profile, error) {
	return MeasureLeakageWorkers(cfg, steps, params, 1)
}

// MeasureLeakageWorkers is MeasureLeakage with the per-target selector
// evaluations fanned over workers goroutines. Targets are independent
// (the unconditional chain is shared read-only; each target builds only
// its conditioned twin through the model cache), and the profile is
// assembled in flow order, so every worker count returns the same
// profile.
func MeasureLeakageWorkers(cfg core.Config, steps int, params core.USumParams, workers int) (*Profile, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	model, err := core.CachedCompactModel(cfg, params)
	if err != nil {
		return nil, err
	}
	covered := cfg.Rules.CoveredFlows()
	var targets []flows.ID
	for f := 0; f < len(cfg.Rates); f++ {
		if covered.Contains(flows.ID(f)) {
			targets = append(targets, flows.ID(f))
		}
	}
	perFlow := make([]*FlowLeakage, len(targets))
	errs := make([]error, len(targets))
	measure := func(i int) {
		sel, err := core.NewSelectorWithModel(model, cfg, targets[i], steps, params)
		if err != nil {
			errs[i] = err
			return
		}
		best, ok := sel.Best(sel.AllFlows())
		if !ok {
			return
		}
		perFlow[i] = &FlowLeakage{
			Target:       targets[i],
			BestProbe:    best.Flow,
			Gain:         best.Gain,
			PriorEntropy: sel.PriorEntropy(),
		}
	}
	if workers > len(targets) {
		workers = len(targets)
	}
	if workers <= 1 {
		for i := range targets {
			measure(i)
		}
	} else {
		var wg sync.WaitGroup
		work := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range work {
					measure(i)
				}
			}()
		}
		for i := range targets {
			work <- i
		}
		close(work)
		wg.Wait()
	}
	prof := &Profile{}
	for i := range targets {
		if errs[i] != nil {
			return nil, errs[i]
		}
		if perFlow[i] != nil {
			prof.PerFlow = append(prof.PerFlow, *perFlow[i])
		}
	}
	for _, fl := range prof.PerFlow {
		if fl.Gain > prof.MaxGain {
			prof.MaxGain = fl.Gain
		}
		prof.MeanGain += fl.Gain
	}
	if len(prof.PerFlow) > 0 {
		prof.MeanGain /= float64(len(prof.PerFlow))
	}
	return prof, nil
}

// MergeRules returns a new rule set in which rules a and b are replaced by
// one rule covering their union, keeping the higher priority and the
// longer timeout (so no flow loses coverage and no rule expires sooner
// than before). This is the "merging rules" transform of §VII-B3: coarser
// rules are installed by more flows, so a probe hit identifies the
// target's activity less precisely.
func MergeRules(rs *rules.Set, a, b int) (*rules.Set, error) {
	if a == b || a < 0 || b < 0 || a >= rs.Len() || b >= rs.Len() {
		return nil, fmt.Errorf("defense: bad merge pair (%d, %d)", a, b)
	}
	ra, rb := rs.Rule(a), rs.Rule(b)
	merged := rules.Rule{
		Name:     ra.Name + "+" + rb.Name,
		Cover:    ra.Cover.Union(rb.Cover),
		Priority: maxInt(ra.Priority, rb.Priority),
		Timeout:  maxInt(ra.Timeout, rb.Timeout),
		Kind:     ra.Kind,
	}
	var out []rules.Rule
	for _, r := range rs.Rules() {
		if r.ID == a || r.ID == b {
			continue
		}
		out = append(out, r)
	}
	out = append(out, merged)
	return rules.NewSet(out)
}

// MergeCandidates lists the rule pairs worth trying to merge: pairs whose
// covers overlap or whose priorities are adjacent (merging unrelated rules
// only destroys policy granularity without confusing the attacker's
// dependency reasoning).
func MergeCandidates(rs *rules.Set) [][2]int {
	byPrio := rs.ByPriority()
	var out [][2]int
	seen := map[[2]int]bool{}
	add := func(a, b int) {
		if a > b {
			a, b = b, a
		}
		k := [2]int{a, b}
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	for a := 0; a < rs.Len(); a++ {
		for b := a + 1; b < rs.Len(); b++ {
			if rs.Rule(a).Cover.Overlaps(rs.Rule(b).Cover) {
				add(a, b)
			}
		}
	}
	for i := 0; i+1 < len(byPrio); i++ {
		add(byPrio[i], byPrio[i+1])
	}
	return out
}

// CoarsenStep is one greedy coarsening move.
type CoarsenStep struct {
	MergedA, MergedB int // rule IDs in the pre-merge set
	Rules            *rules.Set
	Profile          *Profile
}

// Coarsen greedily merges rule pairs, each round picking the merge that
// minimizes the worst-case leakage, until the leakage target is met, no
// merge helps, or maxMerges is exhausted. It returns the sequence of
// accepted steps (possibly empty when the structure is already tight).
func Coarsen(cfg core.Config, steps int, params core.USumParams, targetMaxGain float64, maxMerges int) ([]CoarsenStep, error) {
	current := cfg
	baseline, err := MeasureLeakage(current, steps, params)
	if err != nil {
		return nil, err
	}
	best := baseline.MaxGain
	var out []CoarsenStep
	for round := 0; round < maxMerges && best > targetMaxGain && current.Rules.Len() > 1; round++ {
		type candidate struct {
			pair    [2]int
			rules   *rules.Set
			profile *Profile
		}
		var winner *candidate
		for _, pair := range MergeCandidates(current.Rules) {
			merged, err := MergeRules(current.Rules, pair[0], pair[1])
			if err != nil {
				continue
			}
			trial := current
			trial.Rules = merged
			prof, err := MeasureLeakage(trial, steps, params)
			if err != nil {
				continue
			}
			if winner == nil || prof.MaxGain < winner.profile.MaxGain {
				winner = &candidate{pair: pair, rules: merged, profile: prof}
			}
		}
		if winner == nil || winner.profile.MaxGain >= best {
			break // no merge reduces the worst-case leakage
		}
		current.Rules = winner.rules
		best = winner.profile.MaxGain
		out = append(out, CoarsenStep{
			MergedA: winner.pair[0],
			MergedB: winner.pair[1],
			Rules:   winner.rules,
			Profile: winner.profile,
		})
	}
	return out, nil
}

// RankTargets orders the profile's flows by descending leakage — the
// flows an operator should worry about first.
func (p *Profile) RankTargets() []FlowLeakage {
	out := make([]FlowLeakage, len(p.PerFlow))
	copy(out, p.PerFlow)
	sort.Slice(out, func(i, j int) bool { return out[i].Gain > out[j].Gain })
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
