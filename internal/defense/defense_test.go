package defense

import (
	"testing"

	"flowrecon/internal/core"
	"flowrecon/internal/flows"
	"flowrecon/internal/rules"
)

// fig2cConfig: the paper's Figure 2c structure, which leaks strongly
// about f1 (probe f2 certifies rule1).
func fig2cConfig(t *testing.T) core.Config {
	t.Helper()
	rs, err := rules.NewSet([]rules.Rule{
		{Name: "rule1", Cover: flows.SetOf(0, 1), Priority: 2, Timeout: 6},
		{Name: "rule2", Cover: flows.SetOf(0, 2), Priority: 1, Timeout: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	return core.Config{
		Rules:     rs,
		Rates:     []float64{0.07, 0.02, 1.2},
		Delta:     0.25,
		CacheSize: 2,
	}
}

func TestMeasureLeakage(t *testing.T) {
	cfg := fig2cConfig(t)
	prof, err := MeasureLeakage(cfg, 40, core.DefaultUSumParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.PerFlow) != 3 {
		t.Fatalf("profiled %d flows", len(prof.PerFlow))
	}
	if prof.MaxGain <= 0 {
		t.Fatal("structure reported as leak-free")
	}
	if prof.MeanGain > prof.MaxGain {
		t.Fatal("mean exceeds max")
	}
	for _, fl := range prof.PerFlow {
		if fl.Gain < 0 || fl.Gain > fl.PriorEntropy+1e-9 {
			t.Fatalf("flow %d: gain %v outside [0, H=%v]", fl.Target, fl.Gain, fl.PriorEntropy)
		}
	}
	ranked := prof.RankTargets()
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Gain > ranked[i-1].Gain {
			t.Fatal("ranking not descending")
		}
	}
}

func TestMergeRules(t *testing.T) {
	cfg := fig2cConfig(t)
	merged, err := MergeRules(cfg.Rules, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() != 1 {
		t.Fatalf("len = %d", merged.Len())
	}
	r := merged.Rule(0)
	if !r.Cover.Equal(flows.SetOf(0, 1, 2)) {
		t.Fatalf("merged cover = %v", r.Cover)
	}
	if r.Priority != 2 || r.Timeout != 6 {
		t.Fatalf("merged rule = %+v", r)
	}
	// Coverage must be preserved: every previously covered flow stays
	// covered.
	if !cfg.Rules.CoveredFlows().Subset(merged.CoveredFlows()) {
		t.Fatal("merge lost coverage")
	}
}

func TestMergeRulesRejectsBadPairs(t *testing.T) {
	cfg := fig2cConfig(t)
	if _, err := MergeRules(cfg.Rules, 0, 0); err == nil {
		t.Fatal("self-merge accepted")
	}
	if _, err := MergeRules(cfg.Rules, 0, 9); err == nil {
		t.Fatal("out-of-range merge accepted")
	}
}

func TestMergeReducesLeakage(t *testing.T) {
	// The §VII-B3 claim on Figure 2c: collapsing the two overlapping
	// rules into one coarse rule removes the certificate probe, so the
	// attacker's best gain about f1 must drop.
	cfg := fig2cConfig(t)
	before, err := MeasureLeakage(cfg, 40, core.DefaultUSumParams())
	if err != nil {
		t.Fatal(err)
	}
	merged, err := MergeRules(cfg.Rules, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	after := cfg
	after.Rules = merged
	profAfter, err := MeasureLeakage(after, 40, core.DefaultUSumParams())
	if err != nil {
		t.Fatal(err)
	}
	if profAfter.MaxGain >= before.MaxGain {
		t.Fatalf("merge did not reduce leakage: %v → %v", before.MaxGain, profAfter.MaxGain)
	}
}

func TestMergeCandidates(t *testing.T) {
	cfg := fig2cConfig(t)
	cands := MergeCandidates(cfg.Rules)
	if len(cands) != 1 || cands[0] != [2]int{0, 1} {
		t.Fatalf("candidates = %v", cands)
	}
	// Disjoint rules with adjacent priorities are still candidates.
	rs, err := rules.NewSet([]rules.Rule{
		{Cover: flows.SetOf(0), Priority: 2, Timeout: 3},
		{Cover: flows.SetOf(1), Priority: 1, Timeout: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := MergeCandidates(rs); len(got) != 1 {
		t.Fatalf("adjacent-priority candidates = %v", got)
	}
}

func TestCoarsen(t *testing.T) {
	cfg := fig2cConfig(t)
	steps, err := Coarsen(cfg, 40, core.DefaultUSumParams(), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 {
		t.Fatal("no coarsening step accepted on a leaky structure")
	}
	last := steps[len(steps)-1]
	before, err := MeasureLeakage(cfg, 40, core.DefaultUSumParams())
	if err != nil {
		t.Fatal(err)
	}
	if last.Profile.MaxGain >= before.MaxGain {
		t.Fatalf("coarsening did not reduce leakage: %v → %v", before.MaxGain, last.Profile.MaxGain)
	}
	// Behaviour preservation: coverage never shrinks.
	if !cfg.Rules.CoveredFlows().Subset(last.Rules.CoveredFlows()) {
		t.Fatal("coarsening lost coverage")
	}
}

func TestCoarsenAlreadyTight(t *testing.T) {
	cfg := fig2cConfig(t)
	// With an absurdly generous leakage target no merge is needed.
	steps, err := Coarsen(cfg, 40, core.DefaultUSumParams(), 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 0 {
		t.Fatalf("unnecessary merges: %d", len(steps))
	}
}

func TestMeasureLeakageRejectsBadConfig(t *testing.T) {
	if _, err := MeasureLeakage(core.Config{}, 10, core.DefaultUSumParams()); err == nil {
		t.Fatal("bad config accepted")
	}
}

// TestMeasureLeakageWorkersIdentical: the parallel profiler must return
// exactly the serial profile — targets are independent and assembled in
// flow order.
func TestMeasureLeakageWorkersIdentical(t *testing.T) {
	cfg := fig2cConfig(t)
	serial, err := MeasureLeakageWorkers(cfg, 40, core.DefaultUSumParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := MeasureLeakageWorkers(cfg, 40, core.DefaultUSumParams(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.PerFlow) != len(parallel.PerFlow) {
		t.Fatalf("profile lengths differ: %d vs %d", len(serial.PerFlow), len(parallel.PerFlow))
	}
	for i := range serial.PerFlow {
		if serial.PerFlow[i] != parallel.PerFlow[i] {
			t.Fatalf("flow %d differs: %+v vs %+v", i, serial.PerFlow[i], parallel.PerFlow[i])
		}
	}
	if serial.MaxGain != parallel.MaxGain || serial.MeanGain != parallel.MeanGain {
		t.Fatalf("aggregates differ: (%v,%v) vs (%v,%v)", serial.MaxGain, serial.MeanGain, parallel.MaxGain, parallel.MeanGain)
	}
}
