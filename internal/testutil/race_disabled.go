//go:build !race

// Package testutil holds small helpers shared by test files across
// packages. It contains no production code.
package testutil

// RaceEnabled reports whether the binary was built with the race
// detector. Allocation-count assertions (testing.AllocsPerRun gates) skip
// under race instrumentation, which inserts its own allocations.
const RaceEnabled = false
