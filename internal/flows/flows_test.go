package flows

import (
	"testing"
	"testing/quick"
)

func TestParseIPv4(t *testing.T) {
	cases := []struct {
		in   string
		want IPv4
		ok   bool
	}{
		{"10.0.1.0", MakeIPv4(10, 0, 1, 0), true},
		{"255.255.255.255", MakeIPv4(255, 255, 255, 255), true},
		{"0.0.0.0", 0, true},
		{"10.0.1", 0, false},
		{"10.0.1.256", 0, false},
		{"a.b.c.d", 0, false},
	}
	for _, c := range cases {
		got, err := ParseIPv4(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseIPv4(%q) err = %v", c.in, err)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseIPv4(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		ip := IPv4(v)
		back, err := ParseIPv4(ip.String())
		return err == nil && back == ip
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProtoString(t *testing.T) {
	if ProtoICMP.String() != "icmp" || ProtoTCP.String() != "tcp" || ProtoUDP.String() != "udp" {
		t.Fatal("bad proto names")
	}
	if Proto(99).String() != "99" {
		t.Fatal("bad unknown proto name")
	}
}

func TestUniverse(t *testing.T) {
	u := NewUniverse()
	ta := FiveTuple{Src: MakeIPv4(10, 0, 1, 0), Dst: MakeIPv4(10, 0, 1, 16), Proto: ProtoICMP}
	tb := FiveTuple{Src: MakeIPv4(10, 0, 1, 1), Dst: MakeIPv4(10, 0, 1, 16), Proto: ProtoICMP}
	a := u.Add("a", ta)
	b := u.Add("b", tb)
	if a == b {
		t.Fatal("distinct tuples share an ID")
	}
	if again := u.Add("a2", ta); again != a {
		t.Fatal("re-adding a tuple minted a new ID")
	}
	if u.Size() != 2 {
		t.Fatalf("size = %d", u.Size())
	}
	if got, ok := u.Lookup(tb); !ok || got != b {
		t.Fatal("lookup failed")
	}
	if _, ok := u.Lookup(FiveTuple{}); ok {
		t.Fatal("lookup of unregistered tuple succeeded")
	}
	if u.Tuple(a) != ta || u.Name(a) != "a" {
		t.Fatal("tuple/name accessors broken")
	}
	if all := u.All(); all.Len() != 2 || !all.Contains(a) || !all.Contains(b) {
		t.Fatalf("All() = %v", all)
	}
}

func TestClientServerUniverse(t *testing.T) {
	u := ClientServerUniverse(MakeIPv4(10, 0, 1, 0), 16)
	if u.Size() != 16 {
		t.Fatalf("size = %d", u.Size())
	}
	for i := 0; i < 16; i++ {
		tup := u.Tuple(ID(i))
		if tup.Src != MakeIPv4(10, 0, 1, byte(i)) {
			t.Errorf("flow %d src = %v", i, tup.Src)
		}
		if tup.Dst != MakeIPv4(10, 0, 1, 16) {
			t.Errorf("flow %d dst = %v", i, tup.Dst)
		}
	}
}

func TestSetBasics(t *testing.T) {
	s := SetOf(1, 3, 70)
	if s.Len() != 3 || !s.Contains(70) || s.Contains(2) {
		t.Fatalf("set = %v", s)
	}
	s.Remove(3)
	if s.Contains(3) || s.Len() != 2 {
		t.Fatalf("after remove: %v", s)
	}
	s.Remove(200) // out of range: must not panic
	if s.String() != "{1,70}" {
		t.Fatalf("String = %q", s.String())
	}
	var zero Set
	if !zero.Empty() || zero.Len() != 0 {
		t.Fatal("zero set not empty")
	}
	zero.Add(5)
	if !zero.Contains(5) {
		t.Fatal("zero set did not grow")
	}
}

func TestSetAlgebra(t *testing.T) {
	a := SetOf(0, 1, 2, 65)
	b := SetOf(2, 3, 65)
	if u := a.Union(b); u.Len() != 5 || !u.Contains(3) {
		t.Fatalf("union = %v", u)
	}
	if i := a.Intersect(b); !i.Equal(SetOf(2, 65)) {
		t.Fatalf("intersect = %v", i)
	}
	if m := a.Minus(b); !m.Equal(SetOf(0, 1)) {
		t.Fatalf("minus = %v", m)
	}
	if !a.Overlaps(b) || a.Overlaps(SetOf(99)) {
		t.Fatal("overlaps broken")
	}
	if !SetOf(2).Subset(a) || SetOf(9).Subset(a) {
		t.Fatal("subset broken")
	}
	c := a.Clone()
	c.SubtractInPlace(b)
	if !c.Equal(SetOf(0, 1)) {
		t.Fatalf("SubtractInPlace = %v", c)
	}
	c.UnionInPlace(b)
	if !c.Equal(SetOf(0, 1, 2, 3, 65)) {
		t.Fatalf("UnionInPlace = %v", c)
	}
	// Clone must be independent.
	d := a.Clone()
	d.Add(7)
	if a.Contains(7) {
		t.Fatal("clone aliased original")
	}
}

func TestSetEqualDifferentLengths(t *testing.T) {
	a := SetOf(1)
	b := NewSet(200)
	b.Add(1)
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("equality should ignore trailing zero words")
	}
	b.Add(150)
	if a.Equal(b) || b.Equal(a) {
		t.Fatal("sets differing in a high word compare equal")
	}
}

func TestSetIDsAndForEach(t *testing.T) {
	s := SetOf(5, 1, 64)
	ids := s.IDs()
	want := []ID{1, 5, 64}
	if len(ids) != 3 {
		t.Fatalf("ids = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
}

func TestSumRates(t *testing.T) {
	rates := []float64{0.5, 1, 2, 4}
	s := SetOf(0, 2)
	if got := s.SumRates(rates); got != 2.5 {
		t.Fatalf("SumRates = %v", got)
	}
	var empty Set
	if got := empty.SumRates(rates); got != 0 {
		t.Fatalf("empty SumRates = %v", got)
	}
}

func TestSetPropertyDeMorgan(t *testing.T) {
	// (a ∪ b) \ c == (a\c) ∪ (b\c) over a small universe.
	f := func(aw, bw, cw uint16) bool {
		mk := func(w uint16) Set {
			var s Set
			for i := 0; i < 16; i++ {
				if w&(1<<uint(i)) != 0 {
					s.Add(ID(i))
				}
			}
			return s
		}
		a, b, c := mk(aw), mk(bw), mk(cw)
		left := a.Union(b).Minus(c)
		right := a.Minus(c).Union(b.Minus(c))
		return left.Equal(right)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSetPropertyLenUnion(t *testing.T) {
	// |a ∪ b| = |a| + |b| - |a ∩ b|.
	f := func(aw, bw uint32) bool {
		mk := func(w uint32) Set {
			var s Set
			for i := 0; i < 32; i++ {
				if w&(1<<uint(i)) != 0 {
					s.Add(ID(i))
				}
			}
			return s
		}
		a, b := mk(aw), mk(bw)
		return a.Union(b).Len() == a.Len()+b.Len()-a.Intersect(b).Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
