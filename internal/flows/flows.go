// Package flows defines the flow-identifier universe over which rules and
// the Markov models operate.
//
// The paper identifies a flow by its IP-header 5-tuple; its evaluation
// (§VI-A) collapses that to one flow class per source address. This package
// supports both views: a concrete 5-tuple type (used by the OpenFlow and
// network-simulation substrates) and a dense integer index space with bitset
// flow sets (used by the rule algebra and the Markov models, where speed of
// set operations dominates).
package flows

import (
	"fmt"
	"strconv"
	"strings"
)

// ID is the dense index of a flow class within a Universe.
type ID int

// Proto is an IP protocol number. Only the protocols the substrates need
// are named.
type Proto uint8

// Supported protocol numbers.
const (
	ProtoICMP Proto = 1
	ProtoTCP  Proto = 6
	ProtoUDP  Proto = 17
)

// String implements fmt.Stringer.
func (p Proto) String() string {
	switch p {
	case ProtoICMP:
		return "icmp"
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	default:
		return strconv.Itoa(int(p))
	}
}

// IPv4 is an IPv4 address in host byte order.
type IPv4 uint32

// MakeIPv4 assembles an address from its dotted-quad octets.
func MakeIPv4(a, b, c, d byte) IPv4 {
	return IPv4(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// ParseIPv4 parses a dotted-quad string.
func ParseIPv4(s string) (IPv4, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("flows: bad IPv4 %q", s)
	}
	var ip uint32
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 {
			return 0, fmt.Errorf("flows: bad IPv4 octet %q in %q", p, s)
		}
		ip = ip<<8 | uint32(v)
	}
	return IPv4(ip), nil
}

// String renders the address in dotted-quad form.
func (ip IPv4) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// FiveTuple is a concrete flow identifier: the IP-header fields a rule may
// match on.
type FiveTuple struct {
	Src     IPv4
	Dst     IPv4
	SrcPort uint16
	DstPort uint16
	Proto   Proto
}

// String implements fmt.Stringer.
func (t FiveTuple) String() string {
	return fmt.Sprintf("%s/%s:%d->%s:%d", t.Proto, t.Src, t.SrcPort, t.Dst, t.DstPort)
}

// Universe is a registry of flow classes. It assigns each registered
// 5-tuple a dense ID so the models can treat flows as small integers and
// coverage sets as bitsets.
type Universe struct {
	byTuple map[FiveTuple]ID
	tuples  []FiveTuple
	names   []string
}

// NewUniverse returns an empty flow universe.
func NewUniverse() *Universe {
	return &Universe{byTuple: make(map[FiveTuple]ID)}
}

// Add registers a flow class and returns its ID. Re-adding an identical
// tuple returns the existing ID.
func (u *Universe) Add(name string, t FiveTuple) ID {
	if id, ok := u.byTuple[t]; ok {
		return id
	}
	id := ID(len(u.tuples))
	u.byTuple[t] = id
	u.tuples = append(u.tuples, t)
	u.names = append(u.names, name)
	return id
}

// Lookup returns the ID of the flow class for t, if registered.
func (u *Universe) Lookup(t FiveTuple) (ID, bool) {
	id, ok := u.byTuple[t]
	return id, ok
}

// Size returns the number of registered flow classes.
func (u *Universe) Size() int { return len(u.tuples) }

// Tuple returns the 5-tuple of flow id.
func (u *Universe) Tuple(id ID) FiveTuple { return u.tuples[id] }

// Name returns the human-readable name of flow id.
func (u *Universe) Name(id ID) string { return u.names[id] }

// All returns a set containing every registered flow.
func (u *Universe) All() Set {
	s := NewSet(u.Size())
	for i := 0; i < u.Size(); i++ {
		s.Add(ID(i))
	}
	return s
}

// ClientServerUniverse builds the paper's evaluation universe (§VI-A):
// nhosts flows, one per contiguous source address starting at base, all
// destined to the host one past the last source (10.0.1.16 in the paper),
// carried over ICMP.
func ClientServerUniverse(base IPv4, nhosts int) *Universe {
	u := NewUniverse()
	dst := base + IPv4(nhosts)
	for i := 0; i < nhosts; i++ {
		src := base + IPv4(i)
		u.Add(fmt.Sprintf("f%d(%s)", i, src), FiveTuple{Src: src, Dst: dst, Proto: ProtoICMP})
	}
	return u
}
