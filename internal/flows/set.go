package flows

import (
	"math/bits"
	"strconv"
	"strings"
)

// Set is a bitset over flow IDs. The Markov models evaluate many set-algebra
// expressions of the form ruleⱼ \ ∪ rule_{j'} (Section IV of the paper), so
// coverage sets are represented as packed words.
//
// The zero value is an empty set that can grow on Add.
type Set struct {
	words []uint64
}

// NewSet returns an empty set sized for flows in [0, n).
func NewSet(n int) Set {
	return Set{words: make([]uint64, (n+63)/64)}
}

// SetOf builds a set holding exactly the given flows.
func SetOf(ids ...ID) Set {
	var s Set
	for _, id := range ids {
		s.Add(id)
	}
	return s
}

func (s *Set) grow(word int) {
	for len(s.words) <= word {
		s.words = append(s.words, 0)
	}
}

// Add inserts id into the set.
func (s *Set) Add(id ID) {
	w := int(id) / 64
	s.grow(w)
	s.words[w] |= 1 << (uint(id) % 64)
}

// Remove deletes id from the set.
func (s *Set) Remove(id ID) {
	w := int(id) / 64
	if w < len(s.words) {
		s.words[w] &^= 1 << (uint(id) % 64)
	}
}

// Contains reports whether id is in the set.
func (s Set) Contains(id ID) bool {
	w := int(id) / 64
	return w < len(s.words) && s.words[w]&(1<<(uint(id)%64)) != 0
}

// Len returns the number of flows in the set.
func (s Set) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no members.
func (s Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of s.
func (s Set) Clone() Set {
	out := Set{words: make([]uint64, len(s.words))}
	copy(out.words, s.words)
	return out
}

// Union returns s ∪ t as a new set.
func (s Set) Union(t Set) Set {
	longer, shorter := s.words, t.words
	if len(shorter) > len(longer) {
		longer, shorter = shorter, longer
	}
	out := make([]uint64, len(longer))
	copy(out, longer)
	for i, w := range shorter {
		out[i] |= w
	}
	return Set{words: out}
}

// Intersect returns s ∩ t as a new set.
func (s Set) Intersect(t Set) Set {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		out[i] = s.words[i] & t.words[i]
	}
	return Set{words: out}
}

// Minus returns s \ t as a new set.
func (s Set) Minus(t Set) Set {
	out := make([]uint64, len(s.words))
	copy(out, s.words)
	for i := 0; i < len(out) && i < len(t.words); i++ {
		out[i] &^= t.words[i]
	}
	return Set{words: out}
}

// SubtractInPlace removes every member of t from s without allocating.
func (s *Set) SubtractInPlace(t Set) {
	for i := 0; i < len(s.words) && i < len(t.words); i++ {
		s.words[i] &^= t.words[i]
	}
}

// UnionInPlace adds every member of t to s.
func (s *Set) UnionInPlace(t Set) {
	s.grow(len(t.words) - 1)
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// Overlaps reports whether s ∩ t is non-empty.
func (s Set) Overlaps(t Set) bool {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether s and t contain exactly the same flows.
func (s Set) Equal(t Set) bool {
	longer, shorter := s.words, t.words
	if len(shorter) > len(longer) {
		longer, shorter = shorter, longer
	}
	for i, w := range shorter {
		if w != longer[i] {
			return false
		}
	}
	for _, w := range longer[len(shorter):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// Subset reports whether every member of s is in t.
func (s Set) Subset(t Set) bool {
	for i, w := range s.words {
		var tw uint64
		if i < len(t.words) {
			tw = t.words[i]
		}
		if w&^tw != 0 {
			return false
		}
	}
	return true
}

// IDs returns the members in ascending order.
func (s Set) IDs() []ID {
	out := make([]ID, 0, s.Len())
	s.ForEach(func(id ID) { out = append(out, id) })
	return out
}

// ForEach calls fn for every member in ascending order.
func (s Set) ForEach(fn func(ID)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(ID(wi*64 + b))
			w &^= 1 << uint(b)
		}
	}
}

// SumRates returns Σ_{f ∈ s} rates[f]. It is the workhorse of the rate
// computations γ and Γ in Section IV.
func (s Set) SumRates(rates []float64) float64 {
	var sum float64
	for wi, w := range s.words {
		base := wi * 64
		for w != 0 {
			b := bits.TrailingZeros64(w)
			sum += rates[base+b]
			w &^= 1 << uint(b)
		}
	}
	return sum
}

// String renders the set as "{0,3,7}".
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(id ID) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(strconv.Itoa(int(id)))
	})
	b.WriteByte('}')
	return b.String()
}
