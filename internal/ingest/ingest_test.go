package ingest

import (
	"bytes"
	"errors"
	"math"
	"os"
	"reflect"
	"strings"
	"testing"

	"flowrecon/internal/flows"
)

func mustIP(t *testing.T, s string) flows.IPv4 {
	t.Helper()
	ip, err := flows.ParseIPv4(s)
	if err != nil {
		t.Fatalf("ParseIPv4(%q): %v", s, err)
	}
	return ip
}

func testPackets(t *testing.T) []Packet {
	t.Helper()
	a := mustIP(t, "10.0.0.1")
	b := mustIP(t, "10.0.0.2")
	c := mustIP(t, "192.168.1.7")
	return []Packet{
		{Time: 100.000250, Key: MakeKey(a, b, flows.ProtoTCP, 443, 51000), Bytes: 1500},
		{Time: 100.125000, Key: MakeKey(b, a, flows.ProtoTCP, 51000, 443), Bytes: 60},
		{Time: 101.500000, Key: MakeKey(c, a, flows.ProtoUDP, 53, 40000), Bytes: 120},
		{Time: 102.250000, Key: MakeKey(a, c, flows.ProtoICMP, 0, 8<<8), Bytes: 84},
	}
}

func TestKeyRoundTrip(t *testing.T) {
	src := mustIP(t, "10.1.2.3")
	dst := mustIP(t, "172.16.0.9")
	k := MakeKey(src, dst, flows.ProtoTCP, 443, 51234)
	if k.Src() != src || k.Dst() != dst {
		t.Fatalf("address round-trip: got %v->%v", k.Src(), k.Dst())
	}
	if k.Proto() != uint8(flows.ProtoTCP) || k.SrcPort() != 443 || k.DstPort() != 51234 {
		t.Fatalf("proto/ports round-trip: %d %d %d", k.Proto(), k.SrcPort(), k.DstPort())
	}
	tup := k.Tuple()
	if tup.Src != src || tup.DstPort != 51234 {
		t.Fatalf("Tuple: %+v", tup)
	}
}

func TestPcapRoundTrip(t *testing.T) {
	pkts := testPackets(t)
	cases := []struct {
		name string
		opts WriteOptions
	}{
		{"big-micro", WriteOptions{}},
		{"little-micro", WriteOptions{LittleEndian: true}},
		{"big-nano", WriteOptions{Nano: true}},
		{"little-nano", WriteOptions{LittleEndian: true, Nano: true}},
		{"vlan-tagged", WriteOptions{LittleEndian: true, VLAN: 42}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := WritePcap(&buf, pkts, tc.opts); err != nil {
				t.Fatalf("WritePcap: %v", err)
			}
			capt, err := ReadPcap(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("ReadPcap: %v", err)
			}
			if capt.Skipped != 0 {
				t.Fatalf("skipped %d frames of a synthetic capture", capt.Skipped)
			}
			if capt.Nano != tc.opts.Nano {
				t.Fatalf("Nano = %v, want %v", capt.Nano, tc.opts.Nano)
			}
			if len(capt.Packets) != len(pkts) {
				t.Fatalf("got %d packets, want %d", len(capt.Packets), len(pkts))
			}
			res := 1e-6
			if tc.opts.Nano {
				res = 1e-9
			}
			for i, got := range capt.Packets {
				want := pkts[i]
				if got.Key != want.Key {
					t.Errorf("packet %d key: got %s want %s", i, got.Key, want.Key)
				}
				if math.Abs(got.Time-want.Time) > res {
					t.Errorf("packet %d time: got %.9f want %.9f (res %g)", i, got.Time, want.Time, res)
				}
				if got.Bytes != want.Bytes {
					t.Errorf("packet %d bytes: got %d want %d", i, got.Bytes, want.Bytes)
				}
			}
		})
	}
}

func TestReadPcapRejectsBadInput(t *testing.T) {
	pkts := testPackets(t)
	var good bytes.Buffer
	if err := WritePcap(&good, pkts, WriteOptions{LittleEndian: true}); err != nil {
		t.Fatal(err)
	}
	raw := good.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		bad[0] ^= 0xff
		if _, err := ReadPcap(bytes.NewReader(bad)); err != ErrPcapMagic {
			t.Fatalf("got %v, want ErrPcapMagic", err)
		}
	})
	t.Run("truncated record", func(t *testing.T) {
		if _, err := ReadPcap(bytes.NewReader(raw[:len(raw)-5])); err == nil {
			t.Fatal("truncated capture accepted")
		}
	})
	t.Run("bogus snaplen", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		// First record's inclLen field (little-endian) set past MaxSnapLen.
		bad[pcapFileHeader+8] = 0xff
		bad[pcapFileHeader+9] = 0xff
		bad[pcapFileHeader+10] = 0xff
		bad[pcapFileHeader+11] = 0x7f
		if _, err := ReadPcap(bytes.NewReader(bad)); err == nil {
			t.Fatal("bogus inclLen accepted")
		}
	})
	t.Run("non-ethernet link", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		bad[20] = 101 // LINKTYPE_RAW, little-endian
		if _, err := ReadPcap(bytes.NewReader(bad)); err == nil {
			t.Fatal("non-Ethernet link accepted")
		}
	})
	t.Run("pcapng magic", func(t *testing.T) {
		// A pcapng Section Header Block: block type 0x0A0D0D0A, then
		// enough bytes to fill the 24-byte classic header read.
		ng := make([]byte, pcapFileHeader)
		ng[0], ng[1], ng[2], ng[3] = 0x0a, 0x0d, 0x0d, 0x0a
		_, err := ReadPcap(bytes.NewReader(ng))
		if !errors.Is(err, ErrPcapNG) {
			t.Fatalf("got %v, want ErrPcapNG", err)
		}
		if !strings.Contains(err.Error(), "tcpdump -r") {
			t.Fatalf("pcapng error should name the conversion command, got %q", err)
		}
		// Through the format-sniffing file entry point the same error must
		// surface instead of falling through to a flow-log CSV parse.
		path := t.TempDir() + "/capture.pcapng"
		if err := os.WriteFile(path, ng, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := IngestFile(path, IngestOptions{}); !errors.Is(err, ErrPcapNG) {
			t.Fatalf("IngestFile: got %v, want ErrPcapNG", err)
		}
	})
	t.Run("non-ipv4 frames skipped", func(t *testing.T) {
		var buf bytes.Buffer
		if err := WritePcap(&buf, pkts[:1], WriteOptions{}); err != nil {
			t.Fatal(err)
		}
		b := buf.Bytes()
		// Overwrite the ethertype with ARP: frame parses as non-IPv4.
		b[pcapFileHeader+pcapRecHeader+12] = 0x08
		b[pcapFileHeader+pcapRecHeader+13] = 0x06
		capt, err := ReadPcap(bytes.NewReader(b))
		if err != nil {
			t.Fatalf("ReadPcap: %v", err)
		}
		if capt.Skipped != 1 || len(capt.Packets) != 0 {
			t.Fatalf("skipped=%d packets=%d, want 1/0", capt.Skipped, len(capt.Packets))
		}
	})
}

func TestReadPcapIntoReusesBuffers(t *testing.T) {
	pkts := testPackets(t)
	var buf bytes.Buffer
	if err := WritePcap(&buf, pkts, WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	want, err := ReadPcap(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var c Capture
	for i := 0; i < 3; i++ {
		if err := ReadPcapInto(bytes.NewReader(raw), &c); err != nil {
			t.Fatalf("pass %d: %v", i, err)
		}
		if !reflect.DeepEqual(c.Packets, want.Packets) || c.Skipped != want.Skipped ||
			c.SnapLen != want.SnapLen || c.Nano != want.Nano {
			t.Fatalf("pass %d: reused capture diverges from fresh parse", i)
		}
	}
	// A failed parse must still leave the capture reset, not holding the
	// previous file's packets.
	bad := append([]byte(nil), raw...)
	bad[0] ^= 0xff
	if err := ReadPcapInto(bytes.NewReader(bad), &c); !errors.Is(err, ErrPcapMagic) {
		t.Fatalf("got %v, want ErrPcapMagic", err)
	}
	if len(c.Packets) != 0 {
		t.Fatalf("capture kept %d packets after failed parse", len(c.Packets))
	}
}

func TestParseFrameFragmentsAndTruncation(t *testing.T) {
	src := mustIP(t, "10.0.0.1")
	dst := mustIP(t, "10.0.0.2")
	k := MakeKey(src, dst, flows.ProtoTCP, 80, 9000)
	frame := BuildFrame(k, 0)

	t.Run("non-first fragment drops ports", func(t *testing.T) {
		frag := append([]byte(nil), frame...)
		frag[ethHeaderLen+6] = 0x00
		frag[ethHeaderLen+7] = 0x10 // fragment offset 16
		got, err := ParseFrame(frag)
		if err != nil {
			t.Fatalf("ParseFrame: %v", err)
		}
		if got.SrcPort() != 0 || got.DstPort() != 0 {
			t.Fatalf("fragment kept ports: %s", got)
		}
		if got.Src() != src || got.Proto() != uint8(flows.ProtoTCP) {
			t.Fatalf("fragment lost network fields: %s", got)
		}
	})
	t.Run("snapped transport drops ports", func(t *testing.T) {
		got, err := ParseFrame(frame[:ethHeaderLen+ipv4MinHeader+2])
		if err != nil {
			t.Fatalf("ParseFrame: %v", err)
		}
		if got.SrcPort() != 0 || got.DstPort() != 0 {
			t.Fatalf("snapped frame kept ports: %s", got)
		}
	})
	t.Run("short frames error", func(t *testing.T) {
		for cut := 0; cut < ethHeaderLen+ipv4MinHeader; cut++ {
			if _, err := ParseFrame(frame[:cut]); err == nil {
				t.Fatalf("frame cut to %d bytes parsed", cut)
			}
		}
	})
	t.Run("vlan stack bounded", func(t *testing.T) {
		deep := make([]byte, ethHeaderLen+4*(maxVLANTags+1))
		for i := 0; i <= maxVLANTags; i++ {
			deep[12+4*i] = 0x81
			deep[13+4*i] = 0x00
		}
		if _, err := ParseFrame(deep); err == nil {
			t.Fatal("unbounded VLAN stack parsed")
		}
	})
}

func TestExtractorTimeouts(t *testing.T) {
	a := mustIP(t, "10.0.0.1")
	b := mustIP(t, "10.0.0.2")
	k1 := MakeKey(a, b, flows.ProtoTCP, 1, 2)
	k2 := MakeKey(b, a, flows.ProtoUDP, 3, 4)

	t.Run("idle timeout splits flows", func(t *testing.T) {
		recs, err := ExtractFlows([]Packet{
			{Time: 0, Key: k1, Bytes: 10},
			{Time: 1, Key: k1, Bytes: 10},
			{Time: 30, Key: k1, Bytes: 10}, // > idle 15s after t=1: new flow
		}, 120, 15)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 2 {
			t.Fatalf("got %d flows, want 2: %+v", len(recs), recs)
		}
		if recs[0].Reason != EndIdle || recs[0].Packets != 2 || recs[0].End != 1 {
			t.Fatalf("first flow: %+v", recs[0])
		}
		if recs[1].Reason != EndOfTrace || recs[1].Start != 30 {
			t.Fatalf("second flow: %+v", recs[1])
		}
	})
	t.Run("active timeout cuts long flows", func(t *testing.T) {
		var pkts []Packet
		for ts := 0.0; ts <= 10; ts++ {
			pkts = append(pkts, Packet{Time: ts, Key: k1, Bytes: 1})
		}
		recs, err := ExtractFlows(pkts, 5, 100)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) < 2 {
			t.Fatalf("active timeout never cut: %+v", recs)
		}
		if recs[0].Reason != EndActive {
			t.Fatalf("first cut reason = %v, want active", recs[0].Reason)
		}
		if recs[0].End-recs[0].Start > 5 {
			t.Fatalf("flow exceeded active timeout: %+v", recs[0])
		}
	})
	t.Run("interleaved flows stay separate", func(t *testing.T) {
		recs, err := ExtractFlows([]Packet{
			{Time: 0, Key: k1, Bytes: 1},
			{Time: 0.5, Key: k2, Bytes: 2},
			{Time: 1, Key: k1, Bytes: 1},
			{Time: 1.5, Key: k2, Bytes: 2},
		}, 120, 15)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 2 {
			t.Fatalf("got %d flows, want 2", len(recs))
		}
		if recs[0].Key != k1 || recs[0].Bytes != 2 || recs[1].Key != k2 || recs[1].Bytes != 4 {
			t.Fatalf("flow accounting: %+v", recs)
		}
	})
	t.Run("time regression rejected", func(t *testing.T) {
		e := NewExtractor(0, 0)
		if err := e.Observe(Packet{Time: 5, Key: k1}); err != nil {
			t.Fatal(err)
		}
		if err := e.Observe(Packet{Time: 4, Key: k2}); err == nil {
			t.Fatal("time regression accepted")
		}
	})
	t.Run("flush resets", func(t *testing.T) {
		e := NewExtractor(0, 0)
		if err := e.Observe(Packet{Time: 1, Key: k1}); err != nil {
			t.Fatal(err)
		}
		if got := len(e.Flush()); got != 1 {
			t.Fatalf("first flush: %d flows", got)
		}
		if e.Open() != 0 {
			t.Fatalf("open after flush: %d", e.Open())
		}
		// Time may restart after a flush.
		if err := e.Observe(Packet{Time: 0, Key: k1}); err != nil {
			t.Fatalf("post-flush observe: %v", err)
		}
	})
}

func TestReadFlowLog(t *testing.T) {
	csv := `time,src,dst,proto,sport,dport,packets,bytes
# exported 2026-01-01
3.5,10.0.0.2,10.0.0.1,udp,53,40000,1,120
1.0,10.0.0.1,10.0.0.2,tcp,443,51000,10,15000
`
	jsonl := `{"time":3.5,"src":"10.0.0.2","dst":"10.0.0.1","proto":"udp","sport":53,"dport":40000,"bytes":120}
{"time":1.0,"src":"10.0.0.1","dst":"10.0.0.2","proto":"6","sport":443,"dport":51000,"bytes":15000}
`
	for _, tc := range []struct {
		name, in string
	}{{"csv", csv}, {"jsonl", jsonl}} {
		t.Run(tc.name, func(t *testing.T) {
			pkts, err := ReadFlowLog(strings.NewReader(tc.in))
			if err != nil {
				t.Fatalf("ReadFlowLog: %v", err)
			}
			if len(pkts) != 2 {
				t.Fatalf("got %d records, want 2", len(pkts))
			}
			if pkts[0].Time != 1.0 || pkts[1].Time != 3.5 {
				t.Fatalf("not sorted by time: %+v", pkts)
			}
			if pkts[0].Key.Proto() != uint8(flows.ProtoTCP) || pkts[0].Key.SrcPort() != 443 {
				t.Fatalf("first record key: %s", pkts[0].Key)
			}
			if pkts[0].Bytes != 15000 {
				t.Fatalf("first record bytes: %d", pkts[0].Bytes)
			}
		})
	}

	t.Run("bad lines error", func(t *testing.T) {
		for _, in := range []string{
			"1.0,10.0.0.1,10.0.0.2,tcp,443\n",             // too few fields
			"x,10.0.0.1,10.0.0.2,tcp,443,1\n",             // bad time
			"1.0,10.0.0.1,10.0.0.2,tcp,99999,1\n",         // bad port
			"1.0,10.0.0.1,10.0.0.2,frob,443,1\n",          // bad proto
			"1.0,300.0.0.1,10.0.0.2,tcp,443,1\n",          // bad address
			`{"time":1,"src":"10.0.0.1","dst":"x"` + "\n", // bad json
		} {
			if _, err := ReadFlowLog(strings.NewReader(in)); err == nil {
				t.Errorf("accepted %q", in)
			}
		}
	})
}

func TestBuildTrace(t *testing.T) {
	a := mustIP(t, "10.0.0.1")
	b := mustIP(t, "10.0.0.2")
	c := mustIP(t, "10.0.0.3")
	recs := []FlowRecord{
		{Key: MakeKey(a, b, flows.ProtoTCP, 1, 2), Start: 100},
		{Key: MakeKey(a, c, flows.ProtoTCP, 3, 4), Start: 101},
		{Key: MakeKey(a, b, flows.ProtoUDP, 5, 6), Start: 104},
		{Key: MakeKey(b, a, flows.ProtoTCP, 7, 8), Start: 102},
		{Key: MakeKey(b, a, flows.ProtoTCP, 9, 10), Start: 103},
		{Key: MakeKey(c, a, flows.ProtoTCP, 11, 12), Start: 110},
	}
	res, err := BuildTrace(recs, TraceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sources != 3 || res.Flows != 6 || res.Dropped != 0 {
		t.Fatalf("counts: %+v", res)
	}
	// Class 0 is the busiest source (a, 3 flows), then b (2), then c (1).
	if res.Universe.Name(0) != "src(10.0.0.1)" || res.Universe.Name(1) != "src(10.0.0.2)" || res.Universe.Name(2) != "src(10.0.0.3)" {
		t.Fatalf("class ranking: %v %v %v", res.Universe.Name(0), res.Universe.Name(1), res.Universe.Name(2))
	}
	if res.Duration != 10 {
		t.Fatalf("duration = %v, want 10", res.Duration)
	}
	arr := res.Trace.Arrivals()
	if len(arr) != 6 || arr[0].Time != 0 {
		t.Fatalf("arrivals: %+v", arr)
	}
	wantRates := []float64{0.3, 0.2, 0.1}
	for i, r := range res.Rates {
		if math.Abs(r-wantRates[i]) > 1e-12 {
			t.Fatalf("rates = %v, want %v", res.Rates, wantRates)
		}
	}

	t.Run("class cap drops tail sources", func(t *testing.T) {
		capped, err := BuildTrace(recs, TraceOptions{MaxClasses: 2})
		if err != nil {
			t.Fatal(err)
		}
		if capped.Universe.Size() != 2 || capped.Dropped != 1 {
			t.Fatalf("cap: classes=%d dropped=%d", capped.Universe.Size(), capped.Dropped)
		}
	})
	t.Run("deterministic across runs", func(t *testing.T) {
		again, err := BuildTrace(recs, TraceOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(again.Rates, res.Rates) || !reflect.DeepEqual(again.Trace.Arrivals(), res.Trace.Arrivals()) {
			t.Fatal("BuildTrace not deterministic")
		}
	})
	t.Run("empty input errors", func(t *testing.T) {
		if _, err := BuildTrace(nil, TraceOptions{}); err == nil {
			t.Fatal("empty input accepted")
		}
	})
}

func TestTraceJSONLRoundTrip(t *testing.T) {
	pkts := testPackets(t)
	res, err := IngestPackets(pkts, IngestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTraceJSONL(&buf, res); err != nil {
		t.Fatal(err)
	}
	first := buf.Bytes()
	tr, rates, err := ReadTraceJSONL(bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr.Arrivals(), res.Trace.Arrivals()) {
		t.Fatalf("arrivals round-trip: %+v vs %+v", tr.Arrivals(), res.Trace.Arrivals())
	}
	if !reflect.DeepEqual(rates, res.Rates) {
		t.Fatalf("rates round-trip: %v vs %v", rates, res.Rates)
	}
	var again bytes.Buffer
	if err := WriteTraceJSONL(&again, res); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, again.Bytes()) {
		t.Fatal("WriteTraceJSONL not byte-deterministic")
	}
}

func TestIngestFileSniffsFormat(t *testing.T) {
	dir := t.TempDir()
	pkts := testPackets(t)

	pcapPath := dir + "/capture.pcap"
	if err := WritePcapFile(pcapPath, pkts, WriteOptions{LittleEndian: true}); err != nil {
		t.Fatal(err)
	}
	fromPcap, err := IngestFile(pcapPath, IngestOptions{})
	if err != nil {
		t.Fatalf("IngestFile(pcap): %v", err)
	}
	if fromPcap.Flows == 0 {
		t.Fatal("pcap ingest produced no flows")
	}

	logPath := dir + "/flows.csv"
	csv := "time,src,dst,proto,sport,dport,packets,bytes\n1.0,10.0.0.1,10.0.0.2,tcp,443,51000,10,15000\n"
	if err := os.WriteFile(logPath, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	fromLog, err := IngestFile(logPath, IngestOptions{})
	if err != nil {
		t.Fatalf("IngestFile(csv): %v", err)
	}
	if fromLog.Flows != 1 {
		t.Fatalf("csv ingest: %d flows, want 1", fromLog.Flows)
	}
}
