package ingest

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"flowrecon/internal/flows"
)

// Flow-log ingestion: the text-format cousins of pcap for deployments
// that export NetFlow-style records instead of raw captures. Two
// encodings are accepted:
//
//   - CSV with the header "time,src,dst,proto,sport,dport[,packets][,bytes]"
//     (column order fixed, the last two optional; lines starting with #
//     are comments);
//   - JSONL with one LogRecord object per line.
//
// Each log line is one flow observation; ReadFlowLog converts it to a
// Packet at the record's start time (carrying the record's byte count)
// so the same Extractor/BuildTrace pipeline serves both worlds. Records
// are sorted by time — flow logs are commonly written in completion
// order, not start order.

// LogRecord is one flow-log line in the JSONL encoding.
type LogRecord struct {
	// Time is the flow start in seconds (absolute).
	Time float64 `json:"time"`
	// Src and Dst are dotted-quad IPv4 addresses.
	Src string `json:"src"`
	Dst string `json:"dst"`
	// Proto is "tcp", "udp", "icmp" or a numeric protocol.
	Proto string `json:"proto"`
	// SrcPort and DstPort are the transport ports (0 for ICMP).
	SrcPort uint16 `json:"sport"`
	DstPort uint16 `json:"dport"`
	// Packets and Bytes are optional volume counters.
	Packets int `json:"packets,omitempty"`
	Bytes   int `json:"bytes,omitempty"`
}

// Packet converts the record to the pipeline's packet form.
func (r LogRecord) Packet() (Packet, error) {
	src, err := flows.ParseIPv4(r.Src)
	if err != nil {
		return Packet{}, err
	}
	dst, err := flows.ParseIPv4(r.Dst)
	if err != nil {
		return Packet{}, err
	}
	proto, err := parseProto(r.Proto)
	if err != nil {
		return Packet{}, err
	}
	return Packet{
		Time:  r.Time,
		Key:   MakeKey(src, dst, proto, r.SrcPort, r.DstPort),
		Bytes: r.Bytes,
	}, nil
}

// parseProto accepts protocol names and numbers.
func parseProto(s string) (flows.Proto, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "tcp":
		return flows.ProtoTCP, nil
	case "udp":
		return flows.ProtoUDP, nil
	case "icmp":
		return flows.ProtoICMP, nil
	}
	n, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil || n < 0 || n > 255 {
		return 0, fmt.Errorf("ingest: bad protocol %q", s)
	}
	return flows.Proto(n), nil
}

// ReadFlowLog parses a CSV or JSONL flow log. The format is sniffed per
// line: lines starting with '{' are JSONL records, anything else is CSV.
// The result is sorted by (time, key) so it feeds the Extractor directly.
func ReadFlowLog(r io.Reader) ([]Packet, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<14), 1<<22)
	var out []Packet
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var rec LogRecord
		if strings.HasPrefix(text, "{") {
			if err := json.Unmarshal([]byte(text), &rec); err != nil {
				return nil, fmt.Errorf("ingest: flow log line %d: %w", line, err)
			}
		} else {
			var err error
			rec, err = parseCSVRecord(text)
			if err != nil {
				if line == 1 && looksLikeHeader(text) {
					continue
				}
				return nil, fmt.Errorf("ingest: flow log line %d: %w", line, err)
			}
		}
		p, err := rec.Packet()
		if err != nil {
			return nil, fmt.Errorf("ingest: flow log line %d: %w", line, err)
		}
		out = append(out, p)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ingest: flow log: %w", err)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time < out[j].Time
		}
		return lessKey(out[i].Key, out[j].Key)
	})
	return out, nil
}

// ReadFlowLogFile parses the flow log at path.
func ReadFlowLogFile(path string) ([]Packet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ingest: %w", err)
	}
	defer f.Close()
	return ReadFlowLog(f)
}

// parseCSVRecord parses "time,src,dst,proto,sport,dport[,packets][,bytes]".
func parseCSVRecord(line string) (LogRecord, error) {
	parts := strings.Split(line, ",")
	if len(parts) < 6 || len(parts) > 8 {
		return LogRecord{}, fmt.Errorf("want 6-8 CSV fields, got %d", len(parts))
	}
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	t, err := strconv.ParseFloat(parts[0], 64)
	if err != nil {
		return LogRecord{}, fmt.Errorf("bad time %q", parts[0])
	}
	sport, err := parsePort(parts[4])
	if err != nil {
		return LogRecord{}, err
	}
	dport, err := parsePort(parts[5])
	if err != nil {
		return LogRecord{}, err
	}
	rec := LogRecord{Time: t, Src: parts[1], Dst: parts[2], Proto: parts[3], SrcPort: sport, DstPort: dport}
	if len(parts) >= 7 {
		if rec.Packets, err = strconv.Atoi(parts[6]); err != nil {
			return LogRecord{}, fmt.Errorf("bad packet count %q", parts[6])
		}
	}
	if len(parts) == 8 {
		if rec.Bytes, err = strconv.Atoi(parts[7]); err != nil {
			return LogRecord{}, fmt.Errorf("bad byte count %q", parts[7])
		}
	}
	return rec, nil
}

func parsePort(s string) (uint16, error) {
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 || n > 65535 {
		return 0, fmt.Errorf("bad port %q", s)
	}
	return uint16(n), nil
}

// looksLikeHeader recognizes the conventional CSV header line.
func looksLikeHeader(line string) bool {
	return strings.HasPrefix(strings.ToLower(line), "time,")
}

// lessKey orders keys lexicographically.
func lessKey(a, b Key) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
