package ingest

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// WriteOptions configures WritePcap.
type WriteOptions struct {
	// LittleEndian writes the byte-swapped file variant (the common
	// x86 tcpdump output). False writes big-endian.
	LittleEndian bool
	// Nano writes nanosecond-resolution timestamps.
	Nano bool
	// SnapLen is the recorded snap length (default 65535).
	SnapLen uint32
	// VLAN wraps every frame in an 802.1Q tag with this VID when > 0.
	VLAN uint16
}

// WritePcap renders packets as a classic libpcap capture: synthetic
// Ethernet framing around real IPv4/TCP/UDP/ICMP headers rebuilt from
// each packet's key. It is the write half the tests, fixtures and fuzz
// corpus use — ReadPcap(WritePcap(pkts)) round-trips keys, timestamps
// (at the chosen resolution) and lengths exactly.
func WritePcap(w io.Writer, packets []Packet, opts WriteOptions) error {
	if opts.SnapLen == 0 {
		opts.SnapLen = 65535
	}
	var order binary.ByteOrder = binary.BigEndian
	if opts.LittleEndian {
		order = binary.LittleEndian
	}
	magic := uint32(magicMicro)
	if opts.Nano {
		magic = magicNano
	}
	var hdr [pcapFileHeader]byte
	order.PutUint32(hdr[0:4], magic)
	order.PutUint16(hdr[4:6], 2) // version major
	order.PutUint16(hdr[6:8], 4) // version minor
	order.PutUint32(hdr[16:20], opts.SnapLen)
	order.PutUint32(hdr[20:24], LinkTypeEthernet)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("ingest: write pcap header: %w", err)
	}
	var rec [pcapRecHeader]byte
	for i, p := range packets {
		frame := BuildFrame(p.Key, opts.VLAN)
		sec, frac := splitTime(p.Time, opts.Nano)
		order.PutUint32(rec[0:4], sec)
		order.PutUint32(rec[4:8], frac)
		order.PutUint32(rec[8:12], uint32(len(frame)))
		origLen := uint32(p.Bytes)
		if origLen < uint32(len(frame)) {
			origLen = uint32(len(frame))
		}
		order.PutUint32(rec[12:16], origLen)
		if _, err := w.Write(rec[:]); err != nil {
			return fmt.Errorf("ingest: write record %d: %w", i, err)
		}
		if _, err := w.Write(frame); err != nil {
			return fmt.Errorf("ingest: write record %d payload: %w", i, err)
		}
	}
	return nil
}

// WritePcapFile writes the capture to path.
func WritePcapFile(path string, packets []Packet, opts WriteOptions) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("ingest: %w", err)
	}
	if err := WritePcap(f, packets, opts); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// splitTime decomposes an absolute float64 timestamp into the pcap
// record's (seconds, fraction) pair at the chosen resolution.
func splitTime(t float64, nano bool) (sec, frac uint32) {
	if t < 0 {
		t = 0
	}
	s := math.Floor(t)
	scale := 1e6
	if nano {
		scale = 1e9
	}
	f := math.Round((t - s) * scale)
	if f >= scale {
		s++
		f = 0
	}
	return uint32(s), uint32(f)
}

// BuildFrame rebuilds a minimal valid Ethernet+IPv4 frame for a key: a
// synthetic MAC layer (optionally 802.1Q-tagged), a 20-byte IPv4 header
// with correct version/IHL/fragment fields, and the first transport
// bytes the key's ports/ICMP type came from. ParseFrame(BuildFrame(k))
// always returns k.
func BuildFrame(k Key, vlan uint16) []byte {
	var trLen int
	switch k.Proto() {
	case 6, 17:
		trLen = 8 // ports + the rest of a minimal UDP header shape
	case 1:
		trLen = 4 // ICMP type, code, checksum
	default:
		trLen = 0
	}
	ethLen := ethHeaderLen
	if vlan > 0 {
		ethLen += 4
	}
	frame := make([]byte, ethLen+ipv4MinHeader+trLen)
	// Synthetic MACs derived from the addresses keep frames distinct.
	copy(frame[0:6], []byte{2, 0, k[4], k[5], k[6], k[7]})
	copy(frame[6:12], []byte{2, 0, k[0], k[1], k[2], k[3]})
	off := 12
	if vlan > 0 {
		binary.BigEndian.PutUint16(frame[off:], etherTypeVLAN)
		binary.BigEndian.PutUint16(frame[off+2:], vlan&0x0fff)
		off += 4
	}
	binary.BigEndian.PutUint16(frame[off:], etherTypeIPv4)
	off += 2

	ip := frame[off:]
	ip[0] = 0x45 // version 4, IHL 5
	binary.BigEndian.PutUint16(ip[2:4], uint16(ipv4MinHeader+trLen))
	ip[8] = 64 // TTL
	ip[9] = k.Proto()
	copy(ip[12:16], k[0:4])
	copy(ip[16:20], k[4:8])

	tr := ip[ipv4MinHeader:]
	switch k.Proto() {
	case 6, 17:
		copy(tr[0:2], k[9:11])
		copy(tr[2:4], k[11:13])
	case 1:
		copy(tr[0:2], k[11:13])
	}
	return frame
}
