package ingest

import (
	"bytes"
	"encoding/binary"
	"testing"

	"flowrecon/internal/flows"
)

// refParseFrame is a deliberately slow, index-by-index reference decoder
// for the differential fuzz check: it re-derives the flow key with
// per-byte reads and explicit arithmetic instead of slices and
// binary.BigEndian, so a shared bug would have to be made twice. It
// returns (key, true) when the frame is parseable IPv4, (zero, false)
// otherwise.
func refParseFrame(frame []byte) (Key, bool) {
	at := func(i int) (byte, bool) {
		if i < 0 || i >= len(frame) {
			return 0, false
		}
		return frame[i], true
	}
	u16 := func(i int) (uint16, bool) {
		hi, ok1 := at(i)
		lo, ok2 := at(i + 1)
		if !ok1 || !ok2 {
			return 0, false
		}
		return uint16(hi)<<8 | uint16(lo), true
	}
	if len(frame) < 14 {
		return Key{}, false
	}
	et, _ := u16(12)
	off := 14
	tags := 0
	for et == 0x8100 || et == 0x88a8 {
		if tags >= 4 {
			return Key{}, false
		}
		next, ok := u16(off + 2)
		if !ok {
			return Key{}, false
		}
		et = next
		off += 4
		tags++
	}
	if et != 0x0800 {
		return Key{}, false
	}
	vihl, ok := at(off)
	if !ok || vihl>>4 != 4 {
		return Key{}, false
	}
	ihl := int(vihl&0x0f) * 4
	if ihl < 20 || off+ihl > len(frame) {
		return Key{}, false
	}
	var k Key
	for i := 0; i < 4; i++ {
		s, _ := at(off + 12 + i)
		d, _ := at(off + 16 + i)
		k[i], k[4+i] = s, d
	}
	proto, _ := at(off + 9)
	k[8] = proto
	fragWord, _ := u16(off + 6)
	if fragWord&0x1fff != 0 {
		return k, true
	}
	tr := off + ihl
	switch proto {
	case 6, 17:
		if tr+4 <= len(frame) {
			k[9], _ = at(tr)
			k[10], _ = at(tr + 1)
			k[11], _ = at(tr + 2)
			k[12], _ = at(tr + 3)
		}
	case 1:
		if tr+2 <= len(frame) {
			k[11], _ = at(tr)
			k[12], _ = at(tr + 1)
		}
	}
	return k, true
}

// FuzzParsePacket checks ParseFrame never panics and always agrees
// byte-for-byte with the independent reference decoder.
func FuzzParsePacket(f *testing.F) {
	a, _ := flows.ParseIPv4("10.0.0.1")
	b, _ := flows.ParseIPv4("10.0.0.2")
	f.Add(BuildFrame(MakeKey(a, b, flows.ProtoTCP, 443, 51000), 0))
	f.Add(BuildFrame(MakeKey(a, b, flows.ProtoUDP, 53, 40000), 42))
	f.Add(BuildFrame(MakeKey(b, a, flows.ProtoICMP, 0, 8<<8), 0))
	f.Add([]byte{})
	f.Add(make([]byte, 13))                        // one short of an Ethernet header
	f.Add(append(make([]byte, 12), 0x08, 0x06))    // ARP ethertype
	f.Add(append(make([]byte, 12), 0x81, 0x00, 0)) // VLAN tag, then truncation
	// IPv4 claiming options (IHL 15) longer than the frame.
	long := BuildFrame(MakeKey(a, b, flows.ProtoTCP, 1, 2), 0)
	long[ethHeaderLen] = 0x4f
	f.Add(long)
	// Deep QinQ stack.
	deep := make([]byte, 14+6*4)
	for i := 0; i < 6; i++ {
		deep[12+4*i], deep[13+4*i] = 0x88, 0xa8
	}
	f.Add(deep)

	f.Fuzz(func(t *testing.T, frame []byte) {
		got, err := ParseFrame(frame)
		want, ok := refParseFrame(frame)
		if (err == nil) != ok {
			t.Fatalf("parse disagreement: err=%v ref-ok=%v on %x", err, ok, frame)
		}
		if err == nil && got != want {
			t.Fatalf("key disagreement: got %x want %x on %x", got, want, frame)
		}
	})
}

// FuzzReadPcap checks the capture reader never panics, never allocates
// unboundedly on hostile length fields, and parses its own writer's
// output cleanly.
func FuzzReadPcap(f *testing.F) {
	a, _ := flows.ParseIPv4("10.0.0.1")
	b, _ := flows.ParseIPv4("192.168.9.9")
	pkts := []Packet{
		{Time: 1.25, Key: MakeKey(a, b, flows.ProtoTCP, 443, 51000), Bytes: 900},
		{Time: 2.5, Key: MakeKey(b, a, flows.ProtoUDP, 53, 4000), Bytes: 80},
	}
	for _, opts := range []WriteOptions{
		{},
		{LittleEndian: true},
		{Nano: true},
		{LittleEndian: true, Nano: true},
		{LittleEndian: true, VLAN: 7},
	} {
		var buf bytes.Buffer
		if err := WritePcap(&buf, pkts, opts); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// A record whose inclLen overruns the file.
	var trunc bytes.Buffer
	if err := WritePcap(&trunc, pkts[:1], WriteOptions{}); err != nil {
		f.Fatal(err)
	}
	tb := trunc.Bytes()
	binary.BigEndian.PutUint32(tb[pcapFileHeader+8:], 60000)
	f.Add(tb)
	// A header claiming a bogus snaplen.
	var bogus bytes.Buffer
	if err := WritePcap(&bogus, pkts[:1], WriteOptions{SnapLen: MaxSnapLen + 1}); err != nil {
		f.Fatal(err)
	}
	f.Add(bogus.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xa1, 0xb2, 0xc3, 0xd4})
	f.Add([]byte{0xd4, 0xc3, 0xb2, 0xa1})

	f.Fuzz(func(t *testing.T, data []byte) {
		capt, err := ReadPcap(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(capt.Packets)+capt.Skipped > (len(data)-pcapFileHeader)/pcapRecHeader+1 {
			t.Fatalf("more records (%d+%d) than the file can frame (%d bytes)",
				len(capt.Packets), capt.Skipped, len(data))
		}
		for i, p := range capt.Packets {
			if p.Time < 0 {
				t.Fatalf("packet %d negative time %v", i, p.Time)
			}
		}
	})
}
