package ingest

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"

	"flowrecon/internal/flows"
	"flowrecon/internal/workload"
)

// The last pipeline stage: collapse extracted flows onto the
// experiment's flow-class universe. The paper's evaluation (§VI-A)
// identifies a flow class per source address — all traffic from one host
// is one class — so each extracted FlowRecord becomes one
// workload.Arrival of its source's class at the flow start time, and the
// classes' empirical rates become the λ vector a model can be fitted on.

// TraceOptions configures BuildTrace.
type TraceOptions struct {
	// MaxClasses caps the universe at the N busiest sources (by flow
	// count, ties broken by address); flows from other sources are
	// dropped and counted. 0 keeps every source.
	MaxClasses int
}

// Result is an ingested capture mapped onto the experiment's world.
type Result struct {
	// Trace is the arrival sequence, time-shifted so the first flow
	// starts at 0.
	Trace *workload.Trace
	// Universe registers one flow class per kept source address, in
	// rate-rank order (class 0 is the busiest source).
	Universe *flows.Universe
	// Rates is each class's empirical flow-arrival rate over the span
	// (arrivals/second), index-aligned with the universe.
	Rates []float64
	// Duration is the trace span in seconds (last flow start − first).
	Duration float64
	// Sources is the number of distinct sources before capping; Flows is
	// the number of extracted flows; Dropped counts arrivals lost to the
	// class cap.
	Sources, Flows, Dropped int
}

// BuildTrace maps extracted flows onto a per-source flow-class universe
// and emits the workload trace. It is deterministic: class identity
// depends only on per-source flow counts and addresses, never on map
// iteration order.
func BuildTrace(recs []FlowRecord, opts TraceOptions) (*Result, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("ingest: no flows to map")
	}
	counts := make(map[flows.IPv4]int)
	t0 := recs[0].Start
	tEnd := recs[0].Start
	for _, r := range recs {
		counts[r.Key.Src()]++
		if r.Start < t0 {
			t0 = r.Start
		}
		if r.Start > tEnd {
			tEnd = r.Start
		}
	}
	type srcCount struct {
		src flows.IPv4
		n   int
	}
	ranked := make([]srcCount, 0, len(counts))
	for src, n := range counts {
		ranked = append(ranked, srcCount{src, n})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].n != ranked[j].n {
			return ranked[i].n > ranked[j].n
		}
		return ranked[i].src < ranked[j].src
	})
	res := &Result{Sources: len(ranked), Flows: len(recs)}
	keep := len(ranked)
	if opts.MaxClasses > 0 && opts.MaxClasses < keep {
		keep = opts.MaxClasses
	}
	res.Universe = flows.NewUniverse()
	class := make(map[flows.IPv4]flows.ID, keep)
	for _, sc := range ranked[:keep] {
		// The collapsed class tuple keeps only the source address — the
		// §VI-A "flow = everything this host sends" view.
		id := res.Universe.Add(fmt.Sprintf("src(%s)", sc.src), flows.FiveTuple{Src: sc.src})
		class[sc.src] = id
	}
	res.Duration = tEnd - t0
	if res.Duration <= 0 {
		res.Duration = 1 // a single-instant capture still needs a finite rate basis
	}
	arrivals := make([]workload.Arrival, 0, len(recs))
	res.Rates = make([]float64, keep)
	for _, r := range recs {
		id, ok := class[r.Key.Src()]
		if !ok {
			res.Dropped++
			continue
		}
		arrivals = append(arrivals, workload.Arrival{Time: r.Start - t0, Flow: id})
		res.Rates[id]++
	}
	for i := range res.Rates {
		res.Rates[i] /= res.Duration
	}
	res.Trace = workload.NewTrace(arrivals)
	return res, nil
}

// IngestOptions bundles the full pipeline's knobs.
type IngestOptions struct {
	// ActiveTimeout and IdleTimeout are the flow-extraction cuts in
	// seconds (defaults when ≤ 0).
	ActiveTimeout, IdleTimeout float64
	// Trace configures the universe mapping.
	Trace TraceOptions
}

// IngestPackets runs extraction and trace building over parsed packets.
func IngestPackets(packets []Packet, opts IngestOptions) (*Result, error) {
	recs, err := ExtractFlows(packets, opts.ActiveTimeout, opts.IdleTimeout)
	if err != nil {
		return nil, err
	}
	return BuildTrace(recs, opts.Trace)
}

// IngestFile ingests a capture or flow log, sniffing the format from the
// pcap magic: a recognized magic routes to the pcap reader (whose deeper
// errors surface as such, rather than falling through to a confusing CSV
// parse), anything else to the flow-log reader.
func IngestFile(path string, opts IngestOptions) (*Result, error) {
	capt, err := ReadPcapFile(path)
	switch {
	case err == nil:
		return IngestPackets(capt.Packets, opts)
	case err != ErrPcapMagic && !errorsIsMagic(err):
		return nil, err
	}
	packets, err := ReadFlowLogFile(path)
	if err != nil {
		return nil, err
	}
	return IngestPackets(packets, opts)
}

// errorsIsMagic reports whether err wraps the bad-magic sentinel (a
// too-short file also counts: it cannot be a pcap).
func errorsIsMagic(err error) bool {
	return errors.Is(err, ErrPcapMagic) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF)
}

// traceHeader is the first JSONL line of a written trace.
type traceHeader struct {
	Classes  int       `json:"classes"`
	Duration float64   `json:"duration"`
	Rates    []float64 `json:"rates"`
	Names    []string  `json:"names"`
}

// WriteTraceJSONL renders a Result as JSONL: one header line (classes,
// duration, per-class rates and names) followed by one workload.Arrival
// per line. The encoding is canonical — the same Result always writes
// identical bytes — which is what lets the golden fixtures byte-pin the
// whole ingestion pipeline.
func WriteTraceJSONL(w io.Writer, res *Result) error {
	bw := bufio.NewWriter(w)
	h := traceHeader{Classes: res.Universe.Size(), Duration: res.Duration, Rates: res.Rates}
	for i := 0; i < res.Universe.Size(); i++ {
		h.Names = append(h.Names, res.Universe.Name(flows.ID(i)))
	}
	enc := json.NewEncoder(bw)
	if err := enc.Encode(h); err != nil {
		return fmt.Errorf("ingest: trace header: %w", err)
	}
	for _, a := range res.Trace.Arrivals() {
		if err := enc.Encode(a); err != nil {
			return fmt.Errorf("ingest: trace arrival: %w", err)
		}
	}
	return bw.Flush()
}

// ReadTraceJSONL parses a trace written by WriteTraceJSONL back into the
// arrival sequence and per-class rates.
func ReadTraceJSONL(r io.Reader) (*workload.Trace, []float64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<14), 1<<22)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, nil, fmt.Errorf("ingest: trace: %w", err)
		}
		return nil, nil, fmt.Errorf("ingest: empty trace")
	}
	var h traceHeader
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return nil, nil, fmt.Errorf("ingest: trace header: %w", err)
	}
	var arrivals []workload.Arrival
	for line := 2; sc.Scan(); line++ {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var a workload.Arrival
		if err := json.Unmarshal(sc.Bytes(), &a); err != nil {
			return nil, nil, fmt.Errorf("ingest: trace line %d: %w", line, err)
		}
		arrivals = append(arrivals, a)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("ingest: trace: %w", err)
	}
	return workload.NewTrace(arrivals), h.Rates, nil
}
