// Package ingest turns real traffic — classic libpcap captures and
// CSV/JSONL flow logs — into the deterministic workload traces the
// experiments run on. It is dependency-free by design: the pcap framing,
// Ethernet/IPv4/TCP/UDP/ICMP header parsing, and active/idle-timeout
// flow extraction are implemented here against byte slices, in the style
// of go-flows' compact binary 5-tuple keys, so the whole pipeline works
// inside the repository's seeded, reproducible world.
//
// The pipeline is three stages:
//
//	ReadPcap / ReadFlowLog  →  []Packet        (parse)
//	Extractor               →  []FlowRecord    (active/idle-timeout flows)
//	BuildTrace              →  ingest.Result   (per-source collapse onto a
//	                                            flows.Universe + workload.Trace)
//
// Every stage is a pure function of its input bytes, so ingested traces
// are as replayable as the synthetic generators: the same capture always
// produces the same arrivals, and a recording spec can pin a capture by
// its SHA-256.
package ingest

import (
	"encoding/binary"
	"fmt"

	"flowrecon/internal/flows"
)

// Key is the compact binary 5-tuple flow key: src IP (4), dst IP (4),
// protocol (1), src port (2), dst port (2), all network byte order — the
// go-flows FiveTuple4 layout. For ICMP the type/code pair occupies the
// dst-port slot, mirroring go-flows, so echo requests and replies key
// separately from other ICMP chatter.
type Key [13]byte

// Field accessors over the packed layout.
func (k Key) SrcIP() [4]byte  { var ip [4]byte; copy(ip[:], k[0:4]); return ip }
func (k Key) DstIP() [4]byte  { var ip [4]byte; copy(ip[:], k[4:8]); return ip }
func (k Key) Proto() uint8    { return k[8] }
func (k Key) SrcPort() uint16 { return binary.BigEndian.Uint16(k[9:11]) }
func (k Key) DstPort() uint16 { return binary.BigEndian.Uint16(k[11:13]) }

// Src returns the source address as the repository's IPv4 type.
func (k Key) Src() flows.IPv4 {
	return flows.IPv4(binary.BigEndian.Uint32(k[0:4]))
}

// Dst returns the destination address as the repository's IPv4 type.
func (k Key) Dst() flows.IPv4 {
	return flows.IPv4(binary.BigEndian.Uint32(k[4:8]))
}

// Tuple unpacks the key into the repository's FiveTuple form.
func (k Key) Tuple() flows.FiveTuple {
	return flows.FiveTuple{
		Src:     k.Src(),
		Dst:     k.Dst(),
		SrcPort: k.SrcPort(),
		DstPort: k.DstPort(),
		Proto:   flows.Proto(k.Proto()),
	}
}

// String renders the key like "tcp/10.0.1.2:443->10.0.1.16:8080".
func (k Key) String() string { return k.Tuple().String() }

// MakeKey packs a 5-tuple into the compact binary layout.
func MakeKey(src, dst flows.IPv4, proto flows.Proto, sport, dport uint16) Key {
	var k Key
	binary.BigEndian.PutUint32(k[0:4], uint32(src))
	binary.BigEndian.PutUint32(k[4:8], uint32(dst))
	k[8] = uint8(proto)
	binary.BigEndian.PutUint16(k[9:11], sport)
	binary.BigEndian.PutUint16(k[11:13], dport)
	return k
}

// Packet is one parsed capture record: the wall-clock timestamp in
// seconds (absolute, as captured), the flow key, and the original wire
// length in bytes.
type Packet struct {
	Time  float64
	Key   Key
	Bytes int
}

func (p Packet) String() string {
	return fmt.Sprintf("%.6f %s len=%d", p.Time, p.Key, p.Bytes)
}
