package ingest

import (
	"fmt"
	"sort"
)

// Flow extraction in the go-flows style: packets sharing a 5-tuple key
// belong to one flow until either the idle timeout (no packet for
// IdleTimeout seconds) or the active timeout (the flow has been open for
// ActiveTimeout seconds) cuts it, at which point the flow is emitted and
// a later packet with the same key starts a fresh flow.
//
// Expiry uses the PR 5 lazy-heap pattern: every deadline change pushes a
// new (expiry, seq) node and bumps the flow's stamp; stale nodes are
// recognized by their stamp and discarded on pop, so updates are O(log n)
// with no mid-heap deletion.

// Default timeouts (seconds), scaled down from go-flows' 1800/300 to the
// seconds-scale traces this repository's experiments replay.
const (
	DefaultActiveTimeout = 120.0
	DefaultIdleTimeout   = 15.0
)

// EndReason says why a flow was cut.
type EndReason uint8

const (
	// EndIdle: the idle timeout elapsed with no packet.
	EndIdle EndReason = iota
	// EndActive: the active timeout elapsed since the first packet.
	EndActive
	// EndOfTrace: the capture ended with the flow still open.
	EndOfTrace
)

// String implements fmt.Stringer.
func (r EndReason) String() string {
	switch r {
	case EndIdle:
		return "idle"
	case EndActive:
		return "active"
	default:
		return "eof"
	}
}

// FlowRecord is one extracted flow.
type FlowRecord struct {
	Key     Key
	Start   float64 // first packet time
	End     float64 // last packet time
	Packets int
	Bytes   int
	Reason  EndReason
}

// Extractor runs active/idle-timeout flow extraction over a packet
// stream. Packets must arrive in non-decreasing time order (captures
// are; ReadFlowLog sorts). Emitted flows appear in deterministic
// (cut time, flow sequence) order.
type Extractor struct {
	active, idle float64
	// flows maps a live key to its slot in states; slots are recycled
	// through free when a flow is cut, so the slab stays sized to the
	// peak number of concurrently open flows rather than the total.
	flows   map[Key]int32
	states  []flowState
	free    []int32
	heap    expiryHeap
	out     []FlowRecord
	nextSeq uint64
	// stampSeq issues heap-node stamps extractor-wide, so a stale node
	// from an earlier flow on the same key can never collide with the
	// stamps of a later flow that reuses the key (or the slot).
	stampSeq uint64
	lastTime float64
	seen     bool
}

type flowState struct {
	rec   FlowRecord
	seq   uint64 // creation order, tiebreak for deterministic emission
	stamp uint64 // matches the newest heap node; older nodes are stale
}

// expiryNode schedules one (possibly stale) deadline check for a flow.
type expiryNode struct {
	at    float64
	seq   uint64
	key   Key
	stamp uint64
}

// expiryHeap is a hand-rolled binary min-heap on (at, seq). container/heap
// would box every node into an interface on Push and Pop — ~2 allocations
// per packet, the single largest source of ingestion heap churn — so the
// sift loops are written out against the concrete slice instead.
type expiryHeap []expiryNode

func (h expiryHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *expiryHeap) push(n expiryNode) {
	*h = append(*h, n)
	s := *h
	for i := len(s) - 1; i > 0; {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *expiryHeap) pop() expiryNode {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	for i := 0; ; {
		left, right := 2*i+1, 2*i+2
		least := i
		if left < n && s.less(left, least) {
			least = left
		}
		if right < n && s.less(right, least) {
			least = right
		}
		if least == i {
			break
		}
		s[i], s[least] = s[least], s[i]
		i = least
	}
	return top
}

// NewExtractor returns an extractor with the given timeouts (seconds);
// non-positive values take the defaults.
func NewExtractor(activeTimeout, idleTimeout float64) *Extractor {
	if activeTimeout <= 0 {
		activeTimeout = DefaultActiveTimeout
	}
	if idleTimeout <= 0 {
		idleTimeout = DefaultIdleTimeout
	}
	return &Extractor{
		active: activeTimeout,
		idle:   idleTimeout,
		flows:  make(map[Key]int32),
	}
}

// deadline returns the flow's current cut time: whichever of the idle
// and active timeouts strikes first.
func (e *Extractor) deadline(s *flowState) (float64, EndReason) {
	idleAt := s.rec.End + e.idle
	activeAt := s.rec.Start + e.active
	if activeAt <= idleAt {
		return activeAt, EndActive
	}
	return idleAt, EndIdle
}

// schedule pushes a fresh heap node for the flow's current deadline and
// stamps it as the only live one.
func (e *Extractor) schedule(s *flowState) {
	at, _ := e.deadline(s)
	e.stampSeq++
	s.stamp = e.stampSeq
	e.heap.push(expiryNode{at: at, seq: s.seq, key: s.rec.Key, stamp: s.stamp})
}

// expireUntil pops every live deadline ≤ now, emitting the flows it cuts.
func (e *Extractor) expireUntil(now float64) {
	for len(e.heap) > 0 && e.heap[0].at <= now {
		n := e.heap.pop()
		idx, ok := e.flows[n.key]
		if !ok {
			continue // stale node: the flow already ended
		}
		s := &e.states[idx]
		if s.stamp != n.stamp {
			continue // stale node: the flow refreshed its deadline
		}
		_, reason := e.deadline(s)
		s.rec.Reason = reason
		e.out = append(e.out, s.rec)
		delete(e.flows, n.key)
		e.free = append(e.free, idx)
	}
}

// Observe feeds one packet. An error is returned only for time going
// backwards, which would silently corrupt flow boundaries.
func (e *Extractor) Observe(p Packet) error {
	if e.seen && p.Time < e.lastTime {
		return fmt.Errorf("ingest: packet at %.9f before stream tail %.9f", p.Time, e.lastTime)
	}
	e.lastTime, e.seen = p.Time, true
	e.expireUntil(p.Time)
	idx, ok := e.flows[p.Key]
	if !ok {
		if n := len(e.free); n > 0 {
			idx = e.free[n-1]
			e.free = e.free[:n-1]
		} else {
			idx = int32(len(e.states))
			e.states = append(e.states, flowState{})
		}
		e.states[idx] = flowState{
			rec: FlowRecord{Key: p.Key, Start: p.Time, End: p.Time},
			seq: e.nextSeq,
		}
		e.nextSeq++
		e.flows[p.Key] = idx
	} else {
		e.states[idx].rec.End = p.Time
	}
	s := &e.states[idx]
	s.rec.Packets++
	s.rec.Bytes += p.Bytes
	e.schedule(s)
	return nil
}

// Flush ends the stream: every still-open flow is emitted with
// EndOfTrace (in deterministic creation order) and the extractor resets.
// It returns all flows extracted since construction or the last Flush.
func (e *Extractor) Flush() []FlowRecord {
	rest := make([]int32, 0, len(e.flows))
	for _, idx := range e.flows {
		rest = append(rest, idx)
	}
	sort.Slice(rest, func(i, j int) bool { return e.states[rest[i]].seq < e.states[rest[j]].seq })
	for _, idx := range rest {
		s := &e.states[idx]
		s.rec.Reason = EndOfTrace
		e.out = append(e.out, s.rec)
	}
	out := e.out
	e.out = nil
	clear(e.flows)
	e.states = e.states[:0]
	e.free = e.free[:0]
	e.heap = e.heap[:0]
	e.nextSeq = 0
	e.stampSeq = 0
	e.seen = false
	return out
}

// Open returns the number of currently open flows.
func (e *Extractor) Open() int { return len(e.flows) }

// ExtractFlows runs the whole pipeline over a packet slice.
func ExtractFlows(packets []Packet, activeTimeout, idleTimeout float64) ([]FlowRecord, error) {
	e := NewExtractor(activeTimeout, idleTimeout)
	for _, p := range packets {
		if err := e.Observe(p); err != nil {
			return nil, err
		}
	}
	return e.Flush(), nil
}
