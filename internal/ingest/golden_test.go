package ingest

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"flowrecon/internal/flows"
)

// The golden capture pins the whole ingestion pipeline byte-for-byte:
// testdata/golden.pcap is a deterministic synthetic capture (committed),
// and testdata/golden_trace.jsonl is what ingesting it must produce. A
// diff in the trace without a diff in the pcap means the parser, the
// flow extractor, or the universe mapping changed semantics — which
// silently re-labels every experiment run on ingested traffic. If the
// change is intentional, regenerate with:
//
//	UPDATE_GOLDEN=1 go test ./internal/ingest/ -run TestGolden
//
// and say so in the commit message.

// GoldenPcapPackets builds the fixture's packet list: eight sources
// (10.0.0.1 … 10.0.0.8) with per-source flow rates rising from 0.08/s to
// 0.36/s over a 60-second span, each flow a distinct 5-tuple, protocols
// cycling tcp/udp/icmp. Flow times carry a deterministic sinusoidal
// jitter of ±45% of the spacing — perfectly periodic flows would make
// every replay window's content a step function of the offset, which is
// not what a capture looks like. Everything is closed-form — no RNG — so
// the fixture regenerates identically anywhere.
func GoldenPcapPackets() []Packet {
	var pkts []Packet
	for s := 0; s < 8; s++ {
		src := flows.IPv4(10<<24 | uint32(s+1))
		dst := flows.IPv4(10<<24 | 1<<8 | uint32(8-s))
		rate := 0.08 + 0.04*float64(s)
		n := int(rate*60 + 0.5)
		for k := 0; k < n; k++ {
			jitter := 0.45 * math.Sin(2.399*float64(k)+float64(s))
			t := (float64(k)+0.5+jitter)*60/float64(n) + 0.01*float64(s)
			var proto flows.Proto
			var sport, dport uint16
			switch s % 3 {
			case 0:
				proto, sport, dport = flows.ProtoTCP, uint16(40000+s), uint16(1000+k)
			case 1:
				proto, sport, dport = flows.ProtoUDP, uint16(50000+s), uint16(2000+k)
			default:
				// ICMP: type 8, code k — distinct echo "flows".
				proto, sport, dport = flows.ProtoICMP, 0, uint16(8<<8|k&0xff)
			}
			pkts = append(pkts, Packet{
				Time:  1700000000 + t, // absolute capture epoch
				Key:   MakeKey(src, dst, proto, sport, dport),
				Bytes: 64 + 100*(s%5),
			})
		}
	}
	sort.SliceStable(pkts, func(i, j int) bool { return pkts[i].Time < pkts[j].Time })
	return pkts
}

func TestGoldenPcap(t *testing.T) {
	pcapPath := filepath.Join("testdata", "golden.pcap")
	tracePath := filepath.Join("testdata", "golden_trace.jsonl")

	var pcapBuf bytes.Buffer
	if err := WritePcap(&pcapBuf, GoldenPcapPackets(), WriteOptions{LittleEndian: true}); err != nil {
		t.Fatal(err)
	}
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(pcapPath, pcapBuf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d bytes)", pcapPath, pcapBuf.Len())
	}
	want, err := os.ReadFile(pcapPath)
	if err != nil {
		t.Fatalf("golden pcap missing (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(pcapBuf.Bytes(), want) {
		t.Fatal("golden.pcap no longer regenerates byte-for-byte; if intentional, UPDATE_GOLDEN=1 and document why")
	}

	// Ingest the committed file (not the in-memory copy: the fixture is
	// what experiment replays reference by SHA-256).
	res, err := IngestFile(pcapPath, IngestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sources != 8 {
		t.Fatalf("golden capture has %d sources, want 8", res.Sources)
	}
	if res.Dropped != 0 {
		t.Fatalf("golden capture dropped %d arrivals", res.Dropped)
	}
	var traceBuf bytes.Buffer
	if err := WriteTraceJSONL(&traceBuf, res); err != nil {
		t.Fatal(err)
	}
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(tracePath, traceBuf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d bytes)", tracePath, traceBuf.Len())
		return
	}
	wantTrace, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("golden trace missing (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(traceBuf.Bytes(), wantTrace) {
		t.Fatal("golden_trace.jsonl no longer regenerates from golden.pcap; the ingestion pipeline changed semantics")
	}

	// The written trace must parse back to the same arrivals.
	tr, rates, err := ReadTraceJSONL(bytes.NewReader(traceBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Arrivals()) != len(res.Trace.Arrivals()) || len(rates) != len(res.Rates) {
		t.Fatal("golden trace does not round-trip")
	}
}
