package ingest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

// Classic libpcap file framing (the pre-pcapng format every tool can
// write): a 24-byte global header whose magic number encodes both the
// byte order and the timestamp resolution, followed by 16-byte
// per-record headers. Both endiannesses and both resolutions are
// handled; only Ethernet link-layer captures are accepted, because that
// is the only framing ParseFrame understands.
const (
	magicMicro     = 0xa1b2c3d4 // seconds + microseconds
	magicNano      = 0xa1b23c4d // seconds + nanoseconds
	pcapFileHeader = 24
	pcapRecHeader  = 16
	// LinkTypeEthernet is the only accepted network field value.
	LinkTypeEthernet = 1
	// MaxSnapLen is the sanity cap on per-record capture lengths — the
	// historical libpcap MAXIMUM_SNAPLEN. A record claiming more is
	// corrupt (or adversarial), not merely jumbo.
	MaxSnapLen = 262144
)

// ErrPcapMagic means the stream does not start with a known pcap magic.
var ErrPcapMagic = errors.New("ingest: not a classic pcap file (bad magic)")

// Capture is a fully parsed pcap stream.
type Capture struct {
	// Packets are the parsed IPv4 packets in file order.
	Packets []Packet
	// Skipped counts records that were framed correctly but did not
	// parse as IPv4 (ARP, IPv6, truncated headers, …).
	Skipped int
	// SnapLen and Nano echo the capture parameters.
	SnapLen uint32
	Nano    bool
}

// ReadPcap parses a classic libpcap stream. It is strict about framing —
// a record header that lies about its length, overruns MaxSnapLen or
// overruns the file is an error — and lenient about payloads: frames
// that are not parseable IPv4 are counted in Skipped, not fatal.
func ReadPcap(r io.Reader) (*Capture, error) {
	var hdr [pcapFileHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("ingest: pcap header: %w", err)
	}
	var order binary.ByteOrder
	var nano bool
	switch magic := binary.BigEndian.Uint32(hdr[0:4]); magic {
	case magicMicro:
		order = binary.BigEndian
	case magicNano:
		order, nano = binary.BigEndian, true
	default:
		switch binary.LittleEndian.Uint32(hdr[0:4]) {
		case magicMicro:
			order = binary.LittleEndian
		case magicNano:
			order, nano = binary.LittleEndian, true
		default:
			return nil, ErrPcapMagic
		}
	}
	snaplen := order.Uint32(hdr[16:20])
	link := order.Uint32(hdr[20:24])
	if link != LinkTypeEthernet {
		return nil, fmt.Errorf("ingest: unsupported link type %d (only Ethernet)", link)
	}
	out := &Capture{SnapLen: snaplen, Nano: nano}
	div := 1e6
	if nano {
		div = 1e9
	}
	// The payload buffer is reused across records: parsed packets keep
	// only the 13-byte key, so one capture-sized scratch slice serves the
	// whole file with no per-record allocation.
	var rec [pcapRecHeader]byte
	var payload []byte
	for n := 0; ; n++ {
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("ingest: record %d header: %w", n, err)
		}
		sec := order.Uint32(rec[0:4])
		frac := order.Uint32(rec[4:8])
		inclLen := order.Uint32(rec[8:12])
		origLen := order.Uint32(rec[12:16])
		if inclLen > MaxSnapLen {
			return nil, fmt.Errorf("ingest: record %d claims %d captured bytes (cap %d)", n, inclLen, MaxSnapLen)
		}
		if snaplen > 0 && inclLen > snaplen {
			return nil, fmt.Errorf("ingest: record %d captured %d bytes > snaplen %d", n, inclLen, snaplen)
		}
		if int(inclLen) > cap(payload) {
			payload = make([]byte, inclLen)
		}
		payload = payload[:inclLen]
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, fmt.Errorf("ingest: record %d truncated: %w", n, err)
		}
		key, err := ParseFrame(payload)
		if err != nil {
			out.Skipped++
			continue
		}
		bytes := int(origLen)
		if bytes == 0 {
			bytes = int(inclLen)
		}
		out.Packets = append(out.Packets, Packet{
			Time:  float64(sec) + float64(frac)/div,
			Key:   key,
			Bytes: bytes,
		})
	}
}

// ReadPcapFile parses the capture at path.
func ReadPcapFile(path string) (*Capture, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ingest: %w", err)
	}
	defer f.Close()
	return ReadPcap(f)
}
