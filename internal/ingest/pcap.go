package ingest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

// Classic libpcap file framing (the pre-pcapng format every tool can
// write): a 24-byte global header whose magic number encodes both the
// byte order and the timestamp resolution, followed by 16-byte
// per-record headers. Both endiannesses and both resolutions are
// handled; only Ethernet link-layer captures are accepted, because that
// is the only framing ParseFrame understands.
const (
	magicMicro     = 0xa1b2c3d4 // seconds + microseconds
	magicNano      = 0xa1b23c4d // seconds + nanoseconds
	pcapFileHeader = 24
	pcapRecHeader  = 16
	// LinkTypeEthernet is the only accepted network field value.
	LinkTypeEthernet = 1
	// MaxSnapLen is the sanity cap on per-record capture lengths — the
	// historical libpcap MAXIMUM_SNAPLEN. A record claiming more is
	// corrupt (or adversarial), not merely jumbo.
	MaxSnapLen = 262144
)

// ErrPcapMagic means the stream does not start with a known pcap magic.
var ErrPcapMagic = errors.New("ingest: not a classic pcap file (bad magic)")

// ErrPcapNG means the stream is a pcapng capture, which this reader does
// not parse. The Section Header Block type 0x0A0D0D0A is byte-order
// independent (it reads the same either way), so one big-endian compare
// suffices.
var ErrPcapNG = errors.New("ingest: pcapng captures are not supported; convert with `tcpdump -r in.pcapng -w out.pcap` (or editcap -F pcap)")

const pcapngMagic = 0x0a0d0d0a

// Capture is a fully parsed pcap stream.
type Capture struct {
	// Packets are the parsed IPv4 packets in file order.
	Packets []Packet
	// Skipped counts records that were framed correctly but did not
	// parse as IPv4 (ARP, IPv6, truncated headers, …).
	Skipped int
	// SnapLen and Nano echo the capture parameters.
	SnapLen uint32
	Nano    bool
	// scratch is the per-record payload buffer, kept so ReadPcapInto
	// reuses it across captures.
	scratch []byte
}

// ReadPcap parses a classic libpcap stream. It is strict about framing —
// a record header that lies about its length, overruns MaxSnapLen or
// overruns the file is an error — and lenient about payloads: frames
// that are not parseable IPv4 are counted in Skipped, not fatal.
func ReadPcap(r io.Reader) (*Capture, error) {
	out := &Capture{}
	if err := ReadPcapInto(r, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadPcapInto parses a classic libpcap stream into c, reusing c's
// Packets backing array (and the reader's internal scratch) across
// calls. Callers replaying many captures — or the same capture many
// times, as the ingestion benchmark does — avoid re-growing a
// multi-megabyte packet slice on every file. All fields of c are reset
// before parsing.
func ReadPcapInto(r io.Reader, c *Capture) error {
	c.Packets = c.Packets[:0]
	c.Skipped = 0
	c.SnapLen = 0
	c.Nano = false
	var hdr [pcapFileHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return fmt.Errorf("ingest: pcap header: %w", err)
	}
	var order binary.ByteOrder
	var nano bool
	switch magic := binary.BigEndian.Uint32(hdr[0:4]); magic {
	case magicMicro:
		order = binary.BigEndian
	case magicNano:
		order, nano = binary.BigEndian, true
	case pcapngMagic:
		return ErrPcapNG
	default:
		switch binary.LittleEndian.Uint32(hdr[0:4]) {
		case magicMicro:
			order = binary.LittleEndian
		case magicNano:
			order, nano = binary.LittleEndian, true
		default:
			return ErrPcapMagic
		}
	}
	snaplen := order.Uint32(hdr[16:20])
	link := order.Uint32(hdr[20:24])
	if link != LinkTypeEthernet {
		return fmt.Errorf("ingest: unsupported link type %d (only Ethernet)", link)
	}
	c.SnapLen, c.Nano = snaplen, nano
	div := 1e6
	if nano {
		div = 1e9
	}
	// The payload buffer is reused across records: parsed packets keep
	// only the 13-byte key, so one capture-sized scratch slice serves the
	// whole file with no per-record allocation.
	var rec [pcapRecHeader]byte
	payload := c.scratch
	defer func() { c.scratch = payload }()
	for n := 0; ; n++ {
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("ingest: record %d header: %w", n, err)
		}
		sec := order.Uint32(rec[0:4])
		frac := order.Uint32(rec[4:8])
		inclLen := order.Uint32(rec[8:12])
		origLen := order.Uint32(rec[12:16])
		if inclLen > MaxSnapLen {
			return fmt.Errorf("ingest: record %d claims %d captured bytes (cap %d)", n, inclLen, MaxSnapLen)
		}
		if snaplen > 0 && inclLen > snaplen {
			return fmt.Errorf("ingest: record %d captured %d bytes > snaplen %d", n, inclLen, snaplen)
		}
		if int(inclLen) > cap(payload) {
			payload = make([]byte, inclLen)
		}
		payload = payload[:inclLen]
		if _, err := io.ReadFull(r, payload); err != nil {
			return fmt.Errorf("ingest: record %d truncated: %w", n, err)
		}
		key, err := ParseFrame(payload)
		if err != nil {
			c.Skipped++
			continue
		}
		bytes := int(origLen)
		if bytes == 0 {
			bytes = int(inclLen)
		}
		c.Packets = append(c.Packets, Packet{
			Time:  float64(sec) + float64(frac)/div,
			Key:   key,
			Bytes: bytes,
		})
	}
}

// ReadPcapFile parses the capture at path.
func ReadPcapFile(path string) (*Capture, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ingest: %w", err)
	}
	defer f.Close()
	return ReadPcap(f)
}
