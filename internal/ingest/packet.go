package ingest

import (
	"encoding/binary"
	"errors"
)

// Frame-parsing errors. Readers count a frame that fails to parse as
// skipped rather than aborting the capture: real captures carry ARP,
// IPv6, LLDP and truncated frames that simply are not part of the IPv4
// flow universe.
var (
	// ErrShortFrame means the frame ends before the headers do.
	ErrShortFrame = errors.New("ingest: frame too short")
	// ErrNotIPv4 means the frame is valid but not an IPv4 packet.
	ErrNotIPv4 = errors.New("ingest: not an IPv4 frame")
	// ErrBadIPv4 means the IPv4 header is structurally invalid.
	ErrBadIPv4 = errors.New("ingest: malformed IPv4 header")
)

// EtherTypes and the 802.1Q/802.1ad tag protocol identifiers.
const (
	etherTypeIPv4  = 0x0800
	etherTypeVLAN  = 0x8100 // 802.1Q
	etherTypeQinQ  = 0x88a8 // 802.1ad (stacked VLANs)
	maxVLANTags    = 4      // bounds tag-walking on hostile input
	ethHeaderLen   = 14
	ipv4MinHeader  = 20
	fragOffsetMask = 0x1fff
)

// ParseFrame parses one Ethernet frame into a flow Key. It understands
// 802.1Q/802.1ad VLAN stacking (up to maxVLANTags tags), IPv4 with
// options, and the TCP/UDP/ICMP transport headers.
//
// Parsing is deliberately forgiving at the transport layer: a frame
// whose IPv4 header is intact but whose transport header was cut off by
// the snap length — or that is a non-first fragment, which carries no
// transport header at all — yields a key with zero ports rather than an
// error, because the network-layer 5-tuple fields are still meaningful
// for per-source flow accounting. For ICMP, the type/code pair lands in
// the dst-port slot (the go-flows convention).
func ParseFrame(frame []byte) (Key, error) {
	if len(frame) < ethHeaderLen {
		return Key{}, ErrShortFrame
	}
	etherType := binary.BigEndian.Uint16(frame[12:14])
	off := ethHeaderLen
	for tags := 0; etherType == etherTypeVLAN || etherType == etherTypeQinQ; tags++ {
		if tags >= maxVLANTags {
			return Key{}, ErrNotIPv4
		}
		if len(frame) < off+4 {
			return Key{}, ErrShortFrame
		}
		etherType = binary.BigEndian.Uint16(frame[off+2 : off+4])
		off += 4
	}
	if etherType != etherTypeIPv4 {
		return Key{}, ErrNotIPv4
	}
	return parseIPv4(frame[off:])
}

// parseIPv4 parses an IPv4 packet (starting at the IP header) into a Key.
func parseIPv4(b []byte) (Key, error) {
	if len(b) < ipv4MinHeader {
		return Key{}, ErrShortFrame
	}
	if b[0]>>4 != 4 {
		return Key{}, ErrNotIPv4
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < ipv4MinHeader {
		return Key{}, ErrBadIPv4
	}
	if len(b) < ihl {
		return Key{}, ErrShortFrame
	}
	var k Key
	copy(k[0:4], b[12:16]) // src
	copy(k[4:8], b[16:20]) // dst
	proto := b[9]
	k[8] = proto

	// A non-first fragment carries payload, not a transport header.
	if binary.BigEndian.Uint16(b[6:8])&fragOffsetMask != 0 {
		return k, nil
	}
	tr := b[ihl:]
	switch proto {
	case 6, 17: // TCP, UDP: ports are the first four bytes
		if len(tr) >= 4 {
			copy(k[9:11], tr[0:2])
			copy(k[11:13], tr[2:4])
		}
	case 1: // ICMP: type/code keys the "port" slot (go-flows convention)
		if len(tr) >= 2 {
			copy(k[11:13], tr[0:2])
		}
	}
	return k, nil
}
