package plot

import (
	"bytes"
	"encoding/xml"
	"math"
	"strings"
	"testing"
)

func demoChart() *Chart {
	return &Chart{
		Title:  "Accuracy vs absence",
		XLabel: "P(absent)",
		YLabel: "accuracy",
		YMin:   Float(0),
		YMax:   Float(1),
		Series: []Series{
			{Name: "model", X: []float64{0.1, 0.3, 0.5, 0.7, 0.9}, Y: []float64{0.6, 0.65, 0.7, 0.8, 0.85}},
			{Name: "naive", X: []float64{0.1, 0.3, 0.5, 0.7, 0.9}, Y: []float64{0.58, 0.64, 0.66, 0.77, 0.84}},
		},
	}
}

func TestRenderSVGWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := demoChart().RenderSVG(&buf); err != nil {
		t.Fatal(err)
	}
	// Must be well-formed XML.
	dec := xml.NewDecoder(bytes.NewReader(buf.Bytes()))
	for {
		if _, err := dec.Token(); err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("malformed SVG: %v", err)
		}
	}
	out := buf.String()
	for _, want := range []string{"<svg", "polyline", "Accuracy vs absence", "model", "naive", "P(absent)", "accuracy"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if got := strings.Count(out, "<polyline"); got != 2 {
		t.Errorf("polylines = %d, want 2", got)
	}
}

func TestRenderSVGEscapesText(t *testing.T) {
	c := demoChart()
	c.Title = `model <m=1> & friends`
	var buf bytes.Buffer
	if err := c.RenderSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "<m=1>") {
		t.Fatal("unescaped markup in title")
	}
	if !strings.Contains(buf.String(), "&lt;m=1&gt; &amp; friends") {
		t.Fatal("title not escaped as expected")
	}
}

func TestRenderSVGStepSeries(t *testing.T) {
	c := &Chart{
		Title: "CDF",
		Series: []Series{
			{Name: "improvement", X: []float64{0, 0.1, 0.2}, Y: []float64{0.2, 0.7, 1.0}, Step: true},
		},
	}
	var buf bytes.Buffer
	if err := c.RenderSVG(&buf); err != nil {
		t.Fatal(err)
	}
	// A 3-point step series renders 3 + 2 staircase corner points.
	line := buf.String()
	start := strings.Index(line, `points="`)
	end := strings.Index(line[start+8:], `"`)
	points := strings.Fields(line[start+8 : start+8+end])
	if len(points) != 5 {
		t.Fatalf("step points = %d, want 5", len(points))
	}
}

func TestRenderSVGErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Chart{Title: "empty"}).RenderSVG(&buf); err == nil {
		t.Fatal("empty chart accepted")
	}
	bad := &Chart{Series: []Series{{Name: "x", X: []float64{1}, Y: nil}}}
	if err := bad.RenderSVG(&buf); err == nil {
		t.Fatal("mismatched series accepted")
	}
	degenerate := &Chart{Series: []Series{{Name: "x", X: []float64{}, Y: []float64{}}}}
	if err := degenerate.RenderSVG(&buf); err == nil {
		t.Fatal("pointless chart accepted")
	}
}

func TestRenderSVGSinglePoint(t *testing.T) {
	c := &Chart{Series: []Series{{Name: "p", X: []float64{2}, Y: []float64{3}}}}
	var buf bytes.Buffer
	if err := c.RenderSVG(&buf); err != nil {
		t.Fatal(err) // degenerate ranges must not divide by zero
	}
	if strings.Contains(buf.String(), "NaN") {
		t.Fatal("NaN leaked into SVG")
	}
}

func TestNiceTicks(t *testing.T) {
	ticks := niceTicks(0, 1, 6)
	if len(ticks) < 4 || len(ticks) > 12 {
		t.Fatalf("ticks = %v", ticks)
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i] <= ticks[i-1] {
			t.Fatalf("non-increasing ticks: %v", ticks)
		}
	}
	if ticks[0] < 0 || ticks[len(ticks)-1] > 1+1e-9 {
		t.Fatalf("ticks out of range: %v", ticks)
	}
	if got := niceTicks(5, 5, 4); len(got) != 2 {
		t.Fatalf("degenerate ticks = %v", got)
	}
}

func TestTickLabel(t *testing.T) {
	if tickLabel(3) != "3" {
		t.Fatal("integer label")
	}
	if tickLabel(0.25) != "0.25" {
		t.Fatalf("fraction label = %s", tickLabel(0.25))
	}
	if tickLabel(math.Pi) == "" {
		t.Fatal("empty label")
	}
}
