// Package plot renders the reproduction's figures as standalone SVG
// documents using only the standard library: line/marker series with
// axes, ticks, and a legend (Figures 6a, 7a, 7b) and step CDFs
// (Figure 6b). The output opens in any browser.
package plot

import (
	"fmt"
	"html"
	"io"
	"math"
)

// Series is one plotted line.
type Series struct {
	Name string
	X, Y []float64
	// Step renders the series as a staircase (for CDFs).
	Step bool
}

// Chart is a 2-D line chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Width and Height are the SVG dimensions in pixels (defaults
	// 640×420).
	Width, Height int
	// YMin/YMax optionally pin the y range (e.g. accuracy ∈ [0, 1]).
	YMin, YMax *float64
}

// Float returns a *float64 (for the fixed-range fields).
func Float(v float64) *float64 { return &v }

// palette is a color-blind-safe cycle.
var palette = []string{"#0072B2", "#D55E00", "#009E73", "#CC79A7", "#56B4E9", "#E69F00"}

const (
	marginLeft   = 64.0
	marginRight  = 16.0
	marginTop    = 40.0
	marginBottom = 48.0
	legendRow    = 16.0
)

// RenderSVG writes the chart as an SVG document.
func (c *Chart) RenderSVG(w io.Writer) error {
	if len(c.Series) == 0 {
		return fmt.Errorf("plot: chart %q has no series", c.Title)
	}
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("plot: series %q has %d x vs %d y", s.Name, len(s.X), len(s.Y))
		}
	}
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 640
	}
	if height <= 0 {
		height = 420
	}
	xmin, xmax, ymin, ymax, err := c.ranges()
	if err != nil {
		return err
	}

	plotW := float64(width) - marginLeft - marginRight
	plotH := float64(height) - marginTop - marginBottom
	px := func(x float64) float64 { return marginLeft + (x-xmin)/(xmax-xmin)*plotW }
	py := func(y float64) float64 { return marginTop + plotH - (y-ymin)/(ymax-ymin)*plotH }

	var b svgBuilder
	b.printf(`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`, width, height, width, height)
	b.printf(`<rect width="%d" height="%d" fill="white"/>`, width, height)
	b.printf(`<text x="%g" y="20" font-family="sans-serif" font-size="14" font-weight="bold">%s</text>`,
		marginLeft, html.EscapeString(c.Title))

	// Axes.
	b.printf(`<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`, marginLeft, marginTop, marginLeft, marginTop+plotH)
	b.printf(`<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`, marginLeft, marginTop+plotH, marginLeft+plotW, marginTop+plotH)

	// Ticks and grid.
	for _, t := range niceTicks(xmin, xmax, 6) {
		x := px(t)
		b.printf(`<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#ddd"/>`, x, marginTop, x, marginTop+plotH)
		b.printf(`<text x="%g" y="%g" font-family="sans-serif" font-size="10" text-anchor="middle">%s</text>`,
			x, marginTop+plotH+14, tickLabel(t))
	}
	for _, t := range niceTicks(ymin, ymax, 6) {
		y := py(t)
		b.printf(`<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#ddd"/>`, marginLeft, y, marginLeft+plotW, y)
		b.printf(`<text x="%g" y="%g" font-family="sans-serif" font-size="10" text-anchor="end">%s</text>`,
			marginLeft-6, y+3, tickLabel(t))
	}

	// Axis labels.
	b.printf(`<text x="%g" y="%g" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`,
		marginLeft+plotW/2, float64(height)-10, html.EscapeString(c.XLabel))
	b.printf(`<text x="14" y="%g" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 14 %g)">%s</text>`,
		marginTop+plotH/2, marginTop+plotH/2, html.EscapeString(c.YLabel))

	// Series.
	for i, s := range c.Series {
		color := palette[i%len(palette)]
		if len(s.X) == 0 {
			continue
		}
		points := buildPath(s, px, py)
		b.printf(`<polyline fill="none" stroke="%s" stroke-width="1.8" points="%s"/>`, color, points)
		for k := range s.X {
			b.printf(`<circle cx="%g" cy="%g" r="2.6" fill="%s"/>`, px(s.X[k]), py(s.Y[k]), color)
		}
		// Legend entry.
		ly := marginTop + 4 + float64(i)*legendRow
		lx := marginLeft + plotW - 150
		b.printf(`<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s" stroke-width="1.8"/>`, lx, ly, lx+18, ly, color)
		b.printf(`<text x="%g" y="%g" font-family="sans-serif" font-size="11">%s</text>`,
			lx+24, ly+3, html.EscapeString(s.Name))
	}
	b.printf(`</svg>`)
	_, err = io.WriteString(w, b.String())
	return err
}

// ranges computes the plotted extents, honoring fixed y bounds.
func (c *Chart) ranges() (xmin, xmax, ymin, ymax float64, err error) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	points := 0
	for _, s := range c.Series {
		for i := range s.X {
			points++
			xmin, xmax = math.Min(xmin, s.X[i]), math.Max(xmax, s.X[i])
			ymin, ymax = math.Min(ymin, s.Y[i]), math.Max(ymax, s.Y[i])
		}
	}
	if points == 0 {
		return 0, 0, 0, 0, fmt.Errorf("plot: chart %q has no points", c.Title)
	}
	if c.YMin != nil {
		ymin = *c.YMin
	}
	if c.YMax != nil {
		ymax = *c.YMax
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	return xmin, xmax, ymin, ymax, nil
}

// buildPath renders the polyline points, inserting staircase corners for
// step series.
func buildPath(s Series, px, py func(float64) float64) string {
	var b svgBuilder
	for k := range s.X {
		if k > 0 && s.Step {
			b.printf("%g,%g ", px(s.X[k]), py(s.Y[k-1]))
		}
		b.printf("%g,%g ", px(s.X[k]), py(s.Y[k]))
	}
	return b.String()
}

// niceTicks returns ~n human-friendly tick positions covering [lo, hi].
func niceTicks(lo, hi float64, n int) []float64 {
	if n < 2 || hi <= lo {
		return []float64{lo, hi}
	}
	rawStep := (hi - lo) / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(rawStep)))
	var step float64
	switch {
	case rawStep/mag < 1.5:
		step = mag
	case rawStep/mag < 3.5:
		step = 2 * mag
	case rawStep/mag < 7.5:
		step = 5 * mag
	default:
		step = 10 * mag
	}
	first := math.Ceil(lo/step) * step
	var out []float64
	for t := first; t <= hi+step*1e-9; t += step {
		out = append(out, t)
	}
	return out
}

func tickLabel(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e6 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3g", v)
}

// svgBuilder is a tiny printf string builder.
type svgBuilder struct {
	buf []byte
}

func (b *svgBuilder) printf(format string, args ...interface{}) {
	b.buf = append(b.buf, fmt.Sprintf(format, args...)...)
	b.buf = append(b.buf, '\n')
}

func (b *svgBuilder) String() string { return string(b.buf) }
