// Package controller implements the SDN controller application of the
// paper's testbed (the Ryu app of §VI-A): reactive installation of the
// highest-priority rule covering each reported flow, plus the deployment
// variants the paper discusses — proactive installation (§VII-B2) and
// consistent (dependency-aware) rule removal (§VII-A2).
//
// The transport-facing controllers (openflow.Controller over TCP and
// netsim's simulated control channel) delegate their decisions here, so
// policy behaviour is defined exactly once.
package controller

import (
	"fmt"
	"sync"
	"time"

	"flowrecon/internal/flows"
	"flowrecon/internal/rules"
)

// Options configure the controller application.
type Options struct {
	// ProcessingDelay is the controller's per-request compute time; it
	// contributes to t_setup and doubles as the §VII-B1 "adding delays"
	// countermeasure when increased.
	ProcessingDelay time.Duration
	// Proactive switches to proactive deployment (§VII-B2): every rule
	// is installed up front and reactive requests install nothing.
	Proactive bool
	// ConsistentRemoval enables the §VII-A2 collective-deployment
	// variant: when a rule is removed, overlapping lower-priority rules
	// must be removed with it (the behaviour the paper's model does NOT
	// capture; see the model-limitation test).
	ConsistentRemoval bool
}

// Decision is the controller's answer to one packet-in.
type Decision struct {
	// Install reports whether a rule should be installed.
	Install bool
	// RuleID is the rule to install when Install is true.
	RuleID int
	// Delay is the processing delay the request incurred.
	Delay time.Duration
}

// Stats counts controller activity.
type Stats struct {
	PacketIns int64
	Installs  int64
	// InstallsByRule[j] counts installations of rule j.
	InstallsByRule []int64
}

// Reactive is the controller application state.
type Reactive struct {
	policy *rules.Set
	opts   Options

	mu    sync.Mutex
	stats Stats
}

// New builds a controller application over a policy.
func New(policy *rules.Set, opts Options) *Reactive {
	return &Reactive{
		policy: policy,
		opts:   opts,
		stats:  Stats{InstallsByRule: make([]int64, policy.Len())},
	}
}

// Policy returns the controller's rule set.
func (c *Reactive) Policy() *rules.Set { return c.policy }

// Options returns the configured options.
func (c *Reactive) Options() Options { return c.opts }

// OnPacketIn decides how to handle a table miss for flow f: install the
// highest-priority covering rule, or release the packet uninstalled (the
// pre-installed flood default handles delivery, §VI-A).
func (c *Reactive) OnPacketIn(f flows.ID) Decision {
	c.mu.Lock()
	c.stats.PacketIns++
	c.mu.Unlock()
	d := Decision{Delay: c.opts.ProcessingDelay}
	if c.opts.Proactive {
		// Proactive deployment never installs reactively; a miss can
		// only be an uncovered flow.
		return d
	}
	j, ok := c.policy.HighestCovering(f)
	if !ok {
		return d
	}
	d.Install = true
	d.RuleID = j
	c.mu.Lock()
	c.stats.Installs++
	c.stats.InstallsByRule[j]++
	c.mu.Unlock()
	return d
}

// ProactivePlan returns the rule IDs to pre-install at switch setup, in
// descending priority order. With Proactive set this is the whole policy;
// it errors when the table cannot hold it (the capacity caveat of
// §VII-B2).
func (c *Reactive) ProactivePlan(capacity int) ([]int, error) {
	if !c.opts.Proactive {
		return nil, nil
	}
	if c.policy.Len() > capacity {
		return nil, fmt.Errorf("controller: proactive deployment needs %d slots, table has %d", c.policy.Len(), capacity)
	}
	return c.policy.ByPriority(), nil
}

// DependentRemovals returns the additional rules that must be removed
// when rule j is removed under consistent deployment (§VII-A2): every
// lower-priority rule overlapping j. Without ConsistentRemoval it returns
// nothing.
func (c *Reactive) DependentRemovals(j int) []int {
	if !c.opts.ConsistentRemoval {
		return nil
	}
	var out []int
	cover := c.policy.Rule(j).Cover
	for other := 0; other < c.policy.Len(); other++ {
		if other == j {
			continue
		}
		if c.policy.HigherPriority(j, other) && cover.Overlaps(c.policy.Rule(other).Cover) {
			out = append(out, other)
		}
	}
	return out
}

// Snapshot returns a copy of the activity counters.
func (c *Reactive) Snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.stats
	out.InstallsByRule = make([]int64, len(c.stats.InstallsByRule))
	copy(out.InstallsByRule, c.stats.InstallsByRule)
	return out
}
