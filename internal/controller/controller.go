// Package controller implements the SDN controller application of the
// paper's testbed (the Ryu app of §VI-A): reactive installation of the
// highest-priority rule covering each reported flow, plus the deployment
// variants the paper discusses — proactive installation (§VII-B2) and
// consistent (dependency-aware) rule removal (§VII-A2).
//
// The transport-facing controllers (openflow.Controller over TCP and
// netsim's simulated control channel) delegate their decisions here, so
// policy behaviour is defined exactly once.
package controller

import (
	"fmt"
	"sync"
	"time"

	"flowrecon/internal/flows"
	"flowrecon/internal/rules"
	"flowrecon/internal/telemetry"
)

// Options configure the controller application.
type Options struct {
	// ProcessingDelay is the controller's per-request compute time; it
	// contributes to t_setup and doubles as the §VII-B1 "adding delays"
	// countermeasure when increased.
	ProcessingDelay time.Duration
	// Proactive switches to proactive deployment (§VII-B2): every rule
	// is installed up front and reactive requests install nothing.
	Proactive bool
	// ConsistentRemoval enables the §VII-A2 collective-deployment
	// variant: when a rule is removed, overlapping lower-priority rules
	// must be removed with it (the behaviour the paper's model does NOT
	// capture; see the model-limitation test).
	ConsistentRemoval bool
}

// Decision is the controller's answer to one packet-in.
type Decision struct {
	// Install reports whether a rule should be installed.
	Install bool
	// RuleID is the rule to install when Install is true.
	RuleID int
	// Delay is the processing delay the request incurred.
	Delay time.Duration
}

// Stats counts controller activity.
type Stats struct {
	PacketIns int64
	Installs  int64
	// InstallsByRule[j] counts installations of rule j.
	InstallsByRule []int64
}

// Reactive is the controller application state.
type Reactive struct {
	policy *rules.Set
	opts   Options

	mu    sync.Mutex
	stats Stats
	tm    reactiveMetrics // resolved telemetry instruments (zero = disabled)
}

// reactiveMetrics are the controller application's telemetry
// instruments; all nil (no-op) until SetTelemetry attaches a registry.
type reactiveMetrics struct {
	packetIns       *telemetry.Counter
	reactive        *telemetry.Counter // decisions that install a rule
	noInstall       *telemetry.Counter // decisions that release uninstalled
	proactivePlans  *telemetry.Counter
	capacityRejects *telemetry.Counter // §VII-B2 capacity-check failures
	tracer          *telemetry.Tracer
}

// SetTelemetry attaches the controller application to a registry,
// resolving its metric series once. A nil registry disables telemetry.
func (c *Reactive) SetTelemetry(reg *telemetry.Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tm = reactiveMetrics{
		packetIns:       reg.Counter("controller_packet_ins_total"),
		reactive:        reg.Counter("controller_decisions_total", "kind", "install"),
		noInstall:       reg.Counter("controller_decisions_total", "kind", "release"),
		proactivePlans:  reg.Counter("controller_proactive_plans_total"),
		capacityRejects: reg.Counter("controller_capacity_rejections_total"),
		tracer:          reg.Tracer(),
	}
}

// New builds a controller application over a policy.
func New(policy *rules.Set, opts Options) *Reactive {
	return &Reactive{
		policy: policy,
		opts:   opts,
		stats:  Stats{InstallsByRule: make([]int64, policy.Len())},
	}
}

// Policy returns the controller's rule set.
func (c *Reactive) Policy() *rules.Set { return c.policy }

// Options returns the configured options.
func (c *Reactive) Options() Options { return c.opts }

// OnPacketIn decides how to handle a table miss for flow f: install the
// highest-priority covering rule, or release the packet uninstalled (the
// pre-installed flood default handles delivery, §VI-A).
func (c *Reactive) OnPacketIn(f flows.ID) Decision {
	c.mu.Lock()
	c.stats.PacketIns++
	c.mu.Unlock()
	c.tm.packetIns.Inc()
	d := Decision{Delay: c.opts.ProcessingDelay}
	if c.opts.Proactive {
		// Proactive deployment never installs reactively; a miss can
		// only be an uncovered flow.
		c.tm.noInstall.Inc()
		c.traceDecision(f, -1)
		return d
	}
	j, ok := c.policy.HighestCovering(f)
	if !ok {
		c.tm.noInstall.Inc()
		c.traceDecision(f, -1)
		return d
	}
	d.Install = true
	d.RuleID = j
	c.mu.Lock()
	c.stats.Installs++
	c.stats.InstallsByRule[j]++
	c.mu.Unlock()
	c.tm.reactive.Inc()
	c.traceDecision(f, j)
	return d
}

// traceDecision emits one packet-in decision event (rule -1 when the
// packet was released uninstalled).
func (c *Reactive) traceDecision(f flows.ID, rule int) {
	if c.tm.tracer == nil {
		return
	}
	e := telemetry.Ev("packet_in.decision")
	e.Node = "controller"
	e.Flow = int(f)
	e.Rule = rule
	c.tm.tracer.Emit(e)
}

// ProactivePlan returns the rule IDs to pre-install at switch setup, in
// descending priority order. With Proactive set this is the whole policy;
// it errors when the table cannot hold it (the capacity caveat of
// §VII-B2).
func (c *Reactive) ProactivePlan(capacity int) ([]int, error) {
	if !c.opts.Proactive {
		return nil, nil
	}
	if c.policy.Len() > capacity {
		c.tm.capacityRejects.Inc()
		return nil, fmt.Errorf("controller: proactive deployment needs %d slots, table has %d", c.policy.Len(), capacity)
	}
	c.tm.proactivePlans.Inc()
	return c.policy.ByPriority(), nil
}

// DependentRemovals returns the additional rules that must be removed
// when rule j is removed under consistent deployment (§VII-A2): every
// lower-priority rule overlapping j. Without ConsistentRemoval it returns
// nothing.
func (c *Reactive) DependentRemovals(j int) []int {
	if !c.opts.ConsistentRemoval {
		return nil
	}
	var out []int
	cover := c.policy.Rule(j).Cover
	for other := 0; other < c.policy.Len(); other++ {
		if other == j {
			continue
		}
		if c.policy.HigherPriority(j, other) && cover.Overlaps(c.policy.Rule(other).Cover) {
			out = append(out, other)
		}
	}
	return out
}

// Snapshot returns a copy of the activity counters.
func (c *Reactive) Snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.stats
	out.InstallsByRule = make([]int64, len(c.stats.InstallsByRule))
	copy(out.InstallsByRule, c.stats.InstallsByRule)
	return out
}
