package controller

import (
	"testing"
	"time"

	"flowrecon/internal/flows"
	"flowrecon/internal/rules"
)

func testPolicy(t *testing.T) *rules.Set {
	t.Helper()
	s, err := rules.NewSet([]rules.Rule{
		{Name: "wide", Cover: flows.SetOf(0, 1), Priority: 3, Timeout: 5},
		{Name: "mid", Cover: flows.SetOf(1, 2), Priority: 2, Timeout: 5},
		{Name: "low", Cover: flows.SetOf(2), Priority: 1, Timeout: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestOnPacketInReactive(t *testing.T) {
	c := New(testPolicy(t), Options{ProcessingDelay: 2 * time.Millisecond})
	d := c.OnPacketIn(1)
	if !d.Install || d.RuleID != 0 {
		t.Fatalf("flow 1 → %+v, want install rule 0 (highest covering)", d)
	}
	if d.Delay != 2*time.Millisecond {
		t.Fatalf("delay = %v", d.Delay)
	}
	d = c.OnPacketIn(2)
	if !d.Install || d.RuleID != 1 {
		t.Fatalf("flow 2 → %+v, want rule 1", d)
	}
	d = c.OnPacketIn(9)
	if d.Install {
		t.Fatalf("uncovered flow installed %+v", d)
	}
	st := c.Snapshot()
	if st.PacketIns != 3 || st.Installs != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.InstallsByRule[0] != 1 || st.InstallsByRule[1] != 1 || st.InstallsByRule[2] != 0 {
		t.Fatalf("per-rule installs = %v", st.InstallsByRule)
	}
}

func TestSnapshotIsACopy(t *testing.T) {
	c := New(testPolicy(t), Options{})
	c.OnPacketIn(0)
	st := c.Snapshot()
	st.InstallsByRule[0] = 99
	if c.Snapshot().InstallsByRule[0] == 99 {
		t.Fatal("snapshot aliases internal state")
	}
}

func TestProactiveNeverInstallsReactively(t *testing.T) {
	c := New(testPolicy(t), Options{Proactive: true})
	if d := c.OnPacketIn(1); d.Install {
		t.Fatalf("proactive controller installed reactively: %+v", d)
	}
	plan, err := c.ProactivePlan(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 3 || plan[0] != 0 {
		t.Fatalf("plan = %v (want all rules, priority first)", plan)
	}
	if _, err := c.ProactivePlan(2); err == nil {
		t.Fatal("over-capacity proactive plan accepted (§VII-B2 caveat)")
	}
}

func TestProactivePlanDisabled(t *testing.T) {
	c := New(testPolicy(t), Options{})
	plan, err := c.ProactivePlan(1)
	if err != nil || plan != nil {
		t.Fatalf("reactive controller planned %v, %v", plan, err)
	}
}

func TestDependentRemovals(t *testing.T) {
	c := New(testPolicy(t), Options{ConsistentRemoval: true})
	// Removing "wide" (prio 3, covers {0,1}) must drag "mid" (overlaps
	// on flow 1) but not "low" (disjoint).
	dep := c.DependentRemovals(0)
	if len(dep) != 1 || dep[0] != 1 {
		t.Fatalf("dependents of wide = %v", dep)
	}
	// Removing the lowest-priority rule drags nothing.
	if dep := c.DependentRemovals(2); dep != nil {
		t.Fatalf("dependents of low = %v", dep)
	}
	// Without the option nothing is dragged.
	plain := New(testPolicy(t), Options{})
	if dep := plain.DependentRemovals(0); dep != nil {
		t.Fatalf("inconsistent controller dragged %v", dep)
	}
}

func TestAccessors(t *testing.T) {
	p := testPolicy(t)
	opts := Options{Proactive: true}
	c := New(p, opts)
	if c.Policy() != p || c.Options() != opts {
		t.Fatal("accessors broken")
	}
}
