package telemetry

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"
)

// ProfileRing periodically captures CPU and heap profiles into a
// directory, retaining only the newest keep snapshots of each kind — a
// flight recorder for long attack runs: when a run degrades hours in,
// the last few windows of profile data are already on disk.
type ProfileRing struct {
	dir     string
	keep    int
	cpuDur  time.Duration
	stop    chan struct{}
	done    chan struct{}
	lastErr error
}

// StartProfileRing begins capturing a heap profile (and, when cpuDur > 0,
// a cpuDur-long CPU profile) every interval, writing
// heap-<seq>.pprof / cpu-<seq>.pprof files under dir and pruning all but
// the newest keep of each kind. It returns an error only if dir cannot
// be created; capture errors are retained for Err and do not stop the
// ring. Stop halts capture and waits for the in-flight cycle.
func StartProfileRing(dir string, interval time.Duration, keep int, cpuDur time.Duration) (*ProfileRing, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if interval <= 0 {
		interval = time.Minute
	}
	if keep <= 0 {
		keep = 4
	}
	if cpuDur >= interval {
		cpuDur = interval / 2
	}
	r := &ProfileRing{
		dir:    dir,
		keep:   keep,
		cpuDur: cpuDur,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go r.run(interval)
	return r, nil
}

// Stop halts the ring and waits for any in-flight capture to finish.
func (r *ProfileRing) Stop() {
	if r == nil {
		return
	}
	close(r.stop)
	<-r.done
}

// Err returns the most recent capture error (nil while healthy).
func (r *ProfileRing) Err() error {
	if r == nil {
		return nil
	}
	return r.lastErr
}

func (r *ProfileRing) run(interval time.Duration) {
	defer close(r.done)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for seq := 1; ; seq++ {
		select {
		case <-r.stop:
			return
		case <-ticker.C:
		}
		if err := r.capture(seq); err != nil {
			r.lastErr = err
		}
	}
}

func (r *ProfileRing) capture(seq int) error {
	heapPath := filepath.Join(r.dir, fmt.Sprintf("heap-%06d.pprof", seq))
	f, err := os.Create(heapPath)
	if err != nil {
		return err
	}
	runtime.GC() // fold unreachable objects out of the heap profile
	err = pprof.WriteHeapProfile(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if r.cpuDur > 0 {
		cpuPath := filepath.Join(r.dir, fmt.Sprintf("cpu-%06d.pprof", seq))
		cf, err := os.Create(cpuPath)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(cf); err != nil {
			cf.Close()
			return err
		}
		// Honor Stop during the capture window rather than blocking it.
		select {
		case <-r.stop:
		case <-time.After(r.cpuDur):
		}
		pprof.StopCPUProfile()
		if err := cf.Close(); err != nil {
			return err
		}
	}
	return r.prune()
}

// prune deletes all but the newest keep snapshots of each profile kind.
func (r *ProfileRing) prune() error {
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		return err
	}
	byKind := map[string][]string{}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".pprof") {
			continue
		}
		kind, _, ok := strings.Cut(name, "-")
		if !ok {
			continue
		}
		byKind[kind] = append(byKind[kind], name)
	}
	var firstErr error
	for _, names := range byKind {
		sort.Strings(names) // zero-padded seq → lexical order is capture order
		for len(names) > r.keep {
			if err := os.Remove(filepath.Join(r.dir, names[0])); err != nil && firstErr == nil {
				firstErr = err
			}
			names = names[1:]
		}
	}
	return firstErr
}
