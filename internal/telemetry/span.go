package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// SpanID identifies one span within a SpanRecorder. Zero is "no span"
// (the nil parent, or the result of starting a span on a disabled
// recorder) and is always safe to pass back into the recorder.
type SpanID int64

// Span is one timed node of a causal tree. Trace is the correlation ID
// shared by every span of one logical operation (a trial, a probe, an
// echo exchange); Parent links the tree. Start/End are in virtual
// seconds where the emitter runs under the simulator's clock, and in
// seconds since the recorder's epoch for wall-clock emitters; WallNs
// carries the absolute wall time of Start for cross-recorder alignment.
type Span struct {
	Trace  int64   `json:"trace"`
	ID     SpanID  `json:"id"`
	Parent SpanID  `json:"parent,omitempty"`
	Name   string  `json:"name"`
	Node   string  `json:"node,omitempty"`
	Flow   int     `json:"flow"`
	Rule   int     `json:"rule"`
	Start  float64 `json:"start"`
	End    float64 `json:"end"`
	WallNs int64   `json:"wallNs,omitempty"`
	Detail string  `json:"detail,omitempty"`
}

// Duration returns End − Start (0 for an unfinished span).
func (s Span) Duration() float64 {
	if s.End < s.Start {
		return 0
	}
	return s.End - s.Start
}

// SpanRecorder collects spans for causal tracing. A nil *SpanRecorder is
// the disabled instrument: every method is a no-op behind a single nil
// check, and Start returns SpanID 0, which End/Annotate ignore — the
// span hot path costs nothing when spans are off.
type SpanRecorder struct {
	mu        sync.Mutex
	nextID    int64
	nextTrace int64
	ns        int64 // namespace bits OR-ed into every ID (see SetNamespace)
	spans     []Span
	index     map[SpanID]int // id → position in spans
	cap       int            // max retained spans (excess Starts are dropped)
	clock     func() int64   // wall-clock source for WallNs; nil = don't stamp
}

// NewSpanRecorder returns a recorder retaining at most cap spans
// (cap ≤ 0 selects a generous default).
func NewSpanRecorder(cap int) *SpanRecorder {
	if cap <= 0 {
		cap = 1 << 16
	}
	return &SpanRecorder{
		index: make(map[SpanID]int),
		cap:   cap,
		clock: func() int64 { return time.Now().UnixNano() },
	}
}

// SetWallClock replaces the wall-clock source stamped into each span's
// WallNs. A nil clock disables wall stamping entirely (WallNs stays 0 and
// is omitted from JSON), which makes the recorder's output a pure function
// of its inputs — the property the deterministic trial recordings rely on.
func (r *SpanRecorder) SetWallClock(clock func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.clock = clock
	r.mu.Unlock()
}

// SetNamespace tags every subsequently allocated span and trace ID with
// the given namespace (IDs become ns<<40 | seq). Distinct processes that
// will later merge their span streams — the TCP switch and controller
// daemons — pick distinct namespaces so a parent reference carried
// across the wire by a SpanContext stays unambiguous in the joined
// forest. ns must fit in 23 bits; 0 (the default) restores plain
// sequential IDs. Namespaced recorders must not be Import targets or
// sources (Import's offset remapping assumes dense sequential IDs).
func (r *SpanRecorder) SetNamespace(ns int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.ns = ns << 40
	r.mu.Unlock()
}

// NewTrace allocates a fresh correlation ID (0 on a nil recorder).
func (r *SpanRecorder) NewTrace() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	r.nextTrace++
	t := r.ns | r.nextTrace
	r.mu.Unlock()
	return t
}

// Start opens a span under trace/parent beginning at time at and returns
// its ID. When the recorder is nil or full it returns 0, which every
// other method treats as "no span".
func (r *SpanRecorder) Start(trace int64, parent SpanID, name, node string, at float64) SpanID {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.spans) >= r.cap {
		return 0
	}
	r.nextID++
	id := SpanID(r.ns | r.nextID)
	r.index[id] = len(r.spans)
	var wall int64
	if r.clock != nil {
		wall = r.clock()
	}
	r.spans = append(r.spans, Span{
		Trace: trace, ID: id, Parent: parent,
		Name: name, Node: node,
		Flow: -1, Rule: -1,
		Start: at, End: at,
		WallNs: wall,
	})
	return id
}

// Import merges spans produced by another recorder (typically a fresh
// per-trial recorder whose IDs and traces start at 1) into this one,
// remapping IDs, parents, and trace numbers past this recorder's
// allocation counters so the merged stream is exactly what a single
// shared recorder would have produced. This is the in-order assembly
// primitive of the parallel trial runner: each worker records into its
// own recorder, and the collector imports them in trial order.
func (r *SpanRecorder) Import(spans []Span) {
	if r == nil || len(spans) == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	idOff, traceOff := r.nextID, r.nextTrace
	var maxID, maxTrace int64
	for _, s := range spans {
		if int64(s.ID) > maxID {
			maxID = int64(s.ID)
		}
		if s.Trace > maxTrace {
			maxTrace = s.Trace
		}
		s.ID += SpanID(idOff)
		if s.Parent != 0 {
			s.Parent += SpanID(idOff)
		}
		if s.Trace != 0 {
			s.Trace += traceOff
		}
		if len(r.spans) >= r.cap {
			continue
		}
		r.index[s.ID] = len(r.spans)
		r.spans = append(r.spans, s)
	}
	r.nextID += maxID
	r.nextTrace += maxTrace
}

// End closes a span at time at. Unknown (or zero) IDs are ignored.
func (r *SpanRecorder) End(id SpanID, at float64) {
	if r == nil || id == 0 {
		return
	}
	r.mu.Lock()
	if i, ok := r.index[id]; ok {
		r.spans[i].End = at
	}
	r.mu.Unlock()
}

// Annotate attaches a flow, rule, and detail string to a span. Negative
// flow/rule leave the corresponding field unchanged; an empty detail
// leaves the detail unchanged.
func (r *SpanRecorder) Annotate(id SpanID, flow, rule int, detail string) {
	if r == nil || id == 0 {
		return
	}
	r.mu.Lock()
	if i, ok := r.index[id]; ok {
		if flow >= 0 {
			r.spans[i].Flow = flow
		}
		if rule >= 0 {
			r.spans[i].Rule = rule
		}
		if detail != "" {
			r.spans[i].Detail = detail
		}
	}
	r.mu.Unlock()
}

// Len returns the number of retained spans (0 on a nil recorder).
func (r *SpanRecorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// Spans returns a copy of the retained spans in start order.
func (r *SpanRecorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	return out
}

// Drain returns the retained spans and clears the recorder, keeping ID
// and trace allocation monotone — the per-trial collection primitive.
func (r *SpanRecorder) Drain() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.spans
	r.spans = nil
	r.index = make(map[SpanID]int)
	return out
}

// WriteJSONL writes the retained spans one JSON object per line.
func (r *SpanRecorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, s := range r.Spans() {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return nil
}

// SpanNode is one node of a reconstructed span tree.
type SpanNode struct {
	Span     Span
	Children []*SpanNode
}

// BuildSpanForest reconstructs the causal trees from a flat span list:
// spans whose parent is absent (or zero) become roots. Roots are ordered
// by (trace, start); children by start time.
func BuildSpanForest(spans []Span) []*SpanNode {
	nodes := make(map[SpanID]*SpanNode, len(spans))
	for _, s := range spans {
		nodes[s.ID] = &SpanNode{Span: s}
	}
	var roots []*SpanNode
	for _, s := range spans {
		n := nodes[s.ID]
		if p, ok := nodes[s.Parent]; ok && s.Parent != 0 && s.Parent != s.ID {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	var sortNodes func(ns []*SpanNode)
	sortNodes = func(ns []*SpanNode) {
		sort.Slice(ns, func(i, j int) bool {
			a, b := ns[i].Span, ns[j].Span
			if a.Trace != b.Trace {
				return a.Trace < b.Trace
			}
			if a.Start != b.Start {
				return a.Start < b.Start
			}
			return a.ID < b.ID
		})
		for _, n := range ns {
			sortNodes(n.Children)
		}
	}
	sortNodes(roots)
	return roots
}
