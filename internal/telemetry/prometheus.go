package telemetry

import (
	"fmt"
	"io"
	"strings"
)

// splitSeries splits a series key produced by Series into its family
// name and the inner label text (without braces; empty when unlabelled).
func splitSeries(key string) (family, labels string) {
	i := strings.IndexByte(key, '{')
	if i < 0 {
		return key, ""
	}
	return key[:i], strings.TrimSuffix(key[i+1:], "}")
}

// joinLabels renders a brace block from inner label fragments, skipping
// empties.
func joinLabels(parts ...string) string {
	kept := parts[:0]
	for _, p := range parts {
		if p != "" {
			kept = append(kept, p)
		}
	}
	if len(kept) == 0 {
		return ""
	}
	return "{" + strings.Join(kept, ",") + "}"
}

// WritePrometheus renders every instrument in the Prometheus text
// exposition format (version 0.0.4). Counters become `counter` families,
// gauges `gauge`, histograms the standard `_bucket`/`_sum`/`_count`
// triplet with cumulative `le` buckets. On a nil registry it writes
// nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[string]int64, len(r.counters))
	for k, c := range r.counters {
		counters[k] = c.Value()
	}
	gauges := make(map[string]int64, len(r.gauges))
	for k, g := range r.gauges {
		gauges[k] = g.Value()
	}
	hists := make(map[string]HistogramSnapshot, len(r.histograms))
	for k, h := range r.histograms {
		hists[k] = h.Snapshot()
	}
	r.mu.Unlock()

	typed := make(map[string]bool)
	for _, key := range sortedKeys(counters) {
		family, labels := splitSeries(key)
		if !typed[family] {
			typed[family] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", family); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s%s %d\n", family, joinLabels(labels), counters[key]); err != nil {
			return err
		}
	}
	for _, key := range sortedKeys(gauges) {
		family, labels := splitSeries(key)
		if !typed[family] {
			typed[family] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", family); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s%s %d\n", family, joinLabels(labels), gauges[key]); err != nil {
			return err
		}
	}
	for _, key := range sortedKeys(hists) {
		family, labels := splitSeries(key)
		snap := hists[key]
		if !typed[family] {
			typed[family] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", family); err != nil {
				return err
			}
		}
		var cum int64
		for i, c := range snap.Counts {
			cum += c
			le := "+Inf"
			if i < len(snap.Bounds) {
				le = formatFloat(snap.Bounds[i])
			}
			lePair := fmt.Sprintf("le=%q", le)
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", family, joinLabels(labels, lePair), cum); err != nil {
				return err
			}
		}
		sum := snap.Summary.Mean * float64(snap.Summary.N)
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", family, joinLabels(labels), formatFloat(sum)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", family, joinLabels(labels), cum); err != nil {
			return err
		}
	}
	return nil
}

// formatFloat renders a float compactly ("0.001", not "1e-03", for the
// common bucket bounds; falls back to %g).
func formatFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	return s
}
