package telemetry

import "sync/atomic"

// Counter is a monotonically increasing atomic counter. A nil *Counter is
// the disabled instrument: every method is a no-op.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (n must be ≥ 0 for the exported value to stay monotone; this
// is not enforced).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. A nil *Gauge is the disabled
// instrument: every method is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}
