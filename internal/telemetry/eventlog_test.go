package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestEventLogNilSafe(t *testing.T) {
	var l *EventLog
	l.Emit(NewWideEvent("x"))
	l.Append([]WideEvent{NewWideEvent("y")})
	l.SetClock(nil)
	l.SetSampling("x", 10)
	l.SetSink(&bytes.Buffer{})
	if l.Len() != 0 || l.Dropped() != 0 || l.Events() != nil || l.SinkErr() != nil {
		t.Fatal("nil event log is not inert")
	}
}

func TestEventLogSequenceAndRing(t *testing.T) {
	l := NewEventLog(4)
	l.SetClock(nil)
	for i := 0; i < 6; i++ {
		e := NewWideEvent("probe")
		e.Trial = i
		l.Emit(e)
	}
	if l.Len() != 4 || l.Dropped() != 2 {
		t.Fatalf("len=%d dropped=%d, want 4 and 2", l.Len(), l.Dropped())
	}
	evs := l.Events()
	if evs[0].Trial != 2 || evs[3].Trial != 5 {
		t.Fatalf("ring kept wrong window: %+v", evs)
	}
	for i, e := range evs {
		if e.Seq != int64(i+3) {
			t.Fatalf("event %d has seq %d, want %d", i, e.Seq, i+3)
		}
		if e.WallNs != 0 {
			t.Fatalf("SetClock(nil) still stamped WallNs=%d", e.WallNs)
		}
	}
}

func TestEventLogSampling(t *testing.T) {
	l := NewEventLog(0)
	l.SetClock(nil)
	l.SetSampling("probe", 3)
	for i := 0; i < 9; i++ {
		l.Emit(NewWideEvent("probe"))
		l.Emit(NewWideEvent("verdict"))
	}
	var probes, verdicts int
	for _, e := range l.Events() {
		switch e.Kind {
		case "probe":
			probes++
		case "verdict":
			verdicts++
		}
	}
	if probes != 3 || verdicts != 9 {
		t.Fatalf("kept %d probes and %d verdicts, want 3 and 9", probes, verdicts)
	}
	// n ≤ 1 removes the sampler again.
	l.SetSampling("probe", 1)
	l.Emit(NewWideEvent("probe"))
	if got := len(FilterWideEvents(l.Events(), "probe", 0)); got != 4 {
		t.Fatalf("sampler not removed: %d probes", got)
	}
}

func TestEventLogAppendMatchesEmit(t *testing.T) {
	mk := func() []WideEvent {
		var evs []WideEvent
		for i := 0; i < 5; i++ {
			e := NewWideEvent("probe")
			e.Trial = i
			evs = append(evs, e)
		}
		return evs
	}
	one := NewEventLog(0)
	one.SetClock(nil)
	for _, e := range mk() {
		one.Emit(e)
	}
	batch := NewEventLog(0)
	batch.SetClock(nil)
	batch.Append(mk())

	var a, b bytes.Buffer
	if err := one.WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := batch.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("Append and Emit diverge:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestEventLogSinkStreamsAndDetaches(t *testing.T) {
	l := NewEventLog(0)
	l.SetClock(nil)
	var sink bytes.Buffer
	l.SetSink(&sink)
	e := NewWideEvent("fault.loss")
	e.Node = "netsim"
	l.Emit(e)
	var back WideEvent
	if err := json.Unmarshal(sink.Bytes(), &back); err != nil {
		t.Fatalf("sink line not JSON: %v (%q)", err, sink.String())
	}
	if back.Kind != "fault.loss" || back.Node != "netsim" || back.Seq != 1 {
		t.Fatalf("sink event mangled: %+v", back)
	}

	l.SetSink(failWriter{})
	l.Emit(NewWideEvent("x"))
	if l.SinkErr() == nil {
		t.Fatal("sink error not surfaced")
	}
	before := l.Len()
	l.Emit(NewWideEvent("y")) // detached sink must not fail further emits
	if l.Len() != before+1 {
		t.Fatal("emit after sink failure lost the event")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

// TestSinkDetachCounter pins the observable half of the detach-by-design
// contract: when the JSONL sink dies, eventlog_sink_detached_total must
// tick exactly once — the detach is silent in the emit path on purpose,
// so the counter is the only live signal that a chaos run stopped
// recording its event stream.
func TestSinkDetachCounter(t *testing.T) {
	reg := NewRegistry(0)
	l := reg.EnableEvents(8)
	l.SetSink(failWriter{})
	for i := 0; i < 5; i++ {
		l.Emit(NewWideEvent("x"))
	}
	c := reg.Counter("eventlog_sink_detached_total")
	if got := c.Value(); got != 1 {
		t.Fatalf("eventlog_sink_detached_total = %d after a failing sink, want exactly 1", got)
	}
	if l.SinkErr() == nil {
		t.Fatal("SinkErr lost the detach reason")
	}
	// Re-attaching and failing again is a second detach.
	l.SetSink(failWriter{})
	l.Emit(NewWideEvent("y"))
	if got := c.Value(); got != 2 {
		t.Fatalf("counter = %d after re-attach + second failure, want 2", got)
	}
	// A standalone log without a wired counter stays safe.
	bare := NewEventLog(4)
	bare.SetSink(failWriter{})
	bare.Emit(NewWideEvent("z"))
	if bare.SinkErr() == nil {
		t.Fatal("standalone log lost the sink error")
	}
}

func TestRegistryEnableEvents(t *testing.T) {
	var nilReg *Registry
	if nilReg.EnableEvents(8) != nil || nilReg.Events() != nil {
		t.Fatal("nil registry returned a live event log")
	}
	reg := NewRegistry(0)
	if reg.Events() != nil {
		t.Fatal("events enabled by default")
	}
	l := reg.EnableEvents(8)
	if l == nil || reg.Events() != l || reg.EnableEvents(8) != l {
		t.Fatal("EnableEvents not idempotent")
	}
}

func TestFilterWideEvents(t *testing.T) {
	var evs []WideEvent
	for i := 0; i < 6; i++ {
		kind := "probe"
		if i%3 == 0 {
			kind = "trial.verdict"
		}
		e := NewWideEvent(kind)
		e.Trial = i
		evs = append(evs, e)
	}
	if got := FilterWideEvents(evs, "trial.verdict", 0); len(got) != 2 || got[1].Trial != 3 {
		t.Fatalf("kind filter: %+v", got)
	}
	if got := FilterWideEvents(evs, "", 2); len(got) != 2 || got[0].Trial != 4 {
		t.Fatalf("n filter: %+v", got)
	}
	if got := FilterWideEvents(evs, "probe", 1); len(got) != 1 || got[0].Trial != 5 {
		t.Fatalf("kind+n filter: %+v", got)
	}
	if got := FilterWideEvents(evs, "", 0); len(got) != 6 {
		t.Fatalf("no-op filter dropped events: %d", len(got))
	}
}

// TestEventLogConcurrent drives emitters, a batch appender, and readers
// (including WriteJSONL) in parallel; run under -race this pins the
// locking discipline.
func TestEventLogConcurrent(t *testing.T) {
	l := NewEventLog(128)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				e := NewWideEvent("probe")
				e.Trial = g*200 + i
				l.Emit(e)
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			l.Append([]WideEvent{NewWideEvent("batch"), NewWideEvent("batch")})
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		var sb strings.Builder
		for i := 0; i < 50; i++ {
			sb.Reset()
			if err := l.WriteJSONL(&sb); err != nil {
				t.Errorf("WriteJSONL: %v", err)
				return
			}
			l.Len()
			l.Dropped()
		}
	}()
	wg.Wait()
	if got := l.Len(); got != 128 {
		t.Fatalf("ring len = %d, want 128", got)
	}
}

// TestEventLogZeroAllocDisabled pins the disabled instrument's cost:
// emitting into a nil log must not allocate (satisfying the alloc gate).
func TestEventLogZeroAllocDisabled(t *testing.T) {
	var l *EventLog
	e := NewWideEvent("probe")
	if got := testing.AllocsPerRun(100, func() {
		l.Emit(e)
		l.Append(nil)
	}); got != 0 {
		t.Fatalf("disabled event log allocated %.1f/op", got)
	}
}
