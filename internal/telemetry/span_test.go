package telemetry

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestSpanRecorderNilSafe(t *testing.T) {
	var r *SpanRecorder
	if id := r.Start(1, 0, "x", "n", 0); id != 0 {
		t.Fatalf("nil recorder Start = %d, want 0", id)
	}
	r.End(0, 1)
	r.Annotate(0, 1, 2, "d")
	if r.NewTrace() != 0 || r.Len() != 0 || r.Spans() != nil || r.Drain() != nil {
		t.Fatal("nil recorder is not inert")
	}
}

func TestSpanRecorderTree(t *testing.T) {
	r := NewSpanRecorder(16)
	tr := r.NewTrace()
	root := r.Start(tr, 0, "trial", "experiment", 0)
	probe := r.Start(tr, root, "probe", "switch", 1)
	ctl := r.Start(tr, probe, "controller.decision", "controller", 1.5)
	r.Annotate(probe, 3, 7, "q=1")
	r.End(ctl, 2)
	r.End(probe, 2.5)
	r.End(root, 3)

	spans := r.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	forest := BuildSpanForest(spans)
	if len(forest) != 1 {
		t.Fatalf("got %d roots, want 1", len(forest))
	}
	if forest[0].Span.Name != "trial" || len(forest[0].Children) != 1 {
		t.Fatalf("bad root: %+v", forest[0])
	}
	p := forest[0].Children[0]
	if p.Span.Flow != 3 || p.Span.Rule != 7 || p.Span.Detail != "q=1" {
		t.Fatalf("annotations lost: %+v", p.Span)
	}
	if len(p.Children) != 1 || p.Children[0].Span.Name != "controller.decision" {
		t.Fatalf("controller span not nested under probe: %+v", p)
	}
	if got := p.Span.Duration(); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("probe duration = %v, want 1.5", got)
	}
}

func TestSpanRecorderDrain(t *testing.T) {
	r := NewSpanRecorder(8)
	tr := r.NewTrace()
	id := r.Start(tr, 0, "a", "", 0)
	r.End(id, 1)
	first := r.Drain()
	if len(first) != 1 || r.Len() != 0 {
		t.Fatalf("drain left %d spans, returned %d", r.Len(), len(first))
	}
	id2 := r.Start(r.NewTrace(), 0, "b", "", 2)
	if id2 == id {
		t.Fatal("span IDs reused across Drain")
	}
	if len(r.Spans()) != 1 {
		t.Fatal("recorder unusable after Drain")
	}
}

func TestSpanRecorderCap(t *testing.T) {
	r := NewSpanRecorder(2)
	tr := r.NewTrace()
	a := r.Start(tr, 0, "a", "", 0)
	b := r.Start(tr, 0, "b", "", 0)
	c := r.Start(tr, 0, "c", "", 0)
	if a == 0 || b == 0 {
		t.Fatal("spans under cap rejected")
	}
	if c != 0 {
		t.Fatalf("span over cap accepted: %d", c)
	}
	r.End(c, 5) // must be a no-op, not a panic
	if r.Len() != 2 {
		t.Fatalf("len = %d, want 2", r.Len())
	}
}

func TestSpanRecorderConcurrent(t *testing.T) {
	r := NewSpanRecorder(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr := r.NewTrace()
			for i := 0; i < 100; i++ {
				id := r.Start(tr, 0, "op", "node", float64(i))
				r.Annotate(id, i, -1, "")
				r.End(id, float64(i)+1)
			}
		}()
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Fatalf("len = %d, want 800", r.Len())
	}
}

func TestRegistryEnableSpans(t *testing.T) {
	var nilReg *Registry
	if nilReg.EnableSpans(8) != nil || nilReg.Spans() != nil {
		t.Fatal("nil registry returned a live span recorder")
	}
	reg := NewRegistry(0)
	if reg.Spans() != nil {
		t.Fatal("spans enabled by default")
	}
	sr := reg.EnableSpans(8)
	if sr == nil || reg.Spans() != sr || reg.EnableSpans(8) != sr {
		t.Fatal("EnableSpans not idempotent")
	}
	id := sr.Start(sr.NewTrace(), 0, "x", "", 0)
	sr.End(id, 1)
	if got := len(reg.Snapshot().Spans); got != 1 {
		t.Fatalf("snapshot has %d spans, want 1", got)
	}
}

func TestFilterEvents(t *testing.T) {
	events := []Event{
		{Seq: 0, Kind: "probe.hit"},
		{Seq: 1, Kind: "probe.miss"},
		{Seq: 2, Kind: "probe.hit"},
		{Seq: 3, Kind: "rule.install"},
		{Seq: 4, Kind: "probe.hit"},
	}
	got := FilterEvents(events, "probe.hit", 0)
	if len(got) != 3 || got[0].Seq != 0 || got[2].Seq != 4 {
		t.Fatalf("kind filter: %+v", got)
	}
	got = FilterEvents(events, "probe.hit", 2)
	if len(got) != 2 || got[0].Seq != 2 || got[1].Seq != 4 {
		t.Fatalf("kind+n filter: %+v", got)
	}
	got = FilterEvents(events, "", 2)
	if len(got) != 2 || got[0].Seq != 3 {
		t.Fatalf("n-only filter: %+v", got)
	}
	if got := FilterEvents(events, "nope", 0); len(got) != 0 {
		t.Fatalf("unknown kind returned %d events", len(got))
	}
	if got := FilterEvents(events, "", 0); len(got) != len(events) {
		t.Fatal("no-op filter dropped events")
	}
}

func TestDebugTraceQueryFilters(t *testing.T) {
	reg := NewRegistry(64)
	tr := reg.Tracer()
	for i := 0; i < 5; i++ {
		e := Ev("probe.hit")
		if i%2 == 1 {
			e = Ev("probe.miss")
		}
		e.Flow = i
		tr.Emit(e)
	}
	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	lines := func(url string) []string {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		trimmed := strings.TrimSpace(string(body))
		if trimmed == "" {
			return nil
		}
		return strings.Split(trimmed, "\n")
	}

	if got := lines(srv.URL + "/debug/trace"); len(got) != 5 {
		t.Fatalf("unfiltered: %d lines, want 5", len(got))
	}
	got := lines(srv.URL + "/debug/trace?kind=probe.miss")
	if len(got) != 2 {
		t.Fatalf("kind filter: %d lines, want 2", len(got))
	}
	var e Event
	if err := json.Unmarshal([]byte(got[0]), &e); err != nil || e.Kind != "probe.miss" {
		t.Fatalf("bad filtered event %q: %v", got[0], err)
	}
	if got := lines(srv.URL + "/debug/trace?n=3"); len(got) != 3 {
		t.Fatalf("n filter: %d lines, want 3", len(got))
	}
	if got := lines(srv.URL + "/debug/trace?kind=probe.hit&n=1"); len(got) != 1 {
		t.Fatalf("kind+n filter: %d lines, want 1", len(got))
	}
	if got := lines(srv.URL + "/debug/trace?n=bogus"); len(got) != 5 {
		t.Fatalf("malformed n: %d lines, want 5 (ignored)", len(got))
	}
	if got := lines(srv.URL + "/debug/spans"); len(got) != 0 {
		t.Fatalf("spans disabled but served %d lines", len(got))
	}

	sr := reg.EnableSpans(8)
	sr.End(sr.Start(sr.NewTrace(), 0, "x", "", 0), 1)
	if got := lines(srv.URL + "/debug/spans"); len(got) != 1 {
		t.Fatalf("spans: %d lines, want 1", len(got))
	}
}

func TestHistogramQuantileDegenerate(t *testing.T) {
	// Empty histogram: all quantiles zero, snapshot JSON-encodable.
	h := NewHistogram(MillisecondBuckets())
	s := h.Snapshot()
	if s.Summary.P50 != 0 || s.Summary.P95 != 0 || s.Summary.P99 != 0 {
		t.Fatalf("empty histogram quantiles: %+v", s.Summary)
	}
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("empty snapshot not JSON-encodable: %v", err)
	}

	// Single sample: every quantile is that sample, nothing NaN/Inf.
	h = NewHistogram(MillisecondBuckets())
	h.Observe(0.42)
	s = h.Snapshot()
	for _, q := range []float64{s.Summary.P50, s.Summary.P95, s.Summary.P99} {
		if math.IsNaN(q) || math.IsInf(q, 0) {
			t.Fatalf("single-sample quantile not finite: %+v", s.Summary)
		}
		if math.Abs(q-0.42) > 1e-12 {
			t.Fatalf("single-sample quantile = %v, want 0.42", q)
		}
	}
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("single-sample snapshot not JSON-encodable: %v", err)
	}

	// Hand-built snapshot with unfilled (zero-value) Summary but nonzero
	// counts — the shape a racy read or external decoder can produce.
	raw := HistogramSnapshot{Bounds: []float64{1, 2}, Counts: []int64{0, 1, 0}}
	raw.Summary.Min = math.Inf(1)
	raw.Summary.Max = math.Inf(-1)
	for _, q := range []float64{raw.quantile(0.5), raw.quantile(0.95), raw.quantile(0.99)} {
		if math.IsNaN(q) || math.IsInf(q, 0) {
			t.Fatalf("degenerate snapshot quantile not finite: %v", q)
		}
	}
}

func TestSpanRecorderSetWallClock(t *testing.T) {
	r := NewSpanRecorder(16)
	r.SetWallClock(func() int64 { return 42 })
	id := r.Start(r.NewTrace(), 0, "a", "n", 0)
	if got := r.Spans()[0].WallNs; got != 42 {
		t.Fatalf("WallNs = %d, want 42", got)
	}
	r.End(id, 1)

	r.SetWallClock(nil)
	r.Start(1, 0, "b", "n", 0)
	spans := r.Spans()
	if spans[1].WallNs != 0 {
		t.Fatalf("nil clock stamped WallNs = %d, want 0", spans[1].WallNs)
	}
}

// TestSpanRecorderImport verifies the parallel-assembly merge: importing
// two per-trial recorders' spans in order must reproduce exactly the ID
// and trace sequence a single shared recorder would have allocated.
func TestSpanRecorderImport(t *testing.T) {
	// Shared recorder: two "trials" recorded back to back.
	shared := NewSpanRecorder(0)
	shared.SetWallClock(nil)
	recordTrial := func(r *SpanRecorder) {
		tr := r.NewTrace()
		root := r.Start(tr, 0, "trial", "n", 0)
		child := r.Start(tr, root, "probe", "n", 1)
		r.End(child, 2)
		r.End(root, 3)
	}
	recordTrial(shared)
	recordTrial(shared)
	want := shared.Spans()

	// Per-trial recorders merged via Import.
	merged := NewSpanRecorder(0)
	merged.SetWallClock(nil)
	for i := 0; i < 2; i++ {
		local := NewSpanRecorder(0)
		local.SetWallClock(nil)
		recordTrial(local)
		merged.Import(local.Drain())
	}
	got := merged.Spans()

	if len(got) != len(want) {
		t.Fatalf("span counts differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("span %d differs:\n shared %+v\n merged %+v", i, want[i], got[i])
		}
	}
	// Counters must stay monotone past the import so later Starts don't
	// collide with imported IDs.
	next := merged.Start(merged.NewTrace(), 0, "after", "n", 0)
	if int64(next) != int64(len(want))+1 {
		t.Fatalf("post-import Start allocated ID %d, want %d", next, len(want)+1)
	}
}

func TestSpanRecorderImportNilAndEmpty(t *testing.T) {
	var nilRec *SpanRecorder
	nilRec.Import([]Span{{ID: 1}}) // must not panic
	r := NewSpanRecorder(4)
	r.Import(nil)
	if r.Len() != 0 {
		t.Fatalf("empty import retained %d spans", r.Len())
	}
}
