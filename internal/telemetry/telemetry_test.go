package telemetry

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestSeriesFormatting(t *testing.T) {
	if got := Series("m"); got != "m" {
		t.Fatalf("unlabelled series: %q", got)
	}
	got := Series("m", "a", "1", "b", "x y")
	want := `m{a="1",b="x y"}`
	if got != want {
		t.Fatalf("series: got %q want %q", got, want)
	}
	family, labels := splitSeries(got)
	if family != "m" || labels != `a="1",b="x y"` {
		t.Fatalf("splitSeries: %q %q", family, labels)
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry(0)
	c := reg.Counter("c_total")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter: %d", c.Value())
	}
	if reg.Counter("c_total") != c {
		t.Fatal("counter not memoized")
	}
	if reg.Counter("c_total", "k", "v") == c {
		t.Fatal("labelled series aliases unlabelled")
	}
	g := reg.Gauge("g")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge: %d", g.Value())
	}
}

// TestDisabledPath exercises every instrument through a nil registry: all
// operations must be safe no-ops.
func TestDisabledPath(t *testing.T) {
	var reg *Registry
	c := reg.Counter("c")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter accumulated")
	}
	g := reg.Gauge("g")
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge accumulated")
	}
	h := reg.Histogram("h", nil)
	h.Observe(1)
	if h.Count() != 0 {
		t.Fatal("nil histogram accumulated")
	}
	if snap := h.Snapshot(); snap.Summary.N != 0 {
		t.Fatal("nil histogram snapshot non-empty")
	}
	tr := reg.Tracer()
	tr.Emit(Ev("x"))
	if tr.Total() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer recorded")
	}
	if s := reg.Snapshot(); len(s.Counters) != 0 || len(s.Events) != 0 {
		t.Fatal("nil registry snapshot non-empty")
	}
	if err := reg.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentInstruments hammers one counter, gauge, histogram, and
// tracer from many goroutines; run under -race this is the data-race
// check, and the totals must still be exact.
func TestConcurrentInstruments(t *testing.T) {
	reg := NewRegistry(64)
	c := reg.Counter("c_total")
	g := reg.Gauge("g")
	h := reg.Histogram("h_seconds", nil)
	tr := reg.Tracer()

	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%10) * 1e-3)
				if i%100 == 0 {
					tr.Emit(Ev("tick"))
				}
			}
		}(w)
	}
	wg.Wait()

	if c.Value() != workers*per {
		t.Fatalf("counter: %d != %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per {
		t.Fatalf("gauge: %d", g.Value())
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram count: %d", h.Count())
	}
	if tr.Total() != workers*per/100 {
		t.Fatalf("tracer total: %d", tr.Total())
	}
	snap := h.Snapshot()
	var n int64
	for _, b := range snap.Counts {
		n += b
	}
	if n != workers*per {
		t.Fatalf("bucket mass: %d", n)
	}
}

func TestTracerRingWraparound(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		e := Ev("e")
		e.Flow = i
		tr.Emit(e)
	}
	if tr.Total() != 10 {
		t.Fatalf("total: %d", tr.Total())
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained: %d", len(evs))
	}
	for i, e := range evs {
		if e.Flow != 6+i {
			t.Fatalf("event %d: flow %d, want %d", i, e.Flow, 6+i)
		}
		if e.Seq != int64(6+i) {
			t.Fatalf("event %d: seq %d", i, e.Seq)
		}
	}
	var sb strings.Builder
	if err := tr.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("jsonl lines: %d", len(lines))
	}
	var first Event
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first.Flow != 6 {
		t.Fatalf("jsonl first flow: %d", first.Flow)
	}
}

func TestHistogramSnapshotQuantiles(t *testing.T) {
	h := NewHistogram(MillisecondBuckets())
	// Bimodal, like the paper's channel: 90 hits near 0.087 ms, 10 misses
	// near 4 ms.
	for i := 0; i < 90; i++ {
		h.Observe(0.087)
	}
	for i := 0; i < 10; i++ {
		h.Observe(4.07)
	}
	s := h.Snapshot()
	if s.Summary.N != 100 {
		t.Fatalf("n: %d", s.Summary.N)
	}
	wantMean := (90*0.087 + 10*4.07) / 100
	if math.Abs(s.Summary.Mean-wantMean) > 1e-9 {
		t.Fatalf("mean: %g want %g", s.Summary.Mean, wantMean)
	}
	if s.Summary.Min != 0.087 || s.Summary.Max != 4.07 {
		t.Fatalf("min/max: %g %g", s.Summary.Min, s.Summary.Max)
	}
	// p50 must stay in the hit bucket, p99 in the miss bucket.
	if s.Summary.P50 < 0.05 || s.Summary.P50 > 0.1 {
		t.Fatalf("p50: %g", s.Summary.P50)
	}
	if s.Summary.P99 < 1 || s.Summary.P99 > 4.07 {
		t.Fatalf("p99: %g", s.Summary.P99)
	}
	if s.Summary.P50 > s.Summary.P95 || s.Summary.P95 > s.Summary.P99 {
		t.Fatalf("quantiles not monotone: %g %g %g", s.Summary.P50, s.Summary.P95, s.Summary.P99)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(99)
	s := h.Snapshot()
	if len(s.Counts) != 3 {
		t.Fatalf("counts len: %d", len(s.Counts))
	}
	if s.Counts[0] != 1 || s.Counts[1] != 1 || s.Counts[2] != 1 {
		t.Fatalf("counts: %v", s.Counts)
	}
}

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry(0)
	reg.Counter("req_total", "result", "hit").Add(3)
	reg.Counter("req_total", "result", "miss").Add(1)
	reg.Gauge("occupancy").Set(6)
	h := reg.Histogram("delay_seconds", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(0.5)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE req_total counter",
		`req_total{result="hit"} 3`,
		`req_total{result="miss"} 1`,
		"# TYPE occupancy gauge",
		"occupancy 6",
		"# TYPE delay_seconds histogram",
		`delay_seconds_bucket{le="0.001"} 1`,
		`delay_seconds_bucket{le="0.01"} 2`,
		`delay_seconds_bucket{le="+Inf"} 3`,
		"delay_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// TYPE comment must precede the family's first sample.
	if strings.Index(out, "# TYPE req_total counter") > strings.Index(out, `req_total{result="hit"}`) {
		t.Fatal("TYPE after sample")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	reg := NewRegistry(8)
	reg.Counter("c_total").Add(2)
	reg.Gauge("g").Set(-1)
	reg.Histogram("h_ms", MillisecondBuckets()).Observe(0.1)
	e := Ev("probe.hit")
	e.Node = "s1"
	e.Flow = 3
	reg.Tracer().Emit(e)

	blob, err := json.Marshal(reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["c_total"] != 2 || back.Gauges["g"] != -1 {
		t.Fatalf("round trip: %+v", back)
	}
	if back.Histograms["h_ms"].Summary.N != 1 {
		t.Fatalf("histogram round trip: %+v", back.Histograms["h_ms"])
	}
	if len(back.Events) != 1 || back.Events[0].Kind != "probe.hit" || back.Events[0].Flow != 3 {
		t.Fatalf("events round trip: %+v", back.Events)
	}
}

func TestHTTPHandler(t *testing.T) {
	reg := NewRegistry(8)
	reg.Counter("hits_total").Inc()
	reg.Tracer().Emit(Ev("rule.install"))
	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if body := get("/metrics"); !strings.Contains(body, "hits_total 1") {
		t.Fatalf("/metrics: %q", body)
	}
	if body := get("/debug/trace"); !strings.Contains(body, `"kind":"rule.install"`) {
		t.Fatalf("/debug/trace: %q", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, `"hits_total": 1`) {
		t.Fatalf("/debug/vars: %q", body)
	}
}
