package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// TraceEvent is one entry of the Chrome trace_event JSON format, the
// subset Perfetto's legacy importer understands: ph "X" complete events
// with microsecond ts/dur, plus ph "M" metadata records naming processes
// and threads. https://ui.perfetto.dev loads the output directly.
type TraceEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat,omitempty"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	// dur must be present even when zero: the trace_event spec requires
	// it on ph "X" records, and instantaneous spans (end == start, e.g. a
	// flow_mod ack) are legitimate.
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// perfettoFile is the JSON-object envelope of a trace_event file.
type perfettoFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit,omitempty"`
}

// WritePerfetto converts a span stream (one recorder's output, or the
// concatenation of several processes' namespaced streams) to Chrome
// trace_event JSON. Each distinct node becomes a Perfetto process track
// and each trace ID a thread within it, so one probe's joined
// cross-process tree reads left to right as inject → packet_in →
// controller decision → flow_mod. Spans' virtual-second timestamps map
// to microseconds on the trace timeline; when every span carries a wall
// stamp the timeline uses those instead, which is what aligns two
// daemons' process-local clocks against each other.
func WritePerfetto(spans []Span, w io.Writer) error {
	// Deterministic pid assignment: sorted node names, "" (unknown) last.
	nodeSet := make(map[string]bool, 8)
	for _, s := range spans {
		nodeSet[s.Node] = true
	}
	nodes := make([]string, 0, len(nodeSet))
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	pids := make(map[string]int, len(nodes))
	for i, n := range nodes {
		pids[n] = i + 1
	}

	// Wall alignment: virtual Start values restart at 0 in every process,
	// so a concatenated multi-process stream only lays out correctly on
	// the shared wall clock. Only safe when every span has a stamp —
	// mixing the two time bases would interleave unrelated origins.
	wall := len(spans) > 0
	minWall := int64(math.MaxInt64)
	for _, s := range spans {
		if s.WallNs == 0 {
			wall = false
			break
		}
		if s.WallNs < minWall {
			minWall = s.WallNs
		}
	}

	f := perfettoFile{DisplayTimeUnit: "ms"}
	f.TraceEvents = make([]TraceEvent, 0, len(spans)+len(nodes))
	for _, n := range nodes {
		name := n
		if name == "" {
			name = "(unattributed)"
		}
		f.TraceEvents = append(f.TraceEvents, TraceEvent{
			Name: "process_name",
			Ph:   "M",
			Pid:  pids[n],
			Args: map[string]any{"name": name},
		})
	}
	for _, s := range spans {
		ts := sanitizeFloat(s.Start * 1e6)
		if wall {
			ts = sanitizeFloat(float64(s.WallNs-minWall) / 1e3)
		}
		dur := sanitizeFloat(s.Duration() * 1e6)
		args := map[string]any{
			"span":  int64(s.ID),
			"trace": s.Trace,
		}
		if s.Parent != 0 {
			args["parent"] = int64(s.Parent)
		}
		if s.Flow >= 0 {
			args["flow"] = s.Flow
		}
		if s.Rule >= 0 {
			args["rule"] = s.Rule
		}
		if s.Detail != "" {
			args["detail"] = s.Detail
		}
		f.TraceEvents = append(f.TraceEvents, TraceEvent{
			Name: s.Name,
			Cat:  "span",
			Ph:   "X",
			Ts:   ts,
			Dur:  dur,
			Pid:  pids[s.Node],
			Tid:  s.Trace,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// ValidatePerfetto parses a trace_event JSON document and checks it is
// well-formed enough for Perfetto to load: a traceEvents array whose
// entries all carry a phase, complete ("X") events carry a name and
// finite non-negative ts/dur, and every event references a positive pid.
// It returns the number of "X" events, so callers can assert the trace
// is non-trivial.
func ValidatePerfetto(r io.Reader) (spanEvents int, err error) {
	dec := json.NewDecoder(r)
	var f perfettoFile
	if err := dec.Decode(&f); err != nil {
		return 0, fmt.Errorf("perfetto: parse: %w", err)
	}
	if len(f.TraceEvents) == 0 {
		return 0, fmt.Errorf("perfetto: empty traceEvents array")
	}
	for i, e := range f.TraceEvents {
		if e.Ph == "" {
			return 0, fmt.Errorf("perfetto: event %d: missing ph", i)
		}
		if e.Pid <= 0 {
			return 0, fmt.Errorf("perfetto: event %d (%q): pid %d not positive", i, e.Name, e.Pid)
		}
		if e.Ph != "X" {
			continue
		}
		if e.Name == "" {
			return 0, fmt.Errorf("perfetto: event %d: X event without name", i)
		}
		if math.IsNaN(e.Ts) || math.IsInf(e.Ts, 0) || e.Ts < 0 {
			return 0, fmt.Errorf("perfetto: event %d (%q): bad ts %v", i, e.Name, e.Ts)
		}
		if math.IsNaN(e.Dur) || math.IsInf(e.Dur, 0) || e.Dur < 0 {
			return 0, fmt.Errorf("perfetto: event %d (%q): bad dur %v", i, e.Name, e.Dur)
		}
		spanEvents++
	}
	if spanEvents == 0 {
		return 0, fmt.Errorf("perfetto: no span (ph=X) events")
	}
	return spanEvents, nil
}

// ReadSpansJSONL parses a span-per-line JSONL stream (the format
// /debug/spans and SpanRecorder.WriteJSONL emit, and the format two
// daemons' streams concatenate into). Blank lines are skipped.
func ReadSpansJSONL(r io.Reader) ([]Span, error) {
	dec := json.NewDecoder(r)
	var spans []Span
	for dec.More() {
		var s Span
		if err := dec.Decode(&s); err != nil {
			return nil, fmt.Errorf("spans: line %d: %w", len(spans)+1, err)
		}
		spans = append(spans, s)
	}
	return spans, nil
}
