package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// WideEvent is one self-contained, wide structured log line: everything
// an operator needs to understand one decision of the system without
// joining against other streams. One event is emitted per probe
// decision, per trial verdict, per injected fault, per control-channel
// reconnect, and per model-cache lookup — the moments the attack's
// behavior pivots on.
//
// Numeric identity fields use -1 for "not applicable" (matching Span);
// string fields are empty when absent. T is in the emitter's time base —
// virtual seconds in the simulator and replay paths, seconds since the
// process epoch on the TCP daemons — and WallNs carries absolute wall
// time when the log's clock is enabled.
type WideEvent struct {
	Seq      int64   `json:"seq"`
	WallNs   int64   `json:"wallNs,omitempty"`
	T        float64 `json:"t"`
	Kind     string  `json:"kind"`
	Node     string  `json:"node,omitempty"`
	Trial    int     `json:"trial"`
	Attacker string  `json:"attacker,omitempty"`
	Flow     int     `json:"flow"`
	Rule     int     `json:"rule"`
	Trace    int64   `json:"trace,omitempty"`
	Outcome  string  `json:"outcome,omitempty"`
	Verdict  string  `json:"verdict,omitempty"`
	Truth    string  `json:"truth,omitempty"`
	DelayMs  float64 `json:"delayMs,omitempty"`
	Detail   string  `json:"detail,omitempty"`
}

// NewWideEvent returns an event of the given kind with the identity
// fields at their "not applicable" defaults.
func NewWideEvent(kind string) WideEvent {
	return WideEvent{Kind: kind, Trial: -1, Flow: -1, Rule: -1}
}

// EventLog is a bounded, sampled, concurrency-safe stream of WideEvents.
// A nil *EventLog is the disabled instrument: every method is a no-op
// behind a single nil check, and emit sites pay nothing beyond that
// check — no allocation, no lock, no draw.
//
// Retention is a ring of the most recent cap events (older events are
// overwritten; Dropped counts them). An optional sink streams every
// retained event as JSONL the moment it is sequenced, for tailing a
// long run to disk while /debug/events serves the ring.
type EventLog struct {
	mu       sync.Mutex
	seq      int64
	cap      int
	buf      []WideEvent // ring storage, len ≤ cap
	start    int         // index of the oldest retained event
	dropped  int64
	clock    func() int64   // wall-clock source for WallNs; nil = don't stamp
	every    map[string]int // kind → keep 1 in n (unlisted kinds keep all)
	skips    map[string]int // kind → events skipped since last kept
	sink     io.Writer
	sinkErr  error
	detached *Counter // increments once when a write error detaches the sink
}

// NewEventLog returns a log retaining at most cap events (cap ≤ 0
// selects a generous default). Wall stamping is on by default; disable
// it with SetClock(nil) for deterministic output.
func NewEventLog(cap int) *EventLog {
	if cap <= 0 {
		cap = 1 << 14
	}
	return &EventLog{
		cap:   cap,
		clock: func() int64 { return time.Now().UnixNano() },
	}
}

// SetClock replaces the wall-clock source stamped into WallNs. A nil
// clock disables wall stamping, making the log's output a pure function
// of the emitted events — the property the replay-determinism tests pin.
func (l *EventLog) SetClock(clock func() int64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.clock = clock
	l.mu.Unlock()
}

// SetSampling keeps only one in every n events of the given kind (n ≤ 1
// keeps all). High-frequency kinds (per-probe decisions in a
// million-trial run) can be thinned without losing the rare ones.
func (l *EventLog) SetSampling(kind string, n int) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.every == nil {
		l.every = make(map[string]int)
		l.skips = make(map[string]int)
	}
	if n <= 1 {
		delete(l.every, kind)
		delete(l.skips, kind)
		return
	}
	l.every[kind] = n
}

// SetSink attaches a streaming JSONL writer receiving every retained
// event as it is sequenced. The first write error detaches the sink and
// is reported by SinkErr.
func (l *EventLog) SetSink(w io.Writer) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.sink = w
	l.sinkErr = nil
	l.mu.Unlock()
}

// SetDetachCounter routes sink-detach occurrences into a counter
// (eventlog_sink_detached_total when wired by Registry.EnableEvents).
// The JSONL sink detaches on its first write error by design — the event
// stream must never take down the run — but before this counter the
// detach was invisible until a SinkErr check at exit: a chaos run with a
// full disk silently recorded nothing. The counter makes the detach show
// up in /metrics and flowtop the moment it happens.
func (l *EventLog) SetDetachCounter(c *Counter) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.detached = c
	l.mu.Unlock()
}

// SinkErr returns the error that detached the sink (nil while healthy).
func (l *EventLog) SinkErr() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sinkErr
}

// Emit sequences one event into the log, applying sampling and the ring
// bound. Safe on a nil log.
func (l *EventLog) Emit(e WideEvent) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.emitLocked(e)
	l.mu.Unlock()
}

// Append sequences a batch in order under one lock acquisition — the
// trial loop's in-order assembly primitive: workers buffer their trial's
// events locally and the collector appends them in trial order, so the
// log is byte-identical at every parallelism level.
func (l *EventLog) Append(events []WideEvent) {
	if l == nil || len(events) == 0 {
		return
	}
	l.mu.Lock()
	for _, e := range events {
		l.emitLocked(e)
	}
	l.mu.Unlock()
}

func (l *EventLog) emitLocked(e WideEvent) {
	if n, ok := l.every[e.Kind]; ok {
		l.skips[e.Kind]++
		if l.skips[e.Kind] < n {
			return
		}
		l.skips[e.Kind] = 0
	}
	l.seq++
	e.Seq = l.seq
	if l.clock != nil {
		e.WallNs = l.clock()
	}
	if len(l.buf) < l.cap {
		l.buf = append(l.buf, e)
	} else {
		l.buf[l.start] = e
		l.start = (l.start + 1) % l.cap
		l.dropped++
	}
	if l.sink != nil {
		line, err := json.Marshal(e)
		if err == nil {
			line = append(line, '\n')
			_, err = l.sink.Write(line)
		}
		if err != nil {
			l.sinkErr = err
			l.sink = nil
			l.detached.Inc()
		}
	}
}

// Len returns the number of retained events (0 on a nil log).
func (l *EventLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buf)
}

// Dropped returns how many events the ring bound has overwritten.
func (l *EventLog) Dropped() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Events returns a copy of the retained events in emission order.
func (l *EventLog) Events() []WideEvent {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]WideEvent, 0, len(l.buf))
	out = append(out, l.buf[l.start:]...)
	out = append(out, l.buf[:l.start]...)
	return out
}

// WriteJSONL writes the retained events one JSON object per line.
func (l *EventLog) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range l.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// FilterWideEvents applies the /debug/events query semantics: kind != ""
// keeps only events of exactly that kind; n > 0 keeps only the most
// recent n survivors. Emission order is preserved.
func FilterWideEvents(events []WideEvent, kind string, n int) []WideEvent {
	if kind != "" {
		kept := events[:0:0]
		for _, e := range events {
			if e.Kind == kind {
				kept = append(kept, e)
			}
		}
		events = kept
	}
	if n > 0 && len(events) > n {
		events = events[len(events)-n:]
	}
	return events
}
