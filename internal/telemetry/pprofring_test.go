package telemetry

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestProfileRingCapturesAndPrunes(t *testing.T) {
	dir := t.TempDir()
	// Heap-only captures (cpuDur 0) on a tight interval.
	ring, err := StartProfileRing(dir, 10*time.Millisecond, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Prune runs inside every capture, so the file count alone can never
	// prove three captures happened; the third sequence number can.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(filepath.Join(dir, "heap-000003.pprof")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			ring.Stop()
			t.Fatalf("ring never reached capture 3; have %v", profileFiles(t, dir, "heap-"))
		}
		time.Sleep(5 * time.Millisecond)
	}
	ring.Stop()
	if err := ring.Err(); err != nil {
		t.Fatalf("capture error: %v", err)
	}

	heaps := profileFiles(t, dir, "heap-")
	if len(heaps) > 2 {
		t.Fatalf("prune kept %d heap profiles, want ≤ 2: %v", len(heaps), heaps)
	}
	// The survivors are the newest (lexically greatest zero-padded seqs).
	for _, name := range heaps {
		if name <= "heap-000001.pprof" {
			t.Fatalf("prune kept the oldest snapshot: %v", heaps)
		}
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil || fi.Size() == 0 {
			t.Fatalf("profile %s unreadable or empty: %v", name, err)
		}
	}
}

func TestProfileRingNilAndStop(t *testing.T) {
	var nilRing *ProfileRing
	nilRing.Stop() // must not panic
	if nilRing.Err() != nil {
		t.Fatal("nil ring reported an error")
	}

	// Stop during the very first interval: no capture need have happened.
	dir := t.TempDir()
	ring, err := StartProfileRing(dir, time.Hour, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { ring.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop hung waiting for a capture that never starts")
	}
}

func profileFiles(t *testing.T, dir, prefix string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), prefix) {
			names = append(names, e.Name())
		}
	}
	return names
}
