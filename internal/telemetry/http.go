package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"strconv"
	"time"
)

// Handler returns the live-introspection HTTP handler for a registry:
//
//	/metrics       — Prometheus text exposition of every instrument
//	/debug/trace   — the ring buffer's recent events as JSONL; supports
//	                 ?kind=probe.miss (exact event-kind filter) and ?n=100
//	                 (only the most recent n matching events)
//	/debug/spans   — recorded causal spans as JSONL (empty when disabled)
//	/debug/events  — the wide-event log as JSONL; ?kind= and ?n= as above
//	/debug/vars    — the full Snapshot as indented JSON
//	/debug/live    — Server-Sent Events stream of LiveUpdate frames;
//	                 ?interval=500ms sets the frame period (default 1s)
//	/healthz       — liveness: always 200 while the process serves
//	/readyz        — readiness: 200 or 503 per Registry.SetReady
//	/buildinfo     — module path, VCS revision, Go version as JSON
//	/debug/pprof/  — the standard net/http/pprof profiles
//
// The handler is safe on a nil registry (endpoints serve empty bodies,
// /readyz reports ready).
func Handler(r *Registry) http.Handler { return NewMux(r) }

// NewMux returns the introspection mux itself so daemons can mount
// additional endpoints beside the standard set (the detector mounts
// /debug/detect here) before passing it to ServeHandler.
func NewMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		t := r.Tracer()
		if t == nil {
			return
		}
		events := FilterEvents(t.Events(), req.URL.Query().Get("kind"), parseN(req.URL.Query().Get("n")))
		enc := json.NewEncoder(w)
		for _, e := range events {
			if err := enc.Encode(e); err != nil {
				return
			}
		}
	})
	mux.HandleFunc("/debug/spans", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if s := r.Spans(); s != nil {
			_ = s.WriteJSONL(w)
		}
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		l := r.Events()
		if l == nil {
			return
		}
		events := FilterWideEvents(l.Events(), req.URL.Query().Get("kind"), parseN(req.URL.Query().Get("n")))
		enc := json.NewEncoder(w)
		for _, e := range events {
			if err := enc.Encode(e); err != nil {
				return
			}
		}
	})
	mux.HandleFunc("/debug/live", func(w http.ResponseWriter, req *http.Request) {
		serveLive(w, req, r)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !r.Ready() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "not ready")
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("/buildinfo", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(buildInfo())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// BuildInfo is the /buildinfo payload: enough to answer "what exactly is
// this binary" when triaging a long-running daemon.
type BuildInfo struct {
	Path      string `json:"path,omitempty"`
	GoVersion string `json:"goVersion"`
	Revision  string `json:"revision,omitempty"`
	VCSTime   string `json:"vcsTime,omitempty"`
	Modified  bool   `json:"modified,omitempty"`
	OS        string `json:"os"`
	Arch      string `json:"arch"`
}

func buildInfo() BuildInfo {
	info := BuildInfo{
		GoVersion: runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		info.Path = bi.Main.Path
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				info.Revision = s.Value
			case "vcs.time":
				info.VCSTime = s.Value
			case "vcs.modified":
				info.Modified = s.Value == "true"
			}
		}
	}
	return info
}

// serveLive streams LiveUpdate frames as Server-Sent Events until the
// client disconnects. Each frame is the delta between two consecutive
// snapshots; the first frame's delta is the cumulative state, so a
// late-attaching client immediately sees where the run stands.
func serveLive(w http.ResponseWriter, req *http.Request, r *Registry) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	interval := time.Second
	if s := req.URL.Query().Get("interval"); s != "" {
		if d, err := time.ParseDuration(s); err == nil && d >= 10*time.Millisecond {
			interval = d
		}
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	ticker := time.NewTicker(interval)
	defer ticker.Stop()

	var prev Snapshot
	last := time.Now()
	var seq int64
	send := func() bool {
		cur := r.Snapshot()
		now := time.Now()
		elapsed := now.Sub(last).Seconds()
		if seq == 0 {
			// The first frame's "delta" is the cumulative state; a
			// near-zero elapsed would turn it into a nonsense rate.
			elapsed = 0
		}
		u := ComputeLiveUpdate(prev, cur, elapsed)
		seq++
		u.Seq = seq
		prev, last = cur, now
		line, err := json.Marshal(u)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: live\ndata: %s\n\n", line); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	// Immediate first frame so clients render without waiting a period.
	if !send() {
		return
	}
	for {
		select {
		case <-req.Context().Done():
			return
		case <-ticker.C:
			if !send() {
				return
			}
		}
	}
}

// FilterEvents applies the /debug/trace query semantics to an event
// slice: kind != "" keeps only events of exactly that kind; n > 0 keeps
// only the most recent n of the survivors. The input order (emission
// order) is preserved.
func FilterEvents(events []Event, kind string, n int) []Event {
	if kind != "" {
		kept := events[:0:0]
		for _, e := range events {
			if e.Kind == kind {
				kept = append(kept, e)
			}
		}
		events = kept
	}
	if n > 0 && len(events) > n {
		events = events[len(events)-n:]
	}
	return events
}

// parseN parses the ?n= query value (0 — meaning "no limit" — on absent
// or malformed input).
func parseN(s string) int {
	if s == "" {
		return 0
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// Server is a running telemetry HTTP endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }

// Serve starts the introspection endpoint on addr ("127.0.0.1:0" for an
// ephemeral port) in a background goroutine and returns the running
// server.
func Serve(addr string, r *Registry) (*Server, error) {
	return ServeHandler(addr, Handler(r))
}

// ServeHandler starts a background HTTP server for an arbitrary handler —
// the variant daemons use after extending the mux from NewMux.
func ServeHandler(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: h}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}
