package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// Handler returns the live-introspection HTTP handler for a registry:
//
//	/metrics      — Prometheus text exposition of every instrument
//	/debug/trace  — the ring buffer's recent events as JSONL; supports
//	                ?kind=probe.miss (exact event-kind filter) and ?n=100
//	                (only the most recent n matching events)
//	/debug/spans  — recorded causal spans as JSONL (empty when disabled)
//	/debug/vars   — the full Snapshot as indented JSON
//	/debug/pprof/ — the standard net/http/pprof profiles
//
// The handler is safe on a nil registry (endpoints serve empty bodies).
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		t := r.Tracer()
		if t == nil {
			return
		}
		events := FilterEvents(t.Events(), req.URL.Query().Get("kind"), parseN(req.URL.Query().Get("n")))
		enc := json.NewEncoder(w)
		for _, e := range events {
			if err := enc.Encode(e); err != nil {
				return
			}
		}
	})
	mux.HandleFunc("/debug/spans", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if s := r.Spans(); s != nil {
			_ = s.WriteJSONL(w)
		}
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// FilterEvents applies the /debug/trace query semantics to an event
// slice: kind != "" keeps only events of exactly that kind; n > 0 keeps
// only the most recent n of the survivors. The input order (emission
// order) is preserved.
func FilterEvents(events []Event, kind string, n int) []Event {
	if kind != "" {
		kept := events[:0:0]
		for _, e := range events {
			if e.Kind == kind {
				kept = append(kept, e)
			}
		}
		events = kept
	}
	if n > 0 && len(events) > n {
		events = events[len(events)-n:]
	}
	return events
}

// parseN parses the ?n= query value (0 — meaning "no limit" — on absent
// or malformed input).
func parseN(s string) int {
	if s == "" {
		return 0
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// Server is a running telemetry HTTP endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }

// Serve starts the introspection endpoint on addr ("127.0.0.1:0" for an
// ephemeral port) in a background goroutine and returns the running
// server.
func Serve(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler(r)}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}
