package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns the live-introspection HTTP handler for a registry:
//
//	/metrics      — Prometheus text exposition of every instrument
//	/debug/trace  — the ring buffer's recent events as JSONL
//	/debug/vars   — the full Snapshot as indented JSON
//	/debug/pprof/ — the standard net/http/pprof profiles
//
// The handler is safe on a nil registry (endpoints serve empty bodies).
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if t := r.Tracer(); t != nil {
			_ = t.WriteJSONL(w)
		}
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running telemetry HTTP endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }

// Serve starts the introspection endpoint on addr ("127.0.0.1:0" for an
// ephemeral port) in a background goroutine and returns the running
// server.
func Serve(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler(r)}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}
