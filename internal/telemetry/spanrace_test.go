package telemetry

import (
	"io"
	"sync"
	"testing"
)

// TestSpanRecorderWriteJSONLRace streams the recorder to a writer while
// other goroutines start, annotate, and end spans. Run under -race this
// pins the rule that serialization takes the same lock as mutation.
func TestSpanRecorderWriteJSONLRace(t *testing.T) {
	r := NewSpanRecorder(0)
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			tr := r.NewTrace()
			for i := 0; i < 300; i++ {
				id := r.Start(tr, 0, "op", "node", float64(i))
				r.Annotate(id, i, -1, "detail")
				r.End(id, float64(i)+1)
			}
		}()
	}
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := r.WriteJSONL(io.Discard); err != nil {
				t.Errorf("WriteJSONL: %v", err)
				return
			}
			r.Len()
			r.Spans()
		}
	}()

	writers.Wait()
	close(stop)
	readers.Wait()
	if got := r.Len(); got != 1200 {
		t.Fatalf("len = %d, want 1200", got)
	}
}

// TestSpanZeroAllocDisabled pins the disabled-path cost of every span
// entry point: a nil recorder must not allocate. This is the invariant
// the alloc gate (make alloc-gate) enforces.
func TestSpanZeroAllocDisabled(t *testing.T) {
	var r *SpanRecorder
	if got := testing.AllocsPerRun(100, func() {
		tr := r.NewTrace()
		id, ctx := r.StartCtx(r.Context(tr, 0), "op", "node", 0)
		id2 := r.Start(ctx.Trace, ctx.Parent, "op2", "node", 0)
		r.Annotate(id2, 1, 2, "d")
		r.End(id2, 1)
		r.End(id, 1)
	}); got != 0 {
		t.Fatalf("disabled span path allocated %.1f/op", got)
	}
}

// BenchmarkSpanOverhead quantifies the per-probe cost of span recording
// in both states. The disabled case must report 0 allocs/op — the
// "observability is free when off" contract.
func BenchmarkSpanOverhead(b *testing.B) {
	b.Run("disabled", func(b *testing.B) {
		var r *SpanRecorder
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			id, ctx := r.StartCtx(SpanContext{}, "probe", "experiment", 0)
			child, _ := r.StartCtx(ctx, "packet_in", "switch", 0)
			r.End(child, 1)
			r.End(id, 1)
		}
	})
	b.Run("enabled", func(b *testing.B) {
		r := NewSpanRecorder(0)
		r.SetWallClock(nil)
		tr := r.NewTrace()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			id, ctx := r.StartCtx(r.Context(tr, 0), "probe", "experiment", 0)
			child, _ := r.StartCtx(ctx, "packet_in", "switch", 0)
			r.End(child, 1)
			r.End(id, 1)
			if i%1024 == 1023 {
				r.Drain() // keep the ring from growing unboundedly
			}
		}
	})
}

// BenchmarkEventLogOverhead mirrors BenchmarkSpanOverhead for the wide
// event stream.
func BenchmarkEventLogOverhead(b *testing.B) {
	e := NewWideEvent("probe")
	b.Run("disabled", func(b *testing.B) {
		var l *EventLog
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			l.Emit(e)
		}
	})
	b.Run("enabled", func(b *testing.B) {
		l := NewEventLog(1 << 10)
		l.SetClock(nil)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			l.Emit(e)
		}
	})
}
