package telemetry

import (
	"bytes"
	"testing"
)

func TestSpanContextRoundTrip(t *testing.T) {
	payload := []byte{1, 2, 3, 4}
	c := SpanContext{Trace: 7, Parent: 42}
	wire := c.AppendBinary(append([]byte(nil), payload...))
	if len(wire) != len(payload)+SpanContextLen {
		t.Fatalf("wire length %d, want %d", len(wire), len(payload)+SpanContextLen)
	}
	rest, got, ok := ParseSpanContext(wire)
	if !ok || got != c {
		t.Fatalf("parse = %+v ok=%v, want %+v", got, ok, c)
	}
	if !bytes.Equal(rest, payload) {
		t.Fatalf("payload corrupted: %v", rest)
	}
}

func TestSpanContextInvalidAppendsNothing(t *testing.T) {
	payload := []byte{9, 9}
	wire := SpanContext{}.AppendBinary(append([]byte(nil), payload...))
	if !bytes.Equal(wire, payload) {
		t.Fatalf("invalid context altered payload: %v", wire)
	}
}

func TestParseSpanContextPassthrough(t *testing.T) {
	// Too short, no magic, and zero-trace trailers all pass through.
	for _, b := range [][]byte{
		nil,
		{1, 2, 3},
		bytes.Repeat([]byte{0}, SpanContextLen),
		append(bytes.Repeat([]byte{7}, 16), []byte("XXXX")...),
	} {
		rest, c, ok := ParseSpanContext(b)
		if ok || c.Valid() {
			t.Fatalf("parsed a context out of %v: %+v", b, c)
		}
		if !bytes.Equal(rest, b) {
			t.Fatalf("passthrough altered payload: %v → %v", b, rest)
		}
	}
	// A magic trailer with trace 0 is not a live context either.
	wire := append([]byte{1}, spanCtxMagic[:]...)
	wire = append(wire, bytes.Repeat([]byte{0}, 16)...)
	if _, c, ok := ParseSpanContext(wire); ok || c.Valid() {
		t.Fatalf("zero-trace trailer accepted: %+v", c)
	}
}

func TestStartCtxJoinsAndChains(t *testing.T) {
	r := NewSpanRecorder(0)
	r.SetWallClock(nil)
	tr := r.NewTrace()
	root, rootCtx := r.StartCtx(r.Context(tr, 0), "root", "a", 0)
	child, childCtx := r.StartCtx(rootCtx, "child", "b", 1)
	if childCtx.Trace != tr || childCtx.Parent != child {
		t.Fatalf("child context = %+v, want trace %d parent %d", childCtx, tr, child)
	}
	r.End(child, 2)
	r.End(root, 3)
	forest := BuildSpanForest(r.Spans())
	if len(forest) != 1 || len(forest[0].Children) != 1 {
		t.Fatalf("StartCtx chain did not nest: %+v", forest)
	}

	// Marshalled across a "process boundary": the remote recorder's span
	// joins the same trace under the same parent.
	wire := childCtx.AppendBinary(nil)
	_, remoteCtx, ok := ParseSpanContext(wire)
	if !ok {
		t.Fatal("context lost on the wire")
	}
	remote := NewSpanRecorder(0)
	remote.SetWallClock(nil)
	remote.SetNamespace(2)
	id, _ := remote.StartCtx(remoteCtx, "remote", "c", 4)
	remote.End(id, 5)
	joined := append(r.Spans(), remote.Spans()...)
	forest = BuildSpanForest(joined)
	if len(forest) != 1 {
		t.Fatalf("joined forest has %d roots, want 1", len(forest))
	}
	var remoteSpan *SpanNode
	for _, c := range forest[0].Children[0].Children {
		if c.Span.Name == "remote" {
			remoteSpan = c
		}
	}
	if remoteSpan == nil {
		t.Fatalf("remote span not nested under child: %+v", forest[0])
	}
	if remoteSpan.Span.ID>>40 != 2 {
		t.Fatalf("remote span ID %d not in namespace 2", remoteSpan.Span.ID)
	}
}

func TestStartCtxNilRecorder(t *testing.T) {
	var r *SpanRecorder
	id, ctx := r.StartCtx(SpanContext{Trace: 1, Parent: 2}, "x", "n", 0)
	if id != 0 || ctx.Valid() {
		t.Fatalf("nil recorder StartCtx = %d %+v", id, ctx)
	}
	if c := r.Context(1, 2); c.Valid() {
		t.Fatalf("nil recorder Context = %+v", c)
	}
}

func TestSetNamespaceDisjointIDs(t *testing.T) {
	a := NewSpanRecorder(0)
	a.SetNamespace(1)
	b := NewSpanRecorder(0)
	b.SetNamespace(2)
	idA := a.Start(a.NewTrace(), 0, "x", "", 0)
	idB := b.Start(b.NewTrace(), 0, "x", "", 0)
	if idA == idB {
		t.Fatalf("namespaced recorders collided on span ID %d", idA)
	}
	if a.NewTrace() == b.NewTrace() {
		t.Fatal("namespaced recorders collided on trace ID")
	}
}
