package telemetry

import (
	"bufio"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestComputeLiveUpdateDegenerateWindows pins the NaN/Inf guards: empty
// snapshots, zero or negative elapsed, and single-sample windows must
// all encode to finite numbers.
func TestComputeLiveUpdateDegenerateWindows(t *testing.T) {
	for _, elapsed := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		u := ComputeLiveUpdate(Snapshot{}, Snapshot{}, elapsed)
		assertFiniteUpdate(t, u)
		if u.TrialsPerSec != 0 || u.ProbesPerSec != 0 || u.Accuracy != 0 {
			t.Fatalf("empty window produced nonzero rates: %+v", u)
		}
		if _, err := json.Marshal(u); err != nil {
			t.Fatalf("degenerate update not JSON-encodable: %v", err)
		}
	}

	// One sample in a zero-width window: counts pass through, rates zero.
	cur := Snapshot{Counters: map[string]int64{"experiment_trials_total": 1}}
	u := ComputeLiveUpdate(Snapshot{}, cur, 0)
	assertFiniteUpdate(t, u)
	if u.Trials != 1 || u.TrialsDelta != 1 || u.TrialsPerSec != 0 {
		t.Fatalf("single-sample window: %+v", u)
	}
}

func assertFiniteUpdate(t *testing.T, u LiveUpdate) {
	t.Helper()
	for name, v := range map[string]float64{
		"elapsed":  u.ElapsedSec,
		"trials/s": u.TrialsPerSec,
		"probes/s": u.ProbesPerSec,
		"accuracy": u.Accuracy,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("%s not finite: %v", name, v)
		}
	}
	for name, v := range u.AccuracyByAttacker {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("accuracy[%s] not finite: %v", name, v)
		}
	}
}

func TestComputeLiveUpdateDerivation(t *testing.T) {
	prev := Snapshot{Counters: map[string]int64{
		"experiment_trials_total":               10,
		`experiment_probes_total{result="hit"}`: 20,
		`faults_injected_total{kind="loss"}`:    1,
	}}
	cur := Snapshot{
		Counters: map[string]int64{
			"experiment_trials_total":                                     30,
			`experiment_probes_total{result="hit"}`:                       50,
			`experiment_probes_total{result="lost"}`:                      4,
			"switch_injects_total":                                        6,
			"switch_reconnects_total":                                     2,
			"switch_probe_timeouts_total":                                 3,
			`faults_injected_total{kind="loss"}`:                          5,
			`experiment_verdicts_total{attacker="m",outcome="true_pos"}`:  6,
			`experiment_verdicts_total{attacker="m",outcome="false_neg"}`: 2,
			`experiment_verdicts_total{attacker="n",outcome="true_neg"}`:  1,
			`experiment_verdicts_total{attacker="n",outcome="false_pos"}`: 1,
		},
		Gauges: map[string]int64{"experiment_trial_workers": 4},
	}
	u := ComputeLiveUpdate(prev, cur, 2)
	if u.Trials != 30 || u.TrialsDelta != 20 || u.TrialsPerSec != 10 {
		t.Fatalf("trials: %+v", u)
	}
	if u.Probes != 60 || u.ProbesDelta != 40 || u.ProbesPerSec != 20 {
		t.Fatalf("probes: %+v", u)
	}
	if u.Faults != 5 || u.FaultsDelta != 4 || u.Reconnects != 2 {
		t.Fatalf("faults: %+v", u)
	}
	if u.Lost != 7 { // 4 lost probes + 3 switch timeouts
		t.Fatalf("lost = %d, want 7", u.Lost)
	}
	if got := u.Accuracy; math.Abs(got-0.7) > 1e-12 { // (6+1)/10
		t.Fatalf("accuracy = %v, want 0.7", got)
	}
	if got := u.AccuracyByAttacker["m"]; math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("accuracy[m] = %v, want 0.75", got)
	}
	if got := u.AccuracyByAttacker["n"]; math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("accuracy[n] = %v, want 0.5", got)
	}
	if u.Counters["switch_injects_total"] != 6 || u.Counters[`faults_injected_total{kind="loss"}`] != 4 {
		t.Fatalf("counter deltas: %+v", u.Counters)
	}
	if _, ok := u.Counters["experiment_trial_workers"]; ok {
		t.Fatal("gauge leaked into counter deltas")
	}
	if u.Gauges["experiment_trial_workers"] != 4 {
		t.Fatalf("gauges: %+v", u.Gauges)
	}
}

// TestComputeLiveUpdateFleet pins the sharded-fleet row: shard gauge,
// event rate, window/crossing counters, and the per-shard occupancy sum.
func TestComputeLiveUpdateFleet(t *testing.T) {
	prev := Snapshot{Counters: map[string]int64{"netsim_events_total": 1000}}
	cur := Snapshot{
		Counters: map[string]int64{
			"netsim_events_total":          5000,
			"netsim_fleet_windows_total":   40,
			"netsim_fleet_crossings_total": 12,
		},
		Gauges: map[string]int64{
			"netsim_fleet_shards":               8,
			`netsim_shard_occupancy{shard="0"}`: 5,
			`netsim_shard_occupancy{shard="1"}`: 7,
			"netsim_pending_events":             3,
		},
	}
	u := ComputeLiveUpdate(prev, cur, 2)
	if u.FleetShards != 8 {
		t.Fatalf("shards = %d, want 8", u.FleetShards)
	}
	if u.FleetEvents != 5000 || u.FleetEventsPerSec != 2000 {
		t.Fatalf("events: %d @ %v/s", u.FleetEvents, u.FleetEventsPerSec)
	}
	if u.FleetWindows != 40 || u.FleetCrossings != 12 {
		t.Fatalf("windows/crossings: %+v", u)
	}
	if u.FleetOccupancy != 12 {
		t.Fatalf("occupancy = %d, want 12 (5+7)", u.FleetOccupancy)
	}
	// No fleet → the whole row stays zero and is omitted from JSON.
	empty := ComputeLiveUpdate(Snapshot{}, Snapshot{}, 1)
	if empty.FleetShards != 0 || empty.FleetEvents != 0 || empty.FleetOccupancy != 0 {
		t.Fatalf("fleet fields nonzero without a fleet: %+v", empty)
	}
}

func TestDecodeLiveUpdateRoundTrip(t *testing.T) {
	in := LiveUpdate{Seq: 3, Trials: 10, Accuracy: 0.5,
		AccuracyByAttacker: map[string]float64{"m": 0.75}}
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeLiveUpdate(raw)
	if err != nil {
		t.Fatal(err)
	}
	if out.Seq != 3 || out.Trials != 10 || out.AccuracyByAttacker["m"] != 0.75 {
		t.Fatalf("round trip lost fields: %+v", out)
	}
	if _, err := DecodeLiveUpdate([]byte("not json")); err == nil {
		t.Fatal("garbage decoded")
	}
}

// TestServeLiveSSE drives the /debug/live endpoint end to end: the first
// frame arrives immediately, is a well-formed SSE "live" event, and its
// payload decodes with elapsed forced to zero.
func TestServeLiveSSE(t *testing.T) {
	reg := NewRegistry(0)
	reg.Counter("experiment_trials_total").Add(5)
	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/live?interval=10ms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var event, data string
	for sc.Scan() && data == "" {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") {
			event = strings.TrimPrefix(line, "event: ")
		}
		if strings.HasPrefix(line, "data: ") {
			data = strings.TrimPrefix(line, "data: ")
		}
	}
	if event != "live" || data == "" {
		t.Fatalf("no live frame: event=%q data=%q (err %v)", event, data, sc.Err())
	}
	u, err := DecodeLiveUpdate([]byte(data))
	if err != nil {
		t.Fatalf("frame payload: %v", err)
	}
	if u.Seq != 1 || u.Trials != 5 || u.TrialsDelta != 5 {
		t.Fatalf("first frame: %+v", u)
	}
	if u.ElapsedSec != 0 || u.TrialsPerSec != 0 {
		t.Fatalf("first frame must report a zero-width window: %+v", u)
	}
	assertFiniteUpdate(t, u)
}

func TestHealthEndpoints(t *testing.T) {
	reg := NewRegistry(0)
	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	status := func(path string) int {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := status("/healthz"); got != http.StatusOK {
		t.Fatalf("/healthz = %d", got)
	}
	if got := status("/readyz"); got != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200 by default", got)
	}
	reg.SetReady(false)
	if got := status("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("/readyz after SetReady(false) = %d, want 503", got)
	}
	reg.SetReady(true)
	if got := status("/readyz"); got != http.StatusOK {
		t.Fatalf("/readyz after SetReady(true) = %d", got)
	}
	if got := status("/buildinfo"); got != http.StatusOK {
		t.Fatalf("/buildinfo = %d", got)
	}
}

func TestDebugEventsEndpoint(t *testing.T) {
	reg := NewRegistry(0)
	l := reg.EnableEvents(0)
	l.SetClock(nil)
	for i := 0; i < 4; i++ {
		kind := "probe"
		if i == 3 {
			kind = "trial.verdict"
		}
		e := NewWideEvent(kind)
		e.Trial = i
		l.Emit(e)
	}
	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	lines := func(path string) []string {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out []string
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if sc.Text() != "" {
				out = append(out, sc.Text())
			}
		}
		return out
	}
	if got := lines("/debug/events"); len(got) != 4 {
		t.Fatalf("unfiltered: %d lines", len(got))
	}
	got := lines("/debug/events?kind=trial.verdict")
	if len(got) != 1 {
		t.Fatalf("kind filter: %d lines", len(got))
	}
	var e WideEvent
	if err := json.Unmarshal([]byte(got[0]), &e); err != nil || e.Kind != "trial.verdict" {
		t.Fatalf("bad event %q: %v", got[0], err)
	}
	if got := lines("/debug/events?n=2"); len(got) != 2 {
		t.Fatalf("n filter: %d lines", len(got))
	}
}

// TestComputeLiveUpdateService pins the flowrecond row: admission
// gauges, cumulative session count with delta, and the model store's
// residency and hit ratio.
func TestComputeLiveUpdateService(t *testing.T) {
	prev := Snapshot{Counters: map[string]int64{"service_sessions_total": 10}}
	cur := Snapshot{
		Counters: map[string]int64{
			"service_sessions_total":               74,
			`service_store_lookups{result="hit"}`:  63,
			`service_store_lookups{result="miss"}`: 1,
		},
		Gauges: map[string]int64{
			"service_sessions_active": 5,
			"service_sessions_queued": 2,
			"service_store_models":    1,
			"service_store_bytes":     4 << 20,
		},
	}
	u := ComputeLiveUpdate(prev, cur, 2)
	if u.Sessions != 74 || u.SessionsDelta != 64 {
		t.Fatalf("sessions: %d (+%d)", u.Sessions, u.SessionsDelta)
	}
	if u.SessionsActive != 5 || u.SessionsQueued != 2 {
		t.Fatalf("admission gauges: active %d queued %d", u.SessionsActive, u.SessionsQueued)
	}
	if u.ModelStoreModels != 1 || u.ModelStoreBytes != 4<<20 {
		t.Fatalf("store residency: %d models %d bytes", u.ModelStoreModels, u.ModelStoreBytes)
	}
	if u.ModelStoreHitPct < 98.4 || u.ModelStoreHitPct > 98.5 {
		t.Fatalf("hit pct = %v, want 63/64 ≈ 98.4", u.ModelStoreHitPct)
	}
	// Outside the daemon every service field stays zero (and omitted).
	empty := ComputeLiveUpdate(Snapshot{}, Snapshot{}, 1)
	if empty.Sessions != 0 || empty.SessionsActive != 0 || empty.ModelStoreHitPct != 0 {
		t.Fatalf("service fields nonzero without the daemon: %+v", empty)
	}
}
