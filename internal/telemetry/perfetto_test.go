package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func sampleSpans() []Span {
	return []Span{
		{Trace: 1, ID: 1, Name: "inject", Node: "switch", Flow: 0, Rule: 2, Start: 0.001, End: 0.010},
		{Trace: 1, ID: 2, Parent: 1, Name: "packet_in", Node: "switch", Flow: 0, Rule: 2, Start: 0.002, End: 0.010},
		{Trace: 1, ID: 1<<41 | 1, Parent: 2, Name: "controller.decision", Node: "controller", Flow: 0, Rule: 2, Start: 0.8, End: 0.81},
		{Trace: 1, ID: 3, Name: "orphan", Node: "", Flow: -1, Rule: -1, Start: 0.5, End: 0.6},
	}
}

func TestWritePerfettoValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfetto(sampleSpans(), &buf); err != nil {
		t.Fatal(err)
	}
	n, err := ValidatePerfetto(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("own output rejected: %v", err)
	}
	if n != 4 {
		t.Fatalf("%d span events, want 4", n)
	}

	var f struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	// Deterministic pid assignment: sorted nodes, "" mapped to a named
	// process track.
	names := map[int]string{}
	for _, e := range f.TraceEvents {
		if e.Ph == "M" {
			names[e.Pid] = e.Args["name"].(string)
		}
	}
	if names[1] != "(unattributed)" || names[2] != "controller" || names[3] != "switch" {
		t.Fatalf("process naming: %+v", names)
	}
	for _, e := range f.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		if e.Tid != 1 {
			t.Fatalf("span event on tid %d, want trace 1", e.Tid)
		}
		if e.Name == "controller.decision" && e.Args["parent"].(float64) != 2 {
			t.Fatalf("parent lost: %+v", e.Args)
		}
	}
}

// TestWritePerfettoWallAlignment: when every span carries a wall stamp,
// timestamps come from the shared wall clock — the only base on which
// two processes' local clocks line up.
func TestWritePerfettoWallAlignment(t *testing.T) {
	base := int64(1_000_000_000_000)
	spans := []Span{
		// The switch's virtual clock starts near 0, the controller's near
		// 0.9s — but on the wall the decision happens 5ms in.
		{Trace: 1, ID: 1, Name: "inject", Node: "switch", Flow: -1, Rule: -1, Start: 0.001, End: 0.010, WallNs: base},
		{Trace: 1, ID: 2, Parent: 1, Name: "decision", Node: "controller", Flow: -1, Rule: -1, Start: 0.9, End: 0.905, WallNs: base + 5_000_000},
	}
	var buf bytes.Buffer
	if err := WritePerfetto(spans, &buf); err != nil {
		t.Fatal(err)
	}
	ts := eventTimestamps(t, buf.Bytes())
	if ts["inject"] != 0 || ts["decision"] != 5000 {
		t.Fatalf("wall-aligned ts: %+v, want inject=0 decision=5000µs", ts)
	}

	// One missing stamp ⇒ fall back to virtual time for all.
	spans[1].WallNs = 0
	buf.Reset()
	if err := WritePerfetto(spans, &buf); err != nil {
		t.Fatal(err)
	}
	ts = eventTimestamps(t, buf.Bytes())
	if ts["inject"] != 1000 || ts["decision"] != 900000 {
		t.Fatalf("virtual ts: %+v, want inject=1000 decision=900000µs", ts)
	}
}

func eventTimestamps(t *testing.T, raw []byte) map[string]float64 {
	t.Helper()
	var f struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatal(err)
	}
	ts := map[string]float64{}
	for _, e := range f.TraceEvents {
		if e.Ph == "X" {
			ts[e.Name] = e.Ts
		}
	}
	return ts
}

func TestValidatePerfettoRejects(t *testing.T) {
	cases := map[string]string{
		"garbage":      `not json`,
		"empty":        `{"traceEvents":[]}`,
		"missing ph":   `{"traceEvents":[{"name":"x","pid":1,"tid":1}]}`,
		"bad pid":      `{"traceEvents":[{"name":"x","ph":"X","pid":0,"tid":1}]}`,
		"unnamed X":    `{"traceEvents":[{"ph":"X","pid":1,"tid":1}]}`,
		"negative ts":  `{"traceEvents":[{"name":"x","ph":"X","ts":-1,"pid":1,"tid":1}]}`,
		"no span rows": `{"traceEvents":[{"name":"p","ph":"M","pid":1}]}`,
	}
	for name, raw := range cases {
		if _, err := ValidatePerfetto(strings.NewReader(raw)); err == nil {
			t.Errorf("%s: accepted %s", name, raw)
		}
	}
}

func TestReadSpansJSONL(t *testing.T) {
	in := `{"trace":1,"id":1,"name":"a","node":"switch","flow":-1,"rule":-1,"start":0,"end":1}
{"trace":1,"id":2,"parent":1,"name":"b","node":"controller","flow":0,"rule":3,"start":0.5,"end":0.9}
`
	spans, err := ReadSpansJSONL(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 || spans[1].Parent != 1 || spans[1].Node != "controller" {
		t.Fatalf("parsed %+v", spans)
	}
	if _, err := ReadSpansJSONL(strings.NewReader("{\"trace\":1}\nnope\n")); err == nil {
		t.Fatal("garbage line accepted")
	}

	// Round trip through a recorder's own JSONL writer.
	r := NewSpanRecorder(0)
	r.SetWallClock(nil)
	id := r.Start(r.NewTrace(), 0, "x", "n", 0)
	r.End(id, 1)
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSpansJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0] != r.Spans()[0] {
		t.Fatalf("round trip lost data: %+v vs %+v", back, r.Spans())
	}
}
