// Package telemetry is the repository's dependency-free observability
// substrate: a metrics registry (atomic counters, gauges, fixed-bucket
// latency histograms with p50/p95/p99) plus a bounded ring-buffer event
// tracer for timestamped structured events (rule install/evict/timeout,
// packet-in/flow-mod, probe hit/miss, simulator virtual-time steps).
//
// Design rules:
//
//   - Disabled means nil. Every instrument (Counter, Gauge, Histogram,
//     Tracer) is safe to use through a nil pointer, where each method is
//     a no-op guarded by a single nil check. Instrumented code resolves
//     its instruments once (from a possibly-nil *Registry, whose accessor
//     methods also accept a nil receiver) and then calls them
//     unconditionally on the hot path — no branching on configuration,
//     no interface dispatch, no allocation.
//
//   - Enabled means atomic. All instrument updates are lock-free atomic
//     operations, safe for concurrent use; the registry's name→instrument
//     maps take a lock only on first resolution.
//
//   - Exposition is pull-based: Snapshot() for JSON serialization,
//     WritePrometheus for the text format, and Handler for a live
//     /metrics + /debug/trace + pprof endpoint (see http.go).
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds named instruments. The zero value is not usable;
// construct with NewRegistry. A nil *Registry is the disabled telemetry
// configuration: its accessors return nil instruments whose methods are
// no-ops.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	tracer     *Tracer
	spans      *SpanRecorder
	events     *EventLog
	notReady   atomic.Bool // readiness flag served by /readyz (zero = ready)
}

// NewRegistry returns an empty registry whose tracer retains up to
// traceCap events (0 disables tracing: Tracer() returns nil).
func NewRegistry(traceCap int) *Registry {
	r := &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
	if traceCap > 0 {
		r.tracer = NewTracer(traceCap)
	}
	return r
}

// Series formats a labelled series key as name{k1="v1",k2="v2"}. Labels
// must come in key/value pairs; the result is a valid Prometheus series
// identifier when name and keys are valid metric/label names.
func Series(name string, labels ...string) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", labels[i], labels[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// Counter returns the named counter, creating it on first use. Optional
// labels select one series of a metric family (see Series). Safe on a nil
// registry, where it returns a nil (no-op) counter.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	key := Series(name, labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[key]
	if !ok {
		c = &Counter{}
		r.counters[key] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Safe on a nil
// registry.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	key := Series(name, labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[key]
	if !ok {
		g = &Gauge{}
		r.gauges[key] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (nil buckets → DefaultLatencyBuckets).
// Safe on a nil registry.
func (r *Registry) Histogram(name string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	key := Series(name, labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[key]
	if !ok {
		h = NewHistogram(buckets)
		r.histograms[key] = h
	}
	return h
}

// Tracer returns the registry's event tracer (nil when tracing is
// disabled or the registry itself is nil).
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

// EnableSpans attaches a causal-span recorder retaining up to cap spans
// and returns it. Safe on a nil registry (returns nil, i.e. the
// disabled recorder). Calling it again returns the existing recorder.
func (r *Registry) EnableSpans(cap int) *SpanRecorder {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.spans == nil {
		r.spans = NewSpanRecorder(cap)
	}
	return r.spans
}

// Spans returns the registry's span recorder (nil when spans are
// disabled or the registry itself is nil).
func (r *Registry) Spans() *SpanRecorder {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.spans
}

// EnableEvents attaches a wide-event log retaining up to cap events and
// returns it. Safe on a nil registry (returns nil, i.e. the disabled
// log). Calling it again returns the existing log.
func (r *Registry) EnableEvents(cap int) *EventLog {
	if r == nil {
		return nil
	}
	// Resolve before taking r.mu (Counter locks it too): a sink write
	// error must be visible in /metrics, not only via SinkErr at exit.
	detached := r.Counter("eventlog_sink_detached_total")
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.events == nil {
		r.events = NewEventLog(cap)
		r.events.SetDetachCounter(detached)
	}
	return r.events
}

// Events returns the registry's wide-event log (nil when disabled or the
// registry itself is nil).
func (r *Registry) Events() *EventLog {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.events
}

// SetReady flips the readiness flag served by the /readyz endpoint. A
// fresh registry reports ready; daemons flip it false during draining or
// model (re)builds so orchestrators stop routing work at them. Safe on a
// nil registry.
func (r *Registry) SetReady(ready bool) {
	if r == nil {
		return
	}
	r.notReady.Store(!ready)
}

// Ready reports the registry's readiness (a nil registry is ready — the
// disabled configuration must never fail a health check).
func (r *Registry) Ready() bool {
	if r == nil {
		return true
	}
	return !r.notReady.Load()
}

// Snapshot is a point-in-time, JSON-serializable copy of every
// instrument in a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Events     []Event                      `json:"events,omitempty"`
	Spans      []Span                       `json:"spans,omitempty"`
}

// Snapshot captures the current value of every instrument. On a nil
// registry it returns an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.Snapshot()
	}
	s.Events = r.tracer.Events()
	s.Spans = r.spans.Spans()
	return s
}

// sortedKeys returns the map's keys in lexical order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
