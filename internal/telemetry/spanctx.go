package telemetry

import "encoding/binary"

// SpanContext is the cross-process trace-propagation carrier: the pair
// (trace ID, parent span ID) that lets a span started in one process —
// or one layer of the simulator — attach itself to a causal tree rooted
// in another. It is the one currency every substrate speaks: the
// virtual-time simulator threads it hop to hop, the experiment trial
// loop hands it to each probe, and the TCP OpenFlow path marshals it
// onto the wire as a PACKET_IN side-band so the controller's decision
// spans join the switch's forest without any post-hoc buffer-id
// correlation.
//
// The zero value is "no context": propagating it is always safe and
// starts a fresh root span on the receiving side.
type SpanContext struct {
	Trace  int64
	Parent SpanID
}

// Valid reports whether the context carries a live trace.
func (c SpanContext) Valid() bool { return c.Trace != 0 }

// Context packages a recorder-issued (trace, span) pair as a carrier,
// ready to hand to a child layer or marshal onto the wire. Safe on a nil
// recorder (returns the zero context).
func (r *SpanRecorder) Context(trace int64, parent SpanID) SpanContext {
	if r == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: trace, Parent: parent}
}

// StartCtx opens a span under the given carrier context and returns the
// child's own context, so call chains propagate one value instead of a
// (trace, parent) pair. On a nil recorder it returns the zero SpanID and
// context.
func (r *SpanRecorder) StartCtx(sc SpanContext, name, node string, at float64) (SpanID, SpanContext) {
	if r == nil {
		return 0, SpanContext{}
	}
	id := r.Start(sc.Trace, sc.Parent, name, node, at)
	return id, SpanContext{Trace: sc.Trace, Parent: id}
}

// SpanContextLen is the marshalled size of a SpanContext side-band:
// 4-byte magic + trace (8) + parent span ID (8).
const SpanContextLen = 20

// spanCtxMagic guards the side-band against misparsing ordinary payload
// bytes as a trace context.
var spanCtxMagic = [4]byte{'F', 'R', 'T', 'C'}

// AppendBinary appends the context's wire form to b and returns the
// extended slice. An invalid (zero-trace) context appends nothing, so
// propagation-off builds produce byte-identical payloads.
func (c SpanContext) AppendBinary(b []byte) []byte {
	if !c.Valid() {
		return b
	}
	var buf [SpanContextLen]byte
	copy(buf[0:4], spanCtxMagic[:])
	binary.BigEndian.PutUint64(buf[4:12], uint64(c.Trace))
	binary.BigEndian.PutUint64(buf[12:20], uint64(c.Parent))
	return append(b, buf[:]...)
}

// ParseSpanContext reads a trailing context side-band from a payload,
// returning the remaining payload, the context, and whether one was
// present. Payloads without the magic trailer pass through untouched —
// peers that never learned the side-band still interoperate.
func ParseSpanContext(b []byte) (rest []byte, c SpanContext, ok bool) {
	n := len(b) - SpanContextLen
	if n < 0 {
		return b, SpanContext{}, false
	}
	if [4]byte(b[n:n+4]) != spanCtxMagic {
		return b, SpanContext{}, false
	}
	c = SpanContext{
		Trace:  int64(binary.BigEndian.Uint64(b[n+4 : n+12])),
		Parent: SpanID(binary.BigEndian.Uint64(b[n+12 : n+20])),
	}
	if !c.Valid() {
		return b, SpanContext{}, false
	}
	return b[:n], c, true
}
