package telemetry

import (
	"encoding/json"
	"math"
	"sort"
	"strings"
)

// LiveUpdate is one frame of the /debug/live stream: the derived
// progress view of a running attack (trials done, probe throughput,
// running accuracy, fault pressure) plus the raw counter deltas of the
// window for anything the derived view does not name. Every float is
// guaranteed finite — degenerate windows (no elapsed time, no samples,
// a single sample) encode as zeros, never NaN or Inf.
type LiveUpdate struct {
	// Seq numbers the frames of one stream, starting at 1.
	Seq int64 `json:"seq"`
	// ElapsedSec is the wall-clock width of this delta window.
	ElapsedSec float64 `json:"elapsedSec"`

	// Trials is the cumulative experiment_trials_total; TrialsDelta is
	// this window's increment; TrialsPerSec the window rate.
	Trials       int64   `json:"trials"`
	TrialsDelta  int64   `json:"trialsDelta"`
	TrialsPerSec float64 `json:"trialsPerSec"`

	// Probes aggregates experiment probe counters plus switch injects
	// (whichever the process emits); ProbesPerSec is the window rate.
	Probes       int64   `json:"probes"`
	ProbesDelta  int64   `json:"probesDelta"`
	ProbesPerSec float64 `json:"probesPerSec"`

	// Accuracy is the running (TP+TN)/total over every attacker's
	// verdict counters; AccuracyByAttacker splits it per strategy. Both
	// are 0 before the first verdict.
	Accuracy           float64            `json:"accuracy"`
	AccuracyByAttacker map[string]float64 `json:"accuracyByAttacker,omitempty"`

	// DetectSources is the detect_sources_tracked gauge (sources the
	// streaming detector follows); DetectFlagged the cumulative
	// detect_flagged_total across reasons, with this window's increment
	// in DetectFlaggedDelta. All zero when no detector runs.
	DetectSources      int64 `json:"detectSources,omitempty"`
	DetectFlagged      int64 `json:"detectFlagged,omitempty"`
	DetectFlaggedDelta int64 `json:"detectFlaggedDelta,omitempty"`

	// FleetShards is the netsim_fleet_shards gauge (0 when no sharded
	// fleet runs); FleetEvents/FleetWindows are the cumulative simulator
	// event and lookahead-window counts with this window's event rate;
	// FleetCrossings counts cross-shard packet handoffs; FleetOccupancy
	// sums the per-shard flow-table occupancy gauges.
	FleetShards       int64   `json:"fleetShards,omitempty"`
	FleetEvents       int64   `json:"fleetEvents,omitempty"`
	FleetEventsPerSec float64 `json:"fleetEventsPerSec,omitempty"`
	FleetWindows      int64   `json:"fleetWindows,omitempty"`
	FleetCrossings    int64   `json:"fleetCrossings,omitempty"`
	FleetOccupancy    int64   `json:"fleetOccupancy,omitempty"`

	// SessionsActive / SessionsQueued are flowrecond's admission gauges;
	// Sessions is the cumulative opened-session count with this window's
	// increment. ModelStoreModels / ModelStoreBytes track the shared model
	// store's residency and ModelStoreHitPct its cumulative lookup hit
	// ratio (0–100). All zero outside the daemon.
	SessionsActive   int64   `json:"sessionsActive,omitempty"`
	SessionsQueued   int64   `json:"sessionsQueued,omitempty"`
	Sessions         int64   `json:"sessions,omitempty"`
	SessionsDelta    int64   `json:"sessionsDelta,omitempty"`
	ModelStoreModels int64   `json:"modelStoreModels,omitempty"`
	ModelStoreBytes  int64   `json:"modelStoreBytes,omitempty"`
	ModelStoreHitPct float64 `json:"modelStoreHitPct,omitempty"`

	// Faults is the cumulative faults_injected_total across layers;
	// Reconnects the switch's control-channel re-establishments; Lost
	// the probes that produced no observation.
	Faults      int64 `json:"faults"`
	FaultsDelta int64 `json:"faultsDelta"`
	Reconnects  int64 `json:"reconnects"`
	Lost        int64 `json:"lost"`

	// Counters carries every counter whose value changed inside the
	// window (series → delta), so dashboards can follow any metric
	// without a schema change. Gauges carries current gauge values.
	Counters map[string]int64 `json:"counters,omitempty"`
	Gauges   map[string]int64 `json:"gauges,omitempty"`
}

// sanitizeFloat clamps non-finite values to 0 so no NaN/Inf ever reaches
// an encoder (JSON rejects them; Prometheus scrapers choke on them).
func sanitizeFloat(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// rate divides a count by a window, returning 0 for empty or degenerate
// (zero/negative elapsed) windows instead of Inf/NaN.
func rate(delta int64, elapsed float64) float64 {
	if elapsed <= 0 || delta == 0 {
		return 0
	}
	return sanitizeFloat(float64(delta) / elapsed)
}

// seriesLabel extracts one label's value from a formatted series key
// (see Series), "" when absent.
func seriesLabel(series, label string) string {
	i := strings.Index(series, label+`="`)
	if i < 0 {
		return ""
	}
	rest := series[i+len(label)+2:]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return ""
	}
	return rest[:j]
}

// sumCounters sums every counter series with the given name prefix whose
// key also contains each of the needles.
func sumCounters(counters map[string]int64, prefix string, needles ...string) int64 {
	var total int64
series:
	for k, v := range counters {
		if !strings.HasPrefix(k, prefix) {
			continue
		}
		for _, n := range needles {
			if !strings.Contains(k, n) {
				continue series
			}
		}
		total += v
	}
	return total
}

// ComputeLiveUpdate derives one stream frame from two registry snapshots
// taken elapsed seconds apart. It is a pure function, so the SSE handler
// and its tests share the exact encoding; prev may be the zero Snapshot
// (the first frame reports cumulative values as the delta).
func ComputeLiveUpdate(prev, cur Snapshot, elapsed float64) LiveUpdate {
	u := LiveUpdate{ElapsedSec: sanitizeFloat(elapsed)}

	u.Trials = cur.Counters["experiment_trials_total"]
	u.TrialsDelta = u.Trials - prev.Counters["experiment_trials_total"]
	u.TrialsPerSec = rate(u.TrialsDelta, elapsed)

	probes := func(c map[string]int64) int64 {
		return sumCounters(c, "experiment_probes_total") + c["switch_injects_total"]
	}
	u.Probes = probes(cur.Counters)
	u.ProbesDelta = u.Probes - probes(prev.Counters)
	u.ProbesPerSec = rate(u.ProbesDelta, elapsed)

	var correct, total int64
	for k, v := range cur.Counters {
		if !strings.HasPrefix(k, "experiment_verdicts_total{") {
			continue
		}
		total += v
		outcome := seriesLabel(k, "outcome")
		if outcome == "true_pos" || outcome == "true_neg" {
			correct += v
		}
		name := seriesLabel(k, "attacker")
		if name == "" {
			continue
		}
		if u.AccuracyByAttacker == nil {
			u.AccuracyByAttacker = make(map[string]float64)
		}
		// First pass accumulates totals; the ratio is fixed up below.
		u.AccuracyByAttacker[name] += float64(v)
	}
	if total > 0 {
		u.Accuracy = sanitizeFloat(float64(correct) / float64(total))
	}
	for name := range u.AccuracyByAttacker {
		att := `attacker="` + name + `"`
		c := sumCounters(cur.Counters, "experiment_verdicts_total{", att, `outcome="true_pos"`) +
			sumCounters(cur.Counters, "experiment_verdicts_total{", att, `outcome="true_neg"`)
		t := sumCounters(cur.Counters, "experiment_verdicts_total{", att)
		if t > 0 {
			u.AccuracyByAttacker[name] = sanitizeFloat(float64(c) / float64(t))
		} else {
			u.AccuracyByAttacker[name] = 0
		}
	}

	u.DetectSources = cur.Gauges["detect_sources_tracked"]
	u.DetectFlagged = sumCounters(cur.Counters, "detect_flagged_total")
	u.DetectFlaggedDelta = u.DetectFlagged - sumCounters(prev.Counters, "detect_flagged_total")

	u.FleetShards = cur.Gauges["netsim_fleet_shards"]
	u.FleetEvents = cur.Counters["netsim_events_total"]
	u.FleetEventsPerSec = rate(u.FleetEvents-prev.Counters["netsim_events_total"], elapsed)
	u.FleetWindows = cur.Counters["netsim_fleet_windows_total"]
	u.FleetCrossings = cur.Counters["netsim_fleet_crossings_total"]
	for k, v := range cur.Gauges {
		if strings.HasPrefix(k, "netsim_shard_occupancy") {
			u.FleetOccupancy += v
		}
	}

	u.SessionsActive = cur.Gauges["service_sessions_active"]
	u.SessionsQueued = cur.Gauges["service_sessions_queued"]
	u.Sessions = cur.Counters["service_sessions_total"]
	u.SessionsDelta = u.Sessions - prev.Counters["service_sessions_total"]
	u.ModelStoreModels = cur.Gauges["service_store_models"]
	u.ModelStoreBytes = cur.Gauges["service_store_bytes"]
	storeHits := sumCounters(cur.Counters, "service_store_lookups", `result="hit"`)
	storeMisses := sumCounters(cur.Counters, "service_store_lookups", `result="miss"`)
	if lookups := storeHits + storeMisses; lookups > 0 {
		u.ModelStoreHitPct = sanitizeFloat(100 * float64(storeHits) / float64(lookups))
	}

	u.Faults = sumCounters(cur.Counters, "faults_injected_total")
	u.FaultsDelta = u.Faults - sumCounters(prev.Counters, "faults_injected_total")
	u.Reconnects = cur.Counters["switch_reconnects_total"]
	u.Lost = sumCounters(cur.Counters, "experiment_probes_total", `result="lost"`) +
		cur.Counters["switch_probe_timeouts_total"]

	for k, v := range cur.Counters {
		if d := v - prev.Counters[k]; d != 0 {
			if u.Counters == nil {
				u.Counters = make(map[string]int64)
			}
			u.Counters[k] = d
		}
	}
	if len(cur.Gauges) > 0 {
		u.Gauges = make(map[string]int64, len(cur.Gauges))
		for k, v := range cur.Gauges {
			u.Gauges[k] = v
		}
	}
	return u
}

// DecodeLiveUpdate parses one SSE data payload back into a LiveUpdate —
// the consumer-side half of the /debug/live contract (cmd/flowtop).
func DecodeLiveUpdate(data []byte) (LiveUpdate, error) {
	var u LiveUpdate
	err := json.Unmarshal(data, &u)
	return u, err
}

// LiveSeriesNames lists the counter series a LiveUpdate derives its
// headline numbers from, for documentation and tests.
func LiveSeriesNames() []string {
	names := []string{
		"detect_flagged_total",
		"detect_sources_tracked",
		"experiment_trials_total",
		"netsim_events_total",
		"netsim_fleet_shards",
		"netsim_fleet_windows_total",
		"netsim_fleet_crossings_total",
		"netsim_shard_occupancy",
		"experiment_probes_total",
		"experiment_verdicts_total",
		"faults_injected_total",
		"service_sessions_active",
		"service_sessions_queued",
		"service_sessions_total",
		"service_store_bytes",
		"service_store_lookups",
		"service_store_models",
		"switch_injects_total",
		"switch_reconnects_total",
		"switch_probe_timeouts_total",
	}
	sort.Strings(names)
	return names
}
