package telemetry

import (
	"math"
	"sync/atomic"

	"flowrecon/internal/stats"
)

// DefaultLatencyBuckets are histogram upper bounds (in seconds) spanning
// 1 µs – 10 s, the range of every latency in the reproduction: per-hop
// forwarding (µs), controller round trips (ms), and rule timeouts (s).
func DefaultLatencyBuckets() []float64 {
	return []float64{
		1e-6, 2.5e-6, 5e-6,
		1e-5, 2.5e-5, 5e-5,
		1e-4, 2.5e-4, 5e-4,
		1e-3, 2.5e-3, 5e-3,
		1e-2, 2.5e-2, 5e-2,
		0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

// MillisecondBuckets are upper bounds (in milliseconds) matched to the
// paper's timing channel: hit ≈ 0.087 ms, miss ≈ 4.07 ms, threshold 1 ms.
func MillisecondBuckets() []float64 {
	return []float64{
		0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 0.75,
		1, 1.5, 2, 3, 4, 5, 7.5, 10, 25, 50, 100,
	}
}

// Histogram is a fixed-bucket histogram with atomic updates. Buckets are
// cumulative-style upper bounds plus an implicit +Inf overflow bucket.
// A nil *Histogram is the disabled instrument: Observe is a no-op.
type Histogram struct {
	bounds []float64 // sorted upper bounds; len(counts) == len(bounds)+1
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomicFloat
	sumsq  atomicFloat
	min    atomicFloat // initialized to +Inf
	max    atomicFloat // initialized to -Inf
}

// NewHistogram builds a histogram over the given sorted upper bounds
// (nil → DefaultLatencyBuckets).
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets()
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	h.min.store(math.Inf(1))
	h.max.store(math.Inf(-1))
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound ≥ v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	h.sum.add(v)
	h.sumsq.add(v * v)
	h.min.storeMin(v)
	h.max.storeMax(v)
}

// Count returns the number of observations (0 on a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// HistogramSnapshot is a point-in-time copy of a histogram. Summary holds
// moment statistics plus the bucket-interpolated P50/P95/P99 quantiles
// (see stats.Summary); Bounds/Counts carry the raw buckets, with
// Counts[len(Bounds)] the +Inf overflow bucket.
type HistogramSnapshot struct {
	Summary stats.Summary `json:"summary"`
	Bounds  []float64     `json:"bounds"`
	Counts  []int64       `json:"counts"`
}

// Snapshot captures the histogram's state. Quantiles are estimated by
// linear interpolation within the containing bucket (clamped to the
// observed min/max), the standard fixed-bucket estimator. On a nil
// histogram it returns a zero snapshot.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
	}
	var n int64
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		n += s.Counts[i]
	}
	if n == 0 {
		return s
	}
	sum, sumsq := h.sum.load(), h.sumsq.load()
	mean := sum / float64(n)
	s.Summary = stats.Summary{
		N:    int(n),
		Mean: mean,
		Min:  h.min.load(),
		Max:  h.max.load(),
	}
	// A concurrent Observe can make a bucket count visible before its
	// min/max stores land, leaving the ±Inf initializers in place; ±Inf
	// (and NaN) would poison the JSON exposition, so clamp to the mean.
	if math.IsInf(s.Summary.Min, 0) || math.IsNaN(s.Summary.Min) {
		s.Summary.Min = mean
	}
	if math.IsInf(s.Summary.Max, 0) || math.IsNaN(s.Summary.Max) {
		s.Summary.Max = mean
	}
	if n > 1 {
		// Sample variance from the power sums; clamp fp cancellation.
		v := (sumsq - float64(n)*mean*mean) / float64(n-1)
		if v > 0 {
			s.Summary.Stddev = math.Sqrt(v)
		}
	}
	s.Summary.P50 = s.quantile(0.50)
	s.Summary.P95 = s.quantile(0.95)
	s.Summary.P99 = s.quantile(0.99)
	return s
}

// quantile estimates the q-quantile from the snapshot's buckets. It is
// guarded against degenerate snapshots: an empty histogram returns 0, a
// single-sample histogram returns that sample, and unfilled or
// non-finite Min/Max (e.g. a hand-built snapshot, or the ±Inf
// initializers leaking through) are clamped to the bucket bounds so the
// result is always finite and JSON-encodable.
func (s HistogramSnapshot) quantile(q float64) float64 {
	var total int64
	for _, c := range s.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	min, max := s.Summary.Min, s.Summary.Max
	if math.IsNaN(min) || math.IsInf(min, 0) {
		min = 0
		if len(s.Bounds) > 0 {
			min = math.Min(0, s.Bounds[0])
		}
	}
	if math.IsNaN(max) || math.IsInf(max, 0) {
		max = min
		if len(s.Bounds) > 0 {
			max = s.Bounds[len(s.Bounds)-1]
		}
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		// The quantile falls inside bucket i: interpolate between its
		// bounds, clamped to the observed extrema.
		lo := min
		if i > 0 && s.Bounds[i-1] > lo {
			lo = s.Bounds[i-1]
		}
		hi := max
		if i < len(s.Bounds) && s.Bounds[i] < hi {
			hi = s.Bounds[i]
		}
		if hi < lo {
			hi = lo
		}
		frac := (rank - float64(prev)) / float64(c)
		if frac < 0 {
			frac = 0
		} else if frac > 1 {
			frac = 1
		}
		v := lo + (hi-lo)*frac
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0
		}
		return v
	}
	if math.IsNaN(max) || math.IsInf(max, 0) {
		return 0
	}
	return max
}

// atomicFloat is a float64 with atomic add and monotone min/max updates,
// stored as IEEE-754 bits in a uint64.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) load() float64   { return math.Float64frombits(f.bits.Load()) }
func (f *atomicFloat) store(v float64) { f.bits.Store(math.Float64bits(v)) }

func (f *atomicFloat) add(delta float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) storeMin(v float64) {
	for {
		old := f.bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func (f *atomicFloat) storeMax(v float64) {
	for {
		old := f.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}
