package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event is one timestamped structured trace record. Kind is a
// dot-separated event name ("rule.install", "packet_in.recv",
// "probe.miss", "sim.step", …); Node names the emitting component
// (switch, controller, simulator node). Rule and Flow are -1 when not
// applicable; Virtual is the simulator's virtual time in seconds (0 when
// the event is wall-clock only).
type Event struct {
	Seq     int64   `json:"seq"`
	WallNs  int64   `json:"wallNs"`
	Virtual float64 `json:"virtual,omitempty"`
	Kind    string  `json:"kind"`
	Node    string  `json:"node,omitempty"`
	Rule    int     `json:"rule"`
	Flow    int     `json:"flow"`
	Value   float64 `json:"value,omitempty"`
	Detail  string  `json:"detail,omitempty"`
}

// Ev returns an Event of the given kind with Rule/Flow marked
// not-applicable; callers fill the relevant fields before Emit.
func Ev(kind string) Event {
	return Event{Kind: kind, Rule: -1, Flow: -1}
}

// Tracer records events into a bounded ring buffer: the most recent cap
// events are retained, older ones overwritten. A nil *Tracer is the
// disabled instrument: Emit is a single nil check.
type Tracer struct {
	mu    sync.Mutex
	buf   []Event
	next  int   // ring write position
	total int64 // events ever emitted (monotone sequence source)
}

// NewTracer returns a tracer retaining the most recent cap events.
func NewTracer(cap int) *Tracer {
	if cap < 1 {
		cap = 1
	}
	return &Tracer{buf: make([]Event, 0, cap)}
}

// Emit records one event, stamping its sequence number and (when unset)
// its wall-clock time.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	if e.WallNs == 0 {
		e.WallNs = time.Now().UnixNano()
	}
	t.mu.Lock()
	e.Seq = t.total
	t.total++
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, e)
	} else {
		t.buf[t.next] = e
		t.next = (t.next + 1) % cap(t.buf)
	}
	t.mu.Unlock()
}

// Total returns the number of events ever emitted (0 on a nil tracer).
func (t *Tracer) Total() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Events returns the retained events in emission order (nil on a nil
// tracer).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.buf))
	if len(t.buf) < cap(t.buf) {
		out = append(out, t.buf...)
		return out
	}
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// WriteJSONL writes the retained events as one JSON object per line.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range t.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}
