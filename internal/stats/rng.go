// Package stats provides the random-number, distribution, and summary
// machinery shared by the workload generators, the Markov models, and the
// evaluation harness.
//
// Everything is explicitly seeded: given the same seed, every consumer in
// this repository produces byte-identical results, which keeps the
// reproduction of the paper's experiments deterministic.
package stats

import (
	"math"
	"math/rand"
)

// RNG is a seeded source of randomness. It wraps math/rand.Rand so that all
// randomness in the repository flows through one audited type and no package
// touches the global math/rand state.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns an RNG seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent RNG from r. The derived stream is a pure
// function of r's current state, so forking is itself deterministic.
func (g *RNG) Fork() *RNG {
	return NewRNG(g.r.Int63())
}

// Float64 returns a uniform sample in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform sample in [0, n). n must be > 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Perm returns a pseudo-random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Uniform returns a uniform sample in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Exp returns an exponentially distributed sample with the given rate
// (mean 1/rate). It is the inter-arrival time of a Poisson process.
func (g *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		return math.Inf(1)
	}
	return g.r.ExpFloat64() / rate
}

// Normal returns a Gaussian sample with the given mean and standard
// deviation.
func (g *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*g.r.NormFloat64()
}

// Bernoulli returns true with probability p.
func (g *RNG) Bernoulli(p float64) bool {
	return g.r.Float64() < p
}

// Pareto returns a Pareto(α, xm) sample via inversion: xm·U^(−1/α). The
// tail index α controls heavy-tailedness (finite mean requires α > 1,
// finite variance α > 2); xm is the scale (minimum value).
func (g *RNG) Pareto(alpha, xm float64) float64 {
	// 1−Float64() lies in (0, 1], keeping the power finite.
	return xm * math.Pow(1-g.r.Float64(), -1/alpha)
}

// LogNormal returns exp(N(mu, sigma)) — a log-normal sample with median
// e^mu and mean e^{mu+sigma²/2}.
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(g.Normal(mu, sigma))
}

// Poisson returns a Poisson-distributed sample with the given mean, using
// Knuth's method for small means and a normal approximation for large ones.
func (g *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		// Normal approximation is more than adequate for the rates used
		// in this repository and avoids O(mean) work.
		n := int(math.Round(g.Normal(mean, math.Sqrt(mean))))
		if n < 0 {
			return 0
		}
		return n
	}
	limit := math.Exp(-mean)
	p := 1.0
	n := -1
	for p > limit {
		p *= g.r.Float64()
		n++
	}
	return n
}

// PickDistinct returns k distinct uniform indices in [0, n). It panics if
// k > n, which is always a programming error at call sites.
func (g *RNG) PickDistinct(k, n int) []int {
	if k > n {
		panic("stats: PickDistinct k > n")
	}
	perm := g.r.Perm(n)
	out := make([]int, k)
	copy(out, perm[:k])
	return out
}
