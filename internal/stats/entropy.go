package stats

import "math"

// EntropyBits returns the Shannon entropy, in bits, of the distribution ps.
// Zero-probability entries contribute nothing (0·log 1/0 ≡ 0, as in the
// paper's H(X̂) definition). Negative entries are treated as zero; the
// distribution is not renormalized.
func EntropyBits(ps ...float64) float64 {
	var h float64
	for _, p := range ps {
		if p <= 0 {
			continue
		}
		h -= p * math.Log2(p)
	}
	return h
}

// BinaryEntropy returns H(p) = -p log p - (1-p) log(1-p) in bits, the
// entropy of an indicator variable such as the paper's X̂.
func BinaryEntropy(p float64) float64 {
	return EntropyBits(p, 1-p)
}

// ConditionalEntropyBits returns H(X | Q) in bits for a joint distribution
// joint[x][q] = P(X=x ∧ Q=q). It implements the conditional-entropy sum of
// Section V-A:
//
//	H(X|Q) = Σ_{x,q} P(X=x ∧ Q=q) · log 1/P(X=x | Q=q).
//
// Cells with zero joint probability contribute nothing.
func ConditionalEntropyBits(joint [][]float64) float64 {
	if len(joint) == 0 {
		return 0
	}
	nq := len(joint[0])
	// Marginal over Q.
	qm := make([]float64, nq)
	for _, row := range joint {
		for q, p := range row {
			qm[q] += p
		}
	}
	var h float64
	for _, row := range joint {
		for q, p := range row {
			if p <= 0 || qm[q] <= 0 {
				continue
			}
			cond := p / qm[q]
			h -= p * math.Log2(cond)
		}
	}
	return h
}

// ConditionalEntropyBits2x2 is ConditionalEntropyBits specialized to the
// binary joint [x][q] used by single-probe evaluation. It performs the
// identical floating-point operations in the identical order as the
// generic function (marginalize over rows first, then accumulate cells
// row-major), so results are bit-for-bit equal — it only avoids the
// slice-of-slice allocation on the probe-selection hot path.
func ConditionalEntropyBits2x2(joint [2][2]float64) float64 {
	qm0 := joint[0][0] + joint[1][0]
	qm1 := joint[0][1] + joint[1][1]
	var h float64
	if joint[0][0] > 0 && qm0 > 0 {
		h -= joint[0][0] * math.Log2(joint[0][0]/qm0)
	}
	if joint[0][1] > 0 && qm1 > 0 {
		h -= joint[0][1] * math.Log2(joint[0][1]/qm1)
	}
	if joint[1][0] > 0 && qm0 > 0 {
		h -= joint[1][0] * math.Log2(joint[1][0]/qm0)
	}
	if joint[1][1] > 0 && qm1 > 0 {
		h -= joint[1][1] * math.Log2(joint[1][1]/qm1)
	}
	return h
}
