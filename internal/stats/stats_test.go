package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGForkIndependence(t *testing.T) {
	a := NewRNG(7)
	f1 := a.Fork()
	b := NewRNG(7)
	f2 := b.Fork()
	for i := 0; i < 50; i++ {
		if f1.Float64() != f2.Float64() {
			t.Fatalf("forks of identical parents diverged at draw %d", i)
		}
	}
}

func TestExpMean(t *testing.T) {
	g := NewRNG(1)
	const rate = 2.5
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += g.Exp(rate)
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.01 {
		t.Fatalf("Exp(%v) mean = %v, want ≈ %v", rate, mean, 1/rate)
	}
}

func TestExpZeroRate(t *testing.T) {
	g := NewRNG(1)
	if v := g.Exp(0); !math.IsInf(v, 1) {
		t.Fatalf("Exp(0) = %v, want +Inf", v)
	}
}

func TestPoissonMean(t *testing.T) {
	g := NewRNG(3)
	for _, mean := range []float64{0.3, 2, 10, 100} {
		var sum float64
		const n = 50000
		for i := 0; i < n; i++ {
			sum += float64(g.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Errorf("Poisson(%v) mean = %v", mean, got)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	g := NewRNG(5)
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = g.Normal(4.07, 1.806)
	}
	s := Summarize(xs)
	if math.Abs(s.Mean-4.07) > 0.03 {
		t.Errorf("mean = %v", s.Mean)
	}
	if math.Abs(s.Stddev-1.806) > 0.03 {
		t.Errorf("stddev = %v", s.Stddev)
	}
}

func TestPickDistinct(t *testing.T) {
	g := NewRNG(11)
	got := g.PickDistinct(5, 10)
	seen := map[int]bool{}
	for _, v := range got {
		if v < 0 || v >= 10 {
			t.Fatalf("out of range: %d", v)
		}
		if seen[v] {
			t.Fatalf("duplicate: %d", v)
		}
		seen[v] = true
	}
	if len(got) != 5 {
		t.Fatalf("len = %d", len(got))
	}
}

func TestPickDistinctPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k > n")
		}
	}()
	NewRNG(1).PickDistinct(3, 2)
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.Mean != 2.5 || s.Min != 1 || s.Max != 4 || s.N != 4 {
		t.Fatalf("bad summary: %+v", s)
	}
	want := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(s.Stddev-want) > 1e-12 {
		t.Fatalf("stddev = %v, want %v", s.Stddev, want)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s != (Summary{}) {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestEmpiricalCDF(t *testing.T) {
	cdf := EmpiricalCDF([]float64{3, 1, 2, 2})
	want := []CDFPoint{{1, 0.25}, {2, 0.75}, {3, 1}}
	if len(cdf) != len(want) {
		t.Fatalf("cdf = %v", cdf)
	}
	for i := range want {
		if cdf[i] != want[i] {
			t.Fatalf("cdf[%d] = %v, want %v", i, cdf[i], want[i])
		}
	}
}

func TestCDFMonotone(t *testing.T) {
	f := func(xs []float64) bool {
		cdf := EmpiricalCDF(xs)
		prev := CDFPoint{math.Inf(-1), 0}
		for _, pt := range cdf {
			if pt.X <= prev.X || pt.P < prev.P || pt.P > 1 {
				return false
			}
			prev = pt
		}
		return len(xs) == 0 || cdf[len(cdf)-1].P == 1
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	if q := Quantile(xs, 0.5); q != 2 {
		t.Fatalf("median = %v", q)
	}
	if q := Quantile(xs, 0); q != 0 {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 4 {
		t.Fatalf("q1 = %v", q)
	}
	if q := Quantile(xs, 0.25); q != 1 {
		t.Fatalf("q.25 = %v", q)
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]float64{-1, 0.1, 0.5, 0.9, 2}, 0, 1, 2)
	if h[0] != 2 || h[1] != 3 {
		t.Fatalf("hist = %v", h)
	}
}

func TestEntropy(t *testing.T) {
	if h := BinaryEntropy(0.5); math.Abs(h-1) > 1e-12 {
		t.Fatalf("H(0.5) = %v", h)
	}
	if h := BinaryEntropy(0); h != 0 {
		t.Fatalf("H(0) = %v", h)
	}
	if h := BinaryEntropy(1); h != 0 {
		t.Fatalf("H(1) = %v", h)
	}
	if h := EntropyBits(0.25, 0.25, 0.25, 0.25); math.Abs(h-2) > 1e-12 {
		t.Fatalf("H(uniform4) = %v", h)
	}
}

func TestBinaryEntropyBounds(t *testing.T) {
	f := func(p float64) bool {
		p = math.Abs(math.Mod(p, 1))
		h := BinaryEntropy(p)
		return h >= 0 && h <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestConditionalEntropy(t *testing.T) {
	// Independent X, Q: H(X|Q) = H(X).
	joint := [][]float64{{0.15, 0.35}, {0.15, 0.35}} // X uniform, Q = 0.3/0.7
	h := ConditionalEntropyBits(joint)
	if math.Abs(h-1) > 1e-12 {
		t.Fatalf("independent H(X|Q) = %v, want 1", h)
	}
	// Fully determined: H(X|Q) = 0.
	joint = [][]float64{{0.4, 0}, {0, 0.6}}
	if h := ConditionalEntropyBits(joint); h != 0 {
		t.Fatalf("determined H(X|Q) = %v, want 0", h)
	}
	if h := ConditionalEntropyBits(nil); h != 0 {
		t.Fatalf("nil joint H = %v", h)
	}
}

func TestConditionalEntropyReducesEntropy(t *testing.T) {
	// Information can't hurt: H(X|Q) ≤ H(X) for any joint distribution.
	f := func(a, b, c, d float64) bool {
		a, b, c, d = math.Abs(a), math.Abs(b), math.Abs(c), math.Abs(d)
		sum := a + b + c + d
		if sum == 0 || math.IsInf(sum, 0) || math.IsNaN(sum) {
			return true
		}
		joint := [][]float64{{a / sum, b / sum}, {c / sum, d / sum}}
		hx := BinaryEntropy(joint[0][0] + joint[0][1])
		return ConditionalEntropyBits(joint) <= hx+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
