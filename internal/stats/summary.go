package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds first- and second-moment statistics of a sample plus
// the tail quantiles used by the telemetry histograms and the latency
// reports.
type Summary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	P50    float64 `json:"p50"`
	P95    float64 `json:"p95"`
	P99    float64 `json:"p99"`
}

// Summarize computes summary statistics for xs, including the P50/P95/P99
// quantiles (linear interpolation, see Quantile). An empty sample yields
// a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Stddev = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	s.P50 = quantileSorted(sorted, 0.50)
	s.P95 = quantileSorted(sorted, 0.95)
	s.P99 = quantileSorted(sorted, 0.99)
	return s
}

// String renders the summary as "mean=… std=… (n=…)".
func (s Summary) String() string {
	return fmt.Sprintf("mean=%.6g std=%.6g min=%.6g max=%.6g p50=%.6g p95=%.6g p99=%.6g (n=%d)",
		s.Mean, s.Stddev, s.Min, s.Max, s.P50, s.P95, s.P99, s.N)
}

// CDFPoint is one point of an empirical cumulative distribution function.
type CDFPoint struct {
	X float64 // sample value
	P float64 // fraction of samples ≤ X
}

// EmpiricalCDF returns the empirical CDF of xs as a sorted list of points,
// one per distinct sample value.
func EmpiricalCDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	out := make([]CDFPoint, 0, len(sorted))
	n := float64(len(sorted))
	for i, x := range sorted {
		if i+1 < len(sorted) && sorted[i+1] == x {
			continue // emit only the last occurrence of each value
		}
		out = append(out, CDFPoint{X: x, P: float64(i+1) / n})
	}
	return out
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using nearest-rank
// interpolation. It returns 0 for an empty sample.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// quantileSorted is Quantile over an already-sorted sample.
func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram bins xs into nbins equal-width bins over [lo, hi] and returns
// the per-bin counts. Samples outside [lo, hi] are clamped into the border
// bins.
func Histogram(xs []float64, lo, hi float64, nbins int) []int {
	counts := make([]int, nbins)
	if nbins == 0 || hi <= lo {
		return counts
	}
	w := (hi - lo) / float64(nbins)
	for _, x := range xs {
		i := int((x - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= nbins {
			i = nbins - 1
		}
		counts[i]++
	}
	return counts
}
