package stats

import (
	"math"
	"testing"
)

func TestSmallRNGDeterministic(t *testing.T) {
	a, b := NewSmallRNG(42), NewSmallRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
	c := NewSmallRNG(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds collided on %d of 1000 draws", same)
	}
}

func TestSmallRNGValueSemantics(t *testing.T) {
	// A copied generator must replay the original's future exactly —
	// the property that lets packets embed their stream by value.
	g := NewSmallRNG(7)
	g.Normal(0, 1) // leave a spare cached so the copy carries it too
	cp := g
	for i := 0; i < 100; i++ {
		if g.Normal(1, 2) != cp.Normal(1, 2) {
			t.Fatalf("copy diverged at draw %d", i)
		}
	}
}

func TestSmallRNGFloat64Range(t *testing.T) {
	g := NewSmallRNG(1)
	for i := 0; i < 10000; i++ {
		v := g.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v outside [0,1)", v)
		}
	}
}

func TestSmallRNGNormalMoments(t *testing.T) {
	g := NewSmallRNG(99)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := g.Normal(3, 2)
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	std := math.Sqrt(sum2/n - mean*mean)
	if math.Abs(mean-3) > 0.02 {
		t.Fatalf("Normal mean %v, want ≈3", mean)
	}
	if math.Abs(std-2) > 0.02 {
		t.Fatalf("Normal std %v, want ≈2", std)
	}
}

func TestSmallRNGExpMean(t *testing.T) {
	g := NewSmallRNG(5)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += g.Exp(4)
	}
	if mean := sum / n; math.Abs(mean-0.25) > 0.005 {
		t.Fatalf("Exp(4) mean %v, want ≈0.25", mean)
	}
	if !math.IsInf(g.Exp(0), 1) {
		t.Fatal("Exp(0) should be +Inf")
	}
}

func TestSmallRNGBernoulli(t *testing.T) {
	g := NewSmallRNG(11)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if g.Bernoulli(0.3) {
			hits++
		}
	}
	if frac := float64(hits) / n; math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) frequency %v", frac)
	}
}

func TestMix64Substreams(t *testing.T) {
	// Substreams from adjacent indices must not collide or correlate in
	// the crude sense of sharing draws.
	seen := map[int64]bool{}
	for i := int64(0); i < 1000; i++ {
		s := Mix64(12345, i)
		if seen[s] {
			t.Fatalf("Mix64 collision at stream %d", i)
		}
		seen[s] = true
		if s < 0 {
			t.Fatalf("Mix64 produced negative seed %d", s)
		}
	}
	if Mix64(1, 0) == Mix64(2, 0) {
		t.Fatal("Mix64 ignores the base seed")
	}
}
