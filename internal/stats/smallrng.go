package stats

import "math"

// SmallRNG is a value-embeddable deterministic generator for code that
// needs one independent random stream per simulated object (packet, rule,
// link) and cannot afford a heap-allocated math/rand source for each. A
// math/rand.Rand costs ~2.5 KiB of state per instance; SmallRNG is three
// words, copyable, and allocation-free, so a million in-flight packets
// can each carry their own stream.
//
// The core is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a counter
// plus a finalizing permutation. It passes BigCrush and — the property
// the sharded simulator depends on — a stream is a pure function of its
// seed, never of how many other streams exist or in what order they are
// drawn from. That is what keeps the fleet engine byte-identical at any
// shard count: every packet's delay draws come from its own seed.
type SmallRNG struct {
	state uint64
	// Box–Muller produces Gaussians in pairs; the spare is cached so
	// consecutive Normal calls cost one transcendental pair per two
	// samples, matching math/rand's amortized cost closely enough for
	// per-hop delay sampling.
	spare    float64
	hasSpare bool
}

// mix64 is the SplitMix64 finalizer, shared by seed derivation and the
// generator step.
func mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Mix64 deterministically derives an independent substream seed from a
// base seed and a stream index. Adjacent indices decorrelate through the
// finalizer, so Mix64(s, 0), Mix64(s, 1), ... are independent streams —
// the same construction faults.Profile.SubSeed uses for trial substreams.
func Mix64(seed, stream int64) int64 {
	return int64(mix64(uint64(seed)+0x9e3779b97f4a7c15*uint64(stream)+0x8e9d5a1b7cb9e1d5) >> 1)
}

// NewSmallRNG returns a generator seeded with seed. Adjacent seeds yield
// decorrelated streams (the first output already passes through the
// finalizer).
func NewSmallRNG(seed int64) SmallRNG {
	return SmallRNG{state: uint64(seed)}
}

// Uint64 returns the next 64 pseudo-random bits.
func (g *SmallRNG) Uint64() uint64 {
	g.state += 0x9e3779b97f4a7c15
	return mix64(g.state)
}

// Float64 returns a uniform sample in [0, 1).
func (g *SmallRNG) Float64() float64 {
	return float64(g.Uint64()>>11) * 0x1p-53
}

// Normal returns a Gaussian sample with the given mean and standard
// deviation (Box–Muller with a cached spare).
func (g *SmallRNG) Normal(mean, stddev float64) float64 {
	if g.hasSpare {
		g.hasSpare = false
		return mean + stddev*g.spare
	}
	// 1-Float64() is in (0, 1], keeping the log argument positive.
	r := math.Sqrt(-2 * math.Log(1-g.Float64()))
	s, c := math.Sincos(2 * math.Pi * g.Float64())
	g.spare, g.hasSpare = r*s, true
	return mean + stddev*r*c
}

// Exp returns an exponentially distributed sample with the given rate
// (mean 1/rate), the inter-arrival time of a Poisson process.
func (g *SmallRNG) Exp(rate float64) float64 {
	if rate <= 0 {
		return math.Inf(1)
	}
	return -math.Log(1-g.Float64()) / rate
}

// Bernoulli returns true with probability p.
func (g *SmallRNG) Bernoulli(p float64) bool {
	return g.Float64() < p
}
