// Package conftest is the statistical conformance harness: it checks
// that the implemented switch (continuous-time flowtable.Table) and the
// two Markov models (BasicModel exact, CompactModel approximate) agree
// with each other within documented statistical budgets, and that the
// attack's accuracy degrades gracefully — not catastrophically — when
// the channel gets lossy.
//
// The harness compares distributions over the shared observable of all
// three artifacts: the cached-rule bitmask ("which rules are in the
// table right now"). Two comparison tools are provided:
//
//   - ChiSquareGoF: a chi-square goodness-of-fit between empirical bin
//     counts and model probabilities, with small-expectation bins pooled
//     (Cochran's rule) and the p-value from the Wilson–Hilferty cube-root
//     normal approximation. Conformance tests assert p ≥ a documented
//     floor (PFloor): the null hypothesis "the switch behaves like the
//     model" must not be rejected at overwhelming confidence. The floor
//     is deliberately loose (1e-4, not 0.05) because the discrete-time
//     chain is an approximation of the continuous-time switch — the
//     paper's own Δ-step idealization — so a small systematic bias is
//     expected and tolerated; what the harness must catch is structural
//     divergence (wrong eviction order, broken timeouts, mis-seeded
//     faults), which drives p to ~0.
//
//   - TVD: total variation distance between two distributions, for the
//     CompactModel-vs-BasicModel budget (the §IV-B approximation trades
//     exactness for state-space compression; CompactTVDBudget documents
//     how much disagreement that trade is allowed to cost on the
//     cached-rule observable).
//
// Every sample in the harness is drawn from seeded stats.RNG streams, so
// a failing run reproduces exactly.
package conftest

import (
	"fmt"
	"math"
	"sort"

	"flowrecon/internal/markov"
)

// Documented conformance thresholds. Tests reference these constants so
// the budgets live in one place.
const (
	// PFloor is the minimum chi-square p-value at which empirical switch
	// occupancy is accepted as conforming to a model. See the package
	// comment for why it is far below the conventional 0.05.
	PFloor = 1e-4
	// MinExpected is Cochran's minimum expected count per chi-square
	// bin; sparser bins are pooled before the statistic is computed.
	MinExpected = 5.0
	// CompactTVDBudget bounds the total variation distance between the
	// compact and basic models' cached-rule-mask distributions at every
	// checked horizon. The compact model's state merging (§IV-B) loses
	// clock detail, not rule identity, so the masks should stay close.
	CompactTVDBudget = 0.12
)

// GoF is the result of a chi-square goodness-of-fit test.
type GoF struct {
	// Stat is the chi-square statistic over the pooled bins.
	Stat float64
	// DoF is the degrees of freedom (pooled bins − 1).
	DoF int
	// P is the upper-tail p-value (Wilson–Hilferty approximation).
	P float64
	// Bins is the number of bins after pooling; Pooled counts how many
	// raw bins were merged into the pool.
	Bins, Pooled int
	// N is the total observation count.
	N int
}

// ChiSquareGoF tests observed bin counts against expected bin
// probabilities. expected is normalized internally; bins whose expected
// count falls below minExpected (MinExpected when ≤ 0) are pooled into
// one residual bin per Cochran's rule. Returns an error for structural
// misuse (mismatched lengths, no observations, degenerate binning) —
// statistical rejection is expressed through the p-value, not the error.
func ChiSquareGoF(observed []int, expected []float64, minExpected float64) (GoF, error) {
	if len(observed) != len(expected) {
		return GoF{}, fmt.Errorf("conftest: %d observed bins vs %d expected", len(observed), len(expected))
	}
	if minExpected <= 0 {
		minExpected = MinExpected
	}
	n := 0
	for _, o := range observed {
		if o < 0 {
			return GoF{}, fmt.Errorf("conftest: negative count %d", o)
		}
		n += o
	}
	if n == 0 {
		return GoF{}, fmt.Errorf("conftest: no observations")
	}
	var totalP float64
	for _, p := range expected {
		if p < 0 || math.IsNaN(p) {
			return GoF{}, fmt.Errorf("conftest: bad expected probability %v", p)
		}
		totalP += p
	}
	if totalP <= 0 {
		return GoF{}, fmt.Errorf("conftest: expected distribution has no mass")
	}

	var stat float64
	bins, pooled := 0, 0
	poolObs, poolExp := 0.0, 0.0
	for i, o := range observed {
		e := expected[i] / totalP * float64(n)
		if e < minExpected {
			poolObs += float64(o)
			poolExp += e
			pooled++
			continue
		}
		d := float64(o) - e
		stat += d * d / e
		bins++
	}
	if pooled > 0 {
		if poolExp <= 0 {
			if poolObs > 0 {
				// Mass observed where the model allows none: certain
				// rejection, not a harness error.
				return GoF{Stat: math.Inf(1), DoF: bins, P: 0, Bins: bins + 1, Pooled: pooled, N: n}, nil
			}
		} else {
			d := poolObs - poolExp
			stat += d * d / poolExp
			bins++
		}
	}
	if bins < 2 {
		return GoF{}, fmt.Errorf("conftest: only %d usable bins after pooling (need ≥ 2)", bins)
	}
	dof := bins - 1
	return GoF{Stat: stat, DoF: dof, P: ChiSquareP(stat, dof), Bins: bins, Pooled: pooled, N: n}, nil
}

// ChiSquareP returns the upper-tail probability P(X ≥ stat) for a
// chi-square variable with dof degrees of freedom, via the
// Wilson–Hilferty cube-root normal approximation — accurate to a few
// percent for dof ≥ 3, which is ample for pass/fail against PFloor.
func ChiSquareP(stat float64, dof int) float64 {
	if dof <= 0 {
		return math.NaN()
	}
	if stat <= 0 {
		return 1
	}
	k := float64(dof)
	v := 2.0 / (9.0 * k)
	z := (math.Cbrt(stat/k) - (1 - v)) / math.Sqrt(v)
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// TVD returns the total variation distance ½·Σ|a_i − b_i| between two
// distributions given over the same index set. Inputs are used as-is
// (callers normalize); missing mass therefore shows up as distance.
func TVD(a, b []float64) float64 {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	var sum float64
	for i := 0; i < n; i++ {
		var av, bv float64
		if i < len(a) {
			av = a[i]
		}
		if i < len(b) {
			bv = b[i]
		}
		sum += math.Abs(av - bv)
	}
	return sum / 2
}

// MaskModel is the projection surface shared by core.BasicModel and
// core.CompactModel: a state space whose every state exposes the bitmask
// of cached rules.
type MaskModel interface {
	NumStates() int
	StateMask(i int) uint64
}

// ProjectMasks folds a state distribution onto cached-rule bitmasks —
// the observable an outside observer (or the switch's own table) can
// see. The result maps mask → probability.
func ProjectMasks(m MaskModel, d markov.Dist) map[uint64]float64 {
	out := make(map[uint64]float64)
	for i, p := range d {
		if p != 0 {
			out[m.StateMask(i)] += p
		}
	}
	return out
}

// AlignMasks renders two mask distributions over a shared, sorted index
// (the union of their supports), ready for TVD or chi-square binning.
// The returned masks slice gives the bin identities.
func AlignMasks(a, b map[uint64]float64) (masks []uint64, av, bv []float64) {
	seen := make(map[uint64]bool, len(a)+len(b))
	for m := range a {
		seen[m] = true
	}
	for m := range b {
		seen[m] = true
	}
	masks = make([]uint64, 0, len(seen))
	for m := range seen {
		masks = append(masks, m)
	}
	sort.Slice(masks, func(i, j int) bool { return masks[i] < masks[j] })
	av = make([]float64, len(masks))
	bv = make([]float64, len(masks))
	for i, m := range masks {
		av[i] = a[m]
		bv[i] = b[m]
	}
	return masks, av, bv
}
