package conftest

import (
	"math"
	"testing"

	"flowrecon/internal/stats"
)

// TestChiSquarePKnownValues: the Wilson–Hilferty approximation lands
// within a few percent of textbook chi-square tail values.
func TestChiSquarePKnownValues(t *testing.T) {
	cases := []struct {
		stat float64
		dof  int
		want float64
	}{
		{3.841, 1, 0.05},
		{5.991, 2, 0.05},
		{7.815, 3, 0.05},
		{11.070, 5, 0.05},
		{18.307, 10, 0.05},
		{23.209, 10, 0.01},
		{9.342, 10, 0.5},
	}
	for _, c := range cases {
		got := ChiSquareP(c.stat, c.dof)
		if math.Abs(got-c.want) > 0.012 {
			t.Errorf("P(χ²_%d ≥ %.3f) = %.4f, want ≈ %.3f", c.dof, c.stat, got, c.want)
		}
	}
	if p := ChiSquareP(0, 4); p != 1 {
		t.Errorf("zero statistic should give p=1, got %v", p)
	}
	if !math.IsNaN(ChiSquareP(1, 0)) {
		t.Error("dof 0 should give NaN")
	}
}

// TestChiSquareGoFAcceptsOwnDistribution: samples drawn from the stated
// distribution pass with a healthy p-value; samples from a visibly
// different one are crushed below PFloor.
func TestChiSquareGoFAcceptsOwnDistribution(t *testing.T) {
	exp := []float64{0.4, 0.3, 0.2, 0.1}
	rng := stats.NewRNG(7)
	draw := func(p []float64) int {
		u := rng.Float64()
		acc := 0.0
		for i, q := range p {
			acc += q
			if u < acc {
				return i
			}
		}
		return len(p) - 1
	}
	const n = 5000
	obs := make([]int, len(exp))
	for i := 0; i < n; i++ {
		obs[draw(exp)]++
	}
	res, err := ChiSquareGoF(obs, exp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.01 {
		t.Fatalf("correct distribution rejected: %+v", res)
	}
	if res.N != n || res.DoF != 3 {
		t.Fatalf("bookkeeping wrong: %+v", res)
	}

	// Same counts against a wrong model: decisive rejection.
	wrong := []float64{0.1, 0.2, 0.3, 0.4}
	res, err = ChiSquareGoF(obs, wrong, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > PFloor {
		t.Fatalf("wrong distribution accepted: %+v", res)
	}
}

// TestChiSquareGoFPooling: bins with tiny expectation are pooled, and
// observations in model-impossible bins reject outright.
func TestChiSquareGoFPooling(t *testing.T) {
	obs := []int{50, 45, 3, 2}
	exp := []float64{0.5, 0.45, 0.025, 0.025} // tail bins expect 2.5 each < 5
	res, err := ChiSquareGoF(obs, exp, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pooled != 2 || res.Bins != 3 {
		t.Fatalf("pooling wrong: %+v", res)
	}

	// Observation where the model has zero mass → p = 0.
	obs = []int{50, 50, 7}
	exp = []float64{0.5, 0.5, 0}
	res, err = ChiSquareGoF(obs, exp, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 0 {
		t.Fatalf("impossible observation not rejected: %+v", res)
	}

	// Structural misuse is an error, not a p-value.
	if _, err := ChiSquareGoF([]int{1}, []float64{1, 0}, 0); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := ChiSquareGoF([]int{0, 0}, []float64{0.5, 0.5}, 0); err == nil {
		t.Fatal("empty sample accepted")
	}
	if _, err := ChiSquareGoF([]int{5, 5}, []float64{0.5, 0.5}, 100); err == nil {
		t.Fatal("degenerate pooling accepted")
	}
}

// TestTVD: basic properties on known inputs.
func TestTVD(t *testing.T) {
	if d := TVD([]float64{0.5, 0.5}, []float64{0.5, 0.5}); d != 0 {
		t.Fatalf("identical dists: %v", d)
	}
	if d := TVD([]float64{1, 0}, []float64{0, 1}); d != 1 {
		t.Fatalf("disjoint dists: %v", d)
	}
	if d := TVD([]float64{0.8, 0.2}, []float64{0.6, 0.4}); math.Abs(d-0.2) > 1e-12 {
		t.Fatalf("want 0.2, got %v", d)
	}
	// Ragged lengths: missing entries read as zero mass.
	if d := TVD([]float64{1}, []float64{0.5, 0.5}); math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("ragged: %v", d)
	}
}

// TestAlignMasks: union support, sorted, zero-filled.
func TestAlignMasks(t *testing.T) {
	a := map[uint64]float64{0b01: 0.7, 0b10: 0.3}
	b := map[uint64]float64{0b10: 0.4, 0b11: 0.6}
	masks, av, bv := AlignMasks(a, b)
	if len(masks) != 3 || masks[0] != 0b01 || masks[1] != 0b10 || masks[2] != 0b11 {
		t.Fatalf("masks = %v", masks)
	}
	if av[2] != 0 || bv[0] != 0 {
		t.Fatalf("zero fill wrong: %v %v", av, bv)
	}
	// |0.7−0| + |0.3−0.4| + |0−0.6| = 1.4, halved.
	if math.Abs(TVD(av, bv)-0.7) > 1e-12 {
		t.Fatalf("aligned TVD = %v", TVD(av, bv))
	}
}
