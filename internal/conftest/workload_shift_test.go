package conftest

import (
	"testing"

	"flowrecon/internal/experiment"
)

// The break-the-independence-assumption suite: the attacker's model is
// Poisson (§IV-A1), so heavy-tailed and time-varying traffic at the SAME
// long-run mean rate is pure model misspecification. These tests pin the
// degradation envelope the way the PR 4 loss sweep pinned probe loss: the
// accuracy may erode as traffic departs from Poisson, but it must erode
// smoothly — no cliff between adjacent severities — and stay usefully
// above the coin-flip floor. A violation means either the generators'
// mean-rate preservation broke (the attack would see the wrong first
// moment, not just the wrong burstiness) or the attack became brittle to
// traffic shape in a way the paper's robustness story rules out.

func workloadShiftParams() experiment.Params {
	p := experiment.DefaultParams()
	p.NumFlows, p.NumRules, p.MaskBits, p.CacheSize = 8, 6, 3, 3
	p.WindowSeconds = 5
	return p
}

// TestAccuracyDegradesSmoothlyAcrossWorkloads: Poisson vs Pareto vs
// flash-crowd (plus the other §17 workloads) at equal mean rate, with a
// per-workload degradation budget. Heavy tails and slow rate modulation
// barely move the attack — interarrival shape washes out over a window,
// so those rows must stay within 0.15 of the Poisson reference. ON/OFF
// burstiness is the documented exception: gating ALL flows on and off
// together makes the target's presence correlate with cross-traffic
// occupancy (ON windows both contain the target and evict it; OFF
// windows do neither), which attacks the independence assumption
// directly rather than just the interarrival law. Its budget is 0.40 —
// measured ≈0.57 vs ≈0.95 Poisson — and the floor below keeps every row
// meaningfully above a coin flip. The identical-seed design means the
// differences are attributable to traffic shape alone.
func TestAccuracyDegradesSmoothlyAcrossWorkloads(t *testing.T) {
	cmp, err := experiment.RunWorkloadComparison(workloadShiftParams(), 11, 300, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	ref := cmp.Rows[0] // poisson
	if ref.Name != "poisson" {
		t.Fatalf("row 0 is %s, want poisson", ref.Name)
	}
	if ref.ModelAccuracy() < 0.60 {
		t.Fatalf("Poisson reference accuracy %.3f below 0.60; scenario degenerate", ref.ModelAccuracy())
	}
	budgets := map[string]float64{"bursty(4x,2s/6s)": 0.40}
	for _, row := range cmp.Rows[1:] {
		acc := row.ModelAccuracy()
		budget, ok := budgets[row.Name]
		if !ok {
			budget = 0.15
		}
		t.Logf("%-20s model accuracy %.3f (poisson %.3f, budget %.2f)", row.Name, acc, ref.ModelAccuracy(), budget)
		if acc < ref.ModelAccuracy()-budget {
			t.Errorf("%s: accuracy %.3f fell more than %.2f below the Poisson reference %.3f",
				row.Name, acc, budget, ref.ModelAccuracy())
		}
		if acc < 0.55 {
			t.Errorf("%s: accuracy %.3f barely beats a coin flip", row.Name, acc)
		}
	}
}

// TestAccuracyDegradesSmoothlyWithTailIndex mirrors the loss sweep's
// no-cliff shape along the tail axis: α falling 3.0 → 1.2 makes the
// Pareto tail progressively heavier (variance is already infinite below
// 2.0), and the model attacker's accuracy must not cliff more than 0.10
// between adjacent severities nor end more than 0.15 below where it
// started.
func TestAccuracyDegradesSmoothlyWithTailIndex(t *testing.T) {
	alphas := []float64{3.0, 2.5, 2.0, 1.7, 1.5, 1.2}
	acc, err := experiment.ParetoTailSweep(workloadShiftParams(), 11, 300, 2, alphas)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range acc {
		t.Logf("α=%.1f: model accuracy %.3f", alphas[i], a)
	}
	for i := 1; i < len(acc); i++ {
		if drop := acc[i-1] - acc[i]; drop > 0.10 {
			t.Fatalf("accuracy cliff between α=%.1f and α=%.1f: %.3f → %.3f",
				alphas[i-1], alphas[i], acc[i-1], acc[i])
		}
	}
	if acc[len(acc)-1] < acc[0]-0.15 {
		t.Fatalf("deep tail collapsed accuracy: %.3f → %.3f", acc[0], acc[len(acc)-1])
	}
	if acc[len(acc)-1] < 0.55 {
		t.Fatalf("accuracy at α=1.2 %.3f barely beats a coin flip", acc[len(acc)-1])
	}
}

// TestIngestedTraceAttackRuns: the real-traffic row — the attack runs
// end to end on the golden capture (windowed replay, rates fitted from
// the extracted flows) and decides every trial. Two regimes, both
// pinned:
//
//   - seed 17 draws a target at 0.320/s, well inside the detectable
//     stratum; the model attacker must clearly beat a coin flip there
//     (measured ≈0.97).
//   - seed 11 draws a 0.118/s target, where replayed windows carry
//     CORRELATED cross-traffic — every source is active in the same
//     real-time slice, so the target is usually evicted before the
//     probe and even direct probing lands below chance (measured
//     ≈0.44). That degradation is the point of replaying real captures;
//     the assertion is only that every trial still gets decided.
func TestIngestedTraceAttackRuns(t *testing.T) {
	spec := &experiment.TraceSourceSpec{Kind: "pcap", Path: "../ingest/testdata/golden.pcap", FitRates: true}
	if err := spec.Pin(); err != nil {
		t.Fatal(err)
	}

	results, nc, err := experiment.RunWorkloadsOnTrace(workloadShiftParams(), spec, 17, 200, 2)
	if err != nil {
		t.Fatal(err)
	}
	model := results[1]
	t.Logf("ingested capture (seed 17): model accuracy %.3f (target flow %d, rate %.3f/s)",
		model.Accuracy(), nc.Target, nc.Rates[nc.Target])
	if model.Trials != 200 {
		t.Fatalf("model attacker decided %d trials, want 200", model.Trials)
	}
	if model.Accuracy() < 0.70 {
		t.Fatalf("model attacker accuracy %.3f on a detectable-stratum target; want ≥ 0.70", model.Accuracy())
	}

	results, nc, err = experiment.RunWorkloadsOnTrace(workloadShiftParams(), spec, 11, 200, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("ingested capture (seed 11): model accuracy %.3f (target flow %d, rate %.3f/s)",
		results[1].Accuracy(), nc.Target, nc.Rates[nc.Target])
	for _, r := range results {
		if r.Trials != 200 {
			t.Fatalf("%s decided %d trials, want 200", r.Name, r.Trials)
		}
	}
}
