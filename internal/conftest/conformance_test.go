package conftest

import (
	"testing"

	"flowrecon/internal/core"
	"flowrecon/internal/experiment"
	"flowrecon/internal/faults"
	"flowrecon/internal/flows"
	"flowrecon/internal/flowtable"
	"flowrecon/internal/rules"
	"flowrecon/internal/stats"
	"flowrecon/internal/workload"
)

// conformanceConfig is the shared scenario of the switch-vs-model
// conformance tests: three overlapping idle-timeout rules contending for
// a two-slot cache, with per-step arrival probabilities λ_f·Δ in the
// 0.02–0.06 range the paper's discretization assumes (two arrivals per
// step improbable).
// The step Δ is deliberately small (λ_f·Δ ≤ 0.025): the chain's
// one-event-per-step idealization — timeout transitions consume a step
// of modeled time that costs the real switch nothing — introduces an
// occupancy bias of order λ·Δ, and the chi-square below is powerful
// enough to see it at coarser steps.
func conformanceConfig(t *testing.T) core.Config {
	t.Helper()
	rs, err := rules.NewSet([]rules.Rule{
		{Name: "r0", Cover: flows.SetOf(0, 1), Priority: 3, Timeout: 8},
		{Name: "r1", Cover: flows.SetOf(1, 2), Priority: 2, Timeout: 12},
		{Name: "r2", Cover: flows.SetOf(3), Priority: 1, Timeout: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	return core.Config{
		Rules:     rs,
		Rates:     []float64{0.3, 0.2, 0.5, 0.4},
		Delta:     0.05,
		CacheSize: 2,
	}
}

// tableMask replays one Poisson window through a fresh continuous-time
// table and reads the cached-rule bitmask at the horizon.
func tableMask(t *testing.T, cfg core.Config, horizon float64, rng *stats.RNG) uint64 {
	t.Helper()
	trace, err := workload.GeneratePoisson(workload.PoissonConfig{Rates: cfg.Rates, Duration: horizon}, rng)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := flowtable.New(cfg.Rules, cfg.CacheSize, cfg.Delta)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range trace.Arrivals() {
		if _, hit := tbl.Lookup(a.Flow, a.Time); !hit {
			if j, covered := cfg.Rules.HighestCovering(a.Flow); covered {
				tbl.Install(j, a.Time)
			}
		}
	}
	var mask uint64
	for j := 0; j < cfg.Rules.Len(); j++ {
		if tbl.Contains(j, horizon) {
			mask |= 1 << uint(j)
		}
	}
	return mask
}

// TestTableOccupancyMatchesBasicModel is the core conformance check: the
// continuous-time switch table, fed real Poisson traffic, occupies
// cached-rule states with the frequencies the BasicModel's evolved
// distribution predicts. The chi-square must not reject below PFloor —
// see the package comment for why the floor is loose. A structural bug
// (wrong eviction victim, broken idle refresh, clock off-by-one) drives
// the p-value to ~0 and fails decisively.
func TestTableOccupancyMatchesBasicModel(t *testing.T) {
	cfg := conformanceConfig(t)
	const (
		steps   = 240 // 12 s: several timeout cycles past the transient
		windows = 1500
	)
	horizon := float64(steps) * cfg.Delta

	model, err := core.NewBasicModel(cfg, 200000)
	if err != nil {
		t.Fatal(err)
	}
	predicted := ProjectMasks(model, model.Evolve(model.InitialDist(), steps))

	counts := make(map[uint64]int)
	rng := stats.NewRNG(101)
	for w := 0; w < windows; w++ {
		counts[tableMask(t, cfg, horizon, rng.Fork())]++
	}
	empirical := make(map[uint64]float64, len(counts))
	for m, c := range counts {
		empirical[m] = float64(c) / windows
	}

	masks, _, pv := AlignMasks(empirical, predicted)
	obs := make([]int, len(masks))
	for i, m := range masks {
		obs[i] = counts[m]
	}
	res, err := ChiSquareGoF(obs, pv, MinExpected)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("occupancy GoF: χ²=%.2f dof=%d p=%.4g bins=%d pooled=%d n=%d",
		res.Stat, res.DoF, res.P, res.Bins, res.Pooled, res.N)
	if res.P < PFloor {
		for i, m := range masks {
			t.Logf("mask %04b: empirical %.4f model %.4f", m, empirical[m], pv[i])
		}
		t.Fatalf("switch occupancy rejected against BasicModel: p=%.3g < %.0e", res.P, PFloor)
	}
}

// TestOccupancyHarnessDetectsBrokenSwitch: the harness has teeth — the
// same machinery decisively rejects a switch whose timeouts are twice
// the modeled duration.
func TestOccupancyHarnessDetectsBrokenSwitch(t *testing.T) {
	cfg := conformanceConfig(t)
	const (
		steps   = 240
		windows = 800
	)
	horizon := float64(steps) * cfg.Delta
	model, err := core.NewBasicModel(cfg, 200000)
	if err != nil {
		t.Fatal(err)
	}
	predicted := ProjectMasks(model, model.Evolve(model.InitialDist(), steps))

	// The "broken" switch holds rules twice as long as the model says.
	broken := cfg
	broken.Delta = cfg.Delta * 2
	counts := make(map[uint64]int)
	rng := stats.NewRNG(102)
	for w := 0; w < windows; w++ {
		counts[tableMask(t, broken, horizon, rng.Fork())]++
	}
	empirical := make(map[uint64]float64, len(counts))
	for m, c := range counts {
		empirical[m] = float64(c) / windows
	}
	masks, _, pv := AlignMasks(empirical, predicted)
	obs := make([]int, len(masks))
	for i, m := range masks {
		obs[i] = counts[m]
	}
	res, err := ChiSquareGoF(obs, pv, MinExpected)
	if err != nil {
		t.Fatal(err)
	}
	if res.P >= PFloor {
		t.Fatalf("doubled timeouts not detected: p=%.3g", res.P)
	}
}

// TestCompactWithinTVDBudget: the compact model's cached-rule-mask
// distribution stays within CompactTVDBudget of the exact basic model at
// every checked horizon — the quantified price of the §IV-B state-space
// compression on the observable the attack actually uses.
func TestCompactWithinTVDBudget(t *testing.T) {
	cfg := conformanceConfig(t)
	basic, err := core.NewBasicModel(cfg, 200000)
	if err != nil {
		t.Fatal(err)
	}
	compact, err := core.NewCompactModel(cfg, core.DefaultUSumParams())
	if err != nil {
		t.Fatal(err)
	}
	if compact.NumStates() >= basic.NumStates() {
		t.Fatalf("compact model is not compact: %d vs %d states", compact.NumStates(), basic.NumStates())
	}
	db, dc := basic.InitialDist(), compact.InitialDist()
	checked := 0
	for _, step := range []int{20, 80, 240} {
		db = basic.Evolve(db, step-checked)
		dc = compact.Evolve(dc, step-checked)
		checked = step
		_, bv, cv := AlignMasks(ProjectMasks(basic, db), ProjectMasks(compact, dc))
		d := TVD(bv, cv)
		t.Logf("step %3d: mask TVD(basic, compact) = %.4f (budget %.2f)", step, d, CompactTVDBudget)
		if d > CompactTVDBudget {
			t.Fatalf("step %d: compact model drifted %.4f > budget %.2f", step, d, CompactTVDBudget)
		}
	}
}

// TestAccuracyDegradesSmoothlyUnderLoss is the Fig.6-style robustness
// claim: as probe loss rises 0% → 5% the model attacker's accuracy
// degrades smoothly — no cliff at any step — and stays well above the
// coin-flip floor. Loss draws come from fault streams (never the trial
// RNG), so each loss level replays the same trials with only the faults
// changed.
func TestAccuracyDegradesSmoothlyUnderLoss(t *testing.T) {
	p := experiment.DefaultParams()
	p.NumFlows, p.NumRules, p.MaskBits, p.CacheSize = 8, 6, 3, 3
	p.WindowSeconds = 5
	nc, err := experiment.GenerateConfig(p, stats.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	const trials = 400
	losses := []float64{0, 0.01, 0.02, 0.03, 0.04, 0.05}
	acc := make([]float64, len(losses))
	for i, loss := range losses {
		attackers, err := experiment.StandardAttackers(nc, 2)
		if err != nil {
			t.Fatal(err)
		}
		res, _, err := experiment.RunTrialsOpts(nc, attackers, trials, experiment.DefaultMeasurement(), stats.NewRNG(13), experiment.TrialOptions{
			Faults: faults.Profile{Seed: 21, LossProb: loss},
		})
		if err != nil {
			t.Fatal(err)
		}
		acc[i] = res[1].Accuracy() // the model attacker
		t.Logf("loss %.0f%%: model accuracy %.3f", loss*100, acc[i])
	}
	for i := 1; i < len(acc); i++ {
		if drop := acc[i-1] - acc[i]; drop > 0.10 {
			t.Fatalf("accuracy cliff between %.0f%% and %.0f%% loss: %.3f → %.3f",
				losses[i-1]*100, losses[i]*100, acc[i-1], acc[i])
		}
	}
	if acc[len(acc)-1] < acc[0]-0.15 {
		t.Fatalf("5%% loss collapsed accuracy: %.3f → %.3f", acc[0], acc[len(acc)-1])
	}
	if acc[len(acc)-1] < 0.55 {
		t.Fatalf("accuracy at 5%% loss %.3f barely beats a coin flip", acc[len(acc)-1])
	}
}
