package service

import (
	"sync"

	"flowrecon/internal/telemetry"
)

// unit is one schedulable quantum: one trial of one session.
type unit struct {
	sess  *Session
	trial int
	seed  int64
}

// tgroup queues the pending units of every session attacking one target.
// Units drain FIFO through head so the backing array is reused instead
// of resliced away; when the group empties, both indices reset and the
// array's capacity survives for the next burst — the scheduler's
// steady-state enqueue path allocates nothing once groups and the ready
// ring are warm (gated by TestSchedulerSteadyStateAllocs).
type tgroup struct {
	key    TargetKey
	units  []unit
	head   int
	queued bool // present in the ready ring
}

func (g *tgroup) pending() int { return len(g.units) - g.head }

// Scheduler is the batched probe scheduler: instead of one goroutine per
// session, a fixed worker pool drains per-target rounds — each worker
// takes up to batch consecutive units from one target's queue, so
// back-to-back trials on a worker share the same hot model, selector and
// roster, then the target rotates to the ready ring's tail for fairness
// across targets.
type Scheduler struct {
	mu     sync.Mutex
	cond   *sync.Cond
	groups map[TargetKey]*tgroup
	// ready is a FIFO ring of groups with pending units.
	ready     []*tgroup
	readyHead int
	batch     int
	closed    bool
	inflight  int // units taken by workers, not yet finished
	idle      *sync.Cond
	wg        sync.WaitGroup

	unitsCtr *telemetry.Counter
	depthG   *telemetry.Gauge
}

// DefaultBatch is the per-round unit batch when NewScheduler gets ≤ 0.
const DefaultBatch = 8

// NewScheduler starts a scheduler with the given worker pool. workers
// ≤ 0 means 1. Close must be called to stop the pool.
func NewScheduler(workers, batch int) *Scheduler {
	if workers <= 0 {
		workers = 1
	}
	if batch <= 0 {
		batch = DefaultBatch
	}
	s := &Scheduler{groups: make(map[TargetKey]*tgroup), batch: batch}
	s.cond = sync.NewCond(&s.mu)
	s.idle = sync.NewCond(&s.mu)
	for w := 0; w < workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// SetTelemetry registers the scheduler's instruments on reg.
func (s *Scheduler) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	s.mu.Lock()
	s.unitsCtr = reg.Counter("service_sched_units_total")
	s.depthG = reg.Gauge("service_sched_depth")
	s.mu.Unlock()
}

// Enqueue adds one trial of sess to its target's round queue. This is
// the steady-state hot path: once the session's group and the ready ring
// have grown to their working capacity it performs no allocation.
func (s *Scheduler) Enqueue(sess *Session, trial int, seed int64) {
	s.mu.Lock()
	g := s.groups[sess.key]
	if g == nil {
		g = &tgroup{key: sess.key}
		s.groups[sess.key] = g
	}
	g.units = append(g.units, unit{sess: sess, trial: trial, seed: seed})
	if !g.queued {
		g.queued = true
		s.pushReadyLocked(g)
	}
	if s.depthG != nil {
		s.depthG.Add(1)
	}
	s.cond.Signal()
	s.mu.Unlock()
}

func (s *Scheduler) pushReadyLocked(g *tgroup) {
	s.ready = append(s.ready, g)
}

func (s *Scheduler) popReadyLocked() *tgroup {
	g := s.ready[s.readyHead]
	s.ready[s.readyHead] = nil
	s.readyHead++
	if s.readyHead == len(s.ready) {
		s.ready = s.ready[:0]
		s.readyHead = 0
	}
	return g
}

func (s *Scheduler) readyLenLocked() int { return len(s.ready) - s.readyHead }

// takeLocked moves up to batch units from g into buf (reusing buf's
// backing array) and re-queues g if it still has work.
func (s *Scheduler) takeLocked(g *tgroup, buf []unit) []unit {
	n := g.pending()
	if n > s.batch {
		n = s.batch
	}
	buf = append(buf[:0], g.units[g.head:g.head+n]...)
	g.head += n
	if g.head == len(g.units) {
		g.units = g.units[:0]
		g.head = 0
		g.queued = false
	} else {
		s.pushReadyLocked(g)
	}
	return buf
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	var buf []unit
	for {
		s.mu.Lock()
		for !s.closed && s.readyLenLocked() == 0 {
			s.cond.Wait()
		}
		if s.closed && s.readyLenLocked() == 0 {
			s.mu.Unlock()
			return
		}
		g := s.popReadyLocked()
		buf = s.takeLocked(g, buf)
		s.inflight += len(buf)
		if s.depthG != nil {
			s.depthG.Add(int64(-len(buf)))
		}
		s.mu.Unlock()

		for _, u := range buf {
			u.sess.runUnit(u.trial, u.seed)
		}

		s.mu.Lock()
		s.inflight -= len(buf)
		if s.unitsCtr != nil {
			s.unitsCtr.Add(int64(len(buf)))
		}
		if s.inflight == 0 && s.readyLenLocked() == 0 {
			s.idle.Broadcast()
		}
		s.mu.Unlock()
	}
}

// Wait blocks until every enqueued unit has finished executing.
func (s *Scheduler) Wait() {
	s.mu.Lock()
	for s.inflight > 0 || s.readyLenLocked() > 0 {
		s.idle.Wait()
	}
	s.mu.Unlock()
}

// Close drains remaining units and stops the worker pool.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}
