// Package service is the multi-tenant attack daemon behind cmd/flowrecond:
// a session manager with admission control and backpressure, a shared
// model store that amortizes §IV-B model builds across every session
// attacking the same configuration, and a batched probe scheduler that
// coalesces trials from many sessions onto one worker pool instead of one
// goroutine pile per session. Sessions arrive over HTTP as JSON specs and
// stream their per-probe results back as JSONL.
package service

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"

	"flowrecon/internal/experiment"
)

// SessionSpec is one attack-session request: the target specification
// (configuration parameters + seed), the workload (trace source), and
// the budget (trials × probes). Target reuses the recording spec so a
// session is exactly as reproducible as a recorded CLI run — the same
// spec always yields the same stream.
type SessionSpec struct {
	// Name is a client-chosen label echoed in the result stream. The
	// server never injects its own identifiers into the stream, which is
	// what keeps session output byte-identical at any server concurrency.
	Name string `json:"name,omitempty"`
	// Target pins the attacked configuration, workload and budget.
	Target experiment.RecordingSpec `json:"target"`
	// Detect attaches the streaming anomaly detector to every trial's
	// controller path, feeding the daemon's aggregate defender view.
	Detect bool `json:"detect,omitempty"`
}

// Validate checks the spec.
func (s *SessionSpec) Validate() error {
	if err := s.Target.Validate(); err != nil {
		return err
	}
	const maxBudget = 1 << 20
	if s.Target.Trials > maxBudget {
		return fmt.Errorf("service: %d trials exceeds the per-session budget cap", s.Target.Trials)
	}
	return nil
}

// TargetKey identifies a network configuration: two sessions with equal
// keys attack byte-identical configurations and can share one model.
type TargetKey [sha256.Size]byte

// KeyForTarget hashes the configuration-determining part of a spec:
// generation parameters, config seed, and — only when it fits rates —
// the trace source. Trials, probes, the trial seed and faults do not
// affect the generated configuration, so they stay out of the key and
// sessions differing only in budget or workload still share a model.
func KeyForTarget(spec experiment.RecordingSpec) (TargetKey, error) {
	payload := struct {
		Params     experiment.Params           `json:"params"`
		ConfigSeed int64                       `json:"configSeed"`
		Trace      *experiment.TraceSourceSpec `json:"trace,omitempty"`
	}{Params: spec.Params, ConfigSeed: spec.ConfigSeed}
	if spec.Trace != nil && spec.Trace.FitRates {
		payload.Trace = spec.Trace
	}
	b, err := json.Marshal(payload)
	if err != nil {
		return TargetKey{}, err
	}
	return sha256.Sum256(b), nil
}
