package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *Manager) {
	t.Helper()
	m := NewManager(cfg)
	mux := http.NewServeMux()
	Routes(mux, m)
	srv := httptest.NewServer(mux)
	t.Cleanup(func() {
		srv.Close()
		m.Shutdown()
	})
	return srv, m
}

func postSpec(t *testing.T, url string, spec SessionSpec) *http.Response {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestHTTPStreamByteIdentical compares full JSONL response bodies for one
// spec served by a 1-worker and an 8-worker daemon, with the 8-worker
// server additionally under concurrent load — the satellite's
// "byte-identical session results at server concurrency 1 vs 8".
func TestHTTPStreamByteIdentical(t *testing.T) {
	spec := testSpec("ident", 77, 5, 3)
	srv1, _ := newTestServer(t, Config{MaxActive: 8, Workers: 1})
	srv8, _ := newTestServer(t, Config{MaxActive: 8, Workers: 8, Batch: 2})

	fetch := func(srv *httptest.Server) []byte {
		resp := postSpec(t, srv.URL, spec)
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if got := resp.Header.Get("Content-Type"); got != "application/x-ndjson" {
			t.Fatalf("content type %q", got)
		}
		if resp.Header.Get("X-Session-Id") == "" {
			t.Fatal("missing X-Session-Id header")
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	want := fetch(srv1)
	// Load the 8-worker server with decoy sessions on a different seed so
	// trials from several sessions interleave on the pool.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := postSpec(t, srv8.URL, testSpec("decoy", int64(500+i), 3, 2))
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}(i)
	}
	got := fetch(srv8)
	wg.Wait()
	if !bytes.Equal(want, got) {
		t.Fatalf("streams differ between 1-worker and loaded 8-worker servers:\n--- w1 ---\n%s\n--- w8 ---\n%s", want, got)
	}
	// The contract behind that equality: no server-assigned IDs in-band.
	if bytes.Contains(want, []byte(`"s0000`)) {
		t.Fatal("session ID leaked into the result stream")
	}
	// Sanity: the stream carries the expected line types.
	for _, typ := range []string{`"type":"accepted"`, `"type":"probe"`, `"type":"verdict"`, `"type":"result"`} {
		if !bytes.Contains(want, []byte(typ)) {
			t.Fatalf("stream missing %s line:\n%s", typ, want)
		}
	}
}

// TestHTTPSaturated429 verifies the backpressure surface: when slots and
// queue are exhausted the API answers 429 with a Retry-After hint.
func TestHTTPSaturated429(t *testing.T) {
	srv, m := newTestServer(t, Config{MaxActive: 1, MaxQueue: -1, Workers: 1})
	hold, err := m.Open(testSpec("hold", 1, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	resp := postSpec(t, srv.URL, testSpec("over", 2, 1, 2))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	drainSession(t, m, hold)
}

// TestHTTPBadSpec verifies malformed and unknown-field specs get 400.
func TestHTTPBadSpec(t *testing.T) {
	srv, _ := newTestServer(t, Config{MaxActive: 2, Workers: 1})
	for _, body := range []string{"{not json", `{"bogusField":1}`} {
		resp, err := http.Post(srv.URL+"/v1/sessions", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestHTTPList verifies the session listing endpoint.
func TestHTTPList(t *testing.T) {
	srv, m := newTestServer(t, Config{MaxActive: 2, Workers: 1})
	sess, err := m.Open(testSpec("listed", 3, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	drainSession(t, m, sess)
	resp, err := http.Get(srv.URL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var infos []SessionInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != "listed" || infos[0].State != "done" || infos[0].Done != 2 {
		t.Fatalf("unexpected listing: %+v", infos)
	}
}
