package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"flowrecon/internal/detect"
	"flowrecon/internal/experiment"
	"flowrecon/internal/faults"
	"flowrecon/internal/telemetry"
)

// ErrSaturated means both the active-session slots and the admission
// queue are full; the client should back off and retry (HTTP 429 with
// Retry-After).
var ErrSaturated = errors.New("service: saturated: active sessions and admission queue full")

// ErrDraining means the daemon is shutting down and admits no new
// sessions (HTTP 503).
var ErrDraining = errors.New("service: draining: not accepting new sessions")

// Config sizes the manager.
type Config struct {
	// MaxActive bounds concurrently running sessions (≤ 0 → 64).
	MaxActive int
	// MaxQueue bounds sessions waiting for an active slot (≤ 0 → 128;
	// to refuse queueing entirely set MaxQueue negative... use -1).
	MaxQueue int
	// Workers is the scheduler pool size (≤ 0 → 1).
	Workers int
	// Batch is the per-round unit batch (≤ 0 → DefaultBatch).
	Batch int
	// StoreSize / StoreBytes bound the shared model store.
	StoreSize  int
	StoreBytes int64
	// Registry receives service gauges and counters; nil disables.
	Registry *telemetry.Registry
	// Faults is the default chaos profile applied to sessions whose spec
	// carries none (the -fault-* daemon flags).
	Faults faults.Profile
	// DetectAggregate, non-nil, receives every detecting session's trial
	// detectors — the daemon's whole-process defender view.
	DetectAggregate *detect.Detector
}

// Manager admits, queues and runs sessions: bounded active slots, a
// bounded wait queue with backpressure beyond it, the shared model
// store, and the batched scheduler underneath.
type Manager struct {
	cfg   Config
	store *Store
	sched *Scheduler

	mu       sync.Mutex
	cond     *sync.Cond
	active   int
	queued   int
	draining bool
	sessions map[string]*Session
	order    []string
	nextID   atomic.Int64

	detMu sync.Mutex

	activeG   *telemetry.Gauge
	queuedG   *telemetry.Gauge
	opened    *telemetry.Counter
	rejected  *telemetry.Counter
	completed *telemetry.Counter
}

// maxFinishedRetained bounds how many completed sessions the list
// endpoint remembers.
const maxFinishedRetained = 256

// NewManager builds the manager and starts its scheduler pool.
func NewManager(cfg Config) *Manager {
	if cfg.MaxActive <= 0 {
		cfg.MaxActive = 64
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = 128
	}
	if cfg.MaxQueue < 0 {
		cfg.MaxQueue = 0
	}
	m := &Manager{
		cfg:      cfg,
		store:    NewStore(cfg.StoreSize, cfg.StoreBytes),
		sched:    NewScheduler(cfg.Workers, cfg.Batch),
		sessions: make(map[string]*Session),
	}
	m.cond = sync.NewCond(&m.mu)
	if reg := cfg.Registry; reg != nil {
		m.store.SetTelemetry(reg)
		m.sched.SetTelemetry(reg)
		m.activeG = reg.Gauge("service_sessions_active")
		m.queuedG = reg.Gauge("service_sessions_queued")
		m.opened = reg.Counter("service_sessions_total")
		m.rejected = reg.Counter("service_sessions_rejected_total")
		m.completed = reg.Counter("service_sessions_completed_total")
	}
	return m
}

// Store exposes the shared model store (stats endpoints, tests).
func (m *Manager) Store() *Store { return m.store }

// Open admits a session: it validates the spec, takes (or waits for) an
// active slot, resolves the shared model, and enqueues every trial on
// the scheduler. The returned session streams results via Next; the
// caller must Close it when done. Returns ErrSaturated when the queue is
// full and ErrDraining during shutdown.
func (m *Manager) Open(spec SessionSpec) (*Session, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := m.admit(); err != nil {
		if m.rejected != nil && errors.Is(err, ErrSaturated) {
			m.rejected.Inc()
		}
		return nil, err
	}
	sess, err := m.start(spec)
	if err != nil {
		m.release()
		return nil, err
	}
	if m.opened != nil {
		m.opened.Inc()
	}
	return sess, nil
}

// admit takes an active slot, waiting in the bounded queue when all
// slots are busy. Already-queued sessions survive a drain (they were
// admitted); new arrivals do not.
func (m *Manager) admit() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return ErrDraining
	}
	if m.active >= m.cfg.MaxActive {
		if m.queued >= m.cfg.MaxQueue {
			return ErrSaturated
		}
		m.queued++
		m.publishLocked()
		for m.active >= m.cfg.MaxActive {
			m.cond.Wait()
		}
		m.queued--
	}
	m.active++
	m.publishLocked()
	return nil
}

// release frees an active slot.
func (m *Manager) release() {
	m.mu.Lock()
	m.active--
	m.publishLocked()
	m.cond.Broadcast()
	m.mu.Unlock()
}

func (m *Manager) publishLocked() {
	if m.activeG != nil {
		m.activeG.Set(int64(m.active))
		m.queuedG.Set(int64(m.queued))
	}
}

// start resolves the model and schedules the session's trials.
func (m *Manager) start(spec SessionSpec) (*Session, error) {
	key, err := KeyForTarget(spec.Target)
	if err != nil {
		return nil, err
	}
	model, err := m.store.Get(spec.Target)
	if err != nil {
		return nil, err
	}
	roster, err := model.Roster(spec.Target.Probes)
	if err != nil {
		return nil, err
	}
	source, err := spec.Target.Trace.Source()
	if err != nil {
		return nil, err
	}
	meas := spec.Target.Measurement
	if meas == (experiment.Measurement{}) {
		meas = experiment.DefaultMeasurement()
	}
	ropts := experiment.RunnerOptions{
		Source:   source,
		Registry: m.cfg.Registry,
		Faults:   m.cfg.Faults,
	}
	if spec.Target.Faults != nil {
		ropts.Faults = *spec.Target.Faults
	}
	if spec.Detect {
		dc := detect.DefaultConfig()
		ropts.Detect = &dc
		ropts.KeepDetectors = m.cfg.DetectAggregate != nil
	}
	runner := experiment.NewTrialRunner(model.NC, roster, meas, ropts)
	id := fmt.Sprintf("s%06d", m.nextID.Add(1))
	sess := newSession(id, spec, key, model, runner)

	m.mu.Lock()
	m.sessions[id] = sess
	m.order = append(m.order, id)
	m.pruneLocked()
	m.mu.Unlock()

	seeds := experiment.TrialSeeds(spec.Target.TrialSeed, spec.Target.Trials)
	for t, seed := range seeds {
		m.sched.Enqueue(sess, t, seed)
	}
	return sess, nil
}

// MergeDetectors folds a trial's detector replicas into the aggregate
// defender view (no-op without one).
func (m *Manager) MergeDetectors(dets []*detect.Detector) {
	agg := m.cfg.DetectAggregate
	if agg == nil || len(dets) == 0 {
		return
	}
	m.detMu.Lock()
	for _, d := range dets {
		agg.Merge(d)
	}
	m.detMu.Unlock()
}

// CloseSession releases the session's active slot. Call exactly once per
// successful Open, after the result stream is consumed (or abandoned).
func (m *Manager) CloseSession(sess *Session) {
	if m.completed != nil {
		m.completed.Inc()
	}
	m.release()
}

// SessionInfo is one row of the session list.
type SessionInfo struct {
	ID     string `json:"id"`
	Name   string `json:"name,omitempty"`
	State  string `json:"state"`
	Trials int    `json:"trials"`
	Done   int    `json:"done"`
}

// Sessions lists known sessions oldest-first (completed sessions are
// retained up to a cap).
func (m *Manager) Sessions() []SessionInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]SessionInfo, 0, len(m.order))
	for _, id := range m.order {
		sess, ok := m.sessions[id]
		if !ok {
			continue
		}
		done, total := sess.Progress()
		out = append(out, SessionInfo{
			ID:     sess.ID,
			Name:   sess.Spec().Name,
			State:  sess.State().String(),
			Trials: total,
			Done:   done,
		})
	}
	return out
}

// pruneLocked drops the oldest finished sessions beyond the retention
// cap.
func (m *Manager) pruneLocked() {
	if len(m.order) <= maxFinishedRetained {
		return
	}
	kept := m.order[:0]
	excess := len(m.order) - maxFinishedRetained
	for _, id := range m.order {
		sess := m.sessions[id]
		if excess > 0 && sess != nil && sess.State() == StateDone {
			delete(m.sessions, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	m.order = kept
}

// Draining reports whether a drain is in progress.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Drain stops admitting sessions and waits for every active and queued
// session to finish, or for ctx to expire. The SIGTERM path: mark
// not-ready, Drain, then Shutdown.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	m.draining = true
	m.mu.Unlock()
	done := make(chan struct{})
	go func() {
		m.mu.Lock()
		for m.active > 0 || m.queued > 0 {
			m.cond.Wait()
		}
		m.mu.Unlock()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain interrupted with sessions still open: %w", ctx.Err())
	}
}

// Shutdown stops the scheduler pool. Call after Drain.
func (m *Manager) Shutdown() {
	m.sched.Close()
}
