package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"flowrecon/internal/experiment"
	"flowrecon/internal/faults"
)

// testParams keeps model builds test-sized (the benchmark scale used
// across the repo: 8 flows, 6 rules, cache 3).
func testParams() experiment.Params {
	p := experiment.DefaultParams()
	p.NumFlows = 8
	p.NumRules = 6
	p.MaskBits = 3
	p.CacheSize = 3
	p.Delta = 0.05
	p.WindowSeconds = 5
	p.USum.MCSamples = 600
	return p
}

func testSpec(name string, trialSeed int64, trials, probes int) SessionSpec {
	return SessionSpec{
		Name: name,
		Target: experiment.RecordingSpec{
			Params:      testParams(),
			ConfigSeed:  11,
			TrialSeed:   trialSeed,
			Trials:      trials,
			Probes:      probes,
			Measurement: experiment.DefaultMeasurement(),
		},
	}
}

// drainSession consumes a session to completion and returns its trial
// count.
func drainSession(t *testing.T, m *Manager, sess *Session) int {
	t.Helper()
	defer m.CloseSession(sess)
	n := 0
	for {
		_, ok, err := sess.Next()
		if err != nil {
			t.Errorf("session %s: %v", sess.ID, err)
			return n
		}
		if !ok {
			return n
		}
		n++
	}
}

// TestSharedModelStore64Sessions is the PR's headline acceptance
// criterion: 64 concurrent sessions over one target spec trigger exactly
// one model build, with every other lookup a cache hit.
func TestSharedModelStore64Sessions(t *testing.T) {
	m := NewManager(Config{MaxActive: 64, Workers: 4, Batch: 4})
	defer m.Shutdown()
	const sessions = 64
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess, err := m.Open(testSpec("shared", int64(100+i), 2, 3))
			if err != nil {
				t.Error(err)
				return
			}
			if got := drainSession(t, m, sess); got != 2 {
				t.Errorf("session %d delivered %d trials, want 2", i, got)
			}
		}(i)
	}
	wg.Wait()
	st := m.Store().Stats()
	if st.Builds != 1 {
		t.Fatalf("builds = %d, want exactly 1 for %d same-config sessions", st.Builds, sessions)
	}
	if st.Hits < sessions-1 {
		t.Fatalf("cache hits = %d, want ≥ %d", st.Hits, sessions-1)
	}
	if st.Bytes <= 0 {
		t.Fatalf("store bytes = %d, want accounted model footprint", st.Bytes)
	}
}

// TestSessionResultsIdenticalAcrossWorkers pins the determinism
// contract at the manager level: the same spec yields identical trial
// results whether the scheduler runs 1 worker or 8.
func TestSessionResultsIdenticalAcrossWorkers(t *testing.T) {
	collect := func(workers int) []experiment.TrialResult {
		m := NewManager(Config{MaxActive: 8, Workers: workers, Batch: 2})
		defer m.Shutdown()
		sess, err := m.Open(testSpec("det", 42, 6, 3))
		if err != nil {
			t.Fatal(err)
		}
		defer m.CloseSession(sess)
		var out []experiment.TrialResult
		for {
			res, ok, err := sess.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				return out
			}
			out = append(out, res)
		}
	}
	serial := collect(1)
	parallel := collect(8)
	if len(serial) != len(parallel) {
		t.Fatalf("trial counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		a, b := serial[i], parallel[i]
		if a.Truth != b.Truth || len(a.Attackers) != len(b.Attackers) {
			t.Fatalf("trial %d diverges across worker counts", i)
		}
		for j := range a.Attackers {
			x, y := a.Attackers[j], b.Attackers[j]
			if x.Verdict != y.Verdict || len(x.Probes) != len(y.Probes) {
				t.Fatalf("trial %d attacker %s diverges", i, x.Name)
			}
			for k := range x.Probes {
				if x.Probes[k] != y.Probes[k] || x.Outcomes[k] != y.Outcomes[k] {
					t.Fatalf("trial %d attacker %s probe %d diverges", i, x.Name, k)
				}
			}
		}
	}
}

// TestAdmissionReject verifies backpressure: with one active slot and no
// queue, a second concurrent session is refused with ErrSaturated, and
// after the first completes a new one is admitted again.
func TestAdmissionReject(t *testing.T) {
	m := NewManager(Config{MaxActive: 1, MaxQueue: -1, Workers: 1})
	defer m.Shutdown()
	first, err := m.Open(testSpec("first", 1, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Open(testSpec("second", 2, 1, 2)); !errors.Is(err, ErrSaturated) {
		t.Fatalf("got %v, want ErrSaturated", err)
	}
	drainSession(t, m, first)
	third, err := m.Open(testSpec("third", 3, 1, 2))
	if err != nil {
		t.Fatalf("slot not released after close: %v", err)
	}
	drainSession(t, m, third)
}

// TestAdmissionQueueWaits verifies the bounded queue: a session beyond
// the active limit waits for a slot instead of failing, and runs once
// the slot frees.
func TestAdmissionQueueWaits(t *testing.T) {
	m := NewManager(Config{MaxActive: 1, MaxQueue: 4, Workers: 1})
	defer m.Shutdown()
	first, err := m.Open(testSpec("hold", 1, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		sess, err := m.Open(testSpec("waits", 2, 1, 2))
		if err != nil {
			got <- err
			return
		}
		drainSession(t, m, sess)
		got <- nil
	}()
	// The queued session must not be admitted while the slot is held.
	select {
	case err := <-got:
		t.Fatalf("queued session finished while slot held (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	drainSession(t, m, first)
	select {
	case err := <-got:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("queued session never ran after slot freed")
	}
}

// TestGracefulDrain verifies the SIGTERM path: draining refuses new
// sessions, lets open ones finish, and Drain returns once the manager is
// idle.
func TestGracefulDrain(t *testing.T) {
	m := NewManager(Config{MaxActive: 4, Workers: 2})
	sess, err := m.Open(testSpec("inflight", 7, 4, 3))
	if err != nil {
		t.Fatal(err)
	}
	drained := make(chan error, 1)
	go func() { drained <- m.Drain(context.Background()) }()
	// Draining must become visible, then refuse new admissions.
	deadline := time.Now().Add(5 * time.Second)
	for !m.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("drain never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := m.Open(testSpec("late", 8, 1, 2)); !errors.Is(err, ErrDraining) {
		t.Fatalf("got %v, want ErrDraining", err)
	}
	if got := drainSession(t, m, sess); got != 4 {
		t.Fatalf("in-flight session delivered %d trials during drain, want 4", got)
	}
	select {
	case err := <-drained:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drain never completed")
	}
	m.Shutdown()
}

// TestDrainTimeout verifies Drain surfaces a deadline instead of hanging
// when a session never completes.
func TestDrainTimeout(t *testing.T) {
	m := NewManager(Config{MaxActive: 1, Workers: 1})
	sess, err := m.Open(testSpec("stuck", 9, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	// The session's slot stays held (never closed) so the drain must
	// time out.
	if err := m.Drain(ctx); err == nil {
		t.Fatal("drain returned nil with a session still open")
	}
	drainSession(t, m, sess)
	m.Shutdown()
}

// TestChaosSession runs a session under the fault profile and checks the
// loss actually bites while results stay deterministic.
func TestChaosSession(t *testing.T) {
	spec := testSpec("chaos", 5, 6, 4)
	spec.Target.Faults = &faults.Profile{Seed: 3, LossProb: 0.3, JitterMeanMs: 2}
	run := func() (lost int, verdicts []bool) {
		m := NewManager(Config{MaxActive: 2, Workers: 2})
		defer m.Shutdown()
		sess, err := m.Open(spec)
		if err != nil {
			t.Fatal(err)
		}
		defer m.CloseSession(sess)
		for {
			res, ok, err := sess.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				return lost, verdicts
			}
			for _, att := range res.Attackers {
				verdicts = append(verdicts, att.Verdict)
				for _, l := range att.Lost {
					if l {
						lost++
					}
				}
			}
		}
	}
	lost1, verdicts1 := run()
	lost2, verdicts2 := run()
	if lost1 == 0 {
		t.Fatal("30% loss profile dropped no probes")
	}
	if lost1 != lost2 {
		t.Fatalf("chaos runs diverge: %d vs %d lost", lost1, lost2)
	}
	for i := range verdicts1 {
		if verdicts1[i] != verdicts2[i] {
			t.Fatal("chaos verdicts not reproducible")
		}
	}
}

// TestNaiveBaselineRuns sanity-checks the benchmark baseline path.
func TestNaiveBaselineRuns(t *testing.T) {
	specs := []SessionSpec{testSpec("n1", 1, 1, 2), testSpec("n2", 2, 1, 2)}
	if err := RunSessionsNaive(specs); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerSteadyStateAllocs gates the scheduler's enqueue/take hot
// path: once the per-target group and the ready ring have warmed to
// their working capacity, scheduling allocates nothing. (Name matches
// the make alloc-gate regex.)
func TestSchedulerSteadyStateAllocs(t *testing.T) {
	s := &Scheduler{groups: make(map[TargetKey]*tgroup), batch: 8}
	s.cond = sync.NewCond(&s.mu)
	s.idle = sync.NewCond(&s.mu)
	sess := &Session{key: TargetKey{1}}
	buf := make([]unit, 0, s.batch)
	cycle := func() {
		for i := 0; i < 32; i++ {
			s.Enqueue(sess, i, int64(i))
		}
		s.mu.Lock()
		for s.readyLenLocked() > 0 {
			g := s.popReadyLocked()
			buf = s.takeLocked(g, buf)
		}
		s.mu.Unlock()
	}
	cycle() // warm group + ring capacity
	if allocs := testing.AllocsPerRun(100, cycle); allocs > 0 {
		t.Fatalf("steady-state enqueue path allocates %.1f per cycle, want 0", allocs)
	}
}
