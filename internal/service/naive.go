package service

import (
	"sync"

	"flowrecon/internal/core"
	"flowrecon/internal/experiment"
)

// RunSessionsNaive executes specs with the pre-daemon deployment model:
// one goroutine per session, each regenerating its own configuration and
// attacker roster from scratch — the way N independent flowrecon
// processes would. It is the benchmark baseline the batched scheduler is
// measured against; the service must beat it because the naive path
// pays one full model build and selector evolve per session even when
// every session attacks the same target.
//
// Each session resets the process-wide model cache and u-sum memo on
// entry to model per-process isolation. Concurrent sessions can still
// accidentally share a just-built entry between resets, which only makes
// the baseline FASTER — the comparison stays conservative.
func RunSessionsNaive(specs []SessionSpec) error {
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec SessionSpec) {
			defer wg.Done()
			errs[i] = runNaiveSession(spec)
		}(i, spec)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func runNaiveSession(spec SessionSpec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	core.DefaultModelCache.Reset()
	core.ResetUSumMemo()
	nc, err := spec.Target.BuildConfig()
	if err != nil {
		return err
	}
	roster, err := experiment.StandardAttackers(nc, spec.Target.Probes)
	if err != nil {
		return err
	}
	source, err := spec.Target.Trace.Source()
	if err != nil {
		return err
	}
	meas := spec.Target.Measurement
	if meas == (experiment.Measurement{}) {
		meas = experiment.DefaultMeasurement()
	}
	ropts := experiment.RunnerOptions{Source: source}
	if spec.Target.Faults != nil {
		ropts.Faults = *spec.Target.Faults
	}
	runner := experiment.NewTrialRunner(nc, roster, meas, ropts)
	for t, seed := range experiment.TrialSeeds(spec.Target.TrialSeed, spec.Target.Trials) {
		if _, err := runner.Run(t, seed); err != nil {
			return err
		}
	}
	return nil
}
