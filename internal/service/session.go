package service

import (
	"errors"
	"sync"

	"flowrecon/internal/experiment"
)

// SessionState is a session's lifecycle phase.
type SessionState int32

const (
	// StateQueued: admitted but waiting for an active slot.
	StateQueued SessionState = iota
	// StateRunning: trials executing on the scheduler.
	StateRunning
	// StateDone: every trial delivered (or the session failed).
	StateDone
)

// String implements fmt.Stringer.
func (s SessionState) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	default:
		return "done"
	}
}

// Session is one admitted attack session. Trials execute out of order on
// the scheduler's worker pool; a per-session completion frontier hands
// them to the consumer strictly in trial order, so the streamed output
// is a pure function of the spec — byte-identical at any worker count.
type Session struct {
	// ID is the server-assigned identifier. It travels in the response
	// header and the session list, never in the result stream.
	ID   string
	spec SessionSpec
	key  TargetKey

	model  *Model
	runner *experiment.TrialRunner
	names  []string

	mu       sync.Mutex
	cond     *sync.Cond
	outs     []experiment.TrialResult
	done     []bool
	frontier int
	failed   error
	state    SessionState
}

// newSession wires a session to its shared model and trial runner.
func newSession(id string, spec SessionSpec, key TargetKey, model *Model, runner *experiment.TrialRunner) *Session {
	sess := &Session{
		ID:     id,
		spec:   spec,
		key:    key,
		model:  model,
		runner: runner,
		names:  runner.Names(),
		outs:   make([]experiment.TrialResult, spec.Target.Trials),
		done:   make([]bool, spec.Target.Trials),
		state:  StateRunning,
	}
	sess.cond = sync.NewCond(&sess.mu)
	return sess
}

// Spec returns the session's request.
func (s *Session) Spec() SessionSpec { return s.spec }

// Names returns the attacker roster names.
func (s *Session) Names() []string { return s.names }

// Horizon returns the attack window in seconds.
func (s *Session) Horizon() float64 { return s.runner.Horizon() }

// errCanceled aborts a session whose client went away.
var errCanceled = errors.New("service: session canceled by client")

// Cancel aborts the session: pending trials complete as no-ops instead
// of burning scheduler time, and Next returns the cancellation error.
func (s *Session) Cancel() {
	s.mu.Lock()
	if s.failed == nil {
		s.failed = errCanceled
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// runUnit executes one trial on the calling scheduler worker and posts
// the result. Completion order is arbitrary; delivery order is not.
func (s *Session) runUnit(trial int, seed int64) {
	s.mu.Lock()
	aborted := s.failed != nil
	s.mu.Unlock()
	if aborted {
		s.mu.Lock()
		s.done[trial] = true
		s.cond.Broadcast()
		s.mu.Unlock()
		return
	}
	res, err := s.runner.Run(trial, seed)
	s.mu.Lock()
	if err != nil {
		if s.failed == nil {
			s.failed = err
		}
	} else {
		s.outs[trial] = res
	}
	s.done[trial] = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Next blocks until the frontier trial completes and returns it. ok is
// false once every trial has been delivered or the session failed; a
// failure surfaces as the error with ok false.
func (s *Session) Next() (experiment.TrialResult, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.failed != nil {
			s.state = StateDone
			return experiment.TrialResult{}, false, s.failed
		}
		if s.frontier >= len(s.done) {
			s.state = StateDone
			return experiment.TrialResult{}, false, nil
		}
		if s.done[s.frontier] {
			res := s.outs[s.frontier]
			s.outs[s.frontier] = experiment.TrialResult{} // release buffers early
			s.frontier++
			return res, true, nil
		}
		s.cond.Wait()
	}
}

// Progress reports delivered and total trial counts.
func (s *Session) Progress() (done, total int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.frontier, len(s.done)
}

// State returns the lifecycle phase.
func (s *Session) State() SessionState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}
