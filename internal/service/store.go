package service

import (
	"sync"

	"flowrecon/internal/core"
	"flowrecon/internal/experiment"
	"flowrecon/internal/telemetry"
)

// Model is one resident target configuration with everything sessions
// share: the generated NetworkConfig (whose selector holds the evolved
// §IV-B chains — the expensive part) and memoized attacker rosters per
// probe budget. Immutable after construction except for the roster memo,
// which is lock-protected; attackers are stateless across trials, so one
// roster serves every concurrent session.
type Model struct {
	Key TargetKey
	NC  *experiment.NetworkConfig

	mu      sync.Mutex
	rosters map[int][]core.Attacker
}

// Roster returns the standard attacker roster for a probe budget,
// building it once per (model, probes).
func (m *Model) Roster(probes int) ([]core.Attacker, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if r, ok := m.rosters[probes]; ok {
		return r, nil
	}
	r, err := experiment.StandardAttackers(m.NC, probes)
	if err != nil {
		return nil, err
	}
	if m.rosters == nil {
		m.rosters = make(map[int][]core.Attacker)
	}
	m.rosters[probes] = r
	return r, nil
}

// MemBytes estimates the model's resident footprint: the selector's two
// chains and evolved distributions. Compact models are shared through
// the core.DefaultModelCache, so two store entries over overlapping rule
// structures can double-count; the figure is a budget accounting unit,
// not exact RSS.
func (m *Model) MemBytes() int64 {
	return m.NC.Selector.MemBytes()
}

// Store is the shared model store: target key → built Model, with
// singleflight build deduplication (N concurrent sessions over one
// config trigger exactly one build), LRU eviction and an optional byte
// budget. It is the service-level analogue of core.ModelCache, one layer
// up: it caches the whole generated configuration including the evolved
// selector, which the core cache does not cover.
type Store struct {
	mu       sync.Mutex
	max      int
	maxBytes int64
	entries  map[TargetKey]*storeEntry
	head     *storeEntry // most recently used
	tail     *storeEntry // next to evict
	bytes    int64
	hits     uint64
	misses   uint64
	builds   uint64
	evicts   uint64

	hitCtr   *telemetry.Counter
	missCtr  *telemetry.Counter
	buildCtr *telemetry.Counter
	evictCtr *telemetry.Counter
	bytesG   *telemetry.Gauge
	modelsG  *telemetry.Gauge
}

type storeEntry struct {
	key        TargetKey
	prev, next *storeEntry
	resident   bool
	bytes      int64
	once       sync.Once
	m          *Model
	err        error
}

// DefaultStoreSize bounds a store constructed with max ≤ 0.
const DefaultStoreSize = 64

// NewStore returns a store holding at most max models (≤ 0 means
// DefaultStoreSize) within maxBytes (0 = unbounded).
func NewStore(max int, maxBytes int64) *Store {
	if max <= 0 {
		max = DefaultStoreSize
	}
	return &Store{max: max, maxBytes: maxBytes, entries: make(map[TargetKey]*storeEntry)}
}

// SetTelemetry registers the store's counters and gauges on reg.
func (s *Store) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	s.mu.Lock()
	s.hitCtr = reg.Counter("service_store_lookups", "result", "hit")
	s.missCtr = reg.Counter("service_store_lookups", "result", "miss")
	s.buildCtr = reg.Counter("service_store_builds_total")
	s.evictCtr = reg.Counter("service_store_evictions_total")
	s.bytesG = reg.Gauge("service_store_bytes")
	s.modelsG = reg.Gauge("service_store_models")
	s.mu.Unlock()
}

// StoreStats is a point-in-time snapshot.
type StoreStats struct {
	Models    int
	Bytes     int64
	MaxBytes  int64
	Hits      uint64
	Misses    uint64
	Builds    uint64
	Evictions uint64
}

// Stats snapshots the store counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		Models:    len(s.entries),
		Bytes:     s.bytes,
		MaxBytes:  s.maxBytes,
		Hits:      s.hits,
		Misses:    s.misses,
		Builds:    s.builds,
		Evictions: s.evicts,
	}
}

// Get returns the model for the spec's target, building it on first use.
// Concurrent Gets for one key share a single build; every caller gets
// the same *Model (or the build error, which is cached with the entry so
// a poisoned spec does not rebuild per request).
func (s *Store) Get(spec experiment.RecordingSpec) (*Model, error) {
	key, err := KeyForTarget(spec)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	e, ok := s.entries[key]
	if !ok {
		e = &storeEntry{key: key, resident: true}
		s.entries[key] = e
		s.misses++
		if s.missCtr != nil {
			s.missCtr.Inc()
		}
	} else {
		s.hits++
		if s.hitCtr != nil {
			s.hitCtr.Inc()
		}
	}
	s.moveToFrontLocked(e)
	s.evictOverLocked()
	s.publishLocked()
	s.mu.Unlock()

	built := false
	e.once.Do(func() {
		nc, err := spec.BuildConfig()
		if err != nil {
			e.err = err
			return
		}
		e.m = &Model{Key: key, NC: nc}
		built = true
	})
	if built {
		s.mu.Lock()
		s.builds++
		if s.buildCtr != nil {
			s.buildCtr.Inc()
		}
		if e.resident {
			e.bytes = e.m.MemBytes()
			s.bytes += e.bytes
			s.evictOverLocked()
		}
		s.publishLocked()
		s.mu.Unlock()
	}
	return e.m, e.err
}

func (s *Store) moveToFrontLocked(e *storeEntry) {
	if s.head == e {
		return
	}
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if s.tail == e {
		s.tail = e.prev
	}
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

// evictOverLocked drops LRU-tail entries until both bounds hold, always
// sparing the MRU head. Sessions already holding an evicted *Model keep
// using it; eviction only stops new sessions from finding it.
func (s *Store) evictOverLocked() {
	for s.tail != nil && s.tail != s.head &&
		(len(s.entries) > s.max || (s.maxBytes > 0 && s.bytes > s.maxBytes)) {
		e := s.tail
		s.tail = e.prev
		if s.tail != nil {
			s.tail.next = nil
		}
		e.prev, e.next = nil, nil
		e.resident = false
		s.bytes -= e.bytes
		delete(s.entries, e.key)
		s.evicts++
		if s.evictCtr != nil {
			s.evictCtr.Inc()
		}
	}
}

func (s *Store) publishLocked() {
	if s.bytesG != nil {
		s.bytesG.Set(s.bytes)
		s.modelsG.Set(int64(len(s.entries)))
	}
}
