package service

// The service benchmarks live here, NOT in the repo-root suite: the
// root bench binary's import graph must stay fixed across PRs so its
// micro-benchmarks (model build, probe selection) compare like with
// like — linking the daemon stack into that binary measurably shifts
// its code layout. `make bench` runs both packages and merges the
// output into one BENCH json.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// runBenchSessions opens n concurrent sessions against m — every one
// naming the same target config, so the model store builds once — and
// drains them all to completion.
func runBenchSessions(b *testing.B, m *Manager, n, trials, probes int) {
	b.Helper()
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess, err := m.Open(testSpec("bench", int64(100+i), trials, probes))
			if err != nil {
				errs <- err
				return
			}
			defer m.CloseSession(sess)
			for {
				_, ok, err := sess.Next()
				if err != nil {
					errs <- err
					return
				}
				if !ok {
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		b.Fatal(err)
	}
}

// BenchmarkServiceSessions measures flowrecond's session throughput:
// n concurrent sessions, all attacking one target config, opened and
// drained to completion per op. The batched variants run the real
// service path — shared model store (one build for the whole benchmark)
// plus the per-target batched scheduler; naive/sessions=64 is the
// pre-daemon deployment model (one goroutine per session, each building
// its own model from scratch), the baseline the ≥2× acceptance
// criterion is measured against.
func BenchmarkServiceSessions(b *testing.B) {
	const trials, probes = 2, 2
	for _, n := range []int{1, 64, 1000} {
		b.Run(fmt.Sprintf("batched/sessions=%d", n), func(b *testing.B) {
			m := NewManager(Config{MaxActive: n, Workers: 4, Batch: 8})
			defer m.Shutdown()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runBenchSessions(b, m, n, trials, probes)
			}
			b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "sessions/sec")
		})
	}
	b.Run("naive/sessions=64", func(b *testing.B) {
		specs := make([]SessionSpec, 64)
		for i := range specs {
			specs[i] = testSpec("bench", int64(100+i), trials, probes)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := RunSessionsNaive(specs); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(specs)*b.N)/b.Elapsed().Seconds(), "sessions/sec")
	})
}

// BenchmarkServiceProbeThroughput measures the scheduler's probe-level
// throughput: 16 concurrent sessions × 4 trials × 4 probes on one
// shared target, reporting probes/sec across every attacker in the
// roster and the model store's lookup hit rate (the amortization the
// multi-tenant design exists for — all but the very first session hit).
func BenchmarkServiceProbeThroughput(b *testing.B) {
	const sessions, trials, probes = 16, 4, 4
	m := NewManager(Config{MaxActive: sessions, Workers: 4, Batch: 8})
	defer m.Shutdown()
	var probeCount atomic.Int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for s := 0; s < sessions; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				sess, err := m.Open(testSpec("bench", int64(200+s), trials, probes))
				if err != nil {
					b.Error(err)
					return
				}
				defer m.CloseSession(sess)
				for {
					res, ok, err := sess.Next()
					if err != nil {
						b.Error(err)
						return
					}
					if !ok {
						return
					}
					for _, att := range res.Attackers {
						probeCount.Add(int64(len(att.Probes)))
					}
				}
			}(s)
		}
		wg.Wait()
	}
	b.ReportMetric(float64(probeCount.Load())/b.Elapsed().Seconds(), "probes/sec")
	st := m.Store().Stats()
	if lookups := st.Hits + st.Misses; lookups > 0 {
		b.ReportMetric(100*float64(st.Hits)/float64(lookups), "storehit%")
	}
}
