package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
)

// Routes mounts the session API on mux:
//
//	POST /v1/sessions — open a session; the body is a SessionSpec, the
//	                    response a JSONL stream of per-probe results.
//	                    429 + Retry-After when saturated, 503 draining.
//	GET  /v1/sessions — list known sessions as JSON.
//
// The result stream carries no server-assigned identifiers or wall-clock
// values: it is a pure function of the spec, byte-identical whatever the
// server's worker count or load (the session ID travels only in the
// X-Session-Id response header and the list endpoint).
func Routes(mux *http.ServeMux, m *Manager) {
	mux.HandleFunc("/v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPost:
			handleOpen(w, r, m)
		case http.MethodGet:
			handleList(w, m)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
}

// Stream line shapes. Field order (and Go's deterministic struct-order
// JSON encoding) is part of the byte-identity contract.
type acceptedLine struct {
	Type      string   `json:"type"` // "accepted"
	Name      string   `json:"name,omitempty"`
	Trials    int      `json:"trials"`
	Probes    int      `json:"probes"`
	Attackers []string `json:"attackers"`
	HorizonS  float64  `json:"horizonSec"`
}

type probeLine struct {
	Type     string `json:"type"` // "probe"
	Trial    int    `json:"trial"`
	Attacker string `json:"attacker"`
	I        int    `json:"i"`
	Flow     int    `json:"flow"`
	Outcome  string `json:"outcome"` // classified "hit" / "miss"
	Lost     bool   `json:"lost,omitempty"`
}

type verdictLine struct {
	Type     string `json:"type"` // "verdict"
	Trial    int    `json:"trial"`
	Attacker string `json:"attacker"`
	Verdict  string `json:"verdict"` // "present" / "absent"
	Truth    string `json:"truth"`
	Correct  bool   `json:"correct"`
}

type resultLine struct {
	Type     string             `json:"type"` // "result"
	Trials   int                `json:"trials"`
	Accuracy map[string]float64 `json:"accuracy"`
}

type errorLine struct {
	Type  string `json:"type"` // "error"
	Error string `json:"error"`
}

func handleOpen(w http.ResponseWriter, r *http.Request, m *Manager) {
	var spec SessionSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		http.Error(w, "bad session spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	sess, err := m.Open(spec)
	switch {
	case errors.Is(err, ErrSaturated):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return
	case errors.Is(err, ErrDraining):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	defer m.CloseSession(sess)
	// A dropped client cancels the session so its remaining trials stop
	// consuming scheduler rounds.
	stop := context.AfterFunc(r.Context(), sess.Cancel)
	defer stop()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Session-Id", sess.ID)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	names := sess.Names()
	_ = enc.Encode(acceptedLine{
		Type:      "accepted",
		Name:      spec.Name,
		Trials:    spec.Target.Trials,
		Probes:    spec.Target.Probes,
		Attackers: names,
		HorizonS:  sess.Horizon(),
	})
	if flusher != nil {
		flusher.Flush()
	}

	correct := make(map[string]int, len(names))
	trials := 0
	for {
		res, ok, err := sess.Next()
		if err != nil {
			_ = enc.Encode(errorLine{Type: "error", Error: err.Error()})
			return
		}
		if !ok {
			break
		}
		trials++
		m.MergeDetectors(res.Detectors)
		for _, att := range res.Attackers {
			for i, f := range att.Probes {
				pl := probeLine{
					Type:     "probe",
					Trial:    res.Trial,
					Attacker: att.Name,
					I:        i,
					Flow:     int(f),
					Outcome:  hitMiss(i < len(att.Outcomes) && att.Outcomes[i]),
				}
				if i < len(att.Lost) && att.Lost[i] {
					pl.Lost = true
				}
				_ = enc.Encode(pl)
			}
			ok := att.Verdict == res.Truth
			if ok {
				correct[att.Name]++
			}
			_ = enc.Encode(verdictLine{
				Type:     "verdict",
				Trial:    res.Trial,
				Attacker: att.Name,
				Verdict:  presence(att.Verdict),
				Truth:    presence(res.Truth),
				Correct:  ok,
			})
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	acc := make(map[string]float64, len(names))
	for _, n := range names {
		if trials > 0 {
			acc[n] = float64(correct[n]) / float64(trials)
		}
	}
	_ = enc.Encode(resultLine{Type: "result", Trials: trials, Accuracy: acc})
	if flusher != nil {
		flusher.Flush()
	}
}

func handleList(w http.ResponseWriter, m *Manager) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(m.Sessions())
}

func hitMiss(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

func presence(present bool) string {
	if present {
		return "present"
	}
	return "absent"
}
