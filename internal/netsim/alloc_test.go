package netsim

import (
	"testing"

	"flowrecon/internal/testutil"
)

// TestSimSchedulerZeroAlloc is the zero-alloc gate on the event loop: once
// the arena and heap are warm, a schedule→dispatch cycle must not touch
// the garbage collector at all. Every simulated packet pays this cycle
// per hop, so a single allocation here multiplies across the thousands of
// Poisson-workload trials behind each figure.
func TestSimSchedulerZeroAlloc(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	s := NewSim()
	n := 0
	fn := func() { n++ }
	// Warm the arena, free list, and heap storage.
	for i := 0; i < 256; i++ {
		s.After(float64(i)*1e-6, fn)
	}
	s.Run()
	avg := testing.AllocsPerRun(200, func() {
		at := s.Now()
		s.At(at+2e-6, fn)
		s.At(at+1e-6, fn)
		s.At(at+3e-6, fn)
		s.At(at+1e-6, fn)
		s.Run()
	})
	if avg != 0 {
		t.Fatalf("steady-state schedule/dispatch allocates %v allocs/run, want 0", avg)
	}
	if n == 0 {
		t.Fatal("no events ran")
	}
}

// TestSimNestedSchedulingZeroAlloc covers the dispatch-time reuse path: a
// callback that schedules follow-up events must find recycled slots
// rather than growing the arena.
func TestSimNestedSchedulingZeroAlloc(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	s := NewSim()
	depth := 0
	var chain func()
	chain = func() {
		if depth < 3 {
			depth++
			s.After(1e-6, chain)
		}
	}
	s.After(1e-6, chain)
	s.Run()
	avg := testing.AllocsPerRun(200, func() {
		depth = 0
		s.After(1e-6, chain)
		s.Run()
	})
	if avg != 0 {
		t.Fatalf("nested schedule/dispatch allocates %v allocs/run, want 0", avg)
	}
}

// TestSimPoolRecycles pins the pooling behaviour itself: after a drain,
// the arena must not have grown beyond the peak queue depth.
func TestSimPoolRecycles(t *testing.T) {
	s := NewSim()
	fn := func() {}
	for round := 0; round < 50; round++ {
		for i := 0; i < 16; i++ {
			s.After(float64(i)*1e-6, fn)
		}
		s.Run()
	}
	if got := len(s.nodes); got > 16 {
		t.Fatalf("arena grew to %d slots for a peak queue depth of 16 — pool not recycling", got)
	}
}
