package netsim

import (
	"math"
	"testing"

	"flowrecon/internal/controller"
	"flowrecon/internal/flows"
	"flowrecon/internal/rules"
	"flowrecon/internal/stats"
)

func TestSimOrdering(t *testing.T) {
	s := NewSim()
	var order []int
	s.At(2, func() { order = append(order, 2) })
	s.At(1, func() { order = append(order, 1) })
	s.At(1, func() { order = append(order, 10) }) // same time: insertion order
	s.After(0.5, func() { order = append(order, 0) })
	if n := s.Run(); n != 4 {
		t.Fatalf("events = %d", n)
	}
	want := []int{0, 1, 10, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
	if s.Now() != 2 {
		t.Fatalf("now = %v", s.Now())
	}
}

func TestSimNestedScheduling(t *testing.T) {
	s := NewSim()
	hits := 0
	s.At(1, func() {
		s.After(1, func() { hits++ })
		s.After(2, func() { hits++ })
	})
	s.Run()
	if hits != 2 || s.Now() != 3 {
		t.Fatalf("hits=%d now=%v", hits, s.Now())
	}
}

func TestSimRunUntil(t *testing.T) {
	s := NewSim()
	fired := 0
	s.At(1, func() { fired++ })
	s.At(5, func() { fired++ })
	if n := s.RunUntil(2); n != 1 || fired != 1 {
		t.Fatalf("n=%d fired=%d", n, fired)
	}
	if s.Now() != 2 || s.Pending() != 1 {
		t.Fatalf("now=%v pending=%d", s.Now(), s.Pending())
	}
	s.Run()
	if fired != 2 {
		t.Fatal("remaining event lost")
	}
}

func TestSimPastSchedulingClamps(t *testing.T) {
	s := NewSim()
	s.At(5, func() {
		s.At(1, func() {}) // in the past: must run at now, not rewind
	})
	s.Run()
	if s.Now() != 5 {
		t.Fatalf("clock rewound to %v", s.Now())
	}
}

func TestStanfordBackboneShape(t *testing.T) {
	topo := StanfordBackbone()
	if len(topo.Switches) != 16 {
		t.Fatalf("switches = %d, want 16 (§VI-A)", len(topo.Switches))
	}
	if len(topo.Links) != 1+2*14 {
		t.Fatalf("links = %d", len(topo.Links))
	}
}

// buildEvalNetwork assembles the §VI-A environment on the Stanford-like
// topology with a small policy.
func buildEvalNetwork(t *testing.T, ctrl ControllerModel) (*Network, EvaluationSetup, *flows.Universe) {
	t.Helper()
	universe := flows.ClientServerUniverse(flows.MakeIPv4(10, 0, 1, 0), 4)
	if ctrl.App == nil {
		rs, err := rules.NewSet([]rules.Rule{
			{Name: "r0", Cover: flows.SetOf(0, 1), Priority: 2, Timeout: 10},
			{Name: "r1", Cover: flows.SetOf(2), Priority: 1, Timeout: 10},
		})
		if err != nil {
			t.Fatal(err)
		}
		ctrl.App = controller.New(rs, controller.Options{})
	}
	sim := NewSim()
	n := NewNetwork(sim, universe, ctrl, DefaultLatencyModel(), stats.NewRNG(3))
	if err := StanfordBackbone().Build(n, 6, 0.1); err != nil {
		t.Fatal(err)
	}
	setup, err := AttachEvaluationHosts(n, flows.MakeIPv4(10, 0, 1, 0), 4, "yoza_rtr", "boza_rtr")
	if err != nil {
		t.Fatal(err)
	}
	return n, setup, universe
}

func (n *Network) sim2() *Sim { return n.sim }

func TestNetworkPath(t *testing.T) {
	n, _, _ := buildEvalNetwork(t, ControllerModel{})
	path, err := n.Path("yoza_rtr", "boza_rtr")
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 {
		t.Fatalf("path = %v (zone→core→zone expected)", path)
	}
	if path[0] != "yoza_rtr" || path[2] != "boza_rtr" {
		t.Fatalf("path = %v", path)
	}
	if _, err := n.Path("yoza_rtr", "nope"); err == nil {
		t.Fatal("path to unknown switch succeeded")
	}
	self, err := n.Path("yoza_rtr", "yoza_rtr")
	if err != nil || len(self) != 1 {
		t.Fatalf("self path = %v, %v", self, err)
	}
}

func TestNetworkValidation(t *testing.T) {
	n, _, _ := buildEvalNetwork(t, ControllerModel{})
	if err := n.AddSwitch("bbra_rtr", 6, 0.1); err == nil {
		t.Fatal("duplicate switch accepted")
	}
	if err := n.AddHost("h0", 1, "yoza_rtr"); err == nil {
		t.Fatal("duplicate host accepted")
	}
	if err := n.AddHost("hx", 1, "nope"); err == nil {
		t.Fatal("host on unknown switch accepted")
	}
	if err := n.Link("bbra_rtr", "nope"); err == nil {
		t.Fatal("link to unknown switch accepted")
	}
	if _, err := n.SendEcho("nope", "server", 0); err == nil {
		t.Fatal("echo from unknown host accepted")
	}
	if _, err := n.SendEcho("h0", "nope", 0); err == nil {
		t.Fatal("echo to unknown host accepted")
	}
}

func TestEchoMissTheHitRTTGap(t *testing.T) {
	n, setup, _ := buildEvalNetwork(t, ControllerModel{})
	first, err := n.SendEcho(setup.SourceHosts[0], setup.Destination, 0)
	if err != nil {
		t.Fatal(err)
	}
	second, err := n.SendEcho(setup.SourceHosts[0], setup.Destination, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	n.sim2().Run()
	if !first.Delivered || !second.Delivered {
		t.Fatal("echo not delivered")
	}
	if !first.Missed {
		t.Fatal("first echo should miss everywhere")
	}
	if second.Missed {
		t.Fatal("second echo should ride the installed rules")
	}
	if first.RTT < 1e-3 {
		t.Fatalf("miss RTT %v suspiciously small", first.RTT)
	}
	if second.RTT > 1e-3 {
		t.Fatalf("hit RTT %v too large (threshold 1ms, §VI-A)", second.RTT)
	}
	if n.PacketIns == 0 {
		t.Fatal("no controller consultations recorded")
	}
}

func TestEchoLatencyCalibration(t *testing.T) {
	// RTT distributions through the standard path must land near the
	// paper's measurements: hit ≈ 0.087 ms, miss ≈ 4.07 ms, separable at
	// 1 ms.
	n, setup, _ := buildEvalNetwork(t, ControllerModel{})
	var hitRTT, missRTT []float64
	at := 0.0
	for i := 0; i < 400; i++ {
		miss, err := n.SendEcho(setup.SourceHosts[0], setup.Destination, at)
		if err != nil {
			t.Fatal(err)
		}
		hit, err := n.SendEcho(setup.SourceHosts[0], setup.Destination, at+0.2)
		if err != nil {
			t.Fatal(err)
		}
		at += 10 // beyond the 1s max idle timeout: rules expire between rounds
		n.sim2().RunUntil(at)
		if !miss.Missed || hit.Missed {
			t.Fatalf("round %d: miss=%v hit=%v", i, miss.Missed, hit.Missed)
		}
		missRTT = append(missRTT, miss.RTT*1e3)
		hitRTT = append(hitRTT, hit.RTT*1e3)
	}
	h := stats.Summarize(hitRTT)
	m := stats.Summarize(missRTT)
	if math.Abs(h.Mean-0.087) > 0.05 {
		t.Errorf("hit RTT mean = %.4f ms, want ≈ 0.087", h.Mean)
	}
	if math.Abs(m.Mean-4.07) > 0.6 {
		t.Errorf("miss RTT mean = %.3f ms, want ≈ 4.07", m.Mean)
	}
	// The 1 ms threshold must separate the distributions essentially
	// perfectly, as in the paper.
	for _, v := range hitRTT {
		if v >= 1 {
			t.Fatalf("hit RTT %v ms crosses the 1 ms threshold", v)
		}
	}
	misclass := 0
	for _, v := range missRTT {
		if v < 1 {
			misclass++
		}
	}
	if frac := float64(misclass) / float64(len(missRTT)); frac > 0.05 {
		t.Errorf("%.1f%% of misses below 1 ms threshold", 100*frac)
	}
}

func TestCountermeasureAddingDelays(t *testing.T) {
	// §VII-B defense 1: delaying every packet hides the gap.
	n, setup, _ := buildEvalNetwork(t, ControllerModel{ExtraHitDelay: 2e-3})
	miss, err := n.SendEcho(setup.SourceHosts[0], setup.Destination, 0)
	if err != nil {
		t.Fatal(err)
	}
	hit, err := n.SendEcho(setup.SourceHosts[0], setup.Destination, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	n.sim2().Run()
	// Both now exceed the 1 ms threshold: the attacker's classifier fails.
	if hit.RTT < 1e-3 || miss.RTT < 1e-3 {
		t.Fatalf("delays not applied: hit %v miss %v", hit.RTT, miss.RTT)
	}
}

func TestCountermeasureProactive(t *testing.T) {
	// §VII-B defense 2: proactive installation removes misses entirely.
	n, setup, _ := buildEvalNetwork(t, proactiveModel(t))
	first, err := n.SendEcho(setup.SourceHosts[0], setup.Destination, 0)
	if err != nil {
		t.Fatal(err)
	}
	n.sim2().Run()
	if first.Missed || first.RTT > 1e-3 {
		t.Fatalf("proactive network still misses: %+v", first)
	}
	if n.PacketIns != 0 {
		t.Fatal("proactive network consulted the controller")
	}
}

func TestPerSwitchTablesIndependent(t *testing.T) {
	// A rule installed at the ingress switch must not make a different
	// ingress switch hit.
	n, setup, _ := buildEvalNetwork(t, ControllerModel{})
	if err := n.AddHost("far", flows.MakeIPv4(10, 0, 1, 0), "coza_rtr"); err != nil {
		t.Fatal(err)
	}
	if err := n.SetReactive("coza_rtr", true); err != nil {
		t.Fatal(err)
	}
	if err := n.SetReactive("nope", true); err == nil {
		t.Fatal("SetReactive on unknown switch accepted")
	}
	e1, err := n.SendEcho(setup.SourceHosts[0], setup.Destination, 0)
	if err != nil {
		t.Fatal(err)
	}
	n.sim2().Run()
	if !e1.Missed {
		t.Fatal("first echo should miss")
	}
	// Same flow identifier from a different ingress switch still misses
	// there (tables are per switch).
	e2, err := n.SendEcho("far", setup.Destination, n.sim2().Now()+0.05)
	if err != nil {
		t.Fatal(err)
	}
	n.sim2().Run()
	if !e2.Missed {
		t.Fatal("fresh ingress switch should miss")
	}
}

// proactiveModel builds a ControllerModel with proactive deployment over
// the default test policy.
func proactiveModel(t *testing.T) ControllerModel {
	t.Helper()
	rs, err := rules.NewSet([]rules.Rule{
		{Name: "r0", Cover: flows.SetOf(0, 1), Priority: 2, Timeout: 10},
		{Name: "r1", Cover: flows.SetOf(2), Priority: 1, Timeout: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	return NewControllerModel(rs, controller.Options{Proactive: true})
}
