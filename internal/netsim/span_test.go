package netsim

import (
	"testing"

	"flowrecon/internal/telemetry"
)

// TestEchoSpanTree: with spans enabled, one missing echo produces a causal
// tree echo → hop* → packet_in → controller.decision → flow_mod, all in
// virtual time under one correlation ID, and a subsequent hit produces no
// packet-in chain.
func TestEchoSpanTree(t *testing.T) {
	n, setup, _ := buildEvalNetwork(t, ControllerModel{})
	reg := telemetry.NewRegistry(0)
	reg.EnableSpans(0)
	n.SetTelemetry(reg)

	miss, err := n.SendEcho(setup.SourceHosts[0], setup.Destination, 0)
	if err != nil {
		t.Fatal(err)
	}
	hit, err := n.SendEcho(setup.SourceHosts[0], setup.Destination, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	n.sim2().Run()
	if !miss.Missed || hit.Missed {
		t.Fatalf("unexpected outcomes: miss=%v hit=%v", miss.Missed, hit.Missed)
	}
	if miss.Trace == 0 || hit.Trace == 0 || miss.Trace == hit.Trace {
		t.Fatalf("correlation IDs wrong: %d, %d", miss.Trace, hit.Trace)
	}

	spans := reg.Spans().Spans()
	byTrace := func(trace int64) []telemetry.Span {
		var out []telemetry.Span
		for _, s := range spans {
			if s.Trace == trace {
				out = append(out, s)
			}
		}
		return out
	}
	names := func(ss []telemetry.Span) map[string]int {
		m := map[string]int{}
		for _, s := range ss {
			m[s.Name]++
		}
		return m
	}

	missNames := names(byTrace(miss.Trace))
	if missNames["echo"] != 1 {
		t.Fatalf("miss trace: %v", missNames)
	}
	if missNames["packet_in"] == 0 || missNames["controller.decision"] == 0 || missNames["flow_mod"] == 0 {
		t.Fatalf("miss trace lacks the packet-in chain: %v", missNames)
	}
	if missNames["hop"] == 0 {
		t.Fatalf("miss trace has no hop spans: %v", missNames)
	}
	hitNames := names(byTrace(hit.Trace))
	if hitNames["packet_in"] != 0 || hitNames["flow_mod"] != 0 {
		t.Fatalf("hit trace consulted the controller: %v", hitNames)
	}

	// The forest reconstructs with the echo as the root and the chain
	// nested: hop → packet_in → controller.decision → flow_mod.
	forest := telemetry.BuildSpanForest(byTrace(miss.Trace))
	if len(forest) != 1 || forest[0].Span.Name != "echo" {
		t.Fatalf("miss trace forest: %d roots", len(forest))
	}
	var chain []string
	var walk func(node *telemetry.SpanNode, depth int)
	walk = func(node *telemetry.SpanNode, depth int) {
		if node.Span.Name == "packet_in" || node.Span.Name == "controller.decision" || node.Span.Name == "flow_mod" {
			chain = append(chain, node.Span.Name)
		}
		for _, c := range node.Children {
			walk(c, depth+1)
		}
	}
	walk(forest[0], 0)
	want := []string{"packet_in", "controller.decision", "flow_mod"}
	if len(chain) < 3 {
		t.Fatalf("packet-in chain = %v", chain)
	}
	for i, w := range want {
		if chain[i] != w {
			t.Fatalf("chain[%d] = %q, want %q (full: %v)", i, chain[i], w, chain)
		}
	}
	// Span times are virtual: within the simulated horizon, ordered, and
	// the echo span covers the full RTT.
	root := forest[0].Span
	if root.Duration() <= 0 || root.End < miss.SentAt+miss.RTT-1e-9 {
		t.Fatalf("echo span [%v,%v] does not cover RTT %v", root.Start, root.End, miss.RTT)
	}
}

// TestEchoSpansDisabled: without EnableSpans the echo path records
// nothing and the trace ID stays zero.
func TestEchoSpansDisabled(t *testing.T) {
	n, setup, _ := buildEvalNetwork(t, ControllerModel{})
	reg := telemetry.NewRegistry(0)
	n.SetTelemetry(reg)
	res, err := n.SendEcho(setup.SourceHosts[0], setup.Destination, 0)
	if err != nil {
		t.Fatal(err)
	}
	n.sim2().Run()
	if res.Trace != 0 {
		t.Fatalf("trace id %d without span recording", res.Trace)
	}
	if got := reg.Spans(); got != nil {
		t.Fatalf("registry grew a span recorder: %v", got)
	}
}
