package netsim

import (
	"fmt"
	"math"

	"flowrecon/internal/flows"
	"flowrecon/internal/workload"
)

// This file drives the paper's attack through the simulated network: the
// background hosts replay a traffic trace as echo exchanges, and the
// attacker injects forged-source probes and classifies their RTTs with
// the 1 ms threshold — exactly the §VI-A procedure, but in virtual time.

// ReplayTrace schedules every arrival of trace as an echo from its source
// host to the destination, offset seconds into the simulation. Flow IDs
// index setup.SourceHosts.
func ReplayTrace(n *Network, setup EvaluationSetup, trace *workload.Trace, offset float64) error {
	for _, a := range trace.Arrivals() {
		if int(a.Flow) >= len(setup.SourceHosts) {
			return fmt.Errorf("netsim: trace flow %d outside the %d evaluation hosts", a.Flow, len(setup.SourceHosts))
		}
		if _, err := n.SendEcho(setup.SourceHosts[a.Flow], setup.Destination, offset+a.Time); err != nil {
			return err
		}
	}
	return nil
}

// ProbeResult is the attacker's view of one probe.
type ProbeResult struct {
	// RTTms is the observed round-trip time in milliseconds (NaN when
	// the probe was lost).
	RTTms float64
	// Hit is the attacker's classification: RTT below the threshold
	// means a covering rule was cached (§III-A).
	Hit bool
	// Lost reports that no reply arrived before the probe deadline — the
	// probe or its reply was dropped by an injected fault. A lost probe
	// carries no timing observation: threshold attackers treat it as a
	// miss, model attackers as an explicit no-observation step.
	Lost bool
}

// Prober issues forged-source probes from the attacker host. The paper's
// attacker spoofs a source host's address and listens for the reply on
// the shared switch port; in the simulator this is equivalent to sending
// from that host, since only the ingress flow table sees the source.
type Prober struct {
	net         *Network
	setup       EvaluationSetup
	ThresholdMs float64
}

// NewProber returns a prober with the paper's 1 ms threshold.
func NewProber(n *Network, setup EvaluationSetup) *Prober {
	return &Prober{net: n, setup: setup, ThresholdMs: 1.0}
}

// Probe forges flow f at virtual time at, runs the simulation until the
// reply returns, and classifies the delay. The simulation clock advances.
func (p *Prober) Probe(f flows.ID, at float64) (ProbeResult, error) {
	if int(f) >= len(p.setup.SourceHosts) {
		return ProbeResult{}, fmt.Errorf("netsim: probe flow %d outside the evaluation hosts", f)
	}
	echo, err := p.net.SendEcho(p.setup.SourceHosts[f], p.setup.Destination, at)
	if err != nil {
		return ProbeResult{}, err
	}
	// Run until the reply lands (generously past the worst-case miss).
	deadline := at + 1.0
	for !echo.Delivered && p.net.sim.Now() < deadline {
		if p.net.sim.Pending() == 0 {
			break
		}
		p.net.sim.RunUntil(math.Min(deadline, p.net.sim.Now()+0.01))
	}
	if !echo.Delivered {
		if p.net.FaultsEnabled() {
			// Under fault injection an undelivered probe is an expected
			// outcome, not a wedged simulation: classify it as lost and
			// let the attacker make its no-observation update.
			return ProbeResult{RTTms: math.NaN(), Lost: true}, nil
		}
		return ProbeResult{}, fmt.Errorf("netsim: probe reply not delivered by %v", deadline)
	}
	rtt := echo.RTT * 1e3
	return ProbeResult{RTTms: rtt, Hit: rtt < p.ThresholdMs}, nil
}
