package netsim

import (
	"fmt"
	"math"
	"sort"

	"flowrecon/internal/controller"
	"flowrecon/internal/detect"
	"flowrecon/internal/faults"
	"flowrecon/internal/flows"
	"flowrecon/internal/flowtable"
	"flowrecon/internal/rules"
	"flowrecon/internal/stats"
	"flowrecon/internal/telemetry"
)

// LatencyModel holds the timing parameters of the simulated fabric. The
// defaults are calibrated so that echo round trips through the standard
// topology reproduce the paper's measurements: hit ≈ N(0.087 ms, 0.021 ms)
// and miss ≈ N(4.070 ms, 1.806 ms) (§VI-A).
type LatencyModel struct {
	// HostLink is the host↔switch propagation delay (seconds, one way).
	HostLink float64
	// SwitchLink is the switch↔switch propagation delay.
	SwitchLink float64
	// HopMean/HopStd describe per-switch forwarding time on a table hit.
	HopMean, HopStd float64
	// SetupMean/SetupStd describe the extra delay of a table miss: the
	// controller round trip, rule computation, and table insertion
	// (t_setup in §III-A).
	SetupMean, SetupStd float64
	// SetupFloor is the minimum setup delay — a controller round trip
	// has a physical lower bound, which is what keeps the paper's 1 ms
	// threshold clean despite the 1.8 ms standard deviation.
	SetupFloor float64
}

// DefaultLatencyModel returns the calibrated parameters.
func DefaultLatencyModel() LatencyModel {
	return LatencyModel{
		HostLink:   5e-6,
		SwitchLink: 10e-6,
		HopMean:    6.5e-6,
		HopStd:     3e-6,
		SetupMean:  3.983e-3,
		SetupStd:   1.8e-3,
		SetupFloor: 1.9e-3,
	}
}

// sample draws a non-negative Gaussian delay.
func sample(rng *stats.RNG, mean, std float64) float64 {
	v := rng.Normal(mean, std)
	if v < mean/10 {
		v = mean / 10 // delays cannot be ≤ 0; clamp far-left tail
	}
	return v
}

// Host is an end host attached to a switch.
type Host struct {
	Name   string
	IP     flows.IPv4
	Switch string
}

// SwitchNode is one SDN switch: a flow table plus its position in the
// topology.
type SwitchNode struct {
	Name  string
	Table *flowtable.Table
	// Reactive marks the switch as running the evaluation's reactive
	// policy. Non-reactive switches forward with pre-installed rules and
	// never consult the controller — the paper's setup, where the
	// wildcard policy lives on the one ingress switch the hosts share
	// (§VI-A) and all other switches carry proactive defaults.
	Reactive bool
}

// ControllerModel is the simulated control plane: the shared reactive
// controller application plus the switch-side delay countermeasure.
type ControllerModel struct {
	// App decides reactive installs, proactive deployment, and carries
	// the controller-side countermeasures (see internal/controller).
	App *controller.Reactive
	// ExtraHitDelay delays every packet, hit or miss, hiding the side
	// channel (countermeasure 1, "adding delays").
	ExtraHitDelay float64
}

// NewControllerModel wraps a policy in the default reactive application —
// the §VI-A setup.
func NewControllerModel(policy *rules.Set, opts controller.Options) ControllerModel {
	return ControllerModel{App: controller.New(policy, opts)}
}

// Network is a simulated SDN fabric.
type Network struct {
	sim      *Sim
	rng      *stats.RNG
	universe *flows.Universe
	ctrl     ControllerModel
	lat      LatencyModel

	switches map[string]*SwitchNode
	hosts    map[string]*Host
	// adj maps a switch to its neighbors with the one-way link delay in
	// seconds; 0 means the latency model's default SwitchLink, so
	// topologies without per-link annotations behave exactly as before.
	adj map[string]map[string]float64
	// PacketIns counts controller consultations (misses).
	PacketIns int

	reg *telemetry.Registry
	tm  netMetrics       // resolved instruments (zero = disabled)
	flt *faults.Stream   // fault injection (nil = clean fabric)
	det *detect.Detector // streaming anomaly detector (nil = off)
}

// SetDetector attaches a streaming timing-anomaly detector to the
// fabric's controller path: every reactive flow-table lookup of a known
// flow becomes one detector observation (in virtual time, with the
// hit/miss outcome), and delivered echo RTTs are attributed to the
// flow's timing sketch. A nil detector detaches — the lookup path then
// pays exactly one nil check, preserving the fast-substrate numbers.
func (n *Network) SetDetector(d *detect.Detector) { n.det = d }

// Detector returns the attached detector (nil when detached).
func (n *Network) Detector() *detect.Detector { return n.det }

// SetFaults attaches a fault-injection stream to the fabric: packets are
// dropped on the link into each switch with LossProb, per-hop forwarding
// picks up jitter/reorder latency, replies can be lost too, and the
// controller path suffers stalls and slowdown. A disabled profile
// restores the clean fabric. All injections run in virtual time and draw
// only from the profile's own seeded streams, so the fabric's RNG
// sequence — and therefore every fault-free simulation — is untouched.
func (n *Network) SetFaults(p faults.Profile) {
	n.flt = p.Stream(0)
	n.flt.SetTelemetry(n.reg, "netsim")
}

// FaultsEnabled reports whether fault injection is active.
func (n *Network) FaultsEnabled() bool { return n.flt != nil }

// netMetrics are the fabric's telemetry instruments.
type netMetrics struct {
	packetIns *telemetry.Counter
	hits      *telemetry.Counter
	misses    *telemetry.Counter
	rtt       *telemetry.Histogram // delivered echo RTT, seconds
	tracer    *telemetry.Tracer
	spans     *telemetry.SpanRecorder // causal spans in virtual time
}

// SetTelemetry attaches the fabric (and every switch's flow table, keyed
// by node name) to a registry. Switches added later are wired on
// AddSwitch. A nil registry disables telemetry.
func (n *Network) SetTelemetry(reg *telemetry.Registry) {
	n.reg = reg
	n.tm = netMetrics{
		packetIns: reg.Counter("netsim_packet_ins_total"),
		hits:      reg.Counter("netsim_lookups_total", "result", "hit"),
		misses:    reg.Counter("netsim_lookups_total", "result", "miss"),
		rtt:       reg.Histogram("netsim_echo_rtt_seconds", nil),
		tracer:    reg.Tracer(),
		spans:     reg.Spans(),
	}
	for name, sw := range n.switches {
		sw.Table.SetTelemetry(reg, name)
	}
	n.flt.SetTelemetry(reg, "netsim") // no-op when faults are off
	n.flt.SetEventLog(reg.Events())   // fault wide events (virtual time is single-threaded)
}

// trace emits one per-node virtual-time event.
func (n *Network) trace(kind, node string, flow flows.ID, value float64) {
	if n.tm.tracer == nil {
		return
	}
	e := telemetry.Ev(kind)
	e.Node = node
	e.Flow = int(flow)
	e.Virtual = n.sim.Now()
	e.Value = value
	n.tm.tracer.Emit(e)
}

// NewNetwork builds an empty fabric. stepSec scales rule timeouts exactly
// as in flowtable.New.
func NewNetwork(sim *Sim, universe *flows.Universe, ctrl ControllerModel, lat LatencyModel, rng *stats.RNG) *Network {
	return &Network{
		sim:      sim,
		rng:      rng,
		universe: universe,
		ctrl:     ctrl,
		lat:      lat,
		switches: make(map[string]*SwitchNode),
		hosts:    make(map[string]*Host),
		adj:      make(map[string]map[string]float64),
	}
}

// AddSwitch registers a switch with the given flow-table capacity.
func (n *Network) AddSwitch(name string, capacity int, stepSec float64) error {
	if _, ok := n.switches[name]; ok {
		return fmt.Errorf("netsim: duplicate switch %q", name)
	}
	if _, err := n.ctrl.App.ProactivePlan(capacity); err != nil {
		return err // proactive deployment would not fit (§VII-B2)
	}
	tbl, err := flowtable.New(n.ctrl.App.Policy(), capacity, stepSec)
	if err != nil {
		return err
	}
	if n.reg != nil {
		tbl.SetTelemetry(n.reg, name)
	}
	n.switches[name] = &SwitchNode{Name: name, Table: tbl}
	n.adj[name] = make(map[string]float64)
	return nil
}

// Link connects two switches bidirectionally at the latency model's
// default switch↔switch delay.
func (n *Network) Link(a, b string) error { return n.LinkDelay(a, b, 0) }

// LinkDelay connects two switches bidirectionally with an explicit
// one-way propagation delay in seconds; 0 selects the model default.
func (n *Network) LinkDelay(a, b string, delaySec float64) error {
	if _, ok := n.switches[a]; !ok {
		return fmt.Errorf("netsim: unknown switch %q", a)
	}
	if _, ok := n.switches[b]; !ok {
		return fmt.Errorf("netsim: unknown switch %q", b)
	}
	if delaySec < 0 {
		return fmt.Errorf("netsim: negative link delay %v between %q and %q", delaySec, a, b)
	}
	n.adj[a][b] = delaySec
	n.adj[b][a] = delaySec
	return nil
}

// linkDelay returns the one-way delay of the a↔b link, falling back to
// the model default for unannotated links.
func (n *Network) linkDelay(a, b string) float64 {
	if d := n.adj[a][b]; d > 0 {
		return d
	}
	return n.lat.SwitchLink
}

// AddHost attaches a host to a switch.
func (n *Network) AddHost(name string, ip flows.IPv4, sw string) error {
	if _, ok := n.switches[sw]; !ok {
		return fmt.Errorf("netsim: unknown switch %q", sw)
	}
	if _, ok := n.hosts[name]; ok {
		return fmt.Errorf("netsim: duplicate host %q", name)
	}
	n.hosts[name] = &Host{Name: name, IP: ip, Switch: sw}
	return nil
}

// Switch returns a switch by name (nil if absent).
func (n *Network) Switch(name string) *SwitchNode { return n.switches[name] }

// SetReactive marks a switch as running the reactive policy.
func (n *Network) SetReactive(name string, reactive bool) error {
	sw, ok := n.switches[name]
	if !ok {
		return fmt.Errorf("netsim: unknown switch %q", name)
	}
	sw.Reactive = reactive
	return nil
}

// Path returns the switch names on a shortest path between two switches,
// inclusive, via breadth-first search.
func (n *Network) Path(from, to string) ([]string, error) {
	if _, ok := n.switches[from]; !ok {
		return nil, fmt.Errorf("netsim: unknown switch %q", from)
	}
	if from == to {
		return []string{from}, nil
	}
	prev := map[string]string{from: from}
	queue := []string{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		neighbors := make([]string, 0, len(n.adj[cur]))
		for next := range n.adj[cur] {
			neighbors = append(neighbors, next)
		}
		// Deterministic exploration: map iteration order would otherwise
		// pick different equal-length routes run to run (and even packet
		// to packet), which breaks both reproducibility and the per-path
		// rule-install locality the attack relies on.
		sort.Strings(neighbors)
		for _, next := range neighbors {
			if _, seen := prev[next]; seen {
				continue
			}
			prev[next] = cur
			if next == to {
				var path []string
				for at := to; at != from; at = prev[at] {
					path = append([]string{at}, path...)
				}
				return append([]string{from}, path...), nil
			}
			queue = append(queue, next)
		}
	}
	return nil, fmt.Errorf("netsim: no path %s → %s", from, to)
}

// EchoResult is the outcome of one simulated echo exchange.
type EchoResult struct {
	// SentAt is the virtual send time.
	SentAt float64
	// RTT is the echo round-trip time in seconds; NaN until delivery.
	RTT float64
	// Missed reports whether any switch on the forward path consulted
	// the controller.
	Missed bool
	// Delivered is set when the reply arrives.
	Delivered bool
	// Trace is the causal-span correlation ID of this exchange (0 when
	// span recording is off): every hop, packet-in, controller decision
	// and flow-mod of the echo shares it.
	Trace int64
}

// SendEcho schedules an ICMP-style echo from srcHost to dstHost at the
// given virtual time and returns a result that fills in once the
// simulation delivers the reply. The forward path performs reactive flow
// lookups at every switch; the reply rides the paper's pre-installed
// echo-reply rule and therefore never misses.
func (n *Network) SendEcho(srcHost, dstHost string, at float64) (*EchoResult, error) {
	src, ok := n.hosts[srcHost]
	if !ok {
		return nil, fmt.Errorf("netsim: unknown host %q", srcHost)
	}
	dst, ok := n.hosts[dstHost]
	if !ok {
		return nil, fmt.Errorf("netsim: unknown host %q", dstHost)
	}
	path, err := n.Path(src.Switch, dst.Switch)
	if err != nil {
		return nil, err
	}
	tuple := flows.FiveTuple{Src: src.IP, Dst: dst.IP, Proto: flows.ProtoICMP}
	fid, known := n.universe.Lookup(tuple)

	res := &EchoResult{SentAt: at, RTT: math.NaN()}
	var rootCtx telemetry.SpanContext
	if n.tm.spans != nil {
		res.Trace = n.tm.spans.NewTrace()
		var root telemetry.SpanID
		root, rootCtx = n.tm.spans.StartCtx(n.tm.spans.Context(res.Trace, 0), "echo", src.Switch, at)
		n.tm.spans.Annotate(root, int(fid), -1, srcHost+"→"+dstHost)
	}
	n.sim.At(at+n.lat.HostLink, func() {
		n.trace("probe.sent", src.Switch, fid, 0)
		n.forward(res, path, 0, fid, known, at, rootCtx)
	})
	return res, nil
}

// forward processes the packet at path[idx] and passes it on. sc is the
// echo root's SpanContext — the same carrier the TCP path marshals onto
// the wire — so every hop (and, on a miss, the packet-in →
// controller-decision → flow-mod chain) hangs beneath the root in
// virtual time.
func (n *Network) forward(res *EchoResult, path []string, idx int, fid flows.ID, known bool, sentAt float64, sc telemetry.SpanContext) {
	sw := n.switches[path[idx]]
	now := n.sim.Now()
	delay := sample(n.rng, n.lat.HopMean, n.lat.HopStd) + n.ctrl.ExtraHitDelay
	hop, hopCtx := n.tm.spans.StartCtx(sc, "hop", sw.Name, now)
	n.tm.spans.Annotate(hop, int(fid), -1, "")

	if n.flt != nil {
		// Loss on the link into this switch: the packet vanishes before
		// the lookup, so a dropped probe leaves no flow-table side effect
		// at the switch it never reached.
		if n.flt.Drop() {
			n.trace("fault.drop", sw.Name, fid, 0)
			n.tm.spans.Annotate(hop, -1, -1, "dropped")
			n.tm.spans.End(hop, now)
			n.tm.spans.End(sc.Parent, now)
			return
		}
		// Delivered packets pick up jitter (and, when selected, the
		// reorder penalty that lets later traffic overtake this packet).
		delay += (n.flt.JitterMs() + n.flt.ReorderMs()) / 1e3
	}

	if sw.Reactive && !n.ctrl.App.Options().Proactive {
		hit := false
		if known {
			_, hit = sw.Table.Lookup(fid, now)
			// The defender watches the reactive lookup point: one
			// observation per lookup, in virtual time, RTT unknown here
			// (attributed later at echo delivery).
			n.det.Observe(int(fid), now, math.NaN(), hit)
		}
		if hit {
			n.tm.hits.Inc()
			n.trace("probe.hit", sw.Name, fid, 0)
			n.tm.spans.Annotate(hop, -1, -1, "hit")
		}
		if !hit {
			// Table miss: consult the controller (steps b–e of Figure 1).
			res.Missed = true
			n.PacketIns++
			n.tm.misses.Inc()
			n.tm.packetIns.Inc()
			n.trace("probe.miss", sw.Name, fid, 0)
			pin, pinCtx := n.tm.spans.StartCtx(hopCtx, "packet_in", sw.Name, now)
			n.tm.spans.Annotate(pin, int(fid), -1, "")
			if n.det != nil && n.tm.spans != nil {
				// Tag the forensic span with the source's anomaly score
				// once it is in flagging territory.
				if asc := n.det.Score(int(fid)); asc >= 1 {
					n.tm.spans.Annotate(pin, -1, -1, fmt.Sprintf("anomaly=%.2f", asc))
				}
			}
			setup := sample(n.rng, n.lat.SetupMean, n.lat.SetupStd)
			if setup < n.lat.SetupFloor {
				setup = n.lat.SetupFloor
			}
			dec, decCtx := n.tm.spans.StartCtx(pinCtx, "controller.decision", "controller", now)
			var decision controller.Decision
			if known {
				decision = n.ctrl.App.OnPacketIn(fid)
			} else {
				// Unregistered flows reach the controller too but match
				// no policy rule; only the processing delay applies.
				decision = controller.Decision{Delay: n.ctrl.App.Options().ProcessingDelay}
			}
			decDelay := decision.Delay.Seconds()
			if n.flt != nil {
				// Controller faults: occasional stalls plus a uniform
				// slowdown factor on the decision latency.
				setup += n.flt.StallMs() / 1e3
				decDelay = n.flt.SlowMs(decDelay*1e3) / 1e3
			}
			decEnd := now + setup + decDelay
			delay += setup + decDelay
			n.tm.spans.Annotate(dec, int(fid), -1, "")
			if decision.Install {
				sw.Table.Install(decision.RuleID, now)
				n.tm.spans.Annotate(dec, -1, decision.RuleID, "")
				fm, _ := n.tm.spans.StartCtx(decCtx, "flow_mod", sw.Name, decEnd)
				n.tm.spans.Annotate(fm, int(fid), decision.RuleID, "install")
				n.tm.spans.End(fm, decEnd)
			}
			n.tm.spans.End(dec, decEnd)
			n.tm.spans.End(pin, decEnd)
		}
	}
	n.tm.spans.End(hop, now+delay)

	if idx+1 < len(path) {
		n.sim.After(delay+n.linkDelay(path[idx], path[idx+1]), func() {
			n.forward(res, path, idx+1, fid, known, sentAt, sc)
		})
		return
	}
	// Last switch → destination host → reply. The reply traverses the
	// same path under the pre-installed reply rule: per-hop forwarding
	// only.
	replyDelay := delay + n.lat.HostLink + n.lat.HostLink // to dst host and back into the fabric
	for i := 0; i < len(path); i++ {
		replyDelay += sample(n.rng, n.lat.HopMean, n.lat.HopStd) + n.ctrl.ExtraHitDelay
		if i > 0 {
			replyDelay += n.linkDelay(path[i-1], path[i])
		}
	}
	replyDelay += n.lat.HostLink // back to the source host
	last := path[len(path)-1]
	if n.flt != nil {
		if n.flt.Drop() {
			// The reply is lost on the way back: the echo was processed
			// (rules installed and all) but the sender observes nothing.
			n.trace("fault.drop", last, fid, 0)
			n.tm.spans.Annotate(sc.Parent, -1, -1, "reply dropped")
			n.tm.spans.End(sc.Parent, n.sim.Now())
			return
		}
		replyDelay += n.flt.JitterMs() / 1e3
	}
	n.sim.After(replyDelay, func() {
		res.RTT = n.sim.Now() - res.SentAt
		res.Delivered = true
		if known {
			n.det.ObserveRTT(int(fid), res.RTT*1e3)
		}
		n.tm.rtt.Observe(res.RTT)
		n.trace("echo.delivered", last, fid, res.RTT)
		n.tm.spans.End(sc.Parent, n.sim.Now())
	})
}
