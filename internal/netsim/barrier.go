package netsim

// Conservative-lookahead synchronization for the fleet engine.
//
// The classic problem of parallel discrete-event simulation is that a
// shard cannot run ahead of its neighbors: an event it has not seen yet
// might be on its way. The conservative solution exploits the physics of
// the fabric: a cross-shard packet must traverse a cross-shard link, and
// the slowest thing a link can do is deliver instantly — so a message
// generated at time τ arrives no earlier than τ + L, where L is the
// minimum delay over all links whose endpoints live in different shards.
//
// The coordinator therefore repeats three steps:
//
//  1. horizon h = the earliest queued event across all shards;
//  2. every shard drains its own heap up to the window end h + L in
//     parallel — any cross-shard message generated inside the window
//     arrives at ≥ h + L, i.e. outside it, so no shard can miss one;
//  3. barrier: outboxes are merged into the destination heaps.
//
// Merging after the barrier is insertion-order-independent because the
// heaps order by the strict total key (time, packet ID); that, plus
// per-packet RNG/fault streams, is what keeps the run byte-identical at
// any shard and worker count.

import (
	"math"
	"sync/atomic"
)

// fleetWindow is one drain command to the worker pool.
type fleetWindow struct {
	wend  float64 // exclusive window end
	bound float64 // inclusive RunUntil bound
}

// fleetPool is a persistent worker pool. Workers claim shards through an
// atomic cursor, so a pool smaller than the shard count load-balances
// and a single window costs two channel hops per worker, not per shard.
type fleetPool struct {
	f    *Fleet
	cmd  chan fleetWindow
	done chan int64
	next atomic.Int32
}

func newFleetPool(f *Fleet) *fleetPool {
	p := &fleetPool{
		f:    f,
		cmd:  make(chan fleetWindow),
		done: make(chan int64),
	}
	for i := 0; i < f.workers; i++ {
		go p.work()
	}
	return p
}

func (p *fleetPool) work() {
	for w := range p.cmd {
		var n int64
		for {
			s := int(p.next.Add(1)) - 1
			if s >= len(p.f.shards) {
				break
			}
			n += p.f.drainShard(p.f.shards[s], w.wend, w.bound)
		}
		p.done <- n
	}
}

// Close stops the worker pool. The fleet remains queryable; further
// drains fall back to the sequential path.
func (f *Fleet) Close() {
	if f.pool != nil {
		close(f.pool.cmd)
		f.pool = nil
	}
	f.workers = 1
}

// drainShard processes sh's events with at < wend and at ≤ bound, in
// (time, packet ID) order. Only this call's goroutine touches the shard;
// cross-shard output goes to outboxes.
func (f *Fleet) drainShard(sh *fleetShard, wend, bound float64) int64 {
	var n int64
	for len(sh.heap) > 0 {
		top := sh.heap[0]
		if top.at >= wend || top.at > bound {
			break
		}
		sh.pop()
		f.process(sh, top)
		sh.lastAt = top.at
		n++
	}
	sh.events += n
	return n
}

// drainWindow runs one window across all shards and returns the event
// count. With one worker (or one shard) it drains sequentially on the
// caller's goroutine — zero synchronization, which is what keeps the
// single-shard fleet within noise of the serial scheduler; the
// multi-worker path costs two channel hops per worker per window.
func (f *Fleet) drainWindow(wend, bound float64) int64 {
	if f.workers <= 1 || len(f.shards) == 1 {
		var n int64
		for _, sh := range f.shards {
			n += f.drainShard(sh, wend, bound)
		}
		return n
	}
	if f.pool == nil {
		f.pool = newFleetPool(f)
	}
	f.pool.next.Store(0)
	for i := 0; i < f.workers; i++ {
		f.pool.cmd <- fleetWindow{wend: wend, bound: bound}
	}
	var n int64
	for i := 0; i < f.workers; i++ {
		n += <-f.pool.done
	}
	return n
}

// merge empties every outbox into its destination heap. Single-threaded,
// after the barrier: the workers are quiescent, and heap order makes the
// insertion sequence irrelevant.
func (f *Fleet) merge() {
	for _, src := range f.shards {
		for d, box := range src.out {
			if len(box) == 0 {
				continue
			}
			dst := f.shards[d]
			for _, m := range box {
				dst.push(m)
			}
			src.out[d] = box[:0]
		}
	}
}

// horizon returns the earliest queued event time across shards (+Inf
// when idle).
func (f *Fleet) horizon() float64 {
	h := math.Inf(1)
	for _, sh := range f.shards {
		if len(sh.heap) > 0 && sh.heap[0].at < h {
			h = sh.heap[0].at
		}
	}
	return h
}

// runWindows advances the fleet to bound (inclusive) and returns the
// number of events processed.
func (f *Fleet) runWindows(bound float64) int {
	var total int64
	windows := 0
	for {
		h := f.horizon()
		if h > bound || math.IsInf(h, 1) {
			break
		}
		wend := h + f.lookahead
		total += f.drainWindow(wend, bound)
		f.merge()
		windows++
		t := math.Min(wend, bound)
		if math.IsInf(t, 1) {
			// Unbounded window (single-shard fleet, Run with no bound):
			// the heaps drained completely, so the frontier is the newest
			// event actually processed, keeping Now() finite and useful
			// for scheduling follow-on injections.
			t = f.now
			for _, sh := range f.shards {
				if sh.lastAt > t {
					t = sh.lastAt
				}
			}
		}
		if t > f.now {
			f.now = t
		}
	}
	f.observe(total, windows)
	return int(total)
}

// RunUntil processes events up to and including virtual time t, leaving
// later events queued, and advances the frontier to t.
func (f *Fleet) RunUntil(t float64) int {
	n := f.runWindows(t)
	if f.now < t {
		f.now = t
	}
	return n
}

// Run drains every queued event and returns the count. The frontier ends
// at the last window boundary.
func (f *Fleet) Run() int {
	return f.runWindows(math.Inf(1))
}

// observe flushes per-shard stat deltas into the registry in one batch
// per drain call — the same batching discipline as Sim.observe, extended
// to the per-shard counters and the per-shard occupancy gauges
// (thousands of tables ticking per window must not each hit an atomic).
func (f *Fleet) observe(events int64, windows int) {
	if f.reg == nil || (events == 0 && windows == 0) {
		return
	}
	var pending int64
	for _, sh := range f.shards {
		f.tm.hits.Add(sh.hits)
		f.tm.misses.Add(sh.misses)
		f.tm.packetIns.Add(sh.packetIns)
		f.tm.drops.Add(sh.drops)
		f.tm.crossings.Add(sh.crossings)
		sh.hits, sh.misses, sh.packetIns, sh.drops, sh.crossings, sh.delivered = 0, 0, 0, 0, 0, 0
		pending += int64(len(sh.heap))
		if sh.occ != nil {
			var occ int64
			for _, sw := range sh.switches {
				if t := f.tables[sw]; t != nil {
					occ += int64(t.Occupancy())
				}
			}
			sh.occ.Set(occ)
		}
	}
	f.tm.events.Add(events)
	f.tm.windows.Add(int64(windows))
	f.tm.pending.Set(pending)
	f.tm.clock.Set(int64(f.now * 1e6))
}

// observeRTT records one delivered echo RTT. The histogram's buckets are
// atomic and addition is commutative, so worker goroutines may call this
// concurrently without breaking shard-count invariance; it fires once
// per delivered packet, not per event.
func (f *Fleet) observeRTT(rtt float64) {
	if f.tm.rtt != nil {
		f.tm.rtt.Observe(rtt)
	}
}
