package netsim

import (
	"testing"

	"flowrecon/internal/controller"
	"flowrecon/internal/flows"
	"flowrecon/internal/flowtable"
	"flowrecon/internal/rules"
	"flowrecon/internal/stats"
	"flowrecon/internal/workload"
)

func attackPolicy(t *testing.T) *rules.Set {
	t.Helper()
	rs, err := rules.NewSet([]rules.Rule{
		{Name: "r0", Cover: flows.SetOf(0, 1), Priority: 3, Timeout: 10},
		{Name: "r1", Cover: flows.SetOf(1, 2), Priority: 2, Timeout: 6},
		{Name: "r2", Cover: flows.SetOf(3), Priority: 1, Timeout: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func TestReplayTraceAndProbe(t *testing.T) {
	rs := attackPolicy(t)
	universe := flows.ClientServerUniverse(flows.MakeIPv4(10, 0, 1, 0), 4)
	sim := NewSim()
	n := NewNetwork(sim, universe, NewControllerModel(rs, controller.Options{}), DefaultLatencyModel(), stats.NewRNG(3))
	if err := StanfordBackbone().Build(n, 3, 0.1); err != nil {
		t.Fatal(err)
	}
	setup, err := AttachEvaluationHosts(n, flows.MakeIPv4(10, 0, 1, 0), 4, "yoza_rtr", "boza_rtr")
	if err != nil {
		t.Fatal(err)
	}
	trace, err := workload.GeneratePoisson(workload.PoissonConfig{
		Rates:    []float64{0.8, 0.5, 0.3, 0.6},
		Duration: 5,
	}, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := ReplayTrace(n, setup, trace, 0); err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(5)

	prober := NewProber(n, setup)
	res, err := prober.Probe(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.RTTms <= 0 {
		t.Fatalf("probe RTT = %v", res.RTTms)
	}

	// Ground truth from the ingress switch table itself.
	ingress := n.Switch(setup.Ingress).Table
	_, want := rs.MatchIn(0, func(j int) bool { return ingress.Contains(j, 5) })
	// The probe itself installs on a miss, so check BEFORE interpreting —
	// we captured `want` before the probe ran the lookup... the probe has
	// already run; but Contains at time 5 with idle refresh from the
	// probe keeps hit-consistency: a hit implies it was cached.
	if res.Hit && !want {
		// A hit probe can only refresh an existing rule, never create
		// one, so a hit with no covering rule cached is a bug.
		t.Fatalf("probe hit but no covering rule cached")
	}
}

func TestReplayTraceValidatesFlows(t *testing.T) {
	rs := attackPolicy(t)
	universe := flows.ClientServerUniverse(flows.MakeIPv4(10, 0, 1, 0), 4)
	sim := NewSim()
	n := NewNetwork(sim, universe, NewControllerModel(rs, controller.Options{}), DefaultLatencyModel(), stats.NewRNG(3))
	if err := StanfordBackbone().Build(n, 3, 0.1); err != nil {
		t.Fatal(err)
	}
	setup, err := AttachEvaluationHosts(n, flows.MakeIPv4(10, 0, 1, 0), 4, "yoza_rtr", "boza_rtr")
	if err != nil {
		t.Fatal(err)
	}
	bad := &workload.Trace{}
	_ = bad
	tr, err := workload.GeneratePoisson(workload.PoissonConfig{Rates: []float64{0, 0, 0, 0, 0, 0, 0, 0, 0, 5}, Duration: 1}, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := ReplayTrace(n, setup, tr, 0); err == nil {
		t.Fatal("out-of-range trace flow accepted")
	}
	prober := NewProber(n, setup)
	if _, err := prober.Probe(99, 0); err == nil {
		t.Fatal("out-of-range probe accepted")
	}
}

// TestNetsimAgreesWithFlowtableReplay cross-validates the two trial
// substrates: the probe outcome through the full network simulation must
// agree with the bare flow-table replay (the experiment package's fast
// path) in the overwhelming majority of windows. Disagreements can only
// come from the µs-scale forwarding offsets the simulator adds.
func TestNetsimAgreesWithFlowtableReplay(t *testing.T) {
	rs := attackPolicy(t)
	universe := flows.ClientServerUniverse(flows.MakeIPv4(10, 0, 1, 0), 4)
	rates := []float64{0.8, 0.5, 0.3, 0.6}
	const (
		window = 5.0
		trials = 60
		stepS  = 0.1
		cap    = 3
	)
	agree := 0
	rng := stats.NewRNG(99)
	for i := 0; i < trials; i++ {
		trace, err := workload.GeneratePoisson(workload.PoissonConfig{Rates: rates, Duration: window}, rng.Fork())
		if err != nil {
			t.Fatal(err)
		}
		// Path A: full network simulation.
		sim := NewSim()
		n := NewNetwork(sim, universe, NewControllerModel(rs, controller.Options{}), DefaultLatencyModel(), stats.NewRNG(3))
		if err := StanfordBackbone().Build(n, cap, stepS); err != nil {
			t.Fatal(err)
		}
		setup, err := AttachEvaluationHosts(n, flows.MakeIPv4(10, 0, 1, 0), 4, "yoza_rtr", "boza_rtr")
		if err != nil {
			t.Fatal(err)
		}
		if err := ReplayTrace(n, setup, trace, 0); err != nil {
			t.Fatal(err)
		}
		sim.RunUntil(window)
		res, err := NewProber(n, setup).Probe(0, window)
		if err != nil {
			t.Fatal(err)
		}

		// Path B: bare flow-table replay (the experiment fast path).
		tbl, err := flowtable.New(rs, cap, stepS)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range trace.Arrivals() {
			if _, hit := tbl.Lookup(a.Flow, a.Time); !hit {
				if j, covered := rs.HighestCovering(a.Flow); covered {
					tbl.Install(j, a.Time)
				}
			}
		}
		_, wantHit := tbl.Lookup(0, window)
		if res.Hit == wantHit {
			agree++
		}
	}
	if frac := float64(agree) / trials; frac < 0.9 {
		t.Fatalf("netsim and flowtable replay agree on only %.0f%% of trials", 100*frac)
	}
}
