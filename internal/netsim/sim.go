// Package netsim is the repository's Mininet substitute: a deterministic
// virtual-time network simulator with hosts, SDN switches, delayed links,
// a reactive controller, and ICMP-style echo traffic. It reproduces the
// observable that the paper's attack depends on — the round-trip-time gap
// between a flow whose rule is cached and one that needs a controller
// round trip — with latency distributions calibrated to the paper's
// measurements (§VI-A).
package netsim

import (
	"container/heap"

	"flowrecon/internal/telemetry"
)

// event is one scheduled simulator callback.
type event struct {
	at  float64
	seq int64
	run func()
}

// eventHeap orders events by time, breaking ties by insertion order so
// runs are fully deterministic.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Sim is a discrete-event simulator with a virtual clock in seconds.
type Sim struct {
	now  float64
	seq  int64
	heap eventHeap

	events  *telemetry.Counter // processed events
	pending *telemetry.Gauge   // queued events
	clock   *telemetry.Gauge   // virtual time, microseconds
}

// NewSim returns a simulator at time zero.
func NewSim() *Sim { return &Sim{} }

// SetTelemetry attaches the simulator's event counter, queue-depth gauge,
// and virtual-clock gauge (microseconds) to a registry. A nil registry
// disables telemetry.
func (s *Sim) SetTelemetry(reg *telemetry.Registry) {
	s.events = reg.Counter("netsim_events_total")
	s.pending = reg.Gauge("netsim_pending_events")
	s.clock = reg.Gauge("netsim_virtual_time_us")
}

// observe records post-event simulator state.
func (s *Sim) observe() {
	s.events.Inc()
	s.pending.Set(int64(len(s.heap)))
	s.clock.Set(int64(s.now * 1e6))
}

// Now returns the current virtual time in seconds.
func (s *Sim) Now() float64 { return s.now }

// At schedules run at the absolute virtual time at (clamped to now).
func (s *Sim) At(at float64, run func()) {
	if at < s.now {
		at = s.now
	}
	s.seq++
	heap.Push(&s.heap, &event{at: at, seq: s.seq, run: run})
}

// After schedules run delay seconds from now.
func (s *Sim) After(delay float64, run func()) {
	if delay < 0 {
		delay = 0
	}
	s.At(s.now+delay, run)
}

// Run drains the event queue, advancing the clock, and returns the number
// of events processed.
func (s *Sim) Run() int {
	n := 0
	for len(s.heap) > 0 {
		e := heap.Pop(&s.heap).(*event)
		s.now = e.at
		e.run()
		s.observe()
		n++
	}
	return n
}

// RunUntil processes events up to and including virtual time t, leaving
// later events queued, and advances the clock to t.
func (s *Sim) RunUntil(t float64) int {
	n := 0
	for len(s.heap) > 0 && s.heap[0].at <= t {
		e := heap.Pop(&s.heap).(*event)
		s.now = e.at
		e.run()
		s.observe()
		n++
	}
	if s.now < t {
		s.now = t
	}
	return n
}

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return len(s.heap) }
