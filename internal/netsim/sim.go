// Package netsim is the repository's Mininet substitute: a deterministic
// virtual-time network simulator with hosts, SDN switches, delayed links,
// a reactive controller, and ICMP-style echo traffic. It reproduces the
// observable that the paper's attack depends on — the round-trip-time gap
// between a flow whose rule is cached and one that needs a controller
// round trip — with latency distributions calibrated to the paper's
// measurements (§VI-A).
package netsim

import (
	"flowrecon/internal/telemetry"
)

// event is one scheduled simulator callback. Events live in a pooled
// arena (Sim.nodes) and are addressed by index; free slots are chained
// through next, so steady-state schedule/dispatch performs zero heap
// allocations — the boxed container/heap of earlier revisions paid one
// allocation plus an interface conversion per event.
type event struct {
	at   float64
	seq  int64
	run  func()
	next int32 // free-list link while the slot is unused
}

// Sim is a discrete-event simulator with a virtual clock in seconds.
//
// The ready queue is a typed 4-ary index min-heap: heap holds arena
// indices ordered by (time, insertion sequence), so sift operations move
// 4-byte indices instead of event structs and the shallower tree halves
// the comparison depth of a binary heap on the deep queues the fabric
// builds up under load.
type Sim struct {
	now   float64
	seq   int64
	nodes []event // pooled arena
	free  int32   // head of the free-slot chain, -1 when empty
	heap  []int32 // 4-ary min-heap of arena indices

	events  *telemetry.Counter // processed events
	pending *telemetry.Gauge   // queued events
	clock   *telemetry.Gauge   // virtual time, microseconds
}

// NewSim returns a simulator at time zero.
func NewSim() *Sim { return &Sim{free: -1} }

// SetTelemetry attaches the simulator's event counter, queue-depth gauge,
// and virtual-clock gauge (microseconds) to a registry. A nil registry
// disables telemetry.
func (s *Sim) SetTelemetry(reg *telemetry.Registry) {
	s.events = reg.Counter("netsim_events_total")
	s.pending = reg.Gauge("netsim_pending_events")
	s.clock = reg.Gauge("netsim_virtual_time_us")
}

// observe records simulator state after a drain loop. Telemetry is
// batched per Run/RunUntil call rather than per event: the counters are
// atomic, so per-event updates were three synchronized writes on the
// hottest loop in the fabric.
func (s *Sim) observe(n int) {
	if n == 0 {
		return
	}
	s.events.Add(int64(n))
	s.pending.Set(int64(len(s.heap)))
	s.clock.Set(int64(s.now * 1e6))
}

// Now returns the current virtual time in seconds.
func (s *Sim) Now() float64 { return s.now }

// less orders queued events by (time, insertion sequence) so runs are
// fully deterministic.
func (s *Sim) less(a, b int32) bool {
	ea, eb := &s.nodes[a], &s.nodes[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	return ea.seq < eb.seq
}

// alloc takes a slot from the free list, growing the arena only when the
// pool is dry.
func (s *Sim) alloc() int32 {
	if s.free >= 0 {
		i := s.free
		s.free = s.nodes[i].next
		return i
	}
	s.nodes = append(s.nodes, event{})
	return int32(len(s.nodes) - 1)
}

// release returns a slot to the pool, dropping the closure reference so
// captured state does not outlive the event.
func (s *Sim) release(i int32) {
	s.nodes[i].run = nil
	s.nodes[i].next = s.free
	s.free = i
}

// push inserts an arena index into the 4-ary heap.
func (s *Sim) push(i int32) {
	s.heap = append(s.heap, i)
	c := len(s.heap) - 1
	for c > 0 {
		p := (c - 1) / 4
		if !s.less(s.heap[c], s.heap[p]) {
			break
		}
		s.heap[c], s.heap[p] = s.heap[p], s.heap[c]
		c = p
	}
}

// pop removes and returns the heap minimum.
func (s *Sim) pop() int32 {
	top := s.heap[0]
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.heap = s.heap[:last]
	p := 0
	for {
		first := 4*p + 1
		if first >= last {
			break
		}
		min := first
		end := first + 4
		if end > last {
			end = last
		}
		for c := first + 1; c < end; c++ {
			if s.less(s.heap[c], s.heap[min]) {
				min = c
			}
		}
		if !s.less(s.heap[min], s.heap[p]) {
			break
		}
		s.heap[p], s.heap[min] = s.heap[min], s.heap[p]
		p = min
	}
	return top
}

// At schedules run at the absolute virtual time at (clamped to now).
func (s *Sim) At(at float64, run func()) {
	if at < s.now {
		at = s.now
	}
	s.seq++
	i := s.alloc()
	s.nodes[i] = event{at: at, seq: s.seq, run: run, next: -1}
	s.push(i)
}

// After schedules run delay seconds from now.
func (s *Sim) After(delay float64, run func()) {
	if delay < 0 {
		delay = 0
	}
	s.At(s.now+delay, run)
}

// dispatch pops and runs the head event. The slot is recycled before the
// callback executes so nested scheduling can reuse it immediately.
func (s *Sim) dispatch() {
	i := s.pop()
	e := &s.nodes[i]
	s.now = e.at
	run := e.run
	s.release(i)
	run()
}

// Run drains the event queue, advancing the clock, and returns the number
// of events processed.
func (s *Sim) Run() int {
	n := 0
	for len(s.heap) > 0 {
		s.dispatch()
		n++
	}
	s.observe(n)
	return n
}

// RunUntil processes events up to and including virtual time t, leaving
// later events queued, and advances the clock to t.
func (s *Sim) RunUntil(t float64) int {
	n := 0
	for len(s.heap) > 0 && s.nodes[s.heap[0]].at <= t {
		s.dispatch()
		n++
	}
	if s.now < t {
		s.now = t
	}
	s.observe(n)
	return n
}

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return len(s.heap) }

// NextAt returns the virtual time of the earliest queued event, or
// (0, false) on an empty queue. The sharded fleet engine peeks the same
// way to compute its global horizon; the serial scheduler exposes it for
// symmetry and for window-stepping drivers that want to jump straight to
// the next event instead of polling in fixed increments.
func (s *Sim) NextAt() (float64, bool) {
	if len(s.heap) == 0 {
		return 0, false
	}
	return s.nodes[s.heap[0]].at, true
}
