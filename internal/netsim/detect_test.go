package netsim

import (
	"testing"
	"time"

	"flowrecon/internal/controller"
	"flowrecon/internal/detect"
	"flowrecon/internal/flows"
	"flowrecon/internal/stats"
	"flowrecon/internal/workload"
)

// detectFabric builds the 4-flow attack fabric with a detector attached.
func detectFabric(t *testing.T, cfg detect.Config) (*Network, EvaluationSetup, *detect.Detector) {
	t.Helper()
	rs := attackPolicy(t)
	universe := flows.ClientServerUniverse(flows.MakeIPv4(10, 0, 1, 0), 4)
	sim := NewSim()
	n := NewNetwork(sim, universe, NewControllerModel(rs, controller.Options{ProcessingDelay: time.Millisecond}), DefaultLatencyModel(), stats.NewRNG(3))
	if err := StanfordBackbone().Build(n, 3, 0.1); err != nil {
		t.Fatal(err)
	}
	setup, err := AttachEvaluationHosts(n, flows.MakeIPv4(10, 0, 1, 0), 4, "yoza_rtr", "boza_rtr")
	if err != nil {
		t.Fatal(err)
	}
	d := detect.New(cfg)
	n.SetDetector(d)
	return n, setup, d
}

// TestNetworkDetectorFlagsRegularProbing drives the §VI attack loop —
// benign Poisson traffic with a regularly paced prober on top — through
// the virtual-time fabric and requires the attached detector to flag the
// probed flow while leaving the benign flows unflagged.
func TestNetworkDetectorFlagsRegularProbing(t *testing.T) {
	cfg := detect.DefaultConfig()
	cfg.WindowSec = 10
	cfg.MinObs = 6
	cfg.MinGaps = 6
	cfg.Baseline.Rates = []float64{0.8, 0.5, 0.3, 0.6}
	n, setup, d := detectFabric(t, cfg)

	trace, err := workload.GeneratePoisson(workload.PoissonConfig{
		Rates:    []float64{0.8, 0.5, 0.3, 0.6},
		Duration: 20,
	}, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := ReplayTrace(n, setup, trace, 0); err != nil {
		t.Fatal(err)
	}
	n.sim.RunUntil(20)

	// Eviction probing: flow 3 every 0.4 s — pathologically regular next
	// to the Poisson background.
	prober := NewProber(n, setup)
	at := 20.0
	probes := 0
	for i := 0; i < 60; i++ {
		if _, err := prober.Probe(3, at); err != nil {
			t.Fatal(err)
		}
		probes++
		at += 0.4
		if _, ok := d.IsFlagged(3); ok {
			break
		}
	}
	v, ok := d.IsFlagged(3)
	if !ok {
		t.Fatalf("regular probing of flow 3 not flagged after %d probes; top=%+v", probes, d.TopOffenders(4))
	}
	if v.Reason != detect.ReasonRegularity && v.Reason != detect.ReasonRate {
		t.Fatalf("flag reason = %q, want rate or regularity", v.Reason)
	}
	if probes > 60 {
		t.Fatalf("detection took %d probes, want well under the 200-probe budget", probes)
	}
	for _, benign := range []int{0, 1, 2} {
		if _, ok := d.IsFlagged(benign); ok {
			t.Fatalf("benign flow %d flagged: %+v", benign, d.TopOffenders(4))
		}
	}
	// The delivery hook attributed real timing: the flagged flow's RTT
	// sketch must hold millisecond-scale probes.
	var row detect.SourceSummary
	for _, r := range d.TopOffenders(4) {
		if r.Source == 3 {
			row = r
		}
	}
	if row.RTTp50Ms <= 0 {
		t.Fatalf("flagged source has no RTT observations: %+v", row)
	}
}

// TestNetworkDetectorDoesNotPerturbSimulation pins the defender's
// read-only contract: attaching a detector must not change the fabric's
// random sequence, packet-in count, or probe outcomes.
func TestNetworkDetectorDoesNotPerturbSimulation(t *testing.T) {
	run := func(withDetector bool) (int, []float64) {
		rs := attackPolicy(t)
		universe := flows.ClientServerUniverse(flows.MakeIPv4(10, 0, 1, 0), 4)
		sim := NewSim()
		n := NewNetwork(sim, universe, NewControllerModel(rs, controller.Options{}), DefaultLatencyModel(), stats.NewRNG(11))
		if err := StanfordBackbone().Build(n, 3, 0.1); err != nil {
			t.Fatal(err)
		}
		setup, err := AttachEvaluationHosts(n, flows.MakeIPv4(10, 0, 1, 0), 4, "yoza_rtr", "boza_rtr")
		if err != nil {
			t.Fatal(err)
		}
		if withDetector {
			n.SetDetector(detect.New(detect.DefaultConfig()))
		}
		trace, err := workload.GeneratePoisson(workload.PoissonConfig{
			Rates:    []float64{0.8, 0.5, 0.3, 0.6},
			Duration: 10,
		}, stats.NewRNG(5))
		if err != nil {
			t.Fatal(err)
		}
		if err := ReplayTrace(n, setup, trace, 0); err != nil {
			t.Fatal(err)
		}
		sim.RunUntil(10)
		prober := NewProber(n, setup)
		var rtts []float64
		at := 10.0
		for i := 0; i < 10; i++ {
			res, err := prober.Probe(flows.ID(i%4), at)
			if err != nil {
				t.Fatal(err)
			}
			rtts = append(rtts, res.RTTms)
			at += 0.2
		}
		return n.PacketIns, rtts
	}
	pinsOff, rttsOff := run(false)
	pinsOn, rttsOn := run(true)
	if pinsOff != pinsOn {
		t.Fatalf("PacketIns differ: %d without detector, %d with", pinsOff, pinsOn)
	}
	for i := range rttsOff {
		if rttsOff[i] != rttsOn[i] {
			t.Fatalf("probe %d RTT differs: %v vs %v", i, rttsOff[i], rttsOn[i])
		}
	}
}

// The >2%-on-BenchmarkSimScheduler gate of the ISSUE lives in `make
// check` (sched-gate: benchjson -compare -bench SimScheduler
// -max-regress 2 over the committed same-host BENCH_PR5/PR7 recordings):
// the scheduler never calls the detector, so the honest check is that
// the recorded scheduler numbers did not move across the PR, not a
// microbenchmark of a nil check against a ~15 ns loop body.
