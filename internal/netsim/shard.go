package netsim

// The fleet engine: a sharded rewrite of the virtual-time fabric for
// 1k–10k switch topologies. The serial Network schedules one closure per
// hop on a single global heap; at fleet scale the closure captures, the
// per-hop BFS routing, and the one-heap bottleneck dominate. The fleet
// engine instead compiles the fabric into dense arrays (interned routes,
// integer switch IDs, per-link delays) and partitions the switches
// across shards, each with its own pooled event heap. Shards execute in
// parallel inside conservative-lookahead windows (see barrier.go) and
// exchange cross-shard packets through outboxes merged at window
// barriers.
//
// # Determinism at any shard count
//
// The engine promises byte-identical results at 1, 2, or 8 shards —
// recordings, table stats, detector verdicts, everything. The execution
// ORDER of events does differ across shard counts (that is the point of
// sharding), so the promise holds because no shared state is
// order-dependent:
//
//   - Every packet carries its own delay RNG (stats.SmallRNG seeded from
//     (fleet seed, packet ID)) and its own fault stream
//     (faults.PacketStream) — the PR 3 trick of pre-derived per-unit
//     seeds, pushed down from per-trial to per-packet granularity.
//   - Per-shard heaps order events by (time, packet ID). A packet has at
//     most one in-flight event, so the key is a strict total order and
//     heap contents are insertion-order-independent.
//   - Flow tables are per-switch and a switch belongs to exactly one
//     shard; switch-local sequences are fixed by the heap order.
//   - The shared controller's decision (rules.Set.HighestCovering) is a
//     pure function; its stats are commutative counters.
//   - The detector observes a source only at its ingress switch (hop 0),
//     so each source's observation stream is emitted by one shard in
//     virtual-time order; cross-source interleaving varies but per-source
//     state never does.
import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strconv"

	"flowrecon/internal/controller"
	"flowrecon/internal/detect"
	"flowrecon/internal/faults"
	"flowrecon/internal/flows"
	"flowrecon/internal/flowtable"
	"flowrecon/internal/stats"
	"flowrecon/internal/telemetry"
)

// FleetConfig assembles a sharded fabric.
type FleetConfig struct {
	// Topo is the switch fabric; generated topologies (FatTree,
	// LeafSpine) carry per-link delays and edge annotations.
	Topo Topology
	// Capacity and StepSec size the flow tables of reactive switches,
	// exactly as in Network.AddSwitch.
	Capacity int
	StepSec  float64
	// Ctrl is the shared control plane.
	Ctrl ControllerModel
	// Lat is the timing model (DefaultLatencyModel when zero).
	Lat LatencyModel
	// Universe resolves host 5-tuples to flow IDs.
	Universe *flows.Universe
	// Shards is the partition width (default 1; clamped to the switch
	// count). Results are byte-identical at any value.
	Shards int
	// Workers bounds the worker pool (default min(Shards, GOMAXPROCS)).
	// Workers=1 drains shards sequentially on the caller's goroutine
	// with no synchronization at all.
	Workers int
	// Seed roots the per-packet delay RNG streams.
	Seed int64
	// Faults is the fault profile; every packet derives its own stream
	// from it, keeping injection schedules shard-count-invariant.
	Faults faults.Profile
	// Detector observes reactive ingress lookups (nil = off).
	Detector *detect.Detector
	// Registry receives batched fleet telemetry (nil = off).
	Registry *telemetry.Registry
}

// replyHop marks a reply-delivery event; forward hops are ≥ 0.
const replyHop = -1

// fleetMsg is one scheduled packet event: 16 bytes against the serial
// engine's closure-bearing arena slot. Heap order is (at, pkt) — a
// strict total order because a packet has at most one in-flight event.
type fleetMsg struct {
	at  float64
	pkt int32
	hop int16
}

// fleetPacket is the full per-packet state, held in one flat slice
// indexed by packet ID (the injection order, a deterministic program
// order). The embedded RNG and fault stream are what make processing
// order-free: every draw the packet will ever make is a pure function of
// its ID.
type fleetPacket struct {
	rng       stats.SmallRNG
	flt       faults.PacketStream
	fid       flows.ID
	route     int32
	sentAt    float64
	rtt       float64
	known     bool
	missed    bool
	delivered bool
}

// fleetShard is one shard: a pooled 4-ary event heap over its switch
// partition, per-destination outboxes, and local stat deltas flushed in
// batch (per-event atomic updates from many shards are pure contention).
type fleetShard struct {
	id   int
	heap []fleetMsg   // 4-ary min-heap by (at, pkt); backing array is the pool
	out  [][]fleetMsg // outbox per destination shard, merged at barriers

	switches []int32 // owned reactive switches, for occupancy batching

	// Stat deltas since the last flush, zeroed by flushTelemetry.
	events, hits, misses, packetIns, drops, delivered, crossings int64

	// lastAt is the timestamp of the newest event this shard has
	// processed — the frontier fallback when a window has no finite
	// boundary (single-shard fleets have infinite lookahead).
	lastAt float64

	occ *telemetry.Gauge // netsim_shard_occupancy{shard=...}
}

func msgLess(a, b fleetMsg) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.pkt < b.pkt
}

// push inserts a message into the shard's 4-ary heap.
func (sh *fleetShard) push(m fleetMsg) {
	sh.heap = append(sh.heap, m)
	c := len(sh.heap) - 1
	for c > 0 {
		p := (c - 1) / 4
		if !msgLess(sh.heap[c], sh.heap[p]) {
			break
		}
		sh.heap[c], sh.heap[p] = sh.heap[p], sh.heap[c]
		c = p
	}
}

// pop removes and returns the heap minimum.
func (sh *fleetShard) pop() fleetMsg {
	top := sh.heap[0]
	last := len(sh.heap) - 1
	sh.heap[0] = sh.heap[last]
	sh.heap = sh.heap[:last]
	p := 0
	for {
		first := 4*p + 1
		if first >= last {
			break
		}
		min := first
		end := first + 4
		if end > last {
			end = last
		}
		for c := first + 1; c < end; c++ {
			if msgLess(sh.heap[c], sh.heap[min]) {
				min = c
			}
		}
		if !msgLess(sh.heap[min], sh.heap[p]) {
			break
		}
		sh.heap[p], sh.heap[min] = sh.heap[min], sh.heap[p]
		p = min
	}
	return top
}

// fleetEdge is one adjacency entry of the compiled topology.
type fleetEdge struct {
	to    int32
	delay float64 // effective one-way delay (defaults resolved)
}

// fleetHost is a compiled host.
type fleetHost struct {
	ip flows.IPv4
	sw int32
}

// fleetMetrics are the fleet's registry instruments (zero = disabled).
type fleetMetrics struct {
	events    *telemetry.Counter
	hits      *telemetry.Counter
	misses    *telemetry.Counter
	packetIns *telemetry.Counter
	drops     *telemetry.Counter
	windows   *telemetry.Counter
	crossings *telemetry.Counter
	rtt       *telemetry.Histogram
	shards    *telemetry.Gauge
	pending   *telemetry.Gauge
	clock     *telemetry.Gauge
}

// Fleet is a sharded virtual-time SDN fabric. Build one with NewFleet,
// attach hosts and reactive switches, then drive it with SendEcho +
// RunUntil/Run from a single goroutine; the engine parallelizes
// internally. Call Close when done to stop the worker pool.
type Fleet struct {
	cfg       FleetConfig
	lat       LatencyModel
	proactive bool
	extraHit  float64

	names    []string
	index    map[string]int32
	owner    []int32
	reactive []bool
	tables   []*flowtable.Table // non-nil only for reactive switches
	adj      [][]fleetEdge      // neighbor lists sorted by switch ID

	hosts map[string]fleetHost

	// Interned routes: routeOf[(src<<32)|dst] indexes routeOff/routeLen
	// into the flat path arenas. pathLink[i] is the delay of the link
	// INTO hop i (0 for the ingress hop).
	routeOf  map[int64]int32
	routeOff []int32
	routeLen []int32
	pathSw   []int32
	pathLink []float64

	shards    []*fleetShard
	lookahead float64
	workers   int
	pool      *fleetPool

	pkts []fleetPacket
	now  float64

	det    *detect.Detector
	flt    faults.Profile
	fltOn  bool
	seed   int64
	frozen bool // topology compiled (first run); no more switch/host edits

	reg *telemetry.Registry
	tm  fleetMetrics
}

// NewFleet compiles a topology into a sharded fabric.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	if cfg.Ctrl.App == nil {
		return nil, fmt.Errorf("netsim: fleet needs a controller")
	}
	if cfg.Universe == nil {
		return nil, fmt.Errorf("netsim: fleet needs a flow universe")
	}
	if len(cfg.Topo.Switches) == 0 {
		return nil, fmt.Errorf("netsim: fleet topology has no switches")
	}
	if cfg.Lat == (LatencyModel{}) {
		cfg.Lat = DefaultLatencyModel()
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.Shards > len(cfg.Topo.Switches) {
		cfg.Shards = len(cfg.Topo.Switches)
	}
	f := &Fleet{
		cfg:       cfg,
		lat:       cfg.Lat,
		proactive: cfg.Ctrl.App.Options().Proactive,
		extraHit:  cfg.Ctrl.ExtraHitDelay,
		index:     make(map[string]int32, len(cfg.Topo.Switches)),
		hosts:     make(map[string]fleetHost),
		routeOf:   make(map[int64]int32),
		det:       cfg.Detector,
		flt:       cfg.Faults,
		fltOn:     cfg.Faults.Enabled(),
		seed:      cfg.Seed,
		reg:       cfg.Registry,
	}
	nsw := len(cfg.Topo.Switches)
	f.names = make([]string, nsw)
	f.reactive = make([]bool, nsw)
	f.tables = make([]*flowtable.Table, nsw)
	f.adj = make([][]fleetEdge, nsw)
	for i, name := range cfg.Topo.Switches {
		if _, dup := f.index[name]; dup {
			return nil, fmt.Errorf("netsim: duplicate switch %q", name)
		}
		f.names[i] = name
		f.index[name] = int32(i)
	}
	for _, l := range cfg.Topo.Links {
		a, ok := f.index[l.A]
		if !ok {
			return nil, fmt.Errorf("netsim: link references unknown switch %q", l.A)
		}
		b, ok := f.index[l.B]
		if !ok {
			return nil, fmt.Errorf("netsim: link references unknown switch %q", l.B)
		}
		d := l.DelaySec
		if d <= 0 {
			d = f.lat.SwitchLink
		}
		f.adj[a] = append(f.adj[a], fleetEdge{to: b, delay: d})
		f.adj[b] = append(f.adj[b], fleetEdge{to: a, delay: d})
	}
	for i := range f.adj {
		// Deterministic exploration order for route computation — the
		// fleet analogue of the serial engine's sorted-name BFS.
		sort.Slice(f.adj[i], func(a, b int) bool { return f.adj[i][a].to < f.adj[i][b].to })
	}

	// Partition and lookahead. The lookahead is the minimum effective
	// delay over links whose endpoints live in different shards: any
	// event executed at time τ sends cross-shard messages arriving no
	// earlier than τ + lookahead, so a window [h, h+lookahead) is safe
	// to drain in parallel.
	part := cfg.Topo.Partition(cfg.Shards)
	f.owner = make([]int32, nsw)
	for i, s := range part {
		f.owner[i] = int32(s)
	}
	f.lookahead = math.Inf(1)
	for i := range f.adj {
		for _, e := range f.adj[i] {
			if f.owner[i] != f.owner[e.to] && e.delay < f.lookahead {
				f.lookahead = e.delay
			}
		}
	}
	f.shards = make([]*fleetShard, cfg.Shards)
	for s := range f.shards {
		f.shards[s] = &fleetShard{id: s, out: make([][]fleetMsg, cfg.Shards)}
	}
	for i := range f.owner {
		sh := f.shards[f.owner[i]]
		sh.switches = append(sh.switches, int32(i))
	}

	f.workers = cfg.Workers
	if f.workers <= 0 {
		f.workers = runtime.GOMAXPROCS(0)
	}
	if f.workers > cfg.Shards {
		f.workers = cfg.Shards
	}

	if f.reg != nil {
		f.tm = fleetMetrics{
			events:    f.reg.Counter("netsim_events_total"),
			hits:      f.reg.Counter("netsim_lookups_total", "result", "hit"),
			misses:    f.reg.Counter("netsim_lookups_total", "result", "miss"),
			packetIns: f.reg.Counter("netsim_packet_ins_total"),
			drops:     f.reg.Counter("netsim_fleet_drops_total"),
			windows:   f.reg.Counter("netsim_fleet_windows_total"),
			crossings: f.reg.Counter("netsim_fleet_crossings_total"),
			rtt:       f.reg.Histogram("netsim_echo_rtt_seconds", nil),
			shards:    f.reg.Gauge("netsim_fleet_shards"),
			pending:   f.reg.Gauge("netsim_pending_events"),
			clock:     f.reg.Gauge("netsim_virtual_time_us"),
		}
		f.tm.shards.Set(int64(cfg.Shards))
		for _, sh := range f.shards {
			sh.occ = f.reg.Gauge("netsim_shard_occupancy", "shard", strconv.Itoa(sh.id))
		}
	}
	return f, nil
}

// Shards returns the shard count.
func (f *Fleet) Shards() int { return len(f.shards) }

// Lookahead returns the conservative window width in seconds (+Inf for
// a single shard, which needs no windows).
func (f *Fleet) Lookahead() float64 { return f.lookahead }

// SetReactive marks a switch as running the reactive policy and builds
// its flow table. Non-reactive switches forward on pre-installed
// defaults and carry no table at all — at 10k switches, allocating
// tables only where the policy lives is most of the memory budget.
func (f *Fleet) SetReactive(name string) error {
	if f.frozen {
		return fmt.Errorf("netsim: fleet already running")
	}
	id, ok := f.index[name]
	if !ok {
		return fmt.Errorf("netsim: unknown switch %q", name)
	}
	if f.reactive[id] {
		return nil
	}
	if _, err := f.cfg.Ctrl.App.ProactivePlan(f.cfg.Capacity); err != nil {
		return err
	}
	tbl, err := flowtable.New(f.cfg.Ctrl.App.Policy(), f.cfg.Capacity, f.cfg.StepSec)
	if err != nil {
		return err
	}
	f.reactive[id] = true
	f.tables[id] = tbl
	return nil
}

// AddHost attaches a host to a switch.
func (f *Fleet) AddHost(name string, ip flows.IPv4, sw string) error {
	if f.frozen {
		return fmt.Errorf("netsim: fleet already running")
	}
	id, ok := f.index[sw]
	if !ok {
		return fmt.Errorf("netsim: unknown switch %q", sw)
	}
	if _, dup := f.hosts[name]; dup {
		return fmt.Errorf("netsim: duplicate host %q", name)
	}
	f.hosts[name] = fleetHost{ip: ip, sw: id}
	return nil
}

// Table returns the flow table of a reactive switch (nil otherwise).
func (f *Fleet) Table(name string) *flowtable.Table {
	id, ok := f.index[name]
	if !ok {
		return nil
	}
	return f.tables[id]
}

// route interns the shortest path src→dst and returns its route index.
// BFS with ID-sorted neighbors is deterministic and runs once per
// distinct (src, dst) pair; packets then follow the flat arrays.
func (f *Fleet) route(src, dst int32) (int32, error) {
	key := int64(src)<<32 | int64(dst)
	if r, ok := f.routeOf[key]; ok {
		return r, nil
	}
	var order []int32
	prev := make(map[int32]int32, 64)
	prev[src] = src
	queue := []int32{src}
	found := src == dst
	for len(queue) > 0 && !found {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range f.adj[cur] {
			if _, seen := prev[e.to]; seen {
				continue
			}
			prev[e.to] = cur
			if e.to == dst {
				found = true
				break
			}
			queue = append(queue, e.to)
		}
	}
	if !found {
		return 0, fmt.Errorf("netsim: no path %s → %s", f.names[src], f.names[dst])
	}
	for at := dst; ; at = prev[at] {
		order = append(order, at)
		if at == src {
			break
		}
	}
	// order is dst→src; reverse into the arena with per-link delays.
	r := int32(len(f.routeOff))
	off := int32(len(f.pathSw))
	f.routeOff = append(f.routeOff, off)
	f.routeLen = append(f.routeLen, int32(len(order)))
	for i := len(order) - 1; i >= 0; i-- {
		f.pathSw = append(f.pathSw, order[i])
	}
	f.pathLink = append(f.pathLink, 0)
	for i := int32(1); i < int32(len(order)); i++ {
		a, b := f.pathSw[off+i-1], f.pathSw[off+i]
		f.pathLink = append(f.pathLink, f.linkDelayOf(a, b))
	}
	f.routeOf[key] = r
	return r, nil
}

// linkDelayOf returns the effective delay of the a↔b link.
func (f *Fleet) linkDelayOf(a, b int32) float64 {
	for _, e := range f.adj[a] {
		if e.to == b {
			return e.delay
		}
	}
	return f.lat.SwitchLink
}

// SendEcho injects an ICMP-style echo at virtual time at and returns the
// packet ID. Call between drains (injection is not thread-safe against a
// running window, by design: the attacker and the trial loop drive the
// fleet from one goroutine, like the serial engine).
func (f *Fleet) SendEcho(srcHost, dstHost string, at float64) (int, error) {
	src, ok := f.hosts[srcHost]
	if !ok {
		return 0, fmt.Errorf("netsim: unknown host %q", srcHost)
	}
	dst, ok := f.hosts[dstHost]
	if !ok {
		return 0, fmt.Errorf("netsim: unknown host %q", dstHost)
	}
	rid, err := f.route(src.sw, dst.sw)
	if err != nil {
		return 0, err
	}
	f.frozen = true
	if at < f.now {
		at = f.now
	}
	fid, known := f.cfg.Universe.Lookup(flows.FiveTuple{Src: src.ip, Dst: dst.ip, Proto: flows.ProtoICMP})
	id := len(f.pkts)
	f.pkts = append(f.pkts, fleetPacket{
		rng:    stats.NewSmallRNG(stats.Mix64(f.seed, int64(id))),
		flt:    f.flt.Packet(int64(id)),
		fid:    fid,
		route:  rid,
		sentAt: at,
		rtt:    math.NaN(),
		known:  known,
	})
	ingress := f.pathSw[f.routeOff[rid]]
	f.shards[f.owner[ingress]].push(fleetMsg{at: at + f.lat.HostLink, pkt: int32(id), hop: 0})
	return id, nil
}

// EchoStatus is the observable outcome of one injected echo.
type EchoStatus struct {
	SentAt    float64
	RTT       float64 // seconds; NaN until delivered
	Missed    bool    // some reactive switch consulted the controller
	Delivered bool
}

// Echo returns the status of packet id.
func (f *Fleet) Echo(id int) EchoStatus {
	p := &f.pkts[id]
	return EchoStatus{SentAt: p.sentAt, RTT: p.rtt, Missed: p.missed, Delivered: p.delivered}
}

// Packets returns the number of injected packets.
func (f *Fleet) Packets() int { return len(f.pkts) }

// Now returns the fleet's conservative time frontier: every event before
// it has executed.
func (f *Fleet) Now() float64 { return f.now }

// Pending returns the total number of queued events across shards.
func (f *Fleet) Pending() int {
	n := 0
	for _, sh := range f.shards {
		n += len(sh.heap)
	}
	return n
}

// clampDelay mirrors the serial engine's sample(): delays cannot be ≤ 0;
// the far-left Gaussian tail clamps to mean/10.
func clampDelay(v, mean float64) float64 {
	if v < mean/10 {
		return mean / 10
	}
	return v
}

// process executes one packet event on shard sh. It is the fleet
// analogue of Network.forward plus the reply delivery, operating on
// compiled arrays and the packet's own RNG/fault streams. Everything it
// touches is either owned by this shard (tables, the packet, the shard
// counters) or safe under concurrent use (controller, detector).
func (f *Fleet) process(sh *fleetShard, m fleetMsg) {
	p := &f.pkts[m.pkt]
	if m.hop == replyHop {
		p.rtt = m.at - p.sentAt
		p.delivered = true
		sh.delivered++
		if p.known && f.det != nil {
			f.det.ObserveRTT(int(p.fid), p.rtt*1e3)
		}
		f.observeRTT(p.rtt)
		return
	}
	off := f.routeOff[p.route]
	n := f.routeLen[p.route]
	sw := f.pathSw[off+int32(m.hop)]
	now := m.at
	delay := clampDelay(p.rng.Normal(f.lat.HopMean, f.lat.HopStd), f.lat.HopMean) + f.extraHit
	if f.fltOn {
		// Loss on the link into this switch: the packet vanishes before
		// the lookup, leaving no flow-table side effect here.
		if p.flt.Drop() {
			sh.drops++
			return
		}
		delay += (p.flt.JitterMs() + p.flt.ReorderMs()) / 1e3
	}
	if f.reactive[sw] && !f.proactive {
		hit := false
		if p.known {
			_, hit = f.tables[sw].Lookup(p.fid, now)
			if f.det != nil && m.hop == 0 {
				// The defender watches the ingress lookup point. Hop 0
				// only: a source's entire observation stream then comes
				// from one shard in virtual-time order, which is what
				// keeps detector state shard-count-invariant.
				f.det.Observe(int(p.fid), now, math.NaN(), hit)
			}
		}
		if hit {
			sh.hits++
		} else {
			p.missed = true
			sh.misses++
			sh.packetIns++
			setup := p.rng.Normal(f.lat.SetupMean, f.lat.SetupStd)
			if setup < f.lat.SetupFloor {
				setup = f.lat.SetupFloor
			}
			var dec controller.Decision
			if p.known {
				dec = f.cfg.Ctrl.App.OnPacketIn(p.fid)
			} else {
				dec = controller.Decision{Delay: f.cfg.Ctrl.App.Options().ProcessingDelay}
			}
			decDelay := dec.Delay.Seconds()
			if f.fltOn {
				setup += p.flt.StallMs() / 1e3
				decDelay = p.flt.SlowMs(decDelay*1e3) / 1e3
			}
			delay += setup + decDelay
			if dec.Install {
				f.tables[sw].Install(dec.RuleID, now)
			}
		}
	}
	if int32(m.hop)+1 < n {
		next := f.pathSw[off+int32(m.hop)+1]
		f.send(sh, f.owner[next], fleetMsg{
			at:  now + delay + f.pathLink[off+int32(m.hop)+1],
			pkt: m.pkt,
			hop: m.hop + 1,
		})
		return
	}
	// Last switch → destination host → reply riding the pre-installed
	// reply rule back along the same path: per-hop forwarding only.
	replyDelay := delay + 3*f.lat.HostLink
	for i := int32(0); i < n; i++ {
		replyDelay += clampDelay(p.rng.Normal(f.lat.HopMean, f.lat.HopStd), f.lat.HopMean) + f.extraHit
		if i > 0 {
			replyDelay += f.pathLink[off+i]
		}
	}
	if f.fltOn {
		if p.flt.Drop() {
			sh.drops++
			return
		}
		replyDelay += p.flt.JitterMs() / 1e3
	}
	ingress := f.pathSw[off]
	f.send(sh, f.owner[ingress], fleetMsg{at: now + replyDelay, pkt: m.pkt, hop: replyHop})
}

// send routes a message to its destination shard: a direct heap push
// when local, an outbox append otherwise (merged at the next barrier —
// safe, because conservative lookahead guarantees the message's time is
// at or beyond the window end).
func (f *Fleet) send(from *fleetShard, dst int32, m fleetMsg) {
	if int(dst) == from.id {
		from.push(m)
		return
	}
	from.crossings++
	from.out[dst] = append(from.out[dst], m)
}

// FleetProber issues attacker probes against a fleet, the multi-switch
// analogue of Prober: it classifies echo RTTs with the paper's 1 ms
// threshold, but the state it reveals lives on remote edge switches.
type FleetProber struct {
	F           *Fleet
	ThresholdMs float64
}

// NewFleetProber returns a prober with the paper's 1 ms threshold.
func NewFleetProber(f *Fleet) *FleetProber {
	return &FleetProber{F: f, ThresholdMs: 1.0}
}

// Probe sends srcHost→dstHost at virtual time at, runs the fleet until
// the reply lands, and classifies the delay.
func (p *FleetProber) Probe(srcHost, dstHost string, at float64) (ProbeResult, error) {
	id, err := p.F.SendEcho(srcHost, dstHost, at)
	if err != nil {
		return ProbeResult{}, err
	}
	deadline := at + 1.0
	for !p.F.Echo(id).Delivered && p.F.Now() < deadline {
		if p.F.Pending() == 0 {
			break
		}
		p.F.RunUntil(math.Min(deadline, p.F.Now()+0.01))
	}
	st := p.F.Echo(id)
	if !st.Delivered {
		if p.F.fltOn {
			return ProbeResult{RTTms: math.NaN(), Lost: true}, nil
		}
		return ProbeResult{}, fmt.Errorf("netsim: fleet probe reply not delivered by %v", deadline)
	}
	rtt := st.RTT * 1e3
	return ProbeResult{RTTms: rtt, Hit: rtt < p.ThresholdMs}, nil
}
