package netsim

import (
	"fmt"

	"flowrecon/internal/flows"
)

// Topology describes a switch fabric.
type Topology struct {
	Switches []string
	Links    [][2]string
}

// StanfordBackbone returns a 16-switch topology in the image of the
// Stanford backbone used by the paper's evaluation [13]: two core routers
// (bbra, bbrb) interconnected, with fourteen zone routers dual-homed to
// both cores. The original Cisco configurations are not available offline;
// see DESIGN.md for why this substitution does not affect the attack.
func StanfordBackbone() Topology {
	zones := []string{
		"boza_rtr", "bozb_rtr", "coza_rtr", "cozb_rtr",
		"goza_rtr", "gozb_rtr", "poza_rtr", "pozb_rtr",
		"roza_rtr", "rozb_rtr", "soza_rtr", "sozb_rtr",
		"yoza_rtr", "yozb_rtr",
	}
	topo := Topology{Switches: []string{"bbra_rtr", "bbrb_rtr"}}
	topo.Switches = append(topo.Switches, zones...)
	topo.Links = append(topo.Links, [2]string{"bbra_rtr", "bbrb_rtr"})
	for _, z := range zones {
		topo.Links = append(topo.Links, [2]string{z, "bbra_rtr"}, [2]string{z, "bbrb_rtr"})
	}
	return topo
}

// Build instantiates the topology into a network: every switch gets a
// flow table of the given capacity.
func (t Topology) Build(n *Network, capacity int, stepSec float64) error {
	for _, sw := range t.Switches {
		if err := n.AddSwitch(sw, capacity, stepSec); err != nil {
			return err
		}
	}
	for _, l := range t.Links {
		if err := n.Link(l[0], l[1]); err != nil {
			return err
		}
	}
	return nil
}

// EvaluationSetup reproduces the paper's §VI-A experiment layout on a
// network: nhosts source hosts (10.0.1.0 …) plus an attacker host attached
// to one ingress switch, and the common destination host (10.0.1.nhosts)
// attached to another.
type EvaluationSetup struct {
	SourceHosts []string
	Attacker    string
	Destination string
	Ingress     string
	Egress      string
}

// AttachEvaluationHosts wires the §VI-A hosts onto two switches of the
// built topology.
func AttachEvaluationHosts(n *Network, base flows.IPv4, nhosts int, ingress, egress string) (EvaluationSetup, error) {
	setup := EvaluationSetup{Ingress: ingress, Egress: egress}
	// Only the shared ingress switch runs the reactive policy; the rest
	// of the fabric forwards on pre-installed defaults (§VI-A).
	if err := n.SetReactive(ingress, true); err != nil {
		return setup, err
	}
	for i := 0; i < nhosts; i++ {
		name := fmt.Sprintf("h%d", i)
		if err := n.AddHost(name, base+flows.IPv4(i), ingress); err != nil {
			return setup, err
		}
		setup.SourceHosts = append(setup.SourceHosts, name)
	}
	setup.Attacker = "attacker"
	// The attacker is "co-located with the source hosts" (§VI-A): same
	// ingress switch; probes are forged to carry a source host's address,
	// so the attacker host needs no address of its own.
	if err := n.AddHost(setup.Attacker, base+flows.IPv4(nhosts+1), ingress); err != nil {
		return setup, err
	}
	setup.Destination = "server"
	if err := n.AddHost(setup.Destination, base+flows.IPv4(nhosts), egress); err != nil {
		return setup, err
	}
	return setup, nil
}
