package netsim

import (
	"fmt"

	"flowrecon/internal/flows"
)

// Link is one bidirectional switch↔switch link. DelaySec is the one-way
// propagation delay; 0 means "use the latency model's default"
// (LatencyModel.SwitchLink), which keeps the paper's backbone — whose
// links carry no per-link annotation — byte-identical to earlier
// revisions.
type Link struct {
	A, B     string
	DelaySec float64
}

// Topology describes a switch fabric.
type Topology struct {
	Switches []string
	Links    []Link
	// Edges names the edge (host-facing) switches of generated fabrics,
	// in deterministic order. Empty for hand-built topologies like the
	// Stanford backbone, where every switch can face hosts.
	Edges []string
}

// StanfordBackbone returns a 16-switch topology in the image of the
// Stanford backbone used by the paper's evaluation [13]: two core routers
// (bbra, bbrb) interconnected, with fourteen zone routers dual-homed to
// both cores. The original Cisco configurations are not available offline;
// see DESIGN.md for why this substitution does not affect the attack.
func StanfordBackbone() Topology {
	zones := []string{
		"boza_rtr", "bozb_rtr", "coza_rtr", "cozb_rtr",
		"goza_rtr", "gozb_rtr", "poza_rtr", "pozb_rtr",
		"roza_rtr", "rozb_rtr", "soza_rtr", "sozb_rtr",
		"yoza_rtr", "yozb_rtr",
	}
	topo := Topology{Switches: []string{"bbra_rtr", "bbrb_rtr"}}
	topo.Switches = append(topo.Switches, zones...)
	topo.Links = append(topo.Links, Link{A: "bbra_rtr", B: "bbrb_rtr"})
	for _, z := range zones {
		topo.Links = append(topo.Links, Link{A: z, B: "bbra_rtr"}, Link{A: z, B: "bbrb_rtr"})
	}
	return topo
}

// Per-tier link delays of the generated datacenter fabrics (seconds,
// one way). Edge↔aggregation links are short intra-pod runs; the
// aggregation↔core and leaf↔spine tiers cross the datacenter. The core
// tier being strictly slower than the edge tier is what gives the
// sharded engine its lookahead: pod-contiguous partitions only cross
// shards over ≥ FatTreeEdgeAggDelay links.
const (
	FatTreeEdgeAggDelay = 10e-6
	FatTreeAggCoreDelay = 25e-6
	LeafSpineLinkDelay  = 20e-6
)

// FatTree returns the standard k-ary fat-tree (Al-Fares et al.): k pods
// of k/2 edge + k/2 aggregation switches, plus (k/2)² cores, for
// k² + k²/4 switches total — k=30 yields the 1125-switch "1k" fabric,
// k=64 the 5120-switch one. k must be even and ≥ 2.
//
// Switches are emitted pod-major (pod 0's edges, pod 0's aggs, pod 1's
// edges, ...) with the cores last, so the contiguous Partition below
// keeps pods intact and cross-shard traffic rides the slower
// aggregation↔core tier.
func FatTree(k int) (Topology, error) {
	if k < 2 || k%2 != 0 {
		return Topology{}, fmt.Errorf("netsim: fat-tree arity %d must be even and ≥ 2", k)
	}
	half := k / 2
	var topo Topology
	for p := 0; p < k; p++ {
		for e := 0; e < half; e++ {
			name := fmt.Sprintf("p%de%d", p, e)
			topo.Switches = append(topo.Switches, name)
			topo.Edges = append(topo.Edges, name)
		}
		for a := 0; a < half; a++ {
			topo.Switches = append(topo.Switches, fmt.Sprintf("p%da%d", p, a))
		}
	}
	for c := 0; c < half*half; c++ {
		topo.Switches = append(topo.Switches, fmt.Sprintf("core%d", c))
	}
	for p := 0; p < k; p++ {
		for e := 0; e < half; e++ {
			for a := 0; a < half; a++ {
				topo.Links = append(topo.Links, Link{
					A:        fmt.Sprintf("p%de%d", p, e),
					B:        fmt.Sprintf("p%da%d", p, a),
					DelaySec: FatTreeEdgeAggDelay,
				})
			}
		}
		// Aggregation switch a of every pod uplinks to cores
		// [a·k/2, (a+1)·k/2).
		for a := 0; a < half; a++ {
			for i := 0; i < half; i++ {
				topo.Links = append(topo.Links, Link{
					A:        fmt.Sprintf("p%da%d", p, a),
					B:        fmt.Sprintf("core%d", a*half+i),
					DelaySec: FatTreeAggCoreDelay,
				})
			}
		}
	}
	return topo, nil
}

// FatTreeArity returns the smallest even k whose fat-tree reaches at
// least the requested switch count (k² + k²/4 switches).
func FatTreeArity(switches int) int {
	for k := 2; ; k += 2 {
		if k*k+(k/2)*(k/2) >= switches {
			return k
		}
	}
}

// LeafSpine returns a two-tier Clos fabric: every leaf connects to every
// spine. Leaves are the edge tier.
func LeafSpine(leaves, spines int) (Topology, error) {
	if leaves < 1 || spines < 1 {
		return Topology{}, fmt.Errorf("netsim: leaf-spine needs ≥1 leaf and ≥1 spine (got %d, %d)", leaves, spines)
	}
	var topo Topology
	for l := 0; l < leaves; l++ {
		name := fmt.Sprintf("leaf%d", l)
		topo.Switches = append(topo.Switches, name)
		topo.Edges = append(topo.Edges, name)
	}
	for s := 0; s < spines; s++ {
		topo.Switches = append(topo.Switches, fmt.Sprintf("spine%d", s))
	}
	for l := 0; l < leaves; l++ {
		for s := 0; s < spines; s++ {
			topo.Links = append(topo.Links, Link{
				A:        fmt.Sprintf("leaf%d", l),
				B:        fmt.Sprintf("spine%d", s),
				DelaySec: LeafSpineLinkDelay,
			})
		}
	}
	return topo, nil
}

// Partition assigns every switch (by index into Switches) to one of
// nshards contiguous blocks. Generators emit switches pod-major, so
// contiguous blocks track pod boundaries and most intra-pod traffic
// stays shard-local. The mapping is a pure function of (len(Switches),
// nshards) — the first requirement for shard-count-invariant replay.
func (t Topology) Partition(nshards int) []int {
	if nshards < 1 {
		nshards = 1
	}
	if nshards > len(t.Switches) {
		nshards = len(t.Switches)
	}
	owner := make([]int, len(t.Switches))
	for i := range owner {
		owner[i] = i * nshards / len(t.Switches)
	}
	return owner
}

// Build instantiates the topology into a network: every switch gets a
// flow table of the given capacity, and annotated links carry their
// per-link delay.
func (t Topology) Build(n *Network, capacity int, stepSec float64) error {
	for _, sw := range t.Switches {
		if err := n.AddSwitch(sw, capacity, stepSec); err != nil {
			return err
		}
	}
	for _, l := range t.Links {
		if err := n.LinkDelay(l.A, l.B, l.DelaySec); err != nil {
			return err
		}
	}
	return nil
}

// EvaluationSetup reproduces the paper's §VI-A experiment layout on a
// network: nhosts source hosts (10.0.1.0 …) plus an attacker host attached
// to one ingress switch, and the common destination host (10.0.1.nhosts)
// attached to another.
type EvaluationSetup struct {
	SourceHosts []string
	Attacker    string
	Destination string
	Ingress     string
	Egress      string
}

// AttachEvaluationHosts wires the §VI-A hosts onto two switches of the
// built topology.
func AttachEvaluationHosts(n *Network, base flows.IPv4, nhosts int, ingress, egress string) (EvaluationSetup, error) {
	setup := EvaluationSetup{Ingress: ingress, Egress: egress}
	// Only the shared ingress switch runs the reactive policy; the rest
	// of the fabric forwards on pre-installed defaults (§VI-A).
	if err := n.SetReactive(ingress, true); err != nil {
		return setup, err
	}
	for i := 0; i < nhosts; i++ {
		name := fmt.Sprintf("h%d", i)
		if err := n.AddHost(name, base+flows.IPv4(i), ingress); err != nil {
			return setup, err
		}
		setup.SourceHosts = append(setup.SourceHosts, name)
	}
	setup.Attacker = "attacker"
	// The attacker is "co-located with the source hosts" (§VI-A): same
	// ingress switch; probes are forged to carry a source host's address,
	// so the attacker host needs no address of its own.
	if err := n.AddHost(setup.Attacker, base+flows.IPv4(nhosts+1), ingress); err != nil {
		return setup, err
	}
	setup.Destination = "server"
	if err := n.AddHost(setup.Destination, base+flows.IPv4(nhosts), egress); err != nil {
		return setup, err
	}
	return setup, nil
}
