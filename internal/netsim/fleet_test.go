package netsim

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"flowrecon/internal/controller"
	"flowrecon/internal/detect"
	"flowrecon/internal/faults"
	"flowrecon/internal/flows"
	"flowrecon/internal/rules"
)

func TestFatTreeShape(t *testing.T) {
	topo, err := FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Switches) != 4*4+4 {
		t.Fatalf("k=4 switches = %d, want 20", len(topo.Switches))
	}
	// Per pod: (k/2)² edge-agg links; uplinks: k/2 aggs × k/2 cores.
	if want := 4*(2*2) + 4*(2*2); len(topo.Links) != want {
		t.Fatalf("k=4 links = %d, want %d", len(topo.Links), want)
	}
	if len(topo.Edges) != 8 {
		t.Fatalf("k=4 edges = %d, want 8", len(topo.Edges))
	}
	if _, err := FatTree(3); err == nil {
		t.Fatal("odd arity accepted")
	}
	if k := FatTreeArity(1000); k != 30 {
		t.Fatalf("FatTreeArity(1000) = %d, want 30", k)
	}
	big, err := FatTree(30)
	if err != nil {
		t.Fatal(err)
	}
	if len(big.Switches) != 1125 {
		t.Fatalf("k=30 switches = %d, want 1125", len(big.Switches))
	}
}

func TestLeafSpineShape(t *testing.T) {
	topo, err := LeafSpine(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Switches) != 9 || len(topo.Links) != 18 || len(topo.Edges) != 6 {
		t.Fatalf("leaf-spine shape: sw=%d links=%d edges=%d",
			len(topo.Switches), len(topo.Links), len(topo.Edges))
	}
	if _, err := LeafSpine(0, 3); err == nil {
		t.Fatal("empty leaf tier accepted")
	}
}

func TestPartitionContiguous(t *testing.T) {
	topo, _ := FatTree(4)
	owner := topo.Partition(3)
	last := 0
	counts := map[int]int{}
	for i, s := range owner {
		if s < last {
			t.Fatalf("partition not monotone at switch %d", i)
		}
		last = s
		counts[s]++
	}
	if len(counts) != 3 {
		t.Fatalf("partition used %d shards, want 3", len(counts))
	}
	for s, c := range counts {
		if c < len(owner)/3-2 || c > len(owner)/3+2 {
			t.Fatalf("shard %d owns %d switches (unbalanced)", s, c)
		}
	}
	// Degenerate requests clamp instead of failing.
	if got := topo.Partition(0); got[0] != 0 || got[len(got)-1] != 0 {
		t.Fatal("Partition(0) should collapse to one shard")
	}
	if got := topo.Partition(10 * len(topo.Switches)); got[len(got)-1] >= len(topo.Switches) {
		t.Fatal("Partition over-wide produced out-of-range shard")
	}
}

// fleetFixture wires a k=4 fat-tree with one host per edge switch and a
// flow universe where flow i runs host i → host (i+3) mod 8. All edges
// are reactive; each flow has its own rule.
type fleetFixture struct {
	fleet *Fleet
	hosts []string
	nflow int
}

func buildTestFleet(t testing.TB, shards, workers int, prof faults.Profile, det *detect.Detector) *fleetFixture {
	t.Helper()
	topo, err := FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	base := flows.MakeIPv4(10, 0, 0, 0)
	universe := flows.NewUniverse()
	nflow := len(topo.Edges)
	hosts := make([]string, nflow)
	rs := make([]rules.Rule, nflow)
	for i := 0; i < nflow; i++ {
		hosts[i] = fmt.Sprintf("h%d", i)
	}
	for i := 0; i < nflow; i++ {
		j := (i + 3) % nflow
		universe.Add(fmt.Sprintf("f%d", i), flows.FiveTuple{
			Src: base + flows.IPv4(i), Dst: base + flows.IPv4(j), Proto: flows.ProtoICMP,
		})
		rs[i] = rules.Rule{Name: fmt.Sprintf("r%d", i), Cover: flows.SetOf(flows.ID(i)), Priority: i + 1, Timeout: 5}
	}
	policy, err := rules.NewSet(rs)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFleet(FleetConfig{
		Topo:     topo,
		Capacity: 6,
		StepSec:  0.1,
		Ctrl:     NewControllerModel(policy, controller.Options{}),
		Universe: universe,
		Shards:   shards,
		Workers:  workers,
		Seed:     1234,
		Faults:   prof,
		Detector: det,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range topo.Edges {
		if err := f.SetReactive(e); err != nil {
			t.Fatal(err)
		}
	}
	for i, h := range hosts {
		if err := f.AddHost(h, base+flows.IPv4(i), topo.Edges[i]); err != nil {
			t.Fatal(err)
		}
	}
	return &fleetFixture{fleet: f, hosts: hosts, nflow: nflow}
}

// inject schedules rounds of echoes on every flow at deterministic,
// slightly staggered times.
func (fx *fleetFixture) inject(t testing.TB, rounds int) {
	for r := 0; r < rounds; r++ {
		for i := 0; i < fx.nflow; i++ {
			at := 0.09*float64(r) + 0.011*float64(i)
			dst := fx.hosts[(i+3)%fx.nflow]
			if _, err := fx.fleet.SendEcho(fx.hosts[i], dst, at); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// fingerprint captures everything the determinism contract covers:
// per-packet outcomes bit-for-bit, per-switch table stats, and the
// detector's verdict set.
func (fx *fleetFixture) fingerprint() string {
	f := fx.fleet
	out := fmt.Sprintf("packets=%d\n", f.Packets())
	for i := 0; i < f.Packets(); i++ {
		st := f.Echo(i)
		out += fmt.Sprintf("p%d rtt=%016x missed=%v delivered=%v\n",
			i, math.Float64bits(st.RTT), st.Missed, st.Delivered)
	}
	for _, name := range f.cfg.Topo.Edges {
		s := f.Table(name).Stats()
		out += fmt.Sprintf("%s L=%d H=%d M=%d I=%d E=%d X=%d\n",
			name, s.Lookups, s.Hits, s.Misses, s.Installs, s.Evictions, s.Expirations)
	}
	if f.det != nil {
		vs := f.det.Verdicts()
		sort.Slice(vs, func(a, b int) bool {
			if vs[a].T != vs[b].T {
				return vs[a].T < vs[b].T
			}
			return vs[a].Source < vs[b].Source
		})
		for _, v := range vs {
			out += fmt.Sprintf("flag src=%d t=%016x reason=%s\n", v.Source, math.Float64bits(v.T), v.Reason)
		}
	}
	return out
}

// TestFleetShardCountInvariance is the tentpole contract: the same
// workload — faults and detector enabled — produces bit-identical
// results at 1, 2, and 8 shards, with the worker pool engaged.
func TestFleetShardCountInvariance(t *testing.T) {
	prof := faults.Profile{
		Seed: 7, LossProb: 0.05, JitterMeanMs: 0.2,
		ReorderProb: 0.05, ReorderExtraMs: 1,
		StallProb: 0.02, StallMs: 2, SlowFactor: 1.5,
	}
	run := func(shards, workers int) string {
		fx := buildTestFleet(t, shards, workers, prof, detect.New(detect.DefaultConfig()))
		defer fx.fleet.Close()
		fx.inject(t, 12)
		fx.fleet.Run()
		return fx.fingerprint()
	}
	want := run(1, 1)
	for _, cfg := range []struct{ shards, workers int }{{2, 2}, {8, 4}, {8, 8}} {
		if got := run(cfg.shards, cfg.workers); got != want {
			t.Fatalf("fingerprint diverged at %d shards / %d workers:\n--- serial ---\n%s\n--- sharded ---\n%s",
				cfg.shards, cfg.workers, want, got)
		}
	}
}

// TestFleetRunUntilInvariance checks the windowed drive path (the one
// the prober uses): stepping in small increments must match one big Run.
func TestFleetRunUntilInvariance(t *testing.T) {
	run := func(step float64) string {
		fx := buildTestFleet(t, 4, 2, faults.Profile{}, nil)
		defer fx.fleet.Close()
		fx.inject(t, 8)
		if step <= 0 {
			fx.fleet.Run()
		} else {
			for fx.fleet.Pending() > 0 {
				fx.fleet.RunUntil(fx.fleet.Now() + step)
			}
		}
		return fx.fingerprint()
	}
	if a, b := run(0), run(0.013); a != b {
		t.Fatalf("windowed stepping diverged:\n%s\nvs\n%s", a, b)
	}
}

// TestFleetCrossShardExchangeRace hammers the cross-shard path with the
// maximum worker parallelism so `go test -race` inspects the
// outbox/barrier handoffs.
func TestFleetCrossShardExchangeRace(t *testing.T) {
	det := detect.New(detect.DefaultConfig())
	fx := buildTestFleet(t, 8, 8, faults.Profile{Seed: 3, LossProb: 0.02, JitterMeanMs: 0.1}, det)
	defer fx.fleet.Close()
	fx.inject(t, 40)
	n := fx.fleet.Run()
	if n == 0 {
		t.Fatal("no events processed")
	}
	delivered := 0
	for i := 0; i < fx.fleet.Packets(); i++ {
		if fx.fleet.Echo(i).Delivered {
			delivered++
		}
	}
	if delivered == 0 {
		t.Fatal("nothing delivered")
	}
}

// TestFleetDrainZeroAlloc is the alloc gate: steady-state event
// processing — injection, hop forwarding, table lookups, cross-shard
// exchange — must not allocate. Measured on the sequential path (the
// race-free way to count), with two shards so the outbox path is
// exercised too.
func TestFleetDrainZeroAlloc(t *testing.T) {
	fx := buildTestFleet(t, 2, 1, faults.Profile{}, nil)
	defer fx.fleet.Close()
	f := fx.fleet
	// Warm every pool: routes interned, heaps/outboxes at capacity, and
	// the packet arena pre-grown past what the measured runs consume.
	fx.inject(t, 20)
	f.Run()
	grown := make([]fleetPacket, len(f.pkts), len(f.pkts)+64*fx.nflow)
	copy(grown, f.pkts)
	f.pkts = grown
	round := 0
	cycle := func() {
		at := f.Now()
		for i := 0; i < fx.nflow; i++ {
			dst := fx.hosts[(i+3)%fx.nflow]
			if _, err := f.SendEcho(fx.hosts[i], dst, at+0.001*float64(i)); err != nil {
				t.Fatal(err)
			}
		}
		f.RunUntil(at + 0.09)
		round++
	}
	cycle() // shake out remaining lazy growth
	before := f.Packets()
	avg := testing.AllocsPerRun(40, cycle)
	perEvent := avg / float64(12*fx.nflow) // ≥12 events per packet (hops + reply)
	if avg > 0.5 {
		t.Fatalf("steady-state drain allocates: %.3f allocs/cycle (%.5f/event, %d packets)",
			avg, perEvent, f.Packets()-before)
	}
}

// TestFleetCalibration re-derives the paper's §VI-A timing gap on the
// fleet engine: misses cost a controller round trip (≈4 ms), hits cost
// per-hop forwarding only (≈0.09 ms on the 3-switch backbone route),
// and the 1 ms threshold separates them cleanly.
func TestFleetCalibration(t *testing.T) {
	universe := flows.ClientServerUniverse(flows.MakeIPv4(10, 0, 1, 0), 4)
	policy, err := rules.NewSet([]rules.Rule{
		{Name: "r0", Cover: flows.SetOf(0, 1), Priority: 2, Timeout: 5},
		{Name: "r1", Cover: flows.SetOf(2), Priority: 1, Timeout: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFleet(FleetConfig{
		Topo:     StanfordBackbone(),
		Capacity: 6,
		StepSec:  0.1,
		Ctrl:     NewControllerModel(policy, controller.Options{}),
		Universe: universe,
		Shards:   1,
		Seed:     9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SetReactive("yoza_rtr"); err != nil {
		t.Fatal(err)
	}
	base := flows.MakeIPv4(10, 0, 1, 0)
	for i := 0; i < 4; i++ {
		if err := f.AddHost(fmt.Sprintf("h%d", i), base+flows.IPv4(i), "yoza_rtr"); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.AddHost("server", base+4, "boza_rtr"); err != nil {
		t.Fatal(err)
	}
	pr := NewFleetProber(f)
	var missSum, hitSum float64
	const n = 60
	at := 0.0
	for i := 0; i < n; i++ {
		// First probe after expiry: miss. Second right behind it: hit.
		miss, err := pr.Probe("h0", "server", at)
		if err != nil {
			t.Fatal(err)
		}
		hit, err := pr.Probe("h0", "server", f.Now()+0.01)
		if err != nil {
			t.Fatal(err)
		}
		if miss.Hit {
			t.Fatalf("probe %d: expected miss, rtt=%vms", i, miss.RTTms)
		}
		if !hit.Hit {
			t.Fatalf("probe %d: expected hit, rtt=%vms", i, hit.RTTms)
		}
		missSum += miss.RTTms
		hitSum += hit.RTTms
		at = f.Now() + 0.6 // past the 0.5 s idle timeout
	}
	missMean, hitMean := missSum/n, hitSum/n
	if missMean < 3 || missMean > 5.5 {
		t.Fatalf("miss mean %.3f ms outside the paper's ≈4.07 ms band", missMean)
	}
	if hitMean < 0.05 || hitMean > 0.15 {
		t.Fatalf("hit mean %.3f ms outside the paper's ≈0.087 ms band", hitMean)
	}
}

func TestFleetValidation(t *testing.T) {
	topo, _ := FatTree(4)
	universe := flows.NewUniverse()
	policy, _ := rules.NewSet([]rules.Rule{{Name: "r", Cover: flows.SetOf(0), Priority: 1, Timeout: 1}})
	ctrl := NewControllerModel(policy, controller.Options{})
	if _, err := NewFleet(FleetConfig{Topo: topo, Universe: universe}); err == nil {
		t.Fatal("fleet without controller accepted")
	}
	if _, err := NewFleet(FleetConfig{Topo: topo, Ctrl: ctrl}); err == nil {
		t.Fatal("fleet without universe accepted")
	}
	f, err := NewFleet(FleetConfig{Topo: topo, Ctrl: ctrl, Universe: universe, Capacity: 4, StepSec: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SetReactive("nope"); err == nil {
		t.Fatal("unknown reactive switch accepted")
	}
	if err := f.AddHost("h", 1, "nope"); err == nil {
		t.Fatal("host on unknown switch accepted")
	}
	if err := f.AddHost("h", 1, topo.Edges[0]); err != nil {
		t.Fatal(err)
	}
	if err := f.AddHost("h", 2, topo.Edges[1]); err == nil {
		t.Fatal("duplicate host accepted")
	}
	if _, err := f.SendEcho("nope", "h", 0); err == nil {
		t.Fatal("echo from unknown host accepted")
	}
	// Shard clamp: more shards than switches must degrade, not fail.
	g, err := NewFleet(FleetConfig{Topo: topo, Ctrl: ctrl, Universe: universe, Capacity: 4, StepSec: 0.1, Shards: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if g.Shards() != len(topo.Switches) {
		t.Fatalf("shards = %d, want clamp to %d", g.Shards(), len(topo.Switches))
	}
}
