package netsim

import (
	"math"
	"testing"

	"flowrecon/internal/controller"
	"flowrecon/internal/faults"
	"flowrecon/internal/flows"
	"flowrecon/internal/stats"
	"flowrecon/internal/telemetry"
)

// faultFabric builds the standard evaluation fabric with the given
// network seed.
func faultFabric(t *testing.T, seed int64) (*Network, *Sim, EvaluationSetup) {
	t.Helper()
	rs := attackPolicy(t)
	universe := flows.ClientServerUniverse(flows.MakeIPv4(10, 0, 1, 0), 4)
	sim := NewSim()
	n := NewNetwork(sim, universe, NewControllerModel(rs, controller.Options{}), DefaultLatencyModel(), stats.NewRNG(seed))
	if err := StanfordBackbone().Build(n, 3, 0.1); err != nil {
		t.Fatal(err)
	}
	setup, err := AttachEvaluationHosts(n, flows.MakeIPv4(10, 0, 1, 0), 4, "yoza_rtr", "boza_rtr")
	if err != nil {
		t.Fatal(err)
	}
	return n, sim, setup
}

// TestFaultLossClassifiesProbeLost: at LossProb 1 every probe is lost,
// yields an explicit Lost result instead of an error, and installs
// nothing (drop happens before the ingress lookup).
func TestFaultLossClassifiesProbeLost(t *testing.T) {
	n, _, setup := faultFabric(t, 3)
	n.SetFaults(faults.Profile{Seed: 1, LossProb: 1})
	if !n.FaultsEnabled() {
		t.Fatal("faults not enabled")
	}
	prober := NewProber(n, setup)
	res, err := prober.Probe(0, 0)
	if err != nil {
		t.Fatalf("lost probe must not error: %v", err)
	}
	if !res.Lost || res.Hit {
		t.Fatalf("want Lost miss, got %+v", res)
	}
	if !math.IsNaN(res.RTTms) {
		t.Fatalf("lost probe carries an RTT: %v", res.RTTms)
	}
	if n.Switch(setup.Ingress).Table.Contains(0, 1) {
		t.Fatal("dropped probe installed a rule")
	}
	if n.PacketIns != 0 {
		t.Fatal("dropped probe consulted the controller")
	}
}

// TestFaultJitterDelaysButDelivers: pure jitter never loses a probe and
// inflates the RTT.
func TestFaultJitterDelaysButDelivers(t *testing.T) {
	clean, _, setupC := faultFabric(t, 3)
	jitter, _, setupJ := faultFabric(t, 3)
	jitter.SetFaults(faults.Profile{Seed: 2, JitterMeanMs: 1})

	rc, err := NewProber(clean, setupC).Probe(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	rj, err := NewProber(jitter, setupJ).Probe(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rj.Lost {
		t.Fatal("jitter-only profile lost a probe")
	}
	if rj.RTTms <= rc.RTTms {
		t.Fatalf("jittered RTT %.4f not above clean RTT %.4f", rj.RTTms, rc.RTTms)
	}
}

// TestFaultDeterminism: the same (network seed, fault seed) pair gives
// the identical probe outcome sequence; changing only the fault seed
// changes it.
func TestFaultDeterminism(t *testing.T) {
	run := func(faultSeed int64) []ProbeResult {
		n, _, setup := faultFabric(t, 3)
		n.SetFaults(faults.Profile{Seed: faultSeed, LossProb: 0.3, JitterMeanMs: 0.5})
		prober := NewProber(n, setup)
		out := make([]ProbeResult, 20)
		at := 0.0
		for i := range out {
			res, err := prober.Probe(flows.ID(i%4), at)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = res
			at = n.sim.Now() + 0.05
		}
		return out
	}
	equal := func(a, b ProbeResult) bool {
		if a.Lost != b.Lost || a.Hit != b.Hit {
			return false
		}
		return a.RTTms == b.RTTms || (math.IsNaN(a.RTTms) && math.IsNaN(b.RTTms))
	}
	a, b := run(7), run(7)
	for i := range a {
		if !equal(a[i], b[i]) {
			t.Fatalf("probe %d diverged under identical seeds: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if !equal(a[i], c[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("fault seeds 7 and 8 produced identical sequences")
	}
}

// TestFaultTelemetryCounters: drops surface in the faults_* series.
func TestFaultTelemetryCounters(t *testing.T) {
	n, _, setup := faultFabric(t, 3)
	reg := telemetry.NewRegistry(0)
	n.SetTelemetry(reg)
	n.SetFaults(faults.Profile{Seed: 1, LossProb: 1})
	if _, err := NewProber(n, setup).Probe(0, 0); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters[`faults_loss_total{layer="netsim"}`]; got == 0 {
		t.Fatal("no loss recorded in telemetry")
	}
}

// TestFaultControllerSlowdown: SlowFactor inflates miss RTTs only.
func TestFaultControllerSlowdown(t *testing.T) {
	clean, _, setupC := faultFabric(t, 3)
	slow, _, setupS := faultFabric(t, 3)
	slow.SetFaults(faults.Profile{Seed: 5, StallProb: 1, StallMs: 50})

	rc, err := NewProber(clean, setupC).Probe(0, 0) // first probe always misses
	if err != nil {
		t.Fatal(err)
	}
	rs, err := NewProber(slow, setupS).Probe(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Hit || rs.Hit {
		t.Fatalf("first probes should miss: clean=%+v stalled=%+v", rc, rs)
	}
	if rs.RTTms < rc.RTTms+40 {
		t.Fatalf("stalled miss RTT %.3f not ≈50ms above clean %.3f", rs.RTTms, rc.RTTms)
	}
}
