// CSR is the frozen, flat-array form of a Sparse transition matrix: the
// mutable Sparse is the builder, Freeze produces an immutable kernel
// object that supports allocation-free in-place evolution (ping-pong
// buffers with support tracking) and a row-sharded parallel matvec that
// kicks in above a size threshold.
//
// Bit-for-bit determinism contract: every Apply/Evolve path in this file
// produces results identical (0 ulp) to the reference Sparse.Apply loop.
// The reference is a scatter over source states in ascending order,
// skipping zero-mass sources. Two observations make the fast paths safe:
//
//  1. A gather over a destination's incoming edges, with sources sorted
//     ascending and no zero-skip, accumulates each destination in the
//     same term order as the reference scatter — the skipped zero-mass
//     sources contribute exactly +0.0, and x + 0.0 == x bit-for-bit when
//     all stored probabilities and masses are non-negative (so no -0.0
//     terms arise). Hence serial gather, parallel row-sharded gather
//     (each destination is computed independently), and the reference
//     scatter agree to the last bit.
//  2. A scatter over a sorted support list (the nonzero sources, plus
//     possibly sources whose mass underflowed to +0, which contribute
//     no-op terms) likewise preserves the reference accumulation order.
package markov

import (
	"runtime"
	"slices"
	"sync"
)

// ParallelNNZThreshold is the number of stored entries above which
// ApplyInto shards the gather across workers. Below it the
// goroutine-dispatch overhead dominates the multiply itself. Tests may
// lower it to force the parallel path on small matrices.
var ParallelNNZThreshold = 1 << 15

// denseCutoverNum/denseCutoverDen: when the tracked support exceeds
// n·num/den states, support bookkeeping stops paying for itself and
// EvolveInPlace switches to dense gather steps.
const (
	denseCutoverNum = 1
	denseCutoverDen = 4
)

// CSR is a frozen sparse transition matrix holding both the forward
// (row = source) arrays used by support-tracked scatter steps and the
// transposed gather (row = destination) arrays used by the dense and
// parallel matvec paths.
type CSR struct {
	n int

	// Forward scatter form: row i's outgoing edges are
	// colIdx/val[rowPtr[i]:rowPtr[i+1]], sorted by destination.
	rowPtr []int32
	colIdx []int32
	val    []float64

	// Gather (transpose) form: destination d's incoming edges are
	// gatSrc/gatVal[gatPtr[d]:gatPtr[d+1]], sorted by source ascending
	// (see the determinism contract above).
	gatPtr []int32
	gatSrc []int32
	gatVal []float64

	workers int
}

// MemBytes estimates the heap footprint of the frozen matrix: both the
// scatter and gather arrays. Struct and slice-header overhead is ignored.
func (c *CSR) MemBytes() int64 {
	return int64(len(c.rowPtr)+len(c.colIdx)+len(c.gatPtr)+len(c.gatSrc))*4 +
		int64(len(c.val)+len(c.gatVal))*8
}

// Freeze converts the builder matrix into its immutable CSR form.
// Duplicate (from, to) entries — which Sparse.Add already coalesces, so
// none arise in practice — are summed during the sort+compact pass.
// The builder is left untouched and may keep being mutated; the CSR is a
// deep snapshot.
func (m *Sparse) Freeze() *CSR {
	nnz := m.NNZ()
	c := &CSR{
		n:       m.n,
		rowPtr:  make([]int32, m.n+1),
		colIdx:  make([]int32, 0, nnz),
		val:     make([]float64, 0, nnz),
		workers: runtime.GOMAXPROCS(0),
	}
	scratch := make([]edge, 0, 64)
	for i, row := range m.rows {
		scratch = append(scratch[:0], row...)
		slices.SortFunc(scratch, func(a, b edge) int { return a.to - b.to })
		for j := 0; j < len(scratch); {
			to, p := scratch[j].to, scratch[j].p
			for j++; j < len(scratch) && scratch[j].to == to; j++ {
				p += scratch[j].p
			}
			c.colIdx = append(c.colIdx, int32(to))
			c.val = append(c.val, p)
		}
		c.rowPtr[i+1] = int32(len(c.colIdx))
	}
	c.buildGather()
	return c
}

// buildGather derives the transpose arrays from the forward arrays.
// Iterating sources in ascending order fills each destination's incoming
// edge list in ascending-source order for free.
func (c *CSR) buildGather() {
	nnz := len(c.colIdx)
	c.gatPtr = make([]int32, c.n+1)
	c.gatSrc = make([]int32, nnz)
	c.gatVal = make([]float64, nnz)
	for _, to := range c.colIdx {
		c.gatPtr[to+1]++
	}
	for d := 0; d < c.n; d++ {
		c.gatPtr[d+1] += c.gatPtr[d]
	}
	next := make([]int32, c.n)
	copy(next, c.gatPtr[:c.n])
	for from := 0; from < c.n; from++ {
		for k := c.rowPtr[from]; k < c.rowPtr[from+1]; k++ {
			to := c.colIdx[k]
			pos := next[to]
			c.gatSrc[pos] = int32(from)
			c.gatVal[pos] = c.val[k]
			next[to] = pos + 1
		}
	}
}

// Size returns the number of states.
func (c *CSR) Size() int { return c.n }

// NNZ returns the number of stored entries.
func (c *CSR) NNZ() int { return len(c.colIdx) }

// SetWorkers caps the number of goroutines the parallel matvec may use.
// w <= 1 forces the serial path. The default is GOMAXPROCS at Freeze
// time.
func (c *CSR) SetWorkers(w int) {
	if w < 1 {
		w = 1
	}
	c.workers = w
}

// Workers reports the current parallel matvec width.
func (c *CSR) Workers() int { return c.workers }

// Apply advances a distribution one step, allocating the output. It is
// the CSR analogue of Sparse.Apply and bit-identical to it.
func (c *CSR) Apply(d Dist) Dist {
	out := make(Dist, c.n)
	c.ApplyInto(out, d)
	return out
}

// ApplyInto writes one evolution step of src into dst (dst[to] =
// Σ_from src[from]·P[from→to]) without allocating. dst is fully
// overwritten; dst and src must not alias. Shards rows across workers
// when the matrix is large enough.
func (c *CSR) ApplyInto(dst, src Dist) {
	if len(dst) != c.n || len(src) != c.n {
		panic("markov: ApplyInto dimension mismatch")
	}
	if c.workers > 1 && len(c.gatSrc) >= ParallelNNZThreshold {
		c.applyGatherParallel(dst, src)
		return
	}
	c.applyGatherRange(dst, src, 0, c.n)
}

// applyGatherRange computes destinations [lo, hi) by gathering incoming
// edges in ascending-source order.
func (c *CSR) applyGatherRange(dst, src Dist, lo, hi int) {
	for d := lo; d < hi; d++ {
		var acc float64
		for k := c.gatPtr[d]; k < c.gatPtr[d+1]; k++ {
			acc += src[c.gatSrc[k]] * c.gatVal[k]
		}
		dst[d] = acc
	}
}

// applyGatherParallel shards destination rows into contiguous chunks of
// roughly equal stored-entry count and gathers each chunk on its own
// goroutine. Each destination is owned by exactly one worker, so the
// result is deterministic and bit-identical to the serial gather.
func (c *CSR) applyGatherParallel(dst, src Dist) {
	w := c.workers
	nnz := len(c.gatSrc)
	var wg sync.WaitGroup
	lo := 0
	for i := 1; i <= w && lo < c.n; i++ {
		hi := c.n
		if i < w {
			// First row index whose cumulative entry count reaches the
			// i-th share. gatPtr is sorted, so binary search applies.
			target := int32(nnz / w * i)
			hi, _ = slices.BinarySearch(c.gatPtr[1:], target)
			hi++
			if hi <= lo {
				continue
			}
			if hi > c.n {
				hi = c.n
			}
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			c.applyGatherRange(dst, src, lo, hi)
		}(lo, hi)
		lo = hi
	}
	wg.Wait()
}

// Evolve advances a distribution T steps, allocating a fresh workspace
// and output. Prefer EvolveInPlace with a reused Workspace on hot paths.
func (c *CSR) Evolve(d Dist, steps int) Dist {
	out := d.Clone()
	c.EvolveInPlace(NewWorkspace(c.n), out, steps)
	return out
}

// Workspace holds the ping-pong buffers and support bookkeeping for
// EvolveInPlace. A Workspace is not safe for concurrent use; reuse one
// per goroutine. The zero-mass invariant (both buffers all zero between
// calls) is maintained internally.
type Workspace struct {
	n        int
	cur      Dist
	next     Dist
	stamp    []int64
	epoch    int64
	support  []int32
	touched  []int32
	denseCnt int64 // steps executed in dense mode (telemetry/testing)
}

// NewWorkspace returns a workspace for n-state distributions.
func NewWorkspace(n int) *Workspace {
	return &Workspace{
		n:     n,
		cur:   make(Dist, n),
		next:  make(Dist, n),
		stamp: make([]int64, n),
	}
}

// DenseSteps reports how many evolution steps ran in dense-gather mode
// since the workspace was created (the rest ran support-tracked).
func (ws *Workspace) DenseSteps() int64 { return ws.denseCnt }

// EvolveInPlace advances d by steps, overwriting d with the result. It
// performs zero per-step heap allocation once the workspace's support
// slices have warmed up. Sparse (support-tracked scatter) steps are used
// while the distribution's support stays small; once support exceeds a
// quarter of the state space the loop switches to dense gather steps
// (which also engage the parallel matvec on large matrices). All paths
// are bit-identical to Sparse.Evolve.
func (c *CSR) EvolveInPlace(ws *Workspace, d Dist, steps int) {
	if len(d) != c.n {
		panic("markov: EvolveInPlace dimension mismatch")
	}
	if ws == nil {
		ws = NewWorkspace(c.n)
	} else if ws.n != c.n {
		panic("markov: workspace size mismatch")
	}
	if steps <= 0 {
		return
	}
	// Load d into the current buffer, recording its support.
	ws.support = ws.support[:0]
	for i, v := range d {
		if v != 0 {
			ws.cur[i] = v
			ws.support = append(ws.support, int32(i))
		}
	}
	dense := false
	for s := 0; s < steps; s++ {
		if !dense && len(ws.support)*denseCutoverDen >= c.n*denseCutoverNum {
			dense = true
		}
		if dense {
			ws.denseCnt++
			c.ApplyInto(ws.next, ws.cur)
		} else {
			ws.epoch++
			ws.touched = ws.touched[:0]
			for _, from := range ws.support {
				p := ws.cur[from]
				for k := c.rowPtr[from]; k < c.rowPtr[from+1]; k++ {
					to := c.colIdx[k]
					if ws.stamp[to] != ws.epoch {
						ws.stamp[to] = ws.epoch
						ws.touched = append(ws.touched, to)
						ws.next[to] = p * c.val[k]
					} else {
						ws.next[to] += p * c.val[k]
					}
				}
			}
			// Restore the zero invariant on the outgoing buffer and
			// adopt the sorted touched set as the new support, keeping
			// the ascending-source iteration order of the reference.
			for _, i := range ws.support {
				ws.cur[i] = 0
			}
			slices.Sort(ws.touched)
			ws.support, ws.touched = ws.touched, ws.support
		}
		ws.cur, ws.next = ws.next, ws.cur
	}
	copy(d, ws.cur)
	// Re-zero the buffers for the next call. In dense mode the buffers
	// hold arbitrary stale values; in sparse mode only the support
	// entries of cur are live (next was zeroed before the final swap).
	if dense {
		clear(ws.cur)
		clear(ws.next)
	} else {
		for _, i := range ws.support {
			ws.cur[i] = 0
		}
	}
	ws.support = ws.support[:0]
}
