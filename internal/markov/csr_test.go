package markov

import (
	"math"
	"math/rand"
	"testing"
)

// randomChain builds a random row-stochastic Sparse with out-degree up
// to deg, plus a random initial distribution with small support.
func randomChain(t *testing.T, n, deg, supp int, seed int64) (*Sparse, Dist) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	m := NewSparse(n)
	for i := 0; i < n; i++ {
		k := 1 + r.Intn(deg)
		for j := 0; j < k; j++ {
			m.Add(i, r.Intn(n), r.Float64())
		}
	}
	m.NormalizeRows()
	d := make(Dist, n)
	for j := 0; j < supp; j++ {
		d[r.Intn(n)] += r.Float64()
	}
	d.Normalize()
	return m, d
}

func distsEqualBits(a, b Dist) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func TestCSRApplyMatchesSparseBitwise(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		m, d := randomChain(t, 257, 9, 6, seed)
		c := m.Freeze()
		if c.NNZ() != m.NNZ() {
			t.Fatalf("seed %d: NNZ mismatch: csr %d sparse %d", seed, c.NNZ(), m.NNZ())
		}
		want := m.Apply(d)
		got := c.Apply(d)
		if !distsEqualBits(want, got) {
			t.Fatalf("seed %d: CSR.Apply differs from Sparse.Apply", seed)
		}
		dst := make(Dist, c.Size())
		c.ApplyInto(dst, d)
		if !distsEqualBits(want, dst) {
			t.Fatalf("seed %d: ApplyInto differs from Sparse.Apply", seed)
		}
	}
}

func TestCSRParallelApplyBitIdentical(t *testing.T) {
	old := ParallelNNZThreshold
	ParallelNNZThreshold = 1 // force the sharded path
	defer func() { ParallelNNZThreshold = old }()

	m, d := randomChain(t, 501, 11, 20, 42)
	c := m.Freeze()
	want := m.Apply(d)
	for _, w := range []int{1, 2, 3, 7, 16, 64, 501, 1000} {
		c.SetWorkers(w)
		got := make(Dist, c.Size())
		c.ApplyInto(got, d)
		if !distsEqualBits(want, got) {
			t.Fatalf("workers=%d: parallel gather differs from reference", w)
		}
	}
}

func TestCSREvolveInPlaceBitIdentical(t *testing.T) {
	for _, steps := range []int{0, 1, 2, 17, 300} {
		m, d := randomChain(t, 311, 7, 3, int64(steps)+9)
		c := m.Freeze()
		want := m.Evolve(d, steps)
		ws := NewWorkspace(c.Size())
		got := d.Clone()
		c.EvolveInPlace(ws, got, steps)
		if !distsEqualBits(want, got) {
			t.Fatalf("steps=%d: EvolveInPlace differs from Sparse.Evolve", steps)
		}
		// Workspace reuse: a second run from the same input must agree,
		// proving the zero-buffer invariant was restored.
		got2 := d.Clone()
		c.EvolveInPlace(ws, got2, steps)
		if !distsEqualBits(want, got2) {
			t.Fatalf("steps=%d: workspace reuse broke determinism", steps)
		}
		if conv := c.Evolve(d, steps); !distsEqualBits(want, conv) {
			t.Fatalf("steps=%d: CSR.Evolve convenience path differs", steps)
		}
	}
}

func TestCSREvolveDenseCutover(t *testing.T) {
	// A strongly-connected dense-ish chain spreads mass everywhere, so
	// the workspace must cross into dense mode and still agree bitwise.
	m, d := randomChain(t, 97, 24, 1, 7)
	c := m.Freeze()
	want := m.Evolve(d, 40)
	ws := NewWorkspace(c.Size())
	got := d.Clone()
	c.EvolveInPlace(ws, got, 40)
	if ws.DenseSteps() == 0 {
		t.Fatalf("expected dense cutover on a dense chain")
	}
	if !distsEqualBits(want, got) {
		t.Fatalf("dense-mode evolve differs from reference")
	}
	// And the workspace must still be clean for a sparse follow-up.
	m2, d2 := randomChain(t, 97, 3, 2, 8)
	c2 := m2.Freeze()
	want2 := m2.Evolve(d2, 25)
	got2 := d2.Clone()
	c2.EvolveInPlace(ws, got2, 25)
	if !distsEqualBits(want2, got2) {
		t.Fatalf("workspace dirty after dense-mode run")
	}
}

func TestCSREvolveInPlaceZeroAlloc(t *testing.T) {
	m, d := randomChain(t, 400, 6, 4, 11)
	c := m.Freeze()
	ws := NewWorkspace(c.Size())
	buf := d.Clone()
	c.EvolveInPlace(ws, buf, 50) // warm the support slices
	copy(buf, d)
	allocs := testing.AllocsPerRun(10, func() {
		copy(buf, d)
		c.EvolveInPlace(ws, buf, 50)
	})
	if allocs > 0 {
		t.Fatalf("EvolveInPlace allocated %.1f objects/run, want 0", allocs)
	}
}

func TestSparseAddIndexedDuplicates(t *testing.T) {
	// Dense-row build: many duplicate destinations must still coalesce
	// exactly as the linear-scan implementation did.
	n := 64
	m := NewSparse(n)
	ref := make([]float64, n)
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 4000; i++ {
		to := r.Intn(n)
		p := r.Float64()
		m.Add(0, to, p)
		ref[to] += p
	}
	tos, ps := m.Row(0)
	seen := map[int]bool{}
	for i, to := range tos {
		if seen[to] {
			t.Fatalf("duplicate destination %d survived Add", to)
		}
		seen[to] = true
		if math.Abs(ps[i]-ref[to]) > 1e-12 {
			t.Fatalf("dest %d: got %v want %v", to, ps[i], ref[to])
		}
	}
	for to, want := range ref {
		if want != 0 && !seen[to] {
			t.Fatalf("destination %d missing", to)
		}
	}
}

func TestFreezeCompactsDuplicateEntries(t *testing.T) {
	// Freeze must sort rows by destination and keep stochasticity.
	m := NewSparse(5)
	m.Add(0, 3, 0.25)
	m.Add(0, 1, 0.5)
	m.Add(0, 3, 0.25)
	m.Add(2, 4, 1)
	c := m.Freeze()
	if c.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", c.NNZ())
	}
	d := PointDist(5, 0)
	out := c.Apply(d)
	if out[1] != 0.5 || out[3] != 0.5 {
		t.Fatalf("Apply after compact: got %v", out)
	}
}

func BenchmarkCSREvolveInPlace(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	n := 2510
	m := NewSparse(n)
	for i := 0; i < n; i++ {
		k := 1 + r.Intn(15)
		for j := 0; j < k; j++ {
			m.Add(i, r.Intn(n), r.Float64())
		}
	}
	m.NormalizeRows()
	c := m.Freeze()
	d := PointDist(n, 0)
	ws := NewWorkspace(n)
	buf := d.Clone()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, d)
		c.EvolveInPlace(ws, buf, 100)
	}
}
