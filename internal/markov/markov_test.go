package markov

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestDistBasics(t *testing.T) {
	d := PointDist(3, 1)
	if d.Sum() != 1 || d[1] != 1 {
		t.Fatalf("point dist = %v", d)
	}
	c := d.Clone()
	c[0] = 5
	if d[0] != 0 {
		t.Fatal("clone aliased")
	}
	u := Dist{2, 2}
	if got := u.Normalize(); got != 4 {
		t.Fatalf("normalize returned %v", got)
	}
	if u[0] != 0.5 || u[1] != 0.5 {
		t.Fatalf("normalized = %v", u)
	}
	var zero Dist = []float64{0, 0}
	if zero.Normalize() != 0 {
		t.Fatal("zero-mass normalize")
	}
}

func TestMassWhere(t *testing.T) {
	d := Dist{0.2, 0.3, 0.5}
	if got := d.MassWhere(func(i int) bool { return i > 0 }); math.Abs(got-0.8) > 1e-15 {
		t.Fatalf("mass = %v", got)
	}
}

func twoState() *Sparse {
	m := NewSparse(2)
	m.Add(0, 0, 0.9)
	m.Add(0, 1, 0.1)
	m.Add(1, 0, 0.5)
	m.Add(1, 1, 0.5)
	return m
}

func TestSparseApply(t *testing.T) {
	m := twoState()
	d := m.Apply(PointDist(2, 0))
	if math.Abs(d[0]-0.9) > 1e-15 || math.Abs(d[1]-0.1) > 1e-15 {
		t.Fatalf("apply = %v", d)
	}
	if err := m.CheckStochastic(1e-12); err != nil {
		t.Fatal(err)
	}
}

func TestSparseAddAccumulates(t *testing.T) {
	m := NewSparse(1)
	m.Add(0, 0, 0.25)
	m.Add(0, 0, 0.75)
	m.Add(0, 0, 0) // no-op
	if m.NNZ() != 1 {
		t.Fatalf("nnz = %d", m.NNZ())
	}
	if s := m.RowSum(0); s != 1 {
		t.Fatalf("rowsum = %v", s)
	}
	tos, ps := m.Row(0)
	if len(tos) != 1 || tos[0] != 0 || ps[0] != 1 {
		t.Fatalf("row = %v %v", tos, ps)
	}
}

func TestEvolveConvergesToStationary(t *testing.T) {
	m := twoState()
	// Stationary distribution of [[.9,.1],[.5,.5]] is (5/6, 1/6).
	d := m.Evolve(PointDist(2, 1), 200)
	if math.Abs(d[0]-5.0/6) > 1e-9 || math.Abs(d[1]-1.0/6) > 1e-9 {
		t.Fatalf("stationary = %v", d)
	}
}

func TestEvolvePreservesMass(t *testing.T) {
	f := func(a, b, steps uint8) bool {
		pa := float64(a%100) / 100
		pb := float64(b%100) / 100
		m := NewSparse(2)
		m.Add(0, 0, pa)
		m.Add(0, 1, 1-pa)
		m.Add(1, 0, pb)
		m.Add(1, 1, 1-pb)
		d := m.Evolve(Dist{0.3, 0.7}, int(steps%50))
		return math.Abs(d.Sum()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeRows(t *testing.T) {
	m := NewSparse(2)
	m.Add(0, 0, 3)
	m.Add(0, 1, 1)
	m.NormalizeRows()
	if err := m.CheckStochastic(1e-12); err != nil {
		t.Fatal(err)
	}
	_, ps := m.Row(0)
	if ps[0] != 0.75 || ps[1] != 0.25 {
		t.Fatalf("row = %v", ps)
	}
}

func TestCheckStochasticFails(t *testing.T) {
	m := NewSparse(1)
	m.Add(0, 0, 0.5)
	if err := m.CheckStochastic(1e-6); err == nil {
		t.Fatal("substochastic row passed check")
	}
}

func TestExplore(t *testing.T) {
	// Random walk on 0..4 with absorbing ends.
	next := func(s int) []Transition[int] {
		if s == 0 || s == 4 {
			return []Transition[int]{{To: s, P: 1}}
		}
		return []Transition[int]{{To: s - 1, P: 0.5}, {To: s + 1, P: 0.5}}
	}
	res, err := Explore(2, next, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.States) != 5 {
		t.Fatalf("states = %v", res.States)
	}
	if err := res.Matrix.CheckStochastic(1e-12); err != nil {
		t.Fatal(err)
	}
	// Absorption probability from the middle is 1/2 each.
	d := res.Matrix.Evolve(PointDist(5, res.Index[2]), 500)
	if math.Abs(d[res.Index[0]]-0.5) > 1e-9 || math.Abs(d[res.Index[4]]-0.5) > 1e-9 {
		t.Fatalf("absorption = %v", d)
	}
}

func TestExploreLimit(t *testing.T) {
	next := func(s int) []Transition[int] {
		return []Transition[int]{{To: s + 1, P: 1}}
	}
	_, err := Explore(0, next, 10)
	var tooBig *ErrStateSpaceTooLarge
	if !errors.As(err, &tooBig) {
		t.Fatalf("err = %v", err)
	}
	if tooBig.Limit != 10 || tooBig.Error() == "" {
		t.Fatalf("bad error: %+v", tooBig)
	}
}
