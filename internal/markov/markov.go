// Package markov provides the discrete-time Markov-chain machinery shared
// by the paper's basic and compact switch models: dense distributions,
// sparse transition matrices, distribution evolution (Eqn 8 of the paper,
// I_T = Aᵀ I_0), and a reachable-state explorer.
package markov

import (
	"fmt"
	"math"
)

// Dist is a probability distribution over states indexed 0..n-1.
type Dist []float64

// PointDist returns a distribution of size n with all mass on state i.
func PointDist(n, i int) Dist {
	d := make(Dist, n)
	d[i] = 1
	return d
}

// Clone returns an independent copy.
func (d Dist) Clone() Dist {
	out := make(Dist, len(d))
	copy(out, d)
	return out
}

// Sum returns the total mass (1 for a proper distribution; < 1 for the
// substochastic joints used in target conditioning).
func (d Dist) Sum() float64 {
	var s float64
	for _, v := range d {
		s += v
	}
	return s
}

// Normalize scales d to unit mass in place and returns the prior mass.
// A zero-mass distribution is left unchanged.
func (d Dist) Normalize() float64 {
	s := d.Sum()
	if s <= 0 {
		return s
	}
	for i := range d {
		d[i] /= s
	}
	return s
}

// MassWhere returns the total probability of states satisfying pred.
func (d Dist) MassWhere(pred func(state int) bool) float64 {
	var s float64
	for i, v := range d {
		if v != 0 && pred(i) {
			s += v
		}
	}
	return s
}

// edge is one sparse matrix entry.
type edge struct {
	to int
	p  float64
}

// Sparse is a sparse transition matrix in row-major (from-state) form.
type Sparse struct {
	n    int
	rows [][]edge
	// idx[from] maps destination → position in rows[from]. Built lazily
	// once a row grows past addIndexThreshold so that Add stays O(1)
	// amortized instead of the former O(row) duplicate scan (which made
	// dense-row construction quadratic).
	idx []map[int]int
}

// addIndexThreshold is the row length above which Add switches from a
// short linear scan (cache-friendly for the typical few-entry row) to a
// per-row destination index.
const addIndexThreshold = 12

// NewSparse returns an n×n zero matrix.
func NewSparse(n int) *Sparse {
	return &Sparse{n: n, rows: make([][]edge, n)}
}

// Size returns the number of states.
func (m *Sparse) Size() int { return m.n }

// Add accumulates probability p onto the (from, to) entry.
func (m *Sparse) Add(from, to int, p float64) {
	if p == 0 {
		return
	}
	row := m.rows[from]
	if m.idx != nil && m.idx[from] != nil {
		ix := m.idx[from]
		if i, ok := ix[to]; ok {
			row[i].p += p
			return
		}
		ix[to] = len(row)
		m.rows[from] = append(row, edge{to: to, p: p})
		return
	}
	for i := range row {
		if row[i].to == to {
			row[i].p += p
			return
		}
	}
	m.rows[from] = append(row, edge{to: to, p: p})
	if len(row)+1 > addIndexThreshold {
		m.buildRowIndex(from)
	}
}

// buildRowIndex promotes a row to indexed duplicate detection.
func (m *Sparse) buildRowIndex(from int) {
	if m.idx == nil {
		m.idx = make([]map[int]int, m.n)
	}
	ix := make(map[int]int, 2*len(m.rows[from]))
	for i, e := range m.rows[from] {
		ix[e.to] = i
	}
	m.idx[from] = ix
}

// Row returns the (to, p) pairs of a row as parallel slices.
func (m *Sparse) Row(from int) (tos []int, ps []float64) {
	row := m.rows[from]
	tos = make([]int, len(row))
	ps = make([]float64, len(row))
	for i, e := range row {
		tos[i], ps[i] = e.to, e.p
	}
	return tos, ps
}

// RowSum returns the total outgoing probability of a row.
func (m *Sparse) RowSum(from int) float64 {
	var s float64
	for _, e := range m.rows[from] {
		s += e.p
	}
	return s
}

// NormalizeRows scales every non-empty row to sum to one, the
// normalization step of §IV-A1.
func (m *Sparse) NormalizeRows() {
	for _, row := range m.rows {
		var s float64
		for _, e := range row {
			s += e.p
		}
		if s <= 0 {
			continue
		}
		for i := range row {
			row[i].p /= s
		}
	}
}

// CheckStochastic returns an error if any non-empty row's sum deviates
// from 1 by more than tol.
func (m *Sparse) CheckStochastic(tol float64) error {
	for i, row := range m.rows {
		if len(row) == 0 {
			continue
		}
		if s := m.RowSum(i); math.Abs(s-1) > tol {
			return fmt.Errorf("markov: row %d sums to %v", i, s)
		}
	}
	return nil
}

// NNZ returns the number of stored entries.
func (m *Sparse) NNZ() int {
	n := 0
	for _, row := range m.rows {
		n += len(row)
	}
	return n
}

// Apply advances a distribution one step: out[to] = Σ_from d[from]·P[from→to].
func (m *Sparse) Apply(d Dist) Dist {
	out := make(Dist, m.n)
	for from, p := range d {
		if p == 0 {
			continue
		}
		for _, e := range m.rows[from] {
			out[e.to] += p * e.p
		}
	}
	return out
}

// Evolve advances a distribution T steps (Eqn 8: I_T = Aᵀ I_0).
func (m *Sparse) Evolve(d Dist, steps int) Dist {
	cur := d.Clone()
	for i := 0; i < steps; i++ {
		cur = m.Apply(cur)
	}
	return cur
}

// Transition is one outgoing edge produced by a state-transition function.
type Transition[K comparable] struct {
	To K
	P  float64
}

// ExploreResult is the output of Explore: a state index assignment and the
// sparse transition matrix over the reachable states.
type ExploreResult[K comparable] struct {
	States []K       // index → state key
	Index  map[K]int // state key → index
	Matrix *Sparse   // transition probabilities over indices
}

// ErrStateSpaceTooLarge is returned when exploration exceeds its budget.
type ErrStateSpaceTooLarge struct {
	Limit int
}

// Error implements the error interface.
func (e *ErrStateSpaceTooLarge) Error() string {
	return fmt.Sprintf("markov: reachable state space exceeds limit %d", e.Limit)
}

// Explore breadth-first enumerates the states reachable from seed under
// next and assembles the transition matrix. next must be deterministic.
// maxStates bounds the exploration (the basic model's state space grows as
// §IV-A2 describes); exceeding it returns ErrStateSpaceTooLarge.
func Explore[K comparable](seed K, next func(K) []Transition[K], maxStates int) (*ExploreResult[K], error) {
	res := &ExploreResult[K]{Index: map[K]int{seed: 0}, States: []K{seed}}
	type rowEdges struct {
		from  int
		edges []Transition[K]
	}
	var pending []rowEdges
	for i := 0; i < len(res.States); i++ {
		out := next(res.States[i])
		for _, tr := range out {
			if _, ok := res.Index[tr.To]; !ok {
				if len(res.States) >= maxStates {
					return nil, &ErrStateSpaceTooLarge{Limit: maxStates}
				}
				res.Index[tr.To] = len(res.States)
				res.States = append(res.States, tr.To)
			}
		}
		pending = append(pending, rowEdges{from: i, edges: out})
	}
	res.Matrix = NewSparse(len(res.States))
	for _, row := range pending {
		for _, tr := range row.edges {
			res.Matrix.Add(row.from, res.Index[tr.To], tr.P)
		}
	}
	return res, nil
}
