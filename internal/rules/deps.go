package rules

import "flowrecon/internal/flows"

// Dependency analysis over a rule set. These helpers formalize the probe
// reasoning of §III-B: which flows install which rules, which rules can
// shadow others, and which probes disambiguate overlapping rules.

// Installers returns, for each rule ID, the set of flows whose table miss
// installs that rule — i.e. the flows for which the rule is the
// highest-priority cover. A rule with an empty installer set can never
// enter the switch reactively (it is fully shadowed).
func Installers(s *Set) []flows.Set {
	out := make([]flows.Set, s.Len())
	for i := range out {
		out[i] = flows.NewSet(0)
	}
	s.CoveredFlows().ForEach(func(f flows.ID) {
		if id, ok := s.HighestCovering(f); ok {
			out[id].Add(f)
		}
	})
	return out
}

// Shadowed returns the IDs of rules that no flow installs: every flow they
// cover is covered by a higher-priority rule.
func Shadowed(s *Set) []int {
	inst := Installers(s)
	var out []int
	for id, fs := range inst {
		if fs.Empty() {
			out = append(out, id)
		}
	}
	return out
}

// OverlapGraph returns the adjacency structure of rule overlap:
// graph[a] lists every rule b ≠ a with rule_a ∩ rule_b ≠ ∅.
func OverlapGraph(s *Set) [][]int {
	g := make([][]int, s.Len())
	for a := 0; a < s.Len(); a++ {
		for b := a + 1; b < s.Len(); b++ {
			if s.Rule(a).Cover.Overlaps(s.Rule(b).Cover) {
				g[a] = append(g[a], b)
				g[b] = append(g[b], a)
			}
		}
	}
	return g
}

// UniqueWitnesses returns, for each rule, the flows that install that rule
// and no other — the Figure 2c insight: probing such a flow and observing a
// hit certifies that exactly this rule is cached (assuming no other flow
// could have installed it). A flow f is a unique witness of rule_j if
// rule_j is f's highest-priority cover and f is covered by no other rule.
func UniqueWitnesses(s *Set) []flows.Set {
	inst := Installers(s)
	out := make([]flows.Set, s.Len())
	for j := range out {
		out[j] = flows.NewSet(0)
		inst[j].ForEach(func(f flows.ID) {
			covering := s.Covering(f)
			if len(covering) == 1 && covering[0] == j {
				out[j].Add(f)
			}
		})
	}
	return out
}

// NumCovering returns how many rules cover flow f — the x-axis of the
// paper's Figure 7a for the target flow.
func NumCovering(s *Set, f flows.ID) int {
	return len(s.Covering(f))
}
