package rules

import (
	"fmt"
	"strings"

	"flowrecon/internal/flows"
	"flowrecon/internal/stats"
)

// TernaryMask is a TCAM-style match over the low bits of a flow's source
// address: each bit is 0, 1, or wildcard. The paper's evaluation universe
// of 16 contiguous hosts admits 3⁴ = 81 such rules ("81 possible rules
// (involving up to 4-bit masks)", §VI-A).
type TernaryMask struct {
	Bits  int    // number of address bits matched (4 for 16 hosts)
	Value uint32 // required values on the cared-about bits
	Care  uint32 // 1 = bit must equal Value's bit, 0 = wildcard
}

// Matches reports whether host index h matches the mask.
func (m TernaryMask) Matches(h uint32) bool {
	return (h^m.Value)&m.Care == 0
}

// String renders the mask as a bit pattern, e.g. "1*0*".
func (m TernaryMask) String() string {
	var b strings.Builder
	for i := m.Bits - 1; i >= 0; i-- {
		switch {
		case m.Care&(1<<uint(i)) == 0:
			b.WriteByte('*')
		case m.Value&(1<<uint(i)) != 0:
			b.WriteByte('1')
		default:
			b.WriteByte('0')
		}
	}
	return b.String()
}

// AllTernaryMasks enumerates every ternary mask over `bits` address bits.
// For bits=4 this yields the paper's 81 candidate rules.
func AllTernaryMasks(bits int) []TernaryMask {
	var out []TernaryMask
	var rec func(i int, m TernaryMask)
	rec = func(i int, m TernaryMask) {
		if i == bits {
			out = append(out, m)
			return
		}
		rec(i+1, m) // wildcard at bit i
		m1 := m
		m1.Care |= 1 << uint(i)
		rec(i+1, m1) // bit i = 0
		m1.Value |= 1 << uint(i)
		rec(i+1, m1) // bit i = 1
	}
	rec(0, TernaryMask{Bits: bits})
	return out
}

// CoverOf returns the flow set a mask covers in a universe of nhosts flows
// indexed by host number.
func (m TernaryMask) CoverOf(nhosts int) flows.Set {
	s := flows.NewSet(nhosts)
	for h := 0; h < nhosts; h++ {
		if m.Matches(uint32(h)) {
			s.Add(flows.ID(h))
		}
	}
	return s
}

// GenerateConfig describes how to sample a random rule set the way the
// paper's evaluation does (§VI-A).
type GenerateConfig struct {
	NumFlows  int     // flow universe size (16 in the paper)
	NumRules  int     // rules to draw (|Rules| = 12)
	MaskBits  int     // address bits subject to wildcarding (4)
	Timeouts  []int   // candidate timeouts in steps, drawn uniformly
	HardRatio float64 // fraction of rules given hard timeouts (0 in the paper)
}

// DefaultGenerateConfig returns the paper's evaluation parameters for a
// model step of delta seconds: timeouts t_j drawn uniformly from
// {⌈1/(10Δ)⌉, ⌈2/(10Δ)⌉, …, ⌈1/Δ⌉}.
func DefaultGenerateConfig(delta float64) GenerateConfig {
	ts := make([]int, 10)
	for k := 1; k <= 10; k++ {
		ts[k-1] = ceilDiv(float64(k), 10*delta)
	}
	return GenerateConfig{
		NumFlows: 16,
		NumRules: 12,
		MaskBits: 4,
		Timeouts: ts,
	}
}

func ceilDiv(num, den float64) int {
	v := num / den
	n := int(v)
	if float64(n) < v {
		n++
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Generate samples a random rule set per cfg: NumRules distinct masks drawn
// uniformly from the 3^MaskBits candidates (discarding masks that cover no
// registered flow), distinct random priorities, and timeouts drawn
// uniformly from cfg.Timeouts.
func Generate(cfg GenerateConfig, rng *stats.RNG) (*Set, error) {
	if len(cfg.Timeouts) == 0 {
		return nil, fmt.Errorf("rules: no candidate timeouts")
	}
	masks := AllTernaryMasks(cfg.MaskBits)
	// Shuffle candidates and take the first NumRules with non-empty cover.
	rng.Shuffle(len(masks), func(i, j int) { masks[i], masks[j] = masks[j], masks[i] })
	chosen := make([]TernaryMask, 0, cfg.NumRules)
	for _, m := range masks {
		if len(chosen) == cfg.NumRules {
			break
		}
		if !m.CoverOf(cfg.NumFlows).Empty() {
			chosen = append(chosen, m)
		}
	}
	if len(chosen) < cfg.NumRules {
		return nil, fmt.Errorf("rules: only %d non-empty masks available, need %d", len(chosen), cfg.NumRules)
	}
	prios := rng.Perm(cfg.NumRules)
	rs := make([]Rule, cfg.NumRules)
	for i, m := range chosen {
		kind := IdleTimeout
		if rng.Float64() < cfg.HardRatio {
			kind = HardTimeout
		}
		rs[i] = Rule{
			Name:     m.String(),
			Cover:    m.CoverOf(cfg.NumFlows),
			Priority: prios[i] + 1,
			Timeout:  cfg.Timeouts[rng.Intn(len(cfg.Timeouts))],
			Kind:     kind,
		}
	}
	return NewSet(rs)
}
