package rules

import (
	"errors"
	"testing"
	"testing/quick"

	"flowrecon/internal/flows"
	"flowrecon/internal/stats"
)

// fig2b builds the rule set of the paper's Figure 2b: rule1 covers f1,
// rule2 covers {f1, f2}, rule1 > rule2.
func fig2b(t *testing.T) *Set {
	t.Helper()
	s, err := NewSet([]Rule{
		{Name: "rule1", Cover: flows.SetOf(0), Priority: 2, Timeout: 5},
		{Name: "rule2", Cover: flows.SetOf(0, 1), Priority: 1, Timeout: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// fig2c builds Figure 2c: rule1 covers {f1, f2}, rule2 covers {f1, f3},
// rule1 > rule2.
func fig2c(t *testing.T) *Set {
	t.Helper()
	s, err := NewSet([]Rule{
		{Name: "rule1", Cover: flows.SetOf(0, 1), Priority: 2, Timeout: 5},
		{Name: "rule2", Cover: flows.SetOf(0, 2), Priority: 1, Timeout: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSetValidation(t *testing.T) {
	_, err := NewSet([]Rule{
		{Cover: flows.SetOf(0), Priority: 1, Timeout: 5},
		{Cover: flows.SetOf(0), Priority: 1, Timeout: 5},
	})
	if !errors.Is(err, ErrDuplicatePriority) {
		t.Fatalf("overlap with equal priority: err = %v", err)
	}
	// Disjoint rules may share a priority.
	if _, err := NewSet([]Rule{
		{Cover: flows.SetOf(0), Priority: 1, Timeout: 5},
		{Cover: flows.SetOf(1), Priority: 1, Timeout: 5},
	}); err != nil {
		t.Fatalf("disjoint equal priority: err = %v", err)
	}
	if _, err := NewSet([]Rule{{Cover: flows.SetOf(0), Priority: 1, Timeout: 0}}); !errors.Is(err, ErrBadTimeout) {
		t.Fatalf("zero timeout: err = %v", err)
	}
	if _, err := NewSet([]Rule{{Cover: flows.NewSet(4), Priority: 1, Timeout: 3}}); !errors.Is(err, ErrEmptyCover) {
		t.Fatalf("empty cover: err = %v", err)
	}
}

func TestNewSetDefaultsKindAndIDs(t *testing.T) {
	s, err := NewSet([]Rule{
		{ID: 99, Cover: flows.SetOf(0), Priority: 1, Timeout: 5},
		{ID: 99, Cover: flows.SetOf(1), Priority: 2, Timeout: 5, Kind: HardTimeout},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Rule(0).ID != 0 || s.Rule(1).ID != 1 {
		t.Fatal("IDs not reassigned")
	}
	if s.Rule(0).Kind != IdleTimeout || s.Rule(1).Kind != HardTimeout {
		t.Fatal("timeout kinds wrong")
	}
}

func TestHighestCovering(t *testing.T) {
	s := fig2b(t)
	if id, ok := s.HighestCovering(0); !ok || id != 0 {
		t.Fatalf("f1 → rule %d, %v", id, ok)
	}
	if id, ok := s.HighestCovering(1); !ok || id != 1 {
		t.Fatalf("f2 → rule %d, %v", id, ok)
	}
	if _, ok := s.HighestCovering(9); ok {
		t.Fatal("uncovered flow matched")
	}
}

func TestCoveringOrder(t *testing.T) {
	s := fig2b(t)
	cov := s.Covering(0)
	if len(cov) != 2 || cov[0] != 0 || cov[1] != 1 {
		t.Fatalf("covering(f1) = %v", cov)
	}
}

func TestMatchIn(t *testing.T) {
	s := fig2b(t)
	cachedOnly1 := func(id int) bool { return id == 1 }
	if id, ok := s.MatchIn(0, cachedOnly1); !ok || id != 1 {
		t.Fatalf("match f1 with only rule2 cached → %d, %v", id, ok)
	}
	none := func(int) bool { return false }
	if _, ok := s.MatchIn(0, none); ok {
		t.Fatal("match in empty cache")
	}
}

func TestHigherPriority(t *testing.T) {
	s := fig2b(t)
	if !s.HigherPriority(0, 1) || s.HigherPriority(1, 0) {
		t.Fatal("priority order wrong")
	}
}

func TestCoveredFlowsAndMaxTimeout(t *testing.T) {
	s := fig2c(t)
	if cf := s.CoveredFlows(); !cf.Equal(flows.SetOf(0, 1, 2)) {
		t.Fatalf("covered = %v", cf)
	}
	if s.MaxTimeout() != 5 {
		t.Fatalf("max timeout = %d", s.MaxTimeout())
	}
}

func TestInstallersFig2c(t *testing.T) {
	s := fig2c(t)
	inst := Installers(s)
	// f1, f2 install rule1 (its priority wins for f1); f3 installs rule2.
	if !inst[0].Equal(flows.SetOf(0, 1)) {
		t.Fatalf("installers(rule1) = %v", inst[0])
	}
	if !inst[1].Equal(flows.SetOf(2)) {
		t.Fatalf("installers(rule2) = %v", inst[1])
	}
}

func TestUniqueWitnessesFig2c(t *testing.T) {
	s := fig2c(t)
	w := UniqueWitnesses(s)
	// The Figure 2c argument: f2 uniquely witnesses rule1; f3 uniquely
	// witnesses rule2; f1 witnesses neither (covered by both).
	if !w[0].Equal(flows.SetOf(1)) {
		t.Fatalf("witness(rule1) = %v", w[0])
	}
	if !w[1].Equal(flows.SetOf(2)) {
		t.Fatalf("witness(rule2) = %v", w[1])
	}
}

func TestShadowed(t *testing.T) {
	s, err := NewSet([]Rule{
		{Name: "wide", Cover: flows.SetOf(0, 1), Priority: 2, Timeout: 5},
		{Name: "narrow", Cover: flows.SetOf(0), Priority: 1, Timeout: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	sh := Shadowed(s)
	if len(sh) != 1 || sh[0] != 1 {
		t.Fatalf("shadowed = %v", sh)
	}
}

func TestOverlapGraph(t *testing.T) {
	s := fig2c(t)
	g := OverlapGraph(s)
	if len(g[0]) != 1 || g[0][0] != 1 || len(g[1]) != 1 || g[1][0] != 0 {
		t.Fatalf("graph = %v", g)
	}
}

func TestNumCovering(t *testing.T) {
	s := fig2c(t)
	if NumCovering(s, 0) != 2 || NumCovering(s, 1) != 1 || NumCovering(s, 9) != 0 {
		t.Fatal("NumCovering wrong")
	}
}

func TestAllTernaryMasks(t *testing.T) {
	masks := AllTernaryMasks(4)
	if len(masks) != 81 {
		t.Fatalf("got %d masks, paper says 81", len(masks))
	}
	seen := map[string]bool{}
	for _, m := range masks {
		s := m.String()
		if seen[s] {
			t.Fatalf("duplicate mask %s", s)
		}
		seen[s] = true
		if len(s) != 4 {
			t.Fatalf("mask string %q", s)
		}
	}
}

func TestTernaryMaskCover(t *testing.T) {
	m := TernaryMask{Bits: 4, Value: 0b1000, Care: 0b1000} // "1***"
	cover := m.CoverOf(16)
	if cover.Len() != 8 {
		t.Fatalf("1*** covers %d hosts", cover.Len())
	}
	for h := 8; h < 16; h++ {
		if !cover.Contains(flows.ID(h)) {
			t.Fatalf("1*** misses host %d", h)
		}
	}
	full := TernaryMask{Bits: 4} // "****"
	if full.CoverOf(16).Len() != 16 {
		t.Fatal("**** should cover all")
	}
	exact := TernaryMask{Bits: 4, Value: 5, Care: 0xF}
	if c := exact.CoverOf(16); c.Len() != 1 || !c.Contains(5) {
		t.Fatalf("0101 covers %v", c)
	}
}

func TestTernaryMaskCoverSizesPowerOfTwo(t *testing.T) {
	f := func(value, care uint8) bool {
		m := TernaryMask{Bits: 4, Value: uint32(value & 0xF), Care: uint32(care & 0xF)}
		n := m.CoverOf(16).Len()
		// Cover size = 2^(#wildcard bits).
		wild := 0
		for i := 0; i < 4; i++ {
			if m.Care&(1<<uint(i)) == 0 {
				wild++
			}
		}
		return n == 1<<uint(wild)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultGenerateConfig(t *testing.T) {
	cfg := DefaultGenerateConfig(0.1)
	want := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if len(cfg.Timeouts) != 10 {
		t.Fatalf("timeouts = %v", cfg.Timeouts)
	}
	for i := range want {
		if cfg.Timeouts[i] != want[i] {
			t.Fatalf("timeouts = %v, want %v", cfg.Timeouts, want)
		}
	}
	if cfg.NumFlows != 16 || cfg.NumRules != 12 || cfg.MaskBits != 4 {
		t.Fatalf("cfg = %+v", cfg)
	}
}

func TestGenerate(t *testing.T) {
	rng := stats.NewRNG(1)
	cfg := DefaultGenerateConfig(0.1)
	s, err := Generate(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 12 {
		t.Fatalf("len = %d", s.Len())
	}
	prios := map[int]bool{}
	for _, r := range s.Rules() {
		if r.Cover.Empty() {
			t.Fatalf("empty cover: %s", r)
		}
		if prios[r.Priority] {
			t.Fatalf("duplicate priority %d", r.Priority)
		}
		prios[r.Priority] = true
		if r.Timeout < 1 || r.Timeout > 10 {
			t.Fatalf("timeout out of range: %s", r)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultGenerateConfig(0.1)
	a, err := Generate(cfg, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.Len(); i++ {
		ra, rb := a.Rule(i), b.Rule(i)
		if ra.Name != rb.Name || ra.Priority != rb.Priority || ra.Timeout != rb.Timeout {
			t.Fatalf("rule %d differs: %s vs %s", i, ra, rb)
		}
	}
}

func TestGenerateTooManyRules(t *testing.T) {
	cfg := DefaultGenerateConfig(0.1)
	cfg.NumRules = 100 // only 81 masks exist
	if _, err := Generate(cfg, stats.NewRNG(1)); err == nil {
		t.Fatal("expected error for too many rules")
	}
	cfg.NumRules = 12
	cfg.Timeouts = nil
	if _, err := Generate(cfg, stats.NewRNG(1)); err == nil {
		t.Fatal("expected error for no timeouts")
	}
}

func TestTimeoutKindString(t *testing.T) {
	if IdleTimeout.String() != "idle" || HardTimeout.String() != "hard" {
		t.Fatal("kind names")
	}
	if TimeoutKind(9).String() == "" {
		t.Fatal("unknown kind name empty")
	}
}
