// Package rules implements the paper's rule abstraction: a rule is the set
// of flow identifiers it covers (§IV), plus a priority that totally orders
// rules, a timeout duration (in model steps), and a timeout kind (idle or
// hard, per OpenFlow).
package rules

import (
	"errors"
	"fmt"
	"sort"

	"flowrecon/internal/flows"
)

// TimeoutKind distinguishes OpenFlow's two rule-expiration policies
// (footnote 1 of the paper).
type TimeoutKind int

// Timeout kinds.
const (
	// IdleTimeout expires a rule that has matched no packet for its
	// timeout duration; a match resets the countdown.
	IdleTimeout TimeoutKind = iota + 1
	// HardTimeout expires a rule a fixed duration after installation,
	// regardless of matches.
	HardTimeout
)

// String implements fmt.Stringer.
func (k TimeoutKind) String() string {
	switch k {
	case IdleTimeout:
		return "idle"
	case HardTimeout:
		return "hard"
	default:
		return fmt.Sprintf("TimeoutKind(%d)", int(k))
	}
}

// Rule is a forwarding rule. Following §IV, the action is irrelevant to the
// attack, so a rule is identified with the set of flows it covers.
type Rule struct {
	// ID indexes the rule within its RuleSet.
	ID int
	// Name is a human-readable label ("10.0.1.0/30" for wildcard rules).
	Name string
	// Cover is the set of flow identifiers the rule covers.
	Cover flows.Set
	// Priority orders overlapping rules; higher wins. Within a RuleSet
	// priorities are distinct, making > a total order as the paper
	// requires.
	Priority int
	// Timeout is the rule's expiration duration in model steps (the t_j
	// of §IV). It must be ≥ 1.
	Timeout int
	// Kind selects idle vs hard expiration.
	Kind TimeoutKind
}

// Covers reports whether the rule covers flow f.
func (r Rule) Covers(f flows.ID) bool { return r.Cover.Contains(f) }

// String implements fmt.Stringer.
func (r Rule) String() string {
	return fmt.Sprintf("rule%d(%s prio=%d t=%d %s)", r.ID, r.Name, r.Priority, r.Timeout, r.Kind)
}

// Errors returned by NewSet.
var (
	ErrDuplicatePriority = errors.New("rules: overlapping rules with equal priority")
	ErrBadTimeout        = errors.New("rules: rule timeout must be ≥ 1")
	ErrEmptyCover        = errors.New("rules: rule covers no flows")
)

// Set is an immutable collection of rules with a total priority order — the
// paper's Rules. Rule IDs are indices into the set.
type Set struct {
	rules      []Rule
	byPriority []int // rule IDs sorted by descending priority

	// coverIndex[f] holds the IDs of every rule covering flow f in
	// descending priority order — the precomputed match index. MatchIn,
	// HighestCovering, and Covering probe it instead of scanning the full
	// priority order, turning per-packet matching from O(|Rules|) bitset
	// probes into O(candidates) for the looked-up flow. Flows outside the
	// index range are covered by no rule. Built once in NewSet
	// (O(Σ|cover|)); the Set is immutable afterwards, so the index never
	// goes stale.
	coverIndex [][]int32
}

// NewSet validates and assembles a rule set. Rules are re-assigned IDs
// 0..len-1 in the given order. It enforces the paper's structural
// requirements: every rule covers at least one flow, has a positive
// timeout, and overlapping rules have distinct priorities.
func NewSet(rs []Rule) (*Set, error) {
	out := &Set{rules: make([]Rule, len(rs))}
	copy(out.rules, rs)
	for i := range out.rules {
		out.rules[i].ID = i
		if out.rules[i].Timeout < 1 {
			return nil, fmt.Errorf("%w: %s", ErrBadTimeout, out.rules[i])
		}
		if out.rules[i].Cover.Empty() {
			return nil, fmt.Errorf("%w: %s", ErrEmptyCover, out.rules[i])
		}
		if out.rules[i].Kind == 0 {
			out.rules[i].Kind = IdleTimeout
		}
	}
	for i := range out.rules {
		for j := i + 1; j < len(out.rules); j++ {
			if out.rules[i].Priority == out.rules[j].Priority && out.rules[i].Cover.Overlaps(out.rules[j].Cover) {
				return nil, fmt.Errorf("%w: %s vs %s", ErrDuplicatePriority, out.rules[i], out.rules[j])
			}
		}
	}
	out.byPriority = make([]int, len(out.rules))
	for i := range out.byPriority {
		out.byPriority[i] = i
	}
	sort.SliceStable(out.byPriority, func(a, b int) bool {
		ra, rb := out.rules[out.byPriority[a]], out.rules[out.byPriority[b]]
		if ra.Priority != rb.Priority {
			return ra.Priority > rb.Priority
		}
		return ra.ID < rb.ID
	})
	out.buildCoverIndex()
	return out, nil
}

// buildCoverIndex assembles the per-flow match index. Walking byPriority
// outermost makes every candidate list come out priority-sorted for free.
func (s *Set) buildCoverIndex() {
	nf := 0
	for i := range s.rules {
		s.rules[i].Cover.ForEach(func(f flows.ID) {
			if int(f)+1 > nf {
				nf = int(f) + 1
			}
		})
	}
	s.coverIndex = make([][]int32, nf)
	for _, id := range s.byPriority {
		s.rules[id].Cover.ForEach(func(f flows.ID) {
			s.coverIndex[f] = append(s.coverIndex[f], int32(id))
		})
	}
}

// Len returns the number of rules.
func (s *Set) Len() int { return len(s.rules) }

// Rule returns the rule with the given ID. The returned rule's Cover
// shares storage with the set: treat it as read-only (Clone before any
// in-place mutation). The model hot paths depend on this zero-copy access.
func (s *Set) Rule(id int) Rule { return s.rules[id] }

// Rules returns a copy of the rule slice. As with Rule, the Cover sets are
// shared read-only views.
func (s *Set) Rules() []Rule {
	out := make([]Rule, len(s.rules))
	copy(out, s.rules)
	return out
}

// ByPriority returns rule IDs in descending priority order.
func (s *Set) ByPriority() []int {
	out := make([]int, len(s.byPriority))
	copy(out, s.byPriority)
	return out
}

// HigherPriority reports whether rule a has higher priority than rule b
// (the paper's rule_a > rule_b).
func (s *Set) HigherPriority(a, b int) bool {
	return s.rules[a].Priority > s.rules[b].Priority
}

// candidates returns the priority-sorted match-index slice for f (nil when
// no rule covers f, including flows outside the index range).
func (s *Set) candidates(f flows.ID) []int32 {
	if int(f) < 0 || int(f) >= len(s.coverIndex) {
		return nil
	}
	return s.coverIndex[f]
}

// HighestCovering returns the ID of the highest-priority rule covering f,
// which is the rule the controller installs on a table miss for f. The
// boolean is false if no rule covers f.
func (s *Set) HighestCovering(f flows.ID) (int, bool) {
	if c := s.candidates(f); len(c) > 0 {
		return int(c[0]), true
	}
	return 0, false
}

// Covering returns the IDs of every rule covering f, in descending
// priority order.
func (s *Set) Covering(f flows.ID) []int {
	c := s.candidates(f)
	if len(c) == 0 {
		return nil
	}
	out := make([]int, len(c))
	for i, id := range c {
		out[i] = int(id)
	}
	return out
}

// MatchIn returns the ID of the highest-priority rule among cached that
// covers f — the switch's matching behaviour. cached is interpreted as a
// set of rule IDs; the boolean is false on a table miss. It probes only
// the precomputed candidate rules for f (already priority-sorted) against
// the cached predicate; MatchInLinear is the reference implementation it
// is differential-tested against.
func (s *Set) MatchIn(f flows.ID, cached func(ruleID int) bool) (int, bool) {
	for _, id := range s.candidates(f) {
		if cached(int(id)) {
			return int(id), true
		}
	}
	return 0, false
}

// MatchInLinear is the straightforward O(|Rules|) matcher: walk the full
// priority order and return the first cached rule covering f. It is kept
// as the executable specification of MatchIn — the differential and fuzz
// tests assert the two agree on arbitrary rule sets and cache contents —
// and is not used on any hot path.
func (s *Set) MatchInLinear(f flows.ID, cached func(ruleID int) bool) (int, bool) {
	for _, id := range s.byPriority {
		if cached(id) && s.rules[id].Covers(f) {
			return id, true
		}
	}
	return 0, false
}

// CoveredFlows returns the union of all rules' coverage.
func (s *Set) CoveredFlows() flows.Set {
	var u flows.Set
	for i := range s.rules {
		u.UnionInPlace(s.rules[i].Cover)
	}
	return u
}

// MaxTimeout returns the largest timeout across rules (0 for an empty set).
func (s *Set) MaxTimeout() int {
	m := 0
	for i := range s.rules {
		if s.rules[i].Timeout > m {
			m = s.rules[i].Timeout
		}
	}
	return m
}
