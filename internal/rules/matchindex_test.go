package rules

import (
	"testing"

	"flowrecon/internal/flows"
	"flowrecon/internal/stats"
)

// randomCached draws a random cached-rule predicate over a rule set,
// including the empty and full cache corner cases.
func randomCached(rs *Set, rng *stats.RNG) []bool {
	cached := make([]bool, rs.Len())
	switch rng.Intn(8) {
	case 0: // empty table
	case 1: // full table
		for i := range cached {
			cached[i] = true
		}
	default:
		p := rng.Float64()
		for i := range cached {
			cached[i] = rng.Bernoulli(p)
		}
	}
	return cached
}

// checkMatchAgreement asserts the indexed matcher agrees with the linear
// reference on every flow in (and just beyond) the universe.
func checkMatchAgreement(t *testing.T, rs *Set, cached []bool, nflows int) {
	t.Helper()
	pred := func(j int) bool { return cached[j] }
	for f := flows.ID(-1); int(f) < nflows+3; f++ {
		gotID, gotOK := rs.MatchIn(f, pred)
		wantID, wantOK := rs.MatchInLinear(f, pred)
		if gotID != wantID || gotOK != wantOK {
			t.Fatalf("flow %d: MatchIn = (%d, %v), linear reference = (%d, %v); cached=%v",
				f, gotID, gotOK, wantID, wantOK, cached)
		}
		// The derived accessors must be consistent with the same index.
		full := func(int) bool { return true }
		hcID, hcOK := rs.HighestCovering(f)
		linID, linOK := rs.MatchInLinear(f, full)
		if hcID != linID || hcOK != linOK {
			t.Fatalf("flow %d: HighestCovering = (%d, %v), want (%d, %v)", f, hcID, hcOK, linID, linOK)
		}
	}
}

// TestMatchInDifferentialGenerated is the differential/property test of
// the tentpole's match index: over many randomized rule sets drawn the
// way the paper's evaluation draws them (overlapping ternary wildcards
// from generate.go) and randomized cached sets, the indexed MatchIn must
// equal the linear-scan reference on every flow.
func TestMatchInDifferentialGenerated(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := stats.NewRNG(seed)
		cfg := GenerateConfig{
			NumFlows: 16,
			NumRules: 1 + rng.Intn(24),
			MaskBits: 4,
			Timeouts: []int{1, 2, 5, 9},
		}
		if seed%3 == 0 {
			cfg.HardRatio = 0.3
		}
		rs, err := Generate(cfg, rng)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for trial := 0; trial < 8; trial++ {
			checkMatchAgreement(t, rs, randomCached(rs, rng), cfg.NumFlows)
		}
	}
}

// TestMatchInDifferentialSparseUniverse covers rule sets whose covers
// leave gaps in the flow space (the index must not confuse "flow beyond
// the index" with "flow with no covering rule").
func TestMatchInDifferentialSparseUniverse(t *testing.T) {
	rs, err := NewSet([]Rule{
		{Name: "lo", Cover: flows.SetOf(0, 2), Priority: 3, Timeout: 2},
		{Name: "mid", Cover: flows.SetOf(2, 64), Priority: 2, Timeout: 2},
		{Name: "hi", Cover: flows.SetOf(130), Priority: 1, Timeout: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(5)
	for trial := 0; trial < 16; trial++ {
		checkMatchAgreement(t, rs, randomCached(rs, rng), 140)
	}
}

// TestCoveringMatchesLinearEnumeration checks the other index consumer:
// Covering must return exactly the linear enumeration, in descending
// priority order.
func TestCoveringMatchesLinearEnumeration(t *testing.T) {
	rng := stats.NewRNG(9)
	rs, err := Generate(GenerateConfig{NumFlows: 16, NumRules: 12, MaskBits: 4, Timeouts: []int{3}}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for f := flows.ID(0); f < 16; f++ {
		got := rs.Covering(f)
		var want []int
		for _, id := range rs.ByPriority() {
			if rs.Rule(id).Covers(f) {
				want = append(want, id)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("flow %d: Covering = %v, want %v", f, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("flow %d: Covering = %v, want %v", f, got, want)
			}
		}
	}
}

// FuzzMatchInDifferential fuzzes the indexed-vs-linear equivalence. The
// corpus is seeded from the §VI-A universe: 16 flows, up to 4 wildcard
// bits — the full 81-rule candidate space at nrules=81.
func FuzzMatchInDifferential(f *testing.F) {
	f.Add(int64(1), uint8(81), uint16(0), []byte{0xff, 0x00, 0xaa})
	f.Add(int64(2), uint8(12), uint16(3), []byte{0x0f})
	f.Add(int64(3), uint8(1), uint16(1000), []byte{})
	f.Add(int64(4), uint8(40), uint16(15), []byte{0x55, 0x55, 0x55, 0x55, 0x55, 0x55, 0x55, 0x55, 0x55, 0x55, 0x55})
	f.Fuzz(func(t *testing.T, seed int64, nrules uint8, flow uint16, cachedBits []byte) {
		rng := stats.NewRNG(seed)
		cfg := GenerateConfig{
			NumFlows: 16,
			NumRules: 1 + int(nrules)%81,
			MaskBits: 4,
			Timeouts: []int{1, 4, 7},
		}
		rs, err := Generate(cfg, rng)
		if err != nil {
			t.Skip() // fewer non-empty masks than requested rules
		}
		cached := func(j int) bool {
			if j/8 >= len(cachedBits) {
				return false
			}
			return cachedBits[j/8]&(1<<uint(j%8)) != 0
		}
		probe := []flows.ID{flows.ID(int(flow) % 24), flows.ID(flow)}
		for _, fl := range probe {
			gotID, gotOK := rs.MatchIn(fl, cached)
			wantID, wantOK := rs.MatchInLinear(fl, cached)
			if gotID != wantID || gotOK != wantOK {
				t.Fatalf("flow %d: MatchIn = (%d, %v), linear = (%d, %v)", fl, gotID, gotOK, wantID, wantOK)
			}
		}
	})
}
