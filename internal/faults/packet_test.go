package faults

import (
	"math"
	"testing"
)

func TestPacketStreamDisabled(t *testing.T) {
	var p *Profile
	s := p.Packet(3)
	if s.Drop() || s.JitterMs() != 0 || s.ReorderMs() != 0 || s.StallMs() != 0 {
		t.Fatal("nil profile injected something")
	}
	if got := s.SlowMs(2.5); got != 2.5 {
		t.Fatalf("SlowMs on nil profile = %v", got)
	}
	clean := &Profile{Seed: 1}
	if s := clean.Packet(3); s.prof != nil {
		t.Fatal("disabled profile should yield the inert stream")
	}
}

func TestPacketStreamDeterministicPerPacket(t *testing.T) {
	p := &Profile{Seed: 42, LossProb: 0.3, JitterMeanMs: 1.5, ReorderProb: 0.2, ReorderExtraMs: 4}
	a, b := p.Packet(7), p.Packet(7)
	for i := 0; i < 50; i++ {
		if a.Drop() != b.Drop() || a.JitterMs() != b.JitterMs() || a.ReorderMs() != b.ReorderMs() {
			t.Fatalf("same packet diverged at draw %d", i)
		}
	}
	// Distinct packets get independent fates.
	c, d := p.Packet(1), p.Packet(2)
	same := 0
	for i := 0; i < 200; i++ {
		if c.JitterMs() == d.JitterMs() {
			same++
		}
	}
	if same == 200 {
		t.Fatal("packets 1 and 2 share a jitter schedule")
	}
}

func TestPacketStreamKnobIndependence(t *testing.T) {
	// Enabling jitter must not perturb the loss schedule — the serial
	// Stream guarantees this with per-knob RNGs; the counter-based
	// packet stream must match.
	lossOnly := &Profile{Seed: 9, LossProb: 0.4}
	both := &Profile{Seed: 9, LossProb: 0.4, JitterMeanMs: 2}
	a, b := lossOnly.Packet(5), both.Packet(5)
	for i := 0; i < 100; i++ {
		b.JitterMs() // interleave jitter draws
		if a.Drop() != b.Drop() {
			t.Fatalf("loss schedule perturbed by jitter at draw %d", i)
		}
	}
}

func TestPacketStreamRates(t *testing.T) {
	p := &Profile{Seed: 123, LossProb: 0.25, JitterMeanMs: 3}
	drops, n := 0, 20000
	var jitterSum float64
	for pkt := 0; pkt < n; pkt++ {
		s := p.Packet(int64(pkt))
		if s.Drop() {
			drops++
		}
		jitterSum += s.JitterMs()
	}
	if frac := float64(drops) / float64(n); math.Abs(frac-0.25) > 0.02 {
		t.Fatalf("drop frequency %v, want ≈0.25", frac)
	}
	if mean := jitterSum / float64(n); math.Abs(mean-3) > 0.15 {
		t.Fatalf("jitter mean %v ms, want ≈3", mean)
	}
}

func TestPacketStreamStallSlow(t *testing.T) {
	p := &Profile{Seed: 4, StallProb: 1, StallMs: 7, SlowFactor: 3}
	s := p.Packet(0)
	if got := s.StallMs(); got != 7 {
		t.Fatalf("StallMs = %v, want 7", got)
	}
	if got := s.SlowMs(2); got != 6 {
		t.Fatalf("SlowMs(2) = %v, want 6", got)
	}
}
