// Package faults is the deterministic, seed-driven fault-injection layer
// for both network substrates: the discrete-event simulator (netsim, in
// virtual time) and the real TCP OpenFlow stack (openflow, via a
// fault-wrapping net.Conn / net.Listener — see conn.go).
//
// Design rules, mirroring the telemetry package:
//
//   - Disabled means free. A zero Profile (Enabled() == false) and a nil
//     *Stream inject nothing, draw nothing, and allocate nothing, so the
//     instrumented paths stay bit-identical to the fault-free build: not
//     one extra RNG draw is consumed anywhere when faults are off.
//
//   - Everything is seeded. All fault randomness flows through Streams
//     derived from Profile.Seed via a splitmix64 mix of (seed, substream),
//     never from the consumer's own RNG. Chaos runs are therefore pure
//     functions of (trial seeds, fault seed) and replay byte-identically
//     under trialrec, at any experiment parallelism level.
//
//   - Fault decisions are draw-stable. Each knob (loss, jitter, reorder,
//     reset, stall) draws from its own sub-stream of the trial's fault
//     stream, so enabling or tuning one knob never shifts the sequence
//     another knob observes: a 2%-loss run keeps the exact same drop
//     schedule whether or not jitter is also turned on.
package faults

import (
	"fmt"
	"sync"

	"flowrecon/internal/stats"
	"flowrecon/internal/telemetry"
)

// Profile declares what to inject. The zero value injects nothing. All
// probabilities are per-event (per probe, per hop, per framed message);
// durations are in milliseconds to match the rest of the repository.
type Profile struct {
	// Seed is the root of every fault stream derived from this profile.
	// Two runs with equal profiles inject byte-identical fault sequences.
	Seed int64 `json:"seed"`
	// LossProb drops an event (a probe, a forwarded packet, a framed
	// OpenFlow message) with this probability.
	LossProb float64 `json:"lossProb,omitempty"`
	// JitterMeanMs adds exponentially distributed extra latency with this
	// mean to every delivered event.
	JitterMeanMs float64 `json:"jitterMeanMs,omitempty"`
	// ReorderProb delays an event by an extra ReorderExtraMs with this
	// probability, letting later traffic overtake it.
	ReorderProb    float64 `json:"reorderProb,omitempty"`
	ReorderExtraMs float64 `json:"reorderExtraMs,omitempty"`
	// ResetProb tears down a connection (TCP substrate only) with this
	// probability per written message; the peer sees a hard error and the
	// robust clients reconnect with backoff.
	ResetProb float64 `json:"resetProb,omitempty"`
	// StallProb freezes the controller's decision path for StallMs with
	// this probability, modelling a busy or GC-pausing controller.
	StallProb float64 `json:"stallProb,omitempty"`
	StallMs   float64 `json:"stallMs,omitempty"`
	// SlowFactor multiplies controller decision latency (1 or 0 = off).
	SlowFactor float64 `json:"slowFactor,omitempty"`
}

// Enabled reports whether the profile injects anything at all. The
// instrumented paths branch on this once, at setup time, so a disabled
// profile costs nothing per event.
func (p Profile) Enabled() bool {
	return p.LossProb > 0 || p.JitterMeanMs > 0 || p.ReorderProb > 0 ||
		p.ResetProb > 0 || p.StallProb > 0 || p.SlowFactor > 1
}

// Validate rejects physically meaningless profiles.
func (p Profile) Validate() error {
	check := func(name string, v float64) error {
		if v < 0 || v > 1 {
			return fmt.Errorf("faults: %s %v outside [0, 1]", name, v)
		}
		return nil
	}
	if err := check("lossProb", p.LossProb); err != nil {
		return err
	}
	if err := check("reorderProb", p.ReorderProb); err != nil {
		return err
	}
	if err := check("resetProb", p.ResetProb); err != nil {
		return err
	}
	if err := check("stallProb", p.StallProb); err != nil {
		return err
	}
	if p.JitterMeanMs < 0 || p.ReorderExtraMs < 0 || p.StallMs < 0 {
		return fmt.Errorf("faults: negative duration in profile")
	}
	if p.SlowFactor < 0 {
		return fmt.Errorf("faults: negative slowFactor %v", p.SlowFactor)
	}
	return nil
}

// splitmix64 is the SplitMix64 finalizer; it decorrelates substream seeds
// so Stream(0), Stream(1), ... are independent even for adjacent inputs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SubSeed derives the substream seed the Stream(sub) call would use.
// Exposed so recordings can note the exact per-trial fault seed.
func (p Profile) SubSeed(sub int64) int64 {
	return int64(splitmix64(uint64(p.Seed)^splitmix64(uint64(sub))) >> 1)
}

// Per-knob sub-stream indices (see Stream): each knob owns an RNG
// derived from (profile seed, substream, knob), which is what makes
// fault schedules draw-stable across knob combinations.
const (
	knobLoss = iota
	knobJitter
	knobReorder
	knobReset
	knobStall
	numKnobs
)

// Stream returns an independent fault stream for substream sub (one per
// trial, per connection, per link — any unit that must be independent of
// scheduling order). A disabled profile returns nil, the no-op stream.
func (p Profile) Stream(sub int64) *Stream {
	if !p.Enabled() {
		return nil
	}
	s := &Stream{p: p}
	base := uint64(p.SubSeed(sub))
	for k := 0; k < numKnobs; k++ {
		s.rng[k] = stats.NewRNG(int64(splitmix64(base+uint64(k)) >> 1))
	}
	return s
}

// Stream is one independent sequence of fault decisions. All methods are
// safe on a nil receiver (where they inject nothing and consume no
// draws) and safe for concurrent use otherwise.
type Stream struct {
	p   Profile
	mu  sync.Mutex
	rng [numKnobs]*stats.RNG

	injected  *telemetry.Counter // faults_injected_total per kind
	lost      *telemetry.Counter
	jittered  *telemetry.Counter
	reordered *telemetry.Counter
	resets    *telemetry.Counter
	stalls    *telemetry.Counter

	events *telemetry.EventLog // wide event per injected fault (nil = off)
	layer  string              // injection layer, stamped into event Node
}

// SetTelemetry attaches fault counters, labelled by the injection layer
// ("netsim", "openflow", "controller", "experiment"). Safe on nil stream
// and nil registry.
func (s *Stream) SetTelemetry(reg *telemetry.Registry, layer string) {
	if s == nil {
		return
	}
	s.injected = reg.Counter("faults_injected_total", "layer", layer)
	s.lost = reg.Counter("faults_loss_total", "layer", layer)
	s.jittered = reg.Counter("faults_jitter_total", "layer", layer)
	s.reordered = reg.Counter("faults_reorder_total", "layer", layer)
	s.resets = reg.Counter("faults_reset_total", "layer", layer)
	s.stalls = reg.Counter("faults_stall_total", "layer", layer)
	s.layer = layer
}

// SetEventLog attaches a wide-event sink emitting one event per injected
// fault ("fault.loss", "fault.reset", ...). It is a separate opt-in from
// SetTelemetry because the experiment trial loop must NOT sink fault
// events directly — it buffers them per trial for in-order assembly so
// parallel runs stay byte-identical. The transport and controller
// layers, whose faults are wall-clock-ordered anyway, attach the sink.
func (s *Stream) SetEventLog(l *telemetry.EventLog) {
	if s == nil {
		return
	}
	s.events = l
}

// event emits one fault-injection wide event.
func (s *Stream) event(kind string) {
	if s.events == nil {
		return
	}
	ev := telemetry.NewWideEvent("fault." + kind)
	ev.Node = s.layer
	s.events.Emit(ev)
}

// Profile returns the stream's profile (zero for a nil stream).
func (s *Stream) Profile() Profile {
	if s == nil {
		return Profile{}
	}
	return s.p
}

// bernoulli draws one decision from the given knob's sub-stream under
// the stream lock. Knobs at zero skip the draw (and the lock) entirely.
func (s *Stream) bernoulli(knob int, p float64) bool {
	if p <= 0 {
		return false
	}
	s.mu.Lock()
	hit := s.rng[knob].Bernoulli(p)
	s.mu.Unlock()
	return hit
}

// Drop reports whether the next event is lost.
func (s *Stream) Drop() bool {
	if s == nil {
		return false
	}
	hit := s.bernoulli(knobLoss, s.p.LossProb)
	if hit {
		s.lost.Inc()
		s.injected.Inc()
		s.event("loss")
	}
	return hit
}

// JitterMs returns the extra latency (exponential, mean JitterMeanMs) to
// add to the next delivered event; 0 when jitter is off.
func (s *Stream) JitterMs() float64 {
	if s == nil || s.p.JitterMeanMs <= 0 {
		return 0
	}
	s.mu.Lock()
	j := s.rng[knobJitter].Exp(1 / s.p.JitterMeanMs)
	s.mu.Unlock()
	if j > 0 {
		s.jittered.Inc()
		s.injected.Inc()
		s.event("jitter")
	}
	return j
}

// ReorderMs returns the extra delay applied to an event selected for
// reordering, or 0 when this event keeps its place.
func (s *Stream) ReorderMs() float64 {
	if s == nil {
		return 0
	}
	if !s.bernoulli(knobReorder, s.p.ReorderProb) {
		return 0
	}
	s.reordered.Inc()
	s.injected.Inc()
	s.event("reorder")
	return s.p.ReorderExtraMs
}

// Reset reports whether the connection carrying the next message is torn
// down.
func (s *Stream) Reset() bool {
	if s == nil {
		return false
	}
	hit := s.bernoulli(knobReset, s.p.ResetProb)
	if hit {
		s.resets.Inc()
		s.injected.Inc()
		s.event("reset")
	}
	return hit
}

// StallMs returns the controller stall to inject before the next
// decision (0 = none).
func (s *Stream) StallMs() float64 {
	if s == nil {
		return 0
	}
	if !s.bernoulli(knobStall, s.p.StallProb) {
		return 0
	}
	s.stalls.Inc()
	s.injected.Inc()
	s.event("stall")
	return s.p.StallMs
}

// SlowMs scales a controller decision latency by SlowFactor (identity
// for nil streams and factors ≤ 1... a factor of 1 is "no slowdown").
func (s *Stream) SlowMs(ms float64) float64 {
	if s == nil {
		return ms
	}
	if s.p.SlowFactor > 1 {
		return ms * s.p.SlowFactor
	}
	return ms
}
