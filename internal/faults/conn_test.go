package faults

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// pipePair returns a connected net.Pipe pair with the client side
// fault-wrapped.
func pipePair(t *testing.T, s *Stream) (net.Conn, net.Conn) {
	t.Helper()
	client, server := net.Pipe()
	return WrapConn(client, s), server
}

func TestWrapConnNilStreamPassthrough(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	wrapped := WrapConn(client, nil)
	if wrapped != client {
		t.Fatal("nil stream must return the connection unchanged")
	}
}

func TestConnDeliversWhenQuiet(t *testing.T) {
	p := Profile{Seed: 1, JitterMeanMs: 0.01} // enabled but harmless
	client, server := pipePair(t, p.Stream(0))
	defer client.Close()
	defer server.Close()
	msg := []byte("hello over a faulty link")
	go func() {
		client.Write(msg)
	}()
	got := make([]byte, len(msg))
	server.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(server, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("payload corrupted: %q", got)
	}
}

func TestConnDropSwallowsWholeWrite(t *testing.T) {
	p := Profile{Seed: 1, LossProb: 1}
	client, server := pipePair(t, p.Stream(0))
	defer client.Close()
	defer server.Close()
	n, err := client.Write([]byte("this message is lost"))
	if err != nil {
		t.Fatalf("dropped write must report success, got %v", err)
	}
	if n != 20 {
		t.Fatalf("dropped write must report full length, got %d", n)
	}
	// Nothing must arrive.
	server.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	buf := make([]byte, 1)
	if _, err := server.Read(buf); err == nil {
		t.Fatal("dropped message arrived at the peer")
	}
}

func TestConnInjectedReset(t *testing.T) {
	p := Profile{Seed: 1, ResetProb: 1}
	client, server := pipePair(t, p.Stream(0))
	defer server.Close()
	if _, err := client.Write([]byte("x")); err != ErrInjectedReset {
		t.Fatalf("want ErrInjectedReset, got %v", err)
	}
	// The underlying transport is closed: the peer sees EOF...
	server.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := server.Read(make([]byte, 1)); err == nil {
		t.Fatal("peer still readable after injected reset")
	}
	// ...and further writes keep failing.
	if _, err := client.Write([]byte("y")); err != ErrInjectedReset {
		t.Fatalf("post-reset write: want ErrInjectedReset, got %v", err)
	}
}

func TestListenerPerConnectionStreams(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	p := Profile{Seed: 4, LossProb: 1}
	fl := WrapListener(ln, p)
	defer fl.Close()

	done := make(chan error, 1)
	go func() {
		c, err := fl.Accept()
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		if _, ok := c.(*Conn); !ok {
			done <- io.ErrUnexpectedEOF
			return
		}
		// All writes drop at LossProb 1.
		if _, err := c.Write([]byte("dropped")); err != nil {
			done <- err
			return
		}
		done <- nil
	}()

	peer, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer peer.Close()
	if err := <-done; err != nil {
		t.Fatalf("accept side: %v", err)
	}
	peer.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	if _, err := peer.Read(make([]byte, 1)); err == nil {
		t.Fatal("message delivered despite LossProb 1")
	}
}

func TestWrapListenerDisabledPassthrough(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	if got := WrapListener(ln, Profile{}); got != ln {
		t.Fatal("disabled profile must return the listener unchanged")
	}
}
