package faults

import (
	"testing"

	"flowrecon/internal/telemetry"
)

func TestZeroProfileDisabled(t *testing.T) {
	var p Profile
	if p.Enabled() {
		t.Fatal("zero profile must be disabled")
	}
	if s := p.Stream(0); s != nil {
		t.Fatal("disabled profile must return a nil stream")
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("zero profile must validate: %v", err)
	}
}

func TestNilStreamIsNoOp(t *testing.T) {
	var s *Stream
	s.SetTelemetry(nil, "test") // must not panic
	if s.Drop() || s.Reset() {
		t.Fatal("nil stream injected a drop/reset")
	}
	if s.JitterMs() != 0 || s.ReorderMs() != 0 || s.StallMs() != 0 {
		t.Fatal("nil stream injected latency")
	}
	if got := s.SlowMs(3.5); got != 3.5 {
		t.Fatalf("nil stream scaled latency: %v", got)
	}
	if s.Profile().Enabled() {
		t.Fatal("nil stream profile must be disabled")
	}
}

func TestValidate(t *testing.T) {
	bad := []Profile{
		{LossProb: -0.1},
		{LossProb: 1.5},
		{ReorderProb: 2},
		{ResetProb: -1},
		{StallProb: 7},
		{JitterMeanMs: -2},
		{ReorderExtraMs: -1},
		{StallMs: -1},
		{SlowFactor: -3},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("profile %+v must not validate", p)
		}
	}
	good := Profile{Seed: 9, LossProb: 0.02, JitterMeanMs: 1, ReorderProb: 0.01,
		ReorderExtraMs: 2, ResetProb: 0.001, StallProb: 0.05, StallMs: 10, SlowFactor: 2}
	if err := good.Validate(); err != nil {
		t.Fatalf("good profile rejected: %v", err)
	}
	if !good.Enabled() {
		t.Fatal("good profile must be enabled")
	}
}

// TestStreamDeterminism: equal (profile, substream) pairs produce
// byte-identical fault schedules; different substreams diverge.
func TestStreamDeterminism(t *testing.T) {
	p := Profile{Seed: 42, LossProb: 0.3, JitterMeanMs: 1.5, ReorderProb: 0.2,
		ReorderExtraMs: 2, ResetProb: 0.1, StallProb: 0.25, StallMs: 4}
	type draw struct {
		drop, reset bool
		jit, reo    float64
		stall       float64
	}
	run := func(sub int64) []draw {
		s := p.Stream(sub)
		out := make([]draw, 200)
		for i := range out {
			out[i] = draw{s.Drop(), s.Reset(), s.JitterMs(), s.ReorderMs(), s.StallMs()}
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d diverged between identical streams: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := run(8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("substreams 7 and 8 produced identical schedules")
	}
}

// TestSubSeedDecorrelated: adjacent substreams get well-mixed seeds.
func TestSubSeedDecorrelated(t *testing.T) {
	p := Profile{Seed: 1, LossProb: 0.5}
	seen := map[int64]bool{}
	for sub := int64(0); sub < 64; sub++ {
		s := p.SubSeed(sub)
		if s < 0 {
			t.Fatalf("SubSeed(%d) = %d is negative", sub, s)
		}
		if seen[s] {
			t.Fatalf("SubSeed collision at sub=%d", sub)
		}
		seen[s] = true
	}
}

// TestDrawStability: enabling an unrelated knob must not shift the draw
// sequence of an enabled one (zero-probability knobs consume no draws).
func TestDrawStability(t *testing.T) {
	lossOnly := Profile{Seed: 5, LossProb: 0.3}
	withJitter := Profile{Seed: 5, LossProb: 0.3, JitterMeanMs: 2}
	a, b := lossOnly.Stream(0), withJitter.Stream(0)
	for i := 0; i < 500; i++ {
		da := a.Drop()
		db := b.Drop()
		b.JitterMs() // jitter draws from its own sub-stream...
		if da != db {
			t.Fatalf("drop %d diverged once jitter was enabled", i)
		}
		a.JitterMs() // ...and a zero-mean jitter consumes no draw
	}
}

func TestRates(t *testing.T) {
	p := Profile{Seed: 11, LossProb: 0.2, JitterMeanMs: 1.0}
	s := p.Stream(3)
	const n = 20000
	drops := 0
	var jitterSum float64
	for i := 0; i < n; i++ {
		if s.Drop() {
			drops++
		}
		jitterSum += s.JitterMs()
	}
	rate := float64(drops) / n
	if rate < 0.18 || rate > 0.22 {
		t.Fatalf("drop rate %.4f far from 0.2", rate)
	}
	mean := jitterSum / n
	if mean < 0.9 || mean > 1.1 {
		t.Fatalf("jitter mean %.4f far from 1.0", mean)
	}
}

func TestSlowAndStall(t *testing.T) {
	p := Profile{Seed: 2, SlowFactor: 3, StallProb: 1, StallMs: 7}
	s := p.Stream(0)
	if got := s.SlowMs(2); got != 6 {
		t.Fatalf("SlowMs(2) = %v, want 6", got)
	}
	if got := s.StallMs(); got != 7 {
		t.Fatalf("StallMs = %v, want 7 at probability 1", got)
	}
	// SlowFactor 1 is identity.
	one := Profile{Seed: 2, SlowFactor: 1}
	if one.Enabled() {
		t.Fatal("SlowFactor 1 alone must not enable the profile")
	}
}

func TestTelemetryCounters(t *testing.T) {
	reg := telemetry.NewRegistry(0)
	p := Profile{Seed: 3, LossProb: 1}
	s := p.Stream(0)
	s.SetTelemetry(reg, "test")
	for i := 0; i < 5; i++ {
		if !s.Drop() {
			t.Fatal("LossProb 1 must always drop")
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters[`faults_loss_total{layer="test"}`]; got != 5 {
		t.Fatalf("loss counter = %d, want 5", got)
	}
	if got := snap.Counters[`faults_injected_total{layer="test"}`]; got != 5 {
		t.Fatalf("injected counter = %d, want 5", got)
	}
}

func TestStreamConcurrency(t *testing.T) {
	p := Profile{Seed: 6, LossProb: 0.5, JitterMeanMs: 0.5, ResetProb: 0.1}
	s := p.Stream(0)
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				s.Drop()
				s.JitterMs()
				s.Reset()
			}
		}()
	}
	for w := 0; w < 4; w++ {
		<-done
	}
}
