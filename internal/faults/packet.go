package faults

import "math"

// expSample inverts the exponential CDF at u ∈ [0, 1); 1-u is in (0, 1],
// keeping the log argument positive.
func expSample(u, rate float64) float64 {
	return -math.Log(1-u) / rate
}

// PacketStream is the per-packet face of a fault profile, built for the
// sharded fleet simulator. The serial fabric draws every fault decision
// from one sequential Stream, which makes the schedule a function of
// global event order — exactly what a parallel engine cannot promise.
// A PacketStream instead derives every decision from (profile seed,
// packet ID, knob, draw index) with a counter-based generator: the fault
// fate of packet k is a pure function of k, independent of how many
// shards exist or which order they executed in. That is the "cross-shard
// fault determinism" contract: recordings with faults enabled stay
// byte-identical at any shard count.
//
// The stream is a small value (no heap allocation, no mutex — each
// packet owns its own copy and is processed by one shard at a time) and
// carries no telemetry; the fleet engine counts injections in per-shard
// counters and flushes them in batch.
type PacketStream struct {
	prof *Profile
	seed uint64
	// n counts draws per knob so repeated decisions on one packet (a
	// drop check per hop, say) see fresh bits, while knobs stay
	// independent of each other: enabling jitter cannot perturb the loss
	// schedule, the same draw-stability the serial Stream guarantees via
	// per-knob sub-RNGs.
	n [numKnobs]uint16
}

// Packet derives the fault stream of packet pkt. The zero Profile (and
// any disabled one) yields a stream that injects nothing and draws no
// bits.
func (p *Profile) Packet(pkt int64) PacketStream {
	if p == nil || !p.Enabled() {
		return PacketStream{}
	}
	return PacketStream{
		prof: p,
		seed: splitmix64(uint64(p.Seed) ^ splitmix64(uint64(pkt)+0x6a09e667f3bcc909)),
	}
}

// u01 draws the next uniform sample in [0, 1) from knob's substream.
func (s *PacketStream) u01(knob int) float64 {
	c := s.n[knob]
	s.n[knob]++
	bits := splitmix64(s.seed + uint64(knob+1)*0x9e3779b97f4a7c15 + uint64(c)*0xbf58476d1ce4e5b9)
	return float64(bits>>11) * 0x1p-53
}

// Drop reports whether the packet's next delivery is lost.
func (s *PacketStream) Drop() bool {
	if s.prof == nil || s.prof.LossProb <= 0 {
		return false
	}
	return s.u01(knobLoss) < s.prof.LossProb
}

// JitterMs returns the extra latency (exponential, mean JitterMeanMs) of
// the packet's next delivered event; 0 when jitter is off.
func (s *PacketStream) JitterMs() float64 {
	if s.prof == nil || s.prof.JitterMeanMs <= 0 {
		return 0
	}
	return expSample(s.u01(knobJitter), 1/s.prof.JitterMeanMs)
}

// ReorderMs returns the extra delay of an event selected for reordering,
// or 0 when the packet keeps its place.
func (s *PacketStream) ReorderMs() float64 {
	if s.prof == nil || s.prof.ReorderProb <= 0 {
		return 0
	}
	if s.u01(knobReorder) >= s.prof.ReorderProb {
		return 0
	}
	return s.prof.ReorderExtraMs
}

// StallMs returns the controller stall to inject before the packet's
// next decision (0 = none).
func (s *PacketStream) StallMs() float64 {
	if s.prof == nil || s.prof.StallProb <= 0 {
		return 0
	}
	if s.u01(knobStall) >= s.prof.StallProb {
		return 0
	}
	return s.prof.StallMs
}

// SlowMs scales a controller decision latency by SlowFactor (identity
// when the knob is off).
func (s *PacketStream) SlowMs(ms float64) float64 {
	if s.prof != nil && s.prof.SlowFactor > 1 {
		return ms * s.prof.SlowFactor
	}
	return ms
}
