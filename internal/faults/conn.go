package faults

import (
	"fmt"
	"net"
	"sync/atomic"
	"time"
)

// ErrInjectedReset is returned by Conn.Write when the stream decides to
// tear the connection down. The underlying transport is closed, so the
// peer observes a hard disconnect too.
var ErrInjectedReset = fmt.Errorf("faults: injected connection reset")

// Conn wraps a net.Conn and injects faults on the write path. The
// repository's OpenFlow framing writes exactly one encoded message per
// Write call (openflow.Conn.SendXID), so dropping a whole Write models
// losing one message cleanly without corrupting the byte stream —
// which is what a lossy control channel does to a datagram but a raw
// TCP byte-stream cannot express otherwise.
//
// Draw order per Write is fixed: Reset, Drop, Jitter, Reorder. Reads
// pass through untouched (the peer's writer injects that direction).
type Conn struct {
	net.Conn
	s      *Stream
	closed atomic.Bool
}

// WrapConn attaches a fault stream to a connection. A nil stream returns
// the connection unchanged (zero overhead when faults are off).
func WrapConn(c net.Conn, s *Stream) net.Conn {
	if s == nil {
		return c
	}
	return &Conn{Conn: c, s: s}
}

// Write applies the fault schedule to one framed message.
func (c *Conn) Write(b []byte) (int, error) {
	if c.closed.Load() {
		return 0, ErrInjectedReset
	}
	if c.s.Reset() {
		c.closed.Store(true)
		c.Conn.Close()
		return 0, ErrInjectedReset
	}
	if c.s.Drop() {
		// Swallow the message: report success so the writer moves on,
		// exactly as a lossy network acknowledges nothing.
		return len(b), nil
	}
	delay := c.s.JitterMs() + c.s.ReorderMs()
	if delay > 0 {
		time.Sleep(time.Duration(delay * float64(time.Millisecond)))
	}
	return c.Conn.Write(b)
}

// Listener wraps a net.Listener so every accepted connection carries its
// own independent fault stream (substream = accept index), keeping runs
// reproducible regardless of accept timing.
type Listener struct {
	net.Listener
	p    Profile
	next atomic.Int64
}

// WrapListener attaches a fault profile to a listener. A disabled
// profile returns the listener unchanged.
func WrapListener(l net.Listener, p Profile) net.Listener {
	if !p.Enabled() {
		return l
	}
	return &Listener{Listener: l, p: p}
}

// Accept wraps the next connection with a derived fault stream.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	sub := l.next.Add(1) - 1
	return WrapConn(c, l.p.Stream(sub)), nil
}
