package workload

import (
	"fmt"
	"math"

	"flowrecon/internal/flows"
	"flowrecon/internal/stats"
)

// The paper's §IV independence assumption — memoryless per-flow Poisson
// arrivals — is exactly what real traffic violates. This file provides
// the heavy-tailed and time-varying generators the "realistic traffic"
// experiments run on:
//
//   - Pareto renewal interarrivals (heavy tail, index α): long silences
//     punctuated by clusters, the classic self-similar-traffic building
//     block.
//   - Log-normal renewal interarrivals (heavy-ish tail, shape σ): the
//     empirical fit of many measured flow-interarrival distributions.
//   - Rate-modulated Poisson (diurnal sinusoid and/or flash-crowd
//     spike), sampled by thinning so the arrival process is an exact
//     inhomogeneous Poisson process.
//
// Every generator preserves the configured long-run mean rate per flow —
// the attacker's Poisson-fitted model sees the correct first moment and
// the wrong everything else — and draws all randomness from forked
// seeded streams, so traces are byte-deterministic per seed.

// ParetoConfig configures Pareto-renewal traffic: flow f's interarrival
// times are i.i.d. Pareto(Alpha, xm_f) with xm_f chosen so the mean
// interarrival is 1/Rates[f].
type ParetoConfig struct {
	// Rates[f] is the long-run average rate λ_f (arrivals/second).
	Rates []float64
	// Duration is the trace length in seconds.
	Duration float64
	// Alpha is the tail index. The mean exists only for Alpha > 1; the
	// variance is infinite for Alpha ≤ 2, the interesting regime.
	Alpha float64
}

// Validate checks the configuration.
func (c ParetoConfig) Validate() error {
	if len(c.Rates) == 0 || c.Duration <= 0 {
		return fmt.Errorf("workload: bad pareto config %+v", c)
	}
	if c.Alpha <= 1 {
		return fmt.Errorf("workload: pareto tail index %v ≤ 1 has no mean", c.Alpha)
	}
	for f, r := range c.Rates {
		if r < 0 {
			return fmt.Errorf("workload: negative rate %v for flow %d", r, f)
		}
	}
	return nil
}

// ParetoScale returns the xm that gives a Pareto(alpha, xm) interarrival
// the mean 1/rate: xm = (alpha−1)/(alpha·rate).
func ParetoScale(alpha, rate float64) float64 {
	return (alpha - 1) / (alpha * rate)
}

// GeneratePareto samples an independent Pareto-renewal arrival process
// per flow and merges them into one time-ordered trace.
func GeneratePareto(cfg ParetoConfig, rng *stats.RNG) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var arrivals []Arrival
	for f, rate := range cfg.Rates {
		if rate == 0 {
			continue
		}
		g := rng.Fork()
		xm := ParetoScale(cfg.Alpha, rate)
		for t := g.Pareto(cfg.Alpha, xm); t < cfg.Duration; t += g.Pareto(cfg.Alpha, xm) {
			arrivals = append(arrivals, Arrival{Time: t, Flow: flows.ID(f)})
		}
	}
	sortArrivals(arrivals)
	return &Trace{arrivals: arrivals}, nil
}

// LogNormalConfig configures log-normal-renewal traffic: flow f's
// interarrival times are i.i.d. LogNormal(μ_f, Sigma) with μ_f chosen so
// the mean interarrival is 1/Rates[f].
type LogNormalConfig struct {
	// Rates[f] is the long-run average rate λ_f (arrivals/second).
	Rates []float64
	// Duration is the trace length in seconds.
	Duration float64
	// Sigma is the log-scale shape parameter (> 0). Larger σ means a
	// heavier tail; σ → 0 degenerates to periodic arrivals.
	Sigma float64
}

// Validate checks the configuration.
func (c LogNormalConfig) Validate() error {
	if len(c.Rates) == 0 || c.Duration <= 0 || c.Sigma <= 0 {
		return fmt.Errorf("workload: bad lognormal config %+v", c)
	}
	for f, r := range c.Rates {
		if r < 0 {
			return fmt.Errorf("workload: negative rate %v for flow %d", r, f)
		}
	}
	return nil
}

// LogNormalMu returns the μ that gives a LogNormal(μ, sigma) interarrival
// the mean 1/rate: μ = −ln(rate) − σ²/2.
func LogNormalMu(sigma, rate float64) float64 {
	return -math.Log(rate) - sigma*sigma/2
}

// GenerateLogNormal samples an independent log-normal-renewal arrival
// process per flow and merges them into one time-ordered trace.
func GenerateLogNormal(cfg LogNormalConfig, rng *stats.RNG) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var arrivals []Arrival
	for f, rate := range cfg.Rates {
		if rate == 0 {
			continue
		}
		g := rng.Fork()
		mu := LogNormalMu(cfg.Sigma, rate)
		for t := g.LogNormal(mu, cfg.Sigma); t < cfg.Duration; t += g.LogNormal(mu, cfg.Sigma) {
			arrivals = append(arrivals, Arrival{Time: t, Flow: flows.ID(f)})
		}
	}
	sortArrivals(arrivals)
	return &Trace{arrivals: arrivals}, nil
}

// RateProfile is a deterministic time-varying rate multiplier composed of
// a diurnal sinusoid and a flash-crowd spike. The zero profile is the
// constant multiplier 1 (plain Poisson). Both components compose
// multiplicatively, and the profile is normalized (see Mean) so modulated
// traffic keeps the configured long-run mean rate.
type RateProfile struct {
	// DiurnalPeriod and DiurnalAmp add the factor
	// 1 + DiurnalAmp·sin(2π·t/DiurnalPeriod); Amp must lie in [0, 1] to
	// keep the rate non-negative. Zero period disables the component.
	DiurnalPeriod float64
	DiurnalAmp    float64
	// FlashAt/FlashDur/FlashFactor multiply the rate by FlashFactor
	// during [FlashAt, FlashAt+FlashDur). Zero duration disables the
	// component.
	FlashAt, FlashDur float64
	FlashFactor       float64
}

// Validate checks the profile.
func (p RateProfile) Validate() error {
	if p.DiurnalPeriod < 0 || p.DiurnalAmp < 0 || p.DiurnalAmp > 1 {
		return fmt.Errorf("workload: bad diurnal profile %+v", p)
	}
	if p.DiurnalPeriod == 0 && p.DiurnalAmp != 0 {
		return fmt.Errorf("workload: diurnal amplitude without a period %+v", p)
	}
	if p.FlashDur < 0 || p.FlashAt < 0 || (p.FlashDur > 0 && p.FlashFactor < 1) {
		return fmt.Errorf("workload: bad flash profile %+v", p)
	}
	return nil
}

// Enabled reports whether the profile modulates anything.
func (p RateProfile) Enabled() bool {
	return (p.DiurnalPeriod > 0 && p.DiurnalAmp > 0) || (p.FlashDur > 0 && p.FlashFactor > 1)
}

// At returns the un-normalized multiplier at time t.
func (p RateProfile) At(t float64) float64 {
	m := 1.0
	if p.DiurnalPeriod > 0 && p.DiurnalAmp > 0 {
		m *= 1 + p.DiurnalAmp*math.Sin(2*math.Pi*t/p.DiurnalPeriod)
	}
	if p.FlashDur > 0 && t >= p.FlashAt && t < p.FlashAt+p.FlashDur {
		m *= p.FlashFactor
	}
	return m
}

// Max returns an upper bound on the multiplier over [0, duration).
func (p RateProfile) Max() float64 {
	m := 1.0
	if p.DiurnalPeriod > 0 {
		m *= 1 + p.DiurnalAmp
	}
	if p.FlashDur > 0 {
		m *= p.FlashFactor
	}
	return m
}

// Mean returns the average multiplier over [0, duration), computed in
// closed form: the sinusoid contributes its partial-cycle integral and
// the flash spike its excess mass. Modulated generation divides by this,
// so the long-run mean rate matches the configured rate exactly — a
// flash crowd steals its extra arrivals from the quiet part of the
// window instead of inflating the total.
func (p RateProfile) Mean(duration float64) float64 {
	if duration <= 0 {
		return 1
	}
	m := 1.0
	if p.DiurnalPeriod > 0 && p.DiurnalAmp > 0 {
		// ∫₀ᵈ (1 + A·sin(2πt/P)) dt = d + A·P/(2π)·(1 − cos(2πd/P))
		w := 2 * math.Pi / p.DiurnalPeriod
		m = 1 + p.DiurnalAmp*(1-math.Cos(w*duration))/(w*duration)
	}
	if p.FlashDur > 0 && p.FlashFactor > 1 && p.FlashAt < duration {
		overlap := math.Min(duration, p.FlashAt+p.FlashDur) - p.FlashAt
		m += (p.FlashFactor - 1) * overlap / duration
	}
	return m
}

// GenerateModulated samples an inhomogeneous Poisson process per flow
// with rate λ_f·profile.At(t)/profile.Mean(D), by thinning a homogeneous
// process at the profile's peak rate. The normalization keeps each
// flow's expected arrival count at λ_f·D regardless of the profile, so
// modulated traces are mean-rate-comparable with every other generator.
func GenerateModulated(cfg PoissonConfig, profile RateProfile, rng *stats.RNG) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := profile.Validate(); err != nil {
		return nil, err
	}
	if !profile.Enabled() {
		return GeneratePoisson(cfg, rng)
	}
	mean := profile.Mean(cfg.Duration)
	peak := profile.Max() / mean
	var arrivals []Arrival
	for f, rate := range cfg.Rates {
		if rate == 0 {
			continue
		}
		g := rng.Fork()
		lambdaMax := rate * peak
		for t := g.Exp(lambdaMax); t < cfg.Duration; t += g.Exp(lambdaMax) {
			// Thinning: accept with λ(t)/λmax = At(t)/Max().
			if g.Float64()*profile.Max() < profile.At(t) {
				arrivals = append(arrivals, Arrival{Time: t, Flow: flows.ID(f)})
			}
		}
	}
	sortArrivals(arrivals)
	return &Trace{arrivals: arrivals}, nil
}
