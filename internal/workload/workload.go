// Package workload generates the paper's traffic: each flow f arrives as a
// Poisson process with rate λ_f (§IV-A1). It replaces the background Scapy
// scripts of the paper's Mininet testbed with seeded, deterministic traces.
package workload

import (
	"fmt"
	"sort"

	"flowrecon/internal/flows"
	"flowrecon/internal/stats"
)

// Arrival is one flow occurrence at an absolute time (seconds).
type Arrival struct {
	Time float64
	Flow flows.ID
}

// Trace is a time-ordered sequence of flow arrivals.
type Trace struct {
	arrivals []Arrival
}

// NewTrace builds a trace from explicit arrivals (sorted defensively by
// time). It is how recorded traffic windows are reconstituted for replay.
func NewTrace(arrivals []Arrival) *Trace {
	out := make([]Arrival, len(arrivals))
	copy(out, arrivals)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return &Trace{arrivals: out}
}

// Arrivals returns the arrivals in time order.
func (t *Trace) Arrivals() []Arrival {
	out := make([]Arrival, len(t.arrivals))
	copy(out, t.arrivals)
	return out
}

// Len returns the number of arrivals.
func (t *Trace) Len() int { return len(t.arrivals) }

// OccurredWithin reports whether flow f arrived in the half-open window
// (end-window, end]. It is the ground truth for the indicator X̂ of §V-A.
func (t *Trace) OccurredWithin(f flows.ID, end, window float64) bool {
	lo := end - window
	// Binary search for the first arrival with Time > lo.
	i := sort.Search(len(t.arrivals), func(i int) bool { return t.arrivals[i].Time > lo })
	for ; i < len(t.arrivals) && t.arrivals[i].Time <= end; i++ {
		if t.arrivals[i].Flow == f {
			return true
		}
	}
	return false
}

// LastArrival returns the time of the most recent arrival of f at or
// before end, and whether one exists.
func (t *Trace) LastArrival(f flows.ID, end float64) (float64, bool) {
	best, found := 0.0, false
	for _, a := range t.arrivals {
		if a.Time > end {
			break
		}
		if a.Flow == f {
			best, found = a.Time, true
		}
	}
	return best, found
}

// CountInWindow returns the number of arrivals of f in (end-window, end].
func (t *Trace) CountInWindow(f flows.ID, end, window float64) int {
	n := 0
	lo := end - window
	for _, a := range t.arrivals {
		if a.Time > end {
			break
		}
		if a.Time > lo && a.Flow == f {
			n++
		}
	}
	return n
}

// PoissonConfig configures trace generation.
type PoissonConfig struct {
	// Rates[f] is λ_f in arrivals per second.
	Rates []float64
	// Duration is the trace length in seconds.
	Duration float64
}

// Validate checks the configuration.
func (c PoissonConfig) Validate() error {
	if len(c.Rates) == 0 {
		return fmt.Errorf("workload: no flow rates")
	}
	if c.Duration <= 0 {
		return fmt.Errorf("workload: duration %v ≤ 0", c.Duration)
	}
	for f, r := range c.Rates {
		if r < 0 {
			return fmt.Errorf("workload: negative rate %v for flow %d", r, f)
		}
	}
	return nil
}

// GeneratePoisson samples an independent Poisson arrival process per flow
// over [0, Duration) and merges them into one time-ordered trace.
func GeneratePoisson(cfg PoissonConfig, rng *stats.RNG) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var arrivals []Arrival
	for f, rate := range cfg.Rates {
		if rate == 0 {
			continue
		}
		g := rng.Fork()
		for t := g.Exp(rate); t < cfg.Duration; t += g.Exp(rate) {
			arrivals = append(arrivals, Arrival{Time: t, Flow: flows.ID(f)})
		}
	}
	sort.Slice(arrivals, func(i, j int) bool {
		if arrivals[i].Time != arrivals[j].Time {
			return arrivals[i].Time < arrivals[j].Time
		}
		return arrivals[i].Flow < arrivals[j].Flow
	})
	return &Trace{arrivals: arrivals}, nil
}

// UniformRates draws λ_f uniformly from [0, 1) for n flows, the paper's
// evaluation setting (§VI-A).
func UniformRates(n int, rng *stats.RNG) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Float64()
	}
	return out
}

// StepArrivals discretizes a trace into model steps of width delta: the
// result's entry s lists the flows arriving in step s, i.e. during
// [s·delta, (s+1)·delta). The basic Markov model assumes at most one
// arrival per step; callers can inspect multi-arrival steps to validate a
// chosen Δ.
func StepArrivals(t *Trace, delta float64, steps int) [][]flows.ID {
	out := make([][]flows.ID, steps)
	for _, a := range t.arrivals {
		s := int(a.Time / delta)
		if s < 0 || s >= steps {
			continue
		}
		out[s] = append(out[s], a.Flow)
	}
	return out
}
