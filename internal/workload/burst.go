package workload

import (
	"fmt"
	"sort"

	"flowrecon/internal/flows"
	"flowrecon/internal/stats"
)

// The paper's model assumes Poisson arrivals (§IV-A1). Real traffic is
// often bursty; this file provides an ON/OFF Markov-modulated Poisson
// generator so the evaluation can measure how model misspecification
// degrades the attack (an ablation beyond the paper).

// BurstConfig configures Markov-modulated Poisson traffic: each flow
// alternates between an ON state (arrivals at BurstFactor × its base
// rate) and an OFF state (silent), with exponentially distributed state
// holding times. The long-run average rate matches the base rate, so the
// attacker's Poisson-fitted model sees the correct first moment but the
// wrong burst structure.
type BurstConfig struct {
	// Rates[f] is the long-run average rate λ_f (arrivals/second).
	Rates []float64
	// Duration is the trace length in seconds.
	Duration float64
	// BurstFactor is the ON-state rate multiplier (> 1).
	BurstFactor float64
	// MeanOn and MeanOff are the expected ON/OFF dwell times in seconds.
	MeanOn, MeanOff float64
}

// Validate checks the configuration. For the average rate to equal the
// base rate, BurstFactor must equal (MeanOn+MeanOff)/MeanOn.
func (c BurstConfig) Validate() error {
	if len(c.Rates) == 0 || c.Duration <= 0 {
		return fmt.Errorf("workload: bad burst config %+v", c)
	}
	if c.BurstFactor <= 1 || c.MeanOn <= 0 || c.MeanOff <= 0 {
		return fmt.Errorf("workload: bad burst shape %+v", c)
	}
	return nil
}

// DefaultBurstShape returns a shape whose ON fraction matches the burst
// factor, preserving the average rate: ON 20%% of the time at 5× rate.
func DefaultBurstShape() (burstFactor, meanOn, meanOff float64) {
	return 5, 0.5, 2.0
}

// GenerateBursty samples one ON/OFF modulated trace. The ON-state rate is
// scaled so each flow's long-run mean is its configured rate regardless
// of the dwell-time split.
func GenerateBursty(cfg BurstConfig, rng *stats.RNG) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var arrivals []Arrival
	onFrac := cfg.MeanOn / (cfg.MeanOn + cfg.MeanOff)
	for f, rate := range cfg.Rates {
		if rate == 0 {
			continue
		}
		g := rng.Fork()
		onRate := rate / onFrac // preserves the long-run mean
		t := 0.0
		on := g.Bernoulli(onFrac) // stationary initial state
		for t < cfg.Duration {
			var dwell float64
			if on {
				dwell = g.Exp(1 / cfg.MeanOn)
				end := t + dwell
				if end > cfg.Duration {
					end = cfg.Duration
				}
				for a := t + g.Exp(onRate); a < end; a += g.Exp(onRate) {
					arrivals = append(arrivals, Arrival{Time: a, Flow: flows.ID(f)})
				}
			} else {
				dwell = g.Exp(1 / cfg.MeanOff)
			}
			t += dwell
			on = !on
		}
	}
	sortArrivals(arrivals)
	return &Trace{arrivals: arrivals}, nil
}

// GeneratePeriodic samples deterministic traffic: flow f arrives exactly
// every 1/rate seconds with a uniform phase. It is the opposite extreme
// from Poisson (zero variance inter-arrivals) for robustness testing.
func GeneratePeriodic(cfg PoissonConfig, rng *stats.RNG) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var arrivals []Arrival
	for f, rate := range cfg.Rates {
		if rate == 0 {
			continue
		}
		period := 1 / rate
		for t := rng.Float64() * period; t < cfg.Duration; t += period {
			arrivals = append(arrivals, Arrival{Time: t, Flow: flows.ID(f)})
		}
	}
	sortArrivals(arrivals)
	return &Trace{arrivals: arrivals}, nil
}

func sortArrivals(arrivals []Arrival) {
	// Insertion into one slice then a single sort keeps determinism.
	sort.SliceStable(arrivals, func(i, j int) bool {
		if arrivals[i].Time != arrivals[j].Time {
			return arrivals[i].Time < arrivals[j].Time
		}
		return arrivals[i].Flow < arrivals[j].Flow
	})
}
