package workload

import (
	"math"
	"reflect"
	"testing"

	"flowrecon/internal/conftest"
	"flowrecon/internal/stats"
)

// Conformance tests for the heavy-tailed generators: the sampled
// distributions must match their configured parameters (chi-square
// against the closed-form CDFs, at the repository's conftest budgets),
// every generator must preserve the configured mean rate, and every
// generator must be byte-deterministic per seed.

// interarrivals extracts flow-0 interarrival times from a single-flow
// trace; the first arrival counts as an interarrival from t=0, which is
// exactly how the renewal generators sample it.
func interarrivals(t *testing.T, tr *Trace) []float64 {
	t.Helper()
	arr := tr.Arrivals()
	if len(arr) == 0 {
		t.Fatal("empty trace")
	}
	out := make([]float64, len(arr))
	prev := 0.0
	for i, a := range arr {
		out[i] = a.Time - prev
		prev = a.Time
	}
	return out
}

// binByQuantiles counts samples into nBins equiprobable bins whose edges
// come from the inverse CDF `quantile`.
func binByQuantiles(samples []float64, nBins int, quantile func(q float64) float64) ([]int, []float64) {
	edges := make([]float64, nBins-1)
	for i := 1; i < nBins; i++ {
		edges[i-1] = quantile(float64(i) / float64(nBins))
	}
	observed := make([]int, nBins)
	for _, x := range samples {
		b := 0
		for b < len(edges) && x >= edges[b] {
			b++
		}
		observed[b]++
	}
	expected := make([]float64, nBins)
	for i := range expected {
		expected[i] = 1 / float64(nBins)
	}
	return observed, expected
}

func TestParetoConformance(t *testing.T) {
	const (
		alpha = 1.5
		rate  = 400.0
		dur   = 40.0
	)
	tr, err := GeneratePareto(ParetoConfig{Rates: []float64{rate}, Duration: dur, Alpha: alpha}, stats.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	gaps := interarrivals(t, tr)
	if len(gaps) < 5000 {
		t.Fatalf("only %d interarrivals; generator starved", len(gaps))
	}

	xm := ParetoScale(alpha, rate)
	// Chi-square against the configured Pareto CDF on equiprobable bins:
	// quantile q is xm·(1−q)^(−1/α).
	observed, expected := binByQuantiles(gaps, 20, func(q float64) float64 {
		return xm * math.Pow(1-q, -1/alpha)
	})
	gof, err := conftest.ChiSquareGoF(observed, expected, 0)
	if err != nil {
		t.Fatal(err)
	}
	if gof.P < conftest.PFloor {
		t.Fatalf("Pareto interarrivals reject the configured distribution: χ²=%.1f dof=%d p=%.2e", gof.Stat, gof.DoF, gof.P)
	}

	// The tail-index MLE over samples from Pareto(α, xm) is
	// n / Σ ln(x/xm); it must recover the configured α.
	var sumLog float64
	for _, g := range gaps {
		sumLog += math.Log(g / xm)
	}
	alphaHat := float64(len(gaps)) / sumLog
	if math.Abs(alphaHat-alpha)/alpha > 0.05 {
		t.Fatalf("tail index estimate %.3f, configured %.3f", alphaHat, alpha)
	}

	// Mean preservation: the arrival count must track rate·duration. The
	// infinite-variance tail makes the count noisy, so the tolerance is
	// loose — this is a sanity bound, not the distribution test above.
	n := float64(len(gaps))
	if math.Abs(n-rate*dur)/(rate*dur) > 0.15 {
		t.Fatalf("arrival count %v vs configured mean %v", n, rate*dur)
	}
}

func TestLogNormalConformance(t *testing.T) {
	const (
		sigma = 1.5
		rate  = 400.0
		dur   = 40.0
	)
	tr, err := GenerateLogNormal(LogNormalConfig{Rates: []float64{rate}, Duration: dur, Sigma: sigma}, stats.NewRNG(12))
	if err != nil {
		t.Fatal(err)
	}
	gaps := interarrivals(t, tr)
	if len(gaps) < 5000 {
		t.Fatalf("only %d interarrivals; generator starved", len(gaps))
	}

	// Standardize to z = (ln x − μ)/σ and chi-square against the standard
	// normal on fixed bins, with expected masses from erf.
	mu := LogNormalMu(sigma, rate)
	zEdges := []float64{-2, -1.5, -1, -0.5, 0, 0.5, 1, 1.5, 2}
	phi := func(z float64) float64 { return 0.5 * (1 + math.Erf(z/math.Sqrt2)) }
	observed := make([]int, len(zEdges)+1)
	for _, g := range gaps {
		z := (math.Log(g) - mu) / sigma
		b := 0
		for b < len(zEdges) && z >= zEdges[b] {
			b++
		}
		observed[b]++
	}
	expected := make([]float64, len(zEdges)+1)
	prev := 0.0
	for i, e := range zEdges {
		expected[i] = phi(e) - prev
		prev = phi(e)
	}
	expected[len(zEdges)] = 1 - prev
	gof, err := conftest.ChiSquareGoF(observed, expected, 0)
	if err != nil {
		t.Fatal(err)
	}
	if gof.P < conftest.PFloor {
		t.Fatalf("log-normal interarrivals reject the configured distribution: χ²=%.1f dof=%d p=%.2e", gof.Stat, gof.DoF, gof.P)
	}

	// Parameter recovery: the sample mean and stddev of ln(gaps) are the
	// MLEs of (μ, σ).
	var m, s2 float64
	for _, g := range gaps {
		m += math.Log(g)
	}
	m /= float64(len(gaps))
	for _, g := range gaps {
		d := math.Log(g) - m
		s2 += d * d
	}
	s := math.Sqrt(s2 / float64(len(gaps)))
	if math.Abs(m-mu) > 0.1 || math.Abs(s-sigma)/sigma > 0.05 {
		t.Fatalf("recovered (μ=%.3f, σ=%.3f), configured (%.3f, %.3f)", m, s, mu, sigma)
	}
}

func TestDiurnalProfileConformance(t *testing.T) {
	const (
		period = 10.0
		amp    = 0.8
		rate   = 300.0
		dur    = 60.0 // whole number of periods: phase histogram is clean
	)
	profile := RateProfile{DiurnalPeriod: period, DiurnalAmp: amp}
	tr, err := GenerateModulated(PoissonConfig{Rates: []float64{rate}, Duration: dur}, profile, stats.NewRNG(13))
	if err != nil {
		t.Fatal(err)
	}
	arr := tr.Arrivals()
	if len(arr) < 5000 {
		t.Fatalf("only %d arrivals", len(arr))
	}

	// Phase histogram against the profile's integral per phase bin:
	// ∫(1 + A·sin(2πt/P)) dt over [a,b) = (b−a) − A·P/(2π)·(cos(2πb/P) − cos(2πa/P)).
	const nBins = 12
	observed := make([]int, nBins)
	for _, a := range arr {
		phase := math.Mod(a.Time, period)
		b := int(phase / period * nBins)
		if b >= nBins {
			b = nBins - 1
		}
		observed[b]++
	}
	expected := make([]float64, nBins)
	w := 2 * math.Pi / period
	for i := range expected {
		a := float64(i) * period / nBins
		b := float64(i+1) * period / nBins
		expected[i] = (b - a) - amp/w*(math.Cos(w*b)-math.Cos(w*a))
	}
	gof, err := conftest.ChiSquareGoF(observed, expected, 0)
	if err != nil {
		t.Fatal(err)
	}
	if gof.P < conftest.PFloor {
		t.Fatalf("diurnal phase histogram rejects the configured profile: χ²=%.1f dof=%d p=%.2e", gof.Stat, gof.DoF, gof.P)
	}

	// Mean preservation: over whole periods the normalized profile
	// integrates to 1, so the count must track rate·duration.
	n := float64(len(arr))
	if math.Abs(n-rate*dur)/(rate*dur) > 0.05 {
		t.Fatalf("arrival count %v vs configured mean %v", n, rate*dur)
	}
}

func TestFlashCrowdConformance(t *testing.T) {
	const (
		rate   = 100.0
		dur    = 60.0
		at     = 20.0
		flashD = 5.0
		factor = 8.0
	)
	profile := RateProfile{FlashAt: at, FlashDur: flashD, FlashFactor: factor}
	tr, err := GenerateModulated(PoissonConfig{Rates: []float64{rate}, Duration: dur}, profile, stats.NewRNG(14))
	if err != nil {
		t.Fatal(err)
	}
	arr := tr.Arrivals()
	inWindow := 0
	for _, a := range arr {
		if a.Time >= at && a.Time < at+flashD {
			inWindow++
		}
	}
	mean := profile.Mean(dur)
	wantTotal := rate * dur
	wantWindow := rate * factor * flashD / mean
	if math.Abs(float64(len(arr))-wantTotal)/wantTotal > 0.05 {
		t.Fatalf("total arrivals %d, want ≈%v (mean preservation)", len(arr), wantTotal)
	}
	if math.Abs(float64(inWindow)-wantWindow)/wantWindow > 0.10 {
		t.Fatalf("flash-window arrivals %d, want ≈%v", inWindow, wantWindow)
	}
	// The spike must actually concentrate traffic: the in-window rate has
	// to exceed the off-window rate by nearly the configured factor.
	offRate := float64(len(arr)-inWindow) / (dur - flashD)
	onRate := float64(inWindow) / flashD
	if onRate/offRate < factor*0.8 {
		t.Fatalf("flash concentration %.2f×, configured %v×", onRate/offRate, factor)
	}
}

func TestHeavyTailDeterminismPerSeed(t *testing.T) {
	rates := []float64{5, 3, 2}
	gens := map[string]func(seed int64) *Trace{
		"pareto": func(seed int64) *Trace {
			tr, err := GeneratePareto(ParetoConfig{Rates: rates, Duration: 30, Alpha: 1.6}, stats.NewRNG(seed))
			if err != nil {
				t.Fatal(err)
			}
			return tr
		},
		"lognormal": func(seed int64) *Trace {
			tr, err := GenerateLogNormal(LogNormalConfig{Rates: rates, Duration: 30, Sigma: 1.2}, stats.NewRNG(seed))
			if err != nil {
				t.Fatal(err)
			}
			return tr
		},
		"modulated": func(seed int64) *Trace {
			tr, err := GenerateModulated(
				PoissonConfig{Rates: rates, Duration: 30},
				RateProfile{DiurnalPeriod: 10, DiurnalAmp: 0.5, FlashAt: 5, FlashDur: 2, FlashFactor: 4},
				stats.NewRNG(seed))
			if err != nil {
				t.Fatal(err)
			}
			return tr
		},
	}
	for name, gen := range gens {
		t.Run(name, func(t *testing.T) {
			a, b := gen(99), gen(99)
			if !reflect.DeepEqual(a.Arrivals(), b.Arrivals()) {
				t.Fatal("same seed produced different traces")
			}
			c := gen(100)
			if reflect.DeepEqual(a.Arrivals(), c.Arrivals()) {
				t.Fatal("different seeds produced identical traces")
			}
			for i, arr := range a.Arrivals() {
				if i > 0 && arr.Time < a.Arrivals()[i-1].Time {
					t.Fatalf("arrivals out of order at %d", i)
				}
			}
		})
	}
}

func TestModulatedFallsBackToPoisson(t *testing.T) {
	cfg := PoissonConfig{Rates: []float64{10, 5}, Duration: 20}
	plain, err := GeneratePoisson(cfg, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	mod, err := GenerateModulated(cfg, RateProfile{}, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Arrivals(), mod.Arrivals()) {
		t.Fatal("disabled profile must degenerate to GeneratePoisson exactly")
	}
}

func TestHeavyTailConfigValidation(t *testing.T) {
	rng := stats.NewRNG(1)
	if _, err := GeneratePareto(ParetoConfig{Rates: []float64{1}, Duration: 10, Alpha: 1.0}, rng); err == nil {
		t.Error("α=1 (no mean) accepted")
	}
	if _, err := GenerateLogNormal(LogNormalConfig{Rates: []float64{1}, Duration: 10, Sigma: 0}, rng); err == nil {
		t.Error("σ=0 accepted")
	}
	if _, err := GenerateModulated(PoissonConfig{Rates: []float64{1}, Duration: 10},
		RateProfile{DiurnalPeriod: 5, DiurnalAmp: 1.5}, rng); err == nil {
		t.Error("diurnal amplitude > 1 accepted")
	}
	if _, err := GenerateModulated(PoissonConfig{Rates: []float64{1}, Duration: 10},
		RateProfile{FlashDur: 5, FlashFactor: 0.5}, rng); err == nil {
		t.Error("flash factor < 1 accepted")
	}
}
