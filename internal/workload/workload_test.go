package workload

import (
	"math"
	"sort"
	"testing"

	"flowrecon/internal/stats"
)

func TestValidate(t *testing.T) {
	if err := (PoissonConfig{}).Validate(); err == nil {
		t.Fatal("empty config accepted")
	}
	if err := (PoissonConfig{Rates: []float64{1}, Duration: 0}).Validate(); err == nil {
		t.Fatal("zero duration accepted")
	}
	if err := (PoissonConfig{Rates: []float64{-1}, Duration: 1}).Validate(); err == nil {
		t.Fatal("negative rate accepted")
	}
	if err := (PoissonConfig{Rates: []float64{0, 1}, Duration: 1}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratePoissonOrderedAndBounded(t *testing.T) {
	tr, err := GeneratePoisson(PoissonConfig{Rates: []float64{2, 0.5, 0}, Duration: 50}, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	as := tr.Arrivals()
	if !sort.SliceIsSorted(as, func(i, j int) bool { return as[i].Time < as[j].Time }) {
		t.Fatal("trace not time ordered")
	}
	for _, a := range as {
		if a.Time < 0 || a.Time >= 50 {
			t.Fatalf("arrival out of range: %+v", a)
		}
		if a.Flow == 2 {
			t.Fatal("zero-rate flow arrived")
		}
	}
}

func TestGeneratePoissonRates(t *testing.T) {
	const dur = 2000.0
	tr, err := GeneratePoisson(PoissonConfig{Rates: []float64{1.5, 0.25}, Duration: dur}, stats.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, a := range tr.Arrivals() {
		counts[int(a.Flow)]++
	}
	if got := float64(counts[0]) / dur; math.Abs(got-1.5) > 0.1 {
		t.Fatalf("flow0 rate = %v", got)
	}
	if got := float64(counts[1]) / dur; math.Abs(got-0.25) > 0.05 {
		t.Fatalf("flow1 rate = %v", got)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := PoissonConfig{Rates: []float64{1, 2}, Duration: 10}
	a, _ := GeneratePoisson(cfg, stats.NewRNG(5))
	b, _ := GeneratePoisson(cfg, stats.NewRNG(5))
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	aa, bb := a.Arrivals(), b.Arrivals()
	for i := range aa {
		if aa[i] != bb[i] {
			t.Fatalf("arrival %d differs", i)
		}
	}
}

func TestOccurredWithin(t *testing.T) {
	tr := &Trace{arrivals: []Arrival{{1, 0}, {3, 1}, {7, 0}}}
	if !tr.OccurredWithin(0, 8, 2) {
		t.Fatal("arrival at 7 in (6,8] missed")
	}
	if tr.OccurredWithin(0, 6, 2) {
		t.Fatal("no arrival of flow0 in (4,6]")
	}
	if !tr.OccurredWithin(1, 3, 1) {
		t.Fatal("arrival exactly at window end missed")
	}
	if tr.OccurredWithin(1, 5, 2) {
		t.Fatal("(3,5] wrongly includes arrival at 3")
	}
}

func TestLastArrivalAndCount(t *testing.T) {
	tr := &Trace{arrivals: []Arrival{{1, 0}, {3, 0}, {7, 0}, {9, 1}}}
	if at, ok := tr.LastArrival(0, 8); !ok || at != 7 {
		t.Fatalf("last = %v %v", at, ok)
	}
	if at, ok := tr.LastArrival(0, 2); !ok || at != 1 {
		t.Fatalf("last = %v %v", at, ok)
	}
	if _, ok := tr.LastArrival(1, 5); ok {
		t.Fatal("found flow1 before it arrived")
	}
	if n := tr.CountInWindow(0, 8, 10); n != 3 {
		t.Fatalf("count = %d", n)
	}
	if n := tr.CountInWindow(0, 8, 2); n != 1 {
		t.Fatalf("count = %d", n)
	}
}

func TestUniformRates(t *testing.T) {
	rs := UniformRates(100, stats.NewRNG(2))
	if len(rs) != 100 {
		t.Fatalf("len = %d", len(rs))
	}
	for _, r := range rs {
		if r < 0 || r >= 1 {
			t.Fatalf("rate out of [0,1): %v", r)
		}
	}
}

func TestStepArrivals(t *testing.T) {
	tr := &Trace{arrivals: []Arrival{{0.05, 0}, {0.15, 1}, {0.17, 0}, {0.95, 1}, {2.5, 0}}}
	steps := StepArrivals(tr, 0.1, 10)
	if len(steps) != 10 {
		t.Fatalf("steps = %d", len(steps))
	}
	if len(steps[0]) != 1 || steps[0][0] != 0 {
		t.Fatalf("step0 = %v", steps[0])
	}
	if len(steps[1]) != 2 {
		t.Fatalf("step1 = %v", steps[1])
	}
	if len(steps[9]) != 1 || steps[9][0] != 1 {
		t.Fatalf("step9 = %v", steps[9])
	}
	// Arrival at 2.5 is beyond the 10-step horizon and must be dropped.
	total := 0
	for _, s := range steps {
		total += len(s)
	}
	if total != 4 {
		t.Fatalf("total binned = %d", total)
	}
}

func TestPoissonEmpiricalAbsence(t *testing.T) {
	// P(no arrival of f in window T) should be e^{-λT}: the closed form
	// the paper uses for P(X̂ = 0).
	const (
		lambda = 0.2
		T      = 3.0
		trials = 4000
	)
	rng := stats.NewRNG(123)
	absent := 0
	for i := 0; i < trials; i++ {
		tr, err := GeneratePoisson(PoissonConfig{Rates: []float64{lambda}, Duration: T}, rng.Fork())
		if err != nil {
			t.Fatal(err)
		}
		if !tr.OccurredWithin(0, T, T) {
			absent++
		}
	}
	got := float64(absent) / trials
	want := math.Exp(-lambda * T)
	if math.Abs(got-want) > 0.03 {
		t.Fatalf("P(absent) = %v, want ≈ %v", got, want)
	}
}

func TestGenerateBurstyMeanRate(t *testing.T) {
	bf, on, off := DefaultBurstShape()
	cfg := BurstConfig{
		Rates:       []float64{0.8},
		Duration:    5000,
		BurstFactor: bf,
		MeanOn:      on,
		MeanOff:     off,
	}
	tr, err := GenerateBursty(cfg, stats.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	got := float64(tr.Len()) / cfg.Duration
	if math.Abs(got-0.8) > 0.08 {
		t.Fatalf("bursty long-run rate = %v, want ≈ 0.8", got)
	}
	// Burstiness: the variance of per-second counts must exceed the
	// Poisson variance (= mean) substantially.
	counts := make([]float64, int(cfg.Duration))
	for _, a := range tr.Arrivals() {
		counts[int(a.Time)]++
	}
	s := stats.Summarize(counts)
	if s.Stddev*s.Stddev < 1.5*s.Mean {
		t.Fatalf("trace not bursty: var %v vs mean %v", s.Stddev*s.Stddev, s.Mean)
	}
}

func TestGenerateBurstyValidation(t *testing.T) {
	if _, err := GenerateBursty(BurstConfig{}, stats.NewRNG(1)); err == nil {
		t.Fatal("empty burst config accepted")
	}
	if _, err := GenerateBursty(BurstConfig{Rates: []float64{1}, Duration: 1, BurstFactor: 0.5, MeanOn: 1, MeanOff: 1}, stats.NewRNG(1)); err == nil {
		t.Fatal("burst factor ≤ 1 accepted")
	}
}

func TestGeneratePeriodic(t *testing.T) {
	tr, err := GeneratePeriodic(PoissonConfig{Rates: []float64{2, 0}, Duration: 10}, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	// Exactly ⌊10·2⌋ ± 1 arrivals with uniform phase.
	if n := tr.Len(); n < 19 || n > 21 {
		t.Fatalf("periodic arrivals = %d", n)
	}
	as := tr.Arrivals()
	for i := 1; i < len(as); i++ {
		gap := as[i].Time - as[i-1].Time
		if math.Abs(gap-0.5) > 1e-9 {
			t.Fatalf("gap %d = %v, want 0.5", i, gap)
		}
	}
	if _, err := GeneratePeriodic(PoissonConfig{}, stats.NewRNG(1)); err == nil {
		t.Fatal("bad periodic config accepted")
	}
}
