package recon

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"flowrecon/internal/flows"
)

// TestInferCapacityNeverOverflows: against a table whose capacity exceeds
// every fill round (here: larger than the whole candidate pool), the
// re-probe always hits, no round ever evicts, and the inference must
// report failure explicitly — never fabricate a capacity.
func TestInferCapacityNeverOverflows(t *testing.T) {
	const maxCap = 5
	need := 0
	for k := 1; k <= maxCap+1; k++ {
		need += k
	}
	p := microflowProber(t, need, need+10, 1000) // capacity can hold every candidate
	candidates := make([]flows.ID, need)
	for i := range candidates {
		candidates[i] = flows.ID(i)
	}
	got, err := InferCapacity(p, candidates, maxCap, 0, 0.001)
	if err == nil {
		t.Fatalf("never-overflowing table yielded capacity %d, want error", got)
	}
	if got != 0 {
		t.Fatalf("failed inference returned capacity %d, want 0", got)
	}
	if !strings.Contains(err.Error(), "maxCap") {
		t.Fatalf("error does not name the exceeded bound: %v", err)
	}
}

// errProber fails after a fixed number of successful probes, modeling a
// transport that dies mid-measurement.
type errProber struct {
	inner Prober
	left  int
	err   error
}

func (p *errProber) Probe(f flows.ID, now float64) (bool, error) {
	if p.left <= 0 {
		return false, p.err
	}
	p.left--
	return p.inner.Probe(f, now)
}

// TestProberErrorsPropagate: a probe failure at any point — during a
// capacity fill round, the idle-timeout prime, mid-grid, or inside the
// coverage matrix — surfaces as that error, wrapped or verbatim, never as
// a fabricated measurement.
func TestProberErrorsPropagate(t *testing.T) {
	boom := errors.New("transport died")
	fresh := func(after int) *errProber {
		return &errProber{inner: microflowProber(t, 30, 4, 1000), left: after, err: boom}
	}
	candidates := make([]flows.ID, 30)
	for i := range candidates {
		candidates[i] = flows.ID(i)
	}
	for _, after := range []int{0, 1, 3} {
		if _, err := InferCapacity(fresh(after), candidates, 4, 0, 0.001); !errors.Is(err, boom) {
			t.Errorf("InferCapacity after %d probes: err = %v, want %v", after, err, boom)
		}
		if _, _, err := InferIdleTimeout(fresh(after), 0, []float64{1, 2, 4}, 0); !errors.Is(err, boom) {
			t.Errorf("InferIdleTimeout after %d probes: err = %v, want %v", after, err, boom)
		}
		if _, err := InferCoverage(fresh(after), []flows.ID{0, 1}, 0, 10, 0.01); !errors.Is(err, boom) {
			t.Errorf("InferCoverage after %d probes: err = %v, want %v", after, err, boom)
		}
	}
}

// contendingProber wraps a prober and injects a competitor flow right
// before a chosen probe call — background traffic landing between the
// attacker's probe pair.
type contendingProber struct {
	inner      Prober
	competitor flows.ID
	before     int // inject before the n-th Probe call (0-based)
	calls      int
}

func (p *contendingProber) Probe(f flows.ID, now float64) (bool, error) {
	if p.calls == p.before {
		if _, err := p.inner.Probe(p.competitor, now); err != nil {
			return false, fmt.Errorf("inject competitor: %w", err)
		}
	}
	p.calls++
	return p.inner.Probe(f, now)
}

// TestInferIdleTimeoutStraddlesEviction documents the known failure mode
// of the TTL bracketing when the table is contended: if background traffic
// evicts the probed rule between a probe pair, the follow-up miss is
// indistinguishable from a timeout expiry, and the bracket collapses onto
// the contended gap — far below the true TTL. The function must still
// return a well-formed bracket (lo < hi, no error, no hang); the §III-C
// quiet-channel assumption, not the code, is what rules the aliasing out.
func TestInferIdleTimeoutStraddlesEviction(t *testing.T) {
	// Capacity-1 table, TTL 1000 s: the rule can only leave by eviction.
	base := microflowProber(t, 2, 1, 1000)
	// Probe calls: 0 = prime(f0), 1 = gap 2, 2 = gap 5, 3 = gap 9.
	// The competitor lands just before call 2, evicting f0's rule.
	p := &contendingProber{inner: base, competitor: 1, before: 2}
	lo, hi, err := InferIdleTimeout(p, 0, []float64{2, 5, 9}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 2 || hi != 5 {
		t.Fatalf("bracket = (%v, %v], want the aliased (2, 5]", lo, hi)
	}
	if hi >= 1000 {
		t.Fatalf("test lost its point: bracket reached the true TTL")
	}

	// Same scenario without contention: the bracket correctly stays open
	// at the end of the grid (no expiry observed).
	clean := microflowProber(t, 2, 1, 1000)
	lo, hi, err = InferIdleTimeout(clean, 0, []float64{2, 5, 9}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 9 || hi != 9 {
		t.Fatalf("uncontended bracket = (%v, %v], want open (9, 9]", lo, hi)
	}

	// Contention during the prime itself: the prime installs, the
	// competitor evicts, the first gap probe misses → bracket (0, g₀].
	primed := &contendingProber{inner: microflowProber(t, 2, 1, 1000), competitor: 1, before: 1}
	lo, hi, err = InferIdleTimeout(primed, 0, []float64{2, 5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 0 || hi != 2 {
		t.Fatalf("evicted-prime bracket = (%v, %v], want (0, 2]", lo, hi)
	}
}
