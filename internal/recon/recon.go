// Package recon implements the auxiliary reconnaissance primitives the
// paper's threat model assumes the attacker already has (§III-C): the
// switch's flow-table capacity, which "the attacker could obtain …
// through previous attacks [14]" (Leng et al.'s table-overflow inference),
// and rule idle-timeout durations, recoverable from the same timing
// channel by spacing probes.
//
// Everything here works against any implementation of Prober — the bare
// flow table, the virtual-time network simulator, or the real-TCP
// OpenFlow switch.
package recon

import (
	"fmt"

	"flowrecon/internal/flows"
	"flowrecon/internal/flowtable"
	"flowrecon/internal/rules"
)

// Prober issues one probe flow at a (virtual or real) time and reports
// whether it hit a cached rule. Implementations must reproduce the
// switch's side effects: a miss installs the covering rule, a hit
// refreshes its idle timer.
type Prober interface {
	Probe(f flows.ID, now float64) (hit bool, err error)
}

// TableProber adapts a bare flow table plus its policy into a Prober.
type TableProber struct {
	Rules *rules.Set
	Table *flowtable.Table
}

var _ Prober = (*TableProber)(nil)

// Probe implements Prober with the reactive install semantics.
func (p *TableProber) Probe(f flows.ID, now float64) (bool, error) {
	if _, hit := p.Table.Lookup(f, now); hit {
		return true, nil
	}
	if j, covered := p.Rules.HighestCovering(f); covered {
		p.Table.Install(j, now)
	}
	return false, nil
}

// InferCapacity estimates the flow-table capacity à la Leng et al. [14]:
// insert k distinct-rule flows back to back, then re-probe the first; it
// misses exactly when the k-th insertion overflowed the table and evicted
// it. candidates must install pairwise-distinct rules (microflows); each
// round consumes a fresh k+1-flow prefix window, so len(candidates) must
// be at least Σ_{k=1..maxCap+1}(k+1). gap is the spacing between probes —
// keep it far below every rule TTL.
func InferCapacity(p Prober, candidates []flows.ID, maxCap int, start, gap float64) (int, error) {
	if maxCap < 1 {
		return 0, fmt.Errorf("recon: maxCap %d < 1", maxCap)
	}
	now := start
	offset := 0
	for k := 1; k <= maxCap+1; k++ {
		if offset+k > len(candidates) {
			return 0, fmt.Errorf("recon: need %d candidate flows, have %d", offset+k, len(candidates))
		}
		window := candidates[offset : offset+k]
		offset += k
		// Fill with k distinct rules, oldest first.
		for _, f := range window {
			if _, err := p.Probe(f, now); err != nil {
				return 0, err
			}
			now += gap
		}
		// Re-probe the first: with k ≤ capacity it is still cached.
		hit, err := p.Probe(window[0], now)
		if err != nil {
			return 0, err
		}
		now += gap
		if !hit {
			// The k-th insertion evicted the oldest entry: the table
			// holds exactly k-1 rules.
			return k - 1, nil
		}
	}
	return 0, fmt.Errorf("recon: no eviction up to %d rules; capacity exceeds maxCap", maxCap)
}

// InferIdleTimeout estimates a rule's idle timeout by spacing probe pairs:
// after any probe the rule is freshly timed (a miss installs it, a hit
// refreshes it), so a follow-up probe after gap g hits iff TTL > g. The
// result brackets the TTL between the largest surviving gap and the
// smallest expiring gap from the given ascending grid: lo < TTL ≤ hi.
// hi is +Inf-like (the last grid value) when no gap expired the rule.
func InferIdleTimeout(p Prober, f flows.ID, grid []float64, start float64) (lo, hi float64, err error) {
	if len(grid) == 0 {
		return 0, 0, fmt.Errorf("recon: empty gap grid")
	}
	now := start
	// Prime: ensure the rule is installed and freshly timed.
	if _, err := p.Probe(f, now); err != nil {
		return 0, 0, err
	}
	lo, hi = 0, grid[len(grid)-1]
	for _, g := range grid {
		if g <= 0 {
			return 0, 0, fmt.Errorf("recon: non-positive gap %v", g)
		}
		now += g
		hit, err := p.Probe(f, now)
		if err != nil {
			return 0, 0, err
		}
		if hit {
			lo = g // survived g of idleness: TTL > g
			continue
		}
		hi = g // expired within g: TTL ≤ g (and the miss reinstalled it)
		return lo, hi, nil
	}
	return lo, hi, nil
}

// InferCoverage recovers the flow→rule coverage relation the §III-C
// threat model assumes (which the paper suggests may come from "reverse
// engineering techniques", ref [15]): after the table has been left to
// drain, sending flow i installs the highest-priority rule covering i;
// an immediate probe of flow j hits iff that rule also covers j. The
// result is a boolean matrix covered[i][j] = "i's install covers j".
// drain is the quiet period between pairs (longer than every rule TTL);
// gap is the spacing between the install and the probe.
func InferCoverage(p Prober, probeFlows []flows.ID, start, drain, gap float64) ([][]bool, error) {
	if drain <= gap {
		return nil, fmt.Errorf("recon: drain %v must exceed gap %v", drain, gap)
	}
	n := len(probeFlows)
	covered := make([][]bool, n)
	now := start
	for i := range covered {
		covered[i] = make([]bool, n)
		for j := range covered[i] {
			now += drain // let every rule expire
			if _, err := p.Probe(probeFlows[i], now); err != nil {
				return nil, err
			}
			now += gap
			hit, err := p.Probe(probeFlows[j], now)
			if err != nil {
				return nil, err
			}
			covered[i][j] = hit
		}
	}
	return covered, nil
}
