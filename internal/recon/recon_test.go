package recon

import (
	"fmt"
	"testing"

	"flowrecon/internal/flows"
	"flowrecon/internal/flowtable"
	"flowrecon/internal/rules"
)

// microflowProber builds a TableProber over nflows microflow rules (one
// rule per flow, equal TTLs) and a table of the given capacity.
func microflowProber(t *testing.T, nflows, capacity, ttlSteps int) *TableProber {
	t.Helper()
	rl := make([]rules.Rule, nflows)
	for i := range rl {
		rl[i] = rules.Rule{
			Name:     fmt.Sprintf("micro%d", i),
			Cover:    flows.SetOf(flows.ID(i)),
			Priority: i + 1,
			Timeout:  ttlSteps,
		}
	}
	rs, err := rules.NewSet(rl)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := flowtable.New(rs, capacity, 1) // 1 s per step
	if err != nil {
		t.Fatal(err)
	}
	return &TableProber{Rules: rs, Table: tbl}
}

func TestTableProberSemantics(t *testing.T) {
	p := microflowProber(t, 4, 2, 10)
	hit, err := p.Probe(0, 0)
	if err != nil || hit {
		t.Fatalf("first probe: hit=%v err=%v", hit, err)
	}
	hit, err = p.Probe(0, 1)
	if err != nil || !hit {
		t.Fatalf("second probe: hit=%v err=%v", hit, err)
	}
}

func TestInferCapacity(t *testing.T) {
	for _, capacity := range []int{1, 2, 3, 5, 8} {
		// Enough candidates for rounds up to maxCap+1.
		need := 0
		maxCap := 10
		for k := 1; k <= maxCap+1; k++ {
			need += k
		}
		p := microflowProber(t, need, capacity, 1000)
		candidates := make([]flows.ID, need)
		for i := range candidates {
			candidates[i] = flows.ID(i)
		}
		got, err := InferCapacity(p, candidates, maxCap, 0, 0.001)
		if err != nil {
			t.Fatalf("capacity %d: %v", capacity, err)
		}
		if got != capacity {
			t.Errorf("capacity %d inferred as %d", capacity, got)
		}
	}
}

func TestInferCapacityErrors(t *testing.T) {
	p := microflowProber(t, 4, 2, 1000)
	if _, err := InferCapacity(p, []flows.ID{0, 1, 2, 3}, 0, 0, 0.001); err == nil {
		t.Fatal("maxCap 0 accepted")
	}
	if _, err := InferCapacity(p, []flows.ID{0, 1}, 5, 0, 0.001); err == nil {
		t.Fatal("insufficient candidates accepted")
	}
	// Capacity above maxCap must be reported, not mis-inferred.
	big := microflowProber(t, 20, 19, 1000)
	candidates := make([]flows.ID, 20)
	for i := range candidates {
		candidates[i] = flows.ID(i)
	}
	if _, err := InferCapacity(big, candidates, 3, 0, 0.001); err == nil {
		t.Fatal("capacity beyond maxCap not flagged")
	}
}

func TestInferIdleTimeout(t *testing.T) {
	// TTL = 10 steps × 1 s = 10 s.
	p := microflowProber(t, 2, 2, 10)
	lo, hi, err := InferIdleTimeout(p, 0, []float64{2, 5, 9, 11, 20}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !(lo < 10 && 10 <= hi) {
		t.Fatalf("TTL bracket (%v, %v] misses the true 10 s", lo, hi)
	}
	if lo != 9 || hi != 11 {
		t.Fatalf("bracket = (%v, %v], want (9, 11]", lo, hi)
	}
}

func TestInferIdleTimeoutNoExpiry(t *testing.T) {
	p := microflowProber(t, 2, 2, 1000) // 1000 s TTL, grid ends at 20 s
	lo, hi, err := InferIdleTimeout(p, 0, []float64{5, 20}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 20 || hi != 20 {
		t.Fatalf("open bracket = (%v, %v], want (20, 20] (no expiry observed)", lo, hi)
	}
}

func TestInferIdleTimeoutErrors(t *testing.T) {
	p := microflowProber(t, 2, 2, 10)
	if _, _, err := InferIdleTimeout(p, 0, nil, 0); err == nil {
		t.Fatal("empty grid accepted")
	}
	if _, _, err := InferIdleTimeout(p, 0, []float64{-1}, 0); err == nil {
		t.Fatal("negative gap accepted")
	}
}

func TestInferCoverage(t *testing.T) {
	// Figure 2c structure: rule1 covers {0,1} (prio 2), rule2 covers
	// {0,2} (prio 1). Installing flow 0 installs rule1 → covers flows
	// 0 and 1 but not 2. Installing flow 2 installs rule2 → covers 0, 2.
	rs, err := rules.NewSet([]rules.Rule{
		{Name: "rule1", Cover: flows.SetOf(0, 1), Priority: 2, Timeout: 5},
		{Name: "rule2", Cover: flows.SetOf(0, 2), Priority: 1, Timeout: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := flowtable.New(rs, 4, 1) // TTL 5 s
	if err != nil {
		t.Fatal(err)
	}
	p := &TableProber{Rules: rs, Table: tbl}
	covered, err := InferCoverage(p, []flows.ID{0, 1, 2}, 0, 10, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]bool{
		{true, true, false}, // install via f0 → rule1 covers f0, f1
		{true, true, false}, // install via f1 → rule1
		{true, false, true}, // install via f2 → rule2 covers f0, f2
	}
	for i := range want {
		for j := range want[i] {
			if covered[i][j] != want[i][j] {
				t.Errorf("covered[%d][%d] = %v, want %v", i, j, covered[i][j], want[i][j])
			}
		}
	}
	if _, err := InferCoverage(p, []flows.ID{0}, 0, 1, 2); err == nil {
		t.Fatal("drain ≤ gap accepted")
	}
}
