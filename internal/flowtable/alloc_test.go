package flowtable

import (
	"testing"

	"flowrecon/internal/flows"
	"flowrecon/internal/testutil"
)

// TestTableLookupHitZeroAlloc gates the Lookup hit path: matching a
// cached rule (including the idle-timer refresh bookkeeping) must not
// allocate. The match predicate is built once at construction precisely
// so this path stays closure-free.
func TestTableLookupHitZeroAlloc(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	rs := testRules(t)
	tbl, err := New(rs, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	tbl.Install(0, 0)
	// Repeated matches at one instant: the expiry does not move, so not
	// even the expiry index is touched.
	avg := testing.AllocsPerRun(500, func() {
		if _, ok := tbl.Lookup(0, 1); !ok {
			t.Fatal("lookup missed a cached rule")
		}
	})
	if avg != 0 {
		t.Fatalf("Lookup hit at fixed time allocates %v allocs/run, want 0", avg)
	}
	// Advancing time: each hit refreshes the idle timer and pushes one
	// expiry-index node. The index storage amortizes, so the ISSUE's
	// budget of ≤ 1 alloc per hit holds with room to spare.
	now := 1.0
	avg = testing.AllocsPerRun(500, func() {
		now += 0.25
		if _, ok := tbl.Lookup(0, now); !ok {
			t.Fatal("lookup missed a cached rule")
		}
	})
	if avg > 1 {
		t.Fatalf("Lookup hit while advancing allocates %v allocs/run, want ≤ 1", avg)
	}
}

// TestTableChurnSteadyStateAllocs gates the full miss→install→evict cycle
// at capacity: after warmup the churn loop must run allocation-free on
// average (slot storage is reused in place; the expiry index recycles as
// stale nodes surface).
func TestTableChurnSteadyStateAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	rs := testRules(t)
	tbl, err := New(rs, 1, 1) // capacity 1: every other install evicts
	if err != nil {
		t.Fatal(err)
	}
	now := 0.0
	op := func(f flows.ID) {
		if _, hit := tbl.Lookup(f, now); !hit {
			if j, ok := rs.HighestCovering(f); ok {
				tbl.Install(j, now)
			}
		}
	}
	for i := 0; i < 64; i++ { // warm the index storage
		now += 0.5
		op(flows.ID(i % 3))
	}
	avg := testing.AllocsPerRun(500, func() {
		now += 0.5
		op(0)
		op(2)
	})
	if avg != 0 {
		t.Fatalf("steady-state churn allocates %v allocs/run, want 0", avg)
	}
}
