package flowtable

import (
	"testing"

	"flowrecon/internal/flows"
	"flowrecon/internal/rules"
	"flowrecon/internal/stats"
)

// removal is one OnRemove callback observation.
type removal struct {
	ID     int
	Reason EvictionReason
	At     float64
}

// runPoissonRemovalTrace replays one synthetic trial — Poisson arrivals
// over the §VI-A-style generated rule set through a small reactive table —
// and returns the complete rule-removal event sequence (expirations and
// evictions, in callback order).
func runPoissonRemovalTrace(t *testing.T, seed int64) []removal {
	t.Helper()
	rs, err := rules.Generate(rules.DefaultGenerateConfig(0.05), stats.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := New(rs, 4, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	var out []removal
	tbl.OnRemove = func(id int, reason EvictionReason, at float64) {
		out = append(out, removal{ID: id, Reason: reason, At: at})
	}
	rng := stats.NewRNG(seed + 1)
	now := 0.0
	for i := 0; i < 4000; i++ {
		now += rng.Exp(24) // ~1.5 arrivals per flow-second over 16 flows
		f := flows.ID(rng.Intn(16))
		if _, hit := tbl.Lookup(f, now); !hit {
			if j, ok := rs.HighestCovering(f); ok {
				tbl.Install(j, now)
			}
		}
	}
	tbl.Len(now + 1e6) // flush: everything left expires in one batch
	return out
}

// TestExpireOrderReproducible is the regression test for the
// map-iteration nondeterminism the original expire loop had: the same
// trial run twice must produce byte-identical rule-removal event
// sequences, since OnRemove ordering feeds FLOW_REMOVED notifications,
// telemetry traces, and span forests.
func TestExpireOrderReproducible(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		a := runPoissonRemovalTrace(t, seed)
		b := runPoissonRemovalTrace(t, seed)
		if len(a) == 0 {
			t.Fatalf("seed %d: trial produced no removals", seed)
		}
		if len(a) != len(b) {
			t.Fatalf("seed %d: removal counts differ: %d vs %d", seed, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: removal %d diverged: %+v vs %+v", seed, i, a[i], b[i])
			}
		}
	}
}

// TestExpireBatchOrderDeterministic pins the order contract itself:
// when one call processes several expirations, they fire in (expiry
// time, rule ID) order — including the rule-ID tie-break for entries
// expiring at the same instant.
func TestExpireBatchOrderDeterministic(t *testing.T) {
	rs, err := rules.NewSet([]rules.Rule{
		{Name: "a", Cover: flows.SetOf(0), Priority: 4, Timeout: 6},
		{Name: "b", Cover: flows.SetOf(1), Priority: 3, Timeout: 2},
		{Name: "c", Cover: flows.SetOf(2), Priority: 2, Timeout: 6}, // ties with "a"
		{Name: "d", Cover: flows.SetOf(3), Priority: 1, Timeout: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := New(rs, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	var got []removal
	tbl.OnRemove = func(id int, reason EvictionReason, at float64) {
		got = append(got, removal{ID: id, Reason: reason, At: at})
	}
	tbl.Install(2, 0) // expires at 6 (installation order scrambled on purpose)
	tbl.Install(0, 0) // expires at 6: same instant, smaller ID fires first
	tbl.Install(3, 0) // expires at 4
	tbl.Install(1, 0) // expires at 2
	tbl.Len(10)       // one batch expires all four
	want := []removal{
		{ID: 1, Reason: ReasonExpired, At: 10},
		{ID: 3, Reason: ReasonExpired, At: 10},
		{ID: 0, Reason: ReasonExpired, At: 10},
		{ID: 2, Reason: ReasonExpired, At: 10},
	}
	if len(got) != len(want) {
		t.Fatalf("removals = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("removal %d = %+v, want %+v (expirations must fire in (time, rule ID) order)", i, got[i], want[i])
		}
	}
}

// TestIdleRefreshInvalidatesQueuedExpiry exercises the lazy-invalidation
// path directly: a refreshed idle timer must survive its originally
// queued expiry, and the stale index node must not fire a second removal
// when it surfaces.
func TestIdleRefreshInvalidatesQueuedExpiry(t *testing.T) {
	rs := testRules(t) // rule0: idle timeout 4 s
	tbl, err := New(rs, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	removals := 0
	tbl.OnRemove = func(int, EvictionReason, float64) { removals++ }
	tbl.Install(0, 0)
	for now := 3.0; now <= 30; now += 3 { // refresh before every expiry
		if _, ok := tbl.Lookup(0, now); !ok {
			t.Fatalf("rule expired at t=%v despite refreshes", now)
		}
	}
	if removals != 0 {
		t.Fatalf("%d removals fired for a continuously refreshed rule", removals)
	}
	if tbl.Contains(0, 40) {
		t.Fatal("rule survived past its final idle window")
	}
	if removals != 1 {
		t.Fatalf("removals = %d after final expiry, want exactly 1 (stale index nodes must not re-fire)", removals)
	}
}
