// Package flowtable implements the SDN switch's rule cache, in two forms:
//
//   - Table: a continuous-time flow table used by the switch simulator and
//     the OpenFlow switch agent. It implements the OpenFlow behaviours the
//     attack depends on — highest-priority match, idle and hard timeouts,
//     and eviction of the entry with the smallest remaining lifetime when
//     the table is full (the Open vSwitch policy cited in the paper).
//
//   - StepTable: a discrete-time table whose step semantics are exactly the
//     transition relation of the paper's basic Markov model (§IV-A). It is
//     used to validate the models against an executable reference.
package flowtable

import (
	"fmt"

	"flowrecon/internal/flows"
	"flowrecon/internal/rules"
)

// Entry is one cached rule in a continuous-time table.
type Entry struct {
	RuleID      int
	InstalledAt float64 // seconds
	LastMatch   float64 // seconds; equals InstalledAt until first match
}

// EvictionReason says why a rule left the table.
type EvictionReason int

// Reasons a rule leaves the table.
const (
	ReasonExpired EvictionReason = iota + 1
	ReasonEvicted
)

// Stats counts table activity since construction.
type Stats struct {
	Lookups     int64
	Hits        int64
	Misses      int64
	Installs    int64
	Evictions   int64
	Expirations int64
	// MatchesByRule[j] counts hits attributed to rule j.
	MatchesByRule []int64
}

// slot is the in-place storage of one rule's cache state. Rule IDs are
// dense indices into the rule set, so slots live in a flat slice — no
// per-entry heap allocation, no map hashing on the hot path, and Install
// after eviction reuses the victim's storage (the entry "pool" is the
// slice itself).
type slot struct {
	Entry
	// expireAt is the absolute expiry time implied by the current timers,
	// kept materialized so Lookup can detect refreshes that do not move
	// the expiry (hard timeouts, repeated matches at one instant) without
	// touching the heap.
	expireAt float64
	// stamp versions the slot's timers. Every heap node records the stamp
	// it was pushed under; a node whose stamp no longer matches is stale
	// (the idle timer was refreshed since) and is discarded lazily when it
	// surfaces at the heap top.
	stamp uint32
	// present marks the slot as cached.
	present bool
}

// expNode is one entry in the expiry-ordered index: the absolute expiry
// time a rule had when the node was pushed, plus the slot stamp that
// validates it.
type expNode struct {
	at    float64
	id    int32
	stamp uint32
}

// Table is a continuous-time flow table over a rule set. The zero value is
// not usable; construct with New.
//
// The table keeps an expiry-ordered lazy min-heap over its entries, so
// Lookup/Install/Remove pay O(log n) for expiry processing instead of
// rescanning every entry, and expirations fire in deterministic
// (expiry time, rule ID) order — never map-iteration order — which keeps
// OnRemove callbacks, telemetry traces, and span forests reproducible.
type Table struct {
	rules    *rules.Set
	capacity int
	stepSec  float64 // seconds per model step (Δ); rule timeouts are in steps

	slots   []slot    // indexed by rule ID; present marks cached entries
	n       int       // number of cached entries
	heap    []expNode // lazy min-heap ordered by (at, id)
	timeout []float64 // per-rule timeout duration in seconds (Timeout·Δ)
	hard    []bool    // per-rule hard-timeout flag

	// cachedFn is the Lookup predicate over slots, built once so the hot
	// path does not allocate a closure per call.
	cachedFn func(ruleID int) bool

	stats Stats
	tm    tableMetrics // resolved telemetry instruments (zero = disabled)

	// OnRemove, if non-nil, is called whenever a rule leaves the table.
	OnRemove func(ruleID int, reason EvictionReason, now float64)
}

// New returns an empty table with the given capacity over rs. stepSec is
// the duration Δ of one model step in seconds; rule timeouts (expressed in
// steps) are scaled by it.
func New(rs *rules.Set, capacity int, stepSec float64) (*Table, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("flowtable: capacity %d < 1", capacity)
	}
	if stepSec <= 0 {
		return nil, fmt.Errorf("flowtable: step duration %v ≤ 0", stepSec)
	}
	t := &Table{
		rules:    rs,
		capacity: capacity,
		stepSec:  stepSec,
		slots:    make([]slot, rs.Len()),
		heap:     make([]expNode, 0, capacity),
		timeout:  make([]float64, rs.Len()),
		hard:     make([]bool, rs.Len()),
		stats:    Stats{MatchesByRule: make([]int64, rs.Len())},
	}
	for id := 0; id < rs.Len(); id++ {
		r := rs.Rule(id)
		t.timeout[id] = float64(r.Timeout) * stepSec
		t.hard[id] = r.Kind == rules.HardTimeout
	}
	t.cachedFn = func(ruleID int) bool { return t.slots[ruleID].present }
	return t, nil
}

// Stats returns a copy of the activity counters.
func (t *Table) Stats() Stats {
	out := t.stats
	out.MatchesByRule = make([]int64, len(t.stats.MatchesByRule))
	copy(out.MatchesByRule, t.stats.MatchesByRule)
	return out
}

// Capacity returns the table's capacity.
func (t *Table) Capacity() int { return t.capacity }

// Len returns the number of cached rules (after expiring stale entries as
// of time now).
func (t *Table) Len(now float64) int {
	t.expire(now)
	return t.n
}

// Occupancy returns the number of cached rules as of the table's last
// mutation, without processing expiries or touching telemetry. The fleet
// simulator polls it when batching occupancy per shard: with thousands
// of tables ticking in one drain, per-table gauge stores are pure atomic
// contention, so each shard sums Occupancy over its tables and publishes
// one gauge per shard instead.
func (t *Table) Occupancy() int { return t.n }

// Contains reports whether ruleID is cached as of now.
func (t *Table) Contains(ruleID int, now float64) bool {
	t.expire(now)
	return t.slots[ruleID].present
}

// Cached returns the IDs of cached rules as of now, in ascending order.
func (t *Table) Cached(now float64) []int {
	t.expire(now)
	out := make([]int, 0, t.n)
	for id := range t.slots {
		if t.slots[id].present {
			out = append(out, id)
		}
	}
	return out
}

// Remaining returns the remaining lifetime of ruleID at time now, or
// (0, false) if it is not cached.
func (t *Table) Remaining(ruleID int, now float64) (float64, bool) {
	t.expire(now)
	s := &t.slots[ruleID]
	if !s.present {
		return 0, false
	}
	return s.expireAt - now, true
}

// --- expiry-ordered index ---

// heapLess orders nodes by (expiry time, rule ID): the deterministic
// expiry and eviction order.
func heapLess(a, b expNode) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.id < b.id
}

// pushNode inserts a node into the heap.
func (t *Table) pushNode(n expNode) {
	t.heap = append(t.heap, n)
	i := len(t.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !heapLess(t.heap[i], t.heap[parent]) {
			break
		}
		t.heap[i], t.heap[parent] = t.heap[parent], t.heap[i]
		i = parent
	}
}

// popNode removes the heap minimum.
func (t *Table) popNode() {
	last := len(t.heap) - 1
	t.heap[0] = t.heap[last]
	t.heap = t.heap[:last]
	i := 0
	for {
		l := 2*i + 1
		if l >= last {
			break
		}
		min := l
		if r := l + 1; r < last && heapLess(t.heap[r], t.heap[l]) {
			min = r
		}
		if !heapLess(t.heap[min], t.heap[i]) {
			break
		}
		t.heap[i], t.heap[min] = t.heap[min], t.heap[i]
		i = min
	}
}

// minLive discards stale heap nodes until the top is a live entry's
// current expiry, returning false when the table is empty.
func (t *Table) minLive() (expNode, bool) {
	for len(t.heap) > 0 {
		top := t.heap[0]
		s := &t.slots[top.id]
		if !s.present || s.stamp != top.stamp {
			t.popNode() // stale: timer refreshed or entry removed since push
			continue
		}
		return top, true
	}
	return expNode{}, false
}

// enqueue versions the slot's timers and pushes the matching heap node.
// Invariant: every present slot has exactly one live heap node (stamp
// match); all older nodes are stale and discarded lazily.
func (t *Table) enqueue(id int, s *slot, at float64) {
	s.expireAt = at
	s.stamp++
	t.pushNode(expNode{at: at, id: int32(id), stamp: s.stamp})
}

// refresh records a timer change on an already-present slot. When the
// expiry does not move (repeated matches at one instant), the live node is
// already correct and the heap is untouched.
func (t *Table) refresh(id int, s *slot, at float64) {
	if at == s.expireAt {
		return
	}
	t.enqueue(id, s, at)
}

// expire removes every entry whose lifetime ended at or before now, in
// deterministic (expiry time, rule ID) order.
func (t *Table) expire(now float64) {
	removed := false
	for {
		top, ok := t.minLive()
		if !ok || top.at > now {
			break
		}
		t.popNode()
		t.slots[top.id].present = false
		t.n--
		removed = true
		t.stats.Expirations++
		t.tm.expirations.Inc()
		t.traceRule("rule.expire", int(top.id), now)
		if t.OnRemove != nil {
			t.OnRemove(int(top.id), ReasonExpired, now)
		}
	}
	if removed {
		t.tm.occupancy.Set(int64(t.n))
	}
}

// Lookup matches flow f against the table at time now. On a hit it returns
// the matched rule ID and refreshes the rule's idle timer, mirroring the
// switch's behaviour. On a miss it returns ok=false; the caller (switch)
// then consults the controller and calls Install.
func (t *Table) Lookup(f flows.ID, now float64) (ruleID int, ok bool) {
	t.expire(now)
	t.stats.Lookups++
	t.tm.lookups.Inc()
	id, ok := t.rules.MatchIn(f, t.cachedFn)
	if !ok {
		t.stats.Misses++
		t.tm.misses.Inc()
		return 0, false
	}
	t.stats.Hits++
	t.tm.hits.Inc()
	t.stats.MatchesByRule[id]++
	s := &t.slots[id]
	s.LastMatch = now
	if !t.hard[id] {
		// An idle-timeout match restarts the countdown; hard timeouts are
		// pinned to the install time and need no index update.
		t.refresh(id, s, now+t.timeout[id])
	}
	return id, true
}

// Install caches ruleID at time now. If the table is full, the entry with
// the smallest remaining lifetime is evicted first (shortest-time-remaining
// policy, ties broken towards the smaller rule ID). Installing an
// already-cached rule refreshes its timers.
func (t *Table) Install(ruleID int, now float64) {
	t.expire(now)
	s := &t.slots[ruleID]
	if s.present {
		s.InstalledAt = now
		s.LastMatch = now
		t.refresh(ruleID, s, now+t.timeout[ruleID])
		return
	}
	if t.n >= t.capacity {
		// Evict the entry with the smallest remaining lifetime. Remaining
		// lifetime and absolute expiry order identically at fixed now, so
		// the victim is exactly the live heap minimum — same (time, rule
		// ID) order the deterministic expiry uses.
		victim, ok := t.minLive()
		if ok {
			t.popNode()
			t.slots[victim.id].present = false
			t.n--
			t.stats.Evictions++
			t.tm.evictions.Inc()
			t.traceRule("rule.evict", int(victim.id), now)
			if t.OnRemove != nil {
				t.OnRemove(int(victim.id), ReasonEvicted, now)
			}
		}
	}
	t.stats.Installs++
	s.Entry = Entry{RuleID: ruleID, InstalledAt: now, LastMatch: now}
	s.present = true
	t.n++
	t.enqueue(ruleID, s, now+t.timeout[ruleID])
	t.tm.installs.Inc()
	t.tm.occupancy.Set(int64(t.n))
	t.traceRule("rule.install", ruleID, now)
}

// Remove deletes ruleID from the table if present (a controller-initiated
// flow removal). It reports whether the rule was cached.
func (t *Table) Remove(ruleID int, now float64) bool {
	t.expire(now)
	s := &t.slots[ruleID]
	if !s.present {
		return false
	}
	s.present = false // the queued heap node goes stale and is dropped lazily
	t.n--
	t.tm.occupancy.Set(int64(t.n))
	t.traceRule("rule.remove", ruleID, now)
	return true
}
