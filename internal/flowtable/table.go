// Package flowtable implements the SDN switch's rule cache, in two forms:
//
//   - Table: a continuous-time flow table used by the switch simulator and
//     the OpenFlow switch agent. It implements the OpenFlow behaviours the
//     attack depends on — highest-priority match, idle and hard timeouts,
//     and eviction of the entry with the smallest remaining lifetime when
//     the table is full (the Open vSwitch policy cited in the paper).
//
//   - StepTable: a discrete-time table whose step semantics are exactly the
//     transition relation of the paper's basic Markov model (§IV-A). It is
//     used to validate the models against an executable reference.
package flowtable

import (
	"fmt"
	"math"
	"sort"

	"flowrecon/internal/flows"
	"flowrecon/internal/rules"
)

// Entry is one cached rule in a continuous-time table.
type Entry struct {
	RuleID      int
	InstalledAt float64 // seconds
	LastMatch   float64 // seconds; equals InstalledAt until first match
}

// EvictionReason says why a rule left the table.
type EvictionReason int

// Reasons a rule leaves the table.
const (
	ReasonExpired EvictionReason = iota + 1
	ReasonEvicted
)

// Stats counts table activity since construction.
type Stats struct {
	Lookups     int64
	Hits        int64
	Misses      int64
	Installs    int64
	Evictions   int64
	Expirations int64
	// MatchesByRule[j] counts hits attributed to rule j.
	MatchesByRule []int64
}

// Table is a continuous-time flow table over a rule set. The zero value is
// not usable; construct with New.
type Table struct {
	rules    *rules.Set
	capacity int
	stepSec  float64 // seconds per model step (Δ); rule timeouts are in steps
	entries  map[int]*Entry
	stats    Stats
	tm       tableMetrics // resolved telemetry instruments (zero = disabled)

	// OnRemove, if non-nil, is called whenever a rule leaves the table.
	OnRemove func(ruleID int, reason EvictionReason, now float64)
}

// New returns an empty table with the given capacity over rs. stepSec is
// the duration Δ of one model step in seconds; rule timeouts (expressed in
// steps) are scaled by it.
func New(rs *rules.Set, capacity int, stepSec float64) (*Table, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("flowtable: capacity %d < 1", capacity)
	}
	if stepSec <= 0 {
		return nil, fmt.Errorf("flowtable: step duration %v ≤ 0", stepSec)
	}
	return &Table{
		rules:    rs,
		capacity: capacity,
		stepSec:  stepSec,
		entries:  make(map[int]*Entry, capacity),
		stats:    Stats{MatchesByRule: make([]int64, rs.Len())},
	}, nil
}

// Stats returns a copy of the activity counters.
func (t *Table) Stats() Stats {
	out := t.stats
	out.MatchesByRule = make([]int64, len(t.stats.MatchesByRule))
	copy(out.MatchesByRule, t.stats.MatchesByRule)
	return out
}

// Capacity returns the table's capacity.
func (t *Table) Capacity() int { return t.capacity }

// Len returns the number of cached rules (after expiring stale entries as
// of time now).
func (t *Table) Len(now float64) int {
	t.expire(now)
	return len(t.entries)
}

// Contains reports whether ruleID is cached as of now.
func (t *Table) Contains(ruleID int, now float64) bool {
	t.expire(now)
	_, ok := t.entries[ruleID]
	return ok
}

// Cached returns the IDs of cached rules as of now, in ascending order.
func (t *Table) Cached(now float64) []int {
	t.expire(now)
	out := make([]int, 0, len(t.entries))
	for id := range t.entries {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// expiry returns the absolute time at which e expires.
func (t *Table) expiry(e *Entry) float64 {
	r := t.rules.Rule(e.RuleID)
	d := float64(r.Timeout) * t.stepSec
	if r.Kind == rules.HardTimeout {
		return e.InstalledAt + d
	}
	return e.LastMatch + d
}

// Remaining returns the remaining lifetime of ruleID at time now, or
// (0, false) if it is not cached.
func (t *Table) Remaining(ruleID int, now float64) (float64, bool) {
	t.expire(now)
	e, ok := t.entries[ruleID]
	if !ok {
		return 0, false
	}
	return t.expiry(e) - now, true
}

// expire removes every entry whose lifetime ended at or before now.
func (t *Table) expire(now float64) {
	for id, e := range t.entries {
		if t.expiry(e) <= now {
			delete(t.entries, id)
			t.stats.Expirations++
			t.tm.expirations.Inc()
			t.tm.occupancy.Set(int64(len(t.entries)))
			t.traceRule("rule.expire", id, now)
			if t.OnRemove != nil {
				t.OnRemove(id, ReasonExpired, now)
			}
		}
	}
}

// Lookup matches flow f against the table at time now. On a hit it returns
// the matched rule ID and refreshes the rule's idle timer, mirroring the
// switch's behaviour. On a miss it returns ok=false; the caller (switch)
// then consults the controller and calls Install.
func (t *Table) Lookup(f flows.ID, now float64) (ruleID int, ok bool) {
	t.expire(now)
	t.stats.Lookups++
	t.tm.lookups.Inc()
	id, ok := t.rules.MatchIn(f, func(r int) bool { _, c := t.entries[r]; return c })
	if !ok {
		t.stats.Misses++
		t.tm.misses.Inc()
		return 0, false
	}
	t.stats.Hits++
	t.tm.hits.Inc()
	t.stats.MatchesByRule[id]++
	t.entries[id].LastMatch = now
	return id, true
}

// Install caches ruleID at time now. If the table is full, the entry with
// the smallest remaining lifetime is evicted first (shortest-time-remaining
// policy). Installing an already-cached rule refreshes its timers.
func (t *Table) Install(ruleID int, now float64) {
	t.expire(now)
	if e, ok := t.entries[ruleID]; ok {
		e.InstalledAt = now
		e.LastMatch = now
		return
	}
	if len(t.entries) >= t.capacity {
		victim, best := -1, math.Inf(1)
		for id, e := range t.entries {
			if rem := t.expiry(e) - now; rem < best || (rem == best && id < victim) {
				victim, best = id, rem
			}
		}
		delete(t.entries, victim)
		t.stats.Evictions++
		t.tm.evictions.Inc()
		t.traceRule("rule.evict", victim, now)
		if t.OnRemove != nil {
			t.OnRemove(victim, ReasonEvicted, now)
		}
	}
	t.stats.Installs++
	t.entries[ruleID] = &Entry{RuleID: ruleID, InstalledAt: now, LastMatch: now}
	t.tm.installs.Inc()
	t.tm.occupancy.Set(int64(len(t.entries)))
	t.traceRule("rule.install", ruleID, now)
}

// Remove deletes ruleID from the table if present (a controller-initiated
// flow removal). It reports whether the rule was cached.
func (t *Table) Remove(ruleID int, now float64) bool {
	t.expire(now)
	if _, ok := t.entries[ruleID]; !ok {
		return false
	}
	delete(t.entries, ruleID)
	t.tm.occupancy.Set(int64(len(t.entries)))
	t.traceRule("rule.remove", ruleID, now)
	return true
}
