package flowtable

import "flowrecon/internal/telemetry"

// tableMetrics are the resolved telemetry instruments of one Table. The
// zero value (all nil) is the disabled configuration: every update is a
// nil-checked no-op, keeping the hot path within noise of the
// uninstrumented code (see BenchmarkTelemetryOverhead).
type tableMetrics struct {
	lookups     *telemetry.Counter
	hits        *telemetry.Counter
	misses      *telemetry.Counter
	installs    *telemetry.Counter
	evictions   *telemetry.Counter
	expirations *telemetry.Counter
	occupancy   *telemetry.Gauge
	tracer      *telemetry.Tracer
	node        string
}

// SetTelemetry attaches the table to a registry, resolving its metric
// series once. node, when non-empty, becomes the `node` label on every
// series, letting multiple tables share one registry. A nil registry
// detaches (disables) telemetry.
func (t *Table) SetTelemetry(reg *telemetry.Registry, node string) {
	var labels []string
	if node != "" {
		labels = []string{"node", node}
	}
	t.tm = tableMetrics{
		lookups:     reg.Counter("flowtable_lookups_total", labels...),
		hits:        reg.Counter("flowtable_lookup_hits_total", labels...),
		misses:      reg.Counter("flowtable_lookup_misses_total", labels...),
		installs:    reg.Counter("flowtable_installs_total", labels...),
		evictions:   reg.Counter("flowtable_evictions_total", labels...),
		expirations: reg.Counter("flowtable_expirations_total", labels...),
		occupancy:   reg.Gauge("flowtable_occupancy", labels...),
		tracer:      reg.Tracer(),
		node:        node,
	}
}

// traceRule emits one rule lifecycle event (install/evict/expire/remove)
// with the table's virtual clock.
func (t *Table) traceRule(kind string, ruleID int, now float64) {
	if t.tm.tracer == nil {
		return
	}
	e := telemetry.Ev(kind)
	e.Node = t.tm.node
	e.Rule = ruleID
	e.Virtual = now
	t.tm.tracer.Emit(e)
}

// SetTelemetry instruments a StepTable: per-step counters for the
// discrete-time transition relation plus `sim.step.*` trace events keyed
// by the step index. node labels the series as in Table.SetTelemetry.
func (t *StepTable) SetTelemetry(reg *telemetry.Registry, node string) {
	var labels []string
	if node != "" {
		labels = []string{"node", node}
	}
	t.tm = stepMetrics{
		steps:    reg.Counter("steptable_steps_total", labels...),
		timeouts: reg.Counter("steptable_timeouts_total", labels...),
		hits:     reg.Counter("steptable_hits_total", labels...),
		misses:   reg.Counter("steptable_misses_total", labels...),
		tracer:   reg.Tracer(),
		node:     node,
	}
}

// stepMetrics are the resolved instruments of one StepTable.
type stepMetrics struct {
	steps    *telemetry.Counter
	timeouts *telemetry.Counter
	hits     *telemetry.Counter
	misses   *telemetry.Counter
	tracer   *telemetry.Tracer
	node     string
}

// traceStep emits one discrete-step event with the step index as the
// virtual time.
func (t *StepTable) traceStep(kind string, rule int, flow int) {
	if t.tm.tracer == nil {
		return
	}
	e := telemetry.Ev(kind)
	e.Node = t.tm.node
	e.Rule = rule
	e.Flow = flow
	e.Virtual = float64(t.step)
	t.tm.tracer.Emit(e)
}
