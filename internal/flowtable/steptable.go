package flowtable

import (
	"fmt"
	"strings"

	"flowrecon/internal/flows"
	"flowrecon/internal/rules"
)

// StepTable is an executable copy of the basic Markov model's state and
// transition relation (§IV-A): an ordered cache of (rule, remaining-steps)
// pairs, advanced one event per step. It exists so the model can be tested
// against a reference implementation step for step.
type StepTable struct {
	rules    *rules.Set
	capacity int
	slots    []StepEntry // index 0 is the cache front
	step     int         // events processed (virtual step index)
	tm       stepMetrics // resolved telemetry instruments (zero = disabled)
}

// StepEntry is one (rule, remaining time) cache slot.
type StepEntry struct {
	RuleID int
	Exp    int // steps remaining before expiration
}

// NewStepTable returns an empty discrete-time table.
func NewStepTable(rs *rules.Set, capacity int) *StepTable {
	return &StepTable{rules: rs, capacity: capacity}
}

// Entries returns a copy of the cache contents, front first.
func (t *StepTable) Entries() []StepEntry {
	out := make([]StepEntry, len(t.slots))
	copy(out, t.slots)
	return out
}

// Contains reports whether ruleID is cached.
func (t *StepTable) Contains(ruleID int) bool {
	for _, e := range t.slots {
		if e.RuleID == ruleID {
			return true
		}
	}
	return false
}

// CachedSet returns the cached rule IDs as a bitset over rule indices.
func (t *StepTable) CachedSet() flows.Set {
	var s flows.Set
	for _, e := range t.slots {
		s.Add(flows.ID(e.RuleID))
	}
	return s
}

// PendingTimeout reports whether the table holds a zero-clock entry, in
// which case the basic model forces a timeout transition before any other
// event (§IV-A1).
func (t *StepTable) PendingTimeout() bool {
	for _, e := range t.slots {
		if e.Exp == 0 {
			return true
		}
	}
	return false
}

// StepTimeout performs the model's timeout transition: it removes the
// deepest zero-clock entry and shifts later entries up, leaving clocks
// untouched. It reports whether a timeout was pending.
func (t *StepTable) StepTimeout() bool {
	idx := -1
	for i, e := range t.slots {
		if e.Exp == 0 {
			idx = i // keep scanning: the paper removes the largest such i
		}
	}
	if idx < 0 {
		return false
	}
	removed := t.slots[idx].RuleID
	t.slots = append(t.slots[:idx], t.slots[idx+1:]...)
	t.step++
	t.tm.steps.Inc()
	t.tm.timeouts.Inc()
	t.traceStep("sim.step.timeout", removed, -1)
	return true
}

// StepNull performs the "no flow arrived" transition: every clock
// decrements by one. It must not be called while a timeout is pending.
func (t *StepTable) StepNull() {
	for i := range t.slots {
		t.slots[i].Exp--
	}
	t.step++
	t.tm.steps.Inc()
	t.traceStep("sim.step.null", -1, -1)
}

// StepArrival performs the flow-arrival transition for flow f and returns
// the matched or installed rule ID and whether the arrival was a cache hit.
// It must not be called while a timeout is pending. If no rule in the rule
// set covers f the table is left unchanged except for clock decrements and
// ok is false.
func (t *StepTable) StepArrival(f flows.ID) (ruleID int, hit, ok bool) {
	if slot, cached := t.matchCached(f); cached {
		id := t.slots[slot].RuleID
		t.applyHit(slot)
		t.step++
		t.tm.steps.Inc()
		t.tm.hits.Inc()
		t.traceStep("sim.step.hit", id, int(f))
		return id, true, true
	}
	j, covered := t.rules.HighestCovering(f)
	if !covered {
		// An uncovered arrival only decrements clocks — the null
		// transition; StepNull accounts for the step.
		t.StepNull()
		return 0, false, false
	}
	t.applyMiss(j)
	t.step++
	t.tm.steps.Inc()
	t.tm.misses.Inc()
	t.traceStep("sim.step.miss", j, int(f))
	return j, false, true
}

// matchCached returns the position of the highest-priority cached rule
// covering f.
func (t *StepTable) matchCached(f flows.ID) (slot int, ok bool) {
	best, bestPrio := -1, 0
	for i, e := range t.slots {
		r := t.rules.Rule(e.RuleID)
		if r.Covers(f) && (best < 0 || r.Priority > bestPrio) {
			best, bestPrio = i, r.Priority
		}
	}
	return best, best >= 0
}

// applyHit implements "flow arrival with covering rule in cache": the
// matched rule moves to the front with its clock reset (idle) or
// decremented (hard); every other clock decrements.
func (t *StepTable) applyHit(slot int) {
	e := t.slots[slot]
	r := t.rules.Rule(e.RuleID)
	if r.Kind == rules.HardTimeout {
		e.Exp--
	} else {
		e.Exp = r.Timeout
	}
	rest := make([]StepEntry, 0, len(t.slots))
	for i, o := range t.slots {
		if i == slot {
			continue
		}
		o.Exp--
		rest = append(rest, o)
	}
	t.slots = append([]StepEntry{e}, rest...)
}

// applyMiss implements "flow arrival with no covering rule in cache": the
// covering rule is installed at the front with a full clock; if the cache
// was at capacity the entry with the smallest remaining time is evicted;
// every surviving clock decrements.
func (t *StepTable) applyMiss(ruleID int) {
	if len(t.slots) >= t.capacity {
		victim, best := -1, 0
		for i, e := range t.slots {
			if victim < 0 || e.Exp < best {
				victim, best = i, e.Exp
			}
		}
		t.slots = append(t.slots[:victim], t.slots[victim+1:]...)
	}
	for i := range t.slots {
		t.slots[i].Exp--
	}
	front := StepEntry{RuleID: ruleID, Exp: t.rules.Rule(ruleID).Timeout}
	t.slots = append([]StepEntry{front}, t.slots...)
}

// Key returns a canonical string for the cache contents, usable as a
// Markov-state key.
func (t *StepTable) Key() string {
	var b strings.Builder
	for i, e := range t.slots {
		if i > 0 {
			b.WriteByte('|')
		}
		fmt.Fprintf(&b, "%d:%d", e.RuleID, e.Exp)
	}
	return b.String()
}
