package flowtable

import (
	"testing"

	"flowrecon/internal/flows"
	"flowrecon/internal/stats"
	"flowrecon/internal/telemetry"
)

// TestTableTelemetryMatchesStats drives a table through a random workload
// and asserts that the telemetry counters agree exactly with the table's
// own Stats() ground truth, and that the trace stream carries one event
// per state change.
func TestTableTelemetryMatchesStats(t *testing.T) {
	rs := testRules(t)
	tbl, err := New(rs, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry(1 << 14)
	tbl.SetTelemetry(reg, "t0")

	rng := stats.NewRNG(7)
	now := 0.0
	for i := 0; i < 500; i++ {
		now += rng.Float64()
		f := flows.ID(rng.Intn(4)) // flows 0..2 covered, 3 uncovered
		if _, hit := tbl.Lookup(f, now); !hit {
			if j, ok := rs.HighestCovering(f); ok {
				tbl.Install(j, now)
			}
		}
	}
	// Let everything expire so expirations are observed too.
	tbl.Len(now + 1000)

	st := tbl.Stats()
	snap := reg.Snapshot()
	series := func(name string) int64 {
		return snap.Counters[telemetry.Series(name, "node", "t0")]
	}
	checks := []struct {
		name string
		want int64
	}{
		{"flowtable_lookups_total", st.Lookups},
		{"flowtable_lookup_hits_total", st.Hits},
		{"flowtable_lookup_misses_total", st.Misses},
		{"flowtable_installs_total", st.Installs},
		{"flowtable_evictions_total", st.Evictions},
		{"flowtable_expirations_total", st.Expirations},
	}
	for _, c := range checks {
		if got := series(c.name); got != c.want {
			t.Errorf("%s = %d, stats ground truth %d", c.name, got, c.want)
		}
	}
	if st.Lookups != st.Hits+st.Misses {
		t.Fatalf("stats self-inconsistent: %d != %d + %d", st.Lookups, st.Hits, st.Misses)
	}
	if st.Installs == 0 || st.Evictions == 0 || st.Expirations == 0 {
		t.Fatalf("workload failed to exercise install/evict/expire: %+v", st)
	}

	// Occupancy gauge must reflect the (now empty) table.
	if occ := snap.Gauges[telemetry.Series("flowtable_occupancy", "node", "t0")]; occ != int64(tbl.Len(now+1000)) {
		t.Errorf("occupancy gauge %d, table %d", occ, tbl.Len(now+1000))
	}

	// One trace event per install/evict/expire.
	kinds := map[string]int64{}
	for _, e := range snap.Events {
		kinds[e.Kind]++
	}
	if kinds["rule.install"] != st.Installs {
		t.Errorf("rule.install events %d, installs %d", kinds["rule.install"], st.Installs)
	}
	if kinds["rule.evict"] != st.Evictions {
		t.Errorf("rule.evict events %d, evictions %d", kinds["rule.evict"], st.Evictions)
	}
	if kinds["rule.expire"] != st.Expirations {
		t.Errorf("rule.expire events %d, expirations %d", kinds["rule.expire"], st.Expirations)
	}
}
